(* fq — command-line front end to the Finite Queries library.

   Subcommands:
     fq decide   — decide a pure domain sentence
     fq safety   — syntactic safe-range check of a query
     fq relsafe  — relative safety of a query in a state
     fq eval     — answer a query in a state (Section 1.1 algorithm)
     fq batch    — supervised parallel evaluation of many queries
                   (local domain pool, or --connect to a running server)
     fq serve    — persistent query service on a Unix/TCP socket
     fq fleet    — supervised multi-process fleet of fq serve workers
     fq tm       — run a Turing machine / list the zoo / show traces
     fq diag     — the Theorem 3.1 diagonalization demo
     fq halting  — the Theorem 3.3 reduction on an instance *)

open Finite_queries
open Cmdliner

(* ------------------------- shared arguments ------------------------ *)

(* the one domain registry, shared with the serve protocol *)
let domains = Protocol.domains

let domain_conv =
  let parse s =
    match List.assoc_opt s domains with
    | Some d -> Ok d
    | None ->
      Error (`Msg (Printf.sprintf "unknown domain %S (try: %s)" s
                     (String.concat ", " (List.map fst domains))))
  in
  let print fmt (d : Domain.t) =
    let (module D : Domain.S) = d in
    Format.pp_print_string fmt D.name
  in
  Arg.conv (parse, print)

let domain_arg =
  let doc = "Domain to interpret the formula over (equality, nat_order, nat_succ, presburger, arithmetic, traces)." in
  Arg.(value & opt domain_conv (module Presburger : Domain.S) & info [ "d"; "domain" ] ~doc)

let formula_arg =
  let doc = "The formula, in the library's concrete syntax." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let parse_formula s =
  match Parser.formula s with
  | Ok f -> Ok f
  | Error e -> Error (Printf.sprintf "parse error: %s" e)

(* state description: --relation "F/2=a,b;b,c" (strings) or numbers;
   --constant "c=w" *)
let relation_arg =
  let doc = "A relation of the state: NAME/ARITY=v1,v2;v1,v2;... Values that parse as nonnegative integers become numbers; everything else is a string." in
  Arg.(value & opt_all string [] & info [ "r"; "relation" ] ~doc)

let constant_arg =
  let doc = "A scheme constant of the state: NAME=VALUE." in
  Arg.(value & opt_all string [] & info [ "c"; "constant" ] ~doc)

let parse_state rel_specs const_specs =
  Codec.parse_state ~relations:rel_specs ~constants:const_specs

(* ------------------------------ engine ------------------------------ *)

let engine_conv =
  let parse = function
    | "row" -> Ok Relalg.Row_engine
    | "columnar" -> Ok Relalg.Columnar_engine
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (row, columnar)" s))
  in
  let print fmt = function
    | Relalg.Row_engine -> Format.pp_print_string fmt "row"
    | Relalg.Columnar_engine -> Format.pp_print_string fmt "columnar"
  in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Execution engine for compiled algebra plans: $(b,columnar) (batch-at-a-time over \
     dictionary-encoded columns, the default) or $(b,row) (tuple-at-a-time). Both produce \
     identical answers and budget verdicts."
  in
  Arg.(value & opt engine_conv !Relalg.default_engine & info [ "engine" ] ~doc)

let set_engine e = Relalg.default_engine := e

(* --------------------------- stats profiles ------------------------- *)

(* A stats profile file has one "FINGERPRINT COUNT MEAN" line per plan
   node (blank lines and # comments skipped) — the format `fq explain
   --stats-out` writes from the relalg.node_card.<fp> histograms of a
   run. Feeding it back with --stats gives the cost-based optimizer
   observed cardinalities in place of its textbook estimates. *)
let read_profile path =
  match open_in path with
  | exception Sys_error msg -> Error (Printf.sprintf "stats file: %s" msg)
  | ic ->
    let rec go acc lineno =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
      | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1)
        else
          match
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          with
          | [ fp; _count; mean ] -> (
            match float_of_string_opt mean with
            | Some m -> go ((fp, m) :: acc) (lineno + 1)
            | None ->
              close_in ic;
              Error (Printf.sprintf "stats file %s, line %d: bad mean %S" path lineno mean))
          | _ ->
            close_in ic;
            Error
              (Printf.sprintf
                 "stats file %s, line %d: expected \"FINGERPRINT COUNT MEAN\"" path lineno))
    in
    go [] 1

(* state cardinalities + the file's observed-cardinality profile *)
let load_stats state = function
  | None -> Ok None
  | Some path ->
    Result.map
      (fun entries ->
        Some (Optimizer.Stats.with_profile entries (Optimizer.Stats.of_state state)))
      (read_profile path)

let stats_arg =
  let doc =
    "Feed the cost-based optimizer a stats profile (FINGERPRINT COUNT MEAN lines, as \
     written by $(b,fq explain --stats-out)): profiled nodes use their observed output \
     cardinality instead of the textbook estimate."
  in
  Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE" ~doc)

let write_profile path (treport : Telemetry.report) =
  let prefix = Relalg.card_metric ^ "." in
  let plen = String.length prefix in
  let oc = open_out path in
  output_string oc
    "# fq stats profile: FINGERPRINT COUNT MEAN (relalg node output cardinality)\n";
  List.iter
    (fun (name, (h : Telemetry.histogram)) ->
      if String.length name > plen && String.sub name 0 plen = prefix && h.Telemetry.count > 0
      then
        Printf.fprintf oc "%s %d %g\n"
          (String.sub name plen (String.length name - plen))
          h.Telemetry.count
          (h.Telemetry.sum /. float_of_int h.Telemetry.count))
    treport.Telemetry.histograms;
  close_out oc

(* one-word operator label for the explain cost table *)
let node_label = function
  | Relalg.Rel r -> "rel " ^ r
  | Relalg.Lit r -> Printf.sprintf "lit/%d" (Relation.arity r)
  | Relalg.Select _ -> "select"
  | Relalg.Project (cols, _) ->
    Printf.sprintf "project[%s]" (String.concat "," (List.map string_of_int cols))
  | Relalg.Product _ -> "product"
  | Relalg.Join (pairs, _, _) ->
    Printf.sprintf "join[%s]"
      (String.concat "," (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs))
  | Relalg.Union _ -> "union"
  | Relalg.Diff _ -> "diff"

(* --------------------------- resource governor ---------------------- *)

(* Exit codes: 0 = complete answer, 3 = partial (budget exhausted),
   4 = input outside the supported fragment, 1 = any other error.
   The mapping lives in Outcome so eval, batch and serve agree. *)
let exit_partial = Outcome.exit_partial
let exit_unsupported = Outcome.exit_unsupported
let exit_of_error = Outcome.exit_of_error

let report = function
  | Ok code -> code
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    exit_of_error msg

let fuel_arg ~default =
  let doc =
    "Step/candidate budget for the resource governor. On exhaustion the command reports \
     what it established so far and exits 3."
  in
  Arg.(value & opt int default & info [ "fuel" ] ~doc)

let timeout_arg =
  let doc =
    "Wall-clock deadline in milliseconds. On expiry the command reports partial results \
     and exits 3."
  in
  Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~doc)

let budget_of fuel timeout_ms = Budget.make ~fuel ?timeout_ms ()

(* ----------------------------- telemetry ---------------------------- *)

type trace_sink = Pretty | Jsonl | Chrome of string

let trace_conv =
  let parse s =
    match s with
    | "pretty" -> Ok Pretty
    | "jsonl" -> Ok Jsonl
    | _ when String.length s > 7 && String.sub s 0 7 = "chrome:" ->
      Ok (Chrome (String.sub s 7 (String.length s - 7)))
    | _ ->
      Error (`Msg (Printf.sprintf "unknown trace sink %S (pretty, jsonl, chrome:FILE)" s))
  in
  let print fmt = function
    | Pretty -> Format.pp_print_string fmt "pretty"
    | Jsonl -> Format.pp_print_string fmt "jsonl"
    | Chrome file -> Format.fprintf fmt "chrome:%s" file
  in
  Arg.conv (parse, print)

let trace_arg =
  let doc =
    "Record a span trace of the run and render it on stderr: $(b,pretty) (indented tree \
     with tick and wall-clock attribution), $(b,jsonl) (one JSON object per line), or \
     $(b,chrome:FILE) (Chrome trace_event JSON written to FILE, loadable in Perfetto or \
     about://tracing)."
  in
  Arg.(value & opt ~vopt:(Some Pretty) (some trace_conv) None & info [ "trace" ] ~doc)

let metrics_arg =
  let doc = "Print the run's telemetry counters and histograms on stderr." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Run a command body under a recording collector when asked to; the report
   goes to stderr so stdout stays stable for scripts and cram tests. *)
let with_telemetry trace metrics f =
  match (trace, metrics) with
  | None, false -> f ()
  | _ ->
    (* A chrome sink is opened before the run: an unwritable FILE is a
       usage error diagnosed up front with the structured exit code, not a
       raw [Sys_error] crash that discards a finished run's results. *)
    let chrome_sink =
      match trace with
      | Some (Chrome file) -> (
        match open_out file with
        | oc -> Some (file, oc)
        | exception Sys_error msg ->
          Format.eprintf "error: unsupported: trace sink: %s@." msg;
          exit exit_unsupported)
      | _ -> None
    in
    let code, treport = Telemetry.record f in
    (match trace with
    | None -> ()
    | Some Pretty -> Format.eprintf "%a" Telemetry.pp_pretty treport
    | Some Jsonl -> Format.eprintf "%a" Telemetry.pp_jsonl treport
    | Some (Chrome _) ->
      let file, oc = Option.get chrome_sink in
      let fmt = Format.formatter_of_out_channel oc in
      Format.fprintf fmt "%a@?" Telemetry.pp_chrome treport;
      close_out oc;
      Format.eprintf "trace written to %s@." file);
    if metrics then Format.eprintf "%a" Telemetry.pp_metrics treport;
    code

(* --------------------------- common options ------------------------- *)

(* Every subcommand takes the same options record through one shared
   Cmdliner term — no subcommand defines its own copy of --fuel,
   --timeout-ms, --trace, --metrics, --engine or --stats.  Only the fuel
   default varies per command. *)
type common = {
  trace : trace_sink option;
  metrics : bool;
  fuel : int;
  timeout_ms : int option;
  engine : Relalg.engine;
  stats_file : string option;
}

let common_opts ~default_fuel =
  let make trace metrics fuel timeout_ms engine stats_file =
    { trace; metrics; fuel; timeout_ms; engine; stats_file }
  in
  Term.(const make $ trace_arg $ metrics_arg $ fuel_arg ~default:default_fuel
        $ timeout_arg $ engine_arg $ stats_arg)

let with_common c f =
  set_engine c.engine;
  with_telemetry c.trace c.metrics f

let budget_of_common c = budget_of c.fuel c.timeout_ms

(* ------------------------------ decide ----------------------------- *)

let decide_cmd =
  let run common domain formula =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_formula formula) (fun f ->
           let (module D : Domain.S) = domain in
           let budget = budget_of_common common in
           Result.map
             (fun b ->
               Format.printf "%b@." b;
               0)
             (Budget.protect ~budget (fun () -> D.decide f))))
  in
  let doc = "Decide a pure domain sentence (the domain's decision procedure)." in
  Cmd.v (Cmd.info "decide" ~doc)
    Term.(const run $ common_opts ~default_fuel:1_000_000 $ domain_arg $ formula_arg)

(* ------------------------------ safety ----------------------------- *)

let schema_arg =
  let doc = "Database relations of the scheme, as NAME/ARITY (repeatable)." in
  Arg.(value & opt_all string [] & info [ "s"; "schema" ] ~doc)

let parse_schema_assoc specs =
  try
    Ok
      (List.map
         (fun spec ->
           match String.index_opt spec '/' with
           | None -> failwith (Printf.sprintf "bad schema entry %S (want NAME/ARITY)" spec)
           | Some i ->
             ( String.sub spec 0 i,
               int_of_string (String.sub spec (i + 1) (String.length spec - i - 1)) ))
         specs)
  with Failure msg -> Error msg

let safety_cmd =
  let run common schema formula =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_schema_assoc schema) (fun schema ->
           Result.map
             (fun f ->
               (match Safe_range.check ~schema f with
               | Safe_range.Safe_range ->
                 Format.printf "safe-range: the query is finite in every state@."
               | Safe_range.Not_safe_range why -> Format.printf "not safe-range: %s@." why);
               0)
             (parse_formula formula)))
  in
  let doc = "Check the syntactic safe-range (range-restriction) discipline." in
  Cmd.v (Cmd.info "safety" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ schema_arg $ formula_arg)

(* ------------------------------ relsafe ---------------------------- *)

let relsafe_cmd =
  let run common domain rels consts formula =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.bind (parse_state rels consts) (fun state ->
               let budget = budget_of_common common in
               Result.map
                 (fun b ->
                   Format.printf "%s@."
                     (if b then "finite in this state" else "INFINITE in this state");
                   0)
                 (Budget.protect ~budget (fun () ->
                      Relative_safety.decide_for ~domain ~state f)))))
  in
  let doc = "Decide relative safety: is the query's answer finite in the given state? (Undecidable over traces — Theorem 3.3.)" in
  Cmd.v (Cmd.info "relsafe" ~doc)
    Term.(const run $ common_opts ~default_fuel:1_000_000 $ domain_arg $ relation_arg
          $ constant_arg $ formula_arg)

(* ------------------------------- eval ------------------------------ *)

let json_arg =
  let doc =
    "Print the outcome as one JSON object on stdout (the stable Outcome schema shared by \
     $(b,fq eval), $(b,fq batch) and $(b,fq serve)) and derive the exit code from it."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let eval_cmd =
  let run common domain rels consts verbose json formula =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.bind (parse_state rels consts) (fun state ->
               Result.bind (load_stats state common.stats_file) (fun stats ->
               let budget = budget_of_common common in
               let rep = Query.eval_resilient ~budget ?stats ~domain ~state f in
               if json then begin
                 print_endline (Json.to_string (Outcome.to_json rep));
                 Ok (Outcome.exit_code rep)
               end
               else begin
                 if verbose then Format.printf "%a@." Query.pp rep;
                 match rep.Query.verdict with
                 | Query.Complete { answer; _ } ->
                   if not verbose then
                     Format.printf "finite answer (%d tuples): %a@."
                       (Relation.cardinal answer) Relation.pp answer;
                   Ok 0
                 | Query.Partial { tuples; reason; _ } ->
                   if not verbose then
                     Format.printf
                       "%a; partial answer (%d tuples): %a@.(the answer may be infinite — \
                        relative safety is the hard part)@."
                       Budget.pp_failure reason (Relation.cardinal tuples) Relation.pp tuples;
                   Ok exit_partial
                 | Query.Failed { reason } -> Error reason
               end))))
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ]
             ~doc:"Print the full degradation-chain report (tier, attempts, resources spent).")
  in
  let doc =
    "Answer a query in a state: RANF compilation when safe-range, else the Section 1.1 \
     enumerate-and-decide algorithm under the governor."
  in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ domain_arg $ relation_arg
          $ constant_arg $ verbose $ json_arg $ formula_arg)

(* ------------------------------ report ----------------------------- *)

let report_cmd =
  let run common domain rels consts formula =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.map
             (fun state ->
               let budget = budget_of_common common in
               let r = Report.analyze ~fuel:common.fuel ~budget ~domain ~state f in
               Format.printf "%a@." Report.pp r;
               match r.Report.evaluation with
               | Report.Exact _ -> 0
               | Report.Partial _ -> exit_partial
               | Report.Failed e -> exit_of_error e)
             (parse_state rels consts)))
  in
  let doc = "Full analysis of a query: syntactic safety, relative safety, and the answer by the best applicable evaluator." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ domain_arg $ relation_arg
          $ constant_arg $ formula_arg)

(* -------------------------------- tm ------------------------------- *)

let machine_of_string s =
  match List.find_opt (fun e -> e.Zoo.name = s) Zoo.all with
  | Some e -> Ok (Encode.encode e.Zoo.machine)
  | None ->
    if Word.is_machine_shaped s then Ok s
    else Error (Printf.sprintf "%S is neither a zoo machine nor a machine-shaped word" s)

let tm_cmd =
  let run common machine input show_traces explain list_zoo =
    with_common common @@ fun () ->
    if list_zoo then begin
      Format.printf "%-12s %-9s %s@." "name" "totality" "description";
      List.iter
        (fun e ->
          Format.printf "%-12s %-9s %s@.             encoding: %S@." e.Zoo.name
            (match e.Zoo.totality with
            | Zoo.Total -> "total"
            | Zoo.Non_total -> "non-total"
            | Zoo.Unknown -> "unknown")
            e.Zoo.description
            (Encode.encode e.Zoo.machine))
        Zoo.all;
      0
    end
    else
      report
        (Result.bind (machine_of_string machine) (fun m ->
             if not (Word.is_input input) then
               Error (Printf.sprintf "%S is not an input word over {1,-}" input)
             else begin
               let code =
                 match Run.run_b ~budget:(budget_of_common common) (Encode.decode m) input with
                 | Run.Done { steps; result } ->
                   Format.printf "halts after %d steps; result %S@." steps result;
                   0
                 | Run.Stopped { steps; _ } ->
                   Format.printf "still running after %d steps@." steps;
                   exit_partial
               in
               if show_traces then begin
                 Format.printf "traces:@.";
                 Trace.traces ~machine:m ~input |> Seq.take 10
                 |> Seq.iter (fun t -> Format.printf "  %S@." t)
               end;
               if explain then begin
                 match
                   Trace.trace_word ~machine:m ~input
                     ~k:(Run.config_count_upto ~bound:12 (Encode.decode m) input)
                 with
                 | Some t -> (
                   match Explain.trace t with
                   | Ok text -> Format.printf "%s" text
                   | Error e -> Format.printf "explain: %s@." e)
                 | None -> ()
               end;
               Ok code
             end))
  in
  let machine =
    Arg.(value & opt string "scan_right" & info [ "m"; "machine" ] ~doc:"Zoo name or machine word.")
  in
  let input = Arg.(value & opt string "" & info [ "w"; "input" ] ~doc:"Input word over {1,-}.") in
  let traces = Arg.(value & flag & info [ "traces" ] ~doc:"Print the first traces.") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Render the computation snapshot by snapshot.")
  in
  let zoo = Arg.(value & flag & info [ "zoo" ] ~doc:"List the machine zoo and exit.") in
  let doc = "Run a Turing machine of the trace domain; inspect the zoo and traces." in
  Cmd.v (Cmd.info "tm" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ machine $ input $ traces
          $ explain $ zoo)

(* ------------------------------- diag ------------------------------ *)

let diag_cmd =
  let run common budget =
    with_common common @@ fun () ->
    let scan = Encode.encode Zoo.scan_right in
    let syntax =
      { Syntax_class.name = "demo";
        description = "the totality query of scan_right";
        accepts = (fun f -> Formula.equal f (Diagonal.totality_query scan));
        enumerate = (fun () -> Seq.return (Diagonal.totality_query scan)) }
    in
    report
      (Result.map
         (fun outcome ->
           (match outcome with
           | Diagonal.Missed_finite_query { machine; query; candidates_checked } ->
             Format.printf
               "the candidate syntax misses a finite query (Theorem 3.1):@.  total machine \
                %S@.  finite query %a@.  not equivalent to any of %d candidates@."
               machine Formula.pp query candidates_checked
           | Diagonal.Admits_unsafe { formula; witness_machine; witness_input } ->
             Format.printf
               "the candidate syntax admits an unsafe formula:@.  %a@.  (the machine %S \
                diverges on %S)@."
               Formula.pp formula witness_machine witness_input);
           0)
         (Diagonal.defeat ~syntax ~budget))
  in
  let budget = Arg.(value & opt int 4 & info [ "budget" ] ~doc:"Search budget.") in
  let doc = "Run the Theorem 3.1 diagonalization against a demo candidate syntax." in
  Cmd.v (Cmd.info "diag" ~doc) Term.(const run $ common_opts ~default_fuel:10_000 $ budget)

(* ------------------------------ halting ---------------------------- *)

let halting_cmd =
  let run common machine input =
    with_common common @@ fun () ->
    report
      (Result.bind (machine_of_string machine) (fun m ->
           let budget =
             match common.timeout_ms with
             | None -> Budget.of_fuel ~share:false common.fuel
             | Some t -> Budget.make ~fuel:common.fuel ~timeout_ms:t ()
           in
           Result.map
             (function
               | Halting_reduction.Halts { steps; answer } ->
                 Format.printf
                   "the machine halts after %d steps: the query P(M, @@c, x) is finite in \
                    the state c = %S, with %d certified answer tuples@."
                   steps input (Relation.cardinal answer);
                 0
               | Halting_reduction.Diverges_beyond { trace_count } ->
                 Format.printf
                   "no halt within %d steps: at least %d answer tuples so far (if the \
                    machine diverges, the answer is infinite — and Theorem 3.3 says no \
                    procedure can always tell)@."
                   common.fuel trace_count;
                 exit_partial)
             (Halting_reduction.check ~budget ~machine:m ~input ())))
  in
  let machine =
    Arg.(value & opt string "loop" & info [ "m"; "machine" ] ~doc:"Zoo name or machine word.")
  in
  let input = Arg.(value & opt string "" & info [ "w"; "input" ] ~doc:"Input word.") in
  let doc = "The Theorem 3.3 reduction: halting of (M, w) as relative safety over T." in
  Cmd.v (Cmd.info "halting" ~doc)
    Term.(const run $ common_opts ~default_fuel:1_000 $ machine $ input)

(* ------------------------------ explain ----------------------------- *)

let explain_cmd =
  (* Offline replay of an fq serve --slow-log entry: the server already
     recorded the trace id, the plan it chose and the estimated-vs-
     observed cardinality per node at the moment the request ran, so the
     entry re-renders without the server's state (which may since have
     been hot-reloaded away). *)
  let replay_from_log path entry_idx =
    match open_in path with
    | exception Sys_error msg -> Error (Printf.sprintf "slow log: %s" msg)
    | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
          close_in ic;
          List.rev acc
        | line -> (
          let line = String.trim line in
          if line = "" then go acc
          else
            match Json.parse line with
            | Ok j -> go (j :: acc)
            | Error _ -> go acc (* a torn tail is not worth failing the replay *))
      in
      let entries = go [] in
      let n = List.length entries in
      if n = 0 then Error (Printf.sprintf "slow log %s: no entries" path)
      else
        let k = match entry_idx with None -> n - 1 | Some k -> k in
        if k < 0 || k >= n then
          Error (Printf.sprintf "slow log %s: entry %d out of range (0..%d)" path k (n - 1))
        else begin
          let e = List.nth entries k in
          let str name = Option.bind (Json.member name e) Json.to_str_opt in
          let num name = Option.bind (Json.member name e) Json.to_float_opt in
          let int name = Option.bind (Json.member name e) Json.to_int_opt in
          let flag name =
            Option.value ~default:false (Option.bind (Json.member name e) Json.to_bool_opt)
          in
          let s name = Option.value ~default:"?" (str name) in
          Format.printf "slow-query log: %s, entry %d of %d@." path k n;
          Format.printf "trace:   %s   (request id %s, client %s)@." (s "trace") (s "id")
            (s "client");
          Format.printf "domain:  %s   (epoch %s)@." (s "domain")
            (match int "epoch" with Some ep -> string_of_int ep | None -> "?");
          Format.printf "formula: %s@." (s "formula");
          Format.printf "verdict: %s via %s@." (s "status") (s "tier");
          (match (num "latency_ms", int "ticks") with
          | Some ms, Some t -> Format.printf "budget:  %d ticks, %.1f ms@." t ms
          | _ -> ());
          let flags =
            List.filter snd [ ("brownout", flag "brownout"); ("cancelled", flag "cancelled") ]
          in
          if flags <> [] then
            Format.printf "flags:   %s@." (String.concat ", " (List.map fst flags));
          (match str "planned_tier" with
          | Some t -> Format.printf "planned: %s@." t
          | None -> ());
          (match str "plan" with
          | Some p -> Format.printf "plan:    %s@." p
          | None -> ());
          (match Option.bind (Json.member "nodes" e) Json.to_list_opt with
          | Some (_ :: _ as nodes) ->
            Format.printf "cost model (estimated vs observed output cardinality):@.";
            List.iter
              (fun nd ->
                let nstr nm = Option.bind (Json.member nm nd) Json.to_str_opt in
                let nnum nm = Option.bind (Json.member nm nd) Json.to_float_opt in
                let est =
                  match nnum "est" with Some v -> Printf.sprintf "%.1f" v | None -> "?"
                in
                let actual =
                  match nnum "observed_mean" with
                  | Some m -> Printf.sprintf "%.0f" m
                  | None -> "-"
                in
                Format.printf "  %-8s  est %-9s actual %s@."
                  (Option.value ~default:"?" (nstr "fp"))
                  est actual)
              nodes
          | _ -> ());
          (match (str "domain", str "formula") with
          | Some d, Some f -> Format.printf "replay:  fq explain -d %s '%s'@." d f
          | _ -> ());
          Ok 0
        end
  in
  let run common stats_out from_log entry domain rels consts formula =
    with_common common @@ fun () ->
    match (from_log, formula) with
    | Some path, _ -> report (replay_from_log path entry)
    | None, None -> report (Error "explain: a FORMULA is required (or --from-log FILE)")
    | None, Some formula ->
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.bind (parse_state rels consts) (fun state ->
               Result.bind (load_stats state common.stats_file) (fun stats ->
               let (module D : Domain.S) = domain in
               Format.printf "query:   %a@." Formula.pp f;
               Format.printf "domain:  %s@." D.name;
               Format.printf "engine:  %s@."
                 (match common.engine with
                 | Relalg.Row_engine -> "row"
                 | Relalg.Columnar_engine -> "columnar");
               let schema = Schema.relations (State.schema state) in
               let safe =
                 match Safe_range.check ~schema f with
                 | Safe_range.Safe_range ->
                   Format.printf "safety:  safe-range@.";
                   true
                 | Safe_range.Not_safe_range why ->
                   Format.printf "safety:  not safe-range (%s)@." why;
                   false
               in
               (* the compiled plan is shown from a separate dry compile, so
                  the span tree below reflects only the evaluation run; the
                  compiled tiers are only in play for safe-range queries
                  (active-domain semantics is wrong outside that fragment) *)
               let compiled =
                 if not safe then (
                   Format.printf "plan:    enumerate-and-decide (Section 1.1)@.";
                   None)
                 else
                   match Ranf.compile ?stats ~domain ~state f with
                   | Ok { Algebra_translate.plan; columns } ->
                     Format.printf "plan:    %a   [ranf-algebra; columns %s]@." Relalg.pp
                       plan
                       (if columns = [] then "<none>" else String.concat "," columns);
                     Some plan
                   | Error why -> (
                     Format.printf "plan:    ranf-algebra inapplicable: %s@." why;
                     match Algebra_translate.compile ?stats ~domain ~state f with
                     | Ok { Algebra_translate.plan; columns } ->
                       Format.printf "plan:    %a   [adom-algebra; columns %s]@." Relalg.pp
                         plan
                         (if columns = [] then "<none>" else String.concat "," columns);
                       Some plan
                     | Error why ->
                       Format.printf "plan:    adom-algebra inapplicable: %s@." why;
                       Format.printf "plan:    enumerate-and-decide (Section 1.1)@.";
                       None)
               in
               let budget = budget_of_common common in
               let cache = Decide_cache.create () in
               let rep, treport =
                 Telemetry.record (fun () ->
                     Query.eval_resilient ~budget ~cache ?stats ~domain ~state f)
               in
               let code =
                 match rep.Query.verdict with
                 | Query.Complete { answer; tier } ->
                   Format.printf "verdict: complete via %s (%d tuples): %a@." tier
                     (Relation.cardinal answer) Relation.pp answer;
                   0
                 | Query.Partial { tuples; reason; resume } ->
                   Format.printf "verdict: partial (%a after %d candidates), %d tuples so far@."
                     Budget.pp_failure reason resume.Query.seen (Relation.cardinal tuples);
                   exit_partial
                 | Query.Failed { reason } ->
                   Format.printf "verdict: failed (%s)@." reason;
                   exit_of_error reason
               in
               List.iter
                 (fun (tier, why) -> Format.printf "tier %s passed: %s@." tier why)
                 rep.Query.attempts;
               Format.printf "budget:  %d ticks, %.1f ms@." rep.Query.usage.Budget.ticks
                 rep.Query.usage.Budget.elapsed_ms;
               Format.printf "%a" Telemetry.pp_pretty treport;
               Format.printf "budget attribution (self ticks by span):@.";
               List.iter
                 (fun (name, t) -> if t > 0 then Format.printf "  %-28s %d@." name t)
                 (Telemetry.attribution treport);
               (match compiled with
               | None -> ()
               | Some plan ->
                 let arity_of = Schema.arity (State.schema state) in
                 let st =
                   match stats with Some s -> s | None -> Optimizer.Stats.of_state state
                 in
                 let rec leaves = function
                   | Relalg.Join (_, p, q) | Relalg.Product (p, q) -> leaves p @ leaves q
                   | Relalg.Select (_, p) | Relalg.Project (_, p) -> leaves p
                   | Relalg.Rel r -> [ r ]
                   | Relalg.Lit _ -> [ "<lit>" ]
                   | Relalg.Union _ | Relalg.Diff _ -> []
                 in
                 (match leaves plan with
                 | _ :: _ :: _ as names ->
                   Format.printf "join order: %s (left-deep: the prefix probes, each new \
                                  factor builds)@."
                     (String.concat ", " names)
                 | _ -> ());
                 Format.printf "cost model (estimated vs observed output cardinality):@.";
                 let seen = Hashtbl.create 16 in
                 let rec walk node =
                   let fp = Relalg.fingerprint node in
                   if not (Hashtbl.mem seen fp) then begin
                     Hashtbl.add seen fp ();
                     let est =
                       match Optimizer.estimate st ~arity_of node with
                       | e -> Printf.sprintf "%.1f" e
                       | exception _ -> "?"
                     in
                     let actual =
                       match
                         List.assoc_opt (Relalg.node_metric fp) treport.Telemetry.histograms
                       with
                       | Some h when h.Telemetry.count > 0 ->
                         Printf.sprintf "%.0f" (h.Telemetry.sum /. float_of_int h.Telemetry.count)
                       | _ -> "-"
                     in
                     Format.printf "  %-8s  est %-9s actual %-6s %s@." fp est actual
                       (node_label node)
                   end;
                   match node with
                   | Relalg.Rel _ | Relalg.Lit _ -> ()
                   | Relalg.Select (_, p) | Relalg.Project (_, p) -> walk p
                   | Relalg.Product (p, q)
                   | Relalg.Join (_, p, q)
                   | Relalg.Union (p, q)
                   | Relalg.Diff (p, q) ->
                     walk p;
                     walk q
                 in
                 walk plan);
               let s = Decide_cache.stats cache in
               if s.Decide_cache.hits + s.Decide_cache.misses > 0 then
                 Format.printf "decide cache: %d hits / %d lookups (%.0f%% hit rate)%s@."
                   s.Decide_cache.hits
                   (s.Decide_cache.hits + s.Decide_cache.misses)
                   (100. *. Decide_cache.hit_rate s)
                   (if s.Decide_cache.evictions > 0 then
                      Printf.sprintf ", %d evictions" s.Decide_cache.evictions
                    else "");
               Format.printf "%a" Telemetry.pp_metrics treport;
               (match stats_out with
               | None -> ()
               | Some path ->
                 write_profile path treport;
                 Format.printf "stats profile written to %s@." path);
               Ok code))))
  in
  let doc =
    "Explain how a query is answered: the safe-range check, the compiled algebra plan (or \
     why compilation is inapplicable), the answering tier of the degradation chain, the \
     recorded span tree, the budget attribution (which engine spent the fuel), and the \
     cost model's estimated vs observed cardinality per plan node. With $(b,--stats-out) \
     the observed cardinalities become a stats profile that $(b,--stats) feeds back into \
     the cost-based optimizer on later runs. With $(b,--from-log), replay an entry of an \
     $(b,fq serve --slow-log) file offline instead: the trace, chosen plan and \
     estimates-vs-observed the server recorded when the slow request actually ran."
  in
  let stats_out =
    let doc =
      "Write the run's observed per-node output cardinalities (the relalg.node_card \
       histograms) to FILE in stats-profile format, ready to feed back via $(b,--stats)."
    in
    Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)
  in
  let from_log =
    Arg.(value & opt (some string) None
         & info [ "from-log" ] ~docv:"FILE"
             ~doc:"Replay an entry of an $(b,fq serve --slow-log) JSONL file instead of \
                   evaluating a formula.")
  in
  let entry =
    Arg.(value & opt (some int) None
         & info [ "entry" ] ~docv:"N"
             ~doc:"With $(b,--from-log): the 0-based entry to replay (default: the \
                   newest).")
  in
  let formula_opt =
    let doc = "The formula, in the library's concrete syntax (omit with --from-log)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ stats_out $ from_log $ entry
          $ domain_arg $ relation_arg $ constant_arg $ formula_opt)

(* ------------------------------- batch ------------------------------ *)

(* Supervised parallel batch evaluation.  Each (domain, formula) job runs
   crash-isolated under the supervisor: injected or genuine engine crashes
   become structured per-job outcomes, transient faults and budget-tripped
   partial verdicts retry with exponential backoff on a fair share of the
   job's remaining fuel (carrying the resume token forward), and a
   persistently failing decision procedure trips a per-domain circuit
   breaker that sends later jobs down the degradation chain instead of
   hammering it. *)

type batch_outcome =
  | B_complete
  | B_partial
  | B_failed

type batch_result = {
  rep : Outcome.t;
  crashed : bool;
  retried : int;
  trace : string option;  (** the trace id echoed by the server (remote, traced runs) *)
}

let failed_outcome reason =
  { Outcome.verdict = Outcome.Failed { reason };
    usage = { Budget.ticks = 0; elapsed_ms = 0. };
    attempts = [] }

let batch_outcome_of r =
  match r.rep.Outcome.verdict with
  | Outcome.Complete _ -> B_complete
  | Outcome.Partial _ -> B_partial
  | Outcome.Failed _ -> B_failed

let batch_line idx r =
  let suffix = if r.retried > 0 then Printf.sprintf " (retried %d)" r.retried else "" in
  let suffix =
    match r.trace with None -> suffix | Some t -> Printf.sprintf "%s [trace %s]" suffix t
  in
  match r.rep.Outcome.verdict with
  | Outcome.Complete { answer; tier } ->
    Format.asprintf "[%d] complete via %s (%d tuples): %a%s" idx tier
      (Relation.cardinal answer) Relation.pp answer suffix
  | Outcome.Partial { tuples; reason; resume } ->
    Format.asprintf "[%d] partial after %d candidates (%a), %d tuples so far%s" idx
      resume.Outcome.seen Budget.pp_failure reason (Relation.cardinal tuples) suffix
  | Outcome.Failed { reason } ->
    Printf.sprintf "[%d] %s: %s%s" idx (if r.crashed then "crashed" else "failed") reason
      suffix

let batch_job ~state ~stats ~cache ~breakers ~fuel ~timeout_ms ~retries ~chaos idx
    (domain_name, (domain : Domain.t), text) =
  let breaker =
    match Hashtbl.find_opt breakers domain_name with
    | Some b -> b
    | None -> assert false (* populated for every distinct domain up front *)
  in
  (* Breaker outside the cache: a cached verdict answers even while the
     circuit is open, and the circuit-open error itself never enters the
     cache (it describes the breaker's state, not the formula). *)
  let cached = Decide_cache.domain cache domain in
  let (module C : Domain.S) = cached in
  let guarded =
    Domain.with_decide cached (fun f ->
        if not (Supervisor.Breaker.allow breaker) then
          Error
            (Printf.sprintf "unsupported: circuit open: %s decision procedure cooling down"
               domain_name)
        else
          match C.decide f with
          | Ok _ as r ->
            Supervisor.Breaker.success breaker;
            r
          | Error e as r ->
            (* A budget trip is the governor's verdict on this run, not
               evidence the procedure is broken. *)
            (match Budget.failure_of_string e with
            | Some (Budget.Unsupported _) | None -> Supervisor.Breaker.failure breaker
            | Some _ -> ());
            r
          | exception e ->
            Supervisor.Breaker.failure breaker;
            raise e)
  in
  let plan =
    (* One plan per job, seeded from the job index: the per-site hit
       numbering stays reproducible whatever --jobs is, and counters
       persist across the job's attempts so flaky faults are retryable. *)
    match chaos with
    | None -> None
    | Some (seed, permille) -> Some (Fault.chaos ~permille ~seed:(seed + (1000 * idx)) ())
  in
  let spent = ref 0 in
  let resume = ref None in
  let attempt k =
    match parse_formula text with
    | Error reason ->
      { Query.verdict = Query.Failed { reason };
        usage = { Budget.ticks = 0; elapsed_ms = 0. };
        attempts = [] }
    | Ok f ->
      let fuel_k =
        Supervisor.fair_share ~total:fuel ~spent:!spent ~attempt:k ~max_attempts:retries
      in
      let budget = Budget.make ~fuel:fuel_k ?timeout_ms () in
      let work () =
        Query.eval_resilient ~budget ?resume:!resume ~stats ~domain:guarded ~state f
      in
      let rep = match plan with Some p -> Fault.with_plan p work | None -> work () in
      spent := !spent + rep.Query.usage.Budget.ticks;
      (match rep.Query.verdict with
      | Query.Partial { resume = r; _ } -> resume := Some r
      | _ -> ());
      rep
  in
  let policy = { Supervisor.default_policy with max_attempts = retries } in
  let run =
    Supervisor.supervise ~policy
      ~retry_value:(fun rep ->
        match rep.Query.verdict with
        | Query.Partial { reason = Budget.Fuel_exhausted | Budget.Deadline_exceeded; _ } ->
          Some "partial verdict, fuel remaining"
        | _ -> None)
      ~name:(Printf.sprintf "job%d:%s" idx domain_name)
      attempt
  in
  let retried = run.Supervisor.retried in
  match run.Supervisor.outcome with
  | Supervisor.Value rep -> { rep; crashed = false; retried; trace = None }
  | Supervisor.Crashed { reason; _ } ->
    { rep = failed_outcome reason; crashed = true; retried; trace = None }

(* --connect ADDR: unix:PATH, tcp:PORT, a bare PORT, or a bare PATH *)
let addr_conv =
  let parse s =
    match Server.addr_of_string s with
    | Ok addr -> Ok addr
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Server.pp_addr)

(* Remote batch, on the multi-endpoint pool: discover the topology
   behind ADDR (a lone fq serve answers with itself; an fq fleet with
   its live workers), spread the pipelined jobs across one connection
   per worker, and let the pool wait out admission rejects and fail
   dead-connection jobs over — resume tokens carried — so a worker
   crash mid-batch costs retries, not answers. *)
let batch_remote ~common ~addr ~trace_prefix job_list =
  let jobs =
    List.mapi
      (fun idx (name, _, text) ->
        { Client.domain = Some name;
          formula = text;
          fuel = Some common.fuel;
          timeout_ms = common.timeout_ms;
          trace = Option.map (fun p -> Printf.sprintf "%s-%d" p idx) trace_prefix })
      job_list
  in
  Result.bind (Client.run_jobs ~addr jobs) @@ fun pooled ->
  let results =
    Array.map
      (fun (r : Client.job_result) ->
        (* the reply's trace id is surfaced only when this run asked for
           tracing: untraced runs keep their exact historical output *)
        let trace =
          if trace_prefix = None then None
          else
            Option.bind r.Client.raw (fun raw ->
                Option.bind (Json.member "trace" raw) Json.to_str_opt)
        in
        let rep =
          match r.Client.reply with
          | Protocol.R_outcome rep -> rep
          | Protocol.R_malformed reason -> failed_outcome reason
          | Protocol.R_rejected _ | Protocol.R_ok _ -> failed_outcome "no reply"
        in
        { rep; crashed = false; retried = r.Client.rejected_retries; trace })
      pooled
  in
  (* the shared cache lives server-side; ask it for the eviction count
     (a fleet parent has no decide_cache member — evictions read 0) *)
  let evictions =
    match Client.connect ~retries:5 ~delay_ms:50 addr with
    | Error _ -> 0
    | Ok c ->
      let v =
        match Client.request c (Protocol.Metrics { id = "batch-metrics" }) with
        | Ok (_, Protocol.R_ok j) ->
          Option.value ~default:0
            (Option.bind (Json.member "decide_cache" j) (fun dc ->
                 Option.bind (Json.member "evictions" dc) Json.to_int_opt))
        | _ -> 0
      in
      Client.close c;
      v
  in
  Ok (results, 0, evictions)

let batch_cmd =
  let run common domain rels consts jobs retries chaos_seed chaos_permille file formulas
      connect trace_prefix json =
    with_common common @@ fun () ->
    report
      (Result.bind (parse_state rels consts) @@ fun state ->
       let default_name =
         let (module D : Domain.S) = domain in
         D.name
       in
       let resolve spec =
         (* a line is either "FORMULA" (the --domain default) or
            "DOMAIN<TAB>FORMULA" *)
         match String.index_opt spec '\t' with
         | None -> Ok (default_name, domain, spec)
         | Some i -> (
           let dname = String.sub spec 0 i in
           let text = String.sub spec (i + 1) (String.length spec - i - 1) in
           match List.assoc_opt dname domains with
           | Some d ->
             let (module D : Domain.S) = d in
             Ok (D.name, d, text)
           | None -> Error (Printf.sprintf "batch: unknown domain %S in %S" dname spec))
       in
       let file_lines =
         match file with
         | None -> Ok []
         | Some path -> (
           match open_in path with
           | exception Sys_error msg -> Error (Printf.sprintf "batch file: %s" msg)
           | ic ->
             let rec go acc =
               match input_line ic with
               | line ->
                 let line = String.trim line in
                 if line = "" || line.[0] = '#' then go acc else go (line :: acc)
               | exception End_of_file ->
                 close_in ic;
                 List.rev acc
             in
             Ok (go []))
       in
       Result.bind file_lines @@ fun file_lines ->
       let rec resolve_all = function
         | [] -> Ok []
         | spec :: rest ->
           Result.bind (resolve spec) (fun j ->
               Result.map (fun js -> j :: js) (resolve_all rest))
       in
       Result.bind (resolve_all (formulas @ file_lines)) @@ fun job_list ->
       if job_list = [] then Error "batch: no formulas (positional FORMULA... or --file FILE)"
       else begin
         let ran =
           match connect with
           | Some addr -> batch_remote ~common ~addr ~trace_prefix job_list
           | None ->
             (* one mutex-safe stats instance per run, shared by every
                worker domain (profile file included when --stats given) *)
             Result.bind (load_stats state common.stats_file) @@ fun stats ->
             let stats =
               match stats with Some s -> s | None -> Optimizer.Stats.of_state state
             in
             let cache = Decide_cache.create () in
             let breakers = Hashtbl.create 8 in
             List.iter
               (fun (name, _, _) ->
                 if not (Hashtbl.mem breakers name) then
                   Hashtbl.add breakers name (Supervisor.Breaker.create ()))
               job_list;
             let chaos =
               match chaos_seed with None -> None | Some s -> Some (s, chaos_permille)
             in
             let worker (idx, job) =
               batch_job ~state ~stats ~cache ~breakers ~fuel:common.fuel
                 ~timeout_ms:common.timeout_ms ~retries ~chaos idx job
             in
             let indexed = Array.of_list (List.mapi (fun i j -> (i, j)) job_list) in
             let results = Supervisor.parallel_map ~jobs worker indexed in
             let trips =
               Hashtbl.fold (fun _ b n -> n + Supervisor.Breaker.trips b) breakers 0
             in
             Ok (results, trips, (Decide_cache.stats cache).Decide_cache.evictions)
         in
         Result.bind ran @@ fun (results, trips, evictions) ->
         Array.iteri
           (fun idx r ->
             if json then print_endline (Json.to_string (Outcome.to_json r.rep))
             else Format.printf "%s@." (batch_line idx r))
           results;
         let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results in
         let completed = count (fun r -> batch_outcome_of r = B_complete) in
         let partial = count (fun r -> batch_outcome_of r = B_partial) in
         let failed = count (fun r -> batch_outcome_of r = B_failed) in
         let retries_total = Array.fold_left (fun n r -> n + r.retried) 0 results in
         let summary =
           Printf.sprintf
             "batch: %d jobs, %d complete, %d partial, %d failed, %d retries, %d breaker \
              trips, %d evictions"
             (Array.length results) completed partial failed retries_total trips evictions
         in
         (* in --json mode stdout carries only outcome objects *)
         if json then Format.eprintf "%s@." summary else Format.printf "%s@." summary;
         Ok (if failed > 0 then 1 else if partial > 0 then exit_partial else 0)
       end)
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains evaluating jobs in parallel (OCaml 5 domain pool).")
  in
  let retries =
    Arg.(value & opt int 3
         & info [ "retries" ]
             ~doc:"Maximum attempts per job (first try included). Transient faults and \
                   budget-tripped partial verdicts retry with exponential backoff; the \
                   resume token carries the scan position across attempts.")
  in
  let chaos_seed =
    Arg.(value & opt (some int) None
         & info [ "chaos-seed" ]
             ~doc:"Enable deterministic fault injection, seeding job $(i,i)'s schedule with \
                   SEED + 1000i. Identical runs replay identical faults regardless of \
                   $(b,--jobs).")
  in
  let chaos_permille =
    Arg.(value & opt int 20
         & info [ "chaos-permille" ] ~doc:"Per-site injection probability, in permille.")
  in
  let file =
    Arg.(value & opt (some string) None
         & info [ "f"; "file" ]
             ~doc:"Read jobs from FILE: one FORMULA per line (or DOMAIN<TAB>FORMULA); blank \
                   lines and # comments skipped.")
  in
  let formulas =
    Arg.(value & pos_all string [] & info [] ~docv:"FORMULA" ~doc:"Formulas to evaluate.")
  in
  let connect =
    Arg.(value & opt (some addr_conv) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Send the jobs to a running $(b,fq serve) at ADDR (unix:PATH, tcp:PORT, \
                   or a bare PATH/PORT) over one pipelined connection instead of a local \
                   pool. Admission rejects wait out the server's retry hint and resend \
                   with the returned resume token.")
  in
  let trace_prefix =
    Arg.(value & opt (some string) None
         & info [ "trace-prefix" ] ~docv:"PREFIX"
             ~doc:"With $(b,--connect): stamp job $(i,i)'s request with the trace id \
                   PREFIX-$(i,i). The server carries it through its telemetry, sampled \
                   traces and slow-query log, and echoes it in the reply (shown per job \
                   line).")
  in
  let doc =
    "Evaluate many queries under supervision: a parallel worker pool with per-job budgets, \
     crash isolation, retry with backoff, per-domain circuit breakers, a shared decision \
     cache — and an optional deterministic chaos schedule for fault drills. With \
     $(b,--connect), the same jobs run against a live $(b,fq serve) instead."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ domain_arg $ relation_arg
          $ constant_arg $ jobs $ retries $ chaos_seed $ chaos_permille $ file $ formulas
          $ connect $ trace_prefix $ json_arg)

(* ------------------------------- serve ------------------------------ *)

let serve_cmd =
  let run common domain rels consts socket port serve_jobs max_inflight client_share
      snapshot journal state_file trace_sample slow_ms slow_log metrics_file =
    with_common common @@ fun () ->
    report
      (Result.bind
         (match state_file with
         | Some path -> Codec.load_state path
         | None -> parse_state rels consts)
       @@ fun state ->
       Result.bind
         (match (socket, port) with
         | Some path, None -> Ok (Server.Unix_path path)
         | None, Some port -> Ok (Server.Tcp port)
         | Some _, Some _ -> Error "serve: give either --socket or --port, not both"
         | None, None -> Error "serve: an address is required (--socket PATH or --port PORT)")
       @@ fun addr ->
       Result.bind (load_stats state common.stats_file) @@ fun stats ->
       let (module D : Domain.S) = domain in
       let base = Server.default_config ~state addr in
       let cfg =
         { base with
           Server.jobs = serve_jobs;
           max_inflight;
           client_share;
           snapshot;
           journal;
           state_file;
           trace_sample;
           slow_ms;
           slow_log;
           metrics_file;
           default_fuel = common.fuel;
           max_fuel = max base.Server.max_fuel common.fuel;
           default_timeout_ms = common.timeout_ms;
           default_domain = D.name;
           stats = (match stats with Some s -> s | None -> base.Server.stats) }
       in
       Server.run cfg)
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix socket at PATH.")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT" ~doc:"Listen on TCP 127.0.0.1:PORT.")
  in
  let serve_jobs =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ]
             ~doc:"Worker domains evaluating admitted requests (OCaml 5 domain pool).")
  in
  let max_inflight =
    Arg.(value & opt int 256
         & info [ "max-inflight" ]
             ~doc:"Server-wide cap on admitted-but-unfinished requests; requests over the \
                   cap are rejected with a resume token and a retry hint, never queued \
                   unboundedly.")
  in
  let client_share =
    Arg.(value & opt int 64
         & info [ "client-share" ]
             ~doc:"Per-connection in-flight cap: one client cannot occupy the whole \
                   admission budget.")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~docv:"FILE"
             ~doc:"Decide-cache snapshot: loaded at boot if FILE exists (warm start), \
                   written on graceful shutdown, on SIGUSR1, and on a $(b,snapshot) \
                   request.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Decide-cache journal: every fresh verdict is appended as a CRC-framed \
                   record the moment it lands, and recovered (torn tails truncated, \
                   corrupt records skipped) at the next boot — so a crash loses at most \
                   one record, not the warm cache. Defaults to SNAPSHOT.journal when \
                   $(b,--snapshot) is set.")
  in
  let state_file =
    Arg.(value & opt (some string) None
         & info [ "state-file" ] ~docv:"FILE"
             ~doc:"Load the served database from FILE (one NAME/ARITY=... or NAME=VALUE \
                   spec per line) instead of $(b,-r)/$(b,-c), and re-read it on SIGHUP \
                   or a pathless $(b,fq ctl ADDR reload) — a zero-downtime state swap: \
                   in-flight requests finish on the old database, new admissions see \
                   the new one.")
  in
  let trace_sample =
    Arg.(value & opt int 0
         & info [ "trace-sample" ] ~docv:"N"
             ~doc:"Head-based trace sampling: keep the full span tree of 1 in N completed \
                   eval requests in a bounded in-memory ring, served by $(b,fq ctl ADDR \
                   traces) and $(b,fq top). 0 (the default) disables sampling; request \
                   trace ids still propagate and echo.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-query threshold: eval requests at or over MS milliseconds (and \
                   any browned-out or watchdog-cancelled request) append a JSONL record \
                   — trace, plan, estimated-vs-observed cardinalities, budget usage — \
                   to the $(b,--slow-log) file.")
  in
  let slow_log =
    Arg.(value & opt (some string) None
         & info [ "slow-log" ] ~docv:"FILE"
             ~doc:"Slow-query log path (JSONL, appended). Replay an entry offline with \
                   $(b,fq explain --from-log FILE).")
  in
  let metrics_file =
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"FILE"
             ~doc:"Dump the Prometheus text exposition to FILE atomically (tmp + rename) \
                   every couple of seconds and at shutdown, for file-based scrapers.")
  in
  let doc =
    "Serve queries persistently: a daemon on a Unix or TCP socket speaking \
     newline-delimited JSON (the Outcome schema of $(b,fq eval --json)), with bounded \
     admission, per-client fair share, per-domain circuit breakers, per-request budgets, \
     a shared decide cache with snapshot warm-start and crash-safe journaling, hot state \
     reload (SIGHUP / $(b,fq ctl reload)), overload shedding, and live \
     metrics/health/explain."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ domain_arg $ relation_arg
          $ constant_arg $ socket $ port $ serve_jobs $ max_inflight $ client_share
          $ snapshot $ journal $ state_file $ trace_sample $ slow_ms $ slow_log
          $ metrics_file)

(* ------------------------------- fleet ------------------------------ *)

let fleet_cmd =
  let run common domain rels consts socket port workers serve_jobs max_inflight
      client_share snapshot journal state_file restart_limit flap_window_ms
      base_backoff_ms max_backoff_ms probe_interval_ms probe_failures =
    with_common common @@ fun () ->
    report
      (Result.bind
         (match state_file with
         | Some path -> Codec.load_state path
         | None -> parse_state rels consts)
       @@ fun state ->
       Result.bind
         (match (socket, port) with
         | Some path, None -> Ok (Server.Unix_path path)
         | None, Some port -> Ok (Server.Tcp port)
         | Some _, Some _ -> Error "fleet: give either --socket or --port, not both"
         | None, None -> Error "fleet: an address is required (--socket PATH or --port PORT)")
       @@ fun addr ->
       Result.bind (load_stats state common.stats_file) @@ fun stats ->
       let (module D : Domain.S) = domain in
       let base = Fleet.default_config ~state addr in
       let serve =
         { base.Fleet.serve with
           Server.jobs = serve_jobs;
           max_inflight;
           client_share;
           snapshot;
           journal;
           state_file;
           default_fuel = common.fuel;
           max_fuel = max base.Fleet.serve.Server.max_fuel common.fuel;
           default_timeout_ms = common.timeout_ms;
           default_domain = D.name;
           stats = (match stats with Some s -> s | None -> base.Fleet.serve.Server.stats) }
       in
       Fleet.run
         { base with
           Fleet.workers;
           restart_limit;
           flap_window_ms;
           base_backoff_ms;
           max_backoff_ms;
           probe_interval_ms;
           probe_failures;
           serve })
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Control socket at PATH; worker $(i,i) serves on PATH.$(i,i).")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Control socket on TCP 127.0.0.1:PORT; worker $(i,i) serves on \
                   PORT+1+$(i,i).")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker processes to fork and supervise (each an independent crash \
                   domain running the full $(b,fq serve) engine).")
  in
  let serve_jobs =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~doc:"Worker domains per worker process.")
  in
  let max_inflight =
    Arg.(value & opt int 256
         & info [ "max-inflight" ] ~doc:"Per-worker admission cap (as in fq serve).")
  in
  let client_share =
    Arg.(value & opt int 64
         & info [ "client-share" ] ~doc:"Per-connection in-flight cap (as in fq serve).")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~docv:"FILE"
             ~doc:"Shared decide-cache snapshot, owned by the parent: workers load it \
                   warm (read-only) and journal their fresh verdicts; the parent folds \
                   worker journals back in and republishes.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Per-worker journal base path: worker $(i,w) appends to FILE.$(i,w). \
                   Defaults to SNAPSHOT.journal.$(i,w) when $(b,--snapshot) is set.")
  in
  let state_file =
    Arg.(value & opt (some string) None
         & info [ "state-file" ] ~docv:"FILE"
             ~doc:"Load the served database from FILE and roll the fleet onto a new \
                   version on SIGHUP or $(b,fq ctl ADDR reload) — one worker at a time, \
                   never serving zero workers.")
  in
  let restart_limit =
    Arg.(value & opt int 5
         & info [ "restart-limit" ] ~docv:"K"
             ~doc:"Flap breaker: K crashes inside $(b,--flap-window-ms) park the worker \
                   (no further respawns; traffic redistributed) until the fleet is \
                   restarted.")
  in
  let flap_window_ms =
    Arg.(value & opt int 30_000
         & info [ "flap-window-ms" ] ~docv:"MS" ~doc:"Flap-detection window.")
  in
  let base_backoff_ms =
    Arg.(value & opt int 100
         & info [ "backoff-ms" ] ~docv:"MS"
             ~doc:"First respawn delay after a crash; doubles per crash up to \
                   $(b,--max-backoff-ms), and resets after a healthy stretch.")
  in
  let max_backoff_ms =
    Arg.(value & opt int 5_000
         & info [ "max-backoff-ms" ] ~docv:"MS" ~doc:"Respawn-backoff ceiling.")
  in
  let probe_interval_ms =
    Arg.(value & opt int 1_000
         & info [ "probe-interval-ms" ] ~docv:"MS"
             ~doc:"Wire health-probe period; a worker whose pid is alive but whose \
                   listener is wedged fails probes and is restarted.")
  in
  let probe_failures =
    Arg.(value & opt int 3
         & info [ "probe-failures" ] ~docv:"N"
             ~doc:"Consecutive probe misses before the worker is killed and restarted.")
  in
  let doc =
    "Serve queries from a supervised multi-process fleet: a parent forks N independent \
     $(b,fq serve) workers (own listener, own journal, shared read-only snapshot), \
     restarts crashed workers with exponential backoff and a flap-detection circuit \
     breaker, probes liveness over the wire, rolls state reloads one worker at a time \
     (zero downtime), and drains gracefully on SIGTERM — folding every worker's journal \
     into the shared snapshot before exit. Clients ($(b,fq batch --connect), $(b,fq \
     ctl)) discover workers via the $(b,fleet-status) op and fail over between them."
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ domain_arg $ relation_arg
          $ constant_arg $ socket $ port $ workers $ serve_jobs $ max_inflight
          $ client_share $ snapshot $ journal $ state_file $ restart_limit
          $ flap_window_ms $ base_backoff_ms $ max_backoff_ms $ probe_interval_ms
          $ probe_failures)

(* -------------------------------- ctl ------------------------------- *)

let ctl_cmd =
  let run common addr op arg =
    with_common common @@ fun () ->
    report
      (Result.bind
         (match op with
         | "ping" -> Ok (Protocol.Ping { id = "ctl" })
         | "metrics" -> Ok (Protocol.Metrics { id = "ctl" })
         | "health" -> Ok (Protocol.Health { id = "ctl" })
         | "snapshot" -> Ok (Protocol.Snapshot { id = "ctl" })
         | "shutdown" -> Ok (Protocol.Shutdown { id = "ctl" })
         | "reload" -> Ok (Protocol.Reload { id = "ctl"; path = arg })
         | "fleet-status" -> Ok (Protocol.Fleet_status { id = "ctl" })
         | "traces" -> (
           match arg with
           | None -> Ok (Protocol.Traces { id = "ctl"; limit = None })
           | Some a -> (
             match int_of_string_opt a with
             | Some n -> Ok (Protocol.Traces { id = "ctl"; limit = Some n })
             | None -> Error (Printf.sprintf "ctl: traces limit must be an integer, got %S" a)))
         | "explain" -> (
           match arg with
           | Some f ->
             Ok (Protocol.Explain { id = "ctl"; domain = None; formula = f; trace = None })
           | None -> Error "ctl: explain needs a FORMULA argument")
         | op ->
           Error
             (Printf.sprintf
                "ctl: unknown op %S (ping, metrics, health, snapshot, shutdown, reload, \
                 fleet-status, traces, explain)"
                op))
       @@ fun req ->
       (* --timeout-ms bounds the whole interaction: the boot-retry loop
          stops at the deadline, and reads/writes against a wedged server
          time out at the OS level — exit 4, never a hang. *)
       Result.bind (Client.connect ~retries:100 ~delay_ms:50 ?timeout_ms:common.timeout_ms addr)
       @@ fun c ->
       let reply = Result.bind (Client.send c req) (fun () -> Client.recv_json c) in
       Client.close c;
       Result.map
         (fun j ->
           (* metrics prints the exposition text itself: deterministically
              sorted (families by name, samples by label), scrape-ready *)
           (match
              if op = "metrics" then Option.bind (Json.member "exposition" j) Json.to_str_opt
              else None
            with
           | Some text -> print_string text
           | None -> print_endline (Json.to_string j));
           0)
         reply)
  in
  let addr =
    Arg.(required & pos 0 (some addr_conv) None
         & info [] ~docv:"ADDR" ~doc:"Server address (unix:PATH, tcp:PORT, PATH, or PORT).")
  in
  let op =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OP"
             ~doc:"One of ping, metrics, health, snapshot, shutdown, reload, \
                   fleet-status, traces, explain. $(b,metrics) prints the versioned \
                   Prometheus text exposition (sorted, scrape-ready); $(b,fleet-status) \
                   prints the serving topology (a lone $(b,fq serve) answers with \
                   itself, an $(b,fq fleet) with its live workers); $(b,traces) prints \
                   the sampled-trace ring as JSON.")
  in
  let arg =
    Arg.(value & pos 2 (some string) None
         & info [] ~docv:"ARG"
             ~doc:"Formula for the explain op; server-side state file for the reload op \
                   (omit to re-read the server's --state-file); newest-N limit for the \
                   traces op.")
  in
  let doc =
    "Send one control request to a running $(b,fq serve) (retrying the connection while \
     the server boots) and print its raw JSON reply. With $(b,--timeout-ms), a wedged \
     server yields exit 4 instead of a hang."
  in
  Cmd.v (Cmd.info "ctl" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ addr $ op $ arg)

(* -------------------------------- top ------------------------------- *)

(* fq top: poll a running server's metrics + traces ops and render a
   live terminal summary — request rates, latency/fuel quantiles, cache
   hit rate, breaker states, and the slowest sampled requests. *)

let top_cmd =
  let sum_counter samples name =
    List.fold_left (fun a (m, _, v) -> if m = name then a +. v else a) 0. samples
  in
  let first samples name =
    List.find_map (fun (m, _, v) -> if m = name then Some v else None) samples
  in
  let labeled samples name =
    List.filter_map (fun (m, ls, v) -> if m = name then Some (ls, v) else None) samples
  in
  (* Rebuild one merged histogram from every <name>_bucket series: each
     series' cumulative counts become per-bucket increments, increments
     sum across label sets (every series shares the Aggregate ladder),
     and quantiles read off the merged (le, count) list. *)
  let hist_increments samples name =
    let bucket = name ^ "_bucket" in
    let series = Hashtbl.create 8 in
    List.iter
      (fun (m, labels, v) ->
        if m = bucket then
          match List.assoc_opt "le" labels with
          | None -> ()
          | Some le ->
            let key =
              String.concat ";"
                (List.sort compare
                   (List.filter_map
                      (fun (k, v) -> if k = "le" then None else Some (k ^ "=" ^ v))
                      labels))
            in
            let lef = if le = "+Inf" then infinity else float_of_string le in
            let prev = Option.value ~default:[] (Hashtbl.find_opt series key) in
            Hashtbl.replace series key ((lef, v) :: prev))
      samples;
    let incs = Hashtbl.create 32 in
    Hashtbl.iter
      (fun _ pts ->
        let pts = List.sort compare pts in
        let prev = ref 0. in
        List.iter
          (fun (le, cum) ->
            let d = cum -. !prev in
            prev := cum;
            if d > 0. then
              Hashtbl.replace incs le
                (d +. Option.value ~default:0. (Hashtbl.find_opt incs le)))
          pts)
      series;
    List.sort compare (Hashtbl.fold (fun le d acc -> (le, d) :: acc) incs [])
  in
  let quantile incs q =
    let total = List.fold_left (fun a (_, d) -> a +. d) 0. incs in
    if total <= 0. then None
    else
      let rank = q *. total in
      let rec go acc = function
        | [] -> None
        | (le, d) :: tl ->
          let acc = acc +. d in
          if acc >= rank then Some le else go acc tl
      in
      go 0. incs
  in
  let pq incs q =
    match quantile incs q with
    | None -> "-"
    | Some le when le = infinity -> "inf"
    | Some le -> if le >= 100. then Printf.sprintf "%.0f" le else Printf.sprintf "%.3g" le
  in
  let jq incs q =
    match quantile incs q with Some le when le < infinity -> Json.Float le | _ -> Json.Null
  in
  let scrape c =
    Result.bind (Client.request c (Protocol.Metrics { id = "top" })) @@ fun (_, r) ->
    Result.bind
      (match r with
      | Protocol.R_ok j -> (
        match Option.bind (Json.member "exposition" j) Json.to_str_opt with
        | Some text -> (
          match Aggregate.parse_exposition text with
          | samples -> Ok (j, samples)
          | exception Failure msg -> Error ("top: bad exposition: " ^ msg))
        | None -> Error "top: metrics reply carries no exposition")
      | _ -> Error "top: unexpected metrics reply")
    @@ fun (mj, samples) ->
    Result.bind (Client.request c (Protocol.Traces { id = "top"; limit = None }))
    @@ fun (_, tr) ->
    match tr with
    | Protocol.R_ok tj ->
      let traces =
        Option.value ~default:[] (Option.bind (Json.member "traces" tj) Json.to_list_opt)
      in
      let sample_every =
        Option.value ~default:0 (Option.bind (Json.member "sample_every" tj) Json.to_int_opt)
      in
      Ok (mj, samples, traces, sample_every)
    | _ -> Error "top: unexpected traces reply"
  in
  let run common addr once json interval_ms limit =
    with_common common @@ fun () ->
    report
      (Result.bind
         (Client.connect ~retries:100 ~delay_ms:50 ?timeout_ms:common.timeout_ms addr)
       @@ fun c ->
       Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
       let once = once || json in
       let rec loop prev =
         Result.bind (scrape c) @@ fun (mj, samples, traces, sample_every) ->
         let now = Unix.gettimeofday () in
         let epoch = Option.bind (Json.member "epoch" mj) Json.to_int_opt in
         let g name = match first samples name with Some v -> int_of_float v | None -> 0 in
         let requests = sum_counter samples "fq_requests_total" in
         let outcomes =
           let tally = Hashtbl.create 4 in
           List.iter
             (fun (ls, v) ->
               match List.assoc_opt "status" ls with
               | Some st ->
                 Hashtbl.replace tally st
                   (v +. Option.value ~default:0. (Hashtbl.find_opt tally st))
               | None -> ())
             (labeled samples "fq_eval_outcomes_total");
           List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
         in
         let lat = hist_increments samples "fq_request_latency_ms" in
         let fuel = hist_increments samples "fq_request_fuel_ticks" in
         let lat_count = sum_counter samples "fq_request_latency_ms_count" in
         let lat_sum = sum_counter samples "fq_request_latency_ms_sum" in
         let hits = sum_counter samples "fq_decide_cache_hits_total" in
         let misses = sum_counter samples "fq_decide_cache_misses_total" in
         let evictions = sum_counter samples "fq_decide_cache_evictions_total" in
         let breakers =
           List.sort compare
             (List.filter_map
                (fun (ls, v) ->
                  Option.map (fun d -> (d, int_of_float v)) (List.assoc_opt "domain" ls))
                (labeled samples "fq_breaker_state"))
         in
         let tnum name t =
           Option.value ~default:0. (Option.bind (Json.member name t) Json.to_float_opt)
         in
         let slowest =
           let sorted =
             List.sort (fun a b -> compare (tnum "dur_ms" b) (tnum "dur_ms" a)) traces
           in
           List.filteri (fun i _ -> i < limit) sorted
         in
         if json then begin
           let hist_json incs count sum_ =
             Json.Obj
               [ ("p50", jq incs 0.5); ("p95", jq incs 0.95); ("p99", jq incs 0.99);
                 ( "mean",
                   if count > 0. then Json.Float (sum_ /. count) else Json.Null );
                 ("count", Json.Int (int_of_float count)) ]
           in
           print_endline
             (Json.to_string
                (Json.Obj
                   [ ("epoch", match epoch with Some e -> Json.Int e | None -> Json.Null);
                     ("inflight", Json.Int (g "fq_inflight"));
                     ("queue_depth", Json.Int (g "fq_queue_depth"));
                     ("requests_total", Json.Int (int_of_float requests));
                     ( "outcomes",
                       Json.Obj
                         (List.map (fun (k, v) -> (k, Json.Int (int_of_float v))) outcomes)
                     );
                     ("latency_ms", hist_json lat lat_count lat_sum);
                     ( "fuel_ticks",
                       hist_json fuel
                         (sum_counter samples "fq_request_fuel_ticks_count")
                         (sum_counter samples "fq_request_fuel_ticks_sum") );
                     ( "decide_cache",
                       Json.Obj
                         [ ("hits", Json.Int (int_of_float hits));
                           ("misses", Json.Int (int_of_float misses));
                           ( "hit_rate",
                             if hits +. misses > 0. then
                               Json.Float (hits /. (hits +. misses))
                             else Json.Null );
                           ("evictions", Json.Int (int_of_float evictions));
                           ("entries", Json.Int (g "fq_decide_cache_entries")) ] );
                     ( "breakers",
                       Json.Obj (List.map (fun (d, v) -> (d, Json.Int v)) breakers) );
                     ("sample_every", Json.Int sample_every);
                     ("traces_retained", Json.Int (g "fq_traces_retained"));
                     ("slowest", Json.List slowest) ]))
         end
         else begin
           if not once then print_string "\027[2J\027[H";
           Format.printf "fq top — %a   epoch %s   inflight %d   queue %d@." Server.pp_addr
             addr
             (match epoch with Some e -> string_of_int e | None -> "?")
             (g "fq_inflight") (g "fq_queue_depth");
           let rate =
             match prev with
             | Some (t0, r0) when now > t0 ->
               Printf.sprintf "   %.1f req/s" ((requests -. r0) /. (now -. t0))
             | _ -> ""
           in
           Format.printf "requests: %.0f total%s@." requests rate;
           if outcomes <> [] then
             Format.printf "outcomes: %s@."
               (String.concat "  "
                  (List.map (fun (k, v) -> Printf.sprintf "%s %.0f" k v) outcomes));
           if lat_count > 0. then
             Format.printf "latency ms: p50 %s  p95 %s  p99 %s  mean %.2f  (n=%.0f)@."
               (pq lat 0.5) (pq lat 0.95) (pq lat 0.99) (lat_sum /. lat_count) lat_count;
           if fuel <> [] then
             Format.printf "fuel ticks: p50 %s  p95 %s  p99 %s@." (pq fuel 0.5)
               (pq fuel 0.95) (pq fuel 0.99);
           if hits +. misses > 0. then
             Format.printf
               "decide cache: %.0f%% hit (%.0f/%.0f), %.0f evictions, %d entries@."
               (100. *. hits /. (hits +. misses))
               hits (hits +. misses) evictions (g "fq_decide_cache_entries");
           if breakers <> [] then
             Format.printf "breakers: %s@."
               (String.concat "  "
                  (List.map
                     (fun (d, v) ->
                       Printf.sprintf "%s %s" d
                         (match v with 0 -> "closed" | 1 -> "half-open" | _ -> "open"))
                     breakers));
           (match (sample_every, slowest) with
           | 0, [] -> ()
           | _, [] -> Format.printf "traces: sampling 1-in-%d, none completed yet@." sample_every
           | _, slowest ->
             Format.printf "slowest sampled requests (1-in-%d):@." sample_every;
             List.iter
               (fun t ->
                 let ts name =
                   Option.value ~default:"?"
                     (Option.bind (Json.member name t) Json.to_str_opt)
                 in
                 Format.printf "  %-16s %-10s %-8s %-12s %8.2f ms %8.0f ticks@."
                   (ts "trace") (ts "domain") (ts "status") (ts "tier") (tnum "dur_ms" t)
                   (tnum "ticks" t))
               slowest)
         end;
         if once then Ok 0
         else begin
           Unix.sleepf (float_of_int (max 100 interval_ms) /. 1000.);
           loop (Some (now, requests))
         end
       in
       loop None)
  in
  let addr =
    Arg.(required & pos 0 (some addr_conv) None
         & info [] ~docv:"ADDR" ~doc:"Server address (unix:PATH, tcp:PORT, PATH, or PORT).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Print one sample and exit instead of refreshing.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the sample as one JSON object (implies $(b,--once)).")
  in
  let interval_ms =
    Arg.(value & opt int 2000
         & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh interval (live mode).")
  in
  let limit =
    Arg.(value & opt int 5
         & info [ "limit" ] ~docv:"N" ~doc:"Slowest sampled requests shown.")
  in
  let doc =
    "Watch a running $(b,fq serve): poll its $(b,metrics) and $(b,traces) ops and render \
     request rates, eval outcomes, latency and fuel quantiles (from the always-on \
     log-bucketed histograms), decide-cache hit rate, breaker states, and the slowest \
     sampled requests. $(b,--once)/$(b,--json) take a single sample for scripts."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ common_opts ~default_fuel:10_000 $ addr $ once $ json $ interval_ms
          $ limit)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc = "finite queries of the relational calculus — Stolboushkin & Taitslin, reproduced" in
  let info = Cmd.info "fq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ decide_cmd; safety_cmd; relsafe_cmd; eval_cmd; explain_cmd; report_cmd;
            batch_cmd; serve_cmd; fleet_cmd; ctl_cmd; top_cmd; tm_cmd; diag_cmd;
            halting_cmd ]))
