(* Benchmark and experiment harness.

   The paper has no numeric tables or figures (it is a pure theory paper),
   so the "evaluation" this harness regenerates is the experiment index of
   DESIGN.md / EXPERIMENTS.md: one section per paper claim (E1-E13),
   printing the same verification rows every run, followed by Bechamel
   microbenchmarks of every computational component - including the two
   ablation comparisons called out in DESIGN.md (dedicated QE procedures
   vs the Cooper baseline; enumeration evaluation vs compiled algebra).

   Run with: dune exec bench/main.exe            (experiments + benches)
             dune exec bench/main.exe -- quick   (experiments only)
             dune exec bench/main.exe -- json    (PR ablations, JSON to stdout) *)

open Finite_queries

let parse = Parser.formula_exn
let s = Value.str
let vi = Value.int

let section title = Format.printf "@.== %s ==@." title
let row fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let check label expected actual =
  row "%-58s expected=%-9s observed=%-9s %s" label expected actual
    (if expected = actual then "OK" else "** MISMATCH **")

let bool_s b = string_of_bool b

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let eq_domain : Domain.t = (module Eq_domain)
let presburger : Domain.t = (module Presburger)
let succ_domain : Domain.t = (module Nat_succ)

let family_schema = Schema.make [ ("F", 2) ]

let family_state =
  State.make ~schema:family_schema
    [ ( "F",
        Relation.make ~arity:2
          [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
            [ s "enoch"; s "irad" ] ] ) ]

let m_query = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)"
let g_query = parse "exists y. F(x, y) /\\ F(y, z)"
let unsafe_union = Formula.Or (m_query, g_query)

let nat_schema = Schema.make [ ("R", 1) ]
let nat_state = State.make ~schema:nat_schema [ ("R", Relation.make ~arity:1 [ [ vi 2 ]; [ vi 5 ] ]) ]

let scan = Encode.encode Zoo.scan_right
let looper = Encode.encode Zoo.loop

(* ------------------------------------------------------------------ *)
(* Experiments E1-E13                                                  *)
(* ------------------------------------------------------------------ *)

let finite_eq state f =
  match Relative_safety.via_active_domain ~state f with
  | Ok b -> bool_s b
  | Error e -> "err:" ^ e

let e1 () =
  section "E1 (Sec. 1): the intro's queries over the father/son database";
  (match Enumerate.run ~domain:eq_domain ~state:family_state m_query with
  | Ok (Enumerate.Finite r) ->
    check "M(x) answer cardinality" "1" (string_of_int (Relation.cardinal r))
  | _ -> check "M(x) answer cardinality" "1" "failed");
  (match Enumerate.run ~domain:eq_domain ~state:family_state g_query with
  | Ok (Enumerate.Finite r) ->
    check "G(x,z) answer cardinality" "2" (string_of_int (Relation.cardinal r))
  | _ -> check "G(x,z) answer cardinality" "2" "failed");
  check "M finite in state" "true" (finite_eq family_state m_query);
  check "M \\/ G infinite in state (footnote 4)" "false" (finite_eq family_state unsafe_union);
  let single =
    State.make ~schema:family_schema
      [ ("F", Relation.make ~arity:2 [ [ s "a"; s "b" ]; [ s "b"; s "c" ] ]) ]
  in
  check "M \\/ G finite when every father has one son" "true" (finite_eq single unsafe_union)

let e2 () =
  section "E2 (Sec. 1.1): enumeration evaluator = compiled algebra on safe queries";
  List.iter
    (fun (label, f) ->
      let a =
        match Algebra_translate.run ~domain:eq_domain ~state:family_state f with
        | Ok r -> r
        | Error e -> failwith e
      in
      let b =
        match Enumerate.run ~domain:eq_domain ~state:family_state f with
        | Ok (Enumerate.Finite r) -> r
        | _ -> failwith "enumeration failed"
      in
      check (label ^ ": answers agree") "true" (bool_s (Relation.equal a b)))
    [ ("M(x)", m_query); ("G(x,z)", g_query); ("F minus converse", parse "F(x, y) /\\ ~F(y, x)") ]

let e3 () =
  section "E3 (Fact 2.1): a finite, non-domain-independent query over N_<";
  let lub =
    parse "(forall y. R(y) -> y < x) /\\ (forall z. (forall y. R(y) -> y < z) -> x <= z)"
  in
  let natural =
    match Enumerate.run ~domain:presburger ~state:nat_state lub with
    | Ok (Enumerate.Finite r) -> Format.asprintf "%a" Relation.pp r
    | _ -> "failed"
  in
  check "natural answer (outside the active domain)" "{(6)}" natural;
  let active =
    match Algebra_translate.run ~domain:presburger ~state:nat_state lub with
    | Ok r -> Format.asprintf "%a" Relation.pp r
    | Error e -> "err:" ^ e
  in
  check "active-domain answer differs" "{}" active

let e4_e5 () =
  section "E4/E5 (Thms 2.2/2.5): finitization as syntax and as safety test";
  let unsafe = parse "exists y. R(y) /\\ y < x" in
  let fin = Finitization.finitize unsafe in
  check "finitization is recognized" "true" (bool_s (Finitization.is_finitization fin));
  let finite_p f =
    match
      Relative_safety.via_finitization ~domain:presburger ~decide:Presburger.decide
        ~state:nat_state f
    with
    | Ok b -> bool_s b
    | Error e -> "err:" ^ e
  in
  check "unsafe query infinite" "false" (finite_p unsafe);
  check "its finitization finite" "true" (finite_p fin);
  check "R(x) finite" "true" (finite_p (parse "R(x)"));
  check "~R(x) infinite" "false" (finite_p (parse "~R(x)"))

let e6 () =
  section "E6 (Thms 2.6/2.7): the successor domain N'";
  let fin f =
    match Ext_active.finite_in_state ~domain:succ_domain ~state:nat_state (parse f) with
    | Ok b -> bool_s b
    | Error e -> "err:" ^ e
  in
  check "R(x)" "true" (fin "R(x)");
  check "~R(x)" "false" (fin "~R(x)");
  check "successors of R" "true" (fin "exists y. R(y) /\\ x = y'");
  check "x != 3" "false" (fin "x != 3");
  let restricted = Ext_active.restrict ~schema:[ ("R", 1) ] (parse "x != 3") in
  match Ext_active.finite_in_state ~domain:succ_domain ~state:nat_state restricted with
  | Ok b -> check "Thm 2.7 restriction of x != 3 is finite" "true" (bool_s b)
  | Error e -> check "Thm 2.7 restriction of x != 3 is finite" "true" ("err:" ^ e)

let e7 () =
  section "E7 (Cors 2.3/2.4): arithmetic and the extension combinator";
  (match Arithmetic.decide (parse "exists x y. x * y = y * x /\\ x != y") with
  | Error _ -> check "nonlinear arithmetic refused (undecidable)" "refused" "refused"
  | Ok _ -> check "nonlinear arithmetic refused (undecidable)" "refused" "decided");
  check "arithmetic finitization still syntactic" "true"
    (bool_s (Finitization.is_finitization (Finitization.finitize (parse "exists y. x = y * y"))));
  let module E = Extension.Make (Eq_domain) in
  (match E.decide (parse "forall x. exists y. x < y") with
  | Ok b -> check "extension decides pure order sentences" "true" (bool_s b)
  | Error e -> check "extension decides pure order sentences" "true" ("err:" ^ e));
  match E.decide (parse "exists x y. x < y /\\ x = \"a\"") with
  | Error _ -> check "mixed sentences refused (Cor 3.2 caveat)" "refused" "refused"
  | Ok _ -> check "mixed sentences refused (Cor 3.2 caveat)" "refused" "decided"

let e8 () =
  section "E8 (Sec. 3): the trace predicate P and the word classes";
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:2) in
  check "generated trace satisfies P" "true" (bool_s (Trace.p_pred scan "11" p));
  check "perturbed trace fails P" "false" (bool_s (Trace.p_pred scan "11" (p ^ "1")));
  let counts = Hashtbl.create 4 in
  Word.enumerate () |> Seq.take 2000
  |> Seq.iter (fun w ->
         let c = Classify.to_string (Classify.classify w) in
         Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)));
  row "word classes in the first 2000 words: machine=%d input=%d trace=%d other=%d"
    (Option.value ~default:0 (Hashtbl.find_opt counts "machine"))
    (Option.value ~default:0 (Hashtbl.find_opt counts "input"))
    (Option.value ~default:0 (Hashtbl.find_opt counts "trace"))
    (Option.value ~default:0 (Hashtbl.find_opt counts "other"))

let e9 () =
  section "E9 (Lemma A.2): builder vs the paper's explicit criterion";
  let words = [ "111"; "11-"; "1-1"; "-11" ] in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun v ->
      List.iter
        (fun u ->
          List.iter
            (fun i ->
              List.iter
                (fun j ->
                  incr total;
                  let paper = Builder.paper_criterion ~d:[ (v, i) ] ~e:[ (u, j) ] in
                  let builder =
                    Builder.satisfiable [ Builder.At_least (v, i); Builder.Exactly (u, j) ]
                  in
                  if paper = builder then incr agree)
                [ 1; 2; 3 ])
            [ 1; 2; 3 ])
        words)
    words;
  check "criterion = construction on all small instances" (string_of_int !total)
    (string_of_int !agree)

let e10 () =
  section "E10 (Thm A.3 / Cor A.4): the Reach-theory decision procedure";
  let decide label sentence expected =
    match Traces.decide (parse sentence) with
    | Ok b -> check label (bool_s expected) (bool_s b)
    | Error e -> check label (bool_s expected) ("err:" ^ e)
  in
  decide "exists p. P(scan, 11, p)"
    (Printf.sprintf "exists p. P(\"%s\", \"11\", p)" scan)
    true;
  decide "scan has at most 3 traces on 11"
    (Printf.sprintf
       "forall p1 p2 p3 p4. P(\"%s\", \"11\", p1) /\\ P(\"%s\", \"11\", p2) /\\ P(\"%s\", \"11\", p3) /\\ P(\"%s\", \"11\", p4) -> p1 = p2 \\/ p1 = p3 \\/ p1 = p4 \\/ p2 = p3 \\/ p2 = p4 \\/ p3 = p4"
       scan scan scan scan)
    true;
  decide "the looper exceeds any bound"
    (Printf.sprintf
       "forall p1 p2 p3. P(\"%s\", \"\", p1) /\\ P(\"%s\", \"\", p2) /\\ P(\"%s\", \"\", p3) -> p1 = p2 \\/ p1 = p3 \\/ p2 = p3"
       looper looper looper)
    false;
  decide "a trace determines its machine"
    "exists m n w p. P(m, w, p) /\\ P(n, w, p) /\\ m != n" false

let e11 () =
  section "E11 (Thm 3.1): the diagonalization defeats candidate syntaxes";
  let manual name formulas =
    { Syntax_class.name; description = name;
      accepts = (fun f -> List.exists (Formula.equal f) formulas);
      enumerate = (fun () -> List.to_seq formulas) }
  in
  (match Diagonal.defeat ~syntax:(manual "sound" [ Diagonal.totality_query scan ]) ~budget:4 with
  | Ok (Diagonal.Missed_finite_query _) ->
    check "sound candidate misses a finite query" "missed" "missed"
  | Ok (Diagonal.Admits_unsafe _) ->
    check "sound candidate misses a finite query" "missed" "unsafe"
  | Error e -> check "sound candidate misses a finite query" "missed" ("err:" ^ e));
  match
    Diagonal.defeat
      ~syntax:(manual "unsound" [ Diagonal.totality_query scan; Diagonal.totality_query looper ])
      ~budget:4
  with
  | Ok (Diagonal.Admits_unsafe _) ->
    check "covering candidate admits an unsafe formula" "unsafe" "unsafe"
  | Ok (Diagonal.Missed_finite_query _) ->
    check "covering candidate admits an unsafe formula" "unsafe" "missed"
  | Error e -> check "covering candidate admits an unsafe formula" "unsafe" ("err:" ^ e)

let e12 () =
  section "E12 (Thm 3.3): halting as relative safety over T";
  (match Halting_reduction.check ~fuel:500 ~machine:scan ~input:"11" () with
  | Ok (Halting_reduction.Halts { steps = _; answer }) ->
    check "scan on 11: certified finite answer tuples" "3"
      (string_of_int (Relation.cardinal answer))
  | _ -> check "scan on 11: certified finite answer tuples" "3" "failed");
  match Halting_reduction.check ~fuel:500 ~machine:looper ~input:"1" () with
  | Ok (Halting_reduction.Diverges_beyond { trace_count }) ->
    check "loop on 1: tuples reach the fuel bound" "500" (string_of_int trace_count)
  | _ -> check "loop on 1: tuples reach the fuel bound" "500" "failed"

let e13 () =
  section "E13 (Sec. 1.2): finitely representable relations; finiteness decidable";
  let q = Rat.of_int in
  let interval =
    Crel.make ~columns:[ "x" ]
      [ [ { Crel.lhs = C (q 0); op = Crel.Lt; rhs = Crel.V "x" };
          { Crel.lhs = Crel.V "x"; op = Crel.Lt; rhs = C (q 1) } ] ]
  in
  check "open interval infinite" "false" (bool_s (Crel.is_finite interval));
  check "membership of 1/2" "true" (bool_s (Crel.mem interval [ Rat.of_ints 1 2 ]));
  let pts = Crel.of_points ~columns:[ "x" ] [ [ q 1 ]; [ q 2 ] ] in
  check "point set finite" "true" (bool_s (Crel.is_finite pts));
  check "complement closed" "true" (bool_s (Crel.mem (Crel.complement interval) [ q 5 ]));
  let proj =
    Crel.project ~keep:[ "x" ]
      (Crel.make ~columns:[ "x"; "y" ]
         [ [ { Crel.lhs = Crel.V "x"; op = Crel.Lt; rhs = Crel.V "y" };
             { Crel.lhs = Crel.V "y"; op = Crel.Lt; rhs = C (q 0) } ] ])
  in
  check "projection by dense-order QE" "true" (bool_s (Crel.mem proj [ q (-10) ]))

let e14 () =
  section "E14 (KKR90): FO queries over constraint databases evaluate to Crel";
  let q = Rat.of_int in
  let db : Ceval.db =
    [ ( "I",
        Crel.make ~columns:[ "a" ]
          [ [ { Crel.lhs = C (q 0); op = Crel.Le; rhs = Crel.V "a" };
              { Crel.lhs = Crel.V "a"; op = Crel.Le; rhs = C (q 10) } ] ] ) ]
  in
  (match Ceval.decide ~db (parse "forall x y. x < y -> exists z. x < z /\\ z < y") with
  | Ok b -> check "density decided through Crel" "true" (bool_s b)
  | Error e -> check "density decided through Crel" "true" ("err:" ^ e));
  match Ceval.query ~db (parse "I(x) /\\ ~(x < \"5\")") with
  | Ok r ->
    check "closure: answer is a Crel; finiteness decidable" "false"
      (bool_s (Crel.is_finite r))
  | Error e -> check "closure: answer is a Crel; finiteness decidable" "false" ("err:" ^ e)

let e15 () =
  section "E15 (RANF): adom-free compilation agrees and shrinks plans";
  let schema2 = Schema.make [ ("F", 2); ("S", 1) ] in
  let st =
    State.make ~schema:schema2
      [ ( "F",
          Relation.make ~arity:2
            [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ] ] );
        ("S", Relation.make ~arity:1 [ [ s "cain" ] ]) ]
  in
  let f = parse "exists y. F(x, y) /\\ ~S(y)" in
  match
    (Ranf.run ~domain:eq_domain ~state:st f, Algebra_translate.run ~domain:eq_domain ~state:st f)
  with
  | Ok a, Ok b ->
    check "ranf = adom algebra" "true" (bool_s (Relation.equal a b));
    let lit_weight compile =
      match compile with
      | Error _ -> -1
      | Ok { Algebra_translate.plan; _ } ->
        let rec go = function
          | Relalg.Lit r -> Relation.cardinal r
          | Relalg.Rel _ -> 0
          | Relalg.Select (_, p) | Relalg.Project (_, p) -> go p
          | Relalg.Product (p, q)
          | Relalg.Join (_, p, q)
          | Relalg.Union (p, q)
          | Relalg.Diff (p, q) -> go p + go q
        in
        go plan
    in
    let ranf_w = lit_weight (Ranf.compile ~domain:eq_domain ~state:st f) in
    let adom_w = lit_weight (Algebra_translate.compile ~domain:eq_domain ~state:st f) in
    row "embedded literal tuples: ranf=%d adom=%d (ranf avoids the active domain)" ranf_w
      adom_w;
    check "ranf embeds no adom literal" "0" (string_of_int ranf_w)
  | Error e, _ | _, Error e -> check "ranf = adom algebra" "true" ("err:" ^ e)

let experiments () =
  e1 (); e2 (); e3 (); e4_e5 (); e6 (); e7 (); e8 (); e9 (); e10 (); e11 (); e12 (); e13 ();
  e14 (); e15 ()

(* ------------------------------------------------------------------ *)
(* Parameter sweeps - the "figures"                                    *)
(* ------------------------------------------------------------------ *)

let time_us ~reps f =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Sys.time () -. t0) *. 1e6 /. float_of_int reps

let chain_state n =
  (* a path graph: F = { (p_i, p_{i+1}) } *)
  let name i = s (Printf.sprintf "p%d" i) in
  State.make ~schema:family_schema
    [ ("F", Relation.make ~arity:2 (List.init n (fun i -> [ name i; name (i + 1) ]))) ]

let sweep_evaluators () =
  section "S1 (figure): evaluator time vs database size - G(x,z) on a path of n edges";
  row "%6s %14s %14s %14s" "n" "enumerate(us)" "adom(us)" "ranf(us)";
  List.iter
    (fun n ->
      let st = chain_state n in
      let enum () =
        Enumerate.run ~fuel:200_000 ~max_certified:(2 * n) ~domain:eq_domain ~state:st g_query
      in
      let adom () = Algebra_translate.run ~domain:eq_domain ~state:st g_query in
      let ranf () = Ranf.run ~domain:eq_domain ~state:st g_query in
      let reps = max 1 (16 / n) in
      row "%6d %14.0f %14.0f %14.0f" n (time_us ~reps enum) (time_us ~reps adom)
        (time_us ~reps ranf))
    [ 2; 4; 8 ]

let sweep_cooper () =
  section "S2 (figure): Cooper QE time vs quantifier depth";
  row "%6s %14s %10s" "depth" "time(us)" "atoms";
  List.iter
    (fun q ->
      let vars = List.init q (fun i -> Printf.sprintf "v%d" i) in
      let chain =
        let rec atoms = function
          | a :: (b :: _ as rest) ->
            Formula.Atom ("<", [ Term.Var a; Term.Var b ]) :: atoms rest
          | _ -> []
        in
        Formula.conj
          (Formula.Atom ("<", [ Term.Const "0"; Term.Var (List.hd vars) ]) :: atoms vars)
      in
      let sentence =
        List.fold_right
          (fun (i, v) acc ->
            if i mod 2 = 1 then Formula.Forall (v, Formula.Imp (chain, acc))
            else Formula.Exists (v, Formula.And (chain, acc)))
          (List.mapi (fun i v -> (i, v)) vars)
          (Formula.Exists ("w", Formula.Atom ("<", [ Term.Var (List.hd vars); Term.Var "w" ])))
      in
      let atoms =
        match Cooper.qe sentence with Ok qf -> Cooper.atom_count qf | Error _ -> -1
      in
      row "%6d %14.0f %10d" q (time_us ~reps:3 (fun () -> Cooper.decide sentence)) atoms)
    [ 1; 2; 3; 4 ]

let sweep_tm () =
  section "S3 (figure): TM simulation time vs input length (scan_right on 1^n)";
  row "%6s %14s %8s" "n" "time(us)" "steps";
  List.iter
    (fun n ->
      let input = String.make n '1' in
      let steps =
        match Run.run ~fuel:(n + 10) Zoo.scan_right input with
        | Run.Halted { steps; _ } -> steps
        | Run.Out_of_fuel -> -1
      in
      row "%6d %14.1f %8d" n
        (time_us ~reps:50 (fun () -> Run.run ~fuel:(n + 10) Zoo.scan_right input))
        steps)
    [ 16; 64; 256; 1024 ]

let sweep_reach () =
  section "S4 (figure): Reach-QE time vs excluded traces (Thm 3.3 completeness checks)";
  row "%6s %14s" "k" "time(us)";
  let all_traces = List.of_seq (Seq.take 8 (Trace.traces ~machine:looper ~input:"1")) in
  List.iter
    (fun k ->
      let excluded = List.filteri (fun i _ -> i < k) all_traces in
      let sentence =
        Reach.Exists
          ( "p",
            Reach.conj
              (Reach.p_formula (Base (Const looper)) (Base (Const "1")) (Base (Var "p"))
              :: List.map
                   (fun t ->
                     Reach.Not (Reach.Atom (Reach.Eq (Base (Var "p"), Base (Const t)))))
                   excluded) )
      in
      row "%6d %14.0f" k (time_us ~reps:5 (fun () -> Reach_qe.decide sentence)))
    [ 0; 2; 4; 6; 8 ]

let sweeps () =
  sweep_evaluators ();
  sweep_cooper ();
  sweep_tm ();
  sweep_reach ()

(* ------------------------------------------------------------------ *)
(* PR 1 ablations: hash-join engine and the decision cache             *)
(* ------------------------------------------------------------------ *)

(* Three binary relations chained on their middle columns:
   R = {(i, i+1)}, S = {(i+1, i+2)}, T = {(i+2, i+3)} for i < n.
   The naive plan executes the equijoins the way the seed engine did —
   materialize the cartesian product, then filter; the optimizer rewrites
   the same plan into two hash joins. *)
let join_schema = Schema.make [ ("R", 2); ("S", 2); ("T", 2) ]

let join_state n =
  let mk off =
    Relation.make ~arity:2 (List.init n (fun i -> [ vi (i + off); vi (i + off + 1) ]))
  in
  State.make ~schema:join_schema [ ("R", mk 0); ("S", mk 1); ("T", mk 2) ]

let naive_join_plan =
  Relalg.(
    Select
      ( Eq (Col 3, Col 4),
        Product (Select (Eq (Col 1, Col 2), Product (Rel "R", Rel "S")), Rel "T") ))

let join_ablation ~n =
  let st = join_state n in
  let optimized = Optimizer.optimize_for ~schema:join_schema naive_join_plan in
  let naive_res = Relalg.eval ~state:st naive_join_plan in
  let opt_res = Relalg.eval ~state:st optimized in
  let agree = Relation.equal naive_res opt_res in
  let naive_us = time_us ~reps:2 (fun () -> Relalg.eval ~state:st naive_join_plan) in
  let opt_us = time_us ~reps:20 (fun () -> Relalg.eval ~state:st optimized) in
  let joins_in plan =
    let rec go = function
      | Relalg.Rel _ | Relalg.Lit _ -> 0
      | Relalg.Select (_, p) | Relalg.Project (_, p) -> go p
      | Relalg.Join (_, p, q) -> 1 + go p + go q
      | Relalg.Product (p, q) | Relalg.Union (p, q) | Relalg.Diff (p, q) -> go p + go q
    in
    go plan
  in
  ( `Assoc
      [ ("tuples_per_relation", `Int n);
        ("rows_out", `Int (Relation.cardinal opt_res));
        ("agree", `Bool agree);
        ("hash_joins_in_optimized_plan", `Int (joins_in optimized));
        ("naive_us", `Float naive_us);
        ("hashjoin_us", `Float opt_us);
        ("speedup", `Float (naive_us /. opt_us)) ],
    agree,
    naive_us,
    opt_us )

let cache_ablation ~n =
  (* G(x,z) on a path of n edges has n-1 answer tuples; the enumeration
     re-decides the candidate sentence for every active-domain value and
     the bench re-runs the whole evaluation, so a shared cache converts
     repeat decides into hash lookups. *)
  let st = chain_state n in
  let run ?cache () =
    Enumerate.run ~fuel:200_000 ~max_certified:(2 * n) ?cache ~domain:eq_domain ~state:st
      g_query
  in
  let answers =
    match run () with
    | Ok (Enumerate.Finite r) -> Relation.cardinal r
    | _ -> -1
  in
  let uncached_us = time_us ~reps:3 (fun () -> run ()) in
  let cache = Decide_cache.create () in
  let cold_t0 = Sys.time () in
  ignore (run ~cache ());
  let cold_us = (Sys.time () -. cold_t0) *. 1e6 in
  let warm_us = time_us ~reps:3 (fun () -> run ~cache ()) in
  let stats = Decide_cache.stats cache in
  ( `Assoc
      [ ("path_edges", `Int n);
        ("answer_tuples", `Int answers);
        ("uncached_us", `Float uncached_us);
        ("cached_cold_us", `Float cold_us);
        ("cached_warm_us", `Float warm_us);
        ("speedup_warm", `Float (uncached_us /. warm_us));
        ("cache_hits", `Int stats.Decide_cache.hits);
        ("cache_misses", `Int stats.Decide_cache.misses);
        ("cache_entries", `Int stats.Decide_cache.entries) ],
    answers,
    uncached_us,
    warm_us )

(* ------------------------------------------------------------------ *)
(* PR 3 ablation: resource-governor overhead on safe hot paths         *)
(* ------------------------------------------------------------------ *)

(* The governed and plain variants do identical work on these completing
   workloads, so the minimum over individual repetitions is the fair
   estimate of each one's cost: any rep the scheduler or a major GC
   interrupts is discarded, where a mean over a timing window would keep
   the interruption in the estimate. [Sys.time]'s ~10ms granularity is
   far too coarse for sub-millisecond reps, hence the wall clock. *)
let min_rep_us ~reps f =
  let m = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = (Unix.gettimeofday () -. t0) *. 1e6 in
    if dt < !m then m := dt
  done;
  !m

(* The two variants are timed in alternation, each window preceded by a
   major collection — otherwise whichever variant runs second pays for the
   garbage the first one left behind, and the "overhead" is really GC
   scheduling noise (observed at 20%+ when the ablation runs after the
   allocation-heavy experiment rows). *)
let best_pair ~runs ~reps fa fb =
  let ma = ref infinity and mb = ref infinity in
  for _ = 1 to runs do
    Gc.major ();
    ma := Float.min !ma (min_rep_us ~reps fa);
    Gc.major ();
    mb := Float.min !mb (min_rep_us ~reps fb)
  done;
  (!ma, !mb)

(* A governed run carries every dimension the CLI would install: generous
   fuel plus a far-away deadline (the deadline forces the periodic wall
   clock poll, the part of the governor that costs anything). *)
let full_budget () = Budget.make ~fuel:1_000_000_000 ~timeout_ms:600_000 ()

let governor_ablation () =
  (* 1. the PR 1 chain join through the algebra engine *)
  let n = 1000 in
  let st = join_state n in
  let plan = Optimizer.optimize_for ~schema:join_schema naive_join_plan in
  let join_plain, join_gov =
    best_pair ~runs:9 ~reps:40
      (fun () -> Relalg.eval ~state:st plan)
      (fun () -> Relalg.eval ~state:st ~budget:(full_budget ()) plan)
  in
  (* 2. warm-cache enumeration (the PR 1 decide-cache hot path) *)
  let stc = chain_state 12 in
  let cache = Decide_cache.create () in
  let enum_legacy () =
    Enumerate.run ~fuel:200_000 ~max_certified:24 ~cache ~domain:eq_domain ~state:stc g_query
  in
  ignore (enum_legacy ());
  let enum_plain, enum_gov =
    best_pair ~runs:9 ~reps:40 enum_legacy (fun () ->
        Enumerate.run_budgeted ~max_certified:24 ~cache ~budget:(full_budget ())
          ~domain:eq_domain ~state:stc g_query)
  in
  (* 3. Cooper quantifier elimination under the ambient budget *)
  let cooper_sentence = parse "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1" in
  let cooper_plain, cooper_gov =
    best_pair ~runs:9 ~reps:2000
      (fun () -> Cooper.decide cooper_sentence)
      (fun () -> Cooper.decide ~budget:(full_budget ()) cooper_sentence)
  in
  let pct plain gov = 100.0 *. ((gov /. plain) -. 1.0) in
  let entry name plain gov =
    ( name,
      `Assoc
        [ ("plain_us", `Float plain);
          ("governed_us", `Float gov);
          ("overhead_pct", `Float (pct plain gov)) ] )
  in
  let worst =
    List.fold_left Float.max neg_infinity
      [ pct join_plain join_gov; pct enum_plain enum_gov; pct cooper_plain cooper_gov ]
  in
  ( `Assoc
      [ entry "chain_join_n1000" join_plain join_gov;
        entry "enumerate_warm_cache" enum_plain enum_gov;
        entry "cooper_qe" cooper_plain cooper_gov ],
    worst )

(* ------------------------------------------------------------------ *)
(* PR 4 ablation: telemetry overhead on the same hot paths             *)
(* ------------------------------------------------------------------ *)

(* Three variants per workload: telemetry disabled (every instrumentation
   point is one ref read and a branch), the no-op sink (the observation
   path runs but discards events), and a full recording.  The workloads
   are the PR 3 governed hot paths, so the numbers compose: governor
   overhead from A3, telemetry overhead from here. *)
(* One sample = [chunk] back-to-back reps inside a single clock window,
   so the ~1us [gettimeofday] quantum is amortized well below the effect
   size under test (on the ~40us Cooper workload, single-rep timing
   cannot distinguish a 2% effect from one timer quantum). *)
let chunk_us ~chunk f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to chunk do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int chunk

let median a =
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.

type triple = {
  t_off : float;
  t_noop : float;
  t_rec : float;
  noop_pct : float;
  rec_pct : float;
}

(* All three variants run the same workload thunk; only the ambient
   collector differs, and it is installed around a multi-repetition chunk
   rather than a single repetition — the ablation measures the cost of
   the instrumentation points in the engines, and the one-time cost of
   building a collector (two hashtables) must stay amortized below the
   effect size under test.  The estimator fights two independent noise
   sources of a virtualized host:

   - CPU steal: the host can take the vCPU for ~1ms inside any single
     timing window, a 10-20%% spike on a ~5ms chunk.  Each round
     interleaves off/noop/recording chunks back to back five times and
     keeps each variant's MINIMUM, discarding the stolen windows.
   - clock drift: the effective clock wanders by several percent over
     timescales of 100ms+, which swamps a sub-2%% effect measured from
     two aggregates taken seconds apart.  The overhead estimate is the
     median over rounds of the PAIRED per-round ratio (noop/off within
     one round, where the chunks ran a few ms apart), so the drift
     cancels inside each ratio.

   Earlier drafts used a global minimum per variant; that compares each
   variant's single luckiest window across the whole run and was observed
   to report the no-op sink "slower" than a full recording — physically
   impossible. *)
let best_triple ~rounds ~chunk f =
  let offs = Array.make rounds 0. in
  let noops = Array.make rounds 0. in
  let recs = Array.make rounds 0. in
  for r = 0 to rounds - 1 do
    Gc.major ();
    (* untimed warm-up: the first chunk after a major collection runs in a
       golden GC state (empty minor heap, fresh major cycle) that no later
       chunk sees; without burning it, whichever variant is timed first
       reads 2-3%% faster than the identical thunk in the next slot *)
    ignore (chunk_us ~chunk f);
    let mo = ref infinity and mn = ref infinity and mr = ref infinity in
    for _ = 1 to 5 do
      mo := Float.min !mo (chunk_us ~chunk f);
      mn := Float.min !mn (Telemetry.with_noop (fun () -> chunk_us ~chunk f));
      mr := Float.min !mr (fst (Telemetry.record (fun () -> chunk_us ~chunk f)))
    done;
    offs.(r) <- !mo;
    noops.(r) <- !mn;
    recs.(r) <- !mr
  done;
  let ratio a = median (Array.init rounds (fun r -> a.(r) /. offs.(r))) in
  { t_off = median offs;
    t_noop = median noops;
    t_rec = median recs;
    noop_pct = 100. *. (ratio noops -. 1.);
    rec_pct = 100. *. (ratio recs -. 1.) }

let telemetry_ablation () =
  let n = 1000 in
  let st = join_state n in
  let plan = Optimizer.optimize_for ~schema:join_schema naive_join_plan in
  let join () = Relalg.eval ~state:st plan in
  let join_t = best_triple ~rounds:15 ~chunk:4 join in
  let stc = chain_state 12 in
  let cache = Decide_cache.create () in
  let enum () =
    Enumerate.run ~fuel:200_000 ~max_certified:24 ~cache ~domain:eq_domain ~state:stc g_query
  in
  ignore (enum ());
  let enum_t = best_triple ~rounds:15 ~chunk:4 enum in
  let cooper_sentence = parse "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1" in
  let cooper () = Cooper.decide cooper_sentence in
  let cooper_t = best_triple ~rounds:21 ~chunk:100 cooper in
  let entry name t =
    ( name,
      `Assoc
        [ ("disabled_us", `Float t.t_off);
          ("noop_sink_us", `Float t.t_noop);
          ("recording_us", `Float t.t_rec);
          ("noop_overhead_pct", `Float t.noop_pct);
          ("recording_overhead_pct", `Float t.rec_pct) ] )
  in
  let worst_noop =
    List.fold_left Float.max neg_infinity
      [ join_t.noop_pct; enum_t.noop_pct; cooper_t.noop_pct ]
  in
  ( `Assoc
      [ entry "chain_join_n1000" join_t;
        entry "enumerate_warm_cache" enum_t;
        entry "cooper_qe" cooper_t ],
    worst_noop )

(* PR 5 ablation: cost of the resilience machinery on completing hot
   paths.  Three variants of the same workload chunk:

   - plain: the shipped default — fault sites compiled into the engines
     but no plan installed, so every [Fault.hit] is one domain-local
     read; no supervisor in the stack.
   - supervised: every repetition runs through [Supervisor.supervise]
     (the per-job wrapper [fq batch] uses), succeeding on the first
     attempt — measures the span + classification envelope.
   - armed: a chaos plan with [permille = 0] is installed, so every
     fault site takes the full schedule path (mutex, counter, hash)
     without ever firing — the worst case of leaving the harness on.

   The acceptance bound applies to the supervised variant; the armed
   figure is reported so the cost of leaving injection armed in
   production is a measured number rather than a guess. *)
type sup_triple = {
  s_off : float;
  s_sup : float;
  s_armed : float;
  sup_pct : float;
  armed_pct : float;
}

let bench_policy = { Supervisor.default_policy with Supervisor.sleep = (fun _ -> ()) }

let supervised f () =
  let r = Supervisor.supervise ~policy:bench_policy ~name:"bench" (fun _ -> f ()) in
  match r.Supervisor.outcome with
  | Supervisor.Value v -> v
  | Supervisor.Crashed c -> failwith c.Supervisor.reason

let best_sup_triple ~rounds ~chunk f =
  let armed = Fault.chaos ~permille:0 ~seed:0 () in
  let offs = Array.make rounds 0. in
  let sups = Array.make rounds 0. in
  let arms = Array.make rounds 0. in
  for r = 0 to rounds - 1 do
    Gc.major ();
    ignore (chunk_us ~chunk f);
    let mo = ref infinity and ms = ref infinity and ma = ref infinity in
    for _ = 1 to 5 do
      mo := Float.min !mo (chunk_us ~chunk f);
      ms := Float.min !ms (chunk_us ~chunk (supervised f));
      ma := Float.min !ma (Fault.with_plan armed (fun () -> chunk_us ~chunk f))
    done;
    offs.(r) <- !mo;
    sups.(r) <- !ms;
    arms.(r) <- !ma
  done;
  let ratio a = median (Array.init rounds (fun r -> a.(r) /. offs.(r))) in
  { s_off = median offs;
    s_sup = median sups;
    s_armed = median arms;
    sup_pct = 100. *. (ratio sups -. 1.);
    armed_pct = 100. *. (ratio arms -. 1.) }

let supervision_ablation () =
  let n = 1000 in
  let st = join_state n in
  let plan = Optimizer.optimize_for ~schema:join_schema naive_join_plan in
  let join () = Relalg.eval ~state:st plan in
  let join_t = best_sup_triple ~rounds:15 ~chunk:4 join in
  let stc = chain_state 12 in
  let cache = Decide_cache.create () in
  let enum () =
    Enumerate.run ~fuel:200_000 ~max_certified:24 ~cache ~domain:eq_domain ~state:stc g_query
  in
  ignore (enum ());
  let enum_t = best_sup_triple ~rounds:15 ~chunk:4 enum in
  let cooper_sentence = parse "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1" in
  let cooper () = Cooper.decide cooper_sentence in
  let cooper_t = best_sup_triple ~rounds:21 ~chunk:100 cooper in
  let entry name t =
    ( name,
      `Assoc
        [ ("plain_us", `Float t.s_off);
          ("supervised_us", `Float t.s_sup);
          ("armed_plan_us", `Float t.s_armed);
          ("supervised_overhead_pct", `Float t.sup_pct);
          ("armed_plan_overhead_pct", `Float t.armed_pct) ] )
  in
  let worst sel =
    List.fold_left Float.max neg_infinity (List.map sel [ join_t; enum_t; cooper_t ])
  in
  ( `Assoc
      [ entry "chain_join_n1000" join_t;
        entry "enumerate_warm_cache" enum_t;
        entry "cooper_qe" cooper_t ],
    worst (fun t -> t.sup_pct),
    worst (fun t -> t.armed_pct) )

(* PR 5 correctness half: the batch query set evaluated through the
   supervised 4-way worker pool (shared decide cache, one supervise
   envelope per job, as [fq batch --jobs 4] does) must agree tuple for
   tuple with plain sequential evaluation. *)
let batch_agreement () =
  let order_domain : Domain.t = (module Nat_order) in
  let specs =
    [| (eq_domain, family_state, m_query);
       (eq_domain, family_state, parse "exists y. F(x, y)");
       (eq_domain, family_state, parse "F(\"adam\", x)");
       (order_domain, nat_state, parse "exists y. R(y) /\\ x < y");
       (presburger, nat_state, parse "exists y. R(y) /\\ x + x = y + 1") |]
  in
  let eval cache (d, st, q) =
    match Enumerate.run ~fuel:500_000 ?cache ~domain:d ~state:st q with
    | Ok (Enumerate.Finite r) -> Some r
    | _ -> None
  in
  let seq = Array.map (eval None) specs in
  let cache = Decide_cache.create () in
  let par =
    Supervisor.parallel_map ~jobs:4 (fun spec -> supervised (fun () -> eval (Some cache) spec) ()) specs
  in
  Array.for_all2
    (fun a b ->
      match (a, b) with
      | Some r1, Some r2 -> Relation.equal r1 r2
      | None, None -> true
      | _ -> false)
    seq par

(* ------------------------------------------------------------------ *)
(* PR 6 ablation: columnar batch engine vs the row-at-a-time engine    *)
(* ------------------------------------------------------------------ *)

(* Both engines are timed on identical optimized plans; the row engine
   stays selectable precisely so this ablation keeps an honest baseline.
   The two workloads bracket the engine on join-heavy shapes whose
   intermediates dwarf their answers — where execution cost lives in the
   operator inner loops rather than in materializing the (identical)
   final relation:
   - the chain join is many-to-many (each hop fans out [fan] ways
     through [hubs] hub values) over Int (bigint) keys, projected to the
     hub pair at the ends — the optimized plan runs two hash joins whose
     intermediate is [fan] times the base cardinality;
   - the G(x,z) sweep runs the whole RANF pipeline (compile + optimize +
     eval) on a dense graph of string vertices (each vertex reaches its
     [fan] successors), where the row engine additionally pays string
     hashing per probe. *)
let with_engine e f =
  let old = !Relalg.default_engine in
  Relalg.default_engine := e;
  Fun.protect ~finally:(fun () -> Relalg.default_engine := old) f

(* R fans into [hubs] hub values, S connects each hub to its [fan]
   successors, T closes the loop; the chain R |x| S |x| T therefore has
   n*fan intermediate tuples but only hubs*fan distinct hub pairs. *)
let hub_join_state ~n ~hubs ~fan =
  let r = List.init n (fun i -> [ vi i; vi (i mod hubs) ]) in
  let s =
    List.concat_map
      (fun h -> List.init fan (fun r -> [ vi h; vi ((h + r) mod hubs) ]))
      (List.init hubs (fun h -> h))
  in
  let t = List.init hubs (fun h -> [ vi h; vi h ]) in
  State.make ~schema:join_schema
    [ ("R", Relation.make ~arity:2 r);
      ("S", Relation.make ~arity:2 s);
      ("T", Relation.make ~arity:2 t) ]

let hub_join_plan =
  Relalg.(
    Project ([ 1; 5 ], Join ([ (3, 0) ], Join ([ (1, 0) ], Rel "R", Rel "S"), Rel "T")))

(* a graph on [n] string vertices where each vertex reaches its [fan]
   successors: G(x,z) has ~n*fan^2 join candidates, ~n*2*fan answers.
   Vertices carry URI-style labels, the shape of real graph data: the
   row engine re-hashes and re-compares them at every probe and dedup,
   while the columnar engine hashes each label once into the dictionary
   and joins on codes. *)
let dense_chain_state ~n ~fan =
  let v i = s (Printf.sprintf "http://example.org/vertex/%06d" (i mod n)) in
  let edges =
    List.concat_map
      (fun i -> List.init fan (fun r -> [ v i; v (i + r + 1) ]))
      (List.init n (fun i -> i))
  in
  State.make ~schema:family_schema [ ("F", Relation.make ~arity:2 edges) ]

let columnar_ablation ~n_join ~n_chain =
  let fan = 12 in
  let st = hub_join_state ~n:n_join ~hubs:(max 4 (n_join / 20)) ~fan in
  let plan = Optimizer.optimize_for ~schema:join_schema hub_join_plan in
  let join e () = Relalg.eval ~state:st ~engine:e plan in
  let join_agree =
    Relation.equal (join Relalg.Row_engine ()) (join Relalg.Columnar_engine ())
  in
  let join_reps = max 2 (6_000 / n_join) in
  let join_row, join_col =
    best_pair ~runs:7 ~reps:join_reps
      (join Relalg.Row_engine)
      (join Relalg.Columnar_engine)
  in
  let stc = dense_chain_state ~n:n_chain ~fan in
  let ranf e () = with_engine e (fun () -> Ranf.run ~domain:eq_domain ~state:stc g_query) in
  let enum_agree =
    match (ranf Relalg.Row_engine (), ranf Relalg.Columnar_engine ()) with
    | Ok a, Ok b -> Relation.equal a b
    | _ -> false
  in
  let enum_reps = max 2 (3_000 / n_chain) in
  let enum_row, enum_col =
    best_pair ~runs:5 ~reps:enum_reps
      (ranf Relalg.Row_engine)
      (ranf Relalg.Columnar_engine)
  in
  (* budget governance on the columnar engine: same envelope as A3, on a
     join sized so the per-eval envelope cost (budget construction, DLS
     install, span) is amortized the way a governed production eval
     amortizes it — not measured against a sub-200us toy eval *)
  let n_gov = 8 * n_join in
  let stg = hub_join_state ~n:n_gov ~hubs:(max 4 (n_gov / 20)) ~fan in
  let gov_reps = max 2 (6_000 / n_gov) in
  let gov_plain, gov_gov =
    best_pair ~runs:9 ~reps:gov_reps
      (fun () -> Relalg.eval ~state:stg ~engine:Relalg.Columnar_engine plan)
      (fun () ->
        Relalg.eval ~state:stg ~engine:Relalg.Columnar_engine ~budget:(full_budget ()) plan)
  in
  let gov_pct = 100.0 *. ((gov_gov /. gov_plain) -. 1.0) in
  let entry label n row col agree =
    ( label,
      `Assoc
        [ ("n", `Int n);
          ("row_us", `Float row);
          ("columnar_us", `Float col);
          ("speedup", `Float (row /. col));
          ("agree", `Bool agree) ] )
  in
  ( `Assoc
      [ entry "chain_join" n_join join_row join_col join_agree;
        entry "enumeration_sweep_ranf_G" n_chain enum_row enum_col enum_agree;
        ( "governed_columnar_join",
          `Assoc
            [ ("plain_us", `Float gov_plain);
              ("governed_us", `Float gov_gov);
              ("overhead_pct", `Float gov_pct) ] ) ],
    (join_row /. join_col, enum_row /. enum_col, join_agree && enum_agree, gov_pct) )

let ablations () =
  section "A1 (PR 1): hash-join engine vs naive product-filter (3-way chain join)";
  row "%6s %14s %14s %10s" "n" "naive(us)" "hashjoin(us)" "speedup";
  List.iter
    (fun n ->
      let _, agree, naive_us, opt_us = join_ablation ~n in
      row "%6d %14.0f %14.0f %9.1fx%s" n naive_us opt_us (naive_us /. opt_us)
        (if agree then "" else "  ** MISMATCH **"))
    [ 100; 1000 ];
  section "A2 (PR 1): Enumerate.run with and without the decide cache";
  row "%6s %8s %14s %14s %10s" "edges" "answers" "uncached(us)" "warm(us)" "speedup";
  List.iter
    (fun n ->
      let _, answers, uncached_us, warm_us = cache_ablation ~n in
      row "%6d %8d %14.0f %14.0f %9.1fx" n answers uncached_us warm_us (uncached_us /. warm_us))
    [ 6; 12 ];
  section "A3 (PR 3): resource-governor overhead on completing hot paths";
  let detail, worst = governor_ablation () in
  (match detail with
  | `Assoc entries ->
    row "%-24s %14s %14s %10s" "path" "plain(us)" "governed(us)" "overhead";
    List.iter
      (fun (name, v) ->
        match v with
        | `Assoc [ (_, `Float plain); (_, `Float gov); (_, `Float pct) ] ->
          row "%-24s %14.1f %14.1f %9.1f%%" name plain gov pct
        | _ -> ())
      entries
  | _ -> ());
  row "worst-case overhead: %.1f%% (acceptance: < 5%%)" worst;
  section "A4 (PR 4): telemetry overhead (disabled / no-op sink / recording)";
  let detail, worst_noop = telemetry_ablation () in
  (match detail with
  | `Assoc entries ->
    row "%-24s %12s %12s %12s %10s" "path" "off(us)" "noop(us)" "record(us)" "noop-ovh";
    List.iter
      (fun (name, v) ->
        match v with
        | `Assoc
            [ (_, `Float off); (_, `Float noop); (_, `Float recd); (_, `Float noop_pct); _ ] ->
          row "%-24s %12.1f %12.1f %12.1f %9.1f%%" name off noop recd noop_pct
        | _ -> ())
      entries
  | _ -> ());
  row "worst-case no-op-sink overhead: %.1f%% (acceptance: < 2%%)" worst_noop;
  section "A5 (PR 5): supervision overhead (plain / supervised / armed fault plan)";
  let detail, worst_sup, worst_armed = supervision_ablation () in
  (match detail with
  | `Assoc entries ->
    row "%-24s %12s %12s %12s %10s" "path" "plain(us)" "superv(us)" "armed(us)" "sup-ovh";
    List.iter
      (fun (name, v) ->
        match v with
        | `Assoc
            [ (_, `Float plain); (_, `Float sup); (_, `Float armed); (_, `Float sup_pct); _ ]
          ->
          row "%-24s %12.1f %12.1f %12.1f %9.1f%%" name plain sup armed sup_pct
        | _ -> ())
      entries
  | _ -> ());
  row "worst-case supervised overhead: %.1f%% (acceptance: <= 2%%); armed plan: %.1f%%"
    worst_sup worst_armed;
  row "4-way supervised batch agrees with sequential: %b" (batch_agreement ())

(* ------------------------------------------------------------------ *)
(* A7: fq serve - snapshot warm start and wire overhead                *)
(* ------------------------------------------------------------------ *)

(* QE-heavy Presburger sentences: each costs a full quantifier
   elimination cold and a hash lookup warm. *)
let serve_qe_sentences =
  List.map parse
    [ "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1";
      "forall x y. x < y -> exists z. x < z /\\ z <= y";
      "forall x. exists y. x < y /\\ exists z. y < z /\\ z = 2 * y";
      "forall x. exists y z. x < y /\\ y < z /\\ z = x + 3";
      "exists x. forall y. x < y \\/ x = y \\/ y < x";
      "forall x y z. x < y /\\ y < z -> x < z";
      "forall x. exists y. y = 3 * x + 1 /\\ x < y";
      "forall x y. exists z. x + y < z /\\ z = 2 * x + 2 * y + 1" ]

let serve_ablation () =
  (* (a) first-query decide cost, cold cache vs snapshot-loaded cache *)
  let decide_pass cache =
    let t0 = Unix.gettimeofday () in
    List.iter (fun f -> ignore (Decide_cache.decide cache presburger f)) serve_qe_sentences;
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  let snapshot = Filename.temp_file "fq_bench_snap" ".fq" in
  let seed = Decide_cache.create () in
  ignore (decide_pass seed);
  (match Decide_cache.save seed snapshot with
  | Ok _ -> ()
  | Error e -> failwith ("serve ablation: snapshot save: " ^ e));
  let passes = 5 in
  let cold_total = ref 0.0 and warm_total = ref 0.0 in
  for _ = 1 to passes do
    cold_total := !cold_total +. decide_pass (Decide_cache.create ());
    let warm = Decide_cache.create () in
    (match Decide_cache.load warm snapshot with
    | Ok _ -> ()
    | Error e -> failwith ("serve ablation: snapshot load: " ^ e));
    warm_total := !warm_total +. decide_pass warm
  done;
  Sys.remove snapshot;
  let cold_us = !cold_total /. float_of_int passes in
  let warm_us = !warm_total /. float_of_int passes in
  let warm_speedup = cold_us /. Float.max warm_us 1e-9 in
  (* (b) per-request wire overhead: the same query through a live
     in-process server (socket + JSON + admission + dispatch) vs a
     direct eval_resilient call *)
  let sock = Filename.temp_file "fq_bench_serve" ".sock" in
  Sys.remove sock;
  let addr = Server.Unix_path sock in
  let cfg =
    { (Server.default_config ~state:family_state addr) with
      Server.jobs = 2;
      log = (fun _ -> ()) }
  in
  let server_result = ref (Error "server never returned") in
  let th = Thread.create (fun () -> server_result := Server.run cfg) () in
  let client =
    match Client.connect ~retries:200 ~delay_ms:25 addr with
    | Ok c -> c
    | Error e -> failwith ("serve ablation: " ^ e)
  in
  let formula = "exists y. F(x, y)" in
  let request i =
    match
      Client.request client
        (Protocol.Eval
           { id = string_of_int i; domain = None; formula; fuel = None;
             timeout_ms = None; resume = None; trace = None })
    with
    | Ok (_, Protocol.R_outcome _) -> ()
    | Ok _ -> failwith "serve ablation: unexpected reply"
    | Error e -> failwith ("serve ablation: " ^ e)
  in
  request 0;
  let n = 300 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    request i
  done;
  let serve_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int n in
  (match Client.request client (Protocol.Shutdown { id = "bye" }) with
  | Ok _ -> ()
  | Error e -> failwith ("serve ablation: shutdown: " ^ e));
  Client.close client;
  Thread.join th;
  (match !server_result with
  | Ok 0 -> ()
  | Ok c -> failwith (Printf.sprintf "serve ablation: server exited %d" c)
  | Error e -> failwith ("serve ablation: " ^ e));
  let parsed = parse formula in
  let direct () =
    ignore (Query.eval_resilient ~domain:presburger ~state:family_state parsed)
  in
  direct ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    direct ()
  done;
  let direct_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int n in
  let detail =
    `Assoc
      [ ("qe_sentences", `Int (List.length serve_qe_sentences));
        ("timing_passes", `Int passes);
        ("cold_first_query_us", `Float cold_us);
        ("warm_first_query_us", `Float warm_us);
        ("warm_start_speedup", `Float warm_speedup);
        ("serve_requests", `Int n);
        ("serve_request_us", `Float serve_us);
        ("direct_eval_us", `Float direct_us);
        ("wire_overhead_us", `Float (serve_us -. direct_us)) ]
  in
  (detail, (warm_speedup, serve_us, direct_us))

(* PR 8: cost of crash-safe journaling on the decide fill path.  Every
   sentence is distinct, so every verdict is a fresh cacheable fill —
   the worst case for the journal hook, which renders the entry and
   appends one CRC-framed record (write syscall, no fsync) per fill.

   The acceptance number is measured at the fill path itself, through
   the production hook wiring (Decide_cache.set_on_insert -> journal
   mutex -> entry_to_line -> Journal.append), on a worker domain: QE +
   cache insert with the hook vs without.  An end-to-end serve
   comparison is reported alongside for context, but a socket round
   trip costs O(100us) of thread/domain scheduling with comparable
   variance, which drowns a ~5us mechanism — it does not gate. *)
let journal_fill_sentences n =
  (* four QE shapes, parametrized to distinct sentences *)
  List.init n (fun i ->
      let k = (i / 4) + 2 in
      match i mod 4 with
      | 0 -> Printf.sprintf "forall x. exists y. x < y /\\ y < x + %d" k
      | 1 -> Printf.sprintf "forall x. exists y. y = %d * x + 1 /\\ x < y" k
      | 2 -> Printf.sprintf "forall x y. x < y -> exists z. x < z /\\ z < y + %d" k
      | _ -> Printf.sprintf "exists x. forall y. x < y \\/ x = y \\/ y < x + %d" k)
  |> List.map parse

let journal_fill_pass ~journal sentences =
  let jstate =
    match journal with
    | false -> None
    | true ->
      let p = Filename.temp_file "fq_bench_fill" ".j" in
      Sys.remove p;
      (match Journal.open_append p with
      | Ok j -> Some (j, p, Mutex.create ())
      | Error e -> failwith ("journal ablation: " ^ e))
  in
  let cache = Decide_cache.create () in
  (match jstate with
  | Some (j, _, lock) ->
    Decide_cache.set_on_insert cache
      (Some
         (fun key value ->
           Mutex.lock lock;
           Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
           match Journal.append j (Decide_cache.entry_to_line key value) with
           | Ok () -> ()
           | Error e -> failwith ("journal ablation: append: " ^ e)))
  | None -> ());
  let us =
    Stdlib.Domain.join
      (Stdlib.Domain.spawn (fun () ->
           let t0 = Unix.gettimeofday () in
           List.iter (fun f -> ignore (Decide_cache.decide cache presburger f)) sentences;
           (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int (List.length sentences)))
  in
  (match jstate with
  | Some (j, p, _) ->
    Journal.close j;
    Sys.remove p
  | None -> ());
  us

let journal_ablation () =
  let n = 120 and passes = 6 in
  let sentences = journal_fill_sentences 200 in
  let fill_on = ref infinity and fill_off = ref infinity in
  for p = 1 to passes do
    if p mod 2 = 1 then begin
      fill_off := Float.min !fill_off (journal_fill_pass ~journal:false sentences);
      fill_on := Float.min !fill_on (journal_fill_pass ~journal:true sentences)
    end
    else begin
      fill_on := Float.min !fill_on (journal_fill_pass ~journal:true sentences);
      fill_off := Float.min !fill_off (journal_fill_pass ~journal:false sentences)
    end
  done;
  let fill_overhead_pct = (!fill_on -. !fill_off) /. Float.max !fill_off 1e-9 *. 100.0 in
  let texts =
    Array.init n (fun i ->
        Printf.sprintf "forall x. exists y. x < y /\\ y < x + %d" (i + 2))
  in
  let run_pass ~journal =
    let sock = Filename.temp_file "fq_bench_jserve" ".sock" in
    Sys.remove sock;
    let jpath =
      if journal then begin
        let p = Filename.temp_file "fq_bench_journal" ".j" in
        Sys.remove p;
        Some p
      end
      else None
    in
    let addr = Server.Unix_path sock in
    let cfg =
      { (Server.default_config ~state:family_state addr) with
        Server.jobs = 2;
        journal = jpath;
        log = (fun _ -> ()) }
    in
    let server_result = ref (Error "server never returned") in
    let th = Thread.create (fun () -> server_result := Server.run cfg) () in
    let client =
      match Client.connect ~retries:200 ~delay_ms:25 addr with
      | Ok c -> c
      | Error e -> failwith ("journal ablation: " ^ e)
    in
    let request id text =
      match
        Client.request client
          (Protocol.Eval
             { id; domain = Some "presburger"; formula = text; fuel = None;
               timeout_ms = None; resume = None; trace = None })
      with
      | Ok (_, Protocol.R_outcome _) -> ()
      | Ok _ -> failwith "journal ablation: unexpected reply"
      | Error e -> failwith ("journal ablation: " ^ e)
    in
    request "warm" "forall x. exists y. x < y";
    let t0 = Unix.gettimeofday () in
    Array.iteri (fun i t -> request (string_of_int i) t) texts;
    let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int n in
    (match Client.request client (Protocol.Shutdown { id = "bye" }) with
    | Ok _ -> ()
    | Error e -> failwith ("journal ablation: shutdown: " ^ e));
    Client.close client;
    Thread.join th;
    (match !server_result with
    | Ok 0 -> ()
    | Ok c -> failwith (Printf.sprintf "journal ablation: server exited %d" c)
    | Error e -> failwith ("journal ablation: " ^ e));
    (us, jpath)
  in
  (* QE dominates each request (~200us) while the append is ~3us, so the
     delta drowns in scheduler/allocator noise on any single pass: take
     the best pass per configuration (min is the standard robust latency
     estimator), alternating run order so neither side benefits from
     machine warm-up. *)
  let on_best = ref infinity and off_best = ref infinity in
  let recovered = ref 0 and recovery_us = ref 0.0 in
  for p = 1 to passes do
    let measure ~journal =
      let us, jpath = run_pass ~journal in
      (match jpath with
      | None -> ()
      | Some jp ->
        (* no snapshot is configured, so the journal still holds every
           record after the graceful shutdown — replay and time it *)
        let count = ref 0 in
        let t0 = Unix.gettimeofday () in
        (match Journal.recover jp ~f:(fun _ -> incr count) with
        | Ok _ -> ()
        | Error e -> failwith ("journal ablation: recover: " ^ e));
        if p = passes then begin
          recovered := !count;
          recovery_us := (Unix.gettimeofday () -. t0) *. 1e6
        end;
        Sys.remove jp);
      us
    in
    if p mod 2 = 1 then begin
      off_best := Float.min !off_best (measure ~journal:false);
      on_best := Float.min !on_best (measure ~journal:true)
    end
    else begin
      on_best := Float.min !on_best (measure ~journal:true);
      off_best := Float.min !off_best (measure ~journal:false)
    end
  done;
  let off_us = !off_best in
  let on_us = !on_best in
  let e2e_delta_us = on_us -. off_us in
  let detail =
    `Assoc
      [ ("fill_sentences", `Int (List.length sentences));
        ("timing_passes", `Int passes);
        ("fill_us_journal_off", `Float !fill_off);
        ("fill_us_journal_on", `Float !fill_on);
        ("fill_overhead_pct", `Float fill_overhead_pct);
        ("e2e_requests", `Int n);
        ("e2e_request_us_journal_off", `Float off_us);
        ("e2e_request_us_journal_on", `Float on_us);
        ("e2e_delta_us", `Float e2e_delta_us);
        ("records_recovered", `Int !recovered);
        ("recovery_total_us", `Float !recovery_us);
        ( "recovery_us_per_record",
          `Float (!recovery_us /. Float.max (float_of_int !recovered) 1.0) ) ]
  in
  (detail, (fill_overhead_pct, !recovered))

(* ------------------------------------------------------------------ *)
(* Machine-readable output (-- json)                                   *)
(* ------------------------------------------------------------------ *)

(* minimal JSON printer — no external dependency *)
let rec print_json fmt = function
  | `Null -> Format.fprintf fmt "null"
  | `Bool b -> Format.fprintf fmt "%b" b
  | `Int n -> Format.fprintf fmt "%d" n
  | `Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf fmt "%.0f" f
    else Format.fprintf fmt "%.3f" f
  | `String s -> Format.fprintf fmt "%S" s
  | `List items ->
    Format.fprintf fmt "@[<hv 2>[";
    List.iteri
      (fun i item ->
        if i > 0 then Format.fprintf fmt ",@ ";
        print_json fmt item)
      items;
    Format.fprintf fmt "]@]"
  | `Assoc fields ->
    Format.fprintf fmt "@[<hv 2>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ",@ ";
        Format.fprintf fmt "%S: %a" k print_json v)
      fields;
    Format.fprintf fmt "}@]"

let json_report () =
  let join_json, join_agree, join_naive, join_opt = join_ablation ~n:1000 in
  let cache_json, cache_answers, cache_uncached, cache_warm = cache_ablation ~n:12 in
  let doc =
    `Assoc
      [ ("pr", `Int 1);
        ("description", `String "hash-join execution engine + plan optimizer + decide cache");
        ("join_ablation", join_json);
        ("decide_cache_ablation", cache_json);
        ( "acceptance",
          `Assoc
            [ ("join_agree", `Bool join_agree);
              ("join_speedup_ge_5x", `Bool (join_naive >= 5.0 *. join_opt));
              ("cache_answers_ge_8", `Bool (cache_answers >= 8));
              ("cache_speedup_gt_1x", `Bool (cache_uncached > cache_warm)) ] ) ]
  in
  Format.printf "%a@." print_json doc

let json_report_pr3 () =
  let detail, worst = governor_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 3);
        ( "description",
          `String
            "unified resource governor: budgeted execution, structured failure, graceful \
             degradation" );
        ("governor_overhead", detail);
        ( "acceptance",
          `Assoc
            [ ("worst_overhead_pct", `Float worst);
              ("overhead_lt_5pct", `Bool (worst < 5.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

(* ------------------------------------------------------------------ *)
(* PR 9: request tracing + always-on metrics pipeline                  *)
(* ------------------------------------------------------------------ *)

(* Per-request cost of the observability plane on the serving path: an
   in-process server answers the same sequential request stream with
   head-sampled tracing off (trace_sample = 0, the always-on labeled
   aggregation still running — it has no off switch by design) and with
   1-in-8 sampling.  Arms alternate across passes and each arm keeps its
   minimum, so scheduler noise cancels instead of accumulating. *)
let observability_serve_pass ~trace_sample n =
  let sock = Filename.temp_file "fq_bench_obs" ".sock" in
  Sys.remove sock;
  let addr = Server.Unix_path sock in
  let cfg =
    { (Server.default_config ~state:family_state addr) with
      Server.jobs = 2;
      trace_sample;
      log = (fun _ -> ()) }
  in
  let server_result = ref (Error "server never returned") in
  let th = Thread.create (fun () -> server_result := Server.run cfg) () in
  let client =
    match Client.connect ~retries:200 ~delay_ms:25 addr with
    | Ok c -> c
    | Error e -> failwith ("observability ablation: " ^ e)
  in
  let formula = "exists y. F(x, y)" in
  let request i =
    match
      Client.request client
        (Protocol.Eval
           { id = string_of_int i; domain = None; formula; fuel = None;
             timeout_ms = None; resume = None; trace = None })
    with
    | Ok (_, Protocol.R_outcome _) -> ()
    | Ok _ -> failwith "observability ablation: unexpected reply"
    | Error e -> failwith ("observability ablation: " ^ e)
  in
  (* warm the worker domains, the decide cache and the socket path *)
  for i = 0 to 24 do
    request i
  done;
  (* time in chunks and keep the best chunk: one descheduling event then
     poisons a chunk, not the whole pass *)
  let chunk = 50 in
  let best = ref infinity in
  for c = 0 to (n / chunk) - 1 do
    let t0 = Unix.gettimeofday () in
    for i = 0 to chunk - 1 do
      request (100 + (c * chunk) + i)
    done;
    let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int chunk in
    if us < !best then best := us
  done;
  let us = !best in
  (match Client.request client (Protocol.Shutdown { id = "bye" }) with
  | Ok _ -> ()
  | Error e -> failwith ("observability ablation: shutdown: " ^ e));
  Client.close client;
  Thread.join th;
  (match !server_result with
  | Ok 0 -> ()
  | Ok c -> failwith (Printf.sprintf "observability ablation: server exited %d" c)
  | Error e -> failwith ("observability ablation: " ^ e));
  us

let tracing_ablation () =
  let n = 500 and passes = 5 in
  let plain = ref infinity and traced = ref infinity in
  for _ = 1 to passes do
    plain := Float.min !plain (observability_serve_pass ~trace_sample:0 n);
    traced := Float.min !traced (observability_serve_pass ~trace_sample:8 n)
  done;
  let overhead_pct = 100. *. (!traced -. !plain) /. !plain in
  ( `Assoc
      [ ("serve_requests_per_pass", `Int n);
        ("timing_passes", `Int passes);
        ("trace_sample", `Int 8);
        ("plain_request_us", `Float !plain);
        ("traced_request_us", `Float !traced);
        ("sampled_tracing_overhead_pct", `Float overhead_pct) ],
    overhead_pct )

let json_report_pr4 () =
  let detail, worst_noop = telemetry_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 4);
        ( "description",
          `String
            "telemetry: hierarchical spans, counters, histograms with pluggable sinks; \
             overhead of the disabled path vs the no-op sink vs a full recording on the \
             governed hot paths" );
        ("telemetry_overhead", detail);
        ( "acceptance",
          `Assoc
            [ ("worst_noop_overhead_pct", `Float worst_noop);
              ("noop_overhead_lt_2pct", `Bool (worst_noop < 2.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

let json_report_pr5 () =
  let detail, worst_sup, worst_armed = supervision_ablation () in
  let agree = batch_agreement () in
  let doc =
    `Assoc
      [ ("pr", `Int 5);
        ( "description",
          `String
            "fault injection + supervised parallel batch: overhead of the per-job \
             supervise envelope and of an armed-but-silent chaos plan on the governed \
             hot paths, plus agreement of the supervised 4-way worker pool with \
             sequential evaluation" );
        ("supervision_overhead", detail);
        ( "acceptance",
          `Assoc
            [ ("parallel_batch_agrees", `Bool agree);
              ("worst_supervised_overhead_pct", `Float worst_sup);
              ("worst_armed_plan_overhead_pct", `Float worst_armed);
              ("supervised_overhead_le_2pct", `Bool (worst_sup <= 2.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

let json_report_pr6 () =
  let detail, (join_speedup, enum_speedup, agree, gov_pct) =
    columnar_ablation ~n_join:2000 ~n_chain:4000
  in
  let doc =
    `Assoc
      [ ("pr", `Int 6);
        ( "description",
          `String
            "columnar batch execution engine (dictionary-encoded column batches, \
             selection vectors, code-keyed hash joins) vs the row-at-a-time engine on \
             identical plans, plus budget-governance overhead on the columnar engine" );
        ("columnar_ablation", detail);
        ( "acceptance",
          `Assoc
            [ ("engines_agree", `Bool agree);
              ("chain_join_speedup", `Float join_speedup);
              ("enumeration_speedup", `Float enum_speedup);
              ("chain_join_speedup_ge_10x", `Bool (join_speedup >= 10.0));
              ("enumeration_speedup_ge_10x", `Bool (enum_speedup >= 10.0));
              ("governed_overhead_pct", `Float gov_pct);
              ("governed_overhead_le_5pct", `Bool (gov_pct <= 5.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc
let json_report_pr7 () =
  let detail, (warm_speedup, serve_us, direct_us) = serve_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 7);
        ( "description",
          `String
            "fq serve: decide-cache snapshot warm start (first-query QE cost, cold vs \
             snapshot-loaded) and per-request wire overhead of the NDJSON daemon vs a \
             direct eval_resilient call on the same state" );
        ("serve_ablation", detail);
        ( "acceptance",
          `Assoc
            [ ("warm_start_speedup", `Float warm_speedup);
              ("warm_start_speedup_ge_5x", `Bool (warm_speedup >= 5.0));
              ("serve_request_us", `Float serve_us);
              ("direct_eval_us", `Float direct_us) ] ) ]
  in
  Format.printf "%a@." print_json doc

let json_report_pr8 () =
  let detail, (overhead_pct, recovered) = journal_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 8);
        ( "description",
          `String
            "crash-safe serving: overhead of the decide-cache journal hook on the fill \
             path (QE + cache insert + CRC-framed append per fresh verdict, through the \
             production set_on_insert wiring, on a worker domain) vs the same fills \
             unjournaled; an end-to-end serve comparison and a full recovery replay of \
             the journal a serve run produced are reported for context" );
        ("journal_ablation", detail);
        ( "acceptance",
          `Assoc
            [ ("fill_overhead_pct", `Float overhead_pct);
              ("fill_overhead_le_5pct", `Bool (overhead_pct <= 5.0));
              ("records_recovered", `Int recovered);
              ("recovery_complete", `Bool (recovered > 0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

let json_report_pr9 () =
  let tel_detail, worst_noop = telemetry_ablation () in
  let trace_detail, trace_pct = tracing_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 9);
        ( "description",
          `String
            "end-to-end request tracing and the always-on metrics pipeline: the PR 4 \
             telemetry ablation re-run on top of the labeled Aggregate registry and \
             histogram key-space LRU (the one-ref-read disabled-path discipline must \
             survive them), and per-request cost of a live server with 1-in-8 \
             head-sampled tracing vs sampling off (alternating passes, min per arm)" );
        ("telemetry_overhead", tel_detail);
        ("tracing_ablation", trace_detail);
        ( "acceptance",
          `Assoc
            [ ("worst_noop_overhead_pct", `Float worst_noop);
              ("noop_overhead_lt_2pct", `Bool (worst_noop < 2.0));
              ("sampled_tracing_overhead_pct", `Float trace_pct);
              ("sampled_tracing_overhead_le_5pct", `Bool (trace_pct <= 5.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

(* ------------------------------------------------------------------ *)
(* PR 10: multi-process fleet vs a single in-process serve             *)
(* ------------------------------------------------------------------ *)

(* Per-request cost of a supervised fleet worker vs a single [fq serve]
   daemon on the same sequential request stream.  Both arms fork their
   server: that is how both are actually deployed (an in-process serve
   thread shares the client's address space and measures ~2us/request
   faster than any real daemon), and it is the only shape the fleet arm
   tolerates — OCaml 5 refuses Unix.fork once any domain exists in this
   process, which booting Server.run in-process would do.  Each server
   boots once and stays up for the whole ablation; the two clients then
   alternate short timing passes (identical warm-up + chunked loop,
   best 50-request chunk per pass, min across passes) so a load spike
   lands on both arms instead of biasing whichever arm owned that
   stretch of wall clock. *)
let fleet_request_stream client n =
  let request i =
    match
      Client.request client
        (Protocol.Eval
           { id = string_of_int i; domain = None; formula = "exists y. F(x, y)";
             fuel = None; timeout_ms = None; resume = None; trace = None })
    with
    | Ok (_, Protocol.R_outcome _) -> ()
    | Ok _ -> failwith "fleet ablation: unexpected reply"
    | Error e -> failwith ("fleet ablation: " ^ e)
  in
  for i = 0 to 24 do
    request i
  done;
  let chunk = 50 in
  let best = ref infinity in
  for c = 0 to (n / chunk) - 1 do
    let t0 = Unix.gettimeofday () in
    for i = 0 to chunk - 1 do
      request (100 + (c * chunk) + i)
    done;
    let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int chunk in
    if us < !best then best := us
  done;
  !best

let with_fleet_worker_client k =
  let sock = Filename.temp_file "fq_bench_fleet" ".sock" in
  Sys.remove sock;
  let addr = Server.Unix_path sock in
  let base = Fleet.default_config ~state:family_state addr in
  let cfg =
    { base with
      Fleet.workers = 2;
      (* the probes stay on (the supervision plane is part of what is
         being measured) but are made load-proof: under `dune build`
         every BENCH rule runs at once, and a starved worker that
         merely answers slowly must not be health-killed mid-pass *)
      probe_timeout_ms = 5_000;
      probe_failures = 1_000;
      serve = { base.Fleet.serve with Server.jobs = 2; log = (fun _ -> ()) } }
  in
  let result = ref (Error "fleet never returned") in
  let th = Thread.create (fun () -> result := Fleet.run cfg) () in
  (* discover a worker through the control socket, then talk to it
     directly — the per-request path a spread batch client takes *)
  let worker =
    match Client.discover ~retries:200 ~delay_ms:25 addr with
    | Ok (true, w :: _) -> w
    | Ok _ -> failwith "fleet ablation: no workers discovered"
    | Error e -> failwith ("fleet ablation: discover: " ^ e)
  in
  let client =
    match Client.connect ~retries:200 ~delay_ms:25 worker with
    | Ok c -> c
    | Error e -> failwith ("fleet ablation: worker connect: " ^ e)
  in
  let r = k client in
  Client.close client;
  (match Client.connect ~retries:50 ~delay_ms:25 addr with
  | Ok c ->
    (match Client.request c (Protocol.Shutdown { id = "bye" }) with
    | Ok _ -> ()
    | Error e -> failwith ("fleet ablation: shutdown: " ^ e));
    Client.close c
  | Error e -> failwith ("fleet ablation: shutdown connect: " ^ e));
  Thread.join th;
  (match !result with
  | Ok 0 -> ()
  | Ok c -> failwith (Printf.sprintf "fleet ablation: fleet exited %d" c)
  | Error e -> failwith ("fleet ablation: " ^ e));
  r

let with_lone_serve_client k =
  let sock = Filename.temp_file "fq_bench_lone" ".sock" in
  Sys.remove sock;
  let addr = Server.Unix_path sock in
  let cfg =
    { (Server.default_config ~state:family_state addr) with
      Server.jobs = 2;
      log = (fun _ -> ()) }
  in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then Unix._exit (match Server.run cfg with Ok c -> c | Error _ -> 3);
  let client =
    match Client.connect ~retries:200 ~delay_ms:25 addr with
    | Ok c -> c
    | Error e -> failwith ("fleet ablation: serve connect: " ^ e)
  in
  let r = k client in
  (match Client.request client (Protocol.Shutdown { id = "bye" }) with
  | Ok _ -> ()
  | Error e -> failwith ("fleet ablation: serve shutdown: " ^ e));
  Client.close client;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith "fleet ablation: serve exited abnormally");
  r

let fleet_ablation () =
  let n = 500 and passes = 9 in
  (* the fleet boots first: its supervisor forks, and fork must precede
     any domain in this process (neither server runs in-process, so no
     domain ever appears here) *)
  with_fleet_worker_client @@ fun fleet_client ->
  with_lone_serve_client @@ fun serve_client ->
  let fleet = ref infinity and serve = ref infinity in
  for _ = 1 to passes do
    fleet := Float.min !fleet (fleet_request_stream fleet_client n);
    serve := Float.min !serve (fleet_request_stream serve_client n)
  done;
  let overhead_pct = 100. *. (!fleet -. !serve) /. !serve in
  ( `Assoc
      [ ("requests_per_pass", `Int n);
        ("timing_passes", `Int passes);
        ("fleet_workers", `Int 2);
        ("fleet_request_us", `Float !fleet);
        ("single_serve_request_us", `Float !serve);
        ("fleet_overhead_pct", `Float overhead_pct) ],
    overhead_pct )

let json_report_pr10 () =
  let detail, overhead_pct = fleet_ablation () in
  let doc =
    `Assoc
      [ ("pr", `Int 10);
        ( "description",
          `String
            "fq fleet: per-request cost of a forked, supervised fleet worker \
             (discovered via fleet-status, own listener and journal, read-only shared \
             snapshot) vs a single forked fq serve process on the same sequential \
             request stream; the supervision plane (probes, reaping, control socket) \
             runs throughout the fleet arm, and the arms alternate passes" );
        ("fleet_ablation", detail);
        ( "acceptance",
          `Assoc
            [ ("fleet_overhead_pct", `Float overhead_pct);
              ("fleet_overhead_le_5pct", `Bool (overhead_pct <= 5.0)) ] ) ]
  in
  Format.printf "%a@." print_json doc

(* Downsized CI gate: fails (exit 1) if the columnar engine regresses
   below the row engine on the chain join, or the engines disagree. *)
let smoke_pr6 () =
  let detail, (join_speedup, enum_speedup, agree, _) =
    columnar_ablation ~n_join:300 ~n_chain:300
  in
  Format.printf "%a@." print_json
    (`Assoc
      [ ("smoke", `String "pr6");
        ("columnar_ablation", detail);
        ("engines_agree", `Bool agree);
        ("chain_join_speedup", `Float join_speedup);
        ("enumeration_speedup", `Float enum_speedup) ]);
  if not agree then begin
    prerr_endline "smoke-pr6: FAIL engines disagree";
    exit 1
  end;
  if join_speedup < 1.0 then begin
    Printf.eprintf "smoke-pr6: FAIL columnar slower than row on chain join (%.2fx)\n"
      join_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_tests =
  let input64 = String.make 64 '1' in
  let long_input = String.make 24 '1' in
  let long_trace = Option.get (Trace.trace_word ~machine:scan ~input:long_input ~k:24) in
  let cooper_sentence = parse "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1" in
  let order_sentence = parse "forall x y. x < y -> exists z. x < z /\\ z <= y" in
  let succ_sentence = parse "forall x y. x' = y' -> x = y" in
  let reach_sentence =
    Result.get_ok
      (Reach.of_formula (parse (Printf.sprintf "exists p. P(\"%s\", \"11\", p)" scan)))
  in
  let lemma_constraints =
    [ Builder.At_least ("111", 3); Builder.Exactly ("11-", 2); Builder.Exactly ("-11", 1) ]
  in
  let q = Rat.of_int in
  let crel_square =
    Crel.make ~columns:[ "x"; "y" ]
      [ [ { Crel.lhs = C (q 0); op = Crel.Lt; rhs = Crel.V "x" };
          { Crel.lhs = Crel.V "x"; op = Crel.Lt; rhs = C (q 10) };
          { Crel.lhs = C (q 0); op = Crel.Lt; rhs = Crel.V "y" };
          { Crel.lhs = Crel.V "y"; op = Crel.Lt; rhs = Crel.V "x" } ] ]
  in
  let big_a = Bigint.of_string "123456789012345678901234567890" in
  let big_b = Bigint.of_string "987654321098765432109876543210" in
  [ Test.make ~name:"tm/simulate-64"
      (Staged.stage (fun () -> Run.run ~fuel:1_000 Zoo.scan_right input64));
    Test.make ~name:"tm/trace-validate"
      (Staged.stage (fun () -> Trace.p_pred scan long_input long_trace));
    Test.make ~name:"tm/lemma-a2-builder"
      (Staged.stage (fun () -> Builder.satisfiable lemma_constraints));
    Test.make ~name:"qe/cooper" (Staged.stage (fun () -> Cooper.decide cooper_sentence));
    Test.make ~name:"qe/presburger-relativized"
      (Staged.stage (fun () -> Presburger.decide cooper_sentence));
    Test.make ~name:"qe/nat-order-dedicated"
      (Staged.stage (fun () -> Nat_order.decide order_sentence));
    Test.make ~name:"qe/nat-order-via-cooper"
      (Staged.stage (fun () -> Presburger.decide order_sentence));
    Test.make ~name:"qe/nat-succ-dedicated"
      (Staged.stage (fun () -> Nat_succ.decide succ_sentence));
    Test.make ~name:"qe/nat-succ-via-cooper"
      (Staged.stage (fun () -> Presburger.decide succ_sentence));
    Test.make ~name:"reach/decide-exists-trace"
      (Staged.stage (fun () -> Reach_qe.decide reach_sentence));
    Test.make ~name:"eval/enumerate-M(x)"
      (Staged.stage (fun () -> Enumerate.run ~domain:eq_domain ~state:family_state m_query));
    Test.make ~name:"eval/algebra-M(x)"
      (Staged.stage (fun () ->
           Algebra_translate.run ~domain:eq_domain ~state:family_state m_query));
    Test.make ~name:"relsafe/finitization"
      (Staged.stage (fun () ->
           Relative_safety.via_finitization ~domain:presburger ~decide:Presburger.decide
             ~state:nat_state (parse "exists y. R(y) /\\ x < y")));
    Test.make ~name:"relsafe/ext-active"
      (Staged.stage (fun () ->
           Ext_active.finite_in_state ~domain:succ_domain ~state:nat_state (parse "R(x)")));
    Test.make ~name:"constraintdb/complement+project"
      (Staged.stage (fun () -> Crel.project ~keep:[ "y" ] (Crel.complement crel_square)));
    Test.make ~name:"bigint/lcm" (Staged.stage (fun () -> Bigint.lcm big_a big_b)) ]

let run_benchmarks () =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let instance = Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Format.printf "@.== Microbenchmarks (ns/run, monotonic clock) ==@.";
  List.iter
    (fun test ->
      let measurements = Benchmark.all cfg [ instance ] test in
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) measurements []
      |> List.sort compare
      |> List.iter (fun (name, measurement) ->
             let result = Analyze.one ols instance measurement in
             match Analyze.OLS.estimates result with
             | Some [ e ] -> Format.printf "  %-36s %12.0f@." name e
             | _ -> Format.printf "  %-36s            ?@." name))
    bench_tests

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  match mode with
  | "json" -> json_report ()
  | "json-pr3" -> json_report_pr3 ()
  | "json-pr4" -> json_report_pr4 ()
  | "json-pr5" -> json_report_pr5 ()
  | "json-pr6" -> json_report_pr6 ()
  | "json-pr7" -> json_report_pr7 ()
  | "json-pr8" -> json_report_pr8 ()
  | "json-pr9" -> json_report_pr9 ()
  | "json-pr10" -> json_report_pr10 ()
  | "smoke-pr6" -> smoke_pr6 ()
  | _ ->
    let quick = mode = "quick" in
    Format.printf
      "Finite Queries - experiment harness (E1-E15), sweeps and microbenchmarks@.";
    experiments ();
    ablations ();
    if not quick then begin
      sweeps ();
      run_benchmarks ()
    end;
    Format.printf "@.done.@."
