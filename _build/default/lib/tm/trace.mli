(** Traces of partial computations — the heart of the paper's domain [T].

    A trace of machine [M] (given by its encoding word) in input [w] is the
    word [M ⋆ s₁ ⋆ t₁ ⋆ p₁ ⋆ s₂ ⋆ t₂ ⋆ p₂ ⋆ …] listing the snapshots of the
    first [k ≥ 1] configurations of [M]'s computation on [w] (each snapshot
    is unary state ⋆ tape window ⋆ unary head position, see
    {!Run.snapshot}). A halting computation with [n] steps has exactly
    [n + 1] distinct traces; a diverging one has infinitely many. *)

val trace_word : machine:Fq_words.Word.t -> input:string -> k:int -> Fq_words.Word.t option
(** The trace listing the first [k] snapshots, or [None] when the
    computation has fewer than [k] configurations. [k] must be positive.
    @raise Invalid_argument if [machine] is not machine-shaped, [input] is
    not an input word, or [k < 1]. *)

val traces : machine:Fq_words.Word.t -> input:string -> Fq_words.Word.t Seq.t
(** All traces of the machine in the input, shortest first. Finite iff the
    machine halts on the input. *)

val p_pred : Fq_words.Word.t -> Fq_words.Word.t -> Fq_words.Word.t -> bool
(** [p_pred m w p] is the domain predicate [P(m, w, p)]: [m] is a
    machine-shaped word, [w] an input word, and [p] a trace of [m] in [w].
    Total on all words; never raises. *)

val is_trace_word : Fq_words.Word.t -> bool
(** Membership in the class [T]: [∃ M w. P(M, w, p)]. Decidable because a
    trace determines its machine and (up to trailing blanks) its input. *)

val parse : Fq_words.Word.t -> (Fq_words.Word.t * Fq_words.Word.t * int) option
(** [parse p = Some (m, w, k)] when [p] is a valid trace: its machine word,
    the input recovered from the first snapshot, and its snapshot count. *)

val count_traces_upto : bound:int -> machine:Fq_words.Word.t -> input:string -> int
(** [min(bound, number of traces of the machine in the input)]. *)

val d_pred : i:int -> Fq_words.Word.t -> Fq_words.Word.t -> bool
(** The Appendix predicate [D_i(M, w)]: the machine has at least [i]
    distinct traces in [w] — equivalently, its computation on [w] reaches
    at least [i] configurations. Decidable by bounded simulation. Total on
    all words ([false] when [M] is not machine-shaped or [w] not an input);
    [i] must be positive. *)

val e_pred : i:int -> Fq_words.Word.t -> Fq_words.Word.t -> bool
(** [E_i(M, w)]: exactly [i] distinct traces — the machine halts on [w]
    after exactly [i - 1] steps. *)

val w_fn : Fq_words.Word.t -> Fq_words.Word.t
(** The Appendix function [w(x)]: the input word a trace starts from, and
    the empty word on non-traces. *)

val m_fn : Fq_words.Word.t -> Fq_words.Word.t
(** The Appendix function [m(x)]: the machine of a trace, and the empty
    word on non-traces. *)
