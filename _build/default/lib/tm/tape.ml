open Machine

type t = {
  left : symbol list;  (** cells left of the head, nearest first *)
  head : symbol;
  right : symbol list;  (** cells right of the head, nearest first *)
}

let blank_tape = { left = []; head = Blank; right = [] }

let of_input w =
  let symbols =
    List.map
      (fun c ->
        match Machine.symbol_of_char c with
        | Some s -> s
        | None -> invalid_arg (Printf.sprintf "Tape.of_input: bad character %C" c))
      (List.init (String.length w) (String.get w))
  in
  match symbols with
  | [] -> blank_tape
  | head :: right -> { left = []; head; right }

let read t = t.head
let write c t = { t with head = c }

let move m t =
  match m with
  | Stay -> t
  | Left -> (
    match t.left with
    | [] -> { left = []; head = Blank; right = t.head :: t.right }
    | c :: rest -> { left = rest; head = c; right = t.head :: t.right })
  | Right -> (
    match t.right with
    | [] -> { left = t.head :: t.left; head = Blank; right = [] }
    | c :: rest -> { left = t.head :: t.left; head = c; right = rest })

(* Drop blanks at the far end of a one-sided cell list (far end = list tail). *)
let rec drop_near = function Blank :: rest -> drop_near rest | cells -> cells
let trim_far cells = List.rev (drop_near (List.rev cells))

let render cells = String.init (List.length cells) (fun i -> char_of_symbol (List.nth cells i))

let window t =
  let left = trim_far t.left in
  let right = trim_far t.right in
  let segment = List.rev_append left (t.head :: right) in
  (render segment, List.length left)

let result t =
  let full = List.rev_append t.left (t.head :: t.right) in
  let rec skip_to_one = function
    | [] -> []
    | One :: _ as l -> l
    | Blank :: rest -> skip_to_one rest
  in
  let rec take_ones acc = function
    | One :: rest -> take_ones (One :: acc) rest
    | _ -> List.rev acc
  in
  render (take_ones [] (skip_to_one full))

let equal a b =
  trim_far a.left = trim_far b.left && a.head = b.head && trim_far a.right = trim_far b.right
