module Word = Fq_words.Word

type constraint_ =
  | At_least of string * int
  | Exactly of string * int

let trim_blanks w =
  let n = ref (String.length w) in
  while !n > 0 && w.[!n - 1] = '-' do decr n done;
  String.sub w 0 !n

let validate = function
  | At_least (w, i) | Exactly (w, i) ->
    if not (Word.is_input w) then
      invalid_arg (Printf.sprintf "Builder: %S is not an input word" w);
    if i < 1 then invalid_arg "Builder: trace counts must be positive"

(* The tape character at position [t] of the path of word [w]: the word's
   character, or blank once the head has moved past it. *)
let path_char w t = if t < String.length w then w.[t] else '-'
let path_prefix w t = String.init t (path_char w)

(* Per-tape requirements: survive at least [alive] steps; if [halt_at] is
   set, the cell reached at that step must be undefined. *)
type req = { mutable alive : int; mutable halt_at : int option }

let gather constraints =
  let tbl = Hashtbl.create 16 in
  let req_of w =
    let key = trim_blanks w in
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = { alive = 0; halt_at = None } in
      Hashtbl.add tbl key r;
      r
  in
  let conflict = ref None in
  List.iter
    (fun c ->
      validate c;
      match c with
      | At_least (w, i) ->
        let r = req_of w in
        r.alive <- max r.alive (i - 1)
      | Exactly (w, j) -> (
        let r = req_of w in
        r.alive <- max r.alive (j - 1);
        match r.halt_at with
        | Some j' when j' <> j - 1 ->
          conflict :=
            Some
              (Printf.sprintf "word %S is required to halt after both %d and %d steps"
                 (trim_blanks w) j' (j - 1))
        | _ -> r.halt_at <- Some (j - 1)))
    constraints;
  (tbl, !conflict)

let build constraints =
  let tbl, conflict = gather constraints in
  match conflict with
  | Some msg -> Error msg
  | None ->
    let reqs = Hashtbl.fold (fun w r acc -> (w, r) :: acc) tbl [] in
    (* Exact-halt constraints also require surviving until the halt step. *)
    List.iter
      (fun (_, r) ->
        match r.halt_at with Some e -> r.alive <- max r.alive e | None -> ())
      reqs;
    let defined = Hashtbl.create 64 in
    List.iter
      (fun (w, r) ->
        for t = 0 to r.alive - 1 do
          Hashtbl.replace defined (path_prefix w t, path_char w t) ()
        done)
      reqs;
    let forbidden =
      List.filter_map
        (fun (w, r) ->
          match r.halt_at with
          | Some e -> Some (w, (path_prefix w e, path_char w e))
          | None -> None)
        reqs
    in
    (match
       List.find_opt (fun (_, cell) -> Hashtbl.mem defined cell) forbidden
     with
    | Some (w, _) ->
      Error
        (Printf.sprintf
           "word %S must halt at a step where another constraint forces the machine on" w)
    | None ->
      (* Number the prefix states: the empty prefix is the initial state 1. *)
      let state_ids = Hashtbl.create 64 in
      Hashtbl.add state_ids "" 1;
      let next_id = ref 2 in
      let state_of p =
        match Hashtbl.find_opt state_ids p with
        | Some id -> id
        | None ->
          let id = !next_id in
          incr next_id;
          Hashtbl.add state_ids p id;
          id
      in
      let cells =
        Hashtbl.fold (fun cell () acc -> cell :: acc) defined []
        |> List.sort (fun (p1, c1) (p2, c2) ->
               let c = compare (String.length p1) (String.length p2) in
               if c <> 0 then c else compare (p1, c1) (p2, c2))
      in
      let entries =
        List.map
          (fun (p, c) ->
            let sym =
              match Machine.symbol_of_char c with Some s -> s | None -> assert false
            in
            ( (state_of p, sym),
              { Machine.next = state_of (p ^ String.make 1 c);
                write = sym;
                move = Machine.Right } ))
          cells
      in
      Ok (Machine.make entries))

let satisfiable constraints = Result.is_ok (build constraints)

let prefix_eq a b n =
  String.length a >= n && String.length b >= n && String.sub a 0 n = String.sub b 0 n

let paper_criterion ~d ~e =
  let bad_de =
    List.exists
      (fun (v, i) -> List.exists (fun (u, j) -> i > j && prefix_eq v u j) e)
      d
  in
  let bad_ee =
    List.exists
      (fun (u_r, j_r) ->
        List.exists (fun (u_q, j_q) -> j_r > j_q && prefix_eq u_r u_q j_q) e)
      e
  in
  not (bad_de || bad_ee)
