open Machine

let unary n = Fq_words.Word.unary n

let field_of_symbol = function One -> "1" | Blank -> ""
let field_of_move = function Left -> "" | Right -> "1" | Stay -> "11"

let encode m =
  match entries m with
  | [] -> "*"
  | es ->
    let fields =
      List.concat_map
        (fun ((s, c), { next; write; move }) ->
          [ unary (s - 1); field_of_symbol c; unary (next - 1); field_of_symbol write;
            field_of_move move ])
        es
    in
    String.concat "*" fields

let value f = String.fold_left (fun acc c -> if c = '1' then acc + 1 else acc) 0 f

let symbol_of_value v = if v mod 2 = 1 then One else Blank

let move_of_value v =
  match v mod 3 with
  | 0 -> Left
  | 1 -> Right
  | _ -> Stay

let decode w =
  if not (Fq_words.Word.is_machine_shaped w) then
    invalid_arg (Printf.sprintf "Encode.decode: %S is not machine-shaped" w);
  let fields = String.split_on_char '*' w in
  let rec groups acc = function
    | f1 :: f2 :: f3 :: f4 :: f5 :: rest ->
      let entry =
        ( (value f1 + 1, symbol_of_value (value f2)),
          { next = value f3 + 1; write = symbol_of_value (value f4); move = move_of_value (value f5) } )
      in
      groups (entry :: acc) rest
    | _leftover -> List.rev acc
  in
  Machine.make (groups [] fields)

let variants m =
  let base = encode m in
  (* Appending "*1^n" adds one padding field, which decoding ignores as
     long as the total number of appended fields stays below five; appending
     a single field of a fresh length each time keeps within one leftover
     field while producing infinitely many distinct words. *)
  Seq.cons base (Seq.map (fun n -> base ^ "*" ^ unary n) (Seq.ints 0))
