(** Explicit construction of machines with prescribed initial behaviour —
    the computational content of the paper's Lemma A.2.

    Lemma A.2 characterizes when the formula
    [∃x (D_{i₁}(x,v₁) ∧ … ∧ D_{iₖ}(x,vₖ) ∧ E_{j₁}(x,u₁) ∧ … ∧ E_{jₗ}(x,uₗ))]
    is true: the proof "explicitly constructs the Turing machine that would
    witness the quantifier … (that can actually be written as a finite
    automaton) [and] stops at exactly the specified words in the specified
    numbers of steps". This module is that construction.

    The witness machine is a prefix-trie automaton: its states are the tape
    prefixes it has read; on every defined cell it re-writes the scanned
    symbol and moves right, so after [t] steps it is in the state labelled
    by the first [t] tape characters. [D_i(x,w)] ("at least [i] traces")
    requires the cells along [w]'s path to be defined for the first [i-1]
    steps; [E_j(x,w)] ("exactly [j] traces") additionally requires the cell
    reached at step [j-1] to be {e undefined}. The system is satisfiable
    iff no required cell is also forbidden.

    Unlike the paper we do not assume words are longer than the step
    counts: a path continues over blank cells past the end of its word.
    Words that agree after trimming trailing blanks denote the same tape,
    so their constraints are merged. *)

type constraint_ =
  | At_least of string * int
      (** [At_least (w, i)] — the machine must have at least [i] traces in
          [w], i.e. [D_i(x, w)]. *)
  | Exactly of string * int
      (** [Exactly (w, j)] — exactly [j] traces in [w], i.e. [E_j(x, w)]. *)

val build : constraint_ list -> (Machine.t, string) result
(** The witness machine, or a human-readable reason the system is
    unsatisfiable. Words must be input words and counts positive.
    @raise Invalid_argument on malformed constraints. *)

val satisfiable : constraint_ list -> bool

val paper_criterion : d:(string * int) list -> e:(string * int) list -> bool
(** The literal criterion of Lemma A.2, meaningful under the lemma's
    hypothesis that every word is longer than every step count: the system
    [{D_{iᵣ}(x,vᵣ)} ∪ {E_{jq}(x,u_q)}] is satisfiable iff for no pair
    [(r,q)]:
    - [iᵣ > j_q] and [vᵣ] and [u_q] share their length-[j_q] prefix, or
    - [jᵣ > j_q] and [uᵣ] and [u_q] share their length-[j_q] prefix.

    Tests check it agrees with {!satisfiable} under the hypothesis. *)
