(** A small zoo of concrete Turing machines used throughout the examples,
    tests and benchmarks — total machines (whose trace queries [P(M, c, x)]
    are finite queries, Theorem 3.1) and non-total ones (whose queries are
    unsafe). *)

type totality =
  | Total  (** halts on every input — established by construction *)
  | Non_total  (** diverges on at least one (known) input *)
  | Unknown  (** no totality proof either way *)

type entry = {
  name : string;
  machine : Machine.t;
  totality : totality;
  description : string;
  diverges_on : string option;  (** a witness input for [Non_total] *)
}

val halt : Machine.t
(** No transitions: halts immediately on every input. Total. *)

val scan_right : Machine.t
(** Moves right until it reads a blank, then halts. Total. *)

val erase : Machine.t
(** Erases ['1']s rightwards until a blank, then halts. Total. *)

val successor : Machine.t
(** Unary successor: appends a ['1'] to the first block and halts. Total. *)

val loop : Machine.t
(** Moves right forever. Halts on no input. *)

val loop_on_one : Machine.t
(** Halts immediately when the scanned cell is blank; loops forever in
    place when it reads a ['1']. Halts exactly on inputs beginning with a
    blank (or empty). Not total — the canonical machine of the
    Theorem 3.3 halting reduction. *)

val parity : Machine.t
(** Scans the leading block of ['1']s; halts at the terminating blank iff
    the block's length is even, loops in place otherwise. Not total. *)

val bb2 : Machine.t
(** The 2-state busy beaver: halts on blank input after 5 steps leaving
    four ['1']s. Totality on arbitrary inputs is not asserted. *)

val all : entry list
(** Every machine above with its name, totality flag and description. *)

val total_machines : entry list
val non_total_machines : entry list
