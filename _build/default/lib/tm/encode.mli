(** Encoding of Turing machines as words over [{1, −, *}].

    The paper fixes only that machines are strings in this alphabet with at
    least one ['*'] and says "the details of a particular representation
    are not otherwise important". Our convention makes {e decoding total}
    on the whole machine-shaped class, which the Appendix's constructions
    need (every machine-shaped word denotes some machine, and every machine
    has infinitely many encodings):

    - split the word on ['*'] into fields over [{1,-}];
    - consecutive groups of five fields [(s, c, s', c', m)] are transition
      entries; leftover fields (fewer than five) are padding;
    - a field's value is its number of ['1'] characters; states are
      [value + 1], symbols are the value's parity ([odd = 1]), moves are
      [value mod 3] ([0 = L], [1 = R], [2 = S]);
    - on duplicate [(state, symbol)] keys the first entry wins. *)

val encode : Machine.t -> Fq_words.Word.t
(** Canonical encoding. [encode Machine.empty = "*"]. The result is always
    machine-shaped. *)

val decode : Fq_words.Word.t -> Machine.t
(** Total on machine-shaped words; [decode (encode m)] has the same
    transition function as [m].
    @raise Invalid_argument if the word is not machine-shaped. *)

val variants : Machine.t -> Fq_words.Word.t Seq.t
(** Infinitely many pairwise distinct machine-shaped words all decoding to
    (a machine behaviourally identical to) the given machine — "there are
    infinitely many behaviorally equivalent but syntactically different
    machines" (Appendix, case T-1). The first element is [encode m]. *)
