(** The bi-infinite tape of a Turing machine, as a persistent zipper.

    Cells outside the explicitly stored region hold {!Machine.Blank}. The
    zipper makes configurations persistent, so traces can capture snapshots
    without copying the whole tape. *)

type t

val of_input : string -> t
(** Writes an input word over [{1,-}] on an otherwise blank tape and places
    the head on its leftmost character (on a blank cell when the word is
    empty).
    @raise Invalid_argument if the word has characters outside [{1,-}]. *)

val read : t -> Machine.symbol
val write : Machine.symbol -> t -> t
val move : Machine.move -> t -> t

val window : t -> string * int
(** [(segment, pos)] where [segment] is the minimal contiguous region
    covering every non-blank cell {e and the head}, rendered over [{1,-}],
    and [pos] is the head's offset within it. The paper only demands the
    minimal non-blank cover; including the head keeps the position
    representable in unary when the head sits outside the written region
    (see DESIGN.md). For the initial configuration on input [w] this is
    [w] with trailing blanks trimmed (["-"] for an all-blank tape), at
    position [0] — the paper's first snapshot [1 ⋆ w ⋆]. *)

val result : t -> string
(** The paper's result convention: the empty word when the tape is all
    blank, otherwise the leftmost maximal block of ['1']s. *)

val equal : t -> t -> bool
(** Equality of tape content and head position (stored blanks trimmed). *)
