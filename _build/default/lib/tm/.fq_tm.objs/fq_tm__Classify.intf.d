lib/tm/classify.mli: Format Fq_words
