lib/tm/classify.ml: Format Fq_words Trace
