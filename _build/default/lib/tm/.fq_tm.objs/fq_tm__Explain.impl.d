lib/tm/explain.ml: Buffer Fq_words Printf String Trace
