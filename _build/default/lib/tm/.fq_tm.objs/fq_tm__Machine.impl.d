lib/tm/machine.ml: Format List
