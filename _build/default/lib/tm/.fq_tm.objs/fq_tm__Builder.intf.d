lib/tm/builder.mli: Machine
