lib/tm/builder.ml: Fq_words Hashtbl List Machine Printf Result String
