lib/tm/encode.ml: Fq_words List Machine Printf Seq String
