lib/tm/tape.ml: List Machine Printf String
