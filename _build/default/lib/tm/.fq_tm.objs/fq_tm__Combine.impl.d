lib/tm/combine.ml: List Machine
