lib/tm/tape.mli: Machine
