lib/tm/run.mli: Machine Seq Tape
