lib/tm/combine.mli: Machine
