lib/tm/zoo.ml: List Machine
