lib/tm/run.ml: Fq_words Machine Seq Tape
