lib/tm/zoo.mli: Machine
