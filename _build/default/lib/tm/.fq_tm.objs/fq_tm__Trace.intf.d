lib/tm/trace.mli: Fq_words Seq
