lib/tm/trace.ml: Encode Fq_words List Option Printf Run Seq String
