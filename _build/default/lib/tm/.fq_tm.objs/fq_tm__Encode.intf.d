lib/tm/encode.mli: Fq_words Machine Seq
