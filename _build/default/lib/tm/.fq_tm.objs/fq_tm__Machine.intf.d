lib/tm/machine.mli: Format
