lib/tm/explain.mli: Fq_words
