type cls = Machine | Input | Trace | Other

let classify w =
  match Fq_words.Word.syntactic_class w with
  | `Input -> Input
  | `Machine_shaped -> Machine
  | `Trace_shaped -> if Trace.is_trace_word w then Trace else Other
  | `Other -> Other

let is_machine w = classify w = Machine
let is_input w = classify w = Input
let is_trace w = classify w = Trace
let is_other w = classify w = Other

let to_string = function
  | Machine -> "machine"
  | Input -> "input"
  | Trace -> "trace"
  | Other -> "other"

let pp fmt c = Format.pp_print_string fmt (to_string c)
