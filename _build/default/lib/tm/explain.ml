module Word = Fq_words.Word

let snapshot_line ~state ~tape ~pos =
  match (Word.unary_value state, Word.unary_value pos) with
  | None, _ -> Error (Printf.sprintf "malformed state field %S" state)
  | _, None -> Error (Printf.sprintf "malformed position field %S" pos)
  | Some q, Some p ->
    if q < 1 then Error "state must be positive"
    else if p > String.length tape then Error "head position outside the tape window"
    else begin
      let buf = Buffer.create (String.length tape + 16) in
      Buffer.add_string buf (Printf.sprintf "state q%-3d | tape " q);
      let n = max (String.length tape) (p + 1) in
      for i = 0 to n - 1 do
        let c = if i < String.length tape then tape.[i] else '-' in
        if i = p then Buffer.add_string buf (Printf.sprintf "[%c]" c)
        else Buffer.add_char buf c
      done;
      Ok (Buffer.contents buf)
    end

let trace p =
  match Trace.parse p with
  | None -> Error (Printf.sprintf "%S is not a trace" p)
  | Some (machine, input, k) -> (
    match Word.split_fields p with
    | _ :: rest ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "trace of machine %S on input %S (%d snapshot%s)\n" machine input k
           (if k = 1 then "" else "s"));
      let rec go i = function
        | state :: tape :: pos :: more -> (
          match snapshot_line ~state ~tape ~pos with
          | Ok line ->
            Buffer.add_string buf (Printf.sprintf "  %2d: %s\n" i line);
            go (i + 1) more
          | Error e -> Error e)
        | [] -> Ok (Buffer.contents buf)
        | _ -> Error "internal: field count not divisible by three"
      in
      go 0 rest
    | [] -> Error "empty word")
