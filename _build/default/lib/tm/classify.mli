(** The four pairwise disjoint classes of Section 3 and the Appendix: every
    word of the domain [T] is a machine, an input word, a trace, or an
    "other word". These are the unary predicates [M], [W], [T], [O] of the
    Reach Theory of Traces. *)

type cls = Machine | Input | Trace | Other

val classify : Fq_words.Word.t -> cls
(** @raise Invalid_argument if the argument is not a word over the
    four-letter alphabet. *)

val is_machine : Fq_words.Word.t -> bool
val is_input : Fq_words.Word.t -> bool
val is_trace : Fq_words.Word.t -> bool
val is_other : Fq_words.Word.t -> bool

val pp : Format.formatter -> cls -> unit
val to_string : cls -> string
