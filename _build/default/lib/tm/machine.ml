type symbol = Blank | One
type move = Left | Right | Stay

type transition = { next : int; write : symbol; move : move }

type t = { table : ((int * symbol) * transition) list }
(* Canonical: sorted by key, no duplicate keys. *)

let make entries =
  List.iter
    (fun ((s, _), tr) ->
      if s <= 0 || tr.next <= 0 then invalid_arg "Machine.make: states must be positive")
    entries;
  (* First entry wins on duplicate keys. *)
  let dedup =
    List.fold_left
      (fun acc ((key, _) as e) -> if List.mem_assoc key acc then acc else e :: acc)
      [] entries
  in
  { table = List.sort compare dedup }

let delta m s c = List.assoc_opt (s, c) m.table
let entries m = m.table

let states m =
  let add acc s = if List.mem s acc then acc else s :: acc in
  let all = List.fold_left (fun acc ((s, _), tr) -> add (add acc s) tr.next) [ 1 ] m.table in
  List.sort compare all

let empty = { table = [] }

let equal a b = a.table = b.table

let symbol_of_char = function '1' -> Some One | '-' -> Some Blank | _ -> None
let char_of_symbol = function One -> '1' | Blank -> '-'

let pp fmt m =
  let pp_move fmt = function
    | Left -> Format.pp_print_string fmt "L"
    | Right -> Format.pp_print_string fmt "R"
    | Stay -> Format.pp_print_string fmt "S"
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun ((s, c), tr) ->
      Format.fprintf fmt "(q%d, %c) -> (q%d, %c, %a)@," s (char_of_symbol c) tr.next
        (char_of_symbol tr.write) pp_move tr.move)
    m.table;
  Format.fprintf fmt "@]"
