(** Human-readable rendering of trace words — for the CLI and examples.
    A trace like ["*1**1*1.1.11..1.11.1"] is hard to read; {!trace}
    renders it as one line per snapshot with the head position marked. *)

val snapshot_line : state:string -> tape:string -> pos:string -> (string, string) result
(** One snapshot as [state q2 | tape 1[1]- ] (head cell bracketed).
    Errors on malformed unary fields or an out-of-range position. *)

val trace : Fq_words.Word.t -> (string, string) result
(** The whole trace: a header naming the machine and input, then one line
    per snapshot. Errors when the word is not a valid trace. *)
