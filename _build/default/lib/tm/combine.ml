open Machine

let shift_states offset m =
  Machine.make
    (List.map
       (fun ((s, c), tr) -> ((s + offset, c), { tr with next = tr.next + offset }))
       (Machine.entries m))

let sequence m1 m2 =
  let max1 = List.fold_left max 1 (Machine.states m1) in
  let m2' = shift_states max1 m2 in
  let start2 = 1 + max1 in
  (* every undefined cell of m1 transfers control to m2's start *)
  let transfers =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun c ->
            match Machine.delta m1 s c with
            | Some _ -> None
            | None -> Some ((s, c), { next = start2; write = c; move = Stay }))
          [ Blank; One ])
      (Machine.states m1)
  in
  Machine.make (Machine.entries m1 @ transfers @ Machine.entries m2')

let chain = function
  | [] -> invalid_arg "Combine.chain: empty list"
  | m :: rest -> List.fold_left sequence m rest
