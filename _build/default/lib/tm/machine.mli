(** Standard single-tape Turing machines in the two-character tape alphabet
    [{1, −}] (Section 3 of the paper).

    States are positive integers; state [1] is the initial state. The
    machine halts when the transition function is undefined for the current
    (state, symbol) pair. *)

type symbol = Blank | One
type move = Left | Right | Stay

type transition = { next : int; write : symbol; move : move }

type t
(** A machine: a finite partial transition function. *)

val make : ((int * symbol) * transition) list -> t
(** Builds a machine from transition entries. When a (state, symbol) key is
    repeated, the first entry wins (matching the decoding convention of
    {!Encode}). Non-positive states are invalid.
    @raise Invalid_argument on a non-positive state. *)

val delta : t -> int -> symbol -> transition option
val entries : t -> ((int * symbol) * transition) list
(** Entries in canonical order (sorted by key, duplicates removed). *)

val states : t -> int list
(** All states mentioned, sorted. Always contains [1]. *)

val empty : t
(** The machine with no transitions: halts immediately on every input. *)

val equal : t -> t -> bool
(** Equality of transition functions (not of encodings). *)

val symbol_of_char : char -> symbol option
val char_of_symbol : symbol -> char
val pp : Format.formatter -> t -> unit
