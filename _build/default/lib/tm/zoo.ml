open Machine

type totality = Total | Non_total | Unknown

type entry = {
  name : string;
  machine : Machine.t;
  totality : totality;
  description : string;
  diverges_on : string option;
}

let halt = Machine.empty

let scan_right = make [ ((1, One), { next = 1; write = One; move = Right }) ]

let erase = make [ ((1, One), { next = 1; write = Blank; move = Right }) ]

let successor =
  make
    [ ((1, One), { next = 1; write = One; move = Right });
      ((1, Blank), { next = 2; write = One; move = Stay }) ]

let loop =
  make
    [ ((1, One), { next = 1; write = One; move = Right });
      ((1, Blank), { next = 1; write = Blank; move = Right }) ]

let loop_on_one = make [ ((1, One), { next = 1; write = One; move = Stay }) ]

let parity =
  make
    [ ((1, One), { next = 2; write = One; move = Right });
      ((2, One), { next = 1; write = One; move = Right });
      ((2, Blank), { next = 2; write = Blank; move = Stay }) ]

let bb2 =
  make
    [ ((1, Blank), { next = 2; write = One; move = Right });
      ((1, One), { next = 2; write = One; move = Left });
      ((2, Blank), { next = 1; write = One; move = Left }) ]

let all =
  [ { name = "halt";
      machine = halt;
      totality = Total;
      description = "no transitions; halts immediately on every input";
      diverges_on = None };
    { name = "scan_right";
      machine = scan_right;
      totality = Total;
      description = "moves right over 1s, halts at the first blank";
      diverges_on = None };
    { name = "erase";
      machine = erase;
      totality = Total;
      description = "erases 1s rightwards, halts at the first blank";
      diverges_on = None };
    { name = "successor";
      machine = successor;
      totality = Total;
      description = "unary successor: appends a 1 to the leading block";
      diverges_on = None };
    { name = "loop";
      machine = loop;
      totality = Non_total;
      description = "moves right forever; halts on no input";
      diverges_on = Some "" };
    { name = "loop_on_one";
      machine = loop_on_one;
      totality = Non_total;
      description = "halts iff the scanned cell is blank; loops in place on a 1";
      diverges_on = Some "1" };
    { name = "parity";
      machine = parity;
      totality = Non_total;
      description = "halts iff the leading block of 1s has even length";
      diverges_on = Some "1" };
    { name = "bb2";
      machine = bb2;
      totality = Unknown;
      description = "2-state busy beaver; halts on blank input after 5 steps";
      diverges_on = None } ]

let total_machines = List.filter (fun e -> e.totality = Total) all
let non_total_machines = List.filter (fun e -> e.totality = Non_total) all
