(** Combinators for building Turing machines out of smaller ones — the
    classical constructions used informally throughout computability
    arguments ("run M₁, then M₂"), made executable. They are how the test
    suite manufactures total machines with prescribed multi-phase
    behaviour beyond what the Lemma A.2 prefix-trie {!Builder} covers. *)

val shift_states : int -> Machine.t -> Machine.t
(** Renumbers every state by adding the offset. The result no longer
    starts at state 1; used internally by {!sequence}. *)

val sequence : Machine.t -> Machine.t -> Machine.t
(** [sequence m1 m2] runs [m1] to completion and then behaves as [m2]
    started from [m1]'s halting configuration (same tape, same head).
    Every configuration where [m1] would halt instead transfers — in one
    extra [Stay] step per transfer — to [m2]'s initial state. If [m1]
    diverges, so does the composition. *)

val chain : Machine.t list -> Machine.t
(** [sequence] folded over a nonempty list.
    @raise Invalid_argument on the empty list. *)
