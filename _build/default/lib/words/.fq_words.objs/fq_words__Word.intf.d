lib/words/word.mli: Format Seq
