lib/words/word.ml: Bytes Format Fun List Printf Seq String
