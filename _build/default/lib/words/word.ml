type t = string

let sep = '.'

let is_letter = function '1' | '.' | '*' | '-' -> true | _ -> false
let is_word w = String.for_all is_letter w

let is_machine_shaped w =
  String.length w > 0
  && String.for_all (function '1' | '-' | '*' -> true | _ -> false) w
  && String.exists (fun c -> c = '*') w

let is_input w = String.for_all (function '1' | '-' -> true | _ -> false) w

let split_fields w = String.split_on_char sep w
let join_fields fields = String.concat (String.make 1 sep) fields

(* Shape of a trace: machine . (state . tape . pos .)+  — i.e. when split
   on '.', one machine-shaped field followed by 3k (k >= 1) further fields
   forming (state, tape, pos) groups, where the final pos field may be the
   trailing empty field produced by a trailing separator. *)
let is_trace_shaped w =
  match split_fields w with
  | m :: rest when is_machine_shaped m ->
    let n = List.length rest in
    n >= 3
    && n mod 3 = 0
    && List.for_all2
         (fun i f ->
           match i mod 3 with
           | 0 -> (* state: nonempty unary *) f <> "" && String.for_all (fun c -> c = '1') f
           | 1 -> (* tape: over {1,-} *) is_input f
           | _ -> (* pos: unary, possibly empty *) String.for_all (fun c -> c = '1') f)
         (List.init n Fun.id) rest
  | _ -> false

let syntactic_class w =
  if not (is_word w) then invalid_arg (Printf.sprintf "Word.syntactic_class: %S" w);
  if is_input w then `Input
  else if is_machine_shaped w then `Machine_shaped
  else if is_trace_shaped w then `Trace_shaped
  else `Other

let unary n =
  if n < 0 then invalid_arg "Word.unary: negative";
  String.make n '1'

let unary_value w = if String.for_all (fun c -> c = '1') w then Some (String.length w) else None

let enumerate_over letters () =
  let k = String.length letters in
  if k = 0 then invalid_arg "Word.enumerate_over: empty letter set";
  (* Enumerate by length; within a length, letters index a base-k counter. *)
  let word_of len idx =
    let b = Bytes.create len in
    let rec fill i idx =
      if i >= 0 then begin
        Bytes.set b i letters.[idx mod k];
        fill (i - 1) (idx / k)
      end
    in
    fill (len - 1) idx;
    Bytes.to_string b
  in
  let int_pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let rec from len idx () =
    if idx < int_pow k len then Seq.Cons (word_of len idx, from len (idx + 1))
    else from (len + 1) 0 ()
  in
  from 0 0

let enumerate = enumerate_over "1.*-"

let pp fmt w = if w = "" then Format.pp_print_string fmt "ε" else Format.fprintf fmt "%S" w
