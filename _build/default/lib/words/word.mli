(** Words over the trace alphabet of the paper's Section 3.

    The domain [T] is the set of all words in the four-letter alphabet
    [{1, ⋆, *, −}]. We render the letters as ASCII characters:

    - ['1'] — the unary digit [1];
    - ['.'] — the snapshot separator [⋆];
    - ['*'] — the machine-encoding delimiter [*];
    - ['-'] — the blank / white-space marker [−].

    Words fall into four pairwise disjoint {e syntactic} classes:

    - {b machine-shaped}: nonempty, over [{1,-,*}], containing at least one
      ['*'] — candidate Turing-machine encodings (class [M]);
    - {b input-shaped}: over [{1,-}] (possibly empty) — input words
      (class [W]);
    - {b trace-shaped}: words containing ['.'] that parse as
      [machine . (state . tape . pos .)+] — only the semantically valid
      ones (checked in {!Fq_tm.Trace}) form the paper's class [T];
    - everything else is "other" (class [O], together with the trace-shaped
      words that fail semantic validation). *)

type t = string
(** A word over the four-letter alphabet. *)

val sep : char
(** The snapshot separator [⋆], rendered ['.']. *)

val is_word : t -> bool
(** Every character is one of ['1'], ['.'], ['*'], ['-']. *)

val is_machine_shaped : t -> bool
val is_input : t -> bool
(** Input words are exactly the words over [{1,-}]; this class needs no
    semantic check. *)

val syntactic_class : t -> [ `Machine_shaped | `Input | `Trace_shaped | `Other ]
(** Classification by shape only. [`Trace_shaped] words still need the
    semantic check of {!Fq_tm.Trace.is_trace_word} to be in class [T].
    @raise Invalid_argument if [is_word] fails. *)

val split_fields : t -> t list
(** Splits on the snapshot separator. [split_fields "a.b" = ["a"; "b"]];
    a trailing separator yields a trailing empty field. *)

val join_fields : t list -> t

val unary : int -> t
(** [unary n] is the unary numeral [1^n]; [unary 0 = ""].
    @raise Invalid_argument on negative input. *)

val unary_value : t -> int option
(** Inverse of {!unary}: [Some n] iff the word is [1^n]. *)

val enumerate : unit -> t Seq.t
(** All words over the four-letter alphabet: by length, then
    lexicographically. The recursive enumeration of the (countable)
    domain [T] used by the Section 1.1 query-answering algorithm. *)

val enumerate_over : string -> unit -> t Seq.t
(** [enumerate_over letters] enumerates words over the given letters. *)

val pp : Format.formatter -> t -> unit
(** Prints the word quoted, with [ε] for the empty word. *)
