(** The universal value type of the library.

    Every domain interprets constants into this type: the numeric domains
    ([N_<], [N_succ], Presburger) use [Int]; the trace domain [T] and the
    pure-equality domain use [Str] (words over the trace alphabet,
    respectively arbitrary strings). Database relations store tuples of
    these values, so one relational substrate serves every domain. *)

type t =
  | Int of Fq_numeric.Bigint.t
  | Str of string

val int : int -> t
val big : Fq_numeric.Bigint.t -> t
val str : string -> t

val compare : t -> t -> int
(** Total order: all [Int]s before all [Str]s. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_const : t -> string
(** The constant symbol denoting this value in formulas: the decimal
    numeral for [Int], the raw string for [Str] (quoted by the printer). *)

val as_int : t -> Fq_numeric.Bigint.t option
val as_str : t -> string option
