type t = {
  relations : (string * int) list;
  constants : string list;
}

let make ?(constants = []) relations =
  let names = List.map fst relations @ constants in
  if List.length names <> List.length (List.sort_uniq compare names) then
    invalid_arg "Schema.make: duplicate names";
  List.iter
    (fun (r, a) -> if a < 0 then invalid_arg (Printf.sprintf "Schema.make: %s has negative arity" r))
    relations;
  { relations; constants }

let empty = { relations = []; constants = [] }

let relations s = s.relations
let constants s = s.constants
let arity s r = List.assoc_opt r s.relations
let mem_relation s r = List.mem_assoc r s.relations

let strip_at c = if String.length c > 0 && c.[0] = '@' then String.sub c 1 (String.length c - 1) else c
let mem_constant s c = List.mem (strip_at c) s.constants

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (r, a) -> Format.fprintf fmt "%s/%d@," r a) s.relations;
  List.iter (fun c -> Format.fprintf fmt "@%s@," c) s.constants;
  Format.fprintf fmt "@]"
