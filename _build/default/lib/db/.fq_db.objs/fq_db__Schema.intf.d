lib/db/schema.mli: Format
