lib/db/codec.ml: Fq_numeric List Printf Relation Result Schema State String Value
