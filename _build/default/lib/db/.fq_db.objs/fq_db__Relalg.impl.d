lib/db/relalg.ml: Format List Printf Relation Result Schema State Value
