lib/db/codec.mli: Relation State Value
