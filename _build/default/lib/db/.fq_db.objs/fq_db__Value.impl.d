lib/db/value.ml: Format Fq_numeric Hashtbl String
