lib/db/relation.mli: Format Value
