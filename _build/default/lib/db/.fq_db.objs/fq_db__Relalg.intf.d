lib/db/relalg.mli: Format Relation Schema State Value
