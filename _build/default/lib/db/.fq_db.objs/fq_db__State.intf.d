lib/db/state.mli: Format Relation Schema Value
