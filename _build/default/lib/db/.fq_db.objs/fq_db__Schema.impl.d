lib/db/schema.ml: Format List Printf String
