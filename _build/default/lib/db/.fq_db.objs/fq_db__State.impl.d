lib/db/state.ml: Format List Printf Relation Schema String Value
