lib/db/value.mli: Format Fq_numeric
