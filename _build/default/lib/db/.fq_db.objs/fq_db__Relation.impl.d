lib/db/relation.ml: Format List Printf Set Value
