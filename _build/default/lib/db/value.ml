module Bigint = Fq_numeric.Bigint

type t =
  | Int of Bigint.t
  | Str of string

let int n = Int (Bigint.of_int n)
let big n = Int n
let str s = Str s

let compare a b =
  match (a, b) with
  | Int x, Int y -> Bigint.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str x, Str y -> String.compare x y

let equal a b = compare a b = 0

let hash = function
  | Int n -> Bigint.hash n
  | Str s -> Hashtbl.hash s

let pp fmt = function
  | Int n -> Bigint.pp fmt n
  | Str s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v

let to_const = function
  | Int n -> Bigint.to_string n
  | Str s -> s

let as_int = function Int n -> Some n | Str _ -> None
let as_str = function Str s -> Some s | Int _ -> None
