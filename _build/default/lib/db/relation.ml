type tuple = Value.t list

module Tset = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type t = { arity : int; set : Tset.t }

let check_arity arity tup =
  if List.length tup <> arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple of length %d in relation of arity %d"
         (List.length tup) arity)

let make ~arity tuples =
  List.iter (check_arity arity) tuples;
  { arity; set = Tset.of_list tuples }

let empty ~arity = { arity; set = Tset.empty }
let arity r = r.arity
let tuples r = Tset.elements r.set
let cardinal r = Tset.cardinal r.set
let is_empty r = Tset.is_empty r.set
let mem tup r = Tset.mem tup r.set

let add tup r =
  check_arity r.arity tup;
  { r with set = Tset.add tup r.set }

let equal a b = a.arity = b.arity && Tset.equal a.set b.set

let same_arity op a b =
  if a.arity <> b.arity then
    invalid_arg (Printf.sprintf "Relation.%s: arities %d and %d differ" op a.arity b.arity)

let union a b =
  same_arity "union" a b;
  { a with set = Tset.union a.set b.set }

let diff a b =
  same_arity "diff" a b;
  { a with set = Tset.diff a.set b.set }

let inter a b =
  same_arity "inter" a b;
  { a with set = Tset.inter a.set b.set }

let product a b =
  let set =
    Tset.fold
      (fun ta acc -> Tset.fold (fun tb acc -> Tset.add (ta @ tb) acc) b.set acc)
      a.set Tset.empty
  in
  { arity = a.arity + b.arity; set }

let filter p r = { r with set = Tset.filter p r.set }

let map_project cols r =
  List.iter
    (fun c ->
      if c < 0 || c >= r.arity then
        invalid_arg (Printf.sprintf "Relation.map_project: column %d of arity %d" c r.arity))
    cols;
  let set =
    Tset.fold
      (fun tup acc -> Tset.add (List.map (fun c -> List.nth tup c) cols) acc)
      r.set Tset.empty
  in
  { arity = List.length cols; set }

let fold f r acc = Tset.fold f r.set acc
let iter f r = Tset.iter f r.set
let exists p r = Tset.exists p r.set
let for_all p r = Tset.for_all p r.set

let values r =
  Tset.fold (fun tup acc -> List.fold_left (fun acc v -> v :: acc) acc tup) r.set []
  |> List.sort_uniq Value.compare

let of_values vs = make ~arity:1 (List.map (fun v -> [ v ]) vs)

let pp fmt r =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun tup ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Value.pp)
        tup)
    r;
  Format.fprintf fmt "}"
