(** Database schemes (Codd): fixed relation names with arities, plus the
    scheme's constant symbols (the paper's Theorem 3.1 uses a scheme with a
    single constant symbol [c], written [@c] in our concrete syntax). *)

type t

val make : ?constants:string list -> (string * int) list -> t
(** [make ~constants relations]. Constant names are given without the [@]
    prefix. @raise Invalid_argument on duplicate names or negative arity. *)

val empty : t

val relations : t -> (string * int) list
val constants : t -> string list
(** Constant names, without the [@] prefix. *)

val arity : t -> string -> int option
val mem_relation : t -> string -> bool
val mem_constant : t -> string -> bool
(** Accepts the name with or without the [@] prefix. *)

val pp : Format.formatter -> t -> unit
