lib/logic/term.ml: Format List Set String
