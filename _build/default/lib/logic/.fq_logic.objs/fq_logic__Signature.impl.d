lib/logic/signature.ml: Formula List Printf String Term
