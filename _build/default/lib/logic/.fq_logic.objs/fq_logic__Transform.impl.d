lib/logic/transform.ml: Formula List Sset Term
