lib/logic/formula.mli: Format Set Term
