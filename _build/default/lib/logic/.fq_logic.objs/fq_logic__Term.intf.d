lib/logic/term.mli: Format Set String
