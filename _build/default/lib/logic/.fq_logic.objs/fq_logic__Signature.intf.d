lib/logic/signature.mli: Formula
