lib/logic/parser.ml: Array Format Formula Lexer List Printf String Term
