lib/logic/formula.ml: Format List Set Stdlib String Term
