lib/logic/parser.mli: Formula Term
