(* Recursive descent with single-token lookahead plus explicit backtracking
   for the one ambiguous spot: after '(' we may be reading a parenthesized
   formula or a parenthesized term that starts a relational atom. *)

exception Parse_error of string

type state = { toks : Lexer.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st what =
  raise
    (Parse_error
       (Format.asprintf "expected %s but found %a (token %d)" what Lexer.pp_token (peek st)
          st.pos))

let expect st tok what = if peek st = tok then advance st else fail st what

(* ----------------------------- terms ------------------------------ *)

let rec parse_term st =
  let t = parse_factor st in
  let rec loop t =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Term.App ("+", [ t; parse_factor st ]))
    | Lexer.MINUS ->
      advance st;
      loop (Term.App ("-", [ t; parse_factor st ]))
    | _ -> t
  in
  loop t

and parse_factor st =
  let t = parse_postfix st in
  let rec loop t =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Term.App ("*", [ t; parse_postfix st ]))
    | _ -> t
  in
  loop t

and parse_postfix st =
  let t = parse_primary st in
  let rec loop t =
    match peek st with
    | Lexer.PRIME ->
      advance st;
      loop (Term.App ("s", [ t ]))
    | _ -> t
  in
  loop t

and parse_primary st =
  match peek st with
  | Lexer.NUMBER n ->
    advance st;
    Term.Const n
  | Lexer.STRING s ->
    advance st;
    Term.Const s
  | Lexer.AT_IDENT c ->
    advance st;
    Term.Const ("@" ^ c)
  | Lexer.MINUS ->
    advance st;
    let t = parse_primary st in
    (* Fold unary minus on numerals; otherwise keep a "neg" application. *)
    (match t with
    | Term.Const n when String.for_all (fun c -> c >= '0' && c <= '9') n && n <> "" ->
      Term.Const ("-" ^ n)
    | _ -> Term.App ("neg", [ t ]))
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_term_list st in
      expect st Lexer.RPAREN "')' closing the argument list";
      Term.App (name, args)
    | _ -> Term.Var name)
  | Lexer.LPAREN ->
    advance st;
    let t = parse_term st in
    expect st Lexer.RPAREN "')' closing the term";
    t
  | _ -> fail st "a term"

and parse_term_list st =
  match peek st with
  | Lexer.RPAREN -> []
  | _ ->
    let t = parse_term st in
    let rec loop acc =
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (parse_term st :: acc)
      | _ -> List.rev acc
    in
    loop [ t ]

(* ---------------------------- formulas ---------------------------- *)

let relop_of_token = function
  | Lexer.EQ -> Some `Eq
  | Lexer.NEQ -> Some `Neq
  | Lexer.LT -> Some (`Rel "<")
  | Lexer.LE -> Some (`Rel "<=")
  | Lexer.GT -> Some (`Rel ">")
  | Lexer.GE -> Some (`Rel ">=")
  | Lexer.PIPE -> Some `Dvd
  | _ -> None

let rec parse_formula st = parse_iff st

and parse_iff st =
  let f = parse_imp st in
  let rec loop f =
    match peek st with
    | Lexer.IFF ->
      advance st;
      loop (Formula.Iff (f, parse_imp st))
    | _ -> f
  in
  loop f

and parse_imp st =
  let f = parse_or st in
  match peek st with
  | Lexer.IMP ->
    advance st;
    Formula.Imp (f, parse_imp st)
  | _ -> f

and parse_or st =
  let f = parse_and st in
  let rec loop f =
    match peek st with
    | Lexer.OR ->
      advance st;
      loop (Formula.Or (f, parse_and st))
    | _ -> f
  in
  loop f

and parse_and st =
  let f = parse_unary st in
  let rec loop f =
    match peek st with
    | Lexer.AND ->
      advance st;
      loop (Formula.And (f, parse_unary st))
    | _ -> f
  in
  loop f

and parse_unary st =
  match peek st with
  | Lexer.NOT ->
    advance st;
    Formula.Not (parse_unary st)
  | Lexer.FORALL | Lexer.EXISTS ->
    let quant = peek st in
    advance st;
    let rec vars acc =
      match peek st with
      | Lexer.IDENT v ->
        advance st;
        vars (v :: acc)
      | Lexer.DOT ->
        advance st;
        List.rev acc
      | _ -> fail st "a variable or '.' after the quantifier"
    in
    let vs = vars [] in
    if vs = [] then fail st "at least one quantified variable";
    (* Quantifier scope extends as far right as possible. *)
    let body = parse_formula st in
    if quant = Lexer.FORALL then Formula.forall_many vs body else Formula.exists_many vs body
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.TRUE ->
    advance st;
    Formula.True
  | Lexer.FALSE ->
    advance st;
    Formula.False
  | Lexer.LPAREN -> (
    (* Try a parenthesized formula; backtrack to a term-headed atom if the
       formula parse fails or a term operator follows the ')'. *)
    let saved = st.pos in
    match
      advance st;
      let f = parse_formula st in
      expect st Lexer.RPAREN "')' closing the formula";
      f
    with
    | f -> (
      match peek st with
      | Lexer.PLUS | Lexer.MINUS | Lexer.STAR | Lexer.PRIME | Lexer.EQ | Lexer.NEQ | Lexer.LT
      | Lexer.LE | Lexer.GT | Lexer.GE | Lexer.PIPE ->
        st.pos <- saved;
        parse_relational_atom st
      | _ -> f)
    | exception Parse_error _ ->
      st.pos <- saved;
      parse_relational_atom st)
  | _ -> parse_relational_atom st

and parse_relational_atom st =
  let t = parse_term st in
  match relop_of_token (peek st) with
  | Some `Eq ->
    advance st;
    Formula.Eq (t, parse_term st)
  | Some `Neq ->
    advance st;
    Formula.neq t (parse_term st)
  | Some (`Rel op) ->
    advance st;
    Formula.Atom (op, [ t; parse_term st ])
  | Some `Dvd ->
    advance st;
    Formula.Atom ("dvd", [ t; parse_term st ])
  | None -> (
    (* A bare term can only be a predicate atom. *)
    match t with
    | Term.App (p, args) -> Formula.Atom (p, args)
    | Term.Var v -> fail st (Printf.sprintf "a relational operator after variable %S" v)
    | Term.Const _ -> fail st "a relational operator after the constant")

let run parse s =
  match Lexer.tokenize s with
  | Error msg -> Error (Printf.sprintf "lexical error: %s" msg)
  | Ok toks -> (
    let st = { toks = Array.of_list toks; pos = 0 } in
    match parse st with
    | v -> if peek st = Lexer.EOF then Ok v else Error "trailing input after the formula"
    | exception Parse_error msg -> Error msg)

let formula s = run parse_formula s
let term s = run parse_term s

let formula_exn s =
  match formula s with
  | Ok f -> f
  | Error msg -> invalid_arg (Printf.sprintf "Parser.formula_exn: %s (input: %s)" msg s)
