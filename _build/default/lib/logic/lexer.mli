(** Tokenizer for the concrete query syntax (see {!Parser}). *)

type token =
  | IDENT of string
  | NUMBER of string
  | STRING of string  (** double-quoted domain constant, e.g. a trace word *)
  | AT_IDENT of string  (** ['@c'] — database-scheme constant *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | PRIME  (** postfix ['] — successor in the domain [N_succ] *)
  | PIPE  (** [|] — divisibility atom [k | t] of Presburger *)
  | NOT
  | AND
  | OR
  | IMP
  | IFF
  | FORALL
  | EXISTS
  | TRUE
  | FALSE
  | EOF

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> (token list, string) result
(** Tokenizes a whole input. Returns a human-readable error message on
    failure. The resulting list always ends with [EOF]. *)
