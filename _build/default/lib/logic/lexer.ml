type token =
  | IDENT of string
  | NUMBER of string
  | STRING of string
  | AT_IDENT of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | PRIME
  | PIPE
  | NOT
  | AND
  | OR
  | IMP
  | IFF
  | FORALL
  | EXISTS
  | TRUE
  | FALSE
  | EOF

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "identifier %S" s
  | NUMBER s -> Format.fprintf fmt "number %s" s
  | STRING s -> Format.fprintf fmt "string %S" s
  | AT_IDENT s -> Format.fprintf fmt "@%s" s
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | COMMA -> Format.pp_print_string fmt "','"
  | DOT -> Format.pp_print_string fmt "'.'"
  | EQ -> Format.pp_print_string fmt "'='"
  | NEQ -> Format.pp_print_string fmt "'!='"
  | LT -> Format.pp_print_string fmt "'<'"
  | LE -> Format.pp_print_string fmt "'<='"
  | GT -> Format.pp_print_string fmt "'>'"
  | GE -> Format.pp_print_string fmt "'>='"
  | PLUS -> Format.pp_print_string fmt "'+'"
  | MINUS -> Format.pp_print_string fmt "'-'"
  | STAR -> Format.pp_print_string fmt "'*'"
  | PRIME -> Format.pp_print_string fmt "\"'\""
  | PIPE -> Format.pp_print_string fmt "'|'"
  | NOT -> Format.pp_print_string fmt "'~'"
  | AND -> Format.pp_print_string fmt "'/\\'"
  | OR -> Format.pp_print_string fmt "'\\/'"
  | IMP -> Format.pp_print_string fmt "'->'"
  | IFF -> Format.pp_print_string fmt "'<->'"
  | FORALL -> Format.pp_print_string fmt "'forall'"
  | EXISTS -> Format.pp_print_string fmt "'exists'"
  | TRUE -> Format.pp_print_string fmt "'true'"
  | FALSE -> Format.pp_print_string fmt "'false'"
  | EOF -> Format.pp_print_string fmt "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "forall" | "all" -> Some FORALL
  | "exists" | "ex" -> Some EXISTS
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "not" -> Some NOT
  | "and" -> Some AND
  | "or" -> Some OR
  | _ -> None

let tokenize s =
  let n = String.length s in
  let exception Lex_error of string in
  let peek i = if i < n then Some s.[i] else None in
  let rec span p i = if i < n && p s.[i] then span p (i + 1) else i in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '~' -> go (i + 1) (NOT :: acc)
      | '+' -> go (i + 1) (PLUS :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '\'' -> go (i + 1) (PRIME :: acc)
      | '&' -> go (i + 1) (AND :: acc)
      | '!' ->
        if peek (i + 1) = Some '=' then go (i + 2) (NEQ :: acc)
        else raise (Lex_error "'!' must be followed by '='")
      | '<' -> (
        match peek (i + 1) with
        | Some '=' -> go (i + 2) (LE :: acc)
        | Some '>' -> go (i + 2) (NEQ :: acc)
        | Some '-' when peek (i + 2) = Some '>' -> go (i + 3) (IFF :: acc)
        | _ -> go (i + 1) (LT :: acc))
      | '>' -> if peek (i + 1) = Some '=' then go (i + 2) (GE :: acc) else go (i + 1) (GT :: acc)
      | '-' ->
        if peek (i + 1) = Some '>' then go (i + 2) (IMP :: acc) else go (i + 1) (MINUS :: acc)
      | '/' ->
        if peek (i + 1) = Some '\\' then go (i + 2) (AND :: acc)
        else raise (Lex_error "'/' must be followed by '\\'")
      | '\\' ->
        if peek (i + 1) = Some '/' then go (i + 2) (OR :: acc)
        else raise (Lex_error "'\\' must be followed by '/'")
      | '|' -> go (i + 1) (PIPE :: acc)
      | '@' ->
        let j = span is_ident_char (i + 1) in
        if j = i + 1 then raise (Lex_error "'@' must be followed by an identifier")
        else go j (AT_IDENT (String.sub s (i + 1) (j - i - 1)) :: acc)
      | '"' ->
        let rec find j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if s.[j] = '"' then j
          else find (j + 1)
        in
        let j = find (i + 1) in
        go (j + 1) (STRING (String.sub s (i + 1) (j - i - 1)) :: acc)
      | c when is_digit c ->
        let j = span is_digit i in
        go j (NUMBER (String.sub s i (j - i)) :: acc)
      | c when is_ident_start c ->
        let j = span is_ident_char i in
        let word = String.sub s i (j - i) in
        let tok = match keyword word with Some t -> t | None -> IDENT word in
        go j (tok :: acc)
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  in
  match go 0 [] with
  | toks -> Ok toks
  | exception Lex_error msg -> Error msg
