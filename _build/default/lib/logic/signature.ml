type t = {
  name : string;
  preds : (string * int) list;
  funs : (string * int) list;
}

let make ~name ?(preds = []) ?(funs = []) () = { name; preds; funs }

let mem_pred sg p n = List.mem (p, n) sg.preds
let mem_fun sg f n = List.mem (f, n) sg.funs

let union a b =
  let merge xs ys = xs @ List.filter (fun y -> not (List.mem y xs)) ys in
  { name = a.name; preds = merge a.preds b.preds; funs = merge a.funs b.funs }

let check ?(schema = []) sg f =
  let problems = ref [] in
  let note msg = problems := msg :: !problems in
  List.iter
    (fun (p, n) ->
      if not (mem_pred sg p n || List.mem (p, n) schema) then
        note
          (Printf.sprintf "predicate %s/%d is neither a %s domain predicate nor in the schema" p
             n sg.name))
    (Formula.preds f);
  List.iter
    (fun (fn, n) ->
      if not (mem_fun sg fn n) then
        note (Printf.sprintf "function %s/%d is not a %s domain function" fn n sg.name))
    (Formula.funs f);
  match List.rev !problems with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " msgs)

let is_pure sg f =
  List.for_all (fun (p, n) -> mem_pred sg p n) (Formula.preds f)
  && List.for_all (fun (fn, n) -> mem_fun sg fn n) (Formula.funs f)
  && List.for_all (fun c -> not (Term.is_scheme_const c)) (Formula.consts f)
