(** Logical signatures: which predicate and function symbols a domain
    provides, used to check that a formula is well-formed before it is
    handed to a decision procedure or evaluator. *)

type t = {
  name : string;  (** domain name, for error messages *)
  preds : (string * int) list;  (** predicate symbols with arities *)
  funs : (string * int) list;  (** function symbols with arities *)
}

val make : name:string -> ?preds:(string * int) list -> ?funs:(string * int) list -> unit -> t

val mem_pred : t -> string -> int -> bool
val mem_fun : t -> string -> int -> bool

val union : t -> t -> t
(** Signature of a domain extension: both symbol sets. The left name wins. *)

val check :
  ?schema:(string * int) list -> t -> Formula.t -> (unit, string) result
(** [check ~schema sg f] verifies that every predicate of [f] is either a
    domain predicate of [sg] or a database relation of [schema] (with the
    right arity) and that every function symbol is in [sg]. Equality is
    always allowed. *)

val is_pure : t -> Formula.t -> bool
(** A {e pure domain formula} mentions no database relation and no
    scheme constant: exactly the formulas a domain decision procedure can
    decide (§1.1 of the paper). *)
