(** Syntactic transformations used by the decision procedures.

    Every quantifier-elimination procedure in the library (Presburger via
    Cooper, the [N_<] test-point method, the [N_succ] elimination of §2.2,
    the Reach-theory elimination of Theorem A.3) follows the same skeleton:
    negation normal form, innermost-quantifier selection, disjunctive normal
    form of the matrix, per-conjunct elimination. This module supplies the
    shared pieces. *)

val simplify : Formula.t -> Formula.t
(** Boolean and trivial-quantifier simplification: constant propagation
    through connectives, double negation, reflexive equalities, and
    [Exists x. f = f] when [x] is not free in [f] (sound because every
    domain in this library is nonempty). Idempotent. *)

val nnf : Formula.t -> Formula.t
(** Negation normal form. Eliminates [Imp] and [Iff] and pushes [Not] down
    to atoms. The result contains [Not] only directly above [Atom]/[Eq]. *)

val prenex : Formula.t -> Formula.t
(** Prenex normal form of an arbitrary formula. Bound variables are renamed
    apart first, so the result's quantifier prefix binds distinct names. *)

val matrix : Formula.t -> (string * [ `Exists | `Forall ]) list * Formula.t
(** Splits a prenex formula into its quantifier prefix (outermost first) and
    quantifier-free matrix. *)

val dnf : Formula.t -> Formula.t list list
(** Disjunctive normal form of a quantifier-free, NNF formula: a disjunction
    of conjunctions of literals. Each literal is an [Atom], [Eq], or the
    negation of one. [dnf True = [[]]]; [dnf False = []].
    @raise Invalid_argument if the input contains quantifiers or [Imp]/[Iff]. *)

val cnf : Formula.t -> Formula.t list list
(** Conjunctive normal form, dually to {!dnf}. [cnf True = []]. *)

val of_dnf : Formula.t list list -> Formula.t
val of_cnf : Formula.t list list -> Formula.t

val miniscope : Formula.t -> Formula.t
(** Pushes quantifiers inward as far as possible on an NNF formula:
    [∃x (f ∨ g) = ∃x f ∨ ∃x g], [∃x (f ∧ g) = f ∧ ∃x g] when [x] is not
    free in [f] (dually for [∀]/[∧]/[∨]), and vacuous quantifiers drop.
    Smaller quantifier scopes mean smaller DNF matrices inside the
    quantifier-elimination procedures. Accepts any formula (normalizes to
    NNF first); preserves logical equivalence over nonempty domains. *)

val eliminate_quantifiers :
  exists_conj:(string -> Formula.t list -> Formula.t) -> Formula.t -> Formula.t
(** Generic quantifier-elimination driver. [exists_conj x lits] must return
    a quantifier-free formula equivalent to [Exists (x, conj lits)] where
    [lits] are literals (possibly not mentioning [x]). The driver handles
    NNF, [Forall x. f = ~Exists x. ~f], innermost-first elimination, and
    DNF distribution, and simplifies as it goes. *)
