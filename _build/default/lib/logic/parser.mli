(** Recursive-descent parser for the concrete query syntax.

    Grammar sketch (standard precedences, [<->] weakest, [~] strongest):

    {v
    formula := formula '<->' formula | formula '->' formula
             | formula '\/' formula | formula '/\' formula
             | '~' formula | ('forall'|'exists') x y ... '.' formula
             | 'true' | 'false' | '(' formula ')'
             | term ('='|'!='|'<'|'<='|'>'|'>=') term
             | term '|' term                  (divisibility, Presburger)
             | P '(' term, ... ')'            (predicate atom)
    term    := term ('+'|'-') term | term '*' term | term '\''  (successor)
             | x | 123 | "word" | '@'c | f '(' term, ... ')' | '(' term ')'
    v}

    Identifiers in term position are variables; numerals and double-quoted
    strings are domain constants; [@c] is a database-scheme constant.
    ASCII synonyms: [&]/[and] for conjunction, [or] for disjunction, [not]
    for negation, [<>] for [!=], [all]/[ex] for quantifiers. *)

val formula : string -> (Formula.t, string) result
val term : string -> (Term.t, string) result

val formula_exn : string -> Formula.t
(** @raise Invalid_argument on a parse error. Convenient in tests. *)
