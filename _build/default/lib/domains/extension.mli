(** The paper's Corollary 2.4 combinator: every (countable) domain [D]
    extends to a domain [D'] that is an extension of both [D] and [N_<],
    and therefore has a recursive syntax for finite queries (the
    finitization of Theorem 2.2).

    The order is transported along [D]'s recursive enumeration: [x < y]
    iff [x] is enumerated before [y] — an isomorphic copy of [(ℕ, <)] on
    [D]'s universe, so the extension is recursive whenever [D] is.

    The catch — the paper's Corollary 3.2 — is decidability: sentences
    mixing the order with [D]'s own predicates need a decision procedure
    for the {e combined} theory, which need not exist even when [D]'s
    theory is decidable (it provably does not for the trace domain [T]).
    {!Make.decide} therefore answers pure-[D] sentences via [D] and
    pure-order sentences via the [N_<] procedure, and reports failure on
    mixed ones. *)

module Make (D : Domain.S) : sig
  include Domain.S

  val index : Fq_db.Value.t -> int option
  (** Position of a value in [D]'s enumeration (searched with a cap of
      [100_000]; [None] beyond it). *)
end
