(** The simplest infinite domain of Section 2: an infinite set with the
    equality predicate only. Our universe is the set of all strings over a
    small alphabet (any countably infinite set would do).

    Over this domain the finite and domain-independent queries coincide,
    relative safety is decidable, and restricting answers to the active
    domain is an effective syntax (the paper's opening example of the
    positive cases). The decision procedure is quantifier elimination for
    the theory of pure equality over an infinite universe. *)

include Domain.S

val qe : Fq_logic.Formula.t -> (Fq_logic.Formula.t, string) result
(** Quantifier-free equivalent of a pure-equality formula (possibly with
    free variables). *)
