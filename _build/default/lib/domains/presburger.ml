module B = Fq_numeric.Bigint
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

let name = "presburger"

let signature =
  Signature.make ~name
    ~preds:[ ("<", 2); ("<=", 2); (">", 2); (">=", 2); ("dvd", 2) ]
    ~funs:[ ("+", 2); ("s", 1); ("*", 2) ]
    ()

let member v =
  match Value.as_int v with Some n -> B.sign n >= 0 | None -> false

let is_nat_numeral s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let constant c = if is_nat_numeral c then Some (Value.big (B.of_string c)) else None

let const_name v =
  match v with Value.Int n -> B.to_string n | Value.Str s -> s

let eval_fun f args =
  match (f, List.filter_map Value.as_int args) with
  | "+", [ a; b ] when List.length args = 2 -> Some (Value.big (B.add a b))
  | "*", [ a; b ] when List.length args = 2 -> Some (Value.big (B.mul a b))
  | "s", [ a ] when List.length args = 1 -> Some (Value.big (B.succ a))
  | _ -> None

let eval_pred p args =
  match (p, List.filter_map Value.as_int args) with
  | "<", [ a; b ] when List.length args = 2 -> Some (B.compare a b < 0)
  | "<=", [ a; b ] when List.length args = 2 -> Some (B.compare a b <= 0)
  | ">", [ a; b ] when List.length args = 2 -> Some (B.compare a b > 0)
  | ">=", [ a; b ] when List.length args = 2 -> Some (B.compare a b >= 0)
  | "dvd", [ a; b ] when List.length args = 2 ->
    Some (if B.is_zero a then B.is_zero b else B.divisible ~by:a b)
  | _ -> None

let enumerate () = Seq.map (fun n -> Value.int n) (Seq.ints 0)

let nonneg v = Formula.Atom ("<=", [ Term.Const "0"; Term.Var v ])

let rec relativize = function
  | Formula.Exists (v, g) -> Formula.Exists (v, Formula.And (nonneg v, relativize g))
  | Formula.Forall (v, g) -> Formula.Forall (v, Formula.Imp (nonneg v, relativize g))
  | Formula.Not g -> Formula.Not (relativize g)
  | Formula.And (g, h) -> Formula.And (relativize g, relativize h)
  | Formula.Or (g, h) -> Formula.Or (relativize g, relativize h)
  | Formula.Imp (g, h) -> Formula.Imp (relativize g, relativize h)
  | Formula.Iff (g, h) -> Formula.Iff (relativize g, relativize h)
  | (Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _) as f -> f

let check_pure f =
  if Signature.is_pure signature f then Ok ()
  else Error "not a pure Presburger formula"

let decide f =
  if not (Formula.is_sentence f) then
    Error
      (Printf.sprintf "formula has free variables: %s"
         (String.concat ", " (Formula.free_vars f)))
  else
    Result.bind (check_pure f) (fun () -> Cooper.decide (relativize f))

let decide_with_free ~env f =
  Result.bind (check_pure f) (fun () ->
      List.iter
        (fun (v, n) ->
          if B.sign n < 0 then
            invalid_arg (Printf.sprintf "Presburger.decide_with_free: %s < 0" v))
        env;
      Result.bind (Cooper.qe (relativize f)) (fun qf -> Cooper.eval_qf ~env qf))

let seeds _ = Seq.empty
