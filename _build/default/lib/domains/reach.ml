module Word = Fq_words.Word
module Trace = Fq_tm.Trace
module Classify = Fq_tm.Classify
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term

type base =
  | Var of string
  | Const of Word.t

type term =
  | Base of base
  | W_of of base
  | M_of of base

type cls = Machines | Inputs | Traces | Others

type atom =
  | Eq of term * term
  | Cls of cls * term
  | B of Word.t * term
  | D of int * term * term
  | E of int * term * term

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t

let rec conj = function [] -> True | [ f ] -> f | f :: fs -> And (f, conj fs)
let rec disj = function [] -> False | [ f ] -> f | f :: fs -> Or (f, disj fs)

(* Applying w(·)/m(·) to a non-base term nests applications, which the
   paper observes always yield ε. *)
let apply_w = function Base b -> W_of b | W_of _ | M_of _ -> Base (Const "")
let apply_m = function Base b -> M_of b | W_of _ | M_of _ -> Base (Const "")

let p_formula m w p =
  conj
    [ Atom (Cls (Machines, m)); Atom (Cls (Inputs, w)); Atom (Cls (Traces, p));
      Atom (Eq (apply_m p, m)); Atom (Eq (apply_w p, w)) ]

(* ------------------- translation from the original T ---------------- *)

let of_formula f =
  let ( let* ) = Result.bind in
  let term_of = function
    | Term.Var v -> Ok (Base (Var v))
    | Term.Const c ->
      if Term.is_scheme_const c then Error (Printf.sprintf "scheme constant %s" c)
      else if Word.is_word c then Ok (Base (Const c))
      else Error (Printf.sprintf "constant %S is not a word over {1,.,*,-}" c)
    | Term.App (fn, args) ->
      Error (Printf.sprintf "function %s/%d is not in T's signature" fn (List.length args))
  in
  let rec go f =
    match f with
    | Formula.True -> Ok True
    | Formula.False -> Ok False
    | Formula.Eq (t, u) ->
      let* t = term_of t in
      let* u = term_of u in
      Ok (Atom (Eq (t, u)))
    | Formula.Atom ("P", [ m; w; p ]) ->
      let* m = term_of m in
      let* w = term_of w in
      let* p = term_of p in
      Ok (p_formula m w p)
    | Formula.Atom (p, args) ->
      Error (Printf.sprintf "predicate %s/%d is not in T's signature" p (List.length args))
    | Formula.Not g ->
      let* g = go g in
      Ok (Not g)
    | Formula.And (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (And (g, h))
    | Formula.Or (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (Or (g, h))
    | Formula.Imp (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (Or (Not g, h))
    | Formula.Iff (g, h) ->
      let* g = go g in
      let* h = go h in
      Ok (Or (And (g, h), And (Not g, Not h)))
    | Formula.Exists (v, g) ->
      let* g = go g in
      Ok (Exists (v, g))
    | Formula.Forall (v, g) ->
      let* g = go g in
      Ok (Forall (v, g))
  in
  go f

(* ------------------------------ structure -------------------------- *)

let term_var = function
  | Base (Var v) | W_of (Var v) | M_of (Var v) -> Some v
  | Base (Const _) | W_of (Const _) | M_of (Const _) -> None

let atom_terms = function
  | Eq (t, u) -> [ t; u ]
  | Cls (_, t) -> [ t ]
  | B (_, t) -> [ t ]
  | D (_, t, u) | E (_, t, u) -> [ t; u ]

let free_vars f =
  let rec go bound acc = function
    | True | False -> acc
    | Atom a ->
      List.fold_left
        (fun acc t ->
          match term_var t with
          | Some v when not (List.mem v bound) && not (List.mem v acc) -> v :: acc
          | _ -> acc)
        acc (atom_terms a)
    | Not g -> go bound acc g
    | And (g, h) | Or (g, h) -> go bound (go bound acc g) h
    | Exists (v, g) | Forall (v, g) -> go (v :: bound) acc g
  in
  List.rev (go [] [] f)

let is_sentence f = free_vars f = []

let subst_base x b f =
  let sub_term t =
    match t with
    | Base (Var v) when v = x -> Base b
    | W_of (Var v) when v = x -> W_of b
    | M_of (Var v) when v = x -> M_of b
    | t -> t
  in
  let sub_atom = function
    | Eq (t, u) -> Eq (sub_term t, sub_term u)
    | Cls (c, t) -> Cls (c, sub_term t)
    | B (w, t) -> B (w, sub_term t)
    | D (i, t, u) -> D (i, sub_term t, sub_term u)
    | E (i, t, u) -> E (i, sub_term t, sub_term u)
  in
  let rec go f =
    match f with
    | True | False -> f
    | Atom a -> Atom (sub_atom a)
    | Not g -> Not (go g)
    | And (g, h) -> And (go g, go h)
    | Or (g, h) -> Or (go g, go h)
    | Exists (v, g) -> if v = x then f else Exists (v, go g)
    | Forall (v, g) -> if v = x then f else Forall (v, go g)
  in
  go f

let rec size = function
  | True | False -> 1
  | Atom _ -> 1
  | Not g -> 1 + size g
  | And (g, h) | Or (g, h) -> 1 + size g + size h
  | Exists (_, g) | Forall (_, g) -> 1 + size g

let rec nnf = function
  | (True | False | Atom _) as f -> f
  | Not g -> nnf_neg g
  | And (g, h) -> And (nnf g, nnf h)
  | Or (g, h) -> Or (nnf g, nnf h)
  | Exists (v, g) -> Exists (v, nnf g)
  | Forall (v, g) -> Forall (v, nnf g)

and nnf_neg = function
  | True -> False
  | False -> True
  | Atom _ as a -> Not a
  | Not g -> nnf g
  | And (g, h) -> Or (nnf_neg g, nnf_neg h)
  | Or (g, h) -> And (nnf_neg g, nnf_neg h)
  | Exists (v, g) -> Forall (v, nnf_neg g)
  | Forall (v, g) -> Exists (v, nnf_neg g)

let rec simplify_bool f =
  match f with
  | True | False | Atom _ -> f
  | Not g -> (
    match simplify_bool g with
    | True -> False
    | False -> True
    | Not h -> h
    | g -> Not g)
  | And (g, h) -> (
    match (simplify_bool g, simplify_bool h) with
    | False, _ | _, False -> False
    | True, h -> h
    | g, True -> g
    | g, h -> if g = h then g else And (g, h))
  | Or (g, h) -> (
    match (simplify_bool g, simplify_bool h) with
    | True, _ | _, True -> True
    | False, h -> h
    | g, False -> g
    | g, h -> if g = h then g else Or (g, h))
  | Exists (v, g) -> (
    match simplify_bool g with
    | True -> True
    | False -> False
    | g -> if List.mem v (free_vars g) then Exists (v, g) else g)
  | Forall (v, g) -> (
    match simplify_bool g with
    | True -> True
    | False -> False
    | g -> if List.mem v (free_vars g) then Forall (v, g) else g)

let rec dnf = function
  | True -> [ [] ]
  | False -> []
  | (Atom _ | Not (Atom _)) as lit -> [ [ lit ] ]
  | Or (g, h) -> dnf g @ dnf h
  | And (g, h) ->
    let dg = dnf g and dh = dnf h in
    List.concat_map (fun cg -> List.map (fun ch -> cg @ ch) dh) dg
  | Not _ | Exists _ | Forall _ -> invalid_arg "Reach.dnf: input must be quantifier-free NNF"

(* --------------------------- ground semantics ----------------------- *)

let ( let* ) = Result.bind

let eval_base = function
  | Const c -> Ok c
  | Var v -> Error (Printf.sprintf "unbound variable %s" v)

let eval_term = function
  | Base b -> eval_base b
  | W_of b -> Result.map Trace.w_fn (eval_base b)
  | M_of b -> Result.map Trace.m_fn (eval_base b)

let cls_of_word w =
  match Classify.classify w with
  | Classify.Machine -> Machines
  | Classify.Input -> Inputs
  | Classify.Trace -> Traces
  | Classify.Other -> Others

(* B_w(x): x is an input word and, padded with blanks, begins with w. *)
let b_holds w x =
  Word.is_input x
  && String.length w >= 0
  && (let n = String.length w in
      let padded i = if i < String.length x then x.[i] else '-' in
      let rec check i = i >= n || (w.[i] = padded i && check (i + 1)) in
      check 0)

let eval_atom a =
  match a with
  | Eq (t, u) ->
    let* x = eval_term t in
    let* y = eval_term u in
    Ok (String.equal x y)
  | Cls (c, t) ->
    let* x = eval_term t in
    Ok (cls_of_word x = c)
  | B (w, t) ->
    if not (Word.is_input w) then Error (Printf.sprintf "B-index %S is not an input word" w)
    else
      let* x = eval_term t in
      Ok (b_holds w x)
  | D (i, t, u) ->
    if i < 1 then Error "D-index must be positive"
    else
      let* m = eval_term t in
      let* w = eval_term u in
      Ok (Trace.d_pred ~i m w)
  | E (i, t, u) ->
    if i < 1 then Error "E-index must be positive"
    else
      let* m = eval_term t in
      let* w = eval_term u in
      Ok (Trace.e_pred ~i m w)

let holds ~env f =
  let rec bind_term t =
    match t with
    | Base (Var v) -> Result.map (fun w -> Base (Const w)) (lookup v)
    | W_of (Var v) -> Result.map (fun w -> W_of (Const w)) (lookup v)
    | M_of (Var v) -> Result.map (fun w -> M_of (Const w)) (lookup v)
    | t -> Ok t
  and lookup v =
    match List.assoc_opt v env with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "unbound variable %s" v)
  in
  let bind_atom = function
    | Eq (t, u) ->
      let* t = bind_term t in
      let* u = bind_term u in
      Ok (Eq (t, u))
    | Cls (c, t) ->
      let* t = bind_term t in
      Ok (Cls (c, t))
    | B (w, t) ->
      let* t = bind_term t in
      Ok (B (w, t))
    | D (i, t, u) ->
      let* t = bind_term t in
      let* u = bind_term u in
      Ok (D (i, t, u))
    | E (i, t, u) ->
      let* t = bind_term t in
      let* u = bind_term u in
      Ok (E (i, t, u))
  in
  let rec go = function
    | True -> Ok true
    | False -> Ok false
    | Atom a ->
      let* a = bind_atom a in
      eval_atom a
    | Not g -> Result.map not (go g)
    | And (g, h) ->
      let* a = go g in
      if a then go h else Ok false
    | Or (g, h) ->
      let* a = go g in
      if a then Ok true else go h
    | Exists _ | Forall _ -> Error "holds: quantifier (use the decision procedure)"
  in
  go f

let eval_ground f = holds ~env:[] f

(* ------------------------------ printing --------------------------- *)

let pp_base fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const c -> Format.fprintf fmt "%S" c

let pp_term fmt = function
  | Base b -> pp_base fmt b
  | W_of b -> Format.fprintf fmt "w(%a)" pp_base b
  | M_of b -> Format.fprintf fmt "m(%a)" pp_base b

let cls_name = function
  | Machines -> "M"
  | Inputs -> "W"
  | Traces -> "T"
  | Others -> "O"

let pp_atom fmt = function
  | Eq (t, u) -> Format.fprintf fmt "%a = %a" pp_term t pp_term u
  | Cls (c, t) -> Format.fprintf fmt "%s(%a)" (cls_name c) pp_term t
  | B (w, t) -> Format.fprintf fmt "B[%S](%a)" w pp_term t
  | D (i, t, u) -> Format.fprintf fmt "D%d(%a, %a)" i pp_term t pp_term u
  | E (i, t, u) -> Format.fprintf fmt "E%d(%a, %a)" i pp_term t pp_term u

let pp fmt f =
  let rec go prec fmt f =
    let paren p body = if p < prec then Format.fprintf fmt "(%t)" body else body fmt in
    match f with
    | True -> Format.pp_print_string fmt "true"
    | False -> Format.pp_print_string fmt "false"
    | Atom a -> pp_atom fmt a
    | Not g -> paren 4 (fun fmt -> Format.fprintf fmt "~%a" (go 4) g)
    | And (g, h) -> paren 3 (fun fmt -> Format.fprintf fmt "%a /\\ %a" (go 3) g (go 4) h)
    | Or (g, h) -> paren 2 (fun fmt -> Format.fprintf fmt "%a \\/ %a" (go 2) g (go 3) h)
    | Exists (v, g) -> paren 1 (fun fmt -> Format.fprintf fmt "exists %s. %a" v (go 1) g)
    | Forall (v, g) -> paren 1 (fun fmt -> Format.fprintf fmt "forall %s. %a" v (go 1) g)
  in
  go 0 fmt f

let to_string f = Format.asprintf "%a" pp f
