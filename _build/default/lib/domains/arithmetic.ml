module B = Fq_numeric.Bigint
module Formula = Fq_logic.Formula
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

let name = "arithmetic"

let signature =
  Signature.make ~name
    ~preds:[ ("<", 2); ("<=", 2); (">", 2); (">=", 2); ("dvd", 2) ]
    ~funs:[ ("+", 2); ("*", 2); ("s", 1) ]
    ()

let member = Presburger.member
let constant = Presburger.constant
let const_name = Presburger.const_name
let eval_fun = Presburger.eval_fun
let eval_pred = Presburger.eval_pred
let enumerate = Presburger.enumerate

(* A sentence lies in the decidable fragment when every product has a
   numeral side, i.e. it is really a Presburger sentence. *)
let decidable_fragment f =
  let rec linear_term = function
    | Fq_logic.Term.Var _ | Fq_logic.Term.Const _ -> true
    | Fq_logic.Term.App ("*", [ a; b ]) ->
      (is_numeral_term a || is_numeral_term b) && linear_term a && linear_term b
    | Fq_logic.Term.App (_, args) -> List.for_all linear_term args
  and is_numeral_term = function
    | Fq_logic.Term.Const c -> c <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') c
    | _ -> false
  in
  let ok = ref true in
  let check_terms ts = if not (List.for_all linear_term ts) then ok := false in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Atom (_, ts) -> check_terms ts
    | Formula.Eq (t, u) -> check_terms [ t; u ]
    | Formula.Not g -> go g
    | Formula.And (g, h) | Formula.Or (g, h) | Formula.Imp (g, h) | Formula.Iff (g, h) ->
      go g;
      go h
    | Formula.Exists (_, g) | Formula.Forall (_, g) -> go g
  in
  go f;
  !ok

let decide f =
  if decidable_fragment f then Presburger.decide f
  else
    Error
      "the theory of (N, <, +, *) is undecidable; only its Presburger fragment \
       is supported"

let seeds _ = Seq.empty
