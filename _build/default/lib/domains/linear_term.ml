module B = Fq_numeric.Bigint
module Term = Fq_logic.Term

module Smap = Map.Make (String)

type t = { coeffs : B.t Smap.t; const : B.t }
(* Invariant: no zero coefficient is stored. *)

let zero = { coeffs = Smap.empty; const = B.zero }
let const c = { coeffs = Smap.empty; const = c }
let of_int n = const (B.of_int n)
let var x = { coeffs = Smap.singleton x B.one; const = B.zero }

let norm c = if B.is_zero c then None else Some c

let add a b =
  { coeffs =
      Smap.union (fun _ ca cb -> norm (B.add ca cb)) a.coeffs b.coeffs
      |> Smap.filter (fun _ c -> not (B.is_zero c));
    const = B.add a.const b.const }

let scale k t =
  if B.is_zero k then zero
  else { coeffs = Smap.map (B.mul k) t.coeffs; const = B.mul k t.const }

let neg t = scale B.minus_one t
let sub a b = add a (neg b)
let succ t = { t with const = B.succ t.const }

let coeff x t = match Smap.find_opt x t.coeffs with Some c -> c | None -> B.zero
let const_part t = t.const
let vars t = List.map fst (Smap.bindings t.coeffs)
let is_const t = Smap.is_empty t.coeffs

let equal a b = Smap.equal B.equal a.coeffs b.coeffs && B.equal a.const b.const

let remove x t = { t with coeffs = Smap.remove x t.coeffs }

let subst x u t =
  let c = coeff x t in
  if B.is_zero c then t else add (remove x t) (scale c u)

let eval ~env t =
  Smap.fold
    (fun x c acc ->
      Result.bind acc (fun total ->
          match List.assoc_opt x env with
          | Some v -> Ok (B.add total (B.mul c v))
          | None -> Error (Printf.sprintf "unbound variable %s" x)))
    t.coeffs (Ok t.const)

let is_numeral s =
  let body = if s <> "" && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body

let of_term term =
  let ( let* ) = Result.bind in
  let rec go = function
    | Term.Var x -> Ok (var x)
    | Term.Const c ->
      if is_numeral c then Ok (const (B.of_string c))
      else Error (Printf.sprintf "constant %S is not a numeral" c)
    | Term.App ("+", [ a; b ]) ->
      let* ta = go a in
      let* tb = go b in
      Ok (add ta tb)
    | Term.App ("-", [ a; b ]) ->
      let* ta = go a in
      let* tb = go b in
      Ok (sub ta tb)
    | Term.App ("neg", [ a ]) ->
      let* ta = go a in
      Ok (neg ta)
    | Term.App ("s", [ a ]) ->
      let* ta = go a in
      Ok (succ ta)
    | Term.App ("*", [ a; b ]) ->
      let* ta = go a in
      let* tb = go b in
      if is_const ta then Ok (scale (const_part ta) tb)
      else if is_const tb then Ok (scale (const_part tb) ta)
      else Error "nonlinear product"
    | Term.App (f, args) ->
      Error (Printf.sprintf "non-Presburger function %s/%d" f (List.length args))
  in
  go term

let to_term t =
  let monomial (x, c) =
    if B.equal c B.one then Term.Var x
    else Term.App ("*", [ Term.Const (B.to_string c); Term.Var x ])
  in
  let monomials = List.map monomial (Smap.bindings t.coeffs) in
  let parts = if B.is_zero t.const && monomials <> [] then monomials
    else monomials @ [ Term.Const (B.to_string t.const) ]
  in
  match parts with
  | [] -> Term.Const "0"
  | first :: rest -> List.fold_left (fun acc m -> Term.App ("+", [ acc; m ])) first rest

let pp fmt t =
  let pp_mono fmt (x, c) =
    if B.equal c B.one then Format.pp_print_string fmt x
    else Format.fprintf fmt "%a*%s" B.pp c x
  in
  let monos = Smap.bindings t.coeffs in
  match monos with
  | [] -> B.pp fmt t.const
  | _ ->
    Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " + ") pp_mono fmt monos;
    if not (B.is_zero t.const) then Format.fprintf fmt " + %a" B.pp t.const
