(** Presburger arithmetic over the naturals: the domain
    [(ℕ, <, ≤, +, successor, divisibility, numerals)] — the paper's
    Section 2 example "natural numbers with <, +, and −" of a domain where
    the finitization trick yields an effective syntax (Theorem 2.2 applies
    to any extension of [N_<]).

    Decision is by relativizing quantifiers to [0 ≤ v] and handing the
    resulting ℤ-sentence to {!Cooper}: [(ℕ, +, <)] is a reduct of the
    structure Cooper decides, so truth values agree. *)

include Domain.S

val relativize : Fq_logic.Formula.t -> Fq_logic.Formula.t
(** Restricts every quantifier to the naturals: [∃v φ ↦ ∃v (0 ≤ v ∧ φ)],
    [∀v φ ↦ ∀v (0 ≤ v → φ)]. *)

val decide_with_free : env:(string * Fq_numeric.Bigint.t) list -> Fq_logic.Formula.t
  -> (bool, string) result
(** Truth of a formula under a (natural-valued) assignment to its free
    variables. *)
