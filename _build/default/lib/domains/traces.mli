(** The paper's domain [T] (Section 3): all words over the four-letter
    alphabet [{1, ⋆, *, −}], with the single ternary predicate [P(M, w, p)]
    — "[p] is a trace of the Turing machine [M] on input [w]" — plus
    equality and a constant for every word.

    [T] is recursive (Fact A.1: {!eval_pred} computes [P] by simulation)
    and its first-order theory is decidable (Corollary A.4: {!decide} runs
    the Reach-theory quantifier elimination of {!Reach_qe}), so finite
    queries over [T] are effectively answerable — and yet Theorems 3.1
    and 3.3 show they have no effective syntax and no decidable relative
    safety (see {!Fq_safety.Diagonal} and {!Fq_safety.Halting_reduction}).

    Word constants are written as double-quoted strings in the concrete
    syntax: [P("1*1", "11", p)]. *)

include Domain.S
