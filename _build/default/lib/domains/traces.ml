module Word = Fq_words.Word
module Value = Fq_db.Value
module Signature = Fq_logic.Signature

let name = "traces"

let signature = Signature.make ~name ~preds:[ ("P", 3) ] ()

let member v =
  match Value.as_str v with Some w -> Word.is_word w | None -> false

let constant c = if Word.is_word c then Some (Value.str c) else None

let const_name v =
  match v with Value.Str s -> s | Value.Int n -> Fq_numeric.Bigint.to_string n

let eval_fun _ _ = None

let eval_pred p args =
  match (p, args) with
  | "P", [ Value.Str m; Value.Str w; Value.Str t ] -> Some (Fq_tm.Trace.p_pred m w t)
  | _ -> None

let enumerate () = Seq.map Value.str (Word.enumerate ())

(* Candidate answers for P-queries: trace words of every machine in the
   active domain on every input in it (and on the short inputs), which the
   plain word enumeration would reach only astronomically late. *)
let seeds adom =
  let words = List.filter_map Value.as_str adom in
  let machines = List.filter Word.is_machine_shaped words in
  let inputs = List.filter Word.is_input words in
  let traces_of m w = Seq.take 64 (Fq_tm.Trace.traces ~machine:m ~input:w) in
  List.to_seq machines
  |> Seq.concat_map (fun m -> Seq.concat_map (traces_of m) (List.to_seq inputs))
  |> Seq.map Value.str

let decide f =
  if not (Fq_logic.Formula.is_sentence f) then
    Error
      (Printf.sprintf "formula has free variables: %s"
         (String.concat ", " (Fq_logic.Formula.free_vars f)))
  else Reach_qe.decide_formula f
