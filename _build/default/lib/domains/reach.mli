(** The {e Reach Theory of Traces} — the enriched signature of the paper's
    Appendix, in which the theory of the trace domain [T] admits
    quantifier elimination (Theorem A.3).

    On top of the original signature [{P, =, word constants}] the Appendix
    adds, all first-order definable from [P]:

    - four unary class predicates [M], [W], [T], [O] partitioning the
      universe into machines, input words, traces and other words;
    - prefix predicates [B_w(x)]: the input word [x], padded with blanks,
      begins with [w] (each input word satisfies exactly one [B_w] per
      length — the form used by the elimination's constant-expansion);
    - counting predicates [D_i(M, w)] ("at least [i] distinct traces of
      [M] in [w]") and their duals [E_i] ("exactly [i]");
    - unary functions [w(x)] and [m(x)] extracting a trace's input word
      and machine (the empty word on non-traces).

    Terms are flat — the paper notes "any nested term always equals ε" —
    so a term is a variable or constant, optionally under one application
    of [w(·)] or [m(·)]. *)

type base =
  | Var of string
  | Const of Fq_words.Word.t

type term =
  | Base of base
  | W_of of base  (** [w(x)] *)
  | M_of of base  (** [m(x)] *)

type cls = Machines | Inputs | Traces | Others

type atom =
  | Eq of term * term
  | Cls of cls * term
  | B of Fq_words.Word.t * term  (** [B_w(t)] — [w] over [{1,-}] *)
  | D of int * term * term  (** [D_i(machine, input)], [i >= 1] *)
  | E of int * term * term

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t

(** {1 Construction} *)

val conj : t list -> t
val disj : t list -> t

val apply_w : term -> term
(** [w(·)] applied to a term; nested applications collapse to [ε]. *)

val apply_m : term -> term

val p_formula : term -> term -> term -> t
(** The defining expansion of the original predicate:
    [P(m, w, p) ≡ M(m) ∧ W(w) ∧ T(p) ∧ m(p) = m ∧ w(p) = w]. *)

val of_formula : Fq_logic.Formula.t -> (t, string) result
(** Translates a query over the {e original} signature of [T] — predicate
    [P/3], equality, word constants — into the Reach theory. Database
    predicates and scheme constants are rejected. *)

(** {1 Structure} *)

val free_vars : t -> string list
val is_sentence : t -> bool
val term_var : term -> string option
val subst_base : string -> base -> t -> t
(** Substitutes a base term for a variable. Since terms are flat, this is
    only sound when every occurrence of the variable under [w(·)]/[m(·)]
    has been normalized first; occurrences [W_of (Var x)] become
    [W_of b] (and similarly [M_of]), which requires [b] to be a base. *)

val size : t -> int
val nnf : t -> t
val simplify_bool : t -> t
val dnf : t -> t list list
(** On quantifier-free NNF input, as in {!Fq_logic.Transform.dnf}. *)

(** {1 Ground semantics} *)

val cls_of_word : Fq_words.Word.t -> cls

val b_holds : Fq_words.Word.t -> Fq_words.Word.t -> bool
(** [b_holds w x]: the semantics of [B_w(x)] — [x] is an input word whose
    blank-padding begins with [w]. *)

val eval_atom : atom -> (bool, string) result
(** Ground atoms only. *)

val eval_term : term -> (Fq_words.Word.t, string) result
(** Ground terms only. *)

val eval_ground : t -> (bool, string) result
(** Evaluates a sentence with no quantifiers and no variables, by running
    the word classifiers and bounded Turing-machine simulation of
    {!Fq_tm}. *)

val holds : env:(string * Fq_words.Word.t) list -> t -> (bool, string) result
(** Quantifier-free formulas under an assignment. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
