module Formula = Fq_logic.Formula
module Signature = Fq_logic.Signature
module Value = Fq_db.Value

module Make (D : Domain.S) = struct
  let name = D.name ^ "_with_order"

  let order_signature =
    Signature.make ~name ~preds:[ ("<", 2); ("<=", 2); (">", 2); (">=", 2) ] ()

  let signature = Signature.union (Signature.make ~name ()) (Signature.union D.signature order_signature)

  let member = D.member
  let constant = D.constant
  let const_name = D.const_name
  let enumerate = D.enumerate

  let search_cap = 100_000

  let index v =
    let rec go i seq =
      if i >= search_cap then None
      else
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (w, rest) -> if Value.equal v w then Some i else go (i + 1) rest
    in
    go 0 (D.enumerate ())

  let eval_fun = D.eval_fun
  let seeds = D.seeds

  let eval_pred p args =
    match (p, args) with
    | ("<" | "<=" | ">" | ">="), [ a; b ] -> (
      match D.eval_pred p args with
      | Some r -> Some r (* D may already interpret the order *)
      | None -> (
        match (index a, index b) with
        | Some i, Some j ->
          Some
            (match p with
            | "<" -> i < j
            | "<=" -> i <= j
            | ">" -> i > j
            | _ -> i >= j)
        | _ -> None))
    | _ -> D.eval_pred p args

  let uses_order f =
    List.exists (fun (p, _) -> List.mem p [ "<"; "<="; ">"; ">=" ]) (Formula.preds f)

  let uses_d_symbols f =
    List.exists (fun (p, n) -> Signature.mem_pred D.signature p n) (Formula.preds f)
    || List.exists (fun (fn, n) -> Signature.mem_fun D.signature fn n) (Formula.funs f)

  let decide f =
    match (uses_order f, uses_d_symbols f) with
    | false, _ -> D.decide f
    | true, false ->
      (* pure-order sentences hold in (universe, <) iff in (ℕ, <): the
         structures are isomorphic along the enumeration — provided the
         constants are not mixed in either (constants name arbitrary
         elements whose order position matters) *)
      if Formula.consts f = [] then Nat_order.decide f
      else
        Error
          (name
         ^ ": order sentences with constants depend on enumeration positions; \
            not supported")
    | true, true ->
      Error
        (name
       ^ ": no decision procedure for the combined theory (cf. Corollary 3.2: such \
          a procedure need not exist)")
end
