(** Linear integer terms [c₁·x₁ + … + cₖ·xₖ + c₀] with {!Fq_numeric.Bigint}
    coefficients — the term language of Presburger arithmetic, shared by
    Cooper's algorithm and the dedicated [N_<] procedure. *)

type t

val zero : t
val const : Fq_numeric.Bigint.t -> t
val of_int : int -> t
val var : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Fq_numeric.Bigint.t -> t -> t
val succ : t -> t

val coeff : string -> t -> Fq_numeric.Bigint.t
(** Zero when the variable does not occur. *)

val const_part : t -> Fq_numeric.Bigint.t
val vars : t -> string list
val is_const : t -> bool
val equal : t -> t -> bool

val remove : string -> t -> t
(** Drops the variable's monomial. *)

val subst : string -> t -> t -> t
(** [subst x u t] replaces [x] by the linear term [u] in [t]. *)

val eval : env:(string * Fq_numeric.Bigint.t) list -> t -> (Fq_numeric.Bigint.t, string) result

val of_term : Fq_logic.Term.t -> (t, string) result
(** Interprets a logic term over the Presburger signature: numerals,
    variables, [+], binary [-], unary [neg], successor [s], and [*] with at
    least one constant side. Rejects nonlinear products, scheme constants
    and unknown symbols. *)

val to_term : t -> Fq_logic.Term.t
(** A canonical logic term denoting this linear term. *)

val pp : Format.formatter -> t -> unit
