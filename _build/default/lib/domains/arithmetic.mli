(** Full arithmetic [(ℕ, <, +, ×)] — the paper's Corollary 2.3 exhibit: a
    domain whose theory is {e undecidable} (so {!decide} answers only the
    fragments our procedures cover and reports failure otherwise), yet
    which still has a recursive syntax for finite queries, because the
    finitization operator of Theorem 2.2 applies to every extension of
    [N_<]. "The existence of a recursive syntax is, somewhat surprisingly,
    not related to decidability or recursiveness." *)

include Domain.S

val decidable_fragment : Fq_logic.Formula.t -> bool
(** Whether the sentence happens to avoid nonlinear multiplication, in
    which case {!decide} can answer via {!Presburger}. *)
