lib/domains/presburger.mli: Domain Fq_logic Fq_numeric
