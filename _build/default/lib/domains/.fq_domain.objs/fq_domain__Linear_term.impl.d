lib/domains/linear_term.ml: Format Fq_logic Fq_numeric List Map Printf Result String
