lib/domains/reach.ml: Format Fq_logic Fq_tm Fq_words List Printf Result String
