lib/domains/arithmetic.mli: Domain Fq_logic
