lib/domains/eq_domain.mli: Domain Fq_logic
