lib/domains/nat_succ.ml: Fq_db Fq_logic Fq_numeric List Printf Result Seq String
