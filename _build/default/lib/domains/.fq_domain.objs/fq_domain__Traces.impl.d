lib/domains/traces.ml: Fq_db Fq_logic Fq_numeric Fq_tm Fq_words List Printf Reach_qe Seq String
