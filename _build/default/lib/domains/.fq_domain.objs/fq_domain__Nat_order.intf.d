lib/domains/nat_order.mli: Domain Fq_logic
