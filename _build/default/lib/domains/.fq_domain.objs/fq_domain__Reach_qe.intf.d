lib/domains/reach_qe.mli: Fq_logic Reach
