lib/domains/reach.mli: Format Fq_logic Fq_words
