lib/domains/linear_term.mli: Format Fq_logic Fq_numeric
