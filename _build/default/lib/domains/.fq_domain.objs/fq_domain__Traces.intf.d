lib/domains/traces.mli: Domain
