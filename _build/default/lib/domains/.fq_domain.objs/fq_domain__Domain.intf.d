lib/domains/domain.mli: Fq_db Fq_logic Seq
