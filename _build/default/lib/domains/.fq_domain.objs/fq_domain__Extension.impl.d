lib/domains/extension.ml: Domain Fq_db Fq_logic List Nat_order Seq
