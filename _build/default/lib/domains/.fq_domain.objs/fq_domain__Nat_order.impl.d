lib/domains/nat_order.ml: Fq_db Fq_logic Fq_numeric List Printf Result Seq String
