lib/domains/cooper.mli: Fq_logic Fq_numeric Linear_term
