lib/domains/eq_domain.ml: Char Fq_db Fq_logic Fq_numeric Fq_words List Printf Result Seq String
