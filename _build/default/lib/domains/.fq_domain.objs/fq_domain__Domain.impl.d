lib/domains/domain.ml: Fq_db Fq_logic List Printf Result Seq String
