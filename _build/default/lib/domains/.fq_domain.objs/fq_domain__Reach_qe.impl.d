lib/domains/reach_qe.ml: Fq_tm Fq_words List Printf Reach Result String
