lib/domains/arithmetic.ml: Fq_db Fq_logic Fq_numeric List Presburger Seq String
