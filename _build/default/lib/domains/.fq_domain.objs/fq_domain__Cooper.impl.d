lib/domains/cooper.ml: Fq_logic Fq_numeric Linear_term List Printf Result String
