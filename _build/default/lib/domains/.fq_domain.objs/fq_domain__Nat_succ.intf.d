lib/domains/nat_succ.mli: Domain Fq_logic
