lib/domains/presburger.ml: Cooper Fq_db Fq_logic Fq_numeric List Printf Result Seq String
