lib/domains/extension.mli: Domain Fq_db
