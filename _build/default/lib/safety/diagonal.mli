(** The executable content of Theorem 3.1: {e finite queries over the
    trace domain [T] have no effective syntax}.

    The proof's ingredients, each implemented here:

    - the {b totality query} [M(x) = P(M, @c, x)] over the scheme with one
      constant [c] — finite iff the machine [M] is total;
    - the {b decidable equivalence test} between one-variable queries: by
      the [\[z/c\]] substitution, [∀z ∀x (φ(x)\[z/c\] ↔ ψ(x)\[z/c\])] is a
      pure domain sentence, decided by Corollary A.4 ({!Fq_domain.Traces});
    - the {b reduction}: were a recursive syntax complete for finite
      queries, scanning (machine, syntax-formula) pairs with the
      equivalence test would recursively enumerate all total Turing
      machines — which diagonalization forbids;
    - a {b bounded diagonalization harness} ({!defeat}): given any
      candidate syntax and a search budget, it either exhibits a total
      machine whose (finite) totality query is equivalent to no candidate
      formula within the budget, or an unsafe candidate formula. Fresh
      total machines behaviorally distinct from any finite list are
      manufactured with the Lemma A.2 builder ({!fresh_total_machine}). *)

val schema : Fq_db.Schema.t
(** One scheme constant [c], no relations (the paper's footnote 10 scheme). *)

val totality_query : Fq_words.Word.t -> Fq_logic.Formula.t
(** [M(x) := P("machine word", @c, x)]. *)

val state_for : Fq_words.Word.t -> Fq_db.State.t
(** The state interpreting [@c] as the given input word. *)

val equivalent_queries :
  Fq_logic.Formula.t -> Fq_logic.Formula.t -> (bool, string) result
(** The paper's equivalence sentence [∀z∀x (φ\[z/c\] ↔ ψ\[z/c\])], decided
    over [T]. Both formulas may use the scheme constant [@c] and the one
    free variable [x]. *)

val machine_words : unit -> Fq_words.Word.t Seq.t
(** Recursive enumeration of all machine-shaped words — the [M₁, M₂, …]
    of the proof. *)

val fresh_total_machine : avoid:Fq_words.Word.t list -> Fq_tm.Machine.t
(** A machine that (a) is total by construction (a prefix-trie machine
    halts on every input) and (b) differs behaviorally from every machine
    in [avoid] — it halts after a different number of steps on a
    designated input. Built with {!Fq_tm.Builder}. *)

type outcome =
  | Missed_finite_query of {
      machine : Fq_words.Word.t;  (** a total machine *)
      query : Fq_logic.Formula.t;  (** its finite totality query *)
      candidates_checked : int;
    }
      (** No candidate formula within the budget is equivalent to the
          query: the syntax misses a finite query (up to the budget). *)
  | Admits_unsafe of {
      formula : Fq_logic.Formula.t;
      witness_machine : Fq_words.Word.t;
      witness_input : Fq_words.Word.t;
    }
      (** A candidate formula is equivalent to the totality query of a
          machine that diverges on [witness_input]: the syntax contains an
          unsafe formula. *)

val defeat : syntax:Syntax_class.t -> budget:int -> (outcome, string) result
(** Runs the bounded diagonalization. [budget] bounds both the number of
    candidate formulas taken from the syntax and the machines scanned. *)

val enumerate_total_machines_via :
  syntax:Syntax_class.t ->
  formula_budget:int ->
  machine_budget:int ->
  (Fq_words.Word.t list, string) result
(** The reduction run forward: machines whose totality query matches some
    candidate formula within the budgets. Were the syntax sound and
    complete, this process (with unbounded budgets) would enumerate
    exactly the total machines — the impossibility at the heart of
    Theorem 3.1. Every returned machine is certifiably total whenever the
    syntax is sound. *)
