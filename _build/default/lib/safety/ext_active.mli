(** The paper's Section 2.2 machinery for the successor domain [N']:
    Theorem 2.7's recursive syntax via the {e extended active domain}
    [Δ⁺_q] (the active domain plus everything within successor-distance
    [2^q] of it), and Theorem 2.6's relative-safety decision through
    quantifier elimination.

    Theorem 2.6's criterion, implemented in {!finite_in_state}: translate
    the query into a pure [N'] formula, eliminate quantifiers with
    {!Fq_domain.Nat_succ.qe}, and inspect the quantifier-free result —
    "given a quantifier-free formula, it is easy to decide upon the
    finiteness of the answer": in each satisfiable DNF clause, a free
    variable admits infinitely many values unless an equality chain pins
    it to a constant. *)

val delta_plus :
  schema:(string * int) list ->
  consts:string list ->
  bound:int ->
  string ->
  Fq_logic.Formula.t
(** [delta_plus ~schema ~consts ~bound x] — the formula [δ⁺(x)]: [x] is
    within successor-distance [bound] of one of the numeral constants
    [consts] (zero is always included) or of a component of a tuple in
    some schema relation. *)

val restrict : schema:(string * int) list -> Fq_logic.Formula.t -> Fq_logic.Formula.t
(** Theorem 2.7's syntax operator: [φ^E = φ ∧ ⋀_{x free} δ⁺_q(x)] with the
    distance bound of {!Fq_domain.Nat_succ.qe_offset_bound}. Every [φ^E]
    is finite, and a finite [φ] is equivalent to [φ^E]. *)

val finite_in_state :
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (bool, string) result
(** Theorem 2.6: decides whether the query has a finite answer in the
    state, over the domain [N'] (pass {!Fq_domain.Nat_succ} — the [domain]
    argument is exposed for the translation step). *)
