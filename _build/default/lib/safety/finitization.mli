(** The finitization operator of Theorem 2.2 — the paper's recursive
    syntax for finite queries over any extension of [N_<]:

    {v
    φ^F(x̄)  =  φ(x̄) ∧ ∃m ∀x̄ (φ(x̄) → ⋀ᵢ xᵢ < m)
    v}

    "The second part of this formula says that there exists an element
    greater than any element in the answer." Two facts make the image of
    this operator an effective syntax: the finitization of {e any} formula
    is finite (its answer is bounded, and over ℕ bounded sets are finite),
    and the finitization of a {e finite} formula is equivalent to it. Both
    are exercised in the tests via the Presburger decision procedure.

    The operator is purely syntactic, so it applies even when the
    extension's theory is undecidable (Corollary 2.3: full arithmetic). *)

val finitize : Fq_logic.Formula.t -> Fq_logic.Formula.t
(** [φ^F]. The bound variable [m] is chosen fresh. For a sentence,
    [finitize φ ≡ φ] (the bounding part is vacuous). *)

val is_finitization : Fq_logic.Formula.t -> bool
(** Recognizes the syntactic image of {!finitize} — the membership test of
    the recursive syntax. *)

val equivalence_in_state :
  decide:(Fq_logic.Formula.t -> (bool, string) result) ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (bool, string) result
(** Theorem 2.5's criterion: in a given state, [φ] yields a finite answer
    iff it is equivalent to its finitization there. Translates both into
    pure domain formulas ({!Fq_eval.Translate}) and asks [decide] for
    [∀x̄ (φ' ↔ φ'^F)]. *)
