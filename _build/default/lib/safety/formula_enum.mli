(** Recursive enumeration of first-order formulas — the "recursive
    enumeration [φ₁(x), φ₂(x), …]" that Theorem 3.1's proof assumes a
    recursive syntax would provide. Any recursive (or r.e.) class of
    formulas embeds into this enumeration by filtering with its membership
    test, which is exactly how {!Syntax_class} builds candidate syntaxes.

    Formulas are enumerated by size, over a finite vocabulary: the given
    predicates (with arities), constants, and a variable pool that grows
    with the size budget, plus equality, the boolean connectives and both
    quantifiers. Every formula over the vocabulary appears (up to the
    naming of variables) at some finite position. *)

type vocabulary = {
  preds : (string * int) list;
  consts : string list;  (** includes scheme constants, ['@']-prefixed *)
  funs : (string * int) list;
}

val terms_of_size : vocabulary -> vars:string list -> int -> Fq_logic.Term.t list
(** All terms of exactly the given size (see {!Fq_logic.Term.size}). *)

val formulas_of_size : vocabulary -> int -> Fq_logic.Formula.t list
(** All formulas of exactly the given size (see
    {!Fq_logic.Formula.size}), using the variable pool [x0 … x(size-1)].
    Beware: grows steeply with size. *)

val enumerate : vocabulary -> unit -> Fq_logic.Formula.t Seq.t
(** All formulas, by increasing size. *)

val enumerate_with_free :
  vocabulary -> free:string list -> unit -> Fq_logic.Formula.t Seq.t
(** Only the formulas whose free variables are exactly the given list —
    e.g. the one-free-variable queries of Theorem 3.1. *)
