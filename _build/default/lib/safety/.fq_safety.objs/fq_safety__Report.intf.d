lib/safety/report.mli: Format Fq_db Fq_domain Fq_logic Safe_range
