lib/safety/relative_safety.mli: Fq_db Fq_domain Fq_logic
