lib/safety/halting_reduction.mli: Fq_db Fq_logic Fq_words
