lib/safety/formula_enum.ml: Fq_logic Hashtbl List Printf Seq
