lib/safety/syntax_class.mli: Formula_enum Fq_logic Seq
