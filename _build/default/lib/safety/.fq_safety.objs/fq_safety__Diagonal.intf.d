lib/safety/diagonal.mli: Fq_db Fq_logic Fq_tm Fq_words Seq Syntax_class
