lib/safety/safe_range.mli: Fq_logic
