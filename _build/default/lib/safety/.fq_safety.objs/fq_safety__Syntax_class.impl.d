lib/safety/syntax_class.ml: Ext_active Finitization Formula_enum Fq_logic Safe_range Seq
