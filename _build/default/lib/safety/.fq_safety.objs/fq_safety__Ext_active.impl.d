lib/safety/ext_active.ml: Fq_domain Fq_eval Fq_logic Fq_numeric Fun Hashtbl List Printf Result String
