lib/safety/finitization.mli: Fq_db Fq_domain Fq_logic
