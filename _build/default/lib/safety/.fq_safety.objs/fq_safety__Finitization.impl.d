lib/safety/finitization.ml: Fq_eval Fq_logic List Result
