lib/safety/ext_active.mli: Fq_db Fq_domain Fq_logic
