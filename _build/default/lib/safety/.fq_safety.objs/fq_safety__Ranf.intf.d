lib/safety/ranf.mli: Algebra_translate Fq_db Fq_domain Fq_logic
