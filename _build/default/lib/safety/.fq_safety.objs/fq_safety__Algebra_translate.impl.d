lib/safety/algebra_translate.ml: Fq_db Fq_domain Fq_eval Fq_logic List Printf Result
