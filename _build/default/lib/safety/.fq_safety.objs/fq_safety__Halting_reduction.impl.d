lib/safety/halting_reduction.ml: Diagonal Fq_db Fq_domain Fq_eval Fq_tm Fq_words List Printf Result
