lib/safety/relative_safety.ml: Ext_active Finitization Fq_db Fq_domain Fq_eval Fq_logic List Printf Result
