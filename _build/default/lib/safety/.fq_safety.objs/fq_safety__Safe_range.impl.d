lib/safety/safe_range.ml: Fq_logic List Printf String
