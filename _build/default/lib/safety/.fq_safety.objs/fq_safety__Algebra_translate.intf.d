lib/safety/algebra_translate.mli: Fq_db Fq_domain Fq_logic
