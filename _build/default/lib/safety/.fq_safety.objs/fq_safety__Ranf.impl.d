lib/safety/ranf.ml: Algebra_translate Fq_db Fq_domain Fq_logic List Printf Result Safe_range String
