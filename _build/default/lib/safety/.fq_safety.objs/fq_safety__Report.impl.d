lib/safety/report.ml: Algebra_translate Format Fq_db Fq_eval Fq_logic Ranf Relative_safety Safe_range
