lib/safety/diagonal.ml: Fq_db Fq_domain Fq_logic Fq_tm Fq_words List Result Seq String Syntax_class
