lib/safety/formula_enum.mli: Fq_logic Seq
