module Formula = Fq_logic.Formula
module Term = Fq_logic.Term

type vocabulary = {
  preds : (string * int) list;
  consts : string list;
  funs : (string * int) list;
}

let var_pool n = List.init n (fun i -> Printf.sprintf "x%d" i)

(* ---------------------------- terms -------------------------------- *)

let rec terms_of_size voc ~vars n =
  if n <= 0 then []
  else if n = 1 then
    List.map (fun v -> Term.Var v) vars @ List.map (fun c -> Term.Const c) voc.consts
  else
    (* App (f, args) has size 1 + Σ sizes *)
    List.concat_map
      (fun (f, arity) ->
        if arity = 0 then if n = 1 then [ Term.App (f, []) ] else []
        else
          List.map (fun args -> Term.App (f, args)) (arg_lists voc ~vars arity (n - 1)))
      voc.funs

and arg_lists voc ~vars k budget =
  (* all k-tuples of terms with total size = budget, each >= 1 *)
  if k = 0 then if budget = 0 then [ [] ] else []
  else if budget < k then []
  else
    List.concat_map
      (fun first_size ->
        let firsts = terms_of_size voc ~vars first_size in
        List.concat_map
          (fun rest -> List.map (fun t -> t :: rest) firsts)
          (arg_lists voc ~vars (k - 1) (budget - first_size)))
      (List.init (budget - k + 2) (fun i -> i)
      |> List.filter (fun s -> s >= 1))

(* --------------------------- formulas ------------------------------ *)

let cache : (int, Formula.t list) Hashtbl.t = Hashtbl.create 16
let cache_key = ref None (* invalidate when the vocabulary changes *)

let rec formulas_of_size voc n =
  let key = Some voc in
  if !cache_key <> key then begin
    Hashtbl.reset cache;
    cache_key := key
  end;
  match Hashtbl.find_opt cache n with
  | Some fs -> fs
  | None ->
    let vars = var_pool (max 1 n) in
    let result =
      if n <= 0 then []
      else begin
        let atoms =
          if n = 1 then [ Formula.True; Formula.False ]
          else
            (* Atom (p, args): size 1 + Σ term sizes; Eq: 1 + |t| + |u| *)
            List.concat_map
              (fun (p, arity) ->
                List.map (fun args -> Formula.Atom (p, args)) (arg_lists voc ~vars arity (n - 1)))
              voc.preds
            @ List.concat_map
                (fun tsize ->
                  let ts = terms_of_size voc ~vars tsize in
                  let us = terms_of_size voc ~vars (n - 1 - tsize) in
                  List.concat_map (fun t -> List.map (fun u -> Formula.Eq (t, u)) us) ts)
                (List.init (max 0 (n - 2)) (fun i -> i + 1))
        in
        let nots = List.map (fun f -> Formula.Not f) (formulas_of_size voc (n - 1)) in
        let quants =
          List.concat_map
            (fun v ->
              List.concat_map
                (fun f -> [ Formula.Exists (v, f); Formula.Forall (v, f) ])
                (formulas_of_size voc (n - 1)))
            vars
        in
        let binaries =
          List.concat_map
            (fun lsize ->
              let ls = formulas_of_size voc lsize in
              let rs = formulas_of_size voc (n - 1 - lsize) in
              List.concat_map
                (fun l ->
                  List.concat_map
                    (fun r -> [ Formula.And (l, r); Formula.Or (l, r); Formula.Imp (l, r) ])
                    rs)
                ls)
            (List.init (max 0 (n - 2)) (fun i -> i + 1))
        in
        atoms @ nots @ quants @ binaries
      end
    in
    Hashtbl.replace cache n result;
    result

let enumerate voc () =
  Seq.concat_map (fun n -> List.to_seq (formulas_of_size voc n)) (Seq.ints 1)

let enumerate_with_free voc ~free () =
  let want = List.sort_uniq compare free in
  enumerate voc ()
  |> Seq.filter (fun f -> List.sort_uniq compare (Formula.free_vars f) = want)
