module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Transform = Fq_logic.Transform
module B = Fq_numeric.Bigint

let rec s_tower k t = if k <= 0 then t else s_tower (k - 1) (Term.App ("s", [ t ]))

(* x within distance [bound] of term t: ⋁_k (x = s^k(t) ∨ s^k(x) = t) *)
let near ~bound x t =
  Formula.disj
    (List.concat_map
       (fun k ->
         [ Formula.Eq (Term.Var x, s_tower k t); Formula.Eq (s_tower k (Term.Var x), t) ])
       (List.init (bound + 1) Fun.id))

let delta_plus ~schema ~consts ~bound x =
  let const_parts =
    List.map (fun c -> near ~bound x (Term.Const c)) ("0" :: consts)
  in
  let relation_parts =
    List.map
      (fun (r, arity) ->
        let ys = List.init arity (fun i -> Printf.sprintf "%s_adom%d" x i) in
        Formula.exists_many ys
          (Formula.And
             ( Formula.Atom (r, List.map (fun y -> Term.Var y) ys),
               Formula.disj (List.map (fun y -> near ~bound x (Term.Var y)) ys) )))
      schema
  in
  Formula.disj (const_parts @ relation_parts)

let restrict ~schema f =
  let bound = Fq_domain.Nat_succ.qe_offset_bound f in
  let consts =
    List.filter (fun c -> not (Term.is_scheme_const c)) (Formula.consts f)
  in
  let parts =
    List.map (fun x -> delta_plus ~schema ~consts ~bound x) (Formula.free_vars f)
  in
  Formula.conj (f :: parts)

(* ------------------------------------------------------------------ *)
(* Theorem 2.6: finiteness of the answer of a quantifier-free N'       *)
(* formula, clause by clause, with an offset union-find.               *)
(* ------------------------------------------------------------------ *)

(* offset terms, as in Nat_succ: base + k, base a variable or the numeral
   root "" (the constant base) *)
type ot = { base : string option; off : B.t }

exception Not_succ_formula of string

let rec ot_of_term = function
  | Term.Var v -> { base = Some v; off = B.zero }
  | Term.Const c when c <> "" && String.for_all (fun ch -> ch >= '0' && ch <= '9') c ->
    { base = None; off = B.of_string c }
  | Term.Const c -> raise (Not_succ_formula (Printf.sprintf "constant %S" c))
  | Term.App ("s", [ t ]) ->
    let o = ot_of_term t in
    { o with off = B.succ o.off }
  | Term.App (f, args) ->
    raise (Not_succ_formula (Printf.sprintf "term %s/%d" f (List.length args)))

(* Weighted union-find: find v = (root, delta) with val(v) = val(root) +
   delta; a [None] root is the numeral origin (value 0). *)
type uf = (string, string option * B.t) Hashtbl.t

let rec find (uf : uf) v =
  match Hashtbl.find_opt uf v with
  | None -> (Some v, B.zero)
  | Some (None, d) -> (None, d)
  | Some (Some p, d) ->
    let root, dp = find uf p in
    let total = B.add d dp in
    Hashtbl.replace uf v (root, total);
    (root, total)

let resolve uf (o : ot) =
  match o.base with
  | None -> (None, o.off)
  | Some v ->
    let root, d = find uf v in
    (root, B.add d o.off)

(* returns false on contradiction *)
let union uf a b =
  let ra, da = resolve uf a and rb, db = resolve uf b in
  match (ra, rb) with
  | None, None -> B.equal da db
  | Some v, _ ->
    (* val(v) = val(rb) + db - da; require nonnegative when rb is the
       origin *)
    let delta = B.sub db da in
    if rb = Some v then B.is_zero delta
    else begin
      Hashtbl.replace uf v (rb, delta);
      true
    end
  | None, Some w ->
    let delta = B.sub da db in
    Hashtbl.replace uf w (None, delta);
    true

(* A satisfiable clause has finitely many solutions iff every free
   variable's root is the numeral origin. Nonnegativity: a variable pinned
   to a negative value makes the clause unsatisfiable. *)
let clause_analysis free_vars lits =
  let uf : uf = Hashtbl.create 16 in
  let eqs, nes =
    List.partition_map
      (fun lit ->
        match lit with
        | Formula.Eq (t, u) -> Left (ot_of_term t, ot_of_term u)
        | Formula.Not (Formula.Eq (t, u)) -> Right (ot_of_term t, ot_of_term u)
        | Formula.True -> Left ({ base = None; off = B.zero }, { base = None; off = B.zero })
        | f -> raise (Not_succ_formula (Formula.to_string f)))
      lits
  in
  let consistent = List.for_all (fun (a, b) -> union uf a b) eqs in
  if not consistent then `Unsat
  else begin
    (* nonnegativity of pinned variables *)
    let pinned_ok =
      List.for_all
        (fun v ->
          match find uf v with
          | None, d -> B.sign d >= 0
          | Some _, _ -> true)
        free_vars
    in
    let ne_ok =
      List.for_all
        (fun (a, b) ->
          let ra, da = resolve uf a and rb, db = resolve uf b in
          not (ra = rb && B.equal da db))
        nes
    in
    if not (pinned_ok && ne_ok) then `Unsat
    else if
      List.for_all (fun v -> match find uf v with None, _ -> true | Some _, _ -> false) free_vars
    then `Finite
    else `Infinite
  end

let finite_in_state ~domain ~state f =
  let ( let* ) = Result.bind in
  let* f' = Fq_eval.Translate.formula ~domain ~state f in
  let free = Formula.free_vars f' in
  if free = [] then Ok true
  else
    let* qf = Fq_domain.Nat_succ.qe f' in
    match Transform.dnf (Transform.nnf (Transform.simplify qf)) with
    | clauses -> (
      match
        List.for_all
          (fun lits ->
            match clause_analysis free lits with
            | `Unsat | `Finite -> true
            | `Infinite -> false)
          clauses
      with
      | b -> Ok b
      | exception Not_succ_formula msg -> Error ("not an N' formula: " ^ msg))
    | exception Not_succ_formula msg -> Error ("not an N' formula: " ^ msg)
