(** Candidate {e recursive syntaxes} for finite queries (Section 1.4): a
    recursive subclass of formulas given by a membership test and a
    recursive enumeration. A syntax is {e sound} for a domain when every
    formula it contains is finite in every state, and {e complete} when
    every finite query is equivalent to one of its formulas. Theorem 3.1
    says no sound and complete recursive syntax exists for the trace
    domain [T]; Theorems 2.2 / 2.7 give sound-and-complete syntaxes for
    [N_<]-extensions and [N']. *)

type t = {
  name : string;
  description : string;
  accepts : Fq_logic.Formula.t -> bool;
  enumerate : unit -> Fq_logic.Formula.t Seq.t;
}

val safe_range : schema:(string * int) list -> vocabulary:Formula_enum.vocabulary -> t
(** The range-restricted (safe-range) formulas — the classical effective
    syntax for domain-independent queries. Sound over every domain;
    complete for the pure-equality domain, where finiteness and domain
    independence coincide. *)

val finitizations : vocabulary:Formula_enum.vocabulary -> t
(** Theorem 2.2: the finitizations [φ^F] of all formulas. Sound and
    complete over every extension of [N_<]. *)

val extended_active : schema:(string * int) list -> vocabulary:Formula_enum.vocabulary -> t
(** Theorem 2.7: formulas restricted to the extended active domain of
    [N']. Sound and complete over [N']. *)

val of_filter :
  name:string ->
  description:string ->
  vocabulary:Formula_enum.vocabulary ->
  (Fq_logic.Formula.t -> bool) ->
  t
(** An arbitrary recursive class given by its membership test, enumerated
    by filtering the formula enumeration. *)
