module Formula = Fq_logic.Formula
module Term = Fq_logic.Term

let bound_part f =
  let xs = Formula.free_vars f in
  let avoid = Formula.all_vars f in
  let m = Formula.fresh_var ~avoid "m" in
  Formula.Exists
    ( m,
      Formula.forall_many xs
        (Formula.Imp
           (f, Formula.conj (List.map (fun x -> Formula.Atom ("<", [ Term.Var x; Term.Var m ])) xs))) )

let finitize f = Formula.And (f, bound_part f)

let is_finitization f =
  match f with
  | Formula.And (phi, bound) -> Formula.equal bound (bound_part phi)
  | _ -> false

let equivalence_in_state ~decide ~domain ~state f =
  let ( let* ) = Result.bind in
  let* f' = Fq_eval.Translate.formula ~domain ~state f in
  let xs = Formula.free_vars f' in
  let sentence = Formula.forall_many xs (Formula.Iff (f', finitize f')) in
  decide sentence
