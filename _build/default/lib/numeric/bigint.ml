(* Sign-magnitude arbitrary-precision integers.

   Representation: [{ sign; mag }] where [mag] is a little-endian array of
   limbs in base 10000 with no trailing zero limb, and [sign] is [-1], [0]
   or [1]. Zero is uniquely [{ sign = 0; mag = [||] }].

   Base 10000 keeps every intermediate product below 10^8, far within
   native-int range, and makes decimal printing trivial. Performance is
   ample for the formula coefficients this library manipulates. *)

let base = 10_000
let base_digits = 4

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (arrays of limbs, no sign)                        *)
(* ------------------------------------------------------------------ *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  assert (!carry = 0);
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s mod base;
        carry := s / base
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    mag_normalize r
  end

(* Multiply magnitude by a small int (0 <= k < base). *)
let mag_mul_small a k =
  if k = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * k) + !carry in
      r.(i) <- s mod base;
      carry := s / base
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

(* Shift left by [k] limbs (multiply by base^k). *)
let mag_shift a k =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

(* Long division of magnitudes: returns (quotient, remainder).
   Quotient limbs are found by binary search, which is slow-ish but simple
   and obviously correct; divisions in this library are on short numbers. *)
let mag_div_rem a b =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else begin
    let la = Array.length a in
    let q = Array.make la 0 in
    let rem = ref [||] in
    for i = la - 1 downto 0 do
      rem := mag_add (mag_shift !rem 1) (mag_normalize [| a.(i) |]);
      (* binary search for the largest digit d with b*d <= rem *)
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if mag_compare (mag_mul_small b mid) !rem <= 0 then lo := mid else hi := mid - 1
      done;
      q.(i) <- !lo;
      rem := mag_sub !rem (mag_mul_small b !lo)
    done;
    (mag_normalize q, !rem)
  end

(* ------------------------------------------------------------------ *)
(* Construction and normalization                                      *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation is unsafe; go through a list using abs on pieces *)
    let rec limbs n acc = if n = 0 then List.rev acc else limbs (n / base) ((Stdlib.abs (n mod base)) :: acc) in
    { sign; mag = Array.of_list (limbs n []) }
  end

let one = of_int 1
let minus_one = of_int (-1)

let to_int_opt n =
  (* Accumulate negatively so that [min_int] (whose magnitude exceeds
     [max_int]) is representable during the fold. *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc < (min_int + n.mag.(i)) / base then None
    else go (i - 1) ((acc * base) - n.mag.(i))
  in
  match go (Array.length n.mag - 1) 0 with
  | None -> None
  | Some v -> if n.sign >= 0 then (if v = min_int then None else Some (-v)) else Some v

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: value out of native int range"

let sign n = n.sign
let is_zero n = n.sign = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash n = Hashtbl.hash (n.sign, n.mag)

let neg n = if n.sign = 0 then zero else { n with sign = -n.sign }
let abs n = if n.sign < 0 then neg n else n

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)

let sub a b = add a (neg b)
let succ n = add n one
let pred n = sub n one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  let q_mag, r_mag = mag_div_rem a.mag b.mag in
  let q = make (a.sign * b.sign) q_mag in
  let r = make a.sign r_mag in
  (q, r)

let ediv_rem a b =
  let q, r = div_rem a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let div a b = fst (div_rem a b)
let rem a b = snd (div_rem a b)
let erem a b = snd (ediv_rem a b)

let divisible ~by n =
  if is_zero by then invalid_arg "Bigint.divisible: zero divisor";
  is_zero (rem n by)

let rec gcd_mag a b = if is_zero b then a else gcd_mag b (rem a b)
let gcd a b = gcd_mag (abs a) (abs b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else
    let g = gcd a b in
    abs (mul (div a g) b)

let lcm_list = List.fold_left lcm one

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let to_string n =
  if n.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    if n.sign < 0 then Buffer.add_char buf '-';
    let hi = Array.length n.mag - 1 in
    Buffer.add_string buf (string_of_int n.mag.(hi));
    for i = hi - 1 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%0*d" base_digits n.mag.(i))
    done;
    Buffer.contents buf
  end

let pp fmt n = Format.pp_print_string fmt (to_string n)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign_mult, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  String.iteri
    (fun i c ->
      if i >= start && not (c >= '0' && c <= '9') then
        invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c))
    s;
  (* Parse digits in base-10^4 chunks from the right. *)
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  let pos = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = Stdlib.max start (!pos - base_digits) in
    mag.(i) <- int_of_string (String.sub s lo (!pos - lo));
    pos := lo
  done;
  make sign_mult mag

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
  let ( ~- ) = neg
end
