(** Arbitrary-precision signed integers.

    The sealed build environment has no [zarith], but Cooper's algorithm for
    Presburger arithmetic needs exact least-common-multiple arithmetic whose
    intermediate values can overflow native integers. This module provides a
    self-contained sign-magnitude implementation (base 10000 limbs) with the
    operations the rest of the library needs.

    All operations are purely functional. Values are normalized: no leading
    zero limbs, and zero has a unique representation with sign [0]. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val div_rem : t -> t -> t * t
(** Truncated division: [div_rem a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] having the sign of [a] (or zero).
    @raise Division_by_zero when [b] is zero. *)

val ediv_rem : t -> t -> t * t
(** Euclidean division: the remainder satisfies [0 <= r < |b|].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val erem : t -> t -> t

val divisible : by:t -> t -> bool
(** [divisible ~by:d n] is [true] iff [d] divides [n]. [d] must be nonzero. *)

val gcd : t -> t -> t
(** Nonnegative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t
(** Nonnegative least common multiple; [lcm x 0 = 0]. *)

val lcm_list : t list -> t
(** Least common multiple of a list; the LCM of the empty list is [one]. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
  val ( ~- ) : t -> t
end
