lib/numeric/bigint.ml: Array Buffer Format Hashtbl List Printf Stdlib String
