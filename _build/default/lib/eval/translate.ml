module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module State = Fq_db.State
module Schema = Fq_db.Schema
module Relation = Fq_db.Relation

exception Translate_error of string

let formula ~domain ~state f =
  let (module D : Fq_domain.Domain.S) = domain in
  let schema = State.schema state in
  let const_of_value v = Term.Const (D.const_name v) in
  let replace_scheme_consts t =
    (* leaves of terms: scheme constants become domain constants *)
    let rec go t =
      match t with
      | Term.Const c when Term.is_scheme_const c -> (
        match State.constant state c with
        | v -> const_of_value v
        | exception Not_found ->
          raise (Translate_error (Printf.sprintf "scheme constant %s is uninterpreted" c)))
      | Term.Const _ | Term.Var _ -> t
      | Term.App (fn, args) -> Term.App (fn, List.map go args)
    in
    go t
  in
  let expand_atom f =
    match f with
    | Formula.Atom (r, args) when Schema.mem_relation schema r ->
      let rel = State.relation state r in
      let args = List.map replace_scheme_consts args in
      if List.length args <> Relation.arity rel then
        raise
          (Translate_error
             (Printf.sprintf "relation %s used with arity %d, scheme says %d" r
                (List.length args) (Relation.arity rel)))
      else
        (* R(t̄) ⟺ ⋁_{ā ∈ R} ⋀ tᵢ = aᵢ *)
        Formula.disj
          (List.map
             (fun tup ->
               Formula.conj (List.map2 (fun t v -> Formula.Eq (t, const_of_value v)) args tup))
             (Relation.tuples rel))
    | Formula.Atom (p, args) -> Formula.Atom (p, List.map replace_scheme_consts args)
    | Formula.Eq (t, u) -> Formula.Eq (replace_scheme_consts t, replace_scheme_consts u)
    | f -> f
  in
  match Formula.map_atoms expand_atom f with
  | f' -> Ok f'
  | exception Translate_error msg -> Error msg

let active_domain ~domain ~state f =
  let (module D : Fq_domain.Domain.S) = domain in
  let from_state = State.active_domain state in
  let from_query =
    List.filter_map
      (fun c ->
        if Term.is_scheme_const c then
          match State.constant state c with
          | v -> Some v
          | exception Not_found -> None
        else D.constant c)
      (Formula.consts f)
  in
  List.sort_uniq Value.compare (from_state @ from_query)
