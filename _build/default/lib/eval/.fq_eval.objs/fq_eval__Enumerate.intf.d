lib/eval/enumerate.mli: Fq_db Fq_domain Fq_logic Seq
