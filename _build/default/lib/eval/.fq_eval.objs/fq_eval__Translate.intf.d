lib/eval/translate.mli: Fq_db Fq_domain Fq_logic
