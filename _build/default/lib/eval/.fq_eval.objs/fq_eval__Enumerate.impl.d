lib/eval/enumerate.ml: Array Fq_db Fq_domain Fq_logic Fun List Result Seq Translate
