lib/eval/translate.ml: Fq_db Fq_domain Fq_logic List Printf
