(** Reduction of queries over a database state to pure domain formulas —
    the technique of the paper's Section 1.1 (from [AGSS86, GSSS86]): since
    a state is a finite collection of finite relations and every element
    has a constant, each database atom [R(x, y)] can be replaced by
    [(x = a₁ ∧ y = b₁) ∨ … ∨ (x = aᵣ ∧ y = bᵣ)] listing [R]'s tuples, and
    each scheme constant [@c] by the constant of its value. The result is
    a formula the domain's decision procedure can handle. *)

val formula :
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (Fq_logic.Formula.t, string) result
(** Fails when the query mentions a relation missing from the state's
    scheme, a scheme constant without interpretation, or a relation atom
    with the wrong arity. *)

val active_domain :
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  Fq_db.Value.t list
(** The active domain of a query in a state: every value in the state's
    relations and constants plus the domain values denoted by the query's
    own constants (Section 1's definition). *)
