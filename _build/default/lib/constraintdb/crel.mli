(** Finitely representable (possibly infinite) relations over the dense
    order [(ℚ, <)] — the paper's Section 1.2 "way out": accept infinite
    answers, but keep them finitely represented, so that membership and
    emptiness stay decidable even though "we cannot actually generate the
    infinite relations". This is a minimal faithful core of the constraint
    query languages of [KKR90].

    A relation over columns [x₁ … xₖ] is a disjunction of {e cells}, each
    a conjunction of order constraints between variables and rational
    constants. The algebra below is closed: complement by negation-normal
    form, join by conjunction, projection by dense-order quantifier
    elimination. {!is_finite} decides finiteness — the relative safety
    question, decidable here in contrast to the trace domain. *)

type term =
  | V of string
  | C of Rat.t

type op = Lt | Le | Eq | Ne

type atom = { lhs : term; op : op; rhs : term }

type cell = atom list
(** Conjunction. *)

type t
(** A constraint relation: named columns plus a disjunction of cells. *)

val make : columns:string list -> cell list -> t
(** @raise Invalid_argument on duplicate columns or an atom mentioning a
    variable outside the columns. *)

val columns : t -> string list
val cells : t -> cell list

val full : columns:string list -> t
(** All of ℚ^k. *)

val empty : columns:string list -> t

val of_points : columns:string list -> Rat.t list list -> t
(** The finite relation listing the given tuples. *)

val mem : t -> Rat.t list -> bool
(** Membership of a rational tuple (in column order). *)

val sat_cell : cell -> bool
(** Satisfiability of one conjunction of order constraints over ℚ. *)

val is_empty : t -> bool
val union : t -> t -> t
(** @raise Invalid_argument when column lists differ (also [inter], [diff]). *)

val inter : t -> t -> t
val complement : t -> t
val diff : t -> t -> t
val join : t -> t -> t
(** Natural join on shared column names; columns concatenate (shared ones
    kept once, from the left operand). *)

val select : atom -> t -> t

val rename : (string * string) list -> t -> t
(** Simultaneous column renaming. @raise Invalid_argument when a source
    is not a column or two columns collide after renaming. *)

val reorder : columns:string list -> t -> t
(** Permutes the column order. @raise Invalid_argument unless [columns]
    is a permutation of the relation's columns. *)

val project : keep:string list -> t -> t
(** Projection onto a subset of columns: existential quantification of the
    dropped ones, by dense-order quantifier elimination. *)

val is_finite : t -> bool
(** Whether the represented relation is a finite set of points: in every
    satisfiable cell, every column is forced equal to a constant. Over a
    dense order any non-degenerate interval is infinite, so this
    characterization is exact. *)

val enumerate_if_finite : t -> Rat.t list list option
(** The tuple list when {!is_finite}; [None] otherwise. *)

val witness : t -> Rat.t list option
(** Some tuple of the relation, when nonempty. *)

val pp : Format.formatter -> t -> unit
