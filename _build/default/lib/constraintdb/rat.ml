module B = Fq_numeric.Bigint

type t = { num : B.t; den : B.t }
(* Invariant: den > 0, gcd (|num|, den) = 1. *)

let normalize num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  let g = B.gcd num den in
  if B.is_zero g then { num = B.zero; den = B.one }
  else { num = B.div num g; den = B.div den g }

let make num den = normalize num den
let of_int n = { num = B.of_int n; den = B.one }
let of_ints n d = make (B.of_int n) (B.of_int d)
let zero = of_int 0
let one = of_int 1

let num r = r.num
let den r = r.den

let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = compare a b = 0

let add a b = normalize (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let neg a = { a with num = B.neg a.num }
let sub a b = add a (neg b)
let mul a b = normalize (B.mul a.num b.num) (B.mul a.den b.den)

let midpoint a b = normalize (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul (B.of_int 2) (B.mul a.den b.den))

let to_string r =
  if B.equal r.den B.one then B.to_string r.num
  else Printf.sprintf "%s/%s" (B.to_string r.num) (B.to_string r.den)

let of_string s =
  match String.index_opt s '/' with
  | None -> { num = B.of_string s; den = B.one }
  | Some i ->
    let n = String.sub s 0 i in
    let d = String.sub s (i + 1) (String.length s - i - 1) in
    let r = normalize (B.of_string n) (B.of_string d) in
    r

let pp fmt r = Format.pp_print_string fmt (to_string r)
