lib/constraintdb/crel.mli: Format Rat
