lib/constraintdb/rat.ml: Format Fq_numeric Printf String
