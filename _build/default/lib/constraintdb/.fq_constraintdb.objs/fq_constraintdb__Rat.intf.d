lib/constraintdb/rat.mli: Format Fq_numeric
