lib/constraintdb/ceval.mli: Crel Fq_logic Rat
