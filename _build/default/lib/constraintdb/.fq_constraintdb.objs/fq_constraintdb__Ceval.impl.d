lib/constraintdb/ceval.ml: Crel Fq_logic List Printf Rat Result
