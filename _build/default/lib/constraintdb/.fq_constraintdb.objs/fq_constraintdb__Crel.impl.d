lib/constraintdb/crel.ml: Array Format Fun List Map Option Printf Rat String
