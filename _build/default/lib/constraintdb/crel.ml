type term =
  | V of string
  | C of Rat.t

type op = Lt | Le | Eq | Ne

type atom = { lhs : term; op : op; rhs : term }

type cell = atom list

type t = { columns : string list; cells : cell list }

let columns r = r.columns
let cells r = r.cells

let atom_vars a =
  List.filter_map (function V x -> Some x | C _ -> None) [ a.lhs; a.rhs ]

let make ~columns cells =
  if List.length columns <> List.length (List.sort_uniq compare columns) then
    invalid_arg "Crel.make: duplicate columns";
  List.iter
    (fun cell ->
      List.iter
        (fun a ->
          List.iter
            (fun x ->
              if not (List.mem x columns) then
                invalid_arg (Printf.sprintf "Crel.make: variable %s is not a column" x))
            (atom_vars a))
        cell)
    cells;
  { columns; cells }

let full ~columns = { columns; cells = [ [] ] }
let empty ~columns = { columns; cells = [] }

let of_points ~columns points =
  let cell_of point =
    if List.length point <> List.length columns then
      invalid_arg "Crel.of_points: tuple arity mismatch";
    List.map2 (fun x v -> { lhs = V x; op = Eq; rhs = C v }) columns point
  in
  make ~columns (List.map cell_of points)

(* ------------------------------------------------------------------ *)
(* Cell analysis: union-find on terms, order closure with strictness.  *)
(* ------------------------------------------------------------------ *)

module Tmap = Map.Make (struct
  type t = term

  let compare = compare
end)

type reach = No | Through_le | Through_lt

type analysis = {
  sat : bool;
  reps : term array;  (** representative terms of the classes *)
  value : Rat.t option array;  (** constant value of a class, if pinned to one *)
  reach : reach array array;  (** order closure between classes *)
  cls : term -> int;  (** class index of a term of the cell *)
  nes : (int * int) list;  (** disequality constraints between classes *)
}

let analyze (cell : cell) : analysis =
  let terms =
    List.concat_map (fun a -> [ a.lhs; a.rhs ]) cell |> List.sort_uniq compare
  in
  (* union-find on term indices *)
  let index = List.mapi (fun i t -> (t, i)) terms |> List.to_seq |> Tmap.of_seq in
  let n = List.length terms in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let root = find parent.(i) in
      parent.(i) <- root;
      root
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let idx t = Tmap.find t index in
  List.iter (fun a -> if a.op = Eq then union (idx a.lhs) (idx a.rhs)) cell;
  (* classes *)
  let roots = List.sort_uniq compare (List.init n find) in
  let class_of = Array.make n 0 in
  List.iteri (fun ci root -> List.iteri (fun i _ -> if find i = root then class_of.(i) <- ci) terms) roots;
  let k = List.length roots in
  let reps = Array.make (max k 1) (C Rat.zero) in
  List.iteri (fun i t -> reps.(class_of.(i)) <- t) terms;
  let value = Array.make (max k 1) None in
  let ok = ref true in
  List.iteri
    (fun i t ->
      match t with
      | C v -> (
        let c = class_of.(i) in
        match value.(c) with
        | None -> value.(c) <- Some v
        | Some v' -> if not (Rat.equal v v') then ok := false)
      | V _ -> ())
    terms;
  (* edges with strictness *)
  let reach = Array.make_matrix (max k 1) (max k 1) No in
  let add_edge i j r =
    let better a b =
      match (a, b) with
      | Through_lt, _ | _, Through_lt -> Through_lt
      | Through_le, _ | _, Through_le -> Through_le
      | No, No -> No
    in
    reach.(i).(j) <- better reach.(i).(j) r
  in
  List.iter
    (fun a ->
      let i = class_of.(idx a.lhs) and j = class_of.(idx a.rhs) in
      match a.op with
      | Lt -> add_edge i j Through_lt
      | Le -> add_edge i j Through_le
      | Eq | Ne -> ())
    cell;
  (* numeric facts between constant classes *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      match (value.(i), value.(j)) with
      | Some a, Some b when Rat.compare a b < 0 -> add_edge i j Through_lt
      | _ -> ()
    done
  done;
  (* Warshall closure, strictness-propagating *)
  for m = 0 to k - 1 do
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        let via =
          match (reach.(i).(m), reach.(m).(j)) with
          | No, _ | _, No -> No
          | Through_lt, _ | _, Through_lt -> Through_lt
          | Through_le, Through_le -> Through_le
        in
        match (via, reach.(i).(j)) with
        | No, _ -> ()
        | Through_lt, Through_lt -> ()
        | Through_lt, _ -> reach.(i).(j) <- Through_lt
        | Through_le, No -> reach.(i).(j) <- Through_le
        | Through_le, _ -> ()
      done
    done
  done;
  for i = 0 to k - 1 do
    if reach.(i).(i) = Through_lt then ok := false
  done;
  let nes =
    List.filter_map
      (fun a ->
        if a.op = Ne then Some (class_of.(idx a.lhs), class_of.(idx a.rhs)) else None)
      cell
  in
  List.iter
    (fun (i, j) ->
      if i = j then ok := false
      else if reach.(i).(j) <> No && reach.(j).(i) <> No then
        (* both directions weakly reachable forces equality *)
        ok := false)
    nes;
  { sat = !ok; reps; value; reach; cls = (fun t -> class_of.(idx t)); nes }

let sat_cell cell = (analyze cell).sat

(* forced-equal-to-a-constant test for a term of a satisfiable cell *)
let pinned_value (a : analysis) ci =
  match a.value.(ci) with
  | Some v -> Some v
  | None ->
    let k = Array.length a.reps in
    let rec go j =
      if j >= k then None
      else
        match a.value.(j) with
        | Some v when a.reach.(ci).(j) <> No && a.reach.(j).(ci) <> No -> Some v
        | _ -> go (j + 1)
    in
    go 0

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

let eval_term env = function
  | C v -> v
  | V x -> List.assoc x env

let holds_atom env a =
  let l = eval_term env a.lhs and r = eval_term env a.rhs in
  match a.op with
  | Lt -> Rat.compare l r < 0
  | Le -> Rat.compare l r <= 0
  | Eq -> Rat.equal l r
  | Ne -> not (Rat.equal l r)

let mem r tuple =
  if List.length tuple <> List.length r.columns then
    invalid_arg "Crel.mem: arity mismatch";
  let env = List.combine r.columns tuple in
  List.exists (fun cell -> List.for_all (holds_atom env) cell) r.cells

let is_empty r = not (List.exists sat_cell r.cells)

(* ------------------------------------------------------------------ *)
(* Boolean operations                                                  *)
(* ------------------------------------------------------------------ *)

let same_columns op a b =
  if a.columns <> b.columns then
    invalid_arg (Printf.sprintf "Crel.%s: column mismatch" op)

let union a b =
  same_columns "union" a b;
  { a with cells = a.cells @ b.cells }

let inter a b =
  same_columns "inter" a b;
  { a with cells = List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b.cells) a.cells }

let negate_atom a =
  match a.op with
  | Lt -> { lhs = a.rhs; op = Le; rhs = a.lhs }
  | Le -> { lhs = a.rhs; op = Lt; rhs = a.lhs }
  | Eq -> { a with op = Ne }
  | Ne -> { a with op = Eq }

let complement r =
  (* ¬(⋁ cells) = ⋀ (⋁ ¬atom): distribute into DNF *)
  let rec go = function
    | [] -> [ [] ] (* complement of empty union is everything *)
    | cell :: rest ->
      let rest' = go rest in
      List.concat_map
        (fun a -> List.map (fun c -> negate_atom a :: c) rest')
        cell
  in
  { r with cells = List.filter sat_cell (go r.cells) }

let diff a b =
  same_columns "diff" a b;
  inter a (complement b)

let join a b =
  let cols = a.columns @ List.filter (fun c -> not (List.mem c a.columns)) b.columns in
  { columns = cols;
    cells = List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b.cells) a.cells }

let rename mapping r =
  let rename_col c = match List.assoc_opt c mapping with Some c' -> c' | None -> c in
  List.iter
    (fun (src, _) ->
      if not (List.mem src r.columns) then
        invalid_arg (Printf.sprintf "Crel.rename: %s is not a column" src))
    mapping;
  let columns = List.map rename_col r.columns in
  if List.length columns <> List.length (List.sort_uniq compare columns) then
    invalid_arg "Crel.rename: columns collide";
  let rename_term = function V x -> V (rename_col x) | t -> t in
  let cells =
    List.map
      (List.map (fun a -> { a with lhs = rename_term a.lhs; rhs = rename_term a.rhs }))
      r.cells
  in
  { columns; cells }

let reorder ~columns r =
  if List.sort compare columns <> List.sort compare r.columns then
    invalid_arg "Crel.reorder: not a permutation of the columns";
  { r with columns }

let select atom r =
  List.iter
    (fun x ->
      if not (List.mem x r.columns) then
        invalid_arg (Printf.sprintf "Crel.select: variable %s is not a column" x))
    (atom_vars atom);
  { r with cells = List.map (fun c -> atom :: c) r.cells }

(* ------------------------------------------------------------------ *)
(* Projection: dense-order quantifier elimination                      *)
(* ------------------------------------------------------------------ *)

let subst_term x t = function V y when y = x -> t | u -> u

let subst_atom x t a = { a with lhs = subst_term x t a.lhs; rhs = subst_term x t a.rhs }

let mentions_x x a = List.mem x (atom_vars a)

(* eliminate variable x from one cell; returns a list of cells *)
let rec eliminate_var x cell =
  let x_atoms, rest = List.partition (mentions_x x) cell in
  if x_atoms = [] then [ cell ]
  else
    (* split disequalities on x into strict alternatives first *)
    match List.find_opt (fun a -> a.op = Ne) x_atoms with
    | Some a ->
      let others = List.filter (fun b -> b <> a) cell in
      eliminate_var x ({ a with op = Lt } :: others)
      @ eliminate_var x ({ lhs = a.rhs; op = Lt; rhs = a.lhs } :: others)
    | None -> (
      (* an equality pins x *)
      match
        List.find_opt
          (fun a ->
            a.op = Eq && ((a.lhs = V x && a.rhs <> V x) || (a.rhs = V x && a.lhs <> V x)))
          x_atoms
      with
      | Some a ->
        let t = if a.lhs = V x then a.rhs else a.lhs in
        [ List.filter_map
            (fun b -> if b = a then None else Some (subst_atom x t b))
            cell ]
      | None ->
        (* trivial atoms x op x *)
        let trivial, x_atoms =
          List.partition (fun a -> a.lhs = V x && a.rhs = V x) x_atoms
        in
        if List.exists (fun a -> a.op = Lt) trivial then [] (* x < x *)
        else begin
          (* Fourier–Motzkin over the dense order: lowers t <(=) x,
             uppers x <(=) u; pairwise combination is exact over ℚ *)
          let lowers =
            List.filter_map
              (fun a ->
                if a.rhs = V x then Some (a.lhs, a.op = Lt)
                else None)
              x_atoms
          in
          let uppers =
            List.filter_map
              (fun a -> if a.lhs = V x then Some (a.rhs, a.op = Lt) else None)
              x_atoms
          in
          let combined =
            List.concat_map
              (fun (l, sl) ->
                List.map
                  (fun (u, su) -> { lhs = l; op = (if sl || su then Lt else Le); rhs = u })
                  uppers)
              lowers
          in
          [ combined @ rest ]
        end)

let project ~keep r =
  List.iter
    (fun x ->
      if not (List.mem x r.columns) then
        invalid_arg (Printf.sprintf "Crel.project: %s is not a column" x))
    keep;
  let drop = List.filter (fun c -> not (List.mem c keep)) r.columns in
  let cells =
    List.fold_left
      (fun cells x -> List.concat_map (eliminate_var x) cells)
      r.cells drop
  in
  { columns = List.filter (fun c -> List.mem c keep) r.columns; cells = List.filter sat_cell cells }

(* ------------------------------------------------------------------ *)
(* Finiteness and witnesses                                            *)
(* ------------------------------------------------------------------ *)

let cell_finite columns cell =
  let a = analyze cell in
  if not a.sat then true
  else
    List.for_all
      (fun x ->
        (* a column never mentioned is unconstrained, hence infinite *)
        match List.exists (fun at -> List.mem x (atom_vars at)) cell with
        | false -> false
        | true -> Option.is_some (pinned_value a (a.cls (V x))))
      columns

let is_finite r = List.for_all (cell_finite r.columns) r.cells

(* Construct some satisfying assignment of a satisfiable cell. *)
let cell_witness columns cell =
  let a = analyze cell in
  if not a.sat then None
  else begin
    let k = Array.length a.reps in
    let constrained x = List.exists (fun at -> List.mem x (atom_vars at)) cell in
    let assignment = Array.make k None in
    for i = 0 to k - 1 do
      assignment.(i) <- pinned_value a i
    done;
    (* order the classes: weakly-mutually-reachable classes share values;
       process in an order compatible with the strict closure *)
    let order = List.init k Fun.id in
    let order =
      List.sort
        (fun i j ->
          if i = j then 0
          else if a.reach.(i).(j) <> No && a.reach.(j).(i) = No then -1
          else if a.reach.(j).(i) <> No && a.reach.(i).(j) = No then 1
          else 0)
        order
    in
    let avoid_of i =
      List.filter_map
        (fun (p, q) ->
          if p = i then assignment.(q)
          else if q = i then assignment.(p)
          else None)
        a.nes
    in
    let pick ~lo ~hi avoid =
      (* a rational in the (open-as-needed) interval avoiding a finite set *)
      let base =
        match (lo, hi) with
        | None, None -> Rat.zero
        | Some (l, _), None -> Rat.add l Rat.one
        | None, Some (h, _) -> Rat.sub h Rat.one
        | Some (l, ls), Some (h, hs) ->
          if Rat.equal l h then (if ls || hs then (* empty interior *) l else l)
          else Rat.midpoint l h
      in
      let rec adjust v guard =
        if guard <= 0 then v
        else if List.exists (Rat.equal v) avoid then
          let v' =
            match (lo, hi) with
            | Some (l, _), Some (h, _) when not (Rat.equal l h) -> Rat.midpoint v h
            | _, None -> Rat.add v Rat.one
            | None, _ -> Rat.sub v Rat.one
            | _ -> v
          in
          adjust v' (guard - 1)
        else v
      in
      adjust base 64
    in
    List.iter
      (fun i ->
        if assignment.(i) = None then begin
          let lo = ref None and hi = ref None in
          for j = 0 to k - 1 do
            if j <> i then begin
              (match (a.reach.(j).(i), assignment.(j)) with
              | No, _ | _, None -> ()
              | r, Some v ->
                let strict = r = Through_lt in
                (match !lo with
                | Some (l, _) when Rat.compare v l <= 0 -> ()
                | _ -> lo := Some (v, strict)));
              match (a.reach.(i).(j), assignment.(j)) with
              | No, _ | _, None -> ()
              | r, Some v -> (
                let strict = r = Through_lt in
                match !hi with
                | Some (h, _) when Rat.compare v h >= 0 -> ()
                | _ -> hi := Some (v, strict))
            end
          done;
          assignment.(i) <- Some (pick ~lo:!lo ~hi:!hi (avoid_of i))
        end)
      order;
    let value_of x =
      if constrained x then
        match assignment.(a.cls (V x)) with Some v -> v | None -> Rat.zero
      else Rat.zero
    in
    let tuple = List.map value_of columns in
    (* the greedy order can, in rare forced-equality corner cases, violate
       a disequality; only return verified witnesses *)
    let env = List.combine columns tuple in
    if List.for_all (holds_atom env) cell then Some tuple else None
  end

let witness r =
  let rec go = function
    | [] -> None
    | cell :: rest -> (
      match cell_witness r.columns cell with
      | Some tuple -> Some tuple
      | None -> go rest)
  in
  go r.cells

let enumerate_if_finite r =
  if not (is_finite r) then None
  else
    Some
      (List.filter_map
         (fun cell ->
           let a = analyze cell in
           if not a.sat then None
           else
             Some
               (List.map
                  (fun x ->
                    match pinned_value a (a.cls (V x)) with
                    | Some v -> v
                    | None -> assert false)
                  r.columns))
         r.cells
      |> List.sort_uniq compare)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_term fmt = function
  | V x -> Format.pp_print_string fmt x
  | C v -> Rat.pp fmt v

let op_string = function Lt -> "<" | Le -> "<=" | Eq -> "=" | Ne -> "!="

let pp_atom fmt a = Format.fprintf fmt "%a %s %a" pp_term a.lhs (op_string a.op) pp_term a.rhs

let pp fmt r =
  Format.fprintf fmt "@[<v>(%s):@," (String.concat ", " r.columns);
  if r.cells = [] then Format.fprintf fmt "  false@,"
  else
    List.iter
      (fun cell ->
        if cell = [] then Format.fprintf fmt "  | true@,"
        else
          Format.fprintf fmt "  | %a@,"
            (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " & ") pp_atom)
            cell)
      r.cells;
  Format.fprintf fmt "@]"
