(** Arbitrary-precision rational numbers — the dense countable order
    underlying the constraint-database layer (Section 1.2 / [KKR90]).
    Values are kept normalized: positive denominator, coprime
    numerator/denominator. *)

type t

val zero : t
val one : t
val make : Fq_numeric.Bigint.t -> Fq_numeric.Bigint.t -> t
(** [make num den]. @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Fq_numeric.Bigint.t
val den : t -> Fq_numeric.Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val midpoint : t -> t -> t
(** Strictly between its arguments when they differ — density. *)

val of_string : string -> t
(** ["-3"], ["1/2"], ["-7/3"]. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
