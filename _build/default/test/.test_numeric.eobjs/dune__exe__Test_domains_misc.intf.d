test/test_domains_misc.mli:
