test/test_words.ml: Alcotest Format Fq_words List Printf QCheck QCheck_alcotest Seq String
