test/test_constraintdb.mli:
