test/test_eval.ml: Alcotest Format Fq_db Fq_domain Fq_eval Fq_logic List Relation Result Schema Seq State Value
