test/test_traces_domain.mli:
