test/test_integration.ml: Alcotest Format Fq_db Fq_domain Fq_eval Fq_logic Fq_numeric Fq_safety Fq_tm List Printf QCheck QCheck_alcotest Relalg Relation Schema Seq State Value
