test/test_domains_numeric.ml: Alcotest Cooper Eq_domain Fq_domain Fq_logic Fq_numeric List Nat_order Nat_succ Presburger Printf QCheck QCheck_alcotest
