test/test_words.mli:
