test/test_traces_domain.ml: Alcotest Fq_domain Fq_logic Fq_tm Fq_words List Option Printf QCheck QCheck_alcotest Reach Reach_qe Result String Traces
