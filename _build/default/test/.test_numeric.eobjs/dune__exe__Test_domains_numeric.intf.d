test/test_domains_numeric.mli:
