test/test_numeric.ml: Alcotest Fq_numeric List QCheck QCheck_alcotest String
