test/test_domains_misc.ml: Alcotest Arithmetic Eq_domain Extension Fq_db Fq_domain Fq_logic Fq_safety List Result Seq Traces
