test/test_tm.ml: Alcotest Builder Classify Combine Encode Explain Format Fq_tm Fq_words Hashtbl List Machine Option Printf QCheck QCheck_alcotest Result Run Seq String Tape Trace Zoo
