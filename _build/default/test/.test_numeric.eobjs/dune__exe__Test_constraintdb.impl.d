test/test_constraintdb.ml: Alcotest Crel Fq_constraintdb Fq_logic Fq_numeric List Option QCheck QCheck_alcotest Rat Result
