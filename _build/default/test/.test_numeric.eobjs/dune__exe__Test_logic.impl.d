test/test_logic.ml: Alcotest Formula Fq_logic List Parser Printf QCheck QCheck_alcotest Result Term Transform
