test/test_db.ml: Alcotest Codec Fq_db Fq_numeric List Relalg Relation Result Schema State Value
