Decide sentences over the built-in domains (Corollary A.4 and Section 2):

  $ ../../bin/fq.exe decide -d presburger "forall x. exists y. x < y"
  true
  $ ../../bin/fq.exe decide -d presburger "exists x. x + x = 7"
  false
  $ ../../bin/fq.exe decide -d nat_succ "exists y. forall x. x' != y"
  true
  $ ../../bin/fq.exe decide -d equality "exists x y z. x != y /\ y != z /\ x != z"
  true

The safe-range syntax (Section 1.4):

  $ ../../bin/fq.exe safety -s F/2 "exists y. F(x, y)"
  safe-range: the query is finite in every state
  $ ../../bin/fq.exe safety -s F/2 "~F(x, y)"
  not safe-range: free variable(s) x, y are not range-restricted

Evaluation and relative safety in a state (Sections 1.1 and 1.3):

  $ ../../bin/fq.exe eval -d equality -r "F/2=adam,cain;adam,abel" "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  finite answer (1 tuples): {("adam")}
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ x < y"
  finite in this state
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ y < x"
  INFINITE in this state

The full report:

  $ ../../bin/fq.exe report -d equality -r "F/2=a,b;b,c" "exists y. F(x, y) /\ F(y, z)"
  query: exists y. F(x, y) /\ F(y, z)
  syntactic: safe-range (finite in every state)
  in this state: finite
  answer (ranf-algebra, 1 tuples): {("a", "c")}
  

Turing machines of the trace domain (Section 3):

  $ ../../bin/fq.exe tm -m scan_right -w 111
  halts after 3 steps; result "111"
  $ ../../bin/fq.exe tm -m loop -w 1 --fuel 100
  still running after 100 steps
  $ ../../bin/fq.exe tm -m scan_right -w 11 --explain
  halts after 2 steps; result "11"
  trace of machine "*1**1*1" on input "11" (3 snapshots)
     0: state q1   | tape [1]1
     1: state q1   | tape 1[1]
     2: state q1   | tape 11[-]

The Theorem 3.3 reduction:

  $ ../../bin/fq.exe halting -m parity -w 11
  the machine halts after 2 steps: the query P(M, @c, x) is finite in the state c = "11", with 3 certified answer tuples
