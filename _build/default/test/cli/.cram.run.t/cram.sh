  $ ../../bin/fq.exe decide -d presburger "forall x. exists y. x < y"
  $ ../../bin/fq.exe decide -d presburger "exists x. x + x = 7"
  $ ../../bin/fq.exe decide -d nat_succ "exists y. forall x. x' != y"
  $ ../../bin/fq.exe decide -d equality "exists x y z. x != y /\ y != z /\ x != z"
  $ ../../bin/fq.exe safety -s F/2 "exists y. F(x, y)"
  $ ../../bin/fq.exe safety -s F/2 "~F(x, y)"
  $ ../../bin/fq.exe eval -d equality -r "F/2=adam,cain;adam,abel" "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ x < y"
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ y < x"
  $ ../../bin/fq.exe report -d equality -r "F/2=a,b;b,c" "exists y. F(x, y) /\ F(y, z)"
  $ ../../bin/fq.exe tm -m scan_right -w 111
  $ ../../bin/fq.exe tm -m loop -w 1 --fuel 100
  $ ../../bin/fq.exe tm -m scan_right -w 11 --explain
  $ ../../bin/fq.exe halting -m parity -w 11
