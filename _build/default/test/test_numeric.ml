(* Tests for Fq_numeric.Bigint: unit tests on corner cases plus qcheck
   properties cross-checking against native int arithmetic. *)

module B = Fq_numeric.Bigint

let b = B.of_int
let check_b msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

(* ------------------------------ units ------------------------------ *)

let test_of_to_string () =
  List.iter
    (fun s -> Alcotest.(check string) s s B.(to_string (of_string s)))
    [ "0"; "1"; "-1"; "9999"; "10000"; "-10000"; "123456789012345678901234567890";
      "-99999999999999999999" ];
  check_b "+42 parses" "42" (B.of_string "+42");
  check_b "leading zeros" "7" (B.of_string "007");
  check_b "negative leading zeros" "-7" (B.of_string "-0007");
  check_b "zero with zeros" "0" (B.of_string "000")

let test_of_string_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "expected") (fun () ->
          try ignore (B.of_string s)
          with Invalid_argument _ -> raise (Invalid_argument "expected")))
    [ ""; "-"; "+"; "12a"; " 12"; "1 2" ]

let test_arith_corner_cases () =
  check_b "0+0" "0" B.(add zero zero);
  check_b "1+(-1)" "0" (B.add B.one B.minus_one);
  check_b "carry" "10000" (B.add (b 9999) B.one);
  check_b "borrow" "9999" (B.sub (b 10000) B.one);
  check_b "big mul"
    "15241578753238836750495351562536198787501905199875019052100"
    B.(mul (of_string "123456789012345678901234567890")
         (of_string "123456789012345678901234567890"));
  check_b "neg mul" "-6" (B.mul (b 2) (b (-3)));
  check_b "sub to negative" "-5" (B.sub (b 5) (b 10))

let test_div_rem () =
  let q, r = B.div_rem (b 7) (b 2) in
  check_b "7/2 q" "3" q;
  check_b "7/2 r" "1" r;
  let q, r = B.div_rem (b (-7)) (b 2) in
  check_b "-7/2 q (truncated)" "-3" q;
  check_b "-7/2 r (sign of dividend)" "-1" r;
  let q, r = B.ediv_rem (b (-7)) (b 2) in
  check_b "-7/2 eq" "-4" q;
  check_b "-7/2 er (nonnegative)" "1" r;
  let q, r = B.ediv_rem (b (-7)) (b (-2)) in
  check_b "-7/-2 eq" "4" q;
  check_b "-7/-2 er" "1" r;
  let q, r =
    B.div_rem (B.of_string "100000000000000000000000001") (B.of_string "99999999999")
  in
  check_b "long division q" "1000000000010000" q;
  check_b "long division r" "10001" r;
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.div_rem B.one B.zero))

let test_gcd_lcm () =
  check_b "gcd 12 18" "6" (B.gcd (b 12) (b 18));
  check_b "gcd negative" "6" (B.gcd (b (-12)) (b 18));
  check_b "gcd 0 5" "5" (B.gcd B.zero (b 5));
  check_b "gcd 0 0" "0" (B.gcd B.zero B.zero);
  check_b "lcm 4 6" "12" (B.lcm (b 4) (b 6));
  check_b "lcm with 0" "0" (B.lcm (b 4) B.zero);
  check_b "lcm negative" "12" (B.lcm (b (-4)) (b 6));
  check_b "lcm_list" "60" (B.lcm_list [ b 4; b 6; b 5 ]);
  check_b "lcm_list empty" "1" (B.lcm_list [])

let test_pow () =
  check_b "2^10" "1024" (B.pow (b 2) 10);
  check_b "10^30" ("1" ^ String.make 30 '0') (B.pow (b 10) 30);
  check_b "x^0" "1" (B.pow (b 999) 0);
  check_b "(-2)^3" "-8" (B.pow (b (-2)) 3)

let test_to_int () =
  Alcotest.(check (option int)) "roundtrip" (Some 123456) (B.to_int_opt (b 123456));
  Alcotest.(check (option int)) "negative" (Some (-42)) (B.to_int_opt (b (-42)));
  Alcotest.(check (option int)) "max_int" (Some max_int) (B.to_int_opt (b max_int));
  Alcotest.(check (option int)) "min_int" (Some min_int) (B.to_int_opt (b min_int));
  Alcotest.(check (option int))
    "overflow" None
    (B.to_int_opt (B.mul (b max_int) (b 100)));
  Alcotest.(check (option int))
    "underflow" None
    (B.to_int_opt (B.mul (b min_int) (b 100)))

let test_compare () =
  Alcotest.(check bool) "1 < 2" true B.(compare one (b 2) < 0);
  Alcotest.(check bool) "-2 < 1" true B.(compare (b (-2)) one < 0);
  Alcotest.(check bool) "-2 < -1" true B.(compare (b (-2)) (b (-1)) < 0);
  Alcotest.(check bool) "equal" true (B.equal (b 42) (B.of_string "42"));
  Alcotest.(check int) "sign neg" (-1) (B.sign (b (-5)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  check_b "min" "-3" (B.min (b 5) (b (-3)));
  check_b "max" "5" (B.max (b 5) (b (-3)))

let test_divisible () =
  Alcotest.(check bool) "3 | 9" true (B.divisible ~by:(b 3) (b 9));
  Alcotest.(check bool) "3 | 10" false (B.divisible ~by:(b 3) (b 10));
  Alcotest.(check bool) "3 | -9" true (B.divisible ~by:(b 3) (b (-9)));
  Alcotest.(check bool) "-3 | 9" true (B.divisible ~by:(b (-3)) (b 9));
  Alcotest.(check bool) "anything | 0" true (B.divisible ~by:(b 7) B.zero)

(* --------------------------- properties ---------------------------- *)

let small_int = QCheck.int_range (-100000) 100000

let prop_roundtrip =
  QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:500 QCheck.int (fun n ->
      B.to_int_opt (b n) = Some n)

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches native int" ~count:1000
    (QCheck.pair small_int small_int)
    (fun (x, y) -> B.to_int_opt (B.add (b x) (b y)) = Some (x + y))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches native int" ~count:1000
    (QCheck.pair small_int small_int)
    (fun (x, y) -> B.to_int_opt (B.mul (b x) (b y)) = Some (x * y))

let prop_div_rem_matches_int =
  QCheck.Test.make ~name:"div_rem matches native int" ~count:1000
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      B.to_int_opt (B.div (b x) (b y)) = Some (x / y)
      && B.to_int_opt (B.rem (b x) (b y)) = Some (x mod y))

let prop_div_rem_law =
  QCheck.Test.make ~name:"a = q*b + r and |r| < |b|" ~count:1000
    (QCheck.pair (QCheck.map B.of_string (QCheck.Gen.map (fun n -> string_of_int n) QCheck.Gen.int |> QCheck.make))
       small_int)
    (fun (a, y) ->
      QCheck.assume (y <> 0);
      let bb = b y in
      let q, r = B.div_rem a bb in
      B.equal a (B.add (B.mul q bb) r) && B.compare (B.abs r) (B.abs bb) < 0)

let prop_ediv_nonneg =
  QCheck.Test.make ~name:"euclidean remainder in [0, |b|)" ~count:1000
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let q, r = B.ediv_rem (b x) (b y) in
      B.sign r >= 0
      && B.compare r (B.abs (b y)) < 0
      && B.equal (b x) (B.add (B.mul q (b y)) r))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:500 (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (x <> 0 || y <> 0);
      let g = B.gcd (b x) (b y) in
      B.divisible ~by:g (b x) && B.divisible ~by:g (b y))

let prop_lcm_is_multiple =
  QCheck.Test.make ~name:"lcm is a common multiple" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (x <> 0 && y <> 0);
      let l = B.lcm (b x) (b y) in
      B.divisible ~by:(b x) l && B.divisible ~by:(b y) l)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:500
    (QCheck.triple small_int small_int small_int)
    (fun (x, y, z) ->
      (* build a biggish number out of three smalls *)
      let n = B.add (B.mul (B.mul (b x) (b y)) (b 1_000_000_007)) (b z) in
      B.equal n (B.of_string (B.to_string n)))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) -> B.compare (b x) (b y) = -B.compare (b y) (b x))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_add_matches_int; prop_mul_matches_int; prop_div_rem_matches_int;
      prop_div_rem_law; prop_ediv_nonneg; prop_gcd_divides; prop_lcm_is_multiple;
      prop_string_roundtrip; prop_compare_antisym ]

let () =
  Alcotest.run "fq_numeric"
    [ ( "bigint",
        [ Alcotest.test_case "of_string/to_string" `Quick test_of_to_string;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "arithmetic corner cases" `Quick test_arith_corner_cases;
          Alcotest.test_case "div_rem" `Quick test_div_rem;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "to_int bounds" `Quick test_to_int;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "divisible" `Quick test_divisible ] );
      ("bigint properties", qcheck_cases) ]
