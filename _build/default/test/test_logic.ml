(* Tests for Fq_logic: terms, formulas, parser, printer, transforms. *)

open Fq_logic

let fml = Alcotest.testable Formula.pp Formula.equal
let trm = Alcotest.testable Term.pp Term.equal

let parse s = Parser.formula_exn s

let parse_term s =
  match Parser.term s with Ok t -> t | Error e -> Alcotest.failf "term %S: %s" s e

(* ------------------------------ terms ------------------------------ *)

let test_term_basics () =
  let t = parse_term "f(x, g(y, x), 3)" in
  Alcotest.(check (list string)) "vars in order" [ "x"; "y" ] (Term.vars t);
  Alcotest.(check (list string)) "consts" [ "3" ] (Term.consts t);
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  Alcotest.(check bool) "ground" true (Term.is_ground (parse_term "f(1, 2)"));
  Alcotest.(check int) "size" 6 (Term.size t);
  Alcotest.check trm "subst"
    (parse_term "f(1, g(y, 1), 3)")
    (Term.subst [ ("x", Term.Const "1") ] t)

let test_term_subst_const () =
  let t = parse_term "f(@c, x)" in
  Alcotest.check trm "replace scheme constant"
    (parse_term "f(z, x)")
    (Term.subst_const "@c" (Term.Var "z") t)

(* ----------------------------- parsing ----------------------------- *)

let test_parse_basic () =
  Alcotest.check fml "conjunction"
    (Formula.And (Formula.Atom ("F", [ Term.Var "x" ]), Formula.Atom ("G", [ Term.Var "y" ])))
    (parse "F(x) /\\ G(y)");
  Alcotest.check fml "ascii and" (parse "F(x) /\\ G(y)") (parse "F(x) & G(y)");
  Alcotest.check fml "keyword and" (parse "F(x) /\\ G(y)") (parse "F(x) and G(y)");
  Alcotest.check fml "neq sugar" (Formula.Not (Formula.Eq (Term.Var "x", Term.Var "y")))
    (parse "x != y");
  Alcotest.check fml "neq <>" (parse "x != y") (parse "x <> y")

let test_parse_precedence () =
  (* ~ binds tighter than /\ than \/ than -> than <-> *)
  Alcotest.check fml "not and"
    (Formula.And (Formula.Not (parse "F(x)"), parse "G(x)"))
    (parse "~F(x) /\\ G(x)");
  Alcotest.check fml "and or"
    (Formula.Or (Formula.And (parse "F(x)", parse "G(x)"), parse "H(x)"))
    (parse "F(x) /\\ G(x) \\/ H(x)");
  Alcotest.check fml "imp right assoc"
    (Formula.Imp (parse "F(x)", Formula.Imp (parse "G(x)", parse "H(x)")))
    (parse "F(x) -> G(x) -> H(x)");
  Alcotest.check fml "iff weakest"
    (Formula.Iff (parse "F(x)", Formula.Imp (parse "G(x)", parse "H(x)")))
    (parse "F(x) <-> G(x) -> H(x)")

let test_parse_quantifiers () =
  Alcotest.check fml "multi-var"
    (Formula.Exists ("x", Formula.Exists ("y", parse "F(x, y)")))
    (parse "exists x y. F(x, y)");
  Alcotest.check fml "scope extends right"
    (Formula.Forall ("x", Formula.Imp (parse "F(x)", parse "G(x)")))
    (parse "forall x. F(x) -> G(x)");
  (* the paper's M(x): exists y z (y != z /\ F(x,y) /\ F(x,z)) *)
  let m = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  Alcotest.(check (list string)) "free vars of M(x)" [ "x" ] (Formula.free_vars m)

let test_parse_terms_in_atoms () =
  Alcotest.check fml "arithmetic"
    (Formula.Atom
       ( "<",
         [ Term.App ("+", [ Term.Var "x"; Term.Const "1" ]); Term.Var "y" ] ))
    (parse "x + 1 < y");
  Alcotest.check fml "successor postfix"
    (Formula.Eq (Term.App ("s", [ Term.Var "x" ]), Term.Var "y"))
    (parse "x' = y");
  Alcotest.check fml "double successor"
    (Formula.Eq (Term.App ("s", [ Term.App ("s", [ Term.Var "x" ]) ]), Term.Var "y"))
    (parse "x'' = y");
  Alcotest.check fml "divisibility"
    (Formula.Atom ("dvd", [ Term.Const "2"; Term.Var "x" ]))
    (parse "2 | x");
  Alcotest.check fml "parenthesized term on the left"
    (Formula.Eq (Term.App ("+", [ Term.Var "x"; Term.Var "y" ]), Term.Var "z"))
    (parse "(x + y) = z");
  Alcotest.check fml "string constant"
    (Formula.Atom ("P", [ Term.Const "1*1"; Term.Const ""; Term.Var "p" ]))
    (parse "P(\"1*1\", \"\", p)");
  Alcotest.check fml "scheme constant"
    (Formula.Atom ("P", [ Term.Var "m"; Term.Const "@c"; Term.Var "p" ]))
    (parse "P(m, @c, p)")

let test_parse_errors () =
  let is_err s =
    match Parser.formula s with Ok f -> Alcotest.failf "%S parsed as %a" s Formula.pp f | Error _ -> ()
  in
  List.iter is_err [ ""; "F(x"; "x"; "F(x))"; "forall . F(x)"; "x = "; "F(x) /\\"; "@ x" ]

let test_print_parse_roundtrip () =
  List.iter
    (fun s ->
      let f = parse s in
      Alcotest.check fml (Printf.sprintf "roundtrip %S" s) f (parse (Formula.to_string f)))
    [ "exists y z. y != z /\\ F(x, y) /\\ F(x, z)";
      "forall x. F(x) -> G(x) \\/ H(x)";
      "P(\"1*1\", @c, p) <-> ~(x = y)";
      "x + 1 < y /\\ 2 | x";
      "exists m. forall x y. F(x) /\\ F(y) -> x = y";
      "x' = y \\/ ~(x'' = z)";
      "true /\\ (false \\/ ~true)" ]

(* ----------------------------- formulas ---------------------------- *)

let test_free_vars () =
  Alcotest.(check (list string)) "order of occurrence" [ "z"; "x" ]
    (Formula.free_vars (parse "G(z) /\\ exists y. F(x, y)"));
  Alcotest.(check bool) "sentence" true (Formula.is_sentence (parse "exists x. F(x)"));
  Alcotest.(check bool) "not sentence" false (Formula.is_sentence (parse "F(x)"))

let test_subst_capture () =
  (* substituting y for x under exists y must rename the binder *)
  let f = parse "exists y. F(x, y)" in
  let g = Formula.subst [ ("x", Term.Var "y") ] f in
  (match g with
  | Formula.Exists (v, body) ->
    Alcotest.(check bool) "binder renamed" true (v <> "y");
    Alcotest.check fml "body substituted"
      (Formula.Atom ("F", [ Term.Var "y"; Term.Var v ]))
      body
  | _ -> Alcotest.fail "expected exists");
  (* no capture: plain substitution under a different binder *)
  Alcotest.check fml "no rename needed"
    (parse "exists z. F(w, z)")
    (Formula.subst [ ("x", Term.Var "w") ] (parse "exists z. F(x, z)"))

let test_subst_const_formula () =
  (* Theorem 3.1's [z/c]: substituting a variable for a constant must avoid
     capture by existing binders *)
  let f = parse "exists z. P(m, @c, z)" in
  let g = Formula.subst_const "@c" (Term.Var "z") f in
  (match g with
  | Formula.Exists (v, Formula.Atom ("P", [ _; Term.Var z; _ ])) ->
    Alcotest.(check bool) "binder avoided" true (v <> "z");
    Alcotest.(check string) "constant replaced" "z" z
  | _ -> Alcotest.fail "unexpected shape")

let test_misc_accessors () =
  let f = parse "exists x. F(x, g(y)) /\\ x < 3 \\/ P(\"11\", @c, x)" in
  Alcotest.(check (list (pair string int)))
    "preds" [ ("F", 2); ("<", 2); ("P", 3) ] (Formula.preds f);
  Alcotest.(check (list (pair string int))) "funs" [ ("g", 1) ] (Formula.funs f);
  Alcotest.(check (list string)) "consts" [ "3"; "11"; "@c" ] (Formula.consts f);
  Alcotest.(check int) "qdepth" 1 (Formula.quantifier_depth f);
  Alcotest.(check int) "qdepth nested" 3
    (Formula.quantifier_depth (parse "forall x. exists y. F(x, y) /\\ exists z. G(z)"))

(* ---------------------------- transforms --------------------------- *)

let test_simplify () =
  let s f = Transform.simplify f in
  Alcotest.check fml "and true" (parse "F(x)") (s (parse "F(x) /\\ true"));
  Alcotest.check fml "or true" Formula.True (s (parse "F(x) \\/ true"));
  Alcotest.check fml "double neg" (parse "F(x)") (s (parse "~~F(x)"));
  Alcotest.check fml "x = x" Formula.True (s (parse "x = x"));
  Alcotest.check fml "vacuous quantifier" (parse "F(y)") (s (parse "exists x. F(y)"));
  Alcotest.check fml "imp false" Formula.True (s (parse "false -> F(x)"));
  Alcotest.check fml "iff same" Formula.True (s (parse "F(x) <-> F(x)"))

let rec is_nnf = function
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Eq _ -> true
  | Formula.Not (Formula.Atom _) | Formula.Not (Formula.Eq _) -> true
  | Formula.Not _ | Formula.Imp _ | Formula.Iff _ -> false
  | Formula.And (f, g) | Formula.Or (f, g) -> is_nnf f && is_nnf g
  | Formula.Exists (_, f) | Formula.Forall (_, f) -> is_nnf f

let test_nnf () =
  Alcotest.check fml "de morgan"
    (parse "~F(x) \\/ ~G(x)")
    (Transform.nnf (parse "~(F(x) /\\ G(x))"));
  Alcotest.check fml "neg exists"
    (parse "forall x. ~F(x)")
    (Transform.nnf (parse "~(exists x. F(x))"));
  Alcotest.check fml "imp"
    (parse "~F(x) \\/ G(x)")
    (Transform.nnf (parse "F(x) -> G(x)"));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "nnf(%s) is nnf" s)
        true
        (is_nnf (Transform.nnf (parse s))))
    [ "~(F(x) <-> exists y. G(y))"; "~~~(F(x) -> ~G(y))"; "~(forall x. F(x) -> false)" ]

let test_prenex () =
  let p = Transform.prenex (parse "(exists x. F(x)) /\\ (exists x. G(x))") in
  let prefix, m = Transform.matrix p in
  Alcotest.(check int) "two quantifiers" 2 (List.length prefix);
  Alcotest.(check bool) "matrix quantifier-free" true (Formula.quantifier_depth m = 0);
  let names = List.map fst prefix in
  Alcotest.(check int) "binders distinct" 2 (List.length (List.sort_uniq compare names));
  (* universal under negation flips *)
  let p2 = Transform.prenex (parse "~(forall x. F(x))") in
  match p2 with
  | Formula.Exists (_, Formula.Not _) -> ()
  | f -> Alcotest.failf "expected exists-not, got %a" Formula.pp f

let test_miniscope () =
  (* ∃x (F(x) ∨ G(y)) pushes to (∃x F(x)) ∨ G(y) — the quantifier drops
     from the x-free disjunct *)
  Alcotest.check fml "exists over or"
    (parse "(exists x. F(x)) \\/ G(y)")
    (Transform.miniscope (parse "exists x. F(x) \\/ G(y)"));
  Alcotest.check fml "exists over and with free part"
    (parse "G(y) /\\ (exists x. F(x))")
    (Transform.miniscope (parse "exists x. G(y) /\\ F(x)"));
  Alcotest.check fml "forall over and"
    (parse "(forall x. F(x)) /\\ (forall x. G(x))")
    (Transform.miniscope (parse "forall x. F(x) /\\ G(x)"));
  Alcotest.check fml "vacuous quantifier drops"
    (parse "F(y)")
    (Transform.miniscope (parse "exists x. F(y)"))

let test_dnf () =
  let clauses = Transform.dnf (Transform.nnf (parse "(F(x) \\/ G(x)) /\\ H(x)")) in
  Alcotest.(check int) "two clauses" 2 (List.length clauses);
  List.iter (fun c -> Alcotest.(check int) "clause size" 2 (List.length c)) clauses;
  Alcotest.(check int) "dnf true" 1 (List.length (Transform.dnf Formula.True));
  Alcotest.(check int) "dnf false" 0 (List.length (Transform.dnf Formula.False))

(* ---------------------------- signature ---------------------------- *)

let test_signature_check () =
  let sg =
    Fq_logic.Signature.make ~name:"toy" ~preds:[ ("<", 2) ] ~funs:[ ("s", 1) ] ()
  in
  let ok f = Fq_logic.Signature.check ~schema:[ ("F", 2) ] sg (parse f) in
  Alcotest.(check bool) "domain predicate accepted" true (Result.is_ok (ok "x < y"));
  Alcotest.(check bool) "schema relation accepted" true (Result.is_ok (ok "F(x, y)"));
  Alcotest.(check bool) "mixed accepted" true (Result.is_ok (ok "F(x, y) /\\ x' < y"));
  Alcotest.(check bool) "unknown predicate rejected" true (Result.is_error (ok "G(x)"));
  Alcotest.(check bool) "wrong arity rejected" true (Result.is_error (ok "F(x)"));
  Alcotest.(check bool) "unknown function rejected" true
    (Result.is_error (ok "f(x) < y"));
  (* purity: scheme constants and database relations break it *)
  Alcotest.(check bool) "pure" true (Fq_logic.Signature.is_pure sg (parse "x < y"));
  Alcotest.(check bool) "db atom impure" false (Fq_logic.Signature.is_pure sg (parse "F(x, y)"));
  Alcotest.(check bool) "scheme constant impure" false
    (Fq_logic.Signature.is_pure sg (parse "x < @c"));
  (* union of signatures *)
  let sg2 = Fq_logic.Signature.make ~name:"other" ~preds:[ ("P", 3) ] () in
  let u = Fq_logic.Signature.union sg sg2 in
  Alcotest.(check bool) "union has both" true
    (Fq_logic.Signature.mem_pred u "<" 2 && Fq_logic.Signature.mem_pred u "P" 3)

let test_lexer_errors () =
  List.iter
    (fun s ->
      match Fq_logic.Lexer.tokenize s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not tokenize" s)
    [ "x ! y"; "a / b"; "\\x"; "@ "; "\"unterminated"; "x # y" ]

(* --------------------------- qcheck gens ---------------------------- *)

let gen_formula : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let atom =
    oneof
      [ map (fun v -> Formula.Atom ("F", [ Term.Var v ])) var;
        map2 (fun v w -> Formula.Atom ("R", [ Term.Var v; Term.Var w ])) var var;
        map2 (fun v w -> Formula.Eq (Term.Var v, Term.Var w)) var var;
        return Formula.True; return Formula.False ]
  in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then atom
         else
           oneof
             [ atom;
               map (fun f -> Formula.Not f) (self (n - 1));
               map2 (fun f g -> Formula.And (f, g)) (self (n / 2)) (self (n / 2));
               map2 (fun f g -> Formula.Or (f, g)) (self (n / 2)) (self (n / 2));
               map2 (fun f g -> Formula.Imp (f, g)) (self (n / 2)) (self (n / 2));
               map2 (fun v f -> Formula.Exists (v, f)) var (self (n - 1));
               map2 (fun v f -> Formula.Forall (v, f)) var (self (n - 1)) ])

let arb_formula = QCheck.make ~print:Formula.to_string gen_formula

(* Brute-force evaluation over a tiny universe, used as semantics oracle
   for the transformations. R and F are fixed small relations. *)
let universe = [ 0; 1; 2 ]

let rec eval env f =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom ("F", [ t ]) -> eval_term env t mod 2 = 0
  | Formula.Atom ("R", [ t; u ]) -> eval_term env t < eval_term env u
  | Formula.Atom _ -> false
  | Formula.Eq (t, u) -> eval_term env t = eval_term env u
  | Formula.Not g -> not (eval env g)
  | Formula.And (g, h) -> eval env g && eval env h
  | Formula.Or (g, h) -> eval env g || eval env h
  | Formula.Imp (g, h) -> (not (eval env g)) || eval env h
  | Formula.Iff (g, h) -> eval env g = eval env h
  | Formula.Exists (v, g) -> List.exists (fun d -> eval ((v, d) :: env) g) universe
  | Formula.Forall (v, g) -> List.for_all (fun d -> eval ((v, d) :: env) g) universe

and eval_term env = function
  | Term.Var v -> ( match List.assoc_opt v env with Some d -> d | None -> 0)
  | Term.Const _ | Term.App _ -> 0

let env0 = [ ("x", 0); ("y", 1); ("z", 2) ]

let prop_preserves name transform =
  QCheck.Test.make ~name ~count:300 arb_formula (fun f ->
      eval env0 f = eval env0 (transform f))

let prop_nnf_shape =
  QCheck.Test.make ~name:"nnf output is in nnf" ~count:300 arb_formula (fun f ->
      is_nnf (Transform.nnf f))

let prop_prenex_shape =
  QCheck.Test.make ~name:"prenex matrix is quantifier-free" ~count:300 arb_formula
    (fun f ->
      let _, m = Transform.matrix (Transform.prenex f) in
      Formula.quantifier_depth m = 0)

let prop_roundtrip_print_parse =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arb_formula (fun f ->
      match Parser.formula (Formula.to_string f) with
      | Ok g -> Formula.equal f g
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s on %s" e (Formula.to_string f))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_preserves "simplify preserves semantics" Transform.simplify;
      prop_preserves "nnf preserves semantics" Transform.nnf;
      prop_preserves "prenex preserves semantics" Transform.prenex;
      prop_preserves "miniscope preserves semantics" Transform.miniscope;
      prop_nnf_shape; prop_prenex_shape; prop_roundtrip_print_parse ]

let () =
  Alcotest.run "fq_logic"
    [ ( "terms",
        [ Alcotest.test_case "basics" `Quick test_term_basics;
          Alcotest.test_case "subst_const" `Quick test_term_subst_const ] );
      ( "parser",
        [ Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "terms in atoms" `Quick test_parse_terms_in_atoms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip ] );
      ( "formulas",
        [ Alcotest.test_case "free_vars" `Quick test_free_vars;
          Alcotest.test_case "capture-avoiding subst" `Quick test_subst_capture;
          Alcotest.test_case "subst_const" `Quick test_subst_const_formula;
          Alcotest.test_case "accessors" `Quick test_misc_accessors ] );
      ( "signature",
        [ Alcotest.test_case "check" `Quick test_signature_check;
          Alcotest.test_case "lexer errors" `Quick test_lexer_errors ] );
      ( "transforms",
        [ Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "nnf" `Quick test_nnf;
          Alcotest.test_case "prenex" `Quick test_prenex;
          Alcotest.test_case "miniscope" `Quick test_miniscope;
          Alcotest.test_case "dnf" `Quick test_dnf ] );
      ("properties", qcheck_cases) ]
