(* Tests for the trace domain T and the Reach-theory quantifier elimination
   (the paper's Section 3 and Appendix). These exercise every case of the
   Theorem A.3 elimination: machine quantifiers (Lemma A.2), input
   quantifiers (bounded-prefix expansion), trace quantifiers (T-1..T-4)
   and "other word" quantifiers. *)

open Fq_domain
module Word = Fq_words.Word
module Trace = Fq_tm.Trace
module Encode = Fq_tm.Encode
module Zoo = Fq_tm.Zoo

let parse = Fq_logic.Parser.formula_exn

let scan = Encode.encode Zoo.scan_right
let looper = Encode.encode Zoo.loop
let halter = Encode.encode Zoo.halt

let check_t s expected =
  match Traces.decide (parse s) with
  | Ok b -> Alcotest.(check bool) s expected b
  | Error e -> Alcotest.failf "%s: %s" s e

let check_reach name f expected =
  match Reach_qe.decide f with
  | Ok b -> Alcotest.(check bool) name expected b
  | Error e -> Alcotest.failf "%s: %s" name e

(* --------------------------- ground facts --------------------------- *)

let test_ground () =
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:2) in
  check_t (Printf.sprintf "P(%S, \"11\", %S)" scan p) true;
  (* written out with the actual constants *)
  check_t (Printf.sprintf "P(\"%s\", \"11\", \"%s\")" scan p) true;
  check_t (Printf.sprintf "P(\"%s\", \"1\", \"%s\")" scan p) false;
  check_t (Printf.sprintf "P(\"%s\", \"11\", \"1.1\")" halter) false;
  check_t "\"1\" = \"1\"" true;
  check_t "\"1\" = \"11\"" false

(* --------------------- quantifiers over traces ---------------------- *)

let test_exists_trace () =
  (* every machine has a first trace on every input *)
  check_t (Printf.sprintf "exists p. P(\"%s\", \"11\", p)" scan) true;
  check_t (Printf.sprintf "exists p. P(\"%s\", \"\", p)" looper) true;
  (* scan_right on "11" has exactly 3 traces *)
  let p1 = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:1) in
  check_t
    (Printf.sprintf "exists p. P(\"%s\", \"11\", p) /\\ p != \"%s\"" scan p1)
    true;
  (* all three excluded: no fourth trace *)
  let p2 = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:2) in
  let p3 = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:3) in
  check_t
    (Printf.sprintf
       "exists p. P(\"%s\", \"11\", p) /\\ p != \"%s\" /\\ p != \"%s\" /\\ p != \"%s\""
       scan p1 p2 p3)
    false;
  (* the looper always has more traces *)
  let q1 = Option.get (Trace.trace_word ~machine:looper ~input:"" ~k:1) in
  let q2 = Option.get (Trace.trace_word ~machine:looper ~input:"" ~k:2) in
  check_t
    (Printf.sprintf "exists p. P(\"%s\", \"\", p) /\\ p != \"%s\" /\\ p != \"%s\"" looper
       q1 q2)
    true

let test_counting_via_fo () =
  (* "at most 3 traces" as a pure first-order sentence: any four traces
     coincide somewhere *)
  let at_most_3 m w =
    Printf.sprintf
      "forall p1 p2 p3 p4. P(\"%s\", \"%s\", p1) /\\ P(\"%s\", \"%s\", p2) /\\ P(\"%s\", \
       \"%s\", p3) /\\ P(\"%s\", \"%s\", p4) -> p1 = p2 \\/ p1 = p3 \\/ p1 = p4 \\/ p2 = \
       p3 \\/ p2 = p4 \\/ p3 = p4"
      m w m w m w m w
  in
  let at_most_2 m w =
    Printf.sprintf
      "forall p1 p2 p3. P(\"%s\", \"%s\", p1) /\\ P(\"%s\", \"%s\", p2) /\\ P(\"%s\", \
       \"%s\", p3) -> p1 = p2 \\/ p1 = p3 \\/ p2 = p3"
      m w m w m w
  in
  check_t (at_most_3 scan "11") true (* exactly 3 *);
  check_t (at_most_2 scan "11") false;
  check_t (at_most_3 looper "") false (* infinitely many *);
  check_t (at_most_3 halter "1") true (* exactly 1 *)

(* ----------------------- machine quantifiers ------------------------ *)

let test_exists_machine () =
  (* some machine has a trace on "11" *)
  check_t "exists m p. P(m, \"11\", p)" true;
  (* some machine halts immediately on "1": exactly one trace *)
  check_t
    "exists m. (exists p. P(m, \"1\", p)) /\\ (forall p q. P(m, \"1\", p) /\\ P(m, \"1\", \
     q) -> p = q)"
    true;
  (* a non-machine word vacuously has no traces, so this is true *)
  check_t "exists m. forall p. ~P(m, \"1\", p)" true;
  (* but an actual machine (one with a trace on "11") always has a first
     trace on "1" as well *)
  check_t "exists m q. P(m, \"11\", q) /\\ (forall p. ~P(m, \"1\", p))" false

let test_lemma_a2_formulas () =
  (* ∃x (D_2(x,"11") ∧ E_1(x,"1-")): halts instantly on "1-" but survives
     a step on "11" — prefixes differ at position 0? "11" vs "1-" share
     prefix of length 1... E_1 means halt at step 0: cell (ε, '1');
     D_2 needs the cell (ε,'1') defined: conflict! *)
  let f1 =
    Reach.Exists
      ( "x",
        Reach.conj
          [ Reach.Atom (Reach.D (2, Base (Var "x"), Base (Const "11")));
            Reach.Atom (Reach.E (1, Base (Var "x"), Base (Const "1-"))) ] )
  in
  check_reach "D2(x,11) & E1(x,1-) unsat (shared first cell)" f1 false;
  (* but with different first characters it is satisfiable *)
  let f2 =
    Reach.Exists
      ( "x",
        Reach.conj
          [ Reach.Atom (Reach.D (2, Base (Var "x"), Base (Const "11")));
            Reach.Atom (Reach.E (1, Base (Var "x"), Base (Const "-1"))) ] )
  in
  check_reach "D2(x,11) & E1(x,-1) sat" f2 true;
  (* cross-check a batch against the builder *)
  List.iter
    (fun (i, v, j, u) ->
      let f =
        Reach.Exists
          ( "x",
            Reach.And
              ( Reach.Atom (Reach.D (i, Base (Var "x"), Base (Const v))),
                Reach.Atom (Reach.E (j, Base (Var "x"), Base (Const u))) ) )
      in
      let expected =
        Fq_tm.Builder.satisfiable [ Fq_tm.Builder.At_least (v, i); Fq_tm.Builder.Exactly (u, j) ]
      in
      check_reach (Printf.sprintf "D%d(x,%s) & E%d(x,%s)" i v j u) f expected)
    [ (1, "11", 1, "11"); (2, "11", 1, "11"); (2, "11", 2, "11"); (3, "1-", 2, "11");
      (2, "-1", 3, "-1"); (3, "111", 1, "1--") ]

(* ------------------------ input quantifiers ------------------------- *)

let test_exists_input () =
  (* scan_right halts in exactly 2 steps on some input (one with two
     leading 1s) *)
  let f =
    Reach.Exists
      ("w", Reach.Atom (Reach.E (3, Base (Const scan), W_of (Var "w"))))
  in
  (* E takes an input word, not a trace: use the input variable directly *)
  ignore f;
  let g = Reach.Exists ("w", Reach.Atom (Reach.E (3, Base (Const scan), Base (Var "w")))) in
  check_reach "∃w E3(scan, w)" g true;
  (* the looper halts on no input *)
  let h =
    Reach.Exists
      ( "w",
        Reach.disj
          [ Reach.Atom (Reach.E (1, Base (Const looper), Base (Var "w")));
            Reach.Atom (Reach.E (2, Base (Const looper), Base (Var "w")));
            Reach.Atom (Reach.E (3, Base (Const looper), Base (Var "w"))) ] )
  in
  check_reach "looper never halts within 2 steps" h false;
  (* B-constrained: an input starting with "1-" on which halt() halts
     immediately *)
  let k =
    Reach.Exists
      ( "w",
        Reach.And
          ( Reach.Atom (Reach.B ("1-", Base (Var "w"))),
            Reach.Atom (Reach.E (1, Base (Const halter), Base (Var "w"))) ) )
  in
  check_reach "∃w B_{1-}(w) ∧ E1(halt, w)" k true

(* ----------------------- mixed-class sentences ---------------------- *)

let test_classes () =
  check_reach "∃x M(x)" (Reach.Exists ("x", Reach.Atom (Reach.Cls (Machines, Base (Var "x"))))) true;
  check_reach "∃x O(x)" (Reach.Exists ("x", Reach.Atom (Reach.Cls (Others, Base (Var "x"))))) true;
  check_reach "∀x: exactly one class"
    (Reach.Forall
       ( "x",
         Reach.disj
           [ Reach.conj
               [ Reach.Atom (Reach.Cls (Machines, Base (Var "x")));
                 Reach.Not (Reach.Atom (Reach.Cls (Inputs, Base (Var "x")))) ];
             Reach.Atom (Reach.Cls (Inputs, Base (Var "x")));
             Reach.Atom (Reach.Cls (Traces, Base (Var "x")));
             Reach.Atom (Reach.Cls (Others, Base (Var "x"))) ] ))
    true;
  (* every trace's machine is a machine and input an input *)
  check_reach "∀p∈T: M(m(p)) ∧ W(w(p))"
    (Reach.Forall
       ( "p",
         Reach.Or
           ( Reach.Not (Reach.Atom (Reach.Cls (Traces, Base (Var "p")))),
             Reach.And
               ( Reach.Atom (Reach.Cls (Machines, M_of (Var "p"))),
                 Reach.Atom (Reach.Cls (Inputs, W_of (Var "p"))) ) ) ))
    true;
  (* m of a non-trace is ε, which is an input *)
  check_reach "∀x∈M: W(m(x))"
    (Reach.Forall
       ( "x",
         Reach.Or
           ( Reach.Not (Reach.Atom (Reach.Cls (Machines, Base (Var "x")))),
             Reach.Atom (Reach.Cls (Inputs, M_of (Var "x"))) ) ))
    true

let test_trace_structure () =
  (* every machine-and-input pair has a trace: ∀m∀w∃p P(m,w,p) relativized *)
  check_t
    "forall m w. (exists q. P(m, w, q)) \\/ ~(exists q. P(m, w, q)) " true;
  check_t
    "forall m w p. P(m, w, p) -> exists q. P(m, w, q) /\\ q = p" true;
  (* there are two distinct traces of some machine on some input *)
  check_t "exists m w p q. P(m, w, p) /\\ P(m, w, q) /\\ p != q" true;
  (* a trace determines its machine: no word is a trace of two machines *)
  check_t "exists m n w p. P(m, w, p) /\\ P(n, w, p) /\\ m != n" false;
  (* ... and its input *)
  check_t "exists m w v p. P(m, w, p) /\\ P(m, v, p) /\\ w != v" false

(* the paper's Theorem 3.1 formula on concrete states: M(x) := P(M, c, x)
   with c a constant — finite iff the machine halts on c's value *)
let test_totality_formula_ground_instances () =
  (* halts: scan on "11" in 2 steps — at most 3 traces *)
  let bounded m w n =
    (* "at most n traces" via n+1 universally quantified trace variables *)
    let vars = List.init (n + 1) (fun i -> Printf.sprintf "p%d" i) in
    let atoms =
      List.map (fun v -> Printf.sprintf "P(\"%s\", \"%s\", %s)" m w v) vars
    in
    let rec eqs = function
      | [] -> []
      | v :: rest -> List.map (fun u -> Printf.sprintf "%s = %s" v u) rest @ eqs rest
    in
    Printf.sprintf "forall %s. %s -> %s" (String.concat " " vars)
      (String.concat " /\\ " atoms)
      (String.concat " \\/ " (eqs vars))
  in
  check_t (bounded scan "11" 3) true;
  check_t (bounded scan "11" 2) false;
  check_t (bounded looper "1" 3) false

(* ------------------- deeper QE coverage (Thm A.3) ------------------ *)

let test_function_equalities () =
  (* equalities between w/m of *different* trace variables exercise the
     case-T substitution shapes (2) with non-base terms *)
  let c = check_t in
  (* two traces sharing their machine but not their input *)
  c "exists p q. (exists m w v. P(m, w, p) /\\ P(m, v, q) /\\ w != v)" true;
  (* ... expressed through quantified machines: every pair of traces of
     one machine on one input of different lengths differs *)
  c
    (Printf.sprintf
       "forall p q. P(\"%s\", \"1\", p) /\\ P(\"%s\", \"1\", q) /\\ p != q -> \
        (exists m. P(m, \"1\", p) /\\ P(m, \"1\", q))"
       scan scan)
    true;
  (* no word is both a machine and a trace of something *)
  c "exists m w p. P(m, w, p) /\\ p = m" false;
  (* no trace is its own input *)
  c "exists m w p. P(m, w, p) /\\ p = w" false

let test_quantifier_alternations () =
  let c = check_t in
  (* ∀ machine ∃ trace on a fixed input: false — non-machine words are
     quantified too, so restrict by P-existence *)
  c "forall m. exists p. P(m, \"1\", p)" false;
  c "forall m. (exists w q. P(m, w, q)) -> exists p. P(m, \"1\", p)" true;
  (* there are two distinct machines with traces on the same input *)
  c "exists m n w p q. P(m, w, p) /\\ P(n, w, q) /\\ m != n" true;
  (* every trace extends to... not expressible without concatenation; but
     every machine-with-a-trace has a one-snapshot trace: *)
  c
    "forall m w p. P(m, w, p) -> exists q. P(m, w, q) /\\ (forall r. P(m, w, r) -> q = r) \
     \\/ exists q r. P(m, w, q) /\\ P(m, w, r) /\\ q != r"
    true

let test_constants_in_odd_positions () =
  let c = check_t in
  (* using a trace constant where a machine is expected *)
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"1" ~k:1) in
  c (Printf.sprintf "exists w q. P(\"%s\", w, q)" p) false;
  (* using a machine constant as an input *)
  c (Printf.sprintf "exists m q. P(m, \"%s\", q)" scan) false;
  (* the empty word is a legitimate input *)
  c (Printf.sprintf "exists q. P(\"%s\", \"\", q)" scan) true

let test_sentence_batteries () =
  (* a battery of closed Reach-theory sentences covering each class case *)
  let cr = check_reach in
  let open Fq_domain.Reach in
  (* case W with B and D together: some input starting with "11" on which
     scan survives 2 steps *)
  cr "∃w (B_11(w) ∧ D3(scan, w))"
    (Exists
       ( "w",
         conj
           [ Atom (B ("11", Base (Var "w")));
             Atom (D (3, Base (Const scan), Base (Var "w"))) ] ))
    true;
  (* ... but not 4 steps: scan halts after the two 1s *)
  cr "∃w (B_11-(w) ∧ D5(scan, w))"
    (Exists
       ( "w",
         conj
           [ Atom (B ("11-", Base (Var "w")));
             Atom (D (5, Base (Const scan), Base (Var "w"))) ] ))
    false;
  (* case O: there are infinitely many other words — three distinct ones *)
  cr "∃x y z ∈ O, pairwise distinct"
    (Exists
       ( "x",
         Exists
           ( "y",
             Exists
               ( "z",
                 conj
                   [ Atom (Cls (Others, Base (Var "x")));
                     Atom (Cls (Others, Base (Var "y")));
                     Atom (Cls (Others, Base (Var "z")));
                     Not (Atom (Eq (Base (Var "x"), Base (Var "y"))));
                     Not (Atom (Eq (Base (Var "y"), Base (Var "z"))));
                     Not (Atom (Eq (Base (Var "x"), Base (Var "z")))) ] ) ) ))
    true;
  (* negated class atoms on a quantified variable *)
  cr "∀x (¬M(x) ∨ ¬W(x))"
    (Forall
       ( "x",
         Or
           ( Not (Atom (Cls (Machines, Base (Var "x")))),
             Not (Atom (Cls (Inputs, Base (Var "x")))) ) ))
    true;
  (* E on a machine variable with constant input, negated: machines that
     do not halt instantly on ε exist *)
  cr "∃x ∈ M, ¬E1(x, ε)"
    (Exists
       ( "x",
         conj
           [ Atom (Cls (Machines, Base (Var "x")));
             Not (Atom (E (1, Base (Var "x"), Base (Const "")))) ] ))
    true;
  (* mixed: a trace whose machine halts on its own input in exactly the
     number of steps recorded — trivially true of any final trace *)
  cr "∃p ∈ T with E-characterised machine"
    (Exists
       ( "p",
         conj
           [ Atom (Cls (Traces, Base (Var "p")));
             Atom (E (1, M_of (Var "p"), Base (Const "-"))) ] ))
    true

let test_decide_rejects () =
  (* non-sentences and wrong signatures are refused, not mis-decided *)
  Alcotest.(check bool) "free variable" true
    (Result.is_error (Traces.decide (parse "P(m, \"1\", p)")));
  Alcotest.(check bool) "wrong predicate" true
    (Result.is_error (Traces.decide (parse "exists x. Q(x)")));
  Alcotest.(check bool) "arithmetic constant" true
    (Result.is_error (Traces.decide (parse "exists x. x = f(x)")));
  Alcotest.(check bool) "non-word constant" true
    (Result.is_error (Traces.decide (parse "exists p. P(\"abc\", \"1\", p)")))

(* ---------------- randomized consistency of the QE ----------------- *)

(* Random Reach sentences over a small vocabulary. The decision procedure
   must satisfy the boolean laws exactly: ¬ flips, ∧ conjoins, a true
   ground instance witnesses an ∃. Each law exercises the eliminator on
   structurally different inputs, so agreement is strong evidence of
   correctness. *)

let sample_pool =
  let t1 = Option.get (Trace.trace_word ~machine:scan ~input:"1" ~k:1) in
  [ ""; "1"; "-1"; "*"; scan; looper; t1; "1.1" ]

let gen_reach_sentence : Reach.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Reach in
  let var = oneofl [ "x"; "y" ] in
  let base = oneof [ map (fun v -> Var v) var; map (fun c -> Const c) (oneofl sample_pool) ] in
  let term =
    frequency [ (3, map (fun b -> Base b) base); (1, map (fun b -> W_of b) base);
                (1, map (fun b -> M_of b) base) ]
  in
  let cls = oneofl [ Machines; Inputs; Traces; Others ] in
  let atom =
    frequency
      [ (3, map2 (fun t u -> Atom (Eq (t, u))) term term);
        (2, map2 (fun c t -> Atom (Cls (c, t))) cls term);
        (1, map2 (fun s t -> Atom (B (s, t))) (oneofl [ ""; "1"; "1-" ]) term);
        (2, map3 (fun i t u -> Atom (D (i, t, u))) (int_range 1 3) term
              (map (fun c -> Base (Const c)) (oneofl [ "1"; "11"; "-1" ])));
        (1, map3 (fun i t u -> Atom (E (i, t, u))) (int_range 1 3) term
              (map (fun c -> Base (Const c)) (oneofl [ "1"; "11" ]))) ]
  in
  let qf =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          frequency
            [ (3, atom);
              (1, map (fun f -> Not f) (self (n - 1)));
              (2, map2 (fun f g -> And (f, g)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun f g -> Or (f, g)) (self (n / 2)) (self (n / 2))) ])
      3
  in
  let* body = qf in
  let* qx = bool in
  let* qy = bool in
  let close v q f =
    if List.mem v (Reach.free_vars f) then if q then Reach.Exists (v, f) else Reach.Forall (v, f)
    else f
  in
  return (close "x" qx (close "y" qy body))

let arb_reach = QCheck.make ~print:Reach.to_string gen_reach_sentence

let decide_exn f =
  match Reach_qe.decide f with
  | Ok b -> b
  | Error e -> QCheck.Test.fail_reportf "decide: %s on %s" e (Reach.to_string f)

let prop_negation_consistent =
  QCheck.Test.make ~name:"decide(¬f) = ¬decide(f)" ~count:120 arb_reach (fun f ->
      decide_exn (Reach.Not f) = not (decide_exn f))

let prop_conjunction_consistent =
  QCheck.Test.make ~name:"decide(f ∧ g) = decide f && decide g" ~count:60
    (QCheck.pair arb_reach arb_reach)
    (fun (f, g) -> decide_exn (Reach.And (f, g)) = (decide_exn f && decide_exn g))

let prop_witness_monotone =
  (* a true ground instance forces the existential *)
  QCheck.Test.make ~name:"f[x:=w] true ⟹ ∃x f true" ~count:80
    (QCheck.pair arb_reach (QCheck.oneofl sample_pool))
    (fun (f, w) ->
      (* re-open the sentence: strip one outer quantifier if present *)
      match f with
      | Reach.Exists (x, body) | Reach.Forall (x, body) ->
        let inst = Reach.subst_base x (Reach.Const w) body in
        let inst_true = decide_exn inst in
        let exists_true = decide_exn (Reach.Exists (x, body)) in
        let forall_true = decide_exn (Reach.Forall (x, body)) in
        (not inst_true || exists_true) && ((not forall_true) || inst_true)
      | _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "fq_domain (traces)"
    [ ( "ground",
        [ Alcotest.test_case "P on constants" `Quick test_ground ] );
      ( "trace quantifiers",
        [ Alcotest.test_case "exists trace" `Quick test_exists_trace;
          Alcotest.test_case "counting via FO" `Quick test_counting_via_fo ] );
      ( "machine quantifiers",
        [ Alcotest.test_case "exists machine" `Quick test_exists_machine;
          Alcotest.test_case "Lemma A.2 formulas" `Quick test_lemma_a2_formulas ] );
      ( "input quantifiers",
        [ Alcotest.test_case "exists input" `Quick test_exists_input ] );
      ( "mixed",
        [ Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "bounded totality instances" `Quick
            test_totality_formula_ground_instances ] );
      ( "deep QE",
        [ Alcotest.test_case "function equalities" `Quick test_function_equalities;
          Alcotest.test_case "quantifier alternations" `Quick test_quantifier_alternations;
          Alcotest.test_case "constants in odd positions" `Quick
            test_constants_in_odd_positions;
          Alcotest.test_case "sentence batteries" `Quick test_sentence_batteries;
          Alcotest.test_case "rejections" `Quick test_decide_rejects ] );
      ( "consistency",
        [ QCheck_alcotest.to_alcotest prop_negation_consistent;
          QCheck_alcotest.to_alcotest prop_conjunction_consistent;
          QCheck_alcotest.to_alcotest prop_witness_monotone ] ) ]
