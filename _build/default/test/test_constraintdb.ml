(* Tests for Fq_constraintdb: rationals and finitely representable
   relations over the dense order (the paper's Section 1.2 / KKR90). *)

open Fq_constraintdb

let q = Rat.of_int
let qq = Rat.of_ints

(* ------------------------------ rationals -------------------------- *)

let test_rat_basics () =
  Alcotest.(check string) "normalize" "1/2" (Rat.to_string (Rat.of_ints 2 4));
  Alcotest.(check string) "sign in denominator" "-1/2" (Rat.to_string (Rat.of_ints 1 (-2)));
  Alcotest.(check string) "integer prints plainly" "3" (Rat.to_string (q 3));
  Alcotest.(check bool) "add" true (Rat.equal (qq 5 6) (Rat.add (qq 1 2) (qq 1 3)));
  Alcotest.(check bool) "sub" true (Rat.equal (qq 1 6) (Rat.sub (qq 1 2) (qq 1 3)));
  Alcotest.(check bool) "mul" true (Rat.equal (qq 1 6) (Rat.mul (qq 1 2) (qq 1 3)));
  Alcotest.(check bool) "compare" true (Rat.compare (qq 1 3) (qq 1 2) < 0);
  Alcotest.(check bool) "of_string" true (Rat.equal (qq (-7) 3) (Rat.of_string "-7/3"));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rat.make Fq_numeric.Bigint.one Fq_numeric.Bigint.zero))

let prop_midpoint =
  QCheck.Test.make ~name:"midpoint is strictly between" ~count:300
    (QCheck.pair (QCheck.int_range (-100) 100) (QCheck.int_range (-100) 100))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let lo, hi = if a < b then (q a, q b) else (q b, q a) in
      let m = Rat.midpoint lo hi in
      Rat.compare lo m < 0 && Rat.compare m hi < 0)

(* --------------------------- constraint relations ------------------ *)

open Crel

let interval ~col lo hi =
  make ~columns:[ col ]
    [ [ { lhs = C lo; op = Lt; rhs = V col }; { lhs = V col; op = Lt; rhs = C hi } ] ]

let test_membership () =
  let r = interval ~col:"x" (q 0) (q 10) in
  Alcotest.(check bool) "inside" true (mem r [ q 5 ]);
  Alcotest.(check bool) "boundary excluded" false (mem r [ q 0 ]);
  Alcotest.(check bool) "outside" false (mem r [ q 11 ]);
  Alcotest.(check bool) "rational inside" true (mem r [ qq 1 2 ])

let test_sat () =
  Alcotest.(check bool) "open interval sat" true
    (sat_cell [ { lhs = C (q 0); op = Lt; rhs = V "x" }; { lhs = V "x"; op = Lt; rhs = C (q 1) } ]);
  Alcotest.(check bool) "empty numeric interval" false
    (sat_cell [ { lhs = C (q 1); op = Lt; rhs = V "x" }; { lhs = V "x"; op = Lt; rhs = C (q 0) } ]);
  Alcotest.(check bool) "point interval with ne" false
    (sat_cell
       [ { lhs = C (q 1); op = Le; rhs = V "x" }; { lhs = V "x"; op = Le; rhs = C (q 1) };
         { lhs = V "x"; op = Ne; rhs = C (q 1) } ]);
  Alcotest.(check bool) "cycle of strict" false
    (sat_cell
       [ { lhs = V "x"; op = Lt; rhs = V "y" }; { lhs = V "y"; op = Lt; rhs = V "z" };
         { lhs = V "z"; op = Lt; rhs = V "x" } ]);
  Alcotest.(check bool) "cycle of nonstrict is equality" true
    (sat_cell [ { lhs = V "x"; op = Le; rhs = V "y" }; { lhs = V "y"; op = Le; rhs = V "x" } ]);
  Alcotest.(check bool) "forced equality vs ne" false
    (sat_cell
       [ { lhs = V "x"; op = Le; rhs = V "y" }; { lhs = V "y"; op = Le; rhs = V "x" };
         { lhs = V "x"; op = Ne; rhs = V "y" } ])

let test_boolean_ops () =
  let r01 = interval ~col:"x" (q 0) (q 1) in
  let r02 = interval ~col:"x" (q 0) (q 2) in
  Alcotest.(check bool) "inter member" true (mem (inter r01 r02) [ qq 1 2 ]);
  Alcotest.(check bool) "diff member" true (mem (diff r02 r01) [ qq 3 2 ]);
  Alcotest.(check bool) "diff boundary" true (mem (diff r02 r01) [ q 1 ]);
  Alcotest.(check bool) "diff excluded" false (mem (diff r02 r01) [ qq 1 2 ]);
  let comp = complement r01 in
  Alcotest.(check bool) "complement left" true (mem comp [ q (-1) ]);
  Alcotest.(check bool) "complement inside" false (mem comp [ qq 1 2 ]);
  Alcotest.(check bool) "union" true (mem (union r01 (interval ~col:"x" (q 5) (q 6))) [ qq 11 2 ]);
  Alcotest.(check bool) "empty is empty" true (is_empty (empty ~columns:[ "x" ]));
  Alcotest.(check bool) "full is not" false (is_empty (full ~columns:[ "x" ]));
  Alcotest.(check bool) "inter with complement empty" true (is_empty (inter r01 (complement r01)))

let test_join_project () =
  (* y strictly between x and z *)
  let between =
    make ~columns:[ "x"; "y"; "z" ]
      [ [ { lhs = V "x"; op = Lt; rhs = V "y" }; { lhs = V "y"; op = Lt; rhs = V "z" } ] ]
  in
  (* project out y: dense order gives exactly x < z *)
  let xz = project ~keep:[ "x"; "z" ] between in
  Alcotest.(check bool) "projection keeps x<z" true (mem xz [ q 0; q 1 ]);
  Alcotest.(check bool) "projection drops x>=z" false (mem xz [ q 1; q 0 ]);
  Alcotest.(check bool) "projection drops x=z" false (mem xz [ q 1; q 1 ]);
  (* over the integers x < y < z would force z - x >= 2; density matters *)
  Alcotest.(check bool) "adjacent rationals fine" true (mem xz [ q 0; qq 1 1000 ]);
  (* join on shared column *)
  let r1 = interval ~col:"x" (q 0) (q 10) in
  let r2 =
    make ~columns:[ "x"; "y" ] [ [ { lhs = V "x"; op = Lt; rhs = V "y" } ] ]
  in
  let j = join r1 r2 in
  Alcotest.(check (list string)) "join columns" [ "x"; "y" ] (columns j);
  Alcotest.(check bool) "join member" true (mem j [ q 5; q 7 ]);
  Alcotest.(check bool) "join respects both" false (mem j [ q 11; q 12 ])

let test_point_projection_with_ne () =
  (* ∃x (0 <= x <= 0 ∧ x ≠ 0 ∧ y = x): empty — the degenerate-interval
     case that naive Fourier-Motzkin misses *)
  let r =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = C (q 0); op = Le; rhs = V "x" }; { lhs = V "x"; op = Le; rhs = C (q 0) };
          { lhs = V "x"; op = Ne; rhs = C (q 0) }; { lhs = V "y"; op = Eq; rhs = V "x" } ] ]
  in
  Alcotest.(check bool) "empty before projection" true (is_empty r);
  let p = project ~keep:[ "y" ] r in
  Alcotest.(check bool) "still empty after" true (is_empty p);
  (* and the satisfiable variant *)
  let r2 =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = C (q 0); op = Le; rhs = V "x" }; { lhs = V "x"; op = Le; rhs = C (q 1) };
          { lhs = V "x"; op = Ne; rhs = C (q 0) }; { lhs = V "y"; op = Eq; rhs = V "x" } ] ]
  in
  let p2 = project ~keep:[ "y" ] r2 in
  Alcotest.(check bool) "y = 1/2 in projection" true (mem p2 [ qq 1 2 ]);
  Alcotest.(check bool) "y = 0 excluded" false (mem p2 [ q 0 ])

let test_finiteness () =
  let pts = of_points ~columns:[ "x"; "y" ] [ [ q 1; q 2 ]; [ q 3; q 4 ] ] in
  Alcotest.(check bool) "points finite" true (is_finite pts);
  Alcotest.(check (option (list (list string)))) "enumerate points"
    (Some [ [ "1"; "2" ]; [ "3"; "4" ] ])
    (Option.map (List.map (List.map Rat.to_string)) (enumerate_if_finite pts));
  Alcotest.(check bool) "interval infinite" false (is_finite (interval ~col:"x" (q 0) (q 1)));
  Alcotest.(check bool) "full infinite" false (is_finite (full ~columns:[ "x" ]));
  Alcotest.(check bool) "empty finite" true (is_finite (empty ~columns:[ "x" ]));
  (* pinned through an equality chain *)
  let chained =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = V "x"; op = Eq; rhs = V "y" }; { lhs = V "y"; op = Eq; rhs = C (q 5) } ] ]
  in
  Alcotest.(check bool) "chained pin finite" true (is_finite chained);
  (* pinned by two opposite nonstrict bounds *)
  let squeezed =
    make ~columns:[ "x" ]
      [ [ { lhs = C (q 2); op = Le; rhs = V "x" }; { lhs = V "x"; op = Le; rhs = C (q 2) } ] ]
  in
  Alcotest.(check bool) "squeezed finite" true (is_finite squeezed)

let test_witness () =
  let r = interval ~col:"x" (q 0) (q 1) in
  (match witness r with
  | Some [ w ] -> Alcotest.(check bool) "witness inside" true (mem r [ w ])
  | _ -> Alcotest.fail "expected a witness");
  Alcotest.(check (option (list string))) "no witness in empty" None
    (Option.map (List.map Rat.to_string) (witness (empty ~columns:[ "x" ])));
  (* multi-variable with ne *)
  let r2 =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = V "x"; op = Lt; rhs = V "y" }; { lhs = V "y"; op = Ne; rhs = C (q 1) };
          { lhs = V "x"; op = Lt; rhs = C (q 2) } ] ]
  in
  match witness r2 with
  | Some tuple -> Alcotest.(check bool) "witness satisfies" true (mem r2 tuple)
  | None -> Alcotest.fail "expected a witness"

(* property: complement is an involution on membership *)
let gen_tuple = QCheck.map (fun (a, b) -> [ q a; q b ]) (QCheck.pair QCheck.small_int QCheck.small_int)

let some_rel =
  make ~columns:[ "x"; "y" ]
    [ [ { lhs = V "x"; op = Lt; rhs = V "y" } ];
      [ { lhs = V "x"; op = Eq; rhs = C (q 3) }; { lhs = V "y"; op = Le; rhs = C (q 0) } ] ]

let prop_complement_involution =
  QCheck.Test.make ~name:"x ∈ r xor x ∈ complement r" ~count:300 gen_tuple (fun tup ->
      mem some_rel tup <> mem (complement some_rel) tup)

let prop_diff_semantics =
  QCheck.Test.make ~name:"diff = inter with complement" ~count:300 gen_tuple (fun tup ->
      let other = interval ~col:"x" (q (-5)) (q 5) in
      let other2 = join other (full ~columns:[ "y" ]) in
      (* align columns *)
      let d = diff some_rel other2 in
      mem d tup = (mem some_rel tup && not (mem other2 tup)))

(* --------------------- FO queries over constraint DBs -------------- *)

let parse = Fq_logic.Parser.formula_exn

(* a constraint database: an interval relation and a "less-than" relation *)
let cdb : Fq_constraintdb.Ceval.db =
  [ ( "I",
      make ~columns:[ "a" ]
        [ [ { lhs = C (q 0); op = Le; rhs = V "a" }; { lhs = V "a"; op = Le; rhs = C (q 10) } ]
        ] );
    ("Below", make ~columns:[ "a"; "b" ] [ [ { lhs = V "a"; op = Lt; rhs = V "b" } ] ]) ]

let run_q f =
  match Fq_constraintdb.Ceval.query ~db:cdb (parse f) with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" f e

let holds_q f env =
  match Fq_constraintdb.Ceval.holds ~db:cdb (parse f) ~env with
  | Ok b -> b
  | Error e -> Alcotest.failf "%s: %s" f e

let decide_q f =
  match Fq_constraintdb.Ceval.decide ~db:cdb (parse f) with
  | Ok b -> b
  | Error e -> Alcotest.failf "%s: %s" f e

let test_ceval_atoms () =
  Alcotest.(check bool) "I(5)" true (holds_q "I(x)" [ ("x", q 5) ]);
  Alcotest.(check bool) "I(11)" false (holds_q "I(x)" [ ("x", q 11) ]);
  Alcotest.(check bool) "constant argument" true (decide_q "I(\"5\")");
  Alcotest.(check bool) "Below(1,2)" true (holds_q "Below(x, y)" [ ("x", q 1); ("y", q 2) ]);
  Alcotest.(check bool) "repeated variable" false (holds_q "Below(x, x)" [ ("x", q 1) ]);
  Alcotest.(check bool) "order atom" true (holds_q "x < y" [ ("x", q 0); ("y", q 1) ])

let test_ceval_connectives () =
  let r = run_q "I(x) /\\ ~Below(x, \"5\")" in
  (* x in [0,10] and not (x < 5): [5,10] *)
  Alcotest.(check bool) "7 in" true (mem r [ q 7 ]);
  Alcotest.(check bool) "5 in (boundary)" true (mem r [ q 5 ]);
  Alcotest.(check bool) "3 out" false (mem r [ q 3 ]);
  let u = run_q "Below(x, \"0\") \\/ I(x)" in
  Alcotest.(check bool) "union left" true (mem u [ q (-5) ]);
  Alcotest.(check bool) "union right" true (mem u [ q 10 ]);
  Alcotest.(check bool) "union gap" false (mem u [ q 11 ])

let test_ceval_quantifiers () =
  (* ∃b between a and 10 — density: any a < 10 qualifies *)
  let r = run_q "exists b. Below(x, b) /\\ Below(b, \"10\")" in
  Alcotest.(check bool) "9.999 qualifies" true (mem r [ Rat.of_string "9999/1000" ]);
  Alcotest.(check bool) "10 fails" false (mem r [ q 10 ]);
  (* sentences *)
  Alcotest.(check bool) "∀x∃y x<y" true (decide_q "forall x. exists y. x < y");
  Alcotest.(check bool) "∃ least element" false (decide_q "exists x. forall y. x <= y");
  Alcotest.(check bool) "density" true
    (decide_q "forall x y. x < y -> exists z. x < z /\\ z < y");
  Alcotest.(check bool) "I nonempty" true (decide_q "exists x. I(x)");
  Alcotest.(check bool) "I bounded" true (decide_q "forall x. I(x) -> x <= \"10\"")

let test_ceval_finiteness () =
  (* the relative safety question, decidable here *)
  let finite f =
    match Fq_constraintdb.Ceval.query ~db:cdb (parse f) with
    | Ok r -> Crel.is_finite r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "interval infinite" false (finite "I(x)");
  Alcotest.(check bool) "endpoints finite" true
    (finite "I(x) /\\ (forall y. I(y) -> x <= y) \\/ I(x) /\\ (forall y. I(y) -> y <= x)");
  Alcotest.(check bool) "equality point finite" true (finite "x = \"3\"")

let test_ceval_errors () =
  Alcotest.(check bool) "unknown relation" true
    (Result.is_error (Fq_constraintdb.Ceval.query ~db:cdb (parse "J(x)")));
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error (Fq_constraintdb.Ceval.query ~db:cdb (parse "I(x, y)")));
  Alcotest.(check bool) "function term" true
    (Result.is_error (Fq_constraintdb.Ceval.query ~db:cdb (parse "x + 1 < y")));
  Alcotest.(check bool) "decide on non-sentence" true
    (Result.is_error (Fq_constraintdb.Ceval.decide ~db:cdb (parse "I(x)")))

let () =
  Alcotest.run "fq_constraintdb"
    [ ( "rat",
        [ Alcotest.test_case "basics" `Quick test_rat_basics;
          QCheck_alcotest.to_alcotest prop_midpoint ] );
      ( "crel",
        [ Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "satisfiability" `Quick test_sat;
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "join and project" `Quick test_join_project;
          Alcotest.test_case "degenerate projection" `Quick test_point_projection_with_ne;
          Alcotest.test_case "finiteness (relative safety)" `Quick test_finiteness;
          Alcotest.test_case "witness" `Quick test_witness;
          QCheck_alcotest.to_alcotest prop_complement_involution;
          QCheck_alcotest.to_alcotest prop_diff_semantics ] );
      ( "ceval",
        [ Alcotest.test_case "atoms" `Quick test_ceval_atoms;
          Alcotest.test_case "connectives" `Quick test_ceval_connectives;
          Alcotest.test_case "quantifiers" `Quick test_ceval_quantifiers;
          Alcotest.test_case "finiteness" `Quick test_ceval_finiteness;
          Alcotest.test_case "errors" `Quick test_ceval_errors ] ) ]
