(* Tests for Fq_tm: machines, tapes, runs, encodings, traces (the predicate
   P of the paper's Section 3), the Lemma A.2 builder, and classification. *)

open Fq_tm
module W = Fq_words.Word

let outcome =
  Alcotest.testable
    (fun fmt -> function
      | Run.Halted { steps; result } -> Format.fprintf fmt "Halted(%d, %S)" steps result
      | Run.Out_of_fuel -> Format.pp_print_string fmt "Out_of_fuel")
    ( = )

(* ------------------------------- tape ------------------------------ *)

let test_tape_window () =
  let t = Tape.of_input "1-1" in
  Alcotest.(check (pair string int)) "initial window" ("1-1", 0) (Tape.window t);
  let t = Tape.of_input "" in
  Alcotest.(check (pair string int)) "blank tape window" ("-", 0) (Tape.window t);
  let t = Tape.move Machine.Right (Tape.of_input "11") in
  Alcotest.(check (pair string int)) "after a move" ("11", 1) (Tape.window t);
  (* head walks right past the word: window must include the head *)
  let t = Tape.move Machine.Right t in
  Alcotest.(check (pair string int)) "head beyond word" ("11-", 2) (Tape.window t);
  (* head walks left of the word *)
  let t = Tape.move Machine.Left (Tape.of_input "1") in
  Alcotest.(check (pair string int)) "head left of word" ("-1", 0) (Tape.window t)

let test_tape_write_result () =
  let t = Tape.write Machine.Blank (Tape.of_input "11") in
  Alcotest.(check string) "result skips leading blank" "1" (Tape.result t);
  Alcotest.(check string) "all blank result" "" (Tape.result (Tape.of_input "--"));
  Alcotest.(check string) "leftmost block" "11" (Tape.result (Tape.of_input "-11-111"))

(* ------------------------------- runs ------------------------------ *)

let test_run_halt () =
  Alcotest.check outcome "empty machine halts at once"
    (Run.Halted { steps = 0; result = "11" })
    (Run.run ~fuel:10 Zoo.halt "11")

let test_run_scan () =
  Alcotest.check outcome "scan_right crosses the input"
    (Run.Halted { steps = 3; result = "111" })
    (Run.run ~fuel:10 Zoo.scan_right "111");
  Alcotest.check outcome "erase leaves a blank tape"
    (Run.Halted { steps = 2; result = "" })
    (Run.run ~fuel:10 Zoo.erase "11")

let test_run_successor () =
  (match Run.run ~fuel:10 Zoo.successor "111" with
  | Run.Halted { result; _ } -> Alcotest.(check string) "successor" "1111" result
  | Run.Out_of_fuel -> Alcotest.fail "successor ran out of fuel");
  match Run.run ~fuel:10 Zoo.successor "" with
  | Run.Halted { result; _ } -> Alcotest.(check string) "successor of 0" "1" result
  | Run.Out_of_fuel -> Alcotest.fail "successor ran out of fuel"

let test_run_loop () =
  Alcotest.check outcome "loop never halts" Run.Out_of_fuel (Run.run ~fuel:1000 Zoo.loop "");
  Alcotest.(check (option int)) "halts_within none" None
    (Run.halts_within ~fuel:100 Zoo.loop "1");
  Alcotest.(check (option int)) "loop_on_one halts on blank start" (Some 0)
    (Run.halts_within ~fuel:10 Zoo.loop_on_one "-1");
  Alcotest.(check (option int)) "loop_on_one diverges on 1" None
    (Run.halts_within ~fuel:100 Zoo.loop_on_one "1")

let test_run_parity () =
  Alcotest.(check (option int)) "even block halts" (Some 2)
    (Run.halts_within ~fuel:100 Zoo.parity "11");
  Alcotest.(check (option int)) "odd block diverges" None
    (Run.halts_within ~fuel:100 Zoo.parity "111");
  Alcotest.(check (option int)) "empty block halts" (Some 0)
    (Run.halts_within ~fuel:100 Zoo.parity "")

let test_run_bb2 () =
  match Run.run ~fuel:100 Zoo.bb2 "" with
  | Run.Halted { steps; result } ->
    (* the classical count of 6 includes the halting transition, which our
       undefined-delta convention does not perform *)
    Alcotest.(check int) "bb2 halts in 5 steps" 5 steps;
    Alcotest.(check string) "bb2 writes 4 ones" "1111" result
  | Run.Out_of_fuel -> Alcotest.fail "bb2 should halt on blank input"

let test_config_count () =
  Alcotest.(check int) "halting count = steps + 1" 4
    (Run.config_count_upto ~bound:100 Zoo.scan_right "111");
  Alcotest.(check int) "diverging count hits bound" 17
    (Run.config_count_upto ~bound:17 Zoo.loop "")

(* ----------------------------- encoding ---------------------------- *)

let test_encode_roundtrip () =
  List.iter
    (fun { Zoo.name; machine; _ } ->
      let w = Encode.encode machine in
      Alcotest.(check bool)
        (Printf.sprintf "%s encoding is machine-shaped" name)
        true (W.is_machine_shaped w);
      Alcotest.(check bool)
        (Printf.sprintf "%s decode/encode roundtrip" name)
        true
        (Machine.equal machine (Encode.decode w)))
    Zoo.all

let test_decode_total () =
  (* decode succeeds on every machine-shaped word *)
  W.enumerate () |> Seq.take 2000
  |> Seq.iter (fun w ->
         if W.is_machine_shaped w then ignore (Encode.decode w));
  Alcotest.check_raises "decode rejects non-machines"
    (Invalid_argument "Encode.decode: \"11\" is not machine-shaped") (fun () ->
      ignore (Encode.decode "11"))

let test_variants () =
  let vs = List.of_seq (Seq.take 10 (Encode.variants Zoo.scan_right)) in
  Alcotest.(check int) "10 distinct variants" 10 (List.length (List.sort_uniq compare vs));
  List.iter
    (fun v ->
      Alcotest.(check bool) "variant decodes to same machine" true
        (Machine.equal Zoo.scan_right (Encode.decode v)))
    vs

(* ------------------------------ traces ----------------------------- *)

let scan = Encode.encode Zoo.scan_right
let looper = Encode.encode Zoo.loop

let test_trace_shape () =
  match Trace.trace_word ~machine:scan ~input:"11" ~k:1 with
  | None -> Alcotest.fail "first trace must exist"
  | Some p ->
    Alcotest.(check string) "paper's first snapshot M.1.w." (scan ^ ".1.11.") p;
    Alcotest.(check bool) "trace-shaped" true (W.syntactic_class p = `Trace_shaped)

let test_trace_counts () =
  (* scan_right on "11" halts in 2 steps: exactly 3 traces *)
  let ts = List.of_seq (Trace.traces ~machine:scan ~input:"11") in
  Alcotest.(check int) "halting: steps+1 traces" 3 (List.length ts);
  Alcotest.(check int) "distinct traces" 3 (List.length (List.sort_uniq compare ts));
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "P holds of %S" p) true (Trace.p_pred scan "11" p))
    ts;
  (* diverging machine has unboundedly many traces *)
  let many = List.of_seq (Seq.take 50 (Trace.traces ~machine:looper ~input:"")) in
  Alcotest.(check int) "diverging: as many as asked" 50 (List.length many)

let test_p_pred_total () =
  Alcotest.(check bool) "garbage trace" false (Trace.p_pred scan "11" "junk");
  Alcotest.(check bool) "not a machine" false (Trace.p_pred "11" "11" "x");
  Alcotest.(check bool) "not an input" false (Trace.p_pred scan "*" "x");
  (* a trace of the wrong machine *)
  (match Trace.trace_word ~machine:looper ~input:"" ~k:2 with
  | Some p -> Alcotest.(check bool) "wrong machine" false (Trace.p_pred scan "" p)
  | None -> Alcotest.fail "looper trace");
  (* a trace of the right machine but wrong input *)
  match Trace.trace_word ~machine:scan ~input:"1" ~k:1 with
  | Some p -> Alcotest.(check bool) "wrong input" false (Trace.p_pred scan "11" p)
  | None -> Alcotest.fail "scan trace"

let test_trace_inputs_distinct () =
  (* inputs differing in trailing blanks give distinct traces (w is recorded
     verbatim), so the Appendix function w(x) is well defined *)
  let p1 = Option.get (Trace.trace_word ~machine:scan ~input:"1" ~k:1) in
  let p2 = Option.get (Trace.trace_word ~machine:scan ~input:"1-" ~k:1) in
  Alcotest.(check bool) "distinct traces" false (String.equal p1 p2);
  Alcotest.(check string) "w recovers input" "1" (Trace.w_fn p1);
  Alcotest.(check string) "w recovers padded input" "1-" (Trace.w_fn p2);
  Alcotest.(check string) "m recovers machine" scan (Trace.m_fn p1);
  Alcotest.(check string) "w on non-trace" "" (Trace.w_fn "junk.")

let test_d_e_preds () =
  (* scan_right on "11": 3 traces exactly *)
  Alcotest.(check bool) "D_1" true (Trace.d_pred ~i:1 scan "11");
  Alcotest.(check bool) "D_3" true (Trace.d_pred ~i:3 scan "11");
  Alcotest.(check bool) "D_4" false (Trace.d_pred ~i:4 scan "11");
  Alcotest.(check bool) "E_3" true (Trace.e_pred ~i:3 scan "11");
  Alcotest.(check bool) "E_2" false (Trace.e_pred ~i:2 scan "11");
  Alcotest.(check bool) "E_4" false (Trace.e_pred ~i:4 scan "11");
  (* loop: D_i for all i, E_i never *)
  Alcotest.(check bool) "loop D_50" true (Trace.d_pred ~i:50 looper "");
  Alcotest.(check bool) "loop no E_5" false (Trace.e_pred ~i:5 looper "");
  (* non-machine first argument *)
  Alcotest.(check bool) "D on non-machine" false (Trace.d_pred ~i:1 "111" "")

let test_is_trace_word () =
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"1-1" ~k:2) in
  Alcotest.(check bool) "real trace" true (Trace.is_trace_word p);
  Alcotest.(check bool) "corrupted trace" false (Trace.is_trace_word (p ^ "1"));
  Alcotest.(check bool) "machine word is not a trace" false (Trace.is_trace_word scan);
  (* trace-shaped but semantically wrong: state 2 never reached first *)
  Alcotest.(check bool) "bad semantics" false (Trace.is_trace_word (scan ^ ".11.11."))

(* --------------------------- Lemma A.2 ----------------------------- *)

let test_builder_simple () =
  (* a machine halting on "11" after exactly 2 steps and on "--1" after 0 *)
  match Builder.build [ Builder.Exactly ("11", 3); Builder.Exactly ("-1", 1) ] with
  | Error e -> Alcotest.failf "unsatisfiable: %s" e
  | Ok m ->
    Alcotest.(check (option int)) "halts on 11 after 2" (Some 2)
      (Run.halts_within ~fuel:100 m "11");
    Alcotest.(check (option int)) "halts on -1 at once" (Some 0)
      (Run.halts_within ~fuel:100 m "-1")

let test_builder_at_least () =
  match Builder.build [ Builder.At_least ("111", 4) ] with
  | Error e -> Alcotest.failf "unsatisfiable: %s" e
  | Ok m ->
    let enc = Encode.encode m in
    Alcotest.(check bool) "D_4 holds" true (Trace.d_pred ~i:4 enc "111")

let test_builder_conflicts () =
  (* same word, two different exact counts *)
  Alcotest.(check bool) "contradictory exacts" false
    (Builder.satisfiable [ Builder.Exactly ("11", 2); Builder.Exactly ("11", 3) ]);
  (* trailing blanks denote the same tape *)
  Alcotest.(check bool) "trailing blanks merge" false
    (Builder.satisfiable [ Builder.Exactly ("1", 2); Builder.Exactly ("1-", 3) ]);
  (* E forces a halt where D forces survival on a shared prefix *)
  Alcotest.(check bool) "D vs E prefix conflict" false
    (Builder.satisfiable [ Builder.At_least ("111", 3); Builder.Exactly ("1111", 2) ]);
  (* distinct prefixes: no conflict *)
  Alcotest.(check bool) "diverging prefixes fine" true
    (Builder.satisfiable [ Builder.At_least ("-11", 3); Builder.Exactly ("1-1", 2) ])

let test_builder_matches_paper_criterion () =
  (* under the lemma's hypothesis (words longer than all counts) the
     explicit criterion and the builder agree *)
  let words = [ "111"; "11-"; "1-1"; "-11"; "1--" ] in
  let pairs = List.concat_map (fun w -> [ (w, 1); (w, 2); (w, 3) ]) words in
  List.iter
    (fun (v, i) ->
      List.iter
        (fun (u, j) ->
          let expected = Builder.paper_criterion ~d:[ (v, i) ] ~e:[ (u, j) ] in
          let actual =
            Builder.satisfiable [ Builder.At_least (v, i); Builder.Exactly (u, j) ]
          in
          Alcotest.(check bool)
            (Printf.sprintf "D_%d(%s) & E_%d(%s)" i v j u)
            expected actual)
        pairs)
    pairs

let test_builder_witness_satisfies () =
  (* when satisfiable, the built machine actually satisfies the system *)
  let systems =
    [ [ Builder.At_least ("11-", 2); Builder.Exactly ("111", 3) ];
      [ Builder.Exactly ("1", 1); Builder.Exactly ("-1", 2) ];
      [ Builder.At_least ("111", 3); Builder.At_least ("11-", 2); Builder.Exactly ("--1", 1) ]
    ]
  in
  List.iter
    (fun sys ->
      match Builder.build sys with
      | Error e -> Alcotest.failf "should be satisfiable: %s" e
      | Ok m ->
        let enc = Encode.encode m in
        List.iter
          (function
            | Builder.At_least (w, i) ->
              Alcotest.(check bool)
                (Printf.sprintf "D_%d(%S)" i w)
                true (Trace.d_pred ~i enc w)
            | Builder.Exactly (w, j) ->
              Alcotest.(check bool)
                (Printf.sprintf "E_%d(%S)" j w)
                true (Trace.e_pred ~i:j enc w))
          sys)
    systems

(* ----------------------------- combinators ------------------------- *)

let test_sequence () =
  (* scan to the end of the block, then append a 1: unary successor *)
  let scan_then_succ = Combine.sequence Zoo.scan_right Zoo.successor in
  (match Run.run ~fuel:100 scan_then_succ "111" with
  | Run.Halted { result; _ } -> Alcotest.(check string) "scan;succ = succ" "1111" result
  | Run.Out_of_fuel -> Alcotest.fail "should halt");
  (* two successors add two *)
  let add_two = Combine.sequence Zoo.successor Zoo.successor in
  (match Run.run ~fuel:100 add_two "11" with
  | Run.Halted { result; _ } -> Alcotest.(check string) "n + 2" "1111" result
  | Run.Out_of_fuel -> Alcotest.fail "should halt");
  (* sequencing after a diverging machine diverges *)
  let never = Combine.sequence Zoo.loop Zoo.halt in
  Alcotest.(check (option int)) "loop; halt diverges" None
    (Run.halts_within ~fuel:500 never "1")

let test_chain () =
  let add_three = Combine.chain [ Zoo.successor; Zoo.successor; Zoo.successor ] in
  (match Run.run ~fuel:200 add_three "1" with
  | Run.Halted { result; _ } -> Alcotest.(check string) "1 + 3" "1111" result
  | Run.Out_of_fuel -> Alcotest.fail "should halt");
  Alcotest.check_raises "empty chain" (Invalid_argument "Combine.chain: empty list")
    (fun () -> ignore (Combine.chain []))

let test_sequence_is_machine () =
  (* composed machines encode, decode and trace like any other *)
  let m = Combine.sequence Zoo.scan_right Zoo.successor in
  let w = Encode.encode m in
  Alcotest.(check bool) "machine-shaped" true (W.is_machine_shaped w);
  Alcotest.(check bool) "roundtrip" true (Machine.equal m (Encode.decode w));
  let t = Option.get (Trace.trace_word ~machine:w ~input:"11" ~k:3) in
  Alcotest.(check bool) "traces validate" true (Trace.p_pred w "11" t)

(* ------------------------------ explain ----------------------------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_explain () =
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"11" ~k:3) in
  (match Explain.trace p with
  | Error e -> Alcotest.fail e
  | Ok text ->
    Alcotest.(check bool) "mentions the machine" true (contains text scan);
    Alcotest.(check bool) "header plus three snapshot lines" true
      (List.length (String.split_on_char '\n' (String.trim text)) = 4);
    Alcotest.(check bool) "head marker present" true (contains text "[1]"));
  Alcotest.(check bool) "non-trace rejected" true (Result.is_error (Explain.trace "1.1"))

let test_classify () =
  Alcotest.(check string) "machine" "machine" (Classify.to_string (Classify.classify scan));
  Alcotest.(check string) "input" "input" (Classify.to_string (Classify.classify "1-1"));
  Alcotest.(check string) "empty input" "input" (Classify.to_string (Classify.classify ""));
  let p = Option.get (Trace.trace_word ~machine:scan ~input:"1" ~k:2) in
  Alcotest.(check string) "trace" "trace" (Classify.to_string (Classify.classify p));
  Alcotest.(check string) "other" "other" (Classify.to_string (Classify.classify "..."))

let test_classes_partition () =
  (* each word is in exactly one class; count them over a prefix of the
     enumeration *)
  let counts = Hashtbl.create 4 in
  W.enumerate () |> Seq.take 3000
  |> Seq.iter (fun w ->
         let c = Classify.to_string (Classify.classify w) in
         Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)));
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s inhabited" c)
        true
        (Hashtbl.mem counts c))
    [ "machine"; "input"; "other" ]

(* property: p_pred agrees with trace generation *)
let prop_p_pred_generated =
  QCheck.Test.make ~name:"generated traces satisfy P; perturbed ones do not" ~count:100
    (QCheck.pair
       (QCheck.oneofl (List.map (fun e -> Encode.encode e.Zoo.machine) Zoo.all))
       (QCheck.pair
          (QCheck.string_gen_of_size (QCheck.Gen.int_bound 3)
             (QCheck.Gen.oneofl [ '1'; '-' ]))
          (QCheck.int_range 1 5)))
    (fun (m, (w, k)) ->
      match Trace.trace_word ~machine:m ~input:w ~k with
      | None -> true
      | Some p -> Trace.p_pred m w p && not (Trace.p_pred m w (p ^ "1")))

let () =
  Alcotest.run "fq_tm"
    [ ( "tape",
        [ Alcotest.test_case "window" `Quick test_tape_window;
          Alcotest.test_case "write/result" `Quick test_tape_write_result ] );
      ( "run",
        [ Alcotest.test_case "halt" `Quick test_run_halt;
          Alcotest.test_case "scan/erase" `Quick test_run_scan;
          Alcotest.test_case "successor" `Quick test_run_successor;
          Alcotest.test_case "loops" `Quick test_run_loop;
          Alcotest.test_case "parity" `Quick test_run_parity;
          Alcotest.test_case "bb2" `Quick test_run_bb2;
          Alcotest.test_case "config_count" `Quick test_config_count ] );
      ( "encode",
        [ Alcotest.test_case "roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "total decoding" `Quick test_decode_total;
          Alcotest.test_case "variants" `Quick test_variants ] );
      ( "trace",
        [ Alcotest.test_case "shape" `Quick test_trace_shape;
          Alcotest.test_case "counts" `Quick test_trace_counts;
          Alcotest.test_case "p_pred totality" `Quick test_p_pred_total;
          Alcotest.test_case "inputs recorded verbatim" `Quick test_trace_inputs_distinct;
          Alcotest.test_case "D and E" `Quick test_d_e_preds;
          Alcotest.test_case "is_trace_word" `Quick test_is_trace_word;
          QCheck_alcotest.to_alcotest prop_p_pred_generated ] );
      ( "builder",
        [ Alcotest.test_case "exact halts" `Quick test_builder_simple;
          Alcotest.test_case "at-least" `Quick test_builder_at_least;
          Alcotest.test_case "conflicts" `Quick test_builder_conflicts;
          Alcotest.test_case "agrees with paper criterion" `Quick
            test_builder_matches_paper_criterion;
          Alcotest.test_case "witness satisfies system" `Quick test_builder_witness_satisfies
        ] );
      ( "combine",
        [ Alcotest.test_case "sequence" `Quick test_sequence;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "composed machines are machines" `Quick
            test_sequence_is_machine ] );
      ("explain", [ Alcotest.test_case "rendering" `Quick test_explain ]);
      ( "classify",
        [ Alcotest.test_case "classes" `Quick test_classify;
          Alcotest.test_case "partition" `Quick test_classes_partition ] ) ]
