(* Tests for Fq_words.Word: the four-letter alphabet and syntactic word
   classes of the paper's Section 3. *)

module W = Fq_words.Word

let cls =
  Alcotest.testable
    (fun fmt c ->
      Format.pp_print_string fmt
        (match c with
        | `Machine_shaped -> "machine"
        | `Input -> "input"
        | `Trace_shaped -> "trace"
        | `Other -> "other"))
    ( = )

let test_is_word () =
  Alcotest.(check bool) "valid" true (W.is_word "1.*-");
  Alcotest.(check bool) "empty" true (W.is_word "");
  Alcotest.(check bool) "bad char" false (W.is_word "1a");
  Alcotest.(check bool) "space" false (W.is_word "1 1")

let test_classes () =
  Alcotest.check cls "empty is input" `Input (W.syntactic_class "");
  Alcotest.check cls "ones" `Input (W.syntactic_class "111");
  Alcotest.check cls "blanks" `Input (W.syntactic_class "-1-");
  Alcotest.check cls "star alone" `Machine_shaped (W.syntactic_class "*");
  Alcotest.check cls "machine" `Machine_shaped (W.syntactic_class "1*-1");
  Alcotest.check cls "trace shape" `Trace_shaped (W.syntactic_class "*.1.11.");
  Alcotest.check cls "dot but no machine head" `Other (W.syntactic_class ".1.1.");
  Alcotest.check cls "wrong field count" `Other (W.syntactic_class "*.1");
  Alcotest.check cls "bad state field" `Other (W.syntactic_class "*.-.11.");
  Alcotest.check cls "bad pos field" `Other (W.syntactic_class "*.1.11.-")

let test_classes_disjoint () =
  (* the syntactic classes partition all words *)
  W.enumerate () |> Seq.take 800
  |> Seq.iter (fun w ->
         match W.syntactic_class w with
         | `Machine_shaped ->
           Alcotest.(check bool)
             (Printf.sprintf "%S machine not input" w)
             false (W.is_input w)
         | `Input | `Trace_shaped | `Other -> ())

let test_fields () =
  Alcotest.(check (list string)) "split" [ "a"; "b" ] (W.split_fields "a.b");
  Alcotest.(check (list string)) "trailing sep" [ "a"; "" ] (W.split_fields "a.");
  Alcotest.(check (list string)) "empty" [ "" ] (W.split_fields "");
  Alcotest.(check string) "join inverse" "1.11." (W.join_fields [ "1"; "11"; "" ])

let test_unary () =
  Alcotest.(check string) "unary 0" "" (W.unary 0);
  Alcotest.(check string) "unary 3" "111" (W.unary 3);
  Alcotest.(check (option int)) "value" (Some 3) (W.unary_value "111");
  Alcotest.(check (option int)) "empty value" (Some 0) (W.unary_value "");
  Alcotest.(check (option int)) "non-unary" None (W.unary_value "1-1");
  Alcotest.check_raises "negative" (Invalid_argument "Word.unary: negative") (fun () ->
      ignore (W.unary (-1)))

let test_enumerate () =
  let first = List.of_seq (Seq.take 6 (W.enumerate ())) in
  Alcotest.(check (list string)) "starts with short words" [ ""; "1"; "."; "*"; "-"; "11" ]
    first;
  (* lengths are nondecreasing and all four-letter words appear *)
  let ws = List.of_seq (Seq.take 400 (W.enumerate ())) in
  let lens = List.map String.length ws in
  Alcotest.(check bool) "sorted by length" true (List.sort compare lens = lens);
  Alcotest.(check bool) "all valid" true (List.for_all W.is_word ws);
  Alcotest.(check int) "no duplicates" (List.length ws)
    (List.length (List.sort_uniq compare ws))

let prop_enumerate_over_complete =
  QCheck.Test.make ~name:"every word over {1,-} of length <= 5 is enumerated" ~count:100
    (QCheck.string_gen_of_size (QCheck.Gen.int_bound 5) (QCheck.Gen.oneofl [ '1'; '-' ]))
    (fun w ->
      W.enumerate_over "1-" () |> Seq.take 200 |> Seq.exists (String.equal w))

let () =
  Alcotest.run "fq_words"
    [ ( "word",
        [ Alcotest.test_case "is_word" `Quick test_is_word;
          Alcotest.test_case "syntactic classes" `Quick test_classes;
          Alcotest.test_case "classes disjoint" `Quick test_classes_disjoint;
          Alcotest.test_case "fields" `Quick test_fields;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          QCheck_alcotest.to_alcotest prop_enumerate_over_complete ] ) ]
