(* Tests for the remaining domain machinery: the equality-domain QE, the
   arithmetic domain (Corollary 2.3), and the extension combinator
   (Corollary 2.4 / Corollary 3.2). *)

open Fq_domain
module Formula = Fq_logic.Formula
module Value = Fq_db.Value

let parse = Fq_logic.Parser.formula_exn

(* --------------------------- Eq_domain.qe -------------------------- *)

let test_eq_qe () =
  let qe s =
    match Eq_domain.qe (parse s) with
    | Ok f -> f
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  (* ∃y (y ≠ x): true in an infinite domain *)
  Alcotest.(check bool) "∃y y≠x is True" true (Formula.equal Formula.True (qe "exists y. y != x"));
  (* ∃y (y = x ∧ y = "a"): substitutes to x = "a" *)
  Alcotest.(check bool) "substitution" true
    (Formula.equal (parse "x = \"a\"") (qe "exists y. y = x /\\ y = \"a\""));
  (* quantifier-free input is untouched semantically *)
  Alcotest.(check bool) "qf unchanged" true (Formula.equal (parse "x = \"a\"") (qe "x = \"a\""));
  (* domain predicates rejected *)
  Alcotest.(check bool) "wrong signature" true (Result.is_error (Eq_domain.qe (parse "x < y")))

let test_eq_member_enumerate () =
  Alcotest.(check bool) "printable string member" true (Eq_domain.member (Value.str "hello"));
  Alcotest.(check bool) "int not member" false (Eq_domain.member (Value.int 3));
  (* the enumeration is consistent with membership and hits given words *)
  let first = List.of_seq (Seq.take 200 (Eq_domain.enumerate ())) in
  Alcotest.(check bool) "enumerated values are members" true (List.for_all Eq_domain.member first);
  Alcotest.(check int) "no duplicates" (List.length first)
    (List.length (List.sort_uniq compare first))

(* ------------------------- Arithmetic (Cor 2.3) -------------------- *)

let test_arithmetic () =
  (* the Presburger fragment is decided *)
  (match Arithmetic.decide (parse "forall x. exists y. x < y") with
  | Ok b -> Alcotest.(check bool) "linear sentence" true b
  | Error e -> Alcotest.fail e);
  (match Arithmetic.decide (parse "forall x. x * 2 = x + x") with
  | Ok b -> Alcotest.(check bool) "scalar multiplication is linear" true b
  | Error e -> Alcotest.fail e);
  (* genuine multiplication is refused *)
  Alcotest.(check bool) "x*y refused" true
    (Result.is_error (Arithmetic.decide (parse "exists x y. x * y = 6")));
  Alcotest.(check bool) "fragment detection" false
    (Arithmetic.decidable_fragment (parse "exists x y z. x * x + y * y = z * z"));
  Alcotest.(check bool) "fragment detection (linear)" true
    (Arithmetic.decidable_fragment (parse "exists x. 2 * x = 4"));
  (* but evaluation of ground nonlinear terms works (the domain is
     recursive even though its theory is not decidable) *)
  match Arithmetic.eval_fun "*" [ Value.int 6; Value.int 7 ] with
  | Some v -> Alcotest.(check bool) "6*7" true (Value.equal v (Value.int 42))
  | None -> Alcotest.fail "multiplication should evaluate"

(* ------------------------- Extension (Cor 2.4) --------------------- *)

module Ext = Extension.Make (Eq_domain)

let test_extension_order () =
  (* the transported order is a linear order consistent with enumeration
     indices *)
  let v1 = List.nth (List.of_seq (Seq.take 5 (Eq_domain.enumerate ()))) 1 in
  let v3 = List.nth (List.of_seq (Seq.take 5 (Eq_domain.enumerate ()))) 3 in
  (match Ext.eval_pred "<" [ v1; v3 ] with
  | Some b -> Alcotest.(check bool) "earlier < later" true b
  | None -> Alcotest.fail "order should evaluate");
  (match Ext.eval_pred "<" [ v3; v1 ] with
  | Some b -> Alcotest.(check bool) "later < earlier" false b
  | None -> Alcotest.fail "order should evaluate");
  Alcotest.(check (option int)) "index of first" (Some 0)
    (Ext.index (List.hd (List.of_seq (Seq.take 1 (Eq_domain.enumerate ())))))

let test_extension_decide () =
  (* pure-D sentences delegate *)
  (match Ext.decide (parse "exists x y. x != y") with
  | Ok b -> Alcotest.(check bool) "pure equality" true b
  | Error e -> Alcotest.fail e);
  (* pure-order sentences go through N_< (the structures are isomorphic) *)
  (match Ext.decide (parse "exists x. forall y. x <= y") with
  | Ok b -> Alcotest.(check bool) "least element exists" true b
  | Error e -> Alcotest.fail e);
  (match Ext.decide (parse "forall x. exists y. y < x") with
  | Ok b -> Alcotest.(check bool) "no infinite descent" false b
  | Error e -> Alcotest.fail e);
  (* mixed sentences are refused — the Cor 3.2 phenomenon *)
  Alcotest.(check bool) "mixed refused" true
    (Result.is_error (Ext.decide (parse "exists x y. x < y /\\ x = \"a\"")));
  (* order with constants refused (positions are enumeration-dependent) *)
  Alcotest.(check bool) "order with constants refused" true
    (Result.is_error (Ext.decide (parse "exists x. x < \"zz\"")))

let test_extension_finitization_applies () =
  (* Cor 2.4's point: the finitization operator gives the extension a
     recursive syntax, purely syntactically *)
  let f = parse "x != \"a\"" in
  let fin = Fq_safety.Finitization.finitize f in
  Alcotest.(check bool) "recognized" true (Fq_safety.Finitization.is_finitization fin);
  (* and the extension of T exists as a module, with the same caveat *)
  let module TExt = Extension.Make (Traces) in
  Alcotest.(check bool) "trace extension mixed refused" true
    (Result.is_error
       (TExt.decide (parse "exists m p x. P(m, x, p) /\\ x < p")))

let () =
  Alcotest.run "fq_domain (misc)"
    [ ( "eq_domain",
        [ Alcotest.test_case "quantifier elimination" `Quick test_eq_qe;
          Alcotest.test_case "membership and enumeration" `Quick test_eq_member_enumerate ] );
      ("arithmetic", [ Alcotest.test_case "Corollary 2.3" `Quick test_arithmetic ]);
      ( "extension",
        [ Alcotest.test_case "transported order" `Quick test_extension_order;
          Alcotest.test_case "decide dispatch" `Quick test_extension_decide;
          Alcotest.test_case "finitization applies (Cor 2.4)" `Quick
            test_extension_finitization_applies ] ) ]
