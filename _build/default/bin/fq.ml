(* fq — command-line front end to the Finite Queries library.

   Subcommands:
     fq decide   — decide a pure domain sentence
     fq safety   — syntactic safe-range check of a query
     fq relsafe  — relative safety of a query in a state
     fq eval     — answer a query in a state (Section 1.1 algorithm)
     fq tm       — run a Turing machine / list the zoo / show traces
     fq diag     — the Theorem 3.1 diagonalization demo
     fq halting  — the Theorem 3.3 reduction on an instance *)

open Finite_queries
open Cmdliner

(* ------------------------- shared arguments ------------------------ *)

let domains : (string * Domain.t) list =
  [ ("equality", (module Eq_domain)); ("nat_order", (module Nat_order));
    ("nat_succ", (module Nat_succ)); ("presburger", (module Presburger));
    ("arithmetic", (module Arithmetic)); ("traces", (module Traces)) ]

let domain_conv =
  let parse s =
    match List.assoc_opt s domains with
    | Some d -> Ok d
    | None ->
      Error (`Msg (Printf.sprintf "unknown domain %S (try: %s)" s
                     (String.concat ", " (List.map fst domains))))
  in
  let print fmt (d : Domain.t) =
    let (module D : Domain.S) = d in
    Format.pp_print_string fmt D.name
  in
  Arg.conv (parse, print)

let domain_arg =
  let doc = "Domain to interpret the formula over (equality, nat_order, nat_succ, presburger, arithmetic, traces)." in
  Arg.(value & opt domain_conv (module Presburger : Domain.S) & info [ "d"; "domain" ] ~doc)

let formula_arg =
  let doc = "The formula, in the library's concrete syntax." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let parse_formula s =
  match Parser.formula s with
  | Ok f -> Ok f
  | Error e -> Error (Printf.sprintf "parse error: %s" e)

(* state description: --relation "F/2=a,b;b,c" (strings) or numbers;
   --constant "c=w" *)
let relation_arg =
  let doc = "A relation of the state: NAME/ARITY=v1,v2;v1,v2;... Values that parse as nonnegative integers become numbers; everything else is a string." in
  Arg.(value & opt_all string [] & info [ "r"; "relation" ] ~doc)

let constant_arg =
  let doc = "A scheme constant of the state: NAME=VALUE." in
  Arg.(value & opt_all string [] & info [ "c"; "constant" ] ~doc)

let parse_state rel_specs const_specs =
  Codec.parse_state ~relations:rel_specs ~constants:const_specs

let report = function
  | Ok () -> 0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1

(* ------------------------------ decide ----------------------------- *)

let decide_cmd =
  let run domain formula =
    report
      (Result.bind (parse_formula formula) (fun f ->
           let (module D : Domain.S) = domain in
           Result.map
             (fun b -> Format.printf "%b@." b)
             (D.decide f)))
  in
  let doc = "Decide a pure domain sentence (the domain's decision procedure)." in
  Cmd.v (Cmd.info "decide" ~doc) Term.(const run $ domain_arg $ formula_arg)

(* ------------------------------ safety ----------------------------- *)

let schema_arg =
  let doc = "Database relations of the scheme, as NAME/ARITY (repeatable)." in
  Arg.(value & opt_all string [] & info [ "s"; "schema" ] ~doc)

let parse_schema_assoc specs =
  try
    Ok
      (List.map
         (fun spec ->
           match String.index_opt spec '/' with
           | None -> failwith (Printf.sprintf "bad schema entry %S (want NAME/ARITY)" spec)
           | Some i ->
             ( String.sub spec 0 i,
               int_of_string (String.sub spec (i + 1) (String.length spec - i - 1)) ))
         specs)
  with Failure msg -> Error msg

let safety_cmd =
  let run schema formula =
    report
      (Result.bind (parse_schema_assoc schema) (fun schema ->
           Result.map
             (fun f ->
               match Safe_range.check ~schema f with
               | Safe_range.Safe_range ->
                 Format.printf "safe-range: the query is finite in every state@."
               | Safe_range.Not_safe_range why -> Format.printf "not safe-range: %s@." why)
             (parse_formula formula)))
  in
  let doc = "Check the syntactic safe-range (range-restriction) discipline." in
  Cmd.v (Cmd.info "safety" ~doc) Term.(const run $ schema_arg $ formula_arg)

(* ------------------------------ relsafe ---------------------------- *)

let relsafe_cmd =
  let run domain rels consts formula =
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.bind (parse_state rels consts) (fun state ->
               Result.map
                 (fun b ->
                   Format.printf "%s@." (if b then "finite in this state" else "INFINITE in this state"))
                 (Relative_safety.decide_for ~domain ~state f))))
  in
  let doc = "Decide relative safety: is the query's answer finite in the given state? (Undecidable over traces — Theorem 3.3.)" in
  Cmd.v (Cmd.info "relsafe" ~doc)
    Term.(const run $ domain_arg $ relation_arg $ constant_arg $ formula_arg)

(* ------------------------------- eval ------------------------------ *)

let fuel_arg =
  let doc = "Candidate budget for the enumeration algorithm." in
  Arg.(value & opt int 10_000 & info [ "fuel" ] ~doc)

let eval_cmd =
  let run domain rels consts fuel formula =
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.bind (parse_state rels consts) (fun state ->
               Result.map
                 (function
                   | Enumerate.Finite r ->
                     Format.printf "finite answer (%d tuples): %a@." (Relation.cardinal r)
                       Relation.pp r
                   | Enumerate.Out_of_fuel r ->
                     Format.printf
                       "fuel exhausted; partial answer (%d tuples): %a@.(the answer may be \
                        infinite — relative safety is the hard part)@."
                       (Relation.cardinal r) Relation.pp r)
                 (Enumerate.run ~fuel ~domain ~state f))))
  in
  let doc = "Answer a query in a state with the Section 1.1 enumerate-and-decide algorithm." in
  Cmd.v (Cmd.info "eval" ~doc)
    Term.(const run $ domain_arg $ relation_arg $ constant_arg $ fuel_arg $ formula_arg)

(* ------------------------------ report ----------------------------- *)

let report_cmd =
  let run domain rels consts fuel formula =
    report
      (Result.bind (parse_formula formula) (fun f ->
           Result.map
             (fun state ->
               Format.printf "%a@." Report.pp (Report.analyze ~fuel ~domain ~state f))
             (parse_state rels consts)))
  in
  let doc = "Full analysis of a query: syntactic safety, relative safety, and the answer by the best applicable evaluator." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ domain_arg $ relation_arg $ constant_arg $ fuel_arg $ formula_arg)

(* -------------------------------- tm ------------------------------- *)

let machine_of_string s =
  match List.find_opt (fun e -> e.Zoo.name = s) Zoo.all with
  | Some e -> Ok (Encode.encode e.Zoo.machine)
  | None ->
    if Word.is_machine_shaped s then Ok s
    else Error (Printf.sprintf "%S is neither a zoo machine nor a machine-shaped word" s)

let tm_cmd =
  let run machine input fuel show_traces explain list_zoo =
    if list_zoo then begin
      Format.printf "%-12s %-9s %s@." "name" "totality" "description";
      List.iter
        (fun e ->
          Format.printf "%-12s %-9s %s@.             encoding: %S@." e.Zoo.name
            (match e.Zoo.totality with
            | Zoo.Total -> "total"
            | Zoo.Non_total -> "non-total"
            | Zoo.Unknown -> "unknown")
            e.Zoo.description
            (Encode.encode e.Zoo.machine))
        Zoo.all;
      0
    end
    else
      report
        (Result.bind (machine_of_string machine) (fun m ->
             if not (Word.is_input input) then
               Error (Printf.sprintf "%S is not an input word over {1,-}" input)
             else begin
               (match Run.run ~fuel (Encode.decode m) input with
               | Run.Halted { steps; result } ->
                 Format.printf "halts after %d steps; result %S@." steps result
               | Run.Out_of_fuel -> Format.printf "still running after %d steps@." fuel);
               if show_traces then begin
                 Format.printf "traces:@.";
                 Trace.traces ~machine:m ~input |> Seq.take 10
                 |> Seq.iter (fun t -> Format.printf "  %S@." t)
               end;
               if explain then begin
                 match
                   Trace.trace_word ~machine:m ~input
                     ~k:(Run.config_count_upto ~bound:12 (Encode.decode m) input)
                 with
                 | Some t -> (
                   match Explain.trace t with
                   | Ok text -> Format.printf "%s" text
                   | Error e -> Format.printf "explain: %s@." e)
                 | None -> ()
               end;
               Ok ()
             end))
  in
  let machine =
    Arg.(value & opt string "scan_right" & info [ "m"; "machine" ] ~doc:"Zoo name or machine word.")
  in
  let input = Arg.(value & opt string "" & info [ "w"; "input" ] ~doc:"Input word over {1,-}.") in
  let fuel = Arg.(value & opt int 10_000 & info [ "fuel" ] ~doc:"Step budget.") in
  let traces = Arg.(value & flag & info [ "traces" ] ~doc:"Print the first traces.") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Render the computation snapshot by snapshot.")
  in
  let zoo = Arg.(value & flag & info [ "zoo" ] ~doc:"List the machine zoo and exit.") in
  let doc = "Run a Turing machine of the trace domain; inspect the zoo and traces." in
  Cmd.v (Cmd.info "tm" ~doc) Term.(const run $ machine $ input $ fuel $ traces $ explain $ zoo)

(* ------------------------------- diag ------------------------------ *)

let diag_cmd =
  let run budget =
    let scan = Encode.encode Zoo.scan_right in
    let syntax =
      { Syntax_class.name = "demo";
        description = "the totality query of scan_right";
        accepts = (fun f -> Formula.equal f (Diagonal.totality_query scan));
        enumerate = (fun () -> Seq.return (Diagonal.totality_query scan)) }
    in
    report
      (Result.map
         (function
           | Diagonal.Missed_finite_query { machine; query; candidates_checked } ->
             Format.printf
               "the candidate syntax misses a finite query (Theorem 3.1):@.  total machine \
                %S@.  finite query %a@.  not equivalent to any of %d candidates@."
               machine Formula.pp query candidates_checked
           | Diagonal.Admits_unsafe { formula; witness_machine; witness_input } ->
             Format.printf
               "the candidate syntax admits an unsafe formula:@.  %a@.  (the machine %S \
                diverges on %S)@."
               Formula.pp formula witness_machine witness_input)
         (Diagonal.defeat ~syntax ~budget))
  in
  let budget = Arg.(value & opt int 4 & info [ "budget" ] ~doc:"Search budget.") in
  let doc = "Run the Theorem 3.1 diagonalization against a demo candidate syntax." in
  Cmd.v (Cmd.info "diag" ~doc) Term.(const run $ budget)

(* ------------------------------ halting ---------------------------- *)

let halting_cmd =
  let run machine input fuel =
    report
      (Result.bind (machine_of_string machine) (fun m ->
           Result.map
             (function
               | Halting_reduction.Halts { steps; answer } ->
                 Format.printf
                   "the machine halts after %d steps: the query P(M, @@c, x) is finite in \
                    the state c = %S, with %d certified answer tuples@."
                   steps input (Relation.cardinal answer)
               | Halting_reduction.Diverges_beyond { trace_count } ->
                 Format.printf
                   "no halt within %d steps: at least %d answer tuples so far (if the \
                    machine diverges, the answer is infinite — and Theorem 3.3 says no \
                    procedure can always tell)@."
                   fuel trace_count)
             (Halting_reduction.check ~fuel ~machine:m ~input ())))
  in
  let machine =
    Arg.(value & opt string "loop" & info [ "m"; "machine" ] ~doc:"Zoo name or machine word.")
  in
  let input = Arg.(value & opt string "" & info [ "w"; "input" ] ~doc:"Input word.") in
  let fuel = Arg.(value & opt int 1_000 & info [ "fuel" ] ~doc:"Simulation budget.") in
  let doc = "The Theorem 3.3 reduction: halting of (M, w) as relative safety over T." in
  Cmd.v (Cmd.info "halting" ~doc) Term.(const run $ machine $ input $ fuel)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc = "finite queries of the relational calculus — Stolboushkin & Taitslin, reproduced" in
  let info = Cmd.info "fq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ decide_cmd; safety_cmd; relsafe_cmd; eval_cmd; report_cmd; tm_cmd; diag_cmd; halting_cmd ]))
