(* Theorem 3.1, run as a program: finite queries over the trace domain T
   do not have an effective syntax.

   We hand the diagonalization harness two candidate "recursive syntaxes"
   and watch it defeat both, exactly along the proof's dichotomy:

   - a syntax that only contains finite queries (sound) is INCOMPLETE: the
     harness manufactures a total machine — using the Lemma A.2 builder —
     whose finite totality query P(M, @c, x) is equivalent to none of the
     candidates (equivalence is decidable by Corollary A.4, which is what
     makes the whole argument bite);
   - a syntax that covers that query by including an arbitrary formula is
     UNSOUND: the harness exhibits a candidate equivalent to the totality
     query of a machine that diverges on a known input.

   Run with: dune exec examples/effective_syntax.exe *)

open Finite_queries

let () =
  let scan = Encode.encode Zoo.scan_right in
  let halter = Encode.encode Zoo.halt in
  let looper = Encode.encode Zoo.loop in

  Format.printf "The totality query of a machine M: %a@." Formula.pp
    (Diagonal.totality_query scan);
  Format.printf
    "It is a finite query iff M is total (halts on every input).@.@.";

  (* the decidable equivalence test underlying everything *)
  Format.printf "Equivalence of one-variable queries is decidable over T:@.";
  let pairs =
    [ ("scan vs scan", scan, scan); ("scan vs halt", scan, halter);
      ("halt vs loop", halter, looper) ]
  in
  List.iter
    (fun (label, m1, m2) ->
      match
        Diagonal.equivalent_queries (Diagonal.totality_query m1) (Diagonal.totality_query m2)
      with
      | Ok b -> Format.printf "  %-15s %b@." label b
      | Error e -> Format.printf "  %-15s error (%s)@." label e)
    pairs;

  let manual name formulas =
    { Syntax_class.name;
      description = name;
      accepts = (fun f -> List.exists (Formula.equal f) formulas);
      enumerate = (fun () -> List.to_seq formulas) }
  in

  (* Candidate 1: sound but (necessarily) incomplete *)
  let sound = manual "sound-candidate" [ Diagonal.totality_query scan ] in
  Format.printf "@.Candidate syntax #1: { totality query of scan_right } (all finite)@.";
  (match Diagonal.defeat ~syntax:sound ~budget:4 with
  | Ok (Diagonal.Missed_finite_query { machine; query; candidates_checked }) ->
    Format.printf "  DEFEATED — it misses a finite query.@.";
    Format.printf "  fresh total machine: %S@." machine;
    Format.printf "  its finite query: %a@." Formula.pp query;
    Format.printf "  equivalent to none of the %d candidates checked@." candidates_checked;
    (* demonstrate totality on a few inputs *)
    Format.printf "  (the fresh machine halts on every input — sampled:";
    Word.enumerate_over "1-" () |> Seq.take 8
    |> Seq.iter (fun w ->
           match Run.halts_within ~fuel:10_000 (Encode.decode machine) w with
           | Some steps -> Format.printf " %S:%d" w steps
           | None -> Format.printf " %S:?" w);
    Format.printf ")@."
  | Ok (Diagonal.Admits_unsafe _) -> Format.printf "  unexpectedly unsound?!@."
  | Error e -> Format.printf "  error: %s@." e);

  (* Candidate 2: complete enough to cover the loop machine — unsound *)
  let unsound =
    manual "unsound-candidate"
      [ Diagonal.totality_query scan; Diagonal.totality_query looper ]
  in
  Format.printf
    "@.Candidate syntax #2: adds the totality query of the looper (an unsafe formula)@.";
  (match Diagonal.defeat ~syntax:unsound ~budget:4 with
  | Ok (Diagonal.Admits_unsafe { formula; witness_machine; witness_input }) ->
    Format.printf "  DEFEATED — it admits an unsafe formula.@.";
    Format.printf "  the formula: %a@." Formula.pp formula;
    Format.printf "  equivalent to the totality query of %S,@." witness_machine;
    Format.printf "  which diverges on %S: its answer there is infinite.@." witness_input
  | Ok (Diagonal.Missed_finite_query _) -> Format.printf "  unexpectedly incomplete first@."
  | Error e -> Format.printf "  error: %s@." e);

  (* the reduction run forward: a sound+complete syntax would enumerate
     the total machines *)
  Format.printf
    "@.The reduction (were a sound+complete syntax to exist, this would@.enumerate \
     exactly the total machines — impossible by diagonalization):@.";
  let covering =
    manual "covering" [ Diagonal.totality_query halter; Diagonal.totality_query scan ]
  in
  (match
     Diagonal.enumerate_total_machines_via ~syntax:covering ~formula_budget:2
       ~machine_budget:40
   with
  | Ok machines ->
    Format.printf
      "  machines covered by {halt, scan_right} among the first 40 machine words:@.";
    List.iter (fun m -> Format.printf "    %S (certified total by soundness)@." m) machines
  | Error e -> Format.printf "  error: %s@." e);

  Format.printf
    "@.Conclusion (Theorem 3.1): every recursive syntax either misses a finite@.query \
     or admits an unsafe formula — over T there is no effective syntax.@."
