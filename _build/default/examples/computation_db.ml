(* A database of computational experiments over the trace domain T — the
   application the paper's conclusion motivates: "this domain is arguably
   a natural choice in several applications related to storing results of
   computations".

   We store experiment records (machine, input) in a relation, query their
   traces through the interpreted predicate P, and watch both sides of
   Theorem 3.3: for halting experiments the trace query has a finite,
   certifiable answer; for diverging ones the answer grows without bound,
   and no procedure can tell us so in general.

   Run with: dune exec examples/computation_db.exe *)

open Finite_queries

let parse = Parser.formula_exn
let s = Value.str

let () =
  let domain : Domain.t = (module Traces) in
  let scan = Encode.encode Zoo.scan_right in
  let looper = Encode.encode Zoo.loop in
  let parity = Encode.encode Zoo.parity in

  (* The scheme: Exp(machine, input) — scheduled experiment runs. *)
  let schema = Schema.make [ ("Exp", 2) ] in
  let experiments =
    Relation.make ~arity:2
      [ [ s scan; s "11" ]; [ s parity; s "11" ]; [ s parity; s "111" ];
        [ s looper; s "1" ] ]
  in
  let state = State.make ~schema [ ("Exp", experiments) ] in
  Format.printf "Experiment registry (machine word, input word):@.%a@." State.pp state;

  (* Which experiments have already produced a trace? *)
  let q = parse "exists p. Exp(m, w) /\\ P(m, w, p)" in
  Format.printf "@.Experiments with at least one trace (all of them, by definition):@.";
  (match Enumerate.run ~fuel:400 ~max_certified:6 ~domain ~state q with
  | Ok (Enumerate.Finite r) -> Format.printf "  %a@." Relation.pp r
  | Ok (Enumerate.Out_of_fuel r) ->
    Format.printf "  (fuel exhausted) partial: %d rows@." (Relation.cardinal r)
  | Error e -> Format.printf "  error: %s@." e);

  (* All traces of the halting experiments: P(m, w, p) for registered
     (m, w). Finite iff every registered machine halts on its input —
     here it is not, because of the looper. *)
  let traces_q = parse "Exp(m, w) /\\ P(m, w, p)" in
  Format.printf
    "@.All traces of registered experiments (the looper makes this infinite):@.";
  (match Relative_safety.bounded ~fuel:600 ~max_certified:4 ~domain ~state traces_q with
  | Ok (Relative_safety.Finite r) ->
    Format.printf "  finite, %d rows (unexpected!)@." (Relation.cardinal r)
  | Ok (Relative_safety.Unknown partial) ->
    Format.printf "  not certified finite; %d trace rows and counting...@."
      (Relation.cardinal partial)
  | Ok Relative_safety.Infinite -> Format.printf "  infinite@."
  | Error e -> Format.printf "  error: %s@." e);

  (* Theorem 3.3 on individual instances: the reduction halting -> finite. *)
  Format.printf "@.Theorem 3.3, instance by instance (query P(M, @@c, x) in state c = w):@.";
  List.iter
    (fun (name, machine, input) ->
      match Halting_reduction.check ~fuel:2_000 ~machine ~input () with
      | Ok (Halting_reduction.Halts { steps; answer }) ->
        Format.printf
          "  %s on %S: halts after %d steps -> finite answer, %d traces (certified)@." name
          input steps (Relation.cardinal answer)
      | Ok (Halting_reduction.Diverges_beyond { trace_count }) ->
        Format.printf "  %s on %S: no halt within fuel -> at least %d answer tuples@." name
          input trace_count
      | Error e -> Format.printf "  %s on %S: error (%s)@." name input e)
    [ ("scan_right", scan, "11"); ("parity", parity, "11"); ("parity", parity, "111");
      ("loop", looper, "1") ];

  (* The decidable theory at work (Corollary A.4): first-order questions
     about the registry are answerable even though finiteness is not. *)
  Format.printf "@.Some decided sentences of the theory of traces:@.";
  List.iter
    (fun (label, sentence) ->
      match Traces.decide (parse sentence) with
      | Ok b -> Format.printf "  %-60s %b@." label b
      | Error e -> Format.printf "  %-60s error (%s)@." label e)
    [ ( "scan_right has a 3-snapshot computation on \"11\"",
        Printf.sprintf
          "exists p1 p2 p3. P(\"%s\", \"11\", p1) /\\ P(\"%s\", \"11\", p2) /\\ P(\"%s\", \
           \"11\", p3) /\\ p1 != p2 /\\ p1 != p3 /\\ p2 != p3"
          scan scan scan );
      ( "some machine halts instantly on \"1\"",
        "exists m. (exists p. P(m, \"1\", p)) /\\ (forall p q. P(m, \"1\", p) /\\ P(m, \
         \"1\", q) -> p = q)" );
      ("a trace determines its machine", "exists m n w p. P(m, w, p) /\\ P(n, w, p) /\\ m != n")
    ]
