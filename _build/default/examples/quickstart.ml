(* Quickstart: the paper's Section 1 father/son database.

   Builds the one-relation scheme, runs the two example queries M(x) and
   G(x,z) with the Section 1.1 enumerate-and-decide algorithm, contrasts
   them with the unsafe union M(x) ∨ G(x,z), and shows the syntactic
   safe-range check and the relative-safety decision.

   Run with: dune exec examples/quickstart.exe *)

open Finite_queries

let parse = Parser.formula_exn
let s = Value.str

let () =
  (* The scheme: one binary father/son relation F. *)
  let schema = Schema.make [ ("F", 2) ] in
  let family =
    Relation.make ~arity:2
      [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
        [ s "enoch"; s "irad" ] ]
  in
  let state = State.make ~schema [ ("F", family) ] in
  let domain : Domain.t = (module Eq_domain) in
  Format.printf "Database state:@.%a@." State.pp state;

  (* M(x): "those x's who have more than one son" *)
  let m = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  (* G(x,z): "grandfathers/grandsons" *)
  let g = parse "exists y. F(x, y) /\\ F(y, z)" in
  (* the unsafe union of the two (footnote 4) *)
  let union = Formula.Or (m, Formula.subst [] g) in

  let show name f =
    Format.printf "@.Query %s: %a@." name Formula.pp f;
    (* 1. syntactic safety: the safe-range effective syntax *)
    (match Safe_range.check ~schema:[ ("F", 2) ] f with
    | Safe_range.Safe_range -> Format.printf "  safe-range: yes (finite in every state)@."
    | Safe_range.Not_safe_range why -> Format.printf "  safe-range: no (%s)@." why);
    (* 2. relative safety: finite in this particular state? *)
    (match Relative_safety.via_active_domain ~state f with
    | Ok true -> Format.printf "  relative safety: finite in this state@."
    | Ok false -> Format.printf "  relative safety: INFINITE in this state@."
    | Error e -> Format.printf "  relative safety: error (%s)@." e);
    (* 3. answer via the Section 1.1 enumeration algorithm *)
    match Enumerate.run ~fuel:5_000 ~domain ~state f with
    | Ok (Enumerate.Finite r) -> Format.printf "  answer: %a@." Relation.pp r
    | Ok (Enumerate.Out_of_fuel partial) ->
      Format.printf "  answer: ran out of fuel; partial answer has %d tuples@."
        (Relation.cardinal partial)
    | Error e -> Format.printf "  answer: error (%s)@." e
  in
  show "M(x)" m;
  show "G(x,z)" g;
  show "M(x) \\/ G(x,z)" union;

  (* the same unsafe union is finite in a state where no father has two
     sons — relative safety is a per-state question *)
  let single =
    State.make ~schema
      [ ("F", Relation.make ~arity:2 [ [ s "adam"; s "cain" ]; [ s "cain"; s "enoch" ] ]) ]
  in
  Format.printf "@.In a state where every father has one son:@.";
  (match Relative_safety.via_active_domain ~state:single union with
  | Ok b -> Format.printf "  M(x) \\/ G(x,z) finite there: %b@." b
  | Error e -> Format.printf "  error: %s@." e);

  (* the algebra compiler: polynomial-time evaluation for safe queries *)
  Format.printf "@.Algebra plans (safe-range fragment):@.";
  List.iter
    (fun (name, f) ->
      match Algebra_translate.compile ~domain ~state f with
      | Ok { plan; columns } ->
        Format.printf "  %s over columns (%s):@.    %a@.    = %a@." name
          (String.concat ", " columns) Relalg.pp plan Relation.pp
          (Relalg.eval ~state plan)
      | Error e -> Format.printf "  %s: %s@." name e)
    [ ("M(x)", m); ("G(x,z)", g) ]
