examples/effective_syntax.ml: Diagonal Encode Finite_queries Format Formula List Run Seq Syntax_class Word Zoo
