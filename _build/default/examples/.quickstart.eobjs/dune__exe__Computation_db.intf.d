examples/computation_db.mli:
