examples/numeric_safety.mli:
