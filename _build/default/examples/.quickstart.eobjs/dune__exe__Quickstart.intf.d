examples/quickstart.mli:
