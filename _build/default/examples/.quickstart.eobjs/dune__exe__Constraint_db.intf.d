examples/constraint_db.mli:
