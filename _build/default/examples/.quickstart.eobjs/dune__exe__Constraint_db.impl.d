examples/constraint_db.ml: Crel Finite_queries Format List Rat String
