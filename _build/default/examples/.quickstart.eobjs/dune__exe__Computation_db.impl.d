examples/computation_db.ml: Domain Encode Enumerate Finite_queries Format Halting_reduction List Parser Printf Relation Relative_safety Schema State Traces Value Zoo
