examples/effective_syntax.mli:
