examples/quickstart.ml: Algebra_translate Domain Enumerate Eq_domain Finite_queries Format Formula List Parser Relalg Relation Relative_safety Safe_range Schema State String Value
