(* The paper's Section 2 positive cases, end to end over the numeric
   domains N_<, Presburger and N':

   - Fact 2.1: a finite but not domain-independent query;
   - Theorem 2.2: the finitization operator as an effective syntax;
   - Theorem 2.5: relative safety decided through finitization;
   - Theorems 2.6/2.7: the successor domain via the extended active
     domain.

   Run with: dune exec examples/numeric_safety.exe *)

open Finite_queries

let parse = Parser.formula_exn
let v = Value.int

let () =
  let presburger : Domain.t = (module Presburger) in
  let succ_domain : Domain.t = (module Nat_succ) in
  let schema = Schema.make [ ("R", 1) ] in
  let state = State.make ~schema [ ("R", Relation.make ~arity:1 [ [ v 2 ]; [ v 5 ] ]) ] in
  Format.printf "State over the naturals:@.%a@." State.pp state;

  (* Fact 2.1: the least element above every active-domain element *)
  let fact21 =
    parse "(forall y. R(y) -> y < x) /\\ (forall z. (forall y. R(y) -> y < z) -> x <= z)"
  in
  Format.printf "@.Fact 2.1's query (least element above the active domain):@.  %a@."
    Formula.pp fact21;
  (match Enumerate.run ~fuel:2_000 ~domain:presburger ~state fact21 with
  | Ok (Enumerate.Finite r) ->
    Format.printf "  natural answer: %a  (finite, but OUTSIDE the active domain!)@."
      Relation.pp r
  | _ -> Format.printf "  evaluation failed@.");
  (match Algebra_translate.run ~domain:presburger ~state fact21 with
  | Ok r ->
    Format.printf
      "  active-domain (algebra) answer: %a  — differs: the query is not \
       domain-independent@."
      Relation.pp r
  | Error e -> Format.printf "  algebra: %s@." e);

  (* Theorem 2.2: finitization *)
  let unsafe = parse "R(y) /\\ y < x" in
  Format.printf "@.An unsafe query: %a@." Formula.pp unsafe;
  let fin = Finitization.finitize unsafe in
  Format.printf "Its finitization (Theorem 2.2):@.  %a@." Formula.pp fin;
  (match Enumerate.run ~fuel:2_000 ~domain:presburger ~state unsafe with
  | Ok (Enumerate.Out_of_fuel partial) ->
    Format.printf "  original: out of fuel with %d tuples — infinite@."
      (Relation.cardinal partial)
  | Ok (Enumerate.Finite r) -> Format.printf "  original: finite %a@." Relation.pp r
  | Error e -> Format.printf "  original: %s@." e);
  (match Enumerate.run ~fuel:2_000 ~domain:presburger ~state fin with
  | Ok (Enumerate.Finite r) ->
    Format.printf "  finitization: finite %a (empty: the bound fails, so it truncates to ∅)@."
      Relation.pp r
  | Ok (Enumerate.Out_of_fuel _) -> Format.printf "  finitization: out of fuel?!@."
  | Error e -> Format.printf "  finitization: %s@." e);

  (* Theorem 2.5: relative safety over any decidable extension of N_< *)
  Format.printf "@.Relative safety over Presburger (Theorem 2.5):@.";
  List.iter
    (fun q ->
      match
        Relative_safety.via_finitization ~domain:presburger ~decide:Presburger.decide ~state
          (parse q)
      with
      | Ok b -> Format.printf "  %-40s %s@." q (if b then "finite" else "infinite")
      | Error e -> Format.printf "  %-40s error (%s)@." q e)
    [ "R(x)"; "~R(x)"; "exists y. R(y) /\\ x < y"; "exists y. R(y) /\\ y < x";
      "x < 3 \\/ x = 7"; "2 | x" ];

  (* Theorems 2.6/2.7: the successor domain N' *)
  Format.printf "@.The successor domain N' (no order!):@.";
  List.iter
    (fun q ->
      match Ext_active.finite_in_state ~domain:succ_domain ~state (parse q) with
      | Ok b -> Format.printf "  %-40s %s@." q (if b then "finite" else "infinite")
      | Error e -> Format.printf "  %-40s error (%s)@." q e)
    [ "R(x)"; "~R(x)"; "exists y. R(y) /\\ x = y''"; "exists y. R(y) /\\ x'' = y"; "x != 3" ];
  let loose = parse "x != 3" in
  let restricted = Ext_active.restrict ~schema:[ ("R", 1) ] loose in
  Format.printf "@.Theorem 2.7's restriction of %a:@.  %a@." Formula.pp loose Formula.pp
    restricted;
  (match Ext_active.finite_in_state ~domain:succ_domain ~state restricted with
  | Ok b -> Format.printf "  restricted query finite: %b@." b
  | Error e -> Format.printf "  error: %s@." e);

  (* Corollary 2.3: arithmetic is undecidable yet keeps the finitization
     syntax *)
  Format.printf "@.Corollary 2.3 — full arithmetic:@.";
  (match Arithmetic.decide (parse "exists x y z. x * x + y * y = z * z /\\ 0 < x") with
  | Ok _ -> Format.printf "  (unexpectedly decided)@."
  | Error e -> Format.printf "  nonlinear sentence refused: %s@." e);
  let arith_unsafe = parse "exists y. x = y * y" in
  Format.printf "  ...but the finitization operator still applies syntactically:@.  %a@."
    Formula.pp
    (Finitization.finitize arith_unsafe)
