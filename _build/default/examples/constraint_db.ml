(* Section 1.2's "way out": accept infinite relations, but keep them
   finitely representable — constraint databases over the dense order
   (KKR90). Unlike the trace domain, here the relative safety question
   ("is this relation actually finite?") is decidable.

   Run with: dune exec examples/constraint_db.exe *)

open Finite_queries
open Crel

let q = Rat.of_int
let qq = Rat.of_ints

let () =
  (* An infinite relation: the open square (0,10) x (0,10). *)
  let square =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = C (q 0); op = Lt; rhs = V "x" }; { lhs = V "x"; op = Lt; rhs = C (q 10) };
          { lhs = C (q 0); op = Lt; rhs = V "y" }; { lhs = V "y"; op = Lt; rhs = C (q 10) } ] ]
  in
  (* Another: the half-plane below the diagonal. *)
  let below = make ~columns:[ "x"; "y" ] [ [ { lhs = V "y"; op = Lt; rhs = V "x" } ] ] in
  Format.printf "square =@.%a@." pp square;
  Format.printf "below  =@.%a@." pp below;

  (* "the database remains capable of answering questions of whether a
     certain tuple belongs to a relation" *)
  let triangle = inter square below in
  Format.printf "@.triangle = square ∩ below:@.%a@." pp triangle;
  List.iter
    (fun (x, y) ->
      Format.printf "  (%a, %a) ∈ triangle?  %b@." Rat.pp x Rat.pp y (mem triangle [ x; y ]))
    [ (q 5, q 3); (q 3, q 5); (qq 1 2, qq 1 4); (q 11, q 1) ];

  (* projection by dense-order quantifier elimination *)
  let shadow = project ~keep:[ "x" ] triangle in
  Format.printf "@.∃y triangle (projection onto x):@.%a@." pp shadow;
  Format.printf "  1/1000 ∈ shadow?  %b  (density: some y fits below any positive x)@."
    (mem shadow [ qq 1 1000 ]);

  (* complement stays representable *)
  Format.printf "@.complement of the square has %d cells; (11, 5) ∈ it?  %b@."
    (List.length (cells (complement square)))
    (mem (complement square) [ q 11; q 5 ]);

  (* finiteness — the relative-safety question — is decidable here *)
  Format.printf "@.Finiteness (decidable over the dense order, unlike over T):@.";
  let finite_example =
    make ~columns:[ "x"; "y" ]
      [ [ { lhs = V "x"; op = Eq; rhs = C (q 3) }; { lhs = V "y"; op = Eq; rhs = V "x" } ];
        [ { lhs = V "x"; op = Eq; rhs = C (q 7) }; { lhs = V "y"; op = Eq; rhs = C (q 0) } ] ]
  in
  List.iter
    (fun (name, r) ->
      Format.printf "  %-22s finite: %b" name (is_finite r);
      (match enumerate_if_finite r with
      | Some tuples ->
        Format.printf "  = {";
        List.iter
          (fun t ->
            Format.printf " (%s)" (String.concat ", " (List.map Rat.to_string t)))
          tuples;
        Format.printf " }"
      | None -> ());
      Format.printf "@.")
    [ ("square", square); ("triangle", triangle); ("two points", finite_example);
      ("empty", empty ~columns:[ "x"; "y" ]) ];

  (* witnesses of nonempty relations *)
  Format.printf "@.Witnesses:@.";
  List.iter
    (fun (name, r) ->
      match witness r with
      | Some t ->
        Format.printf "  %-22s ∋ (%s)@." name (String.concat ", " (List.map Rat.to_string t))
      | None -> Format.printf "  %-22s is empty@." name)
    [ ("triangle", triangle); ("square - square", diff square square) ]
