(* Property tests for the plan optimizer (PR 1): random well-formed plans
   over random small states must evaluate identically before and after
   optimization, and the hash equijoin must agree with its specification,
   a selection over a cartesian product. *)

module Relation = Fq_db.Relation
module Relalg = Fq_db.Relalg
module Optimizer = Fq_db.Optimizer
module Schema = Fq_db.Schema
module State = Fq_db.State
module Value = Fq_db.Value

let vi = Value.int
let schema = Schema.make [ ("A", 1); ("B", 2); ("C", 3) ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* a tiny value universe, so equalities hold often enough to matter *)
let gen_value = QCheck.Gen.map vi (QCheck.Gen.int_range 0 4)

let gen_rows arity =
  QCheck.Gen.(list_size (int_range 0 7) (list_repeat arity gen_value))

let gen_relation arity = QCheck.Gen.map (Relation.make ~arity) (gen_rows arity)

let gen_state =
  QCheck.Gen.(
    map3
      (fun a b c -> State.make ~schema [ ("A", a); ("B", b); ("C", c) ])
      (gen_relation 1) (gen_relation 2) (gen_relation 3))

let gen_arg arity =
  let open QCheck.Gen in
  if arity = 0 then map (fun v -> Relalg.Const v) gen_value
  else
    frequency
      [ (3, map (fun i -> Relalg.Col i) (int_range 0 (arity - 1)));
        (1, map (fun v -> Relalg.Const v) gen_value) ]

let rec gen_cond depth arity =
  let open QCheck.Gen in
  let eq = map2 (fun a b -> Relalg.Eq (a, b)) (gen_arg arity) (gen_arg arity) in
  if depth = 0 then eq
  else
    frequency
      [ (4, eq);
        (1, map (fun c -> Relalg.Not c) (gen_cond (depth - 1) arity));
        ( 2,
          map2
            (fun c d -> Relalg.And_c (c, d))
            (gen_cond (depth - 1) arity)
            (gen_cond (depth - 1) arity) );
        ( 1,
          map2
            (fun c d -> Relalg.Or_c (c, d))
            (gen_cond (depth - 1) arity)
            (gen_cond (depth - 1) arity) ) ]

(* Arity-directed plan generator: every produced plan is well-formed and
   has exactly the requested arity, so Union/Diff/Join constraints hold
   by construction. *)
let rec gen_plan fuel arity =
  let open QCheck.Gen in
  let base =
    let lit = map (fun r -> Relalg.Lit r) (gen_relation arity) in
    match arity with
    | 1 -> oneof [ return (Relalg.Rel "A"); lit ]
    | 2 -> oneof [ return (Relalg.Rel "B"); lit ]
    | 3 -> oneof [ return (Relalg.Rel "C"); lit ]
    | _ -> lit
  in
  if fuel = 0 then base
  else
    let sub = gen_plan (fuel - 1) in
    let select =
      gen_cond 2 arity >>= fun c -> map (fun p -> Relalg.Select (c, p)) (sub arity)
    in
    let project =
      int_range 0 2 >>= fun extra ->
      let inner = arity + extra in
      if inner = 0 then map (fun p -> Relalg.Project ([], p)) (sub 0)
      else
        list_repeat arity (int_range 0 (inner - 1)) >>= fun cols ->
        map (fun p -> Relalg.Project (cols, p)) (sub inner)
    in
    let product =
      int_range 0 arity >>= fun a1 ->
      map2 (fun p q -> Relalg.Product (p, q)) (sub a1) (sub (arity - a1))
    in
    let join =
      int_range 0 arity >>= fun a1 ->
      let a2 = arity - a1 in
      (if a1 = 0 || a2 = 0 then return []
       else
         list_size (int_range 0 2)
           (pair (int_range 0 (a1 - 1)) (int_range 0 (a2 - 1))))
      >>= fun pairs -> map2 (fun p q -> Relalg.Join (pairs, p, q)) (sub a1) (sub a2)
    in
    let union = map2 (fun p q -> Relalg.Union (p, q)) (sub arity) (sub arity) in
    let diff = map2 (fun p q -> Relalg.Diff (p, q)) (sub arity) (sub arity) in
    frequency
      [ (2, base); (3, select); (2, project); (2, product); (2, join); (2, union);
        (2, diff) ]

let gen_scenario =
  QCheck.Gen.(
    int_range 0 3 >>= fun arity ->
    int_range 0 3 >>= fun fuel -> pair (gen_plan fuel arity) gen_state)

let print_scenario (plan, _state) = Format.asprintf "%a" Relalg.pp plan

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves semantics (random plans/states)"
    ~count:600
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, state) ->
      let before = Relalg.eval ~state plan in
      let after = Relalg.eval ~state (Optimizer.optimize_for ~schema plan) in
      Relation.equal before after)

let prop_optimize_wellformed =
  QCheck.Test.make ~name:"optimize preserves static arity" ~count:600
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, _state) ->
      let opt = Optimizer.optimize_for ~schema plan in
      match (Relalg.arity_check ~schema plan, Relalg.arity_check ~schema opt) with
      | Ok a, Ok b -> a = b
      | _ -> false)

let prop_optimize_with_stats_preserves_semantics =
  QCheck.Test.make
    ~name:"cost-based optimize preserves semantics (stats from the state)" ~count:600
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, state) ->
      let stats = Optimizer.Stats.of_state state in
      let before = Relalg.eval ~state plan in
      let after = Relalg.eval ~state (Optimizer.optimize_for ~stats ~schema plan) in
      Relation.equal before after)

let prop_optimize_with_stats_wellformed =
  QCheck.Test.make ~name:"cost-based optimize preserves static arity" ~count:600
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, state) ->
      let stats = Optimizer.Stats.of_state state in
      let opt = Optimizer.optimize_for ~stats ~schema plan in
      match (Relalg.arity_check ~schema plan, Relalg.arity_check ~schema opt) with
      | Ok a, Ok b -> a = b
      | _ -> false)

let gen_join_case =
  QCheck.Gen.(
    int_range 1 2 >>= fun a1 ->
    int_range 1 2 >>= fun a2 ->
    triple
      (list_size (int_range 1 3) (pair (int_range 0 (a1 - 1)) (int_range 0 (a2 - 1))))
      (gen_relation a1) (gen_relation a2))

let print_join_case (pairs, ra, rb) =
  Format.asprintf "pairs=[%s] %a %a"
    (String.concat "; " (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs))
    Relation.pp ra Relation.pp rb

let prop_join_is_select_product =
  QCheck.Test.make ~name:"hash equijoin = select over product" ~count:500
    (QCheck.make ~print:print_join_case gen_join_case)
    (fun (pairs, ra, rb) ->
      let a1 = Relation.arity ra in
      let state = State.make ~schema [] in
      let p = Relalg.Lit ra and q = Relalg.Lit rb in
      let cond =
        match
          List.map (fun (i, j) -> Relalg.Eq (Col i, Col (a1 + j))) pairs
        with
        | [] -> assert false
        | c :: rest -> List.fold_left (fun acc c' -> Relalg.And_c (acc, c')) c rest
      in
      Relation.equal
        (Relalg.eval ~state (Relalg.Join (pairs, p, q)))
        (Relalg.eval ~state (Relalg.Select (cond, Relalg.Product (p, q)))))

(* ------------------------------------------------------------------ *)
(* Deterministic rewrite checks                                        *)
(* ------------------------------------------------------------------ *)

let count_nodes pred plan =
  let rec go p =
    (if pred p then 1 else 0)
    +
    match p with
    | Relalg.Rel _ | Relalg.Lit _ -> 0
    | Relalg.Select (_, p) | Relalg.Project (_, p) -> go p
    | Relalg.Product (p, q)
    | Relalg.Join (_, p, q)
    | Relalg.Union (p, q)
    | Relalg.Diff (p, q) ->
      go p + go q
  in
  go plan

let is_join = function Relalg.Join _ -> true | _ -> false
let is_product = function Relalg.Product _ -> true | _ -> false

let test_select_product_becomes_join () =
  let plan =
    Relalg.(Select (Eq (Col 1, Col 2), Product (Rel "B", Rel "B")))
  in
  let opt = Optimizer.optimize_for ~schema plan in
  Alcotest.(check int) "one hash join" 1 (count_nodes is_join opt);
  Alcotest.(check int) "no residual product" 0 (count_nodes is_product opt)

let test_chain_becomes_two_joins () =
  let plan =
    Relalg.(
      Select
        ( Eq (Col 3, Col 4),
          Product (Select (Eq (Col 1, Col 2), Product (Rel "B", Rel "B")), Rel "B") ))
  in
  let opt = Optimizer.optimize_for ~schema plan in
  Alcotest.(check int) "two hash joins" 2 (count_nodes is_join opt);
  Alcotest.(check int) "no residual product" 0 (count_nodes is_product opt);
  let state =
    State.make ~schema
      [ ( "B",
          Relation.make ~arity:2
            (List.init 30 (fun i -> [ vi i; vi (i + 1) ])) ) ]
  in
  Alcotest.(check bool)
    "same answer on a chain database" true
    (Relation.equal (Relalg.eval ~state plan) (Relalg.eval ~state opt))

let test_identity_project_pruned () =
  let plan = Relalg.(Project ([ 0; 1 ], Rel "B")) in
  Alcotest.(check bool)
    "identity projection removed" true
    (Optimizer.optimize_for ~schema plan = Relalg.Rel "B")

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let arity_of = Schema.arity schema

let test_estimate_uses_state_cards () =
  let a = Relation.make ~arity:1 (List.init 7 (fun i -> [ vi i ])) in
  let state =
    State.make ~schema
      [ ("A", a); ("B", Relation.empty ~arity:2); ("C", Relation.empty ~arity:3) ]
  in
  let stats = Optimizer.Stats.of_state state in
  Alcotest.(check (float 0.001))
    "leaf estimate is the exact base cardinality" 7.
    (Optimizer.estimate stats ~arity_of (Relalg.Rel "A"));
  (* a point selection divides by the column's distinct count *)
  Alcotest.(check (float 0.001))
    "point selection keeps 1/distinct" 1.
    (Optimizer.estimate stats ~arity_of
       Relalg.(Select (Eq (Col 0, Const (vi 3)), Rel "A")))

let test_estimate_profile_overrides () =
  let plan = Relalg.Rel "A" in
  let fp = Relalg.fingerprint plan in
  let stats = Optimizer.Stats.of_profile [ (fp, 42.) ] in
  Alcotest.(check (float 0.001))
    "profiled cardinality wins over the formula" 42.
    (Optimizer.estimate stats ~arity_of plan);
  Alcotest.(check (float 0.001))
    "unprofiled node falls back to the default" 100.
    (Optimizer.estimate stats ~arity_of (Relalg.Rel "B"))

(* the greedy reorder must start the spine from the largest factor: the
   accumulated prefix is the probe side, each added factor a hash build *)
let rec leftmost_leaf = function
  | Relalg.Join (_, p, _) | Relalg.Product (p, _) -> leftmost_leaf p
  | Relalg.Select (_, p) | Relalg.Project (_, p) -> leftmost_leaf p
  | Relalg.Rel r -> Some r
  | Relalg.Lit _ | Relalg.Union _ | Relalg.Diff _ -> None

let test_stats_reorder_probes_largest () =
  let a = Relation.make ~arity:1 (List.init 2 (fun i -> [ vi i ])) in
  let b = Relation.make ~arity:2 (List.init 30 (fun i -> [ vi (i mod 2); vi i ])) in
  let c =
    Relation.make ~arity:3 (List.init 50 (fun i -> [ vi (i mod 30); vi i; vi i ]))
  in
  let state = State.make ~schema [ ("A", a); ("B", b); ("C", c) ] in
  let stats = Optimizer.Stats.of_state state in
  (* (A × B) ⋈ C as written: the unconnected A × B cross product comes
     first, while both A and B connect to C. The greedy reorder starts
     from the 50-row C (the probe side of every later join) and adds B
     then A along join predicates — never materializing the product. *)
  let plan =
    Relalg.(
      Join ([ (0, 0); (2, 1) ], Product (Rel "A", Rel "B"), Rel "C"))
  in
  let plain = Optimizer.optimize_for ~schema plan in
  Alcotest.(check (option string))
    "without stats the written order survives" (Some "A") (leftmost_leaf plain);
  let opt = Optimizer.optimize_for ~stats ~schema plan in
  Alcotest.(check (option string))
    "with stats the largest factor probes" (Some "C") (leftmost_leaf opt);
  Alcotest.(check int)
    "the cross product is gone" 0
    (count_nodes is_product opt);
  Alcotest.(check bool)
    "reordered plan evaluates identically" true
    (Relation.equal (Relalg.eval ~state plan) (Relalg.eval ~state opt))

let test_malformed_plan_unchanged () =
  (* a plan the optimizer cannot type must be returned untouched *)
  let plan = Relalg.(Select (Eq (Col 7, Col 0), Rel "Nope")) in
  Alcotest.(check bool)
    "unknown relation: plan returned unchanged" true
    (Optimizer.optimize_for ~schema plan = plan)

let () =
  Alcotest.run "optimizer"
    [ ( "properties",
        [ QCheck_alcotest.to_alcotest prop_optimize_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_optimize_wellformed;
          QCheck_alcotest.to_alcotest prop_optimize_with_stats_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_optimize_with_stats_wellformed;
          QCheck_alcotest.to_alcotest prop_join_is_select_product ] );
      ( "rewrites",
        [ Alcotest.test_case "select-over-product becomes hash join" `Quick
            test_select_product_becomes_join;
          Alcotest.test_case "left-deep chain becomes two joins" `Quick
            test_chain_becomes_two_joins;
          Alcotest.test_case "identity projection pruned" `Quick
            test_identity_project_pruned;
          Alcotest.test_case "ill-formed plan left unchanged" `Quick
            test_malformed_plan_unchanged ] );
      ( "cost model",
        [ Alcotest.test_case "estimates read state cardinalities" `Quick
            test_estimate_uses_state_cards;
          Alcotest.test_case "profile overrides the formula" `Quick
            test_estimate_profile_overrides;
          Alcotest.test_case "reorder probes the largest factor" `Quick
            test_stats_reorder_probes_largest ] ) ]
