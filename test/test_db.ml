(* Tests for Fq_db: values, schemas, relations, states, relational
   algebra. *)

open Fq_db

let v = Value.int
let s = Value.str

let rel = Alcotest.testable Relation.pp Relation.equal

let father_schema = Schema.make [ ("F", 2) ]

let father_rel =
  Relation.make ~arity:2
    [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ] ]

let state = State.make ~schema:father_schema [ ("F", father_rel) ]

(* ------------------------------ values ----------------------------- *)

let test_value_order () =
  Alcotest.(check bool) "ints before strings" true (Value.compare (v 999) (s "a") < 0);
  Alcotest.(check bool) "int order" true (Value.compare (v 1) (v 2) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (s "a") (s "b") < 0);
  Alcotest.(check string) "const of int" "42" (Value.to_const (v 42));
  Alcotest.(check string) "const of str" "abc" (Value.to_const (s "abc"))

(* ------------------------------ schema ----------------------------- *)

let test_schema () =
  let sch = Schema.make ~constants:[ "c" ] [ ("R", 2); ("S", 1) ] in
  Alcotest.(check (option int)) "arity" (Some 2) (Schema.arity sch "R");
  Alcotest.(check (option int)) "unknown" None (Schema.arity sch "T");
  Alcotest.(check bool) "constant with @" true (Schema.mem_constant sch "@c");
  Alcotest.(check bool) "constant without @" true (Schema.mem_constant sch "c");
  Alcotest.check_raises "duplicate names" (Invalid_argument "Schema.make: duplicate names")
    (fun () -> ignore (Schema.make [ ("R", 1); ("R", 2) ]))

(* ----------------------------- relations --------------------------- *)

let test_relation_basics () =
  Alcotest.(check int) "cardinal" 3 (Relation.cardinal father_rel);
  Alcotest.(check bool) "mem" true (Relation.mem [ s "adam"; s "cain" ] father_rel);
  Alcotest.(check bool) "not mem" false (Relation.mem [ s "cain"; s "adam" ] father_rel);
  Alcotest.(check int) "dedup on make" 1
    (Relation.cardinal (Relation.make ~arity:1 [ [ v 1 ]; [ v 1 ] ]));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation: tuple of length 1 in relation of arity 2") (fun () ->
      ignore (Relation.make ~arity:2 [ [ v 1 ] ]))

let test_relation_ops () =
  let r1 = Relation.make ~arity:1 [ [ v 1 ]; [ v 2 ] ] in
  let r2 = Relation.make ~arity:1 [ [ v 2 ]; [ v 3 ] ] in
  Alcotest.check rel "union" (Relation.make ~arity:1 [ [ v 1 ]; [ v 2 ]; [ v 3 ] ])
    (Relation.union r1 r2);
  Alcotest.check rel "diff" (Relation.make ~arity:1 [ [ v 1 ] ]) (Relation.diff r1 r2);
  Alcotest.check rel "inter" (Relation.make ~arity:1 [ [ v 2 ] ]) (Relation.inter r1 r2);
  Alcotest.(check int) "product arity" 2 (Relation.arity (Relation.product r1 r2));
  Alcotest.(check int) "product size" 4 (Relation.cardinal (Relation.product r1 r2));
  Alcotest.check rel "project column 1"
    (Relation.make ~arity:1 [ [ s "cain" ]; [ s "abel" ]; [ s "enoch" ] ])
    (Relation.map_project [ 1 ] father_rel);
  Alcotest.check rel "project duplicate columns"
    (Relation.make ~arity:2 [ [ v 1; v 1 ]; [ v 2; v 2 ] ])
    (Relation.map_project [ 0; 0 ] r1);
  Alcotest.(check int) "nullary true" 1 (Relation.cardinal (Relation.make ~arity:0 [ [] ]))

let test_relation_values () =
  Alcotest.(check int) "distinct values" 4 (List.length (Relation.values father_rel))

let test_relation_rows () =
  let r1 = Relation.make ~arity:2 [ [ v 2; v 3 ]; [ v 1; v 2 ] ] in
  let rows = Relation.rows r1 in
  Alcotest.(check int) "rows length" 2 (Array.length rows);
  Alcotest.(check bool) "rows sorted" true (Row.compare rows.(0) rows.(1) < 0);
  Alcotest.check rel "of_rows round-trips" r1 (Relation.of_rows ~arity:2 rows);
  Alcotest.(check bool) "mem_row" true (Relation.mem_row (Row.of_list [ v 1; v 2 ]) r1);
  Alcotest.(check bool) "not mem_row" false
    (Relation.mem_row (Row.of_list [ v 3; v 1 ]) r1);
  Alcotest.(check bool) "row hash consistent with equal" true
    (Row.hash (Row.of_list [ v 1; v 2 ]) = Row.hash rows.(0))

let test_relation_equijoin () =
  let a = Relation.make ~arity:2 [ [ v 1; v 2 ]; [ v 2; v 3 ]; [ v 5; v 9 ] ] in
  let b = Relation.make ~arity:2 [ [ v 2; v 7 ]; [ v 3; v 8 ] ] in
  Alcotest.check rel "equijoin on a.1 = b.0"
    (Relation.make ~arity:4 [ [ v 1; v 2; v 2; v 7 ]; [ v 2; v 3; v 3; v 8 ] ])
    (Relation.equijoin [ (1, 0) ] a b);
  Alcotest.check rel "no pairs degenerates to product" (Relation.product a b)
    (Relation.equijoin [] a b);
  Alcotest.(check bool) "disjoint keys join empty" true
    (Relation.is_empty (Relation.equijoin [ (0, 1) ] a b))

(* ------------------------------ state ------------------------------ *)

let test_state () =
  Alcotest.(check int) "relation lookup" 3 (Relation.cardinal (State.relation state "F"));
  Alcotest.(check int) "active domain" 4 (List.length (State.active_domain state));
  (* unlisted relation of the scheme is empty *)
  let sch2 = Schema.make [ ("F", 2); ("G", 1) ] in
  let st2 = State.make ~schema:sch2 [ ("F", father_rel) ] in
  Alcotest.(check bool) "unlisted empty" true (Relation.is_empty (State.relation st2 "G"));
  Alcotest.check_raises "unknown relation" Not_found (fun () ->
      ignore (State.relation state "Z"));
  (* constants *)
  let sch3 = Schema.make ~constants:[ "c" ] [] in
  let st3 = State.make ~schema:sch3 ~constants:[ ("c", v 7) ] [] in
  Alcotest.(check bool) "constant via @" true (Value.equal (v 7) (State.constant st3 "@c"));
  Alcotest.check_raises "uninterpreted constant"
    (Invalid_argument "State: scheme constant c is uninterpreted") (fun () ->
      ignore (State.make ~schema:sch3 []))

(* ------------------------------ algebra ---------------------------- *)

let test_relalg_eval () =
  let open Relalg in
  (* grandfathers: project(0,3) of select(#1 = #2) of F x F *)
  let plan =
    Project ([ 0; 3 ], Select (Eq (Col 1, Col 2), Product (Rel "F", Rel "F")))
  in
  Alcotest.check rel "grandfather join"
    (Relation.make ~arity:2 [ [ s "adam"; s "enoch" ] ])
    (eval ~state plan);
  (* selection with constant *)
  Alcotest.check rel "select constant"
    (Relation.make ~arity:2 [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ] ])
    (eval ~state (Select (Eq (Col 0, Const (s "adam")), Rel "F")));
  (* difference: fathers who are not sons *)
  let fathers = Project ([ 0 ], Rel "F") in
  let sons = Project ([ 1 ], Rel "F") in
  Alcotest.check rel "diff" (Relation.make ~arity:1 [ [ s "adam" ] ])
    (eval ~state (Diff (fathers, sons)))

let test_relalg_domain_pred () =
  let open Relalg in
  let nums = Lit (Relation.make ~arity:1 [ [ v 1 ]; [ v 2 ]; [ v 3 ] ]) in
  let lt a b = Fq_numeric.Bigint.compare a b < 0 in
  let domain_pred p vals =
    match (p, vals) with
    | "<", [ Value.Int a; Value.Int b ] -> lt a b
    | _ -> invalid_arg "pred"
  in
  let plan = Select (Domain_pred ("<", [ Col 0; Col 1 ]), Product (nums, nums)) in
  Alcotest.(check int) "pairs below diagonal" 3
    (Relation.cardinal (eval ~state ~domain_pred plan))

let test_relalg_join () =
  let open Relalg in
  (* grandfathers again, via the explicit hash-join node *)
  let plan = Project ([ 0; 3 ], Join ([ (1, 0) ], Rel "F", Rel "F")) in
  Alcotest.check rel "grandfather via Join"
    (Relation.make ~arity:2 [ [ s "adam"; s "enoch" ] ])
    (eval ~state plan);
  Alcotest.(check (result int string)) "join arity" (Ok 4)
    (arity_check ~schema:father_schema (Join ([ (1, 0) ], Rel "F", Rel "F")));
  Alcotest.(check bool) "join pair out of range" true
    (Result.is_error
       (arity_check ~schema:father_schema (Join ([ (2, 0) ], Rel "F", Rel "F"))))

let test_relalg_arity_check () =
  let open Relalg in
  let ok plan = Relalg.arity_check ~schema:father_schema plan in
  Alcotest.(check (result int string)) "rel arity" (Ok 2) (ok (Rel "F"));
  Alcotest.(check bool) "unknown rel" true (Result.is_error (ok (Rel "Z")));
  Alcotest.(check bool) "bad projection" true
    (Result.is_error (ok (Project ([ 5 ], Rel "F"))));
  Alcotest.(check bool) "union mismatch" true
    (Result.is_error (ok (Union (Rel "F", Project ([ 0 ], Rel "F")))));
  Alcotest.(check (result int string)) "product" (Ok 4) (ok (Product (Rel "F", Rel "F")))

(* ------------------------------ codec ------------------------------ *)

let test_codec_parse () =
  match Codec.parse_state ~relations:[ "F/2=a,b;b,c"; "N/1=3;5" ] ~constants:[ "c=w" ] with
  | Error e -> Alcotest.fail e
  | Ok st ->
    Alcotest.(check int) "F rows" 2 (Relation.cardinal (State.relation st "F"));
    Alcotest.(check bool) "numbers parsed" true
      (Relation.mem [ v 3 ] (State.relation st "N"));
    Alcotest.(check bool) "constant" true (Value.equal (s "w") (State.constant st "@c"))

let test_codec_errors () =
  let is_err r = Alcotest.(check bool) "error" true (Result.is_error r) in
  is_err (Codec.parse_relation "F=a,b");
  is_err (Codec.parse_relation "F/x=a,b");
  is_err (Codec.parse_relation "F/2=a" (* arity mismatch *));
  is_err (Codec.parse_constant "noequals");
  is_err (Codec.parse_state ~relations:[ "F/1=a"; "F/1=b" ] ~constants:[] (* duplicate *))

let test_codec_roundtrip () =
  match Codec.parse_state ~relations:[ "F/2=a,b;b,c"; "E/1=" ] ~constants:[ "k=7" ] with
  | Error e -> Alcotest.fail e
  | Ok st ->
    let rels, consts = Codec.state_to_strings st in
    (match Codec.parse_state ~relations:rels ~constants:consts with
    | Error e -> Alcotest.fail e
    | Ok st2 ->
      Alcotest.(check bool) "relations round-trip" true
        (Relation.equal (State.relation st "F") (State.relation st2 "F"));
      Alcotest.(check bool) "empty relation round-trips" true
        (Relation.is_empty (State.relation st2 "E"));
      Alcotest.(check bool) "constants round-trip" true
        (Value.equal (State.constant st "@k") (State.constant st2 "@k")))

let () =
  Alcotest.run "fq_db"
    [ ("value", [ Alcotest.test_case "ordering" `Quick test_value_order ]);
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "relation",
        [ Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "operations" `Quick test_relation_ops;
          Alcotest.test_case "values" `Quick test_relation_values;
          Alcotest.test_case "row access" `Quick test_relation_rows;
          Alcotest.test_case "equijoin" `Quick test_relation_equijoin ] );
      ("state", [ Alcotest.test_case "basics" `Quick test_state ]);
      ( "relalg",
        [ Alcotest.test_case "eval" `Quick test_relalg_eval;
          Alcotest.test_case "domain predicates" `Quick test_relalg_domain_pred;
          Alcotest.test_case "join node" `Quick test_relalg_join;
          Alcotest.test_case "arity check" `Quick test_relalg_arity_check ] );
      ( "codec",
        [ Alcotest.test_case "parse" `Quick test_codec_parse;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip ] ) ]
