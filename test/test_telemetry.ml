(* Tests for Fq_core.Telemetry: span trees, counters, histograms, the
   budget-attribution invariants, and — the property that licenses
   instrumenting engines freely — that evaluation results are identical
   whether telemetry is off, a no-op sink is installed, or a recording is
   in progress. *)

open Fq_db
module Budget = Fq_core.Budget
module Telemetry = Fq_core.Telemetry
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Query = Fq_eval.Query
module Enumerate = Fq_eval.Enumerate
module Decide_cache = Fq_domain.Decide_cache

let parse = Fq_logic.Parser.formula_exn
let s = Value.str

let schema = Schema.make [ ("F", 2) ]

let family_state =
  State.make ~schema
    [ ( "F",
        Relation.make ~arity:2
          [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
            [ s "enoch"; s "irad" ] ] ) ]

let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)

(* --------------------------- span mechanics ------------------------- *)

let test_disabled_is_transparent () =
  Alcotest.(check bool) "disabled outside any recording" false (Telemetry.enabled ());
  (* instrumentation points are inert no-ops *)
  Telemetry.count "nope";
  Telemetry.observe "nope" 1.0;
  Telemetry.set_attr "nope" (Telemetry.Int 1);
  let v = Telemetry.with_span "nope" (fun () -> 42) in
  Alcotest.(check int) "with_span returns the thunk's value" 42 v

let test_record_tree () =
  let v, r =
    Telemetry.record (fun () ->
        Telemetry.with_span "outer" (fun () ->
            Telemetry.set_attr "k" (Telemetry.Str "v");
            Telemetry.with_span "inner" (fun () -> Telemetry.count "c");
            Telemetry.with_span "inner" (fun () -> Telemetry.count ~n:2 "c");
            Telemetry.observe "h" 3.0;
            Telemetry.observe "h" 5.0;
            "done"))
  in
  Alcotest.(check string) "value" "done" v;
  Alcotest.(check int) "one root" 1 (List.length r.Telemetry.roots);
  let root = List.hd r.Telemetry.roots in
  Alcotest.(check string) "root name" "outer" root.Telemetry.name;
  Alcotest.(check int) "two children" 2 (List.length root.Telemetry.children);
  Alcotest.(check bool) "attr recorded" true
    (List.mem_assoc "k" root.Telemetry.attrs);
  Alcotest.(check (list (pair string int))) "counters" [ ("c", 3) ] r.Telemetry.counters;
  (match r.Telemetry.histograms with
  | [ ("h", h) ] ->
    Alcotest.(check int) "histo count" 2 h.Telemetry.count;
    Alcotest.(check (float 1e-9)) "histo sum" 8.0 h.Telemetry.sum;
    Alcotest.(check (float 1e-9)) "histo min" 3.0 h.Telemetry.min;
    Alcotest.(check (float 1e-9)) "histo max" 5.0 h.Telemetry.max
  | _ -> Alcotest.fail "expected exactly the histogram h");
  Alcotest.(check int) "nothing dropped" 0 r.Telemetry.dropped_spans;
  Alcotest.(check bool) "collector uninstalled after record" false (Telemetry.enabled ())

let test_exception_safety () =
  let exception Boom in
  let report = ref None in
  (try
     ignore
       (Telemetry.record (fun () ->
            Telemetry.with_span "root" (fun () ->
                Telemetry.with_span "child" (fun () -> raise Boom))))
   with Boom -> ());
  (* the collector must be gone even though record's thunk raised *)
  Alcotest.(check bool) "collector uninstalled after raise" false (Telemetry.enabled ());
  (* spans close on the exception path: a sibling recording still works *)
  let (), r = Telemetry.record (fun () -> Telemetry.with_span "ok" (fun () -> ())) in
  report := Some r;
  match !report with
  | Some r -> Alcotest.(check int) "clean follow-up recording" 1 (List.length r.Telemetry.roots)
  | None -> Alcotest.fail "no report"

let test_noop_sink () =
  let v =
    Telemetry.with_noop (fun () ->
        Alcotest.(check bool) "enabled under the no-op sink" true (Telemetry.enabled ());
        Telemetry.count "c";
        Telemetry.with_span "sp" (fun () -> 7))
  in
  Alcotest.(check int) "value passes through" 7 v;
  Alcotest.(check bool) "uninstalled after" false (Telemetry.enabled ())

let test_max_spans_cap () =
  let (), r =
    Telemetry.record ~max_spans:3 (fun () ->
        for _ = 1 to 10 do
          Telemetry.with_span "s" (fun () -> ())
        done)
  in
  Alcotest.(check int) "kept up to the cap" 3 (List.length r.Telemetry.roots);
  Alcotest.(check int) "rest tallied as dropped" 7 r.Telemetry.dropped_spans

(* ------------------------- budget attribution ----------------------- *)

(* Fuel ticks recorded on the root span are exactly the ticks the budget
   itself accounts, and self-ticks telescope: summed over the attribution
   table they reproduce the total. *)
let test_attribution_sums () =
  let f = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  let budget = Budget.make ~fuel:100_000 () in
  let rep, r =
    Telemetry.record (fun () ->
        Query.eval_resilient ~budget ~domain:eq_domain ~state:family_state f)
  in
  let usage = rep.Query.usage in
  Alcotest.(check bool) "the run ticked at all" true (usage.Budget.ticks > 0);
  Alcotest.(check int) "root span ticks = budget usage"
    usage.Budget.ticks (Telemetry.total_ticks r);
  let attributed = List.fold_left (fun acc (_, t) -> acc + t) 0 (Telemetry.attribution r) in
  Alcotest.(check int) "self-ticks sum to the total" (Telemetry.total_ticks r) attributed

(* The enumeration tier attributes its fuel the same way. *)
let test_attribution_enumerate_tier () =
  let f = parse "exists y. F(x, y) /\\ F(y, x)" in
  (* not safe-range?  it is — force enumeration with an unguarded variable *)
  let unsafe = parse "~F(x, y)" in
  let budget = Budget.make ~fuel:64 () in
  let rep, r =
    Telemetry.record (fun () ->
        Query.eval_resilient ~budget ~domain:eq_domain ~state:family_state unsafe)
  in
  ignore f;
  Alcotest.(check int) "root span ticks = budget usage"
    rep.Query.usage.Budget.ticks (Telemetry.total_ticks r);
  let names = List.map fst (Telemetry.attribution r) in
  Alcotest.(check bool) "enumeration shows up in the attribution" true
    (List.mem "enumerate.scan" names || List.mem "tier:enumerate" names)

(* ------------------------ cache counter parity ---------------------- *)

let test_cache_counters_match_stats () =
  let cache = Decide_cache.create () in
  let f = parse "exists y. F(x, y) /\\ F(y, x)" in
  let run () =
    Enumerate.run ~fuel:100_000 ~max_certified:16 ~cache ~domain:eq_domain
      ~state:family_state f
  in
  let _, r =
    Telemetry.record (fun () ->
        ignore (run ());
        ignore (run ()))
  in
  let stats = Decide_cache.stats cache in
  let counter name =
    match List.assoc_opt name r.Telemetry.counters with Some n -> n | None -> 0
  in
  Alcotest.(check int) "telemetry hits = stats hits" stats.Decide_cache.hits
    (counter "decide_cache.hits");
  Alcotest.(check int) "telemetry misses = stats misses" stats.Decide_cache.misses
    (counter "decide_cache.misses");
  Alcotest.(check bool) "second run hit the cache" true (stats.Decide_cache.hits > 0);
  let rate = Decide_cache.hit_rate stats in
  Alcotest.(check bool) "hit rate within [0,1]" true (rate >= 0.0 && rate <= 1.0);
  Alcotest.(check (float 1e-9)) "hit rate consistent"
    (float_of_int stats.Decide_cache.hits
    /. float_of_int (stats.Decide_cache.hits + stats.Decide_cache.misses))
    rate

let test_hit_rate_empty () =
  Alcotest.(check (float 1e-9)) "no lookups -> 0" 0.0
    (Decide_cache.hit_rate { Decide_cache.hits = 0; misses = 0; entries = 0; evictions = 0 })

(* --------------------- observation is pure (QCheck) ------------------ *)

(* Random queries over the family database, spanning all three tiers of
   the degradation chain (safe-range, compiled-but-unsafe, enumerated). *)
let gen_query : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let atom =
    oneof
      [ map2 (fun a b -> Formula.Atom ("F", [ Term.Var a; Term.Var b ])) var var;
        map (fun a -> Formula.Atom ("F", [ Term.Var a; Term.Const "\"adam\"" ])) var;
        map2 (fun a b -> Formula.Eq (Term.Var a, Term.Var b)) var var;
        map (fun a -> Formula.Eq (Term.Var a, Term.Const "\"cain\"")) var ]
  in
  let rec go n =
    if n = 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map2 (fun a b -> Formula.And (a, b)) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> Formula.Or (a, b)) (go (n - 1)) (go (n - 1)));
          (1, map (fun a -> Formula.Not a) (go (n - 1)));
          (2, map2 (fun v a -> Formula.Exists (v, a)) var (go (n - 1))) ]
  in
  go 3

let arb_query = QCheck.make ~print:Formula.to_string gen_query

let verdict_eq a b =
  match (a, b) with
  | Query.Complete { answer = ra; tier = ta }, Query.Complete { answer = rb; tier = tb } ->
    ta = tb && Relation.equal ra rb
  | ( Query.Partial { tuples = ra; reason = fa; resume = sa },
      Query.Partial { tuples = rb; reason = fb; resume = sb } ) ->
    fa = fb && Relation.equal ra rb && sa.Query.seen = sb.Query.seen
  | Query.Failed { reason = ra }, Query.Failed { reason = rb } -> ra = rb
  | _ -> false

let eval_with_fuel f =
  let budget = Budget.make ~fuel:2_000 () in
  (Query.eval_resilient ~budget ~domain:eq_domain ~state:family_state f).Query.verdict

let prop_observation_is_pure =
  QCheck.Test.make ~name:"eval identical with telemetry off / noop / recording" ~count:150
    arb_query (fun f ->
      let off = eval_with_fuel f in
      let noop = Telemetry.with_noop (fun () -> eval_with_fuel f) in
      let recorded, _ = Telemetry.record (fun () -> eval_with_fuel f) in
      verdict_eq off noop && verdict_eq off recorded)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_observation_is_pure ]

let () =
  Alcotest.run "fq_telemetry"
    [ ( "spans",
        [ Alcotest.test_case "disabled is transparent" `Quick test_disabled_is_transparent;
          Alcotest.test_case "record builds the tree" `Quick test_record_tree;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "no-op sink" `Quick test_noop_sink;
          Alcotest.test_case "max_spans cap" `Quick test_max_spans_cap ] );
      ( "attribution",
        [ Alcotest.test_case "sums to budget usage" `Quick test_attribution_sums;
          Alcotest.test_case "enumerate tier attributed" `Quick
            test_attribution_enumerate_tier ] );
      ( "decide-cache",
        [ Alcotest.test_case "counters mirror stats" `Quick test_cache_counters_match_stats;
          Alcotest.test_case "hit rate on empty stats" `Quick test_hit_rate_empty ] );
      ("purity", qcheck_cases) ]
