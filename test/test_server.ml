(* fq serve: wire-protocol codecs, Outcome JSON stability, the
   snapshot warm-start property, journal durability (torn-tail/corrupt
   recovery, fault-armed appends), and an in-process end-to-end run of
   the daemon (boot, round-trip, deterministic reject, hot reload,
   overload shedding, watchdog recycle, graceful shutdown). *)

module Json = Fq_core.Json
module Budget = Fq_core.Budget
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema
module Value = Fq_db.Value
module Outcome = Fq_eval.Outcome
module Decide_cache = Fq_domain.Decide_cache
module Protocol = Fq_server.Protocol
module Server = Fq_server.Server
module Client = Fq_server.Client
module Journal = Fq_server.Journal
module Fault = Fq_core.Fault

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)

(* ------------------------- JSON roundtrips ------------------------- *)

let json_samples =
  [ {|null|}; {|true|}; {|[1,-2,0]|}; {|"a\"b\\c\nd"|};
    {|{"k":[{"x":1.5},"s"],"m":{}}|}; {|123456789012345678901234567890|} ]

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j ->
        let s' = Json.to_string j in
        (match Json.parse s' with
        | Error e -> Alcotest.failf "reparse %s: %s" s' e
        | Ok j' ->
          Alcotest.(check string) ("roundtrip " ^ s) s' (Json.to_string j')))
    json_samples

(* ---------------------- Outcome JSON stability --------------------- *)

let usage = { Budget.ticks = 42; elapsed_ms = 1.5 }

let rel rows = Relation.make ~arity:2 (List.map (List.map Value.str) rows)

let sample_outcomes =
  [ ( "complete", 0,
      { Outcome.verdict = Complete { answer = rel [ [ "a"; "b" ] ]; tier = "ranf-algebra" };
        usage;
        attempts = [ ("ranf-algebra", "not safe-range") ] } );
    ( "partial", 3,
      { Outcome.verdict =
          Partial
            { tuples = rel [ [ "a"; "b" ]; [ "c"; "d" ] ];
              reason = Budget.Fuel_exhausted;
              resume = { seen = 17; found = rel [ [ "a"; "b" ] ] } };
        usage;
        attempts = [] } );
    ( "unsupported", 4,
      { Outcome.verdict = Failed { reason = Budget.error_string (Budget.Unsupported "qe over words") };
        usage;
        attempts = [] } );
    ( "error", 1,
      { Outcome.verdict = Failed { reason = "parse error: unexpected token" };
        usage;
        attempts = [] } ) ]

let test_outcome_roundtrip () =
  List.iter
    (fun (status, code, o) ->
      Alcotest.(check string) "status" status (Outcome.status o);
      Alcotest.(check int) "exit code" code (Outcome.exit_code o);
      let j = Outcome.to_json o in
      match Outcome.of_json j with
      | Error e -> Alcotest.failf "of_json (%s): %s" status e
      | Ok o' ->
        Alcotest.(check string)
          ("json roundtrip " ^ status)
          (Json.to_string j)
          (Json.to_string (Outcome.to_json o'));
        (match Json.parse (Json.to_string j) with
        | Error e -> Alcotest.failf "reparse (%s): %s" status e
        | Ok j' ->
          Alcotest.(check string)
            ("print/parse " ^ status)
            (Json.to_string j) (Json.to_string j')))
    sample_outcomes

(* ----------------------- Protocol roundtrips ----------------------- *)

let sample_requests =
  [ Protocol.Eval
      { id = "q1"; domain = Some "presburger"; formula = "exists y. E(x,y)";
        fuel = Some 500; timeout_ms = Some 100;
        resume = Some { seen = 3; found = rel [ [ "a"; "b" ] ] };
        trace = Some "t-q1" };
    Protocol.Eval
      { id = "q2"; domain = None; formula = "S(x)"; fuel = None;
        timeout_ms = None; resume = None; trace = None };
    Protocol.Explain { id = "e"; domain = None; formula = "S(x)"; trace = None };
    Protocol.Traces { id = "t"; limit = Some 3 };
    Protocol.Metrics { id = "m" };
    Protocol.Ping { id = "p" };
    Protocol.Snapshot { id = "s" };
    Protocol.Reload { id = "r"; path = Some "/var/db/state.db" };
    Protocol.Reload { id = "r2"; path = None };
    Protocol.Health { id = "h" };
    Protocol.Shutdown { id = "x" } ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Json.to_string (Protocol.request_to_json req) in
      match Protocol.parse_request line with
      | Error e -> Alcotest.failf "parse_request %s: %s" line e
      | Ok req' ->
        Alcotest.(check string)
          ("request roundtrip " ^ Protocol.request_id req)
          line
          (Json.to_string (Protocol.request_to_json req')))
    sample_requests

let test_reply_classify () =
  let out = List.assoc "partial" (List.map (fun (s, _, o) -> (s, o)) sample_outcomes) in
  (match Protocol.classify_reply (Protocol.outcome_response ~id:"a" out) with
  | Ok ("a", Protocol.R_outcome o) ->
    Alcotest.(check string) "outcome status" "partial" (Outcome.status o)
  | Ok _ -> Alcotest.fail "expected R_outcome"
  | Error e -> Alcotest.fail e);
  (match
     Protocol.classify_reply
       (Protocol.reject_response ~id:"b" ~reason:"server saturated" ~retry_after_ms:25
          ~resume:{ seen = 0; found = Relation.empty ~arity:1 })
   with
  | Ok ("b", Protocol.R_rejected { retry_after_ms = 25; resume = Some r; _ }) ->
    Alcotest.(check int) "fresh resume" 0 r.Outcome.seen
  | Ok _ -> Alcotest.fail "expected R_rejected"
  | Error e -> Alcotest.fail e);
  (match Protocol.classify_reply (Protocol.malformed_response ~id:"c" "bad json") with
  | Ok ("c", Protocol.R_malformed _) -> ()
  | Ok _ -> Alcotest.fail "expected R_malformed"
  | Error e -> Alcotest.fail e);
  match Protocol.classify_reply (Protocol.ok_response ~id:"d" [ ("pong", Json.Bool true) ]) with
  | Ok ("d", Protocol.R_ok _) -> ()
  | Ok _ -> Alcotest.fail "expected R_ok"
  | Error e -> Alcotest.fail e

(* ------------------ snapshot warm-start property -------------------
   save -> load -> decide agrees with the cold cache, and the warm
   cache never re-runs the decision procedure (its decide is poisoned). *)

let gen_sentence : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y" ] in
  let term =
    oneof
      [ map (fun v -> Term.Var v) var;
        map (fun n -> Term.Const (string_of_int n)) (int_bound 4);
        map2
          (fun v n -> Term.App ("+", [ Term.Var v; Term.Const (string_of_int n) ]))
          var (int_bound 3) ]
  in
  let atom =
    oneof
      [ map2 (fun t u -> Formula.Atom ("<", [ t; u ])) term term;
        map2 (fun t u -> Formula.Eq (t, u)) term term;
        map2
          (fun d t -> Formula.Atom ("dvd", [ Term.Const (string_of_int (d + 1)); t ]))
          (int_bound 3) term ]
  in
  let qf =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [ atom;
              map (fun f -> Formula.Not f) (self (n - 1));
              map2 (fun f g -> Formula.And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> Formula.Or (f, g)) (self (n / 2)) (self (n / 2)) ])
      4
  in
  map (fun f -> Formula.Exists ("x", Formula.Forall ("y", f))) qf

let poisoned =
  Fq_domain.Domain.with_decide presburger (fun f ->
      Error ("poisoned: warm cache missed " ^ Formula.to_string f))

let snapshot_path = Filename.temp_file "fq_snapshot_prop" ".fq"

let pp_verdict = function
  | Ok b -> string_of_bool b
  | Error e -> "error: " ^ e

let prop_snapshot_agrees =
  QCheck.Test.make ~name:"snapshot save/load/decide agrees with cold cache" ~count:200
    (QCheck.make ~print:Formula.to_string gen_sentence)
    (fun f ->
      let cold = Decide_cache.create () in
      let cold_verdict = Decide_cache.decide cold presburger f in
      (match Decide_cache.save cold snapshot_path with
      | Ok n when n >= 1 -> ()
      | Ok n -> QCheck.Test.fail_reportf "snapshot wrote %d entries" n
      | Error e -> QCheck.Test.fail_reportf "save: %s" e);
      let warm = Decide_cache.create () in
      (match Decide_cache.load warm snapshot_path with
      | Ok n when n >= 1 -> ()
      | Ok n -> QCheck.Test.fail_reportf "snapshot read %d entries" n
      | Error e -> QCheck.Test.fail_reportf "load: %s" e);
      let warm_verdict = Decide_cache.decide warm poisoned f in
      if warm_verdict <> cold_verdict then
        QCheck.Test.fail_reportf "cold %s <> warm %s" (pp_verdict cold_verdict)
          (pp_verdict warm_verdict);
      true)

(* ----------------------- journal durability ------------------------ *)

let journal_header = "fq-decide-journal 1\n"

let fresh_journal () =
  let p = Filename.temp_file "fq_journal" ".j" in
  Sys.remove p;
  p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_all path payloads =
  match Journal.open_append path with
  | Error e -> Alcotest.failf "open_append: %s" e
  | Ok j ->
    List.iter
      (fun p ->
        match Journal.append j p with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append %S: %s" p e)
      payloads;
    Journal.close j

let recover_all path =
  let acc = ref [] in
  match Journal.recover path ~f:(fun p -> acc := p :: !acc) with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok r -> (r, List.rev !acc)

let test_journal_crc () =
  (* the published IEEE CRC-32 check value *)
  Alcotest.(check int32) "check value" 0xcbf43926l (Journal.crc32 "123456789");
  Alcotest.(check int32) "empty string" 0l (Journal.crc32 "")

let test_journal_roundtrip () =
  let p = fresh_journal () in
  let payloads = [ "ok\ttrue\tA"; "err\tboom\tB"; "ok\tfalse\tC" ] in
  append_all p payloads;
  let r, got = recover_all p in
  Alcotest.(check (list string)) "payloads in order" payloads got;
  Alcotest.(check int) "applied" 3 r.Journal.applied;
  Alcotest.(check int) "skipped" 0 r.Journal.skipped;
  Alcotest.(check int) "torn bytes" 0 r.Journal.truncated_bytes;
  (* reopening appends after the existing records, not over them *)
  append_all p [ "ok\ttrue\tD" ];
  let _, got = recover_all p in
  Alcotest.(check (list string)) "extended" (payloads @ [ "ok\ttrue\tD" ]) got;
  Sys.remove p

let test_journal_torn_tail () =
  let p = fresh_journal () in
  append_all p [ "one"; "two" ];
  let intact = read_file p in
  write_file p (intact ^ "deadbeef\tthree (torn, no newli");
  let r, got = recover_all p in
  Alcotest.(check (list string)) "prefix survives" [ "one"; "two" ] got;
  Alcotest.(check bool) "tail cut" true (r.Journal.truncated_bytes > 0);
  Alcotest.(check string) "file physically truncated" intact (read_file p);
  (* recovery is idempotent: a second pass finds a clean file *)
  let r2, got2 = recover_all p in
  Alcotest.(check (list string)) "second pass" [ "one"; "two" ] got2;
  Alcotest.(check int) "nothing left to cut" 0 r2.Journal.truncated_bytes;
  Sys.remove p

let test_journal_corrupt_record () =
  let p = fresh_journal () in
  append_all p [ "one"; "two"; "three" ];
  let s = read_file p in
  (* flip one payload byte of the middle record: its CRC fails, and the
     records before AND after it survive *)
  let needle = "\ttwo\n" in
  let rec find i = if String.sub s i (String.length needle) = needle then i else find (i + 1) in
  let idx = find 0 in
  let b = Bytes.of_string s in
  Bytes.set b (idx + 1) 'T';
  write_file p (Bytes.to_string b);
  let r, got = recover_all p in
  Alcotest.(check (list string)) "corrupt record skipped" [ "one"; "three" ] got;
  Alcotest.(check int) "skipped" 1 r.Journal.skipped;
  Sys.remove p

let test_journal_reset () =
  let p = fresh_journal () in
  (match Journal.open_append p with
  | Error e -> Alcotest.failf "open_append: %s" e
  | Ok j ->
    List.iter
      (fun x ->
        match Journal.append j x with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append: %s" e)
      [ "one"; "two" ];
    (match Journal.reset j with
    | Ok () -> ()
    | Error e -> Alcotest.failf "reset: %s" e);
    (match Journal.append j "three" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "append after reset: %s" e);
    Journal.close j);
  let r, got = recover_all p in
  Alcotest.(check (list string)) "only post-reset records" [ "three" ] got;
  Alcotest.(check int) "applied" 1 r.Journal.applied;
  Sys.remove p

let test_journal_not_a_journal () =
  let p = fresh_journal () in
  write_file p "definitely not a journal\n";
  (match Journal.recover p ~f:ignore with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a wrong header must not recover");
  Sys.remove p;
  (* a missing file recovers to zero records, silently *)
  match Journal.recover p ~f:(fun _ -> Alcotest.fail "no records expected") with
  | Ok { Journal.applied = 0; skipped = 0; truncated_bytes = 0 } -> ()
  | Ok _ -> Alcotest.fail "a missing file must recover empty"
  | Error e -> Alcotest.failf "missing file: %s" e

(* Surgical fault-site drill: a faulted append loses exactly that record;
   a faulted rotate leaves the pre-compaction journal intact. *)
let test_journal_fault_containment () =
  let p = fresh_journal () in
  let plan =
    Fault.plan ~seed:7
      ~rules:
        [ Fault.At { site = "journal.append"; hits = [ 2 ]; action = Crash "disk full" };
          Fault.At { site = "journal.rotate"; hits = [ 1 ]; action = Crash "torn rename" } ]
      ()
  in
  Fault.with_plan plan (fun () ->
      match Journal.open_append p with
      | Error e -> Alcotest.failf "open_append: %s" e
      | Ok j ->
        (match Journal.append j "one" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append one: %s" e);
        (match Journal.append j "two" with
        | Error _ -> () (* the injected short write: record lost, file intact *)
        | Ok () -> Alcotest.fail "hit 2 must fault");
        (match Journal.append j "three" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append three: %s" e);
        (match Journal.reset j with
        | Error _ -> () (* the injected torn rename: the old journal survives *)
        | Ok () -> Alcotest.fail "rotate hit 1 must fault");
        (match Journal.append j "four" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append four: %s" e);
        Journal.close j);
  Alcotest.(check int) "both faults fired" 2 (Fault.injection_count plan);
  let r, got = recover_all p in
  Alcotest.(check (list string))
    "faulted appends leave a valid prefix"
    [ "one"; "three"; "four" ] got;
  Alcotest.(check int) "no corrupt records" 0 r.Journal.skipped;
  Alcotest.(check int) "no torn tail" 0 r.Journal.truncated_bytes;
  Sys.remove p

(* The PR-8 acceptance property: journal the verdicts of a cold cache,
   mangle the file (truncate at a random byte, or flip a random byte),
   and recovery must (a) for truncation, recover exactly the longest
   valid record prefix, and (b) never replay an entry whose verdict
   disagrees with a cold decide of its key. *)
let prop_journal_recovery =
  QCheck.Test.make ~name:"journal recovery agrees with cold decide" ~count:120
    (QCheck.make
       ~print:(fun (fs, (mode, (a, b))) ->
         Printf.sprintf "mode=%d a=%d b=%d [%s]" mode a b
           (String.concat "; " (List.map Formula.to_string fs)))
       QCheck.Gen.(
         pair
           (list_size (int_range 1 6) gen_sentence)
           (pair (int_bound 2) (pair (int_bound 9999) (int_bound 254)))))
    (fun (fs, (mode, (a, b))) ->
      let cold = Decide_cache.create () in
      List.iter (fun f -> ignore (Decide_cache.decide cold presburger f)) fs;
      (* the journal payloads are the cache's own entry renderings *)
      let snap = Filename.temp_file "fq_jr_snap" ".fq" in
      (match Decide_cache.save cold snap with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_reportf "save: %s" e);
      let lines =
        match String.split_on_char '\n' (read_file snap) with
        | _header :: rest -> List.filter (fun l -> l <> "") rest
        | [] -> []
      in
      Sys.remove snap;
      if lines = [] then QCheck.Test.fail_report "cold cache produced no entries";
      let jpath = fresh_journal () in
      append_all jpath lines;
      let content = read_file jpath in
      let hlen = String.length journal_header in
      let body_len = String.length content - hlen in
      (* end offset of each record: 8 hex CRC + tab + payload + newline *)
      let bounds =
        List.rev
          (snd
             (List.fold_left
                (fun (off, acc) l ->
                  let off = off + 8 + 1 + String.length l + 1 in
                  (off, off :: acc))
                (hlen, []) lines))
      in
      let expected_exact =
        match mode with
        | 0 -> Some lines
        | 1 ->
          let cut = hlen + (a mod (body_len + 1)) in
          Unix.truncate jpath cut;
          Some
            (List.combine lines bounds
            |> List.filter (fun (_, e) -> e <= cut)
            |> List.map fst)
        | _ ->
          let pos = hlen + (a mod body_len) in
          let bytes = Bytes.of_string content in
          let old = Char.code (Bytes.get bytes pos) in
          Bytes.set bytes pos (Char.chr (if old = b then (b + 1) land 0xff else b));
          write_file jpath (Bytes.to_string bytes);
          None
      in
      let acc = ref [] in
      let r =
        match Journal.recover jpath ~f:(fun p -> acc := p :: !acc) with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "recover: %s" e
      in
      let got = List.rev !acc in
      Sys.remove jpath;
      (match expected_exact with
      | Some exp ->
        if got <> exp then
          QCheck.Test.fail_reportf
            "longest valid prefix: expected %d records, recovered %d"
            (List.length exp) (List.length got)
      | None ->
        (* one flipped byte can cost at most two records (a merged or
           split neighbour pair); everything else must survive *)
        let m = List.length lines in
        if List.length got < m - 2 then
          QCheck.Test.fail_reportf "one corrupt byte lost %d of %d records"
            (m - List.length got) m;
        if r.Journal.applied + r.Journal.skipped + (if r.Journal.truncated_bytes > 0 then 1 else 0) < m - 1
        then QCheck.Test.fail_report "records unaccounted for");
      (* no surviving record may disagree with a cold decide of its key *)
      let check_cache = Decide_cache.create () in
      List.iter
        (fun p ->
          match Decide_cache.entry_of_line p with
          | Error e -> QCheck.Test.fail_reportf "recovered a malformed entry %S: %s" p e
          | Ok (key, value) ->
            let fresh = Decide_cache.decide check_cache presburger key in
            if fresh <> value then
              QCheck.Test.fail_reportf "entry %S disagrees with cold decide: %s vs %s" p
                (pp_verdict value) (pp_verdict fresh))
        got;
      true)

(* Chaos containment on the file-I/O sites: under a randomly-armed plan,
   the journal must recover exactly the acked appends — a faulted append
   or rotate never leaves a torn or corrupt record behind. *)
let prop_journal_chaos =
  QCheck.Test.make ~name:"armed journal faults never corrupt the valid prefix"
    ~count:80
    (QCheck.make
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 1 24) (int_bound 99999)))
    (fun (n, seed) ->
      let jpath = fresh_journal () in
      let plan =
        Fault.chaos
          ~sites:[ "journal.append"; "journal.rotate" ]
          ~permille:350
          ~actions:[ Fault.Crash "injected: disk" ]
          ~seed ()
      in
      let expected = ref [] in
      Fault.with_plan plan (fun () ->
          match Journal.open_append jpath with
          | Error e -> QCheck.Test.fail_reportf "open_append: %s" e
          | Ok j ->
            for i = 1 to n do
              (if i = (n / 2) + 1 then
                 match Journal.reset j with
                 | Ok () -> expected := [] (* compaction emptied the file *)
                 | Error _ -> () (* torn rename: old records still stand *));
              let p = Printf.sprintf "record\t%d" i in
              match Journal.append j p with
              | Ok () -> expected := p :: !expected
              | Error _ -> () (* acked nothing, so recovery owes nothing *)
            done;
            Journal.close j);
      let acc = ref [] in
      (match Journal.recover jpath ~f:(fun p -> acc := p :: !acc) with
      | Error e -> QCheck.Test.fail_reportf "recover: %s" e
      | Ok r ->
        if r.Journal.skipped <> 0 || r.Journal.truncated_bytes <> 0 then
          QCheck.Test.fail_reportf "faults corrupted the file: %d skipped, %d torn"
            r.Journal.skipped r.Journal.truncated_bytes);
      let got = List.rev !acc in
      Sys.remove jpath;
      if got <> List.rev !expected then
        QCheck.Test.fail_reportf
          "recovered %d records, expected exactly the %d acked appends"
          (List.length got) (List.length !expected);
      true)

(* ------------------------ end-to-end daemon ------------------------ *)

let schema = Schema.make [ ("E", 2); ("S", 1) ]

let served_state =
  State.make ~schema
    [ ( "E",
        Relation.make ~arity:2
          [ [ Value.str "1"; Value.str "2" ]; [ Value.str "2"; Value.str "3" ] ] );
      ("S", Relation.make ~arity:1 [ [ Value.str "1" ] ]) ]

let fresh_addr =
  let n = ref 0 in
  fun () ->
    incr n;
    Server.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "fq_test_%d_%d.sock" (Unix.getpid ()) !n))

let with_server cfg k =
  let result = ref (Error "server never returned") in
  let th = Thread.create (fun () -> result := Server.run cfg) () in
  let c =
    match Client.connect ~retries:200 ~delay_ms:25 cfg.Server.addr with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  Fun.protect
    ~finally:(fun () ->
      (match Client.request c (Protocol.Shutdown { id = "bye" }) with
      | Ok (_, Protocol.R_ok _) -> ()
      | Ok _ -> Alcotest.fail "shutdown: expected ok ack"
      | Error e -> Alcotest.failf "shutdown: %s" e);
      Client.close c;
      Thread.join th;
      match !result with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "server exited %d" n
      | Error e -> Alcotest.failf "server: %s" e)
    (fun () -> k c)

let base_config addr =
  { (Server.default_config ~state:served_state addr) with
    jobs = 2;
    log = ignore }

let test_serve_roundtrip () =
  with_server (base_config (fresh_addr ())) @@ fun c ->
  (match Client.request c (Protocol.Ping { id = "p" }) with
  | Ok ("p", Protocol.R_ok _) -> ()
  | Ok _ -> Alcotest.fail "ping: expected ok"
  | Error e -> Alcotest.failf "ping: %s" e);
  (match
     Client.request c
       (Protocol.Eval
          { id = "q"; domain = None; formula = "exists y. E(x,y)"; fuel = None;
            timeout_ms = None; resume = None; trace = None })
   with
  | Ok ("q", Protocol.R_outcome { verdict = Complete { answer; tier }; _ }) ->
    Alcotest.(check string) "tier" "ranf-algebra" tier;
    Alcotest.(check int) "answer size" 2 (Relation.cardinal answer)
  | Ok ("q", Protocol.R_outcome o) ->
    Alcotest.failf "eval: expected complete, got %s" (Outcome.status o)
  | Ok _ -> Alcotest.fail "eval: expected outcome"
  | Error e -> Alcotest.failf "eval: %s" e);
  (match
     Client.request c
       (Protocol.Eval
          { id = "bad"; domain = None; formula = "exists y. E(x,"; fuel = None;
            timeout_ms = None; resume = None; trace = None })
   with
  | Ok ("bad", Protocol.R_outcome o) ->
    Alcotest.(check string) "parse failure is a structured error" "error"
      (Outcome.status o)
  | Ok _ -> Alcotest.fail "bad eval: expected outcome"
  | Error e -> Alcotest.failf "bad eval: %s" e);
  match Client.request c (Protocol.Metrics { id = "m" }) with
  | Ok ("m", Protocol.R_ok j) -> (
    match Option.bind (Json.member "exposition" j) Json.to_str_opt with
    | Some text -> (
      let samples = Fq_core.Aggregate.parse_exposition text in
      match
        List.find_map
          (fun (m, labels, v) ->
            if m = "fq_engine_events_total" && labels = [ ("name", "serve.requests") ]
            then Some v
            else None)
          samples
      with
      | Some n when n >= 2. -> ()
      | Some n -> Alcotest.failf "metrics: serve.requests = %g" n
      | None -> Alcotest.fail "metrics: no serve.requests sample in the exposition")
    | None -> Alcotest.fail "metrics: no exposition")
  | Ok _ -> Alcotest.fail "metrics: expected ok payload"
  | Error e -> Alcotest.failf "metrics: %s" e

let test_serve_reject () =
  (* client_share = 0: every eval is over the per-connection fair share,
     so admission control must answer with a structured reject carrying
     resume evidence — never queue it. *)
  with_server { (base_config (fresh_addr ())) with client_share = 0 } @@ fun c ->
  match
    Client.request c
      (Protocol.Eval
         { id = "q"; domain = None; formula = "exists y. E(x,y)"; fuel = None;
           timeout_ms = None; resume = None; trace = None })
  with
  | Ok ("q", Protocol.R_rejected { retry_after_ms; resume = Some r; _ }) ->
    Alcotest.(check bool) "retry hint" true (retry_after_ms > 0);
    Alcotest.(check int) "zero-progress resume" 0 r.Outcome.seen;
    Alcotest.(check int) "resume arity matches free vars" 1
      (Relation.arity r.Outcome.found)
  | Ok ("q", Protocol.R_rejected { resume = None; _ }) ->
    Alcotest.fail "reject lost the resume token"
  | Ok _ -> Alcotest.fail "expected a structured reject"
  | Error e -> Alcotest.failf "reject: %s" e

let test_serve_snapshot_warm () =
  let snap = Filename.temp_file "fq_serve_snap" ".fq" in
  Sys.remove snap;
  let addr = fresh_addr () in
  let cfg = { (base_config addr) with snapshot = Some snap } in
  with_server cfg (fun c ->
      match
        Client.request c
          (Protocol.Eval
             { id = "q"; domain = Some "presburger";
               formula = "forall x. exists y. x < y"; fuel = None;
               timeout_ms = None; resume = None; trace = None })
      with
      | Ok ("q", Protocol.R_outcome { verdict = Complete _; _ }) -> ()
      | Ok _ -> Alcotest.fail "warmup eval failed"
      | Error e -> Alcotest.failf "warmup eval: %s" e);
  (* graceful shutdown wrote the snapshot; a second boot loads it *)
  Alcotest.(check bool) "snapshot written on shutdown" true (Sys.file_exists snap);
  with_server cfg (fun c ->
      match Client.request c (Protocol.Snapshot { id = "s" }) with
      | Ok ("s", Protocol.R_ok j) ->
        (match Option.bind (Json.member "entries" j) Json.to_int_opt with
        | Some n when n >= 1 -> ()
        | _ -> Alcotest.fail "snapshot ack lacks an entry count")
      | Ok _ -> Alcotest.fail "snapshot: expected ok ack"
      | Error e -> Alcotest.failf "snapshot: %s" e);
  Sys.remove snap

let eval_req ?domain ?timeout_ms id formula =
  Protocol.Eval { id; domain; formula; fuel = None; timeout_ms; resume = None; trace = None }

let test_serve_trace_roundtrip () =
  let cfg = { (base_config (fresh_addr ())) with trace_sample = 1 } in
  with_server cfg @@ fun c ->
  (* a client-chosen trace id is echoed verbatim in the matching reply *)
  (match Client.send c
           (Protocol.Eval
              { id = "t1"; domain = None; formula = "S(x)"; fuel = None;
                timeout_ms = None; resume = None; trace = Some "my-trace-7" })
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (match Client.recv_json c with
  | Ok j ->
    Alcotest.(check (option string)) "client trace echoed" (Some "my-trace-7")
      (Option.bind (Json.member "trace" j) Json.to_str_opt);
    (* the trace field does not perturb outcome classification *)
    (match Protocol.classify_reply j with
    | Ok ("t1", Protocol.R_outcome { verdict = Complete _; _ }) -> ()
    | _ -> Alcotest.fail "traced reply no longer classifies as a complete outcome")
  | Error e -> Alcotest.failf "recv: %s" e);
  (* an untraced request gets a server-minted id *)
  (match Client.send c (eval_req "t2" "S(x)") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (match Client.recv_json c with
  | Ok j -> (
    match Option.bind (Json.member "trace" j) Json.to_str_opt with
    | Some t when String.length t > 4 && String.sub t 0 4 = "srv-" -> ()
    | Some t -> Alcotest.failf "minted trace %S lacks the srv- prefix" t
    | None -> Alcotest.fail "untraced request got no minted trace id")
  | Error e -> Alcotest.failf "recv: %s" e);
  (* with trace_sample = 1 both requests landed in the trace ring *)
  match Client.request c (Protocol.Traces { id = "tr"; limit = None }) with
  | Ok ("tr", Protocol.R_ok j) -> (
    match Option.bind (Json.member "traces" j) Json.to_list_opt with
    | Some traces ->
      let ids =
        List.filter_map (fun t -> Option.bind (Json.member "trace" t) Json.to_str_opt)
          traces
      in
      Alcotest.(check bool) "client trace id names its sampled span tree" true
        (List.mem "my-trace-7" ids);
      Alcotest.(check bool) "sampled traces carry spans" true
        (List.for_all (fun t -> Json.member "spans" t <> None) traces)
    | None -> Alcotest.fail "traces reply lacks the traces list")
  | Ok _ -> Alcotest.fail "traces: expected ok payload"
  | Error e -> Alcotest.failf "traces: %s" e

let test_serve_reload () =
  let v2 = Filename.temp_file "fq_state_v2" ".db" in
  write_file v2 "# epoch-2 database\nE/2=7,8\nS/1=7\n";
  with_server (base_config (fresh_addr ())) @@ fun c ->
  (* Pipeline eval / reload / eval on one connection.  The reader admits
     in line order, and each job pins the epoch current at admission: the
     first eval must answer from epoch 1 even though the swap can win the
     race against the worker. *)
  List.iter
    (fun r ->
      match Client.send c r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" e)
    [ eval_req "old" "exists y. E(x,y)";
      Protocol.Reload { id = "r"; path = Some v2 };
      eval_req "new" "exists y. E(x,y)" ];
  let replies = ref [] in
  for _ = 1 to 3 do
    match Client.recv c with
    | Ok (id, reply) -> replies := (id, reply) :: !replies
    | Error e -> Alcotest.failf "recv: %s" e
  done;
  let find id =
    match List.assoc_opt id !replies with
    | Some r -> r
    | None -> Alcotest.failf "no reply for %S" id
  in
  (match find "old" with
  | Protocol.R_outcome { verdict = Complete { answer; _ }; _ } ->
    Alcotest.(check int) "epoch-1 answer" 2 (Relation.cardinal answer)
  | _ -> Alcotest.fail "old: expected a complete outcome from epoch 1");
  (match find "r" with
  | Protocol.R_ok j ->
    (match Option.bind (Json.member "epoch" j) Json.to_int_opt with
    | Some 2 -> ()
    | _ -> Alcotest.fail "reload ack lacks epoch 2")
  | _ -> Alcotest.fail "reload: expected an ok ack");
  (match find "new" with
  | Protocol.R_outcome { verdict = Complete { answer; _ }; _ } ->
    Alcotest.(check int) "epoch-2 answer" 1 (Relation.cardinal answer)
  | _ -> Alcotest.fail "new: expected a complete outcome from epoch 2");
  (match Client.request c (Protocol.Health { id = "h" }) with
  | Ok ("h", Protocol.R_ok j) ->
    (match Option.bind (Json.member "epoch" j) Json.to_int_opt with
    | Some 2 -> ()
    | _ -> Alcotest.fail "health must report epoch 2");
    (match Json.member "breakers" j with
    | Some _ -> ()
    | None -> Alcotest.fail "health lacks breaker states")
  | Ok _ -> Alcotest.fail "health: expected ok"
  | Error e -> Alcotest.failf "health: %s" e);
  (* a bad path is a structured reply, and serving continues on epoch 2 *)
  (match
     Client.request c (Protocol.Reload { id = "nope"; path = Some "/nonexistent/x.db" })
   with
  | Ok ("nope", Protocol.R_malformed _) -> ()
  | Ok _ -> Alcotest.fail "bad reload: expected malformed"
  | Error e -> Alcotest.failf "bad reload: %s" e);
  (match Client.request c (Protocol.Health { id = "h2" }) with
  | Ok ("h2", Protocol.R_ok j) ->
    (match Option.bind (Json.member "epoch" j) Json.to_int_opt with
    | Some 2 -> ()
    | _ -> Alcotest.fail "failed reload must not bump the epoch")
  | Ok _ -> Alcotest.fail "health after bad reload"
  | Error e -> Alcotest.failf "health after bad reload: %s" e);
  Sys.remove v2

let test_serve_oversized_line () =
  with_server { (base_config (fresh_addr ())) with max_line_bytes = 128 } @@ fun c ->
  (* an oversize request line is answered (not fatal) and drained *)
  (match Client.request c (eval_req "big" (String.make 256 'a')) with
  | Ok (_, Protocol.R_malformed reason) ->
    Alcotest.(check bool) "names the bound" true (contains reason "exceeds")
  | Ok _ -> Alcotest.fail "expected malformed for an oversize line"
  | Error e -> Alcotest.failf "oversize: %s" e);
  match Client.request c (Protocol.Ping { id = "p" }) with
  | Ok ("p", Protocol.R_ok _) -> ()
  | Ok _ -> Alcotest.fail "connection must survive an oversize line"
  | Error e -> Alcotest.failf "ping after oversize: %s" e

let test_serve_watchdog () =
  let release = Atomic.make false in
  let wedged =
    Fq_domain.Domain.with_decide presburger (fun _ ->
        while not (Atomic.get release) do
          Unix.sleepf 0.005
        done;
        Ok true)
  in
  let cfg =
    { (base_config (fresh_addr ())) with
      jobs = 1;
      watchdog_grace_ms = 100;
      extra_domains = [ ("wedge", wedged) ] }
  in
  with_server cfg @@ fun c ->
  Fun.protect ~finally:(fun () -> Atomic.set release true) @@ fun () ->
  (* the wedge ignores its budget's cancel hook, so the watchdog must
     escalate: force-answer the request and recycle the worker seat *)
  (match
     Client.request c
       (eval_req ~domain:"wedge" ~timeout_ms:50 "w" "forall x. exists y. x < y")
   with
  | Ok ("w", Protocol.R_outcome { verdict = Failed { reason }; _ }) ->
    Alcotest.(check bool) "classified as a watchdog recycle" true
      (contains reason "watchdog")
  | Ok ("w", Protocol.R_outcome o) ->
    Alcotest.failf "expected a watchdog failure, got %s" (Outcome.status o)
  | Ok _ -> Alcotest.fail "expected an outcome"
  | Error e -> Alcotest.failf "watchdog eval: %s" e);
  Atomic.set release true;
  (* the replacement domain serves the very next request *)
  match Client.request c (eval_req "after" "S(x)") with
  | Ok ("after", Protocol.R_outcome { verdict = Complete { answer; _ }; _ }) ->
    Alcotest.(check int) "replacement worker answers" 1 (Relation.cardinal answer)
  | Ok _ -> Alcotest.fail "expected a complete answer after the recycle"
  | Error e -> Alcotest.failf "post-recycle eval: %s" e

(* ------------------- snapshot save fault containment ----------------- *)

let test_snapshot_save_fault_containment () =
  (* a failed snapshot save must never corrupt the snapshot already on
     disk: the decide_cache.snapshot.save site fires before the temp
     file opens, so the bytes at [path] stay identical *)
  let cache = Decide_cache.create () in
  let formula =
    match Fq_logic.Parser.formula "forall x. exists y. x < y" with
    | Ok f -> f
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (match Decide_cache.decide cache presburger formula with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "decide: expected true"
  | Error e -> Alcotest.failf "decide: %s" e);
  let path = Filename.temp_file "fq_snap_fault" ".fq" in
  (match Decide_cache.save cache path with
  | Ok n when n >= 1 -> ()
  | Ok n -> Alcotest.failf "first save wrote %d entries" n
  | Error e -> Alcotest.failf "first save: %s" e);
  let before = read_file path in
  let plan =
    Fault.plan ~seed:11
      ~rules:
        [ Fault.At
            { site = "decide_cache.snapshot.save"; hits = [ 1 ]; action = Crash "disk full" } ]
      ()
  in
  Fault.with_plan plan (fun () ->
      match Decide_cache.save cache path with
      | Error e ->
        Alcotest.(check bool) "failure names the injected fault" true
          (contains e "injected")
      | Ok n -> Alcotest.failf "armed save succeeded (%d entries)" n);
  Alcotest.(check int) "the fault fired" 1 (Fault.injection_count plan);
  Alcotest.(check string) "existing snapshot byte-identical after failed save" before
    (read_file path);
  Alcotest.(check bool) "no temp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  (* and the cache itself is still saveable once the fault clears *)
  (match Decide_cache.save cache path with
  | Ok n when n >= 1 -> ()
  | Ok n -> Alcotest.failf "post-fault save wrote %d" n
  | Error e -> Alcotest.failf "post-fault save: %s" e);
  Sys.remove path

(* ------------------- client failover: half-closed sockets ------------ *)

(* A stub worker that accepts one connection, reads the request, and
   slams the socket shut — the classic kill -9 mid-request — then
   answers properly on every later connection.  run_jobs must classify
   the cut as transient and redeliver the job, resume token and all. *)
let test_run_jobs_halfclosed_retry () =
  let addr = fresh_addr () in
  let path = match addr with Server.Unix_path p -> p | Server.Tcp _ -> assert false in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  let conns = Atomic.make 0 in
  let stop = Atomic.make false in
  let serve_stub () =
    while not (Atomic.get stop) do
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        let fd, _ = Unix.accept listener in
        let n = Atomic.fetch_and_add conns 1 in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let rec answer () =
          match input_line ic with
          | exception (End_of_file | Sys_error _) -> ()
          | line -> (
            match Protocol.parse_request (String.trim line) with
            | Ok (Protocol.Fleet_status { id }) ->
              output_string oc
                (Json.to_string
                   (Protocol.fleet_status_response ~id ~fleet:false
                      [ { Protocol.worker = "stub"; worker_addr = Server.addr_to_string addr;
                          up = true; pid = None; restarts = 0 } ]));
              output_char oc '\n';
              flush oc;
              answer ()
            | Ok (Protocol.Eval { id; resume; _ }) ->
              if n = 1 then
                (* half-close: the request was read and then the peer died *)
                ()
              else begin
                (* a real answer; echo whether the retry carried evidence *)
                let ans =
                  if resume = None then Relation.make ~arity:0 [ [] ]
                  else Relation.empty ~arity:0
                in
                let outcome =
                  { Outcome.verdict = Outcome.Complete { answer = ans; tier = "stub" };
                    usage = { Budget.ticks = 1; elapsed_ms = 0.1 };
                    attempts = [] }
                in
                output_string oc (Json.to_string (Protocol.outcome_response ~id outcome));
                output_char oc '\n';
                flush oc;
                answer ()
              end
            | Ok _ | Error _ -> answer ())
        in
        answer ();
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        (try close_in ic with Sys_error _ -> ()))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Unix.close listener
  in
  let th = Thread.create serve_stub () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let job =
        { Client.domain = None; formula = "S(x)"; fuel = None; timeout_ms = None;
          trace = None }
      in
      match Client.run_jobs ~addr [ job ] with
      | Error e -> Alcotest.failf "run_jobs: %s" e
      | Ok results ->
        Alcotest.(check int) "one result" 1 (Array.length results);
        let r = results.(0) in
        (match r.Client.reply with
        | Protocol.R_outcome { verdict = Outcome.Complete _; _ } -> ()
        | Protocol.R_outcome o ->
          Alcotest.failf "job not answered after the cut: %s" (Outcome.status o)
        | _ -> Alcotest.fail "expected an outcome");
        Alcotest.(check bool) "the cut connection registered as a failover" true
          (r.Client.failovers >= 1);
        Alcotest.(check bool) "stub saw the retry on a fresh connection" true
          (Atomic.get conns >= 2))

(* ------------------------ SIGTERM drain ordering --------------------- *)

let test_sigterm_drain_answers_inflight () =
  (* SIGTERM while a long eval is in flight: the admitted request must
     be answered (drain, not drop), the journal folded into the
     snapshot, and the exit graceful *)
  let gate = Atomic.make false in
  let slow =
    Fq_domain.Domain.with_decide presburger (fun _ ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.005
        done;
        Ok true)
  in
  let snap = Filename.temp_file "fq_drain_snap" ".fq" in
  Sys.remove snap;
  let cfg =
    { (base_config (fresh_addr ())) with
      jobs = 1;
      snapshot = Some snap;
      extra_domains = [ ("slowdom", slow) ] }
  in
  let result = ref (Error "server never returned") in
  let th = Thread.create (fun () -> result := Server.run cfg) () in
  let c =
    match Client.connect ~retries:200 ~delay_ms:25 cfg.Server.addr with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  (match Client.send c (eval_req ~domain:"slowdom" "slow" "forall x. exists y. x < y") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  (* let the request get admitted, then pull the plug *)
  Unix.sleepf 0.15;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Unix.sleepf 0.05;
  Atomic.set gate true;
  (match Client.recv c with
  | Ok ("slow", Protocol.R_outcome { verdict = Outcome.Complete _; _ }) -> ()
  | Ok ("slow", Protocol.R_outcome o) ->
    Alcotest.failf "in-flight request mis-answered during drain: %s" (Outcome.status o)
  | Ok _ -> Alcotest.fail "expected the in-flight outcome"
  | Error e -> Alcotest.failf "drain dropped the in-flight request: %s" e);
  Client.close c;
  Thread.join th;
  (match !result with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "drain exit %d" n
  | Error e -> Alcotest.failf "server: %s" e);
  Alcotest.(check bool) "snapshot written by the drain" true (Sys.file_exists snap);
  Sys.remove snap

(* ------------------------------ fleet -------------------------------- *)

module Fleet = Fq_server.Fleet

(* The in-process fleet harness: Fleet.run on a thread (it forks worker
   processes underneath), shut down over the wire, exit code checked.
   Unix-socket fleets derive worker addresses as ADDR.i next to the
   control socket. *)
let fleet_config ?(workers = 2) ?snapshot addr =
  let base = Fleet.default_config ~state:served_state addr in
  { base with
    Fleet.workers;
    base_backoff_ms = 50;
    max_backoff_ms = 400;
    probe_interval_ms = 200;
    probe_timeout_ms = 500;
    serve = { base.Fleet.serve with Server.jobs = 2; snapshot; log = ignore } }

let with_fleet cfg k =
  let result = ref (Error "fleet never returned") in
  let th = Thread.create (fun () -> result := Fleet.run cfg) () in
  let addr = cfg.Fleet.serve.Server.addr in
  let ctl req =
    match Client.connect ~retries:200 ~delay_ms:25 addr with
    | Error e -> Error e
    | Ok c ->
      let r = Client.request c req in
      Client.close c;
      r
  in
  Fun.protect
    ~finally:(fun () ->
      (match ctl (Protocol.Shutdown { id = "bye" }) with
      | Ok (_, Protocol.R_ok _) -> ()
      | Ok _ -> Alcotest.fail "fleet shutdown: expected ok ack"
      | Error e -> Alcotest.failf "fleet shutdown: %s" e);
      Thread.join th;
      match !result with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "fleet exited %d" n
      | Error e -> Alcotest.failf "fleet: %s" e)
    (fun () -> k ctl)

let fleet_status_workers ctl =
  match ctl (Protocol.Fleet_status { id = "fs" }) with
  | Ok (_, Protocol.R_ok j) -> (
    match Protocol.fleet_status_of_json j with
    | Ok (true, ws) -> ws
    | Ok (false, _) -> Alcotest.fail "fleet-status did not identify as a fleet"
    | Error e -> Alcotest.failf "fleet-status parse: %s" e)
  | Ok _ -> Alcotest.fail "fleet-status: expected ok"
  | Error e -> Alcotest.failf "fleet-status: %s" e

let eval_jobs n =
  List.init n (fun i ->
      { Client.domain = Some "presburger";
        formula = Printf.sprintf "exists x. x + x = %d" (2 * i);
        fuel = None; timeout_ms = None; trace = None })

let all_answered results =
  Array.iteri
    (fun i (r : Client.job_result) ->
      match r.Client.reply with
      | Protocol.R_outcome { verdict = Outcome.Complete _; _ } -> ()
      | Protocol.R_outcome { verdict = Outcome.Failed { reason }; _ } ->
        Alcotest.failf "job %d lost: %s" i reason
      | Protocol.R_outcome o -> Alcotest.failf "job %d: %s" i (Outcome.status o)
      | _ -> Alcotest.failf "job %d: no outcome" i)
    results

let test_fleet_boot_and_serve () =
  let addr = fresh_addr () in
  with_fleet (fleet_config addr) @@ fun ctl ->
  let ws = fleet_status_workers ctl in
  Alcotest.(check int) "both workers listed" 2 (List.length ws);
  Alcotest.(check bool) "both workers up" true (List.for_all (fun w -> w.Protocol.up) ws);
  (* jobs are spread across the fleet and every one is answered, each
     reply stamped with the answering worker's id *)
  match Client.run_jobs ~addr (eval_jobs 8) with
  | Error e -> Alcotest.failf "run_jobs: %s" e
  | Ok results ->
    Alcotest.(check int) "all replies" 8 (Array.length results);
    all_answered results;
    Alcotest.(check bool) "replies carry worker stamps" true
      (Array.for_all (fun (r : Client.job_result) -> r.Client.worker <> None) results)

let test_fleet_kill9_no_lost_requests seed =
  (* the acceptance drill: kill -9 one worker while >= 50 pipelined
     requests are in flight — zero lost client requests, the worker
     respawned within backoff bounds *)
  let addr = fresh_addr () in
  with_fleet (fleet_config addr) @@ fun ctl ->
  let ws = fleet_status_workers ctl in
  let victim = List.nth ws (seed mod List.length ws) in
  let pid =
    match victim.Protocol.pid with
    | Some p -> p
    | None -> Alcotest.fail "live worker reports no pid"
  in
  let results = ref (Error "run_jobs never returned") in
  let runner = Thread.create (fun () -> results := Client.run_jobs ~addr (eval_jobs 60)) () in
  (* let the pool connect and start draining, then murder the victim *)
  Unix.sleepf 0.1;
  Unix.kill pid Sys.sigkill;
  Thread.join runner;
  (match !results with
  | Error e -> Alcotest.failf "run_jobs under kill -9: %s" e
  | Ok results ->
    Alcotest.(check int) "every request answered" 60 (Array.length results);
    all_answered results);
  (* the supervisor respawns the victim within backoff bounds *)
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait_respawn () =
    let ws = fleet_status_workers ctl in
    let v = List.find (fun w -> w.Protocol.worker = victim.Protocol.worker) ws in
    if List.for_all (fun w -> w.Protocol.up) ws && v.Protocol.restarts >= 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "victim not respawned within 5s (up %b, restarts %d)" v.Protocol.up
        v.Protocol.restarts
    else begin
      Unix.sleepf 0.05;
      wait_respawn ()
    end
  in
  wait_respawn ()

let test_fleet_rolling_reload () =
  let v2 = Filename.temp_file "fq_fleet_state_v2" ".db" in
  write_file v2 "E/2=7,8\nS/1=7\n";
  let addr = fresh_addr () in
  with_fleet (fleet_config addr) @@ fun ctl ->
  (* a broken state file must roll zero workers *)
  let bad = Filename.temp_file "fq_fleet_state_bad" ".db" in
  write_file bad "not a database\n";
  (match ctl (Protocol.Reload { id = "bad"; path = Some bad }) with
  | Ok (_, Protocol.R_malformed _) -> ()
  | Ok _ -> Alcotest.fail "bad reload: expected malformed"
  | Error e -> Alcotest.failf "bad reload: %s" e);
  Sys.remove bad;
  (* a good one rolls every live worker, one at a time, and the fleet
     keeps answering throughout *)
  let results = ref (Error "run_jobs never returned") in
  let runner = Thread.create (fun () -> results := Client.run_jobs ~addr (eval_jobs 20)) () in
  (match ctl (Protocol.Reload { id = "r"; path = Some v2 }) with
  | Ok (_, Protocol.R_ok j) ->
    (match Option.bind (Json.member "workers_reloaded" j) Json.to_int_opt with
    | Some 2 -> ()
    | Some n -> Alcotest.failf "reloaded %d workers, want 2" n
    | None -> Alcotest.fail "reload ack lacks workers_reloaded")
  | Ok _ -> Alcotest.fail "reload: expected ok"
  | Error e -> Alcotest.failf "reload: %s" e);
  Thread.join runner;
  (match !results with
  | Error e -> Alcotest.failf "run_jobs during reload: %s" e
  | Ok results -> all_answered results);
  (* new admissions see the reloaded database on every worker *)
  let ws = fleet_status_workers ctl in
  List.iter
    (fun w ->
      match Server.addr_of_string w.Protocol.worker_addr with
      | Error e -> Alcotest.failf "worker addr: %s" e
      | Ok waddr -> (
        match Client.connect ~retries:20 waddr with
        | Error e -> Alcotest.failf "%s: %s" w.Protocol.worker e
        | Ok c ->
          (match Client.request c (eval_req "q" "exists y. E(x,y)") with
          | Ok (_, Protocol.R_outcome { verdict = Outcome.Complete { answer; _ }; _ }) ->
            Alcotest.(check int)
              (w.Protocol.worker ^ " answers from the new epoch")
              1 (Relation.cardinal answer)
          | Ok _ -> Alcotest.failf "%s: expected a complete outcome" w.Protocol.worker
          | Error e -> Alcotest.failf "%s eval: %s" w.Protocol.worker e);
          Client.close c))
    ws;
  Sys.remove v2

(* Fleet chaos properties: ride the QCHECK_SEED matrix — the seed picks
   the victim worker and the fault sites armed in the supervisor. *)
let prop_fleet_kill9 =
  QCheck.Test.make ~name:"fleet: kill -9 loses zero client requests" ~count:2
    QCheck.(make Gen.(int_bound 1000))
    (fun seed ->
      test_fleet_kill9_no_lost_requests seed;
      true)

let prop_fleet_spawn_faults =
  QCheck.Test.make ~name:"fleet: armed spawn/probe faults never lose requests" ~count:2
    QCheck.(make Gen.(int_bound 99999))
    (fun seed ->
      let plan =
        Fault.chaos ~seed ~sites:[ "fleet.spawn"; "fleet.probe" ] ~permille:120
          ~actions:[ Fault.Crash "injected: supervisor" ]
          ()
      in
      Fault.with_plan plan (fun () ->
          let addr = fresh_addr () in
          with_fleet (fleet_config addr) @@ fun _ctl ->
          match Client.run_jobs ~addr (eval_jobs 12) with
          | Error e -> QCheck.Test.fail_reportf "run_jobs under chaos: %s" e
          | Ok results ->
            if Array.length results <> 12 then
              QCheck.Test.fail_reportf "%d of 12 replies" (Array.length results);
            all_answered results);
      true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [ ( "codecs",
        [ Alcotest.test_case "json print/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "outcome json roundtrip" `Quick test_outcome_roundtrip;
          Alcotest.test_case "request json roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply classification" `Quick test_reply_classify ] );
      ("snapshot", [ qt prop_snapshot_agrees ]);
      ( "journal",
        [ Alcotest.test_case "crc32 check value" `Quick test_journal_crc;
          Alcotest.test_case "append/recover roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated in place" `Quick test_journal_torn_tail;
          Alcotest.test_case "corrupt record skipped" `Quick test_journal_corrupt_record;
          Alcotest.test_case "reset compacts atomically" `Quick test_journal_reset;
          Alcotest.test_case "wrong header refused, missing file empty" `Quick
            test_journal_not_a_journal;
          Alcotest.test_case "armed faults leave a valid prefix" `Quick
            test_journal_fault_containment;
          qt prop_journal_recovery;
          qt prop_journal_chaos ] );
      (* the fleet group must run before any in-process daemon boots:
         OCaml 5 refuses Unix.fork once another domain has ever been
         spawned, and Server.run creates its worker-domain pool in this
         process — the fleet parent itself only forks and threads *)
      ( "fleet",
        [ Alcotest.test_case "boot, discover, spread, shutdown" `Quick
            test_fleet_boot_and_serve;
          Alcotest.test_case "rolling reload serves throughout" `Quick
            test_fleet_rolling_reload;
          qt prop_fleet_kill9;
          qt prop_fleet_spawn_faults ] );
      ( "daemon",
        [ Alcotest.test_case "boot, eval, metrics, shutdown" `Quick test_serve_roundtrip;
          Alcotest.test_case "trace ids echo, mint, and reach the ring" `Quick
            test_serve_trace_roundtrip;
          Alcotest.test_case "admission reject carries resume" `Quick test_serve_reject;
          Alcotest.test_case "snapshot warm start" `Quick test_serve_snapshot_warm;
          Alcotest.test_case "hot reload swaps epochs without drops" `Quick
            test_serve_reload;
          Alcotest.test_case "oversize line answered and drained" `Quick
            test_serve_oversized_line;
          Alcotest.test_case "failed snapshot save leaves the old snapshot intact" `Quick
            test_snapshot_save_fault_containment;
          Alcotest.test_case "half-closed socket classified transient and retried" `Quick
            test_run_jobs_halfclosed_retry;
          Alcotest.test_case "SIGTERM drains the in-flight request" `Quick
            test_sigterm_drain_answers_inflight;
          Alcotest.test_case "watchdog recycles a wedged worker" `Quick
            test_serve_watchdog ] ) ]
