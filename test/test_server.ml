(* fq serve: wire-protocol codecs, Outcome JSON stability, the
   snapshot warm-start property, and an in-process end-to-end run of
   the daemon (boot, round-trip, deterministic reject, graceful
   shutdown). *)

module Json = Fq_core.Json
module Budget = Fq_core.Budget
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema
module Value = Fq_db.Value
module Outcome = Fq_eval.Outcome
module Decide_cache = Fq_domain.Decide_cache
module Protocol = Fq_server.Protocol
module Server = Fq_server.Server
module Client = Fq_server.Client

let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)

(* ------------------------- JSON roundtrips ------------------------- *)

let json_samples =
  [ {|null|}; {|true|}; {|[1,-2,0]|}; {|"a\"b\\c\nd"|};
    {|{"k":[{"x":1.5},"s"],"m":{}}|}; {|123456789012345678901234567890|} ]

let test_json_roundtrip () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j ->
        let s' = Json.to_string j in
        (match Json.parse s' with
        | Error e -> Alcotest.failf "reparse %s: %s" s' e
        | Ok j' ->
          Alcotest.(check string) ("roundtrip " ^ s) s' (Json.to_string j')))
    json_samples

(* ---------------------- Outcome JSON stability --------------------- *)

let usage = { Budget.ticks = 42; elapsed_ms = 1.5 }

let rel rows = Relation.make ~arity:2 (List.map (List.map Value.str) rows)

let sample_outcomes =
  [ ( "complete", 0,
      { Outcome.verdict = Complete { answer = rel [ [ "a"; "b" ] ]; tier = "ranf-algebra" };
        usage;
        attempts = [ ("ranf-algebra", "not safe-range") ] } );
    ( "partial", 3,
      { Outcome.verdict =
          Partial
            { tuples = rel [ [ "a"; "b" ]; [ "c"; "d" ] ];
              reason = Budget.Fuel_exhausted;
              resume = { seen = 17; found = rel [ [ "a"; "b" ] ] } };
        usage;
        attempts = [] } );
    ( "unsupported", 4,
      { Outcome.verdict = Failed { reason = Budget.error_string (Budget.Unsupported "qe over words") };
        usage;
        attempts = [] } );
    ( "error", 1,
      { Outcome.verdict = Failed { reason = "parse error: unexpected token" };
        usage;
        attempts = [] } ) ]

let test_outcome_roundtrip () =
  List.iter
    (fun (status, code, o) ->
      Alcotest.(check string) "status" status (Outcome.status o);
      Alcotest.(check int) "exit code" code (Outcome.exit_code o);
      let j = Outcome.to_json o in
      match Outcome.of_json j with
      | Error e -> Alcotest.failf "of_json (%s): %s" status e
      | Ok o' ->
        Alcotest.(check string)
          ("json roundtrip " ^ status)
          (Json.to_string j)
          (Json.to_string (Outcome.to_json o'));
        (match Json.parse (Json.to_string j) with
        | Error e -> Alcotest.failf "reparse (%s): %s" status e
        | Ok j' ->
          Alcotest.(check string)
            ("print/parse " ^ status)
            (Json.to_string j) (Json.to_string j')))
    sample_outcomes

(* ----------------------- Protocol roundtrips ----------------------- *)

let sample_requests =
  [ Protocol.Eval
      { id = "q1"; domain = Some "presburger"; formula = "exists y. E(x,y)";
        fuel = Some 500; timeout_ms = Some 100;
        resume = Some { seen = 3; found = rel [ [ "a"; "b" ] ] } };
    Protocol.Eval
      { id = "q2"; domain = None; formula = "S(x)"; fuel = None;
        timeout_ms = None; resume = None };
    Protocol.Explain { id = "e"; domain = None; formula = "S(x)" };
    Protocol.Metrics { id = "m" };
    Protocol.Ping { id = "p" };
    Protocol.Snapshot { id = "s" };
    Protocol.Shutdown { id = "x" } ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = Json.to_string (Protocol.request_to_json req) in
      match Protocol.parse_request line with
      | Error e -> Alcotest.failf "parse_request %s: %s" line e
      | Ok req' ->
        Alcotest.(check string)
          ("request roundtrip " ^ Protocol.request_id req)
          line
          (Json.to_string (Protocol.request_to_json req')))
    sample_requests

let test_reply_classify () =
  let out = List.assoc "partial" (List.map (fun (s, _, o) -> (s, o)) sample_outcomes) in
  (match Protocol.classify_reply (Protocol.outcome_response ~id:"a" out) with
  | Ok ("a", Protocol.R_outcome o) ->
    Alcotest.(check string) "outcome status" "partial" (Outcome.status o)
  | Ok _ -> Alcotest.fail "expected R_outcome"
  | Error e -> Alcotest.fail e);
  (match
     Protocol.classify_reply
       (Protocol.reject_response ~id:"b" ~reason:"server saturated" ~retry_after_ms:25
          ~resume:{ seen = 0; found = Relation.empty ~arity:1 })
   with
  | Ok ("b", Protocol.R_rejected { retry_after_ms = 25; resume = Some r; _ }) ->
    Alcotest.(check int) "fresh resume" 0 r.Outcome.seen
  | Ok _ -> Alcotest.fail "expected R_rejected"
  | Error e -> Alcotest.fail e);
  (match Protocol.classify_reply (Protocol.malformed_response ~id:"c" "bad json") with
  | Ok ("c", Protocol.R_malformed _) -> ()
  | Ok _ -> Alcotest.fail "expected R_malformed"
  | Error e -> Alcotest.fail e);
  match Protocol.classify_reply (Protocol.ok_response ~id:"d" [ ("pong", Json.Bool true) ]) with
  | Ok ("d", Protocol.R_ok _) -> ()
  | Ok _ -> Alcotest.fail "expected R_ok"
  | Error e -> Alcotest.fail e

(* ------------------ snapshot warm-start property -------------------
   save -> load -> decide agrees with the cold cache, and the warm
   cache never re-runs the decision procedure (its decide is poisoned). *)

let gen_sentence : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y" ] in
  let term =
    oneof
      [ map (fun v -> Term.Var v) var;
        map (fun n -> Term.Const (string_of_int n)) (int_bound 4);
        map2
          (fun v n -> Term.App ("+", [ Term.Var v; Term.Const (string_of_int n) ]))
          var (int_bound 3) ]
  in
  let atom =
    oneof
      [ map2 (fun t u -> Formula.Atom ("<", [ t; u ])) term term;
        map2 (fun t u -> Formula.Eq (t, u)) term term;
        map2
          (fun d t -> Formula.Atom ("dvd", [ Term.Const (string_of_int (d + 1)); t ]))
          (int_bound 3) term ]
  in
  let qf =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [ atom;
              map (fun f -> Formula.Not f) (self (n - 1));
              map2 (fun f g -> Formula.And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> Formula.Or (f, g)) (self (n / 2)) (self (n / 2)) ])
      4
  in
  map (fun f -> Formula.Exists ("x", Formula.Forall ("y", f))) qf

let poisoned =
  Fq_domain.Domain.with_decide presburger (fun f ->
      Error ("poisoned: warm cache missed " ^ Formula.to_string f))

let snapshot_path = Filename.temp_file "fq_snapshot_prop" ".fq"

let pp_verdict = function
  | Ok b -> string_of_bool b
  | Error e -> "error: " ^ e

let prop_snapshot_agrees =
  QCheck.Test.make ~name:"snapshot save/load/decide agrees with cold cache" ~count:200
    (QCheck.make ~print:Formula.to_string gen_sentence)
    (fun f ->
      let cold = Decide_cache.create () in
      let cold_verdict = Decide_cache.decide cold presburger f in
      (match Decide_cache.save cold snapshot_path with
      | Ok n when n >= 1 -> ()
      | Ok n -> QCheck.Test.fail_reportf "snapshot wrote %d entries" n
      | Error e -> QCheck.Test.fail_reportf "save: %s" e);
      let warm = Decide_cache.create () in
      (match Decide_cache.load warm snapshot_path with
      | Ok n when n >= 1 -> ()
      | Ok n -> QCheck.Test.fail_reportf "snapshot read %d entries" n
      | Error e -> QCheck.Test.fail_reportf "load: %s" e);
      let warm_verdict = Decide_cache.decide warm poisoned f in
      if warm_verdict <> cold_verdict then
        QCheck.Test.fail_reportf "cold %s <> warm %s" (pp_verdict cold_verdict)
          (pp_verdict warm_verdict);
      true)

(* ------------------------ end-to-end daemon ------------------------ *)

let schema = Schema.make [ ("E", 2); ("S", 1) ]

let served_state =
  State.make ~schema
    [ ( "E",
        Relation.make ~arity:2
          [ [ Value.str "1"; Value.str "2" ]; [ Value.str "2"; Value.str "3" ] ] );
      ("S", Relation.make ~arity:1 [ [ Value.str "1" ] ]) ]

let fresh_addr =
  let n = ref 0 in
  fun () ->
    incr n;
    Server.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "fq_test_%d_%d.sock" (Unix.getpid ()) !n))

let with_server cfg k =
  let result = ref (Error "server never returned") in
  let th = Thread.create (fun () -> result := Server.run cfg) () in
  let c =
    match Client.connect ~retries:200 ~delay_ms:25 cfg.Server.addr with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  Fun.protect
    ~finally:(fun () ->
      (match Client.request c (Protocol.Shutdown { id = "bye" }) with
      | Ok (_, Protocol.R_ok _) -> ()
      | Ok _ -> Alcotest.fail "shutdown: expected ok ack"
      | Error e -> Alcotest.failf "shutdown: %s" e);
      Client.close c;
      Thread.join th;
      match !result with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "server exited %d" n
      | Error e -> Alcotest.failf "server: %s" e)
    (fun () -> k c)

let base_config addr =
  { (Server.default_config ~state:served_state addr) with
    jobs = 2;
    log = ignore }

let test_serve_roundtrip () =
  with_server (base_config (fresh_addr ())) @@ fun c ->
  (match Client.request c (Protocol.Ping { id = "p" }) with
  | Ok ("p", Protocol.R_ok _) -> ()
  | Ok _ -> Alcotest.fail "ping: expected ok"
  | Error e -> Alcotest.failf "ping: %s" e);
  (match
     Client.request c
       (Protocol.Eval
          { id = "q"; domain = None; formula = "exists y. E(x,y)"; fuel = None;
            timeout_ms = None; resume = None })
   with
  | Ok ("q", Protocol.R_outcome { verdict = Complete { answer; tier }; _ }) ->
    Alcotest.(check string) "tier" "ranf-algebra" tier;
    Alcotest.(check int) "answer size" 2 (Relation.cardinal answer)
  | Ok ("q", Protocol.R_outcome o) ->
    Alcotest.failf "eval: expected complete, got %s" (Outcome.status o)
  | Ok _ -> Alcotest.fail "eval: expected outcome"
  | Error e -> Alcotest.failf "eval: %s" e);
  (match
     Client.request c
       (Protocol.Eval
          { id = "bad"; domain = None; formula = "exists y. E(x,"; fuel = None;
            timeout_ms = None; resume = None })
   with
  | Ok ("bad", Protocol.R_outcome o) ->
    Alcotest.(check string) "parse failure is a structured error" "error"
      (Outcome.status o)
  | Ok _ -> Alcotest.fail "bad eval: expected outcome"
  | Error e -> Alcotest.failf "bad eval: %s" e);
  match Client.request c (Protocol.Metrics { id = "m" }) with
  | Ok ("m", Protocol.R_ok j) ->
    (match Json.member "counters" j with
    | Some counters ->
      (match Option.bind (Json.member "serve.requests" counters) Json.to_int_opt with
      | Some n when n >= 2 -> ()
      | Some n -> Alcotest.failf "metrics: serve.requests = %d" n
      | None -> Alcotest.fail "metrics: no serve.requests counter")
    | None -> Alcotest.fail "metrics: no counters object")
  | Ok _ -> Alcotest.fail "metrics: expected ok payload"
  | Error e -> Alcotest.failf "metrics: %s" e

let test_serve_reject () =
  (* client_share = 0: every eval is over the per-connection fair share,
     so admission control must answer with a structured reject carrying
     resume evidence — never queue it. *)
  with_server { (base_config (fresh_addr ())) with client_share = 0 } @@ fun c ->
  match
    Client.request c
      (Protocol.Eval
         { id = "q"; domain = None; formula = "exists y. E(x,y)"; fuel = None;
           timeout_ms = None; resume = None })
  with
  | Ok ("q", Protocol.R_rejected { retry_after_ms; resume = Some r; _ }) ->
    Alcotest.(check bool) "retry hint" true (retry_after_ms > 0);
    Alcotest.(check int) "zero-progress resume" 0 r.Outcome.seen;
    Alcotest.(check int) "resume arity matches free vars" 1
      (Relation.arity r.Outcome.found)
  | Ok ("q", Protocol.R_rejected { resume = None; _ }) ->
    Alcotest.fail "reject lost the resume token"
  | Ok _ -> Alcotest.fail "expected a structured reject"
  | Error e -> Alcotest.failf "reject: %s" e

let test_serve_snapshot_warm () =
  let snap = Filename.temp_file "fq_serve_snap" ".fq" in
  Sys.remove snap;
  let addr = fresh_addr () in
  let cfg = { (base_config addr) with snapshot = Some snap } in
  with_server cfg (fun c ->
      match
        Client.request c
          (Protocol.Eval
             { id = "q"; domain = Some "presburger";
               formula = "forall x. exists y. x < y"; fuel = None;
               timeout_ms = None; resume = None })
      with
      | Ok ("q", Protocol.R_outcome { verdict = Complete _; _ }) -> ()
      | Ok _ -> Alcotest.fail "warmup eval failed"
      | Error e -> Alcotest.failf "warmup eval: %s" e);
  (* graceful shutdown wrote the snapshot; a second boot loads it *)
  Alcotest.(check bool) "snapshot written on shutdown" true (Sys.file_exists snap);
  with_server cfg (fun c ->
      match Client.request c (Protocol.Snapshot { id = "s" }) with
      | Ok ("s", Protocol.R_ok j) ->
        (match Option.bind (Json.member "entries" j) Json.to_int_opt with
        | Some n when n >= 1 -> ()
        | _ -> Alcotest.fail "snapshot ack lacks an entry count")
      | Ok _ -> Alcotest.fail "snapshot: expected ok ack"
      | Error e -> Alcotest.failf "snapshot: %s" e);
  Sys.remove snap

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [ ( "codecs",
        [ Alcotest.test_case "json print/parse roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "outcome json roundtrip" `Quick test_outcome_roundtrip;
          Alcotest.test_case "request json roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply classification" `Quick test_reply_classify ] );
      ("snapshot", [ qt prop_snapshot_agrees ]);
      ( "daemon",
        [ Alcotest.test_case "boot, eval, metrics, shutdown" `Quick test_serve_roundtrip;
          Alcotest.test_case "admission reject carries resume" `Quick test_serve_reject;
          Alcotest.test_case "snapshot warm start" `Quick test_serve_snapshot_warm ] ) ]
