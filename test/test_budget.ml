(* Tests for the unified resource governor (Fq_core.Budget) and its
   integration with the evaluators: structured failures, the ambient
   budget, the degradation chain of Fq_eval.Query, resume tokens, and the
   monotonicity of budgeted enumeration.

   The paper's Theorems 3.1/3.3 are why the governor exists: finiteness
   of a query is undecidable in general, so an evaluator that accepts
   arbitrary queries can only ever promise "a complete answer or a
   structured account of why it stopped". *)

module Budget = Fq_core.Budget
module Formula = Fq_logic.Formula
module Relation = Fq_db.Relation
module Value = Fq_db.Value
module State = Fq_db.State
module Schema = Fq_db.Schema
module Enumerate = Fq_eval.Enumerate
module Query = Fq_eval.Query

let parse = Fq_logic.Parser.formula_exn

let failure =
  Alcotest.testable Budget.pp_failure (fun a b ->
      match (a, b) with
      | Budget.Oversize n, Budget.Oversize m -> n = m
      | Budget.Unsupported a, Budget.Unsupported b -> a = b
      | a, b -> a = b)

let rel = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------ core -------------------------------- *)

let test_fuel () =
  let b = Budget.of_fuel 5 in
  for _ = 1 to 5 do
    Budget.tick b
  done;
  Alcotest.(check int) "five ticks spent" 5 (Budget.spent b);
  Alcotest.check failure "sixth tick trips"
    Budget.Fuel_exhausted
    (match Budget.tick b with
    | () -> Alcotest.fail "tick beyond the fuel limit did not trip"
    | exception Budget.Exhausted f -> f)

let test_charge () =
  let b = Budget.make ~fuel:10 () in
  Budget.charge b 10;
  (match Budget.charge b 1 with
  | () -> Alcotest.fail "charge beyond the fuel limit did not trip"
  | exception Budget.Exhausted Budget.Fuel_exhausted -> ());
  Alcotest.(check bool) "exhausted after the trip" true (Budget.exhausted b)

let test_deadline () =
  let b = Budget.with_deadline ~timeout_ms:0 in
  let r =
    Budget.guard b (fun () ->
        (* the wall clock is polled every 256 ticks *)
        for _ = 1 to 10_000 do
          Budget.tick b
        done)
  in
  Alcotest.(check (result unit failure)) "deadline trips" (Error Budget.Deadline_exceeded) r

let test_oversize () =
  let b = Budget.make ~max_result:3 () in
  Budget.ensure_size b 3;
  match Budget.ensure_size b 4 with
  | () -> Alcotest.fail "oversize did not trip"
  | exception Budget.Exhausted (Budget.Oversize 3) -> ()
  | exception Budget.Exhausted f ->
    Alcotest.failf "wrong failure: %s" (Budget.error_string f)

let test_cancel () =
  let polled = ref 0 in
  let b =
    Budget.make
      ~cancel:(fun () ->
        incr polled;
        !polled > 2)
      ()
  in
  let r =
    Budget.guard b (fun () ->
        for _ = 1 to 100_000 do
          Budget.tick b
        done)
  in
  Alcotest.(check (result unit failure)) "cancellation trips" (Error Budget.Cancelled) r

let test_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 100_000 do
    Budget.tick b
  done;
  Alcotest.(check int) "ticks still counted" 100_000 (Budget.spent b);
  Alcotest.(check bool) "never exhausted" false (Budget.exhausted b)

let test_error_string_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (option failure))
        (Budget.error_string f) (Some f)
        (Budget.failure_of_string (Budget.error_string f)))
    [ Budget.Fuel_exhausted; Budget.Deadline_exceeded; Budget.Oversize 7; Budget.Cancelled;
      Budget.Unsupported "Cooper: too big" ];
  Alcotest.(check (option failure)) "ordinary errors stay unstructured" None
    (Budget.failure_of_string "parse error: unexpected token")

let test_ambient_scoping () =
  (* Budget.t holds closures, so compare physically *)
  let installed b = match Budget.ambient () with Some x -> x == b | None -> false in
  Alcotest.(check bool) "no ambient outside guard" true (Budget.ambient () = None);
  (* tick_ambient with no budget installed is a no-op *)
  Budget.tick_ambient ();
  let b1 = Budget.make ~fuel:1_000 () in
  let b2 = Budget.make ~fuel:1_000 () in
  let r =
    Budget.guard b1 (fun () ->
        Alcotest.(check bool) "b1 installed" true (installed b1);
        let inner =
          Budget.guard b2 (fun () ->
              Alcotest.(check bool) "b2 shadows" true (installed b2))
        in
        Alcotest.(check (result unit failure)) "inner fine" (Ok ()) inner;
        Alcotest.(check bool) "b1 restored" true (installed b1))
  in
  Alcotest.(check (result unit failure)) "outer fine" (Ok ()) r;
  Alcotest.(check bool) "slot cleared" true (Budget.ambient () = None);
  (* a ~share:false budget is never installed: legacy fuel accounting *)
  let legacy = Budget.of_fuel ~share:false 10 in
  let r =
    Budget.guard legacy (fun () ->
        Alcotest.(check bool) "legacy budget not ambient" true (Budget.ambient () = None))
  in
  Alcotest.(check (result unit failure)) "legacy guard fine" (Ok ()) r

let test_protect () =
  let b = Budget.of_fuel 3 in
  let r =
    Budget.protect ~budget:b (fun () ->
        for _ = 1 to 10 do
          Budget.tick_ambient ()
        done;
        Ok ())
  in
  Alcotest.(check (result unit string)) "stable error string"
    (Error "budget: fuel exhausted") r

(* ----------------------- states and domains ------------------------- *)

let nat_state =
  State.make
    ~schema:(Schema.make [ ("R", 1) ])
    [ ("R", Relation.make ~arity:1 [ [ Value.int 1 ] ]) ]

let nat_order : Fq_domain.Domain.t = (module Fq_domain.Nat_order)
let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)
let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)

let family_state =
  let s = Value.str in
  State.make
    ~schema:(Schema.make [ ("F", 2) ])
    [ ( "F",
        Relation.make ~arity:2
          [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ] ] ) ]

(* ------------------------- unsafe queries --------------------------- *)

(* ¬R(x) has an infinite answer over any infinite domain: the governed
   evaluator must always come back with Partial, whatever the budget. *)
let test_unsafe_always_partial () =
  let f = parse "~R(x)" in
  List.iter
    (fun (domain, fuel) ->
      let budget = Budget.make ~fuel () in
      let report = Query.eval_resilient ~budget ~domain ~state:nat_state f in
      match report.Query.verdict with
      | Query.Partial { reason = (Budget.Fuel_exhausted | Budget.Oversize _); _ } ->
        (* small budgets run out of fuel; larger ones hit the certification
           cap — either way the scan stops with a structured partial *)
        ()
      | Query.Partial { reason; _ } ->
        Alcotest.failf "unexpected trip: %s" (Budget.error_string reason)
      | Query.Complete _ -> Alcotest.fail "an infinite answer cannot be complete"
      | Query.Failed { reason } -> Alcotest.failf "hard failure: %s" reason)
    [ (nat_order, 5); (nat_order, 500); (presburger, 5); (presburger, 500) ]

let test_unsafe_deadline () =
  let f = parse "~R(x)" in
  let budget = Budget.make ~timeout_ms:0 () in
  let report =
    Query.eval_resilient ~budget ~max_certified:1_000_000 ~domain:presburger ~state:nat_state f
  in
  match report.Query.verdict with
  | Query.Partial { reason = Budget.Deadline_exceeded; _ } -> ()
  | Query.Partial { reason; _ } ->
    Alcotest.failf "expected a deadline trip, got %s" (Budget.error_string reason)
  | _ -> Alcotest.fail "expected Partial under an expired deadline"

(* --------------------- guarded = unguarded -------------------------- *)

let test_guarded_matches_unguarded_decide () =
  List.iter
    (fun s ->
      let f = parse s in
      let plain = Fq_domain.Presburger.decide f in
      let guarded =
        Budget.protect
          ~budget:(Budget.make ~fuel:1_000_000 ())
          (fun () -> Fq_domain.Presburger.decide f)
      in
      Alcotest.(check (result bool string)) s plain guarded)
    [ "forall x. exists y. x < y"; "exists x. x + x = 7"; "exists x. 4 | x /\\ 6 | x";
      "forall x. exists y. y = x + 3 /\\ x < y" ]

let test_guarded_matches_unguarded_eval () =
  let f = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  let legacy =
    match Fq_eval.Enumerate.run ~domain:eq_domain ~state:family_state f with
    | Ok (Enumerate.Finite r) -> r
    | Ok (Enumerate.Out_of_fuel _) -> Alcotest.fail "legacy run should complete"
    | Error e -> Alcotest.fail e
  in
  let budgeted =
    let budget = Budget.make ~fuel:100_000 ~timeout_ms:60_000 () in
    match Query.eval_resilient ~budget ~domain:eq_domain ~state:family_state f with
    | { Query.verdict = Query.Complete { answer; _ }; _ } -> answer
    | { Query.verdict = Query.Partial _; _ } -> Alcotest.fail "budgeted run should complete"
    | { Query.verdict = Query.Failed { reason }; _ } -> Alcotest.fail reason
  in
  Alcotest.check rel "same answer with and without the governor" legacy budgeted

let test_enumeration_guarded_matches_legacy () =
  (* not safe-range, answer finite: x < y bounded by R's members {1} *)
  let f = parse "exists y. R(y) /\\ x < y" in
  let legacy =
    match Enumerate.run ~domain:nat_order ~state:nat_state f with
    | Ok (Enumerate.Finite r) -> r
    | Ok (Enumerate.Out_of_fuel _) -> Alcotest.fail "legacy enumeration should complete"
    | Error e -> Alcotest.fail e
  in
  let budgeted =
    match
      Enumerate.run_budgeted ~budget:(Budget.make ~fuel:1_000_000 ()) ~domain:nat_order
        ~state:nat_state f
    with
    | Ok (Enumerate.Complete r) -> r
    | Ok (Enumerate.Partial _) -> Alcotest.fail "budgeted enumeration should complete"
    | Error e -> Alcotest.fail e
  in
  Alcotest.check rel "same certified answer" legacy budgeted

(* -------------------------- degradation chain ----------------------- *)

let test_tiers () =
  (* safe-range: answered by the RANF compiler, no enumeration *)
  let f = parse "exists y. F(x, y)" in
  (match Query.eval_resilient ~domain:eq_domain ~state:family_state f with
  | { Query.verdict = Query.Complete { tier; _ }; attempts; _ } ->
    Alcotest.(check string) "compiled tier answers" "ranf-algebra" tier;
    Alcotest.(check int) "no earlier attempts" 0 (List.length attempts)
  | _ -> Alcotest.fail "safe-range query should complete");
  (* not safe-range: the chain records why compilation was skipped *)
  let g = parse "~R(x)" in
  match
    Query.eval_resilient ~budget:(Budget.make ~fuel:10 ()) ~domain:nat_order ~state:nat_state g
  with
  | { Query.verdict = Query.Partial _; attempts = [ (tier, why) ]; _ } ->
    Alcotest.(check string) "ranf tier was skipped" "ranf-algebra" tier;
    Alcotest.(check bool) "reason mentions safe-range" true
      (String.length why >= 14 && String.sub why 0 14 = "not safe-range")
  | _ -> Alcotest.fail "expected Partial with one recorded attempt"

let test_resume_token () =
  (* Two answers (cain, abel), so certification cannot succeed on the first
     candidate.  The whole governed scan costs ~40 ticks, so a 24-tick
     per-round budget is guaranteed to interrupt at least once — but it must
     stay above the cost of the dearest single decide (the QE engines tick
     the ambient budget), or a round could trip without advancing the
     scan. *)
  let f = parse "F(\"adam\", x)" in
  let expected =
    match Enumerate.run ~domain:eq_domain ~state:family_state f with
    | Ok (Enumerate.Finite r) -> r
    | _ -> Alcotest.fail "one-shot run should complete"
  in
  (* drip-feed the scan one candidate at a time, carrying the token *)
  let rec go seen found rounds =
    if rounds > 500 then Alcotest.fail "resume loop did not converge"
    else
      let budget = Budget.make ~fuel:24 () in
      match
        Enumerate.run_budgeted ~resume:(seen, found) ~budget ~domain:eq_domain
          ~state:family_state f
      with
      | Ok (Enumerate.Complete r) -> (r, rounds)
      | Ok (Enumerate.Partial { tuples; seen; _ }) -> go seen tuples (rounds + 1)
      | Error e -> Alcotest.fail e
  in
  let answer, rounds = go 0 (Relation.empty ~arity:1) 0 in
  Alcotest.check rel "resumed scan converges to the one-shot answer" expected answer;
  Alcotest.(check bool) "the budget actually interrupted the scan" true (rounds > 0)

let test_resume_via_query () =
  let f = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  (* The satisfiability and certification sentences for this query are
     large, so each governed decide is costlier than in the bare-token test
     above: the per-round budget must cover the dearest single decide, and
     the shared cache amortises the decides that repeat across rounds. *)
  let cache = Fq_domain.Decide_cache.create () in
  let rec go resume rounds =
    if rounds > 500 then Alcotest.fail "resume loop did not converge"
    else
      let budget = Budget.make ~fuel:256 () in
      let report =
        Query.eval_resilient ~budget ~cache ?resume ~domain:eq_domain ~state:family_state f
      in
      match report.Query.verdict with
      | Query.Complete { answer; _ } -> answer
      | Query.Partial { resume = token; _ } -> go (Some token) (rounds + 1)
      | Query.Failed { reason } -> Alcotest.fail reason
  in
  let seed = Some { Query.seen = 0; found = Relation.empty ~arity:1 } in
  let answer = go seed 0 in
  Alcotest.check rel "resumable front-end converges"
    (Relation.make ~arity:1 [ [ Value.str "adam" ] ])
    answer

(* Satellite of the fault harness (see test_fault.ml for the full chaos
   property): a scan killed mid-flight by an {e injected} deadline — not a
   real clock, so the kill point is exact and reproducible — hands back a
   resume token that finishes to the same relation as an undisturbed run. *)
let test_resume_after_injected_deadline () =
  let module Fault = Fq_core.Fault in
  let f = parse "F(\"adam\", x)" in
  let expected =
    match Enumerate.run ~domain:eq_domain ~state:family_state f with
    | Ok (Enumerate.Finite r) -> r
    | _ -> Alcotest.fail "clean run should complete"
  in
  let plan =
    Fault.plan
      ~rules:
        [ Fault.At
            { site = "enumerate.scan"; hits = [ 2 ];
              action = Fault.Trip Budget.Deadline_exceeded } ]
      ~seed:0 ()
  in
  let first =
    Fault.with_plan plan (fun () ->
        Enumerate.run_budgeted ~budget:(Budget.make ()) ~domain:eq_domain ~state:family_state f)
  in
  match first with
  | Ok (Enumerate.Partial { tuples; seen; reason = Budget.Deadline_exceeded }) ->
    Alcotest.(check int) "killed at the second candidate" 1 seen;
    (match
       Enumerate.run_budgeted ~resume:(seen, tuples) ~budget:(Budget.make ()) ~domain:eq_domain
         ~state:family_state f
     with
    | Ok (Enumerate.Complete r) -> Alcotest.check rel "resumed run equals the clean one" expected r
    | _ -> Alcotest.fail "resumed run should complete")
  | Ok (Enumerate.Partial { reason; _ }) ->
    Alcotest.failf "wrong trip: %s" (Budget.error_string reason)
  | _ -> Alcotest.fail "the injected deadline should interrupt the scan"

(* --------------------------- monotonicity --------------------------- *)

let tuples_of verdict =
  match verdict with
  | Query.Complete { answer; _ } -> answer
  | Query.Partial { tuples; _ } -> tuples
  | Query.Failed { reason } -> Alcotest.fail reason

let prop_monotone =
  QCheck.Test.make ~name:"larger budget never returns fewer tuples" ~count:40
    QCheck.(pair (int_range 1 60) (int_range 0 60))
    (fun (fuel, extra) ->
      let f = parse "~R(x)" in
      let answer fuel =
        let budget = Budget.make ~fuel () in
        tuples_of (Query.eval_resilient ~budget ~domain:presburger ~state:nat_state f).Query.verdict
      in
      let small = answer fuel and big = answer (fuel + extra) in
      List.for_all (fun t -> Relation.mem t big) (Relation.tuples small))

(* ------------------------ Cooper LCM overflow ----------------------- *)

(* Two 30-bit primes still multiply within a 63-bit int; three cannot.
   The seed crashed with [failwith] here — now it is a structured
   Unsupported failure, and small divisor systems keep working. *)
let test_cooper_lcm_overflow () =
  let f = parse "exists x. 1000000007 | x /\\ 998244353 | x /\\ 1000000009 | x" in
  (match Fq_domain.Presburger.decide f with
  | Ok _ -> Alcotest.fail "an over-range divisor LCM cannot be decided natively"
  | Error e -> (
    match Budget.failure_of_string e with
    | Some (Budget.Unsupported _) -> ()
    | _ -> Alcotest.failf "expected a structured Unsupported failure, got: %s" e));
  (* the same shape with small divisors is decided, with and without budget *)
  let g = parse "exists x. 4 | x /\\ 6 | x /\\ 9 | x" in
  Alcotest.(check (result bool string)) "small lcm decides" (Ok true)
    (Fq_domain.Presburger.decide g);
  Alcotest.(check (result bool string)) "small lcm decides under budget" (Ok true)
    (Budget.protect
       ~budget:(Budget.make ~fuel:1_000_000 ())
       (fun () -> Fq_domain.Presburger.decide g))

let test_cooper_fuel_trips () =
  (* a feasible but long expansion (δ = 9973) trips a small shared budget *)
  let f = parse "exists x. x > 2 /\\ 9973 | x + 1" in
  match Budget.protect ~budget:(Budget.of_fuel 100) (fun () -> Fq_domain.Presburger.decide f) with
  | Error "budget: fuel exhausted" -> ()
  | Ok _ -> Alcotest.fail "expected the expansion to trip the 100-tick budget"
  | Error e -> Alcotest.failf "expected a fuel trip, got: %s" e

(* --------------------------- TM governor ---------------------------- *)

let test_run_b_matches_run () =
  List.iter
    (fun (name, input, fuel) ->
      let e = List.find (fun e -> e.Fq_tm.Zoo.name = name) Fq_tm.Zoo.all in
      let m = e.Fq_tm.Zoo.machine in
      let legacy = Fq_tm.Run.run ~fuel m input in
      let governed = Fq_tm.Run.run_b ~budget:(Budget.of_fuel ~share:false fuel) m input in
      match (legacy, governed) with
      | Fq_tm.Run.Halted { steps; result }, Fq_tm.Run.Done { steps = s; result = r } ->
        Alcotest.(check int) (name ^ ": same steps") steps s;
        Alcotest.(check string) (name ^ ": same result") result r
      | Fq_tm.Run.Out_of_fuel, Fq_tm.Run.Stopped { steps; reason = Budget.Fuel_exhausted } ->
        Alcotest.(check int) (name ^ ": stopped at the fuel bound") fuel steps
      | _ -> Alcotest.failf "%s: legacy and governed runs disagree" name)
    [ ("scan_right", "111", 100); ("loop", "1", 57); ("parity", "11", 100) ]

let () =
  Alcotest.run "budget"
    [ ( "core",
        [ Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "charge" `Quick test_charge;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "oversize" `Quick test_oversize;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "error-string round trip" `Quick test_error_string_roundtrip;
          Alcotest.test_case "ambient scoping" `Quick test_ambient_scoping;
          Alcotest.test_case "protect" `Quick test_protect ] );
      ( "unsafe queries",
        [ Alcotest.test_case "always Partial, never hangs" `Quick test_unsafe_always_partial;
          Alcotest.test_case "deadline trips the scan" `Quick test_unsafe_deadline ] );
      ( "guarded = unguarded",
        [ Alcotest.test_case "decision procedures" `Quick test_guarded_matches_unguarded_decide;
          Alcotest.test_case "compiled evaluation" `Quick test_guarded_matches_unguarded_eval;
          Alcotest.test_case "enumeration" `Quick test_enumeration_guarded_matches_legacy ] );
      ( "degradation chain",
        [ Alcotest.test_case "tier reporting" `Quick test_tiers;
          Alcotest.test_case "resume token (enumerate)" `Quick test_resume_token;
          Alcotest.test_case "resume token (query front-end)" `Quick test_resume_via_query;
          Alcotest.test_case "resume after an injected deadline" `Quick
            test_resume_after_injected_deadline;
          QCheck_alcotest.to_alcotest prop_monotone ] );
      ( "cooper",
        [ Alcotest.test_case "LCM overflow is Unsupported" `Quick test_cooper_lcm_overflow;
          Alcotest.test_case "long expansion trips fuel" `Quick test_cooper_fuel_trips ] );
      ( "turing machines",
        [ Alcotest.test_case "run_b matches run" `Quick test_run_b_matches_run ] ) ]
