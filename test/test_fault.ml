(* Tests for the deterministic fault-injection harness (Fq_core.Fault)
   and the supervisor (Fq_core.Supervisor), capped by the chaos property:
   for every seed and schedule, a faulted supervised evaluation either
   agrees with the clean run, or returns a structured Partial whose
   resume token converges to the clean answer, or a structured crash —
   never an uncaught exception, a poisoned cache, or a hang. *)

module Budget = Fq_core.Budget
module Fault = Fq_core.Fault
module Supervisor = Fq_core.Supervisor
module Formula = Fq_logic.Formula
module Relation = Fq_db.Relation
module Value = Fq_db.Value
module State = Fq_db.State
module Schema = Fq_db.Schema
module Decide_cache = Fq_domain.Decide_cache
module Query = Fq_eval.Query

let parse = Fq_logic.Parser.formula_exn

(* No test in this binary may hang: a daemon thread kills the whole
   process if the suite outlives its deadline.  Normal completion exits
   first, taking the thread with it. *)
let _watchdog =
  Thread.create
    (fun () ->
      Thread.delay 240.;
      prerr_endline "test_fault: watchdog timeout — a chaos case hung";
      exit 125)
    ()

let no_sleep = { Supervisor.default_policy with sleep = (fun _ -> ()) }

(* ------------------------------ fault ------------------------------- *)

let test_at_rule () =
  let plan =
    Fault.plan
      ~rules:
        [ Fault.At { site = "s"; hits = [ 1; 3 ]; action = Fault.Crash "bang" } ]
      ~seed:0 ()
  in
  let fired =
    Fault.with_plan plan (fun () ->
        List.map
          (fun _ -> match Fault.hit "s" with () -> false | exception Fault.Injected _ -> true)
          [ 1; 2; 3; 4 ])
  in
  Alcotest.(check (list bool)) "fires exactly at hits 1 and 3" [ true; false; true; false ]
    fired;
  Alcotest.(check int) "two injections logged" 2 (Fault.injection_count plan);
  (* other sites are untouched by an At rule *)
  Fault.with_plan plan (fun () -> Fault.hit "t");
  Alcotest.(check int) "no injection at a foreign site" 2 (Fault.injection_count plan)

let test_disabled_is_noop () =
  Alcotest.(check bool) "no ambient plan" false (Fault.enabled ());
  (* a hit without a plan must be a plain no-op *)
  Fault.hit "decide";
  let plan = Fault.chaos ~permille:1000 ~seed:1 () in
  Fault.with_plan plan (fun () ->
      Alcotest.(check bool) "plan installed" true (Fault.enabled ()));
  Alcotest.(check bool) "plan restored" false (Fault.enabled ())

let test_trip_action_is_structured () =
  let plan =
    Fault.plan
      ~rules:
        [ Fault.At { site = "s"; hits = [ 1 ]; action = Fault.Trip Budget.Deadline_exceeded } ]
      ~seed:0 ()
  in
  match Fault.with_plan plan (fun () -> Fault.hit "s") with
  | () -> Alcotest.fail "trip did not fire"
  | exception Budget.Exhausted Budget.Deadline_exceeded -> ()

let workload plan =
  Fault.with_plan plan (fun () ->
      List.concat_map
        (fun site ->
          List.filter_map
            (fun _ ->
              match Fault.hit site with
              | () -> None
              | exception Budget.Exhausted f -> Some (site, "trip:" ^ Budget.error_string f)
              | exception Fault.Injected { reason; _ } -> Some (site, reason))
            [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
        [ "decide"; "enumerate.scan"; "qe.cooper"; "relalg.node" ])

let test_chaos_determinism () =
  let run seed = workload (Fault.chaos ~permille:300 ~seed ()) in
  Alcotest.(check (list (pair string string))) "same seed, same schedule" (run 7) (run 7);
  (* a 30%-per-hit schedule over 40 hits that never fires would be broken *)
  Alcotest.(check bool) "the schedule does fire" true (List.length (run 7) > 0);
  Alcotest.(check bool) "different seeds differ somewhere" true
    (List.exists (fun s -> run s <> run 7) [ 8; 9; 10; 11; 12 ])

let test_counters_persist_across_attempts () =
  (* the same plan re-installed sees hit numbers continue — this is what
     makes a Flaky fault recoverable by retry *)
  let plan =
    Fault.plan
      ~rules:[ Fault.At { site = "s"; hits = [ 1 ]; action = Fault.Flaky "flaky" } ]
      ~seed:0 ()
  in
  let attempt () =
    match Fault.with_plan plan (fun () -> Fault.hit "s") with
    | () -> true
    | exception Fault.Injected { transient = true; _ } -> false
  in
  Alcotest.(check bool) "first attempt faults" false (attempt ());
  Alcotest.(check bool) "second attempt passes the faulted hit" true (attempt ())

(* ---------------------------- supervisor ---------------------------- *)

let test_retry_transient () =
  let calls = ref 0 in
  let run =
    Supervisor.supervise ~policy:no_sleep ~name:"flaky" (fun attempt ->
        incr calls;
        if attempt < 3 then
          raise (Fault.Injected { site = "s"; hit = attempt; transient = true; reason = "flaky" })
        else 42)
  in
  (match run.Supervisor.outcome with
  | Supervisor.Value v -> Alcotest.(check int) "third attempt answers" 42 v
  | Supervisor.Crashed { reason; _ } -> Alcotest.failf "crashed: %s" reason);
  Alcotest.(check int) "three attempts" 3 run.Supervisor.attempts;
  Alcotest.(check int) "two retries" 2 run.Supervisor.retried;
  Alcotest.(check (list (float 0.0001))) "exponential backoff" [ 1.; 2. ]
    run.Supervisor.backoffs_ms;
  Alcotest.(check int) "the thunk really ran three times" 3 !calls

let test_no_retry_on_hard_crash () =
  let calls = ref 0 in
  let run =
    Supervisor.supervise ~policy:no_sleep ~name:"hard" (fun _ ->
        incr calls;
        failwith "boom")
  in
  (match run.Supervisor.outcome with
  | Supervisor.Crashed { transient; reason } ->
    Alcotest.(check bool) "not transient" false transient;
    Alcotest.(check bool) "reason names the exception" true
      (String.length reason > 0 && String.sub reason 0 7 = "Failure")
  | Supervisor.Value _ -> Alcotest.fail "expected a crash");
  Alcotest.(check int) "no retry of a non-transient crash" 1 !calls

let test_transient_exhausts_attempts () =
  let run =
    Supervisor.supervise ~policy:no_sleep ~name:"always-flaky" (fun a ->
        raise (Fault.Injected { site = "s"; hit = a; transient = true; reason = "flaky" }))
  in
  (match run.Supervisor.outcome with
  | Supervisor.Crashed { transient; reason } ->
    Alcotest.(check bool) "last crash is the transient one" true transient;
    Alcotest.(check string) "classified with its site" "fault at s: flaky" reason
  | Supervisor.Value _ -> Alcotest.fail "expected exhaustion");
  Alcotest.(check int) "all attempts used" 3 run.Supervisor.attempts

let test_retry_value () =
  let run =
    Supervisor.supervise ~policy:no_sleep
      ~retry_value:(fun v -> if v < 0 then Some "incomplete" else None)
      ~name:"partial" (fun attempt -> if attempt < 2 then -attempt else attempt)
  in
  (match run.Supervisor.outcome with
  | Supervisor.Value v -> Alcotest.(check int) "second attempt accepted" 2 v
  | Supervisor.Crashed { reason; _ } -> Alcotest.failf "crashed: %s" reason);
  Alcotest.(check int) "one value-driven retry" 1 run.Supervisor.retried;
  (* the last attempt's value is kept even if it still asks for a retry *)
  let run =
    Supervisor.supervise ~policy:no_sleep
      ~retry_value:(fun _ -> Some "never good enough")
      ~name:"insatiable" (fun attempt -> attempt)
  in
  match run.Supervisor.outcome with
  | Supervisor.Value v -> Alcotest.(check int) "final attempt's value" 3 v
  | Supervisor.Crashed { reason; _ } -> Alcotest.failf "crashed: %s" reason

let test_backoff_cap () =
  let policy =
    { no_sleep with Supervisor.max_attempts = 6; base_backoff_ms = 1.; backoff_factor = 3.;
      max_backoff_ms = 10. }
  in
  let run =
    Supervisor.supervise ~policy ~name:"capped" (fun a ->
        raise (Fault.Injected { site = "s"; hit = a; transient = true; reason = "flaky" }))
  in
  Alcotest.(check (list (float 0.0001))) "geometric, then capped" [ 1.; 3.; 9.; 10.; 10. ]
    run.Supervisor.backoffs_ms

let test_fair_share () =
  (* three attempts split 100 fuel without overshooting, and unspent fuel
     rolls forward *)
  let s1 = Supervisor.fair_share ~total:100 ~spent:0 ~attempt:1 ~max_attempts:3 in
  Alcotest.(check int) "first share" 34 s1;
  let s2 = Supervisor.fair_share ~total:100 ~spent:s1 ~attempt:2 ~max_attempts:3 in
  Alcotest.(check int) "second share" 33 s2;
  let s3 = Supervisor.fair_share ~total:100 ~spent:(s1 + s2) ~attempt:3 ~max_attempts:3 in
  Alcotest.(check int) "third share" 33 s3;
  Alcotest.(check bool) "never exceeds the total" true (s1 + s2 + s3 <= 100);
  (* a cheap first attempt leaves more for the second *)
  let s2' = Supervisor.fair_share ~total:100 ~spent:5 ~attempt:2 ~max_attempts:3 in
  Alcotest.(check int) "unspent fuel rolls forward" 48 s2';
  (* over-spent budgets still grant the minimum share *)
  Alcotest.(check int) "floor of one" 1
    (Supervisor.fair_share ~total:10 ~spent:50 ~attempt:3 ~max_attempts:3)

(* ------------------------------ breaker ----------------------------- *)

let test_breaker_lifecycle () =
  let now = ref 0. in
  let b = Supervisor.Breaker.create ~threshold:3 ~cooldown_ms:100. ~now_ms:(fun () -> !now) () in
  let check_state msg expected =
    Alcotest.(check bool) msg true (Supervisor.Breaker.state b = expected)
  in
  check_state "starts closed" Supervisor.Breaker.Closed;
  Supervisor.Breaker.failure b;
  Supervisor.Breaker.failure b;
  check_state "below threshold stays closed" Supervisor.Breaker.Closed;
  Supervisor.Breaker.success b;
  Supervisor.Breaker.failure b;
  Supervisor.Breaker.failure b;
  check_state "success resets the count" Supervisor.Breaker.Closed;
  Supervisor.Breaker.failure b;
  check_state "threshold consecutive failures trip" Supervisor.Breaker.Open;
  Alcotest.(check bool) "open short-circuits" false (Supervisor.Breaker.allow b);
  now := 99.;
  Alcotest.(check bool) "still cooling down" false (Supervisor.Breaker.allow b);
  now := 100.;
  Alcotest.(check bool) "cooldown elapsed: probe allowed" true (Supervisor.Breaker.allow b);
  check_state "probing is half-open" Supervisor.Breaker.Half_open;
  Supervisor.Breaker.failure b;
  check_state "failed probe reopens immediately" Supervisor.Breaker.Open;
  now := 250.;
  Alcotest.(check bool) "second probe allowed" true (Supervisor.Breaker.allow b);
  Supervisor.Breaker.success b;
  check_state "successful probe closes" Supervisor.Breaker.Closed;
  Alcotest.(check int) "two trips recorded" 2 (Supervisor.Breaker.trips b)

(* --------------------------- parallel map --------------------------- *)

let test_parallel_map () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) input in
  List.iter
    (fun jobs ->
      let got = Supervisor.parallel_map ~jobs (fun i -> i * i) input in
      Alcotest.(check (array int)) (Printf.sprintf "jobs=%d preserves order" jobs) expected got)
    [ 1; 2; 4; 7 ];
  Alcotest.(check (array int)) "more jobs than items" [| 0; 2 |]
    (Supervisor.parallel_map ~jobs:16 (fun i -> 2 * i) [| 0; 1 |]);
  match Supervisor.parallel_map ~jobs:4 (fun i -> if i = 13 then failwith "boom" else i) input with
  | _ -> Alcotest.fail "a worker exception must propagate"
  | exception Failure msg -> Alcotest.(check string) "the worker's exception" "boom" msg

(* Worker domains must not share ambient state: each gets its own budget
   slot and its own tick clock. *)
let test_worker_isolation () =
  let results =
    Supervisor.parallel_map ~jobs:4
      (fun fuel ->
        let b = Budget.make ~fuel () in
        let r =
          Budget.guard b (fun () ->
              for _ = 1 to 1_000 do
                Budget.tick_ambient ()
              done)
        in
        (r = Error Budget.Fuel_exhausted, Budget.spent b))
      [| 10; 20; 10_000; 30 |]
  in
  Alcotest.(check bool) "small budgets tripped" true
    (fst results.(0) && fst results.(1) && fst results.(3));
  Alcotest.(check bool) "large budget did not" false (fst results.(2));
  Alcotest.(check int) "each domain charged only its own budget" 1_000 (snd results.(2))

(* -------------------- shared cache under parallelism ----------------- *)

let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)
let nat_order : Fq_domain.Domain.t = (module Fq_domain.Nat_order)
let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)

let test_cache_parallel_stress () =
  let sentences =
    [ (eq_domain, "forall x. exists y. ~(x = y)");
      (eq_domain, "exists x y. ~(x = y)");
      (nat_order, "forall x. exists y. x < y");
      (nat_order, "exists x. forall y. ~(y < x)");
      (presburger, "forall x. exists y. y = x + 1");
      (presburger, "exists x. x + x = 7");
      (presburger, "exists x. 4 | x /\\ 6 | x") ]
    |> List.map (fun (d, s) -> (d, parse s))
  in
  let expected = List.map (fun (d, f) -> Fq_domain.Decide_cache.(decide (create ()) d f)) sentences in
  let shared = Decide_cache.create () in
  let jobs =
    Array.init 280 (fun i -> List.nth sentences (i mod List.length sentences))
  in
  let results =
    Supervisor.parallel_map ~jobs:4 (fun (d, f) -> Decide_cache.decide shared d f) jobs
  in
  Array.iteri
    (fun i r ->
      let want = List.nth expected (i mod List.length expected) in
      Alcotest.(check (result bool string)) (Printf.sprintf "job %d" i) want r)
    results;
  let stats = Decide_cache.stats shared in
  Alcotest.(check int) "one entry per distinct sentence" (List.length sentences)
    stats.Decide_cache.entries;
  Alcotest.(check int) "every lookup accounted for" 280
    (stats.Decide_cache.hits + stats.Decide_cache.misses)

(* A budget trip inside a cached decide must not poison the table. *)
let test_cache_never_poisoned_by_trips () =
  let cache = Decide_cache.create () in
  let f = parse "exists x. x > 2 /\\ 9973 | x + 1" in
  let starved =
    Budget.protect ~budget:(Budget.of_fuel 100) (fun () ->
        Decide_cache.decide cache presburger f)
  in
  Alcotest.(check (result bool string)) "starved run trips" (Error "budget: fuel exhausted")
    starved;
  let funded = Decide_cache.decide cache presburger f in
  Alcotest.(check (result bool string)) "a funded retry is not served the stale trip"
    (Ok true) funded;
  (* fragment errors, by contrast, are eternal and stay cached *)
  let g = parse "exists x. 1000000007 | x /\\ 998244353 | x /\\ 1000000009 | x" in
  let e1 = Decide_cache.decide cache presburger g in
  let before = (Decide_cache.stats cache).Decide_cache.misses in
  let e2 = Decide_cache.decide cache presburger g in
  Alcotest.(check (result bool string)) "unsupported is stable" e1 e2;
  Alcotest.(check int) "and served from the cache" before
    (Decide_cache.stats cache).Decide_cache.misses

(* --------------------------- chaos property -------------------------- *)

let nat_state =
  State.make
    ~schema:(Schema.make [ ("R", 1) ])
    [ ("R", Relation.make ~arity:1 [ [ Value.int 1 ] ]) ]

let family_state =
  let s = Value.str in
  State.make
    ~schema:(Schema.make [ ("F", 2) ])
    [ ( "F",
        Relation.make ~arity:2
          [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ] ] ) ]

(* Scenarios with finite, certifiable clean answers, chosen to cross every
   injection site: the ranf/adom compiled tiers (relalg.node), the §1.1
   scan (decide, decide_cache.lookup, the enumerate sites), and the QE
   loops of three domains. *)
let scenarios =
  [ (eq_domain, family_state, "F(\"adam\", x)");
    (eq_domain, family_state, "exists y z. ~(y = z) /\\ F(x, y) /\\ F(x, z)");
    (eq_domain, family_state, "exists y. F(x, y)");
    (nat_order, nat_state, "exists y. R(y) /\\ x < y");
    (presburger, nat_state, "exists y. R(y) /\\ x + x = y + 1") ]
  |> List.map (fun (d, st, s) -> (d, st, parse s))

let clean_answers =
  lazy
    (List.map
       (fun (domain, state, f) ->
         let budget = Budget.make ~fuel:1_000_000 () in
         match (Query.eval_resilient ~budget ~domain ~state f).Query.verdict with
         | Query.Complete { answer; _ } -> answer
         | Query.Partial _ -> Alcotest.fail "chaos scenario has no clean complete answer"
         | Query.Failed { reason } -> Alcotest.fail reason)
       scenarios)

let total_fuel = 30_000

(* The batch runner's shape in miniature: supervised attempts on fair
   fuel shares, resume token carried across attempts, the plan's hit
   counters persisting so flaky faults are survivable. *)
let chaos_run ~plan ~cache ~domain ~state f =
  let resume = ref None in
  let spent = ref 0 in
  let attempt k =
    let fuel =
      Supervisor.fair_share ~total:total_fuel ~spent:!spent ~attempt:k ~max_attempts:3
    in
    let budget = Budget.make ~fuel () in
    let rep =
      Fault.with_plan plan (fun () ->
          Query.eval_resilient ~budget ~cache ?resume:!resume ~domain ~state f)
    in
    spent := !spent + rep.Query.usage.Budget.ticks;
    (match rep.Query.verdict with
    | Query.Partial { resume = r; _ } -> resume := Some r
    | _ -> ());
    rep
  in
  Supervisor.supervise ~policy:no_sleep
    ~retry_value:(fun rep ->
      match rep.Query.verdict with
      | Query.Partial { reason = Budget.Fuel_exhausted | Budget.Deadline_exceeded; _ } ->
        Some "partial under budget"
      | _ -> None)
    ~name:"chaos" attempt

let subset small big =
  List.for_all (fun t -> Relation.mem t big) (Relation.tuples small)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let prop_chaos_containment =
  QCheck.Test.make ~name:"faulted runs: clean answer, resumable partial, or structured crash"
    ~count:250
    QCheck.(
      triple
        (int_range 0 (List.length scenarios - 1))
        (int_range 0 9_999) (int_range 0 150))
    (fun (i, seed, permille) ->
      let domain, state, f = List.nth scenarios i in
      let clean = List.nth (Lazy.force clean_answers) i in
      let plan = Fault.chaos ~permille ~seed () in
      let cache = Decide_cache.create () in
      let run = chaos_run ~plan ~cache ~domain ~state f in
      let contained =
        match run.Supervisor.outcome with
        | Supervisor.Value { Query.verdict = Query.Complete { answer; _ }; _ } ->
          (* injections only ever raise — they can never flip a verdict,
             so a faulted Complete must be the clean answer *)
          Relation.equal answer clean
        | Supervisor.Value { Query.verdict = Query.Partial { tuples; resume; _ }; _ } ->
          (* a partial is a correct prefix, and its token must finish the
             job once the faults stop *)
          subset tuples clean
          &&
          let budget = Budget.make ~fuel:1_000_000 () in
          (match
             (Query.eval_resilient ~budget ~cache ~resume ~domain ~state f).Query.verdict
           with
          | Query.Complete { answer; _ } -> Relation.equal answer clean
          | _ -> false)
        | Supervisor.Value { Query.verdict = Query.Failed { reason }; _ } ->
          QCheck.Test.fail_reportf "faulted run degenerated to Failed: %s" reason
        | Supervisor.Crashed { reason; _ } ->
          (* only the injector crashes these scenarios, and the supervisor
             must report it structurally *)
          has_prefix "fault at " reason
      in
      (* whatever happened, the shared cache must not be poisoned: a
         clean run over the same cache still gets the clean answer *)
      let budget = Budget.make ~fuel:1_000_000 () in
      let after =
        match (Query.eval_resilient ~budget ~cache ~domain ~state f).Query.verdict with
        | Query.Complete { answer; _ } -> Relation.equal answer clean
        | _ -> false
      in
      contained && after)

(* The schedule really is a pure function of the seed: the same chaos
   case re-run from scratch performs the identical injection log. *)
let prop_chaos_deterministic =
  QCheck.Test.make ~name:"identical seeds replay identical injections" ~count:60
    QCheck.(pair (int_range 0 (List.length scenarios - 1)) (int_range 0 9_999))
    (fun (i, seed) ->
      let domain, state, f = List.nth scenarios i in
      let once () =
        let plan = Fault.chaos ~permille:60 ~seed () in
        let cache = Decide_cache.create () in
        let _run = chaos_run ~plan ~cache ~domain ~state f in
        Fault.injections plan
      in
      once () = once ())

let qcheck_rand =
  (* the CI chaos matrix drives the generator seed explicitly *)
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string s with _ -> 42)
    | None -> 42
  in
  Random.State.make [| seed |]

let chaos_case name test =
  Alcotest.test_case name `Slow (fun () ->
      QCheck.Test.check_exn ~rand:qcheck_rand test)

let () =
  Alcotest.run "fault"
    [ ( "fault",
        [ Alcotest.test_case "At rule" `Quick test_at_rule;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "Trip raises the governor failure" `Quick
            test_trip_action_is_structured;
          Alcotest.test_case "chaos schedule is seed-deterministic" `Quick
            test_chaos_determinism;
          Alcotest.test_case "hit counters persist across attempts" `Quick
            test_counters_persist_across_attempts ] );
      ( "supervisor",
        [ Alcotest.test_case "transient crashes retry" `Quick test_retry_transient;
          Alcotest.test_case "hard crashes do not" `Quick test_no_retry_on_hard_crash;
          Alcotest.test_case "attempts exhaust" `Quick test_transient_exhausts_attempts;
          Alcotest.test_case "values can ask for retries" `Quick test_retry_value;
          Alcotest.test_case "backoff is capped" `Quick test_backoff_cap;
          Alcotest.test_case "fair fuel shares" `Quick test_fair_share ] );
      ( "breaker",
        [ Alcotest.test_case "closed/open/half-open lifecycle" `Quick test_breaker_lifecycle ] );
      ( "parallel",
        [ Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "worker ambient isolation" `Quick test_worker_isolation;
          Alcotest.test_case "shared decide cache stress" `Quick test_cache_parallel_stress;
          Alcotest.test_case "trips never poison the cache" `Quick
            test_cache_never_poisoned_by_trips ] );
      ( "chaos",
        [ chaos_case "containment" prop_chaos_containment;
          chaos_case "determinism" prop_chaos_deterministic ] ) ]
