(* The observability plane's core invariants: the log-bucketed Aggregate
   histogram (bucket ladder, conservation, quantile error bound, merge),
   the versioned Prometheus text exposition (grammar pins, escaping, a
   parse round-trip), the Telemetry histogram key-space LRU, and trace-id
   stamping. *)

module Aggregate = Fq_core.Aggregate
module Telemetry = Fq_core.Telemetry

(* ------------------------- bucket ladder --------------------------- *)

let test_bucket_ladder () =
  (* the ladder is anchored: bucket 62's upper bound is exactly 1.0 *)
  Alcotest.(check (float 1e-9)) "le(62) = 1" 1.0 (Aggregate.bucket_le 62);
  (* consecutive bounds differ by 2^(1/4) *)
  Alcotest.(check (float 1e-9)) "quarter-octave ratio" (Float.pow 2. 0.25)
    (Aggregate.bucket_le 63 /. Aggregate.bucket_le 62);
  (* the last bucket is the +Inf catch-all *)
  Alcotest.(check bool) "last bucket +Inf" true
    (Aggregate.bucket_le (Aggregate.bucket_count - 1) = infinity);
  (* degenerate inputs land somewhere valid *)
  List.iter
    (fun v ->
      let i = Aggregate.bucket_index v in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < Aggregate.bucket_count))
    [ 0.; -1.; nan; infinity; neg_infinity; 1e-30; 1e30 ];
  Alcotest.(check int) "nonpositive to bucket 0" 0 (Aggregate.bucket_index (-5.));
  Alcotest.(check int) "infinity to the catch-all" (Aggregate.bucket_count - 1)
    (Aggregate.bucket_index infinity)

let prop_bucket_bounds =
  QCheck.Test.make ~name:"bucket_index inverts bucket_le within one step" ~count:500
    QCheck.(float_bound_exclusive 1e9)
    (fun v ->
      let v = Float.abs v +. 1e-12 in
      let i = Aggregate.bucket_index v in
      (* v is within the chosen bucket: above the previous bound, at or
         below its own *)
      v <= Aggregate.bucket_le i && (i = 0 || v > Aggregate.bucket_le (i - 1)))

(* ------------------ histogram conservation + error ------------------ *)

let prop_hist_conservation =
  QCheck.Test.make ~name:"observations are conserved across the buckets" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 1e6))
    (fun vs ->
      let vs = List.map Float.abs vs in
      let h = Aggregate.create () in
      List.iter (Aggregate.observe h) vs;
      let bucket_total = Array.fold_left ( + ) 0 h.Aggregate.buckets in
      bucket_total = List.length vs
      && Aggregate.count h = List.length vs
      && Float.abs (Aggregate.sum h -. List.fold_left ( +. ) 0. vs) < 1e-6)

let prop_hist_quantile_bound =
  (* the quantile estimate is exact up to one bucket width: at most one
     quarter-octave (~19%) above some true observation, and clamped to
     the observed min/max *)
  QCheck.Test.make ~name:"quantile lands within one bucket width" ~count:200
    QCheck.(pair (float_bound_exclusive 0.999) (list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1e6)))
    (fun (q, vs) ->
      let q = Float.abs q in
      let vs = List.map (fun v -> Float.abs v +. 1e-9) vs in
      let h = Aggregate.create () in
      List.iter (Aggregate.observe h) vs;
      let est = Aggregate.quantile h q in
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      (* clamped to the observed range... *)
      est >= lo && est <= hi
      (* ...and within one bucket ratio of some real observation *)
      && List.exists (fun v -> est <= v *. Float.pow 2. 0.25 +. 1e-9 && est >= v /. (Float.pow 2. 0.25) -. 1e-9) vs
      || (* or exactly an observed extreme after clamping *)
      est = lo || est = hi)

let prop_hist_merge =
  QCheck.Test.make ~name:"merge is bucket-wise addition" ~count:200
    QCheck.(pair (list (float_bound_exclusive 1e6)) (list (float_bound_exclusive 1e6)))
    (fun (xs, ys) ->
      let xs = List.map Float.abs xs and ys = List.map Float.abs ys in
      let a = Aggregate.create () and b = Aggregate.create () and all = Aggregate.create () in
      List.iter (Aggregate.observe a) xs;
      List.iter (Aggregate.observe b) ys;
      List.iter (Aggregate.observe all) (xs @ ys);
      Aggregate.merge ~into:a b;
      a.Aggregate.buckets = all.Aggregate.buckets
      && Aggregate.count a = Aggregate.count all
      && Float.abs (Aggregate.sum a -. Aggregate.sum all)
         <= 1e-9 *. (1. +. Float.abs (Aggregate.sum all)))

(* --------------------- exposition grammar pins ---------------------- *)

let sample_exposition () =
  let h = Aggregate.create () in
  List.iter (Aggregate.observe h) [ 0.5; 0.5; 3.0 ];
  Aggregate.exposition
    [ Aggregate.counter_family ~name:"fq_requests_total" ~help:"Requests."
        [ ([ ("op", "eval") ], 7); ([ ("op", "ping") ], 2) ];
      Aggregate.gauge_family ~name:"fq_inflight" ~help:"In flight." [ ([], 3.) ];
      Aggregate.histogram_family ~name:"fq_latency_ms" ~help:"Latency."
        [ ([ ("domain", "equality") ], h) ] ]

let test_exposition_grammar () =
  let text = sample_exposition () in
  let lines = String.split_on_char '\n' text in
  (* versioned header first *)
  Alcotest.(check string) "version header"
    (Printf.sprintf "# fq-metrics-exposition %d" Aggregate.exposition_version)
    (List.hd lines);
  (* families sorted by name, each with HELP and TYPE *)
  let is_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let help_lines = List.filter (is_prefix "# HELP ") lines in
  Alcotest.(check (list string)) "families sorted by name"
    [ "# HELP fq_inflight In flight.";
      "# HELP fq_latency_ms Latency.";
      "# HELP fq_requests_total Requests." ]
    help_lines;
  Alcotest.(check bool) "counter TYPE line" true
    (List.mem "# TYPE fq_requests_total counter" lines);
  Alcotest.(check bool) "histogram TYPE line" true
    (List.mem "# TYPE fq_latency_ms histogram" lines);
  (* labeled samples render sorted labels and escaped values *)
  Alcotest.(check bool) "counter sample" true
    (List.mem "fq_requests_total{op=\"eval\"} 7" lines);
  (* the histogram renders cumulative buckets ending in +Inf, then sum/count *)
  Alcotest.(check bool) "+Inf bucket" true
    (List.mem "fq_latency_ms_bucket{domain=\"equality\",le=\"+Inf\"} 3" lines);
  Alcotest.(check bool) "histogram count" true
    (List.mem "fq_latency_ms_count{domain=\"equality\"} 3" lines);
  (* only buckets that advance the cumulative count are rendered: three
     observations need at most 3 advancing buckets + the +Inf terminal *)
  let bucket_lines = List.filter (is_prefix "fq_latency_ms_bucket") lines in
  Alcotest.(check bool) "sparse buckets" true (List.length bucket_lines <= 3)

let test_label_escaping () =
  Alcotest.(check string) "backslash, quote, newline escaped" "a\\\\b\\\"c\\nd"
    (Aggregate.escape_label_value "a\\b\"c\nd");
  let text =
    Aggregate.exposition
      [ Aggregate.counter_family ~name:"fq_x_total" ~help:"X."
          [ ([ ("q", "say \"hi\"\n") ], 1) ] ]
  in
  match Aggregate.parse_exposition text with
  | [ ("fq_x_total", [ ("q", v) ], 1.) ] ->
    Alcotest.(check string) "escaped label value round-trips" "say \"hi\"\n" v
  | _ -> Alcotest.fail "unexpected parse of the escaped exposition"

let test_exposition_roundtrip () =
  let text = sample_exposition () in
  let samples = Aggregate.parse_exposition text in
  let find name labels =
    List.find_map
      (fun (m, ls, v) -> if m = name && ls = labels then Some v else None)
      samples
  in
  Alcotest.(check (option (float 1e-9))) "counter value" (Some 7.)
    (find "fq_requests_total" [ ("op", "eval") ]);
  Alcotest.(check (option (float 1e-9))) "gauge value" (Some 3.) (find "fq_inflight" []);
  Alcotest.(check (option (float 1e-9))) "histogram count" (Some 3.)
    (find "fq_latency_ms_count" [ ("domain", "equality") ]);
  Alcotest.(check (option (float 1e-9))) "histogram sum" (Some 4.)
    (find "fq_latency_ms_sum" [ ("domain", "equality") ]);
  (* the +Inf bucket carries the full cumulative count *)
  Alcotest.(check (option (float 1e-9))) "+Inf cumulative" (Some 3.)
    (find "fq_latency_ms_bucket" [ ("domain", "equality"); ("le", "+Inf") ])

let test_exposition_version_check () =
  (match Aggregate.parse_exposition "fq_x_total 1\n" with
  | _ -> Alcotest.fail "parse accepted an exposition with no version header"
  | exception Failure _ -> ());
  match Aggregate.parse_exposition "# fq-metrics-exposition 999\nfq_x_total 1\n" with
  | _ -> Alcotest.fail "parse accepted a future exposition version"
  | exception Failure _ -> ()

(* ------------------- telemetry key-space LRU ------------------------ *)

let test_telemetry_histo_lru () =
  let (), report =
    Telemetry.record ~max_histos:4 (fun () ->
        (* 8 distinct keys at cap 4: the 4 coldest evict *)
        for i = 1 to 8 do
          Telemetry.observe (Printf.sprintf "key.%d" i) (float_of_int i)
        done;
        (* touching key.5 makes key.6 the LRU victim of the next miss *)
        Telemetry.observe "key.5" 50.;
        Telemetry.observe "key.9" 9.)
  in
  let names = List.map fst report.Telemetry.histograms in
  Alcotest.(check int) "key space stays at the cap" 4 (List.length names);
  Alcotest.(check bool) "recently touched key survives" true (List.mem "key.5" names);
  Alcotest.(check bool) "LRU victim evicted" false (List.mem "key.6" names);
  Alcotest.(check int) "evictions tallied" 5 report.Telemetry.evicted_histograms

let test_telemetry_histo_unbounded () =
  let (), report =
    Telemetry.record ~max_histos:0 (fun () ->
        for i = 1 to 64 do
          Telemetry.observe (Printf.sprintf "key.%d" i) 1.
        done)
  in
  Alcotest.(check int) "cap <= 0 means unbounded" 64
    (List.length report.Telemetry.histograms);
  Alcotest.(check int) "no evictions" 0 report.Telemetry.evicted_histograms

let test_trace_id_stamping () =
  (* no collector: stamping is a no-op, reading yields None *)
  Telemetry.set_trace_id "lost";
  Alcotest.(check (option string)) "no ambient collector" None (Telemetry.trace_id ());
  let (), report =
    Telemetry.record (fun () ->
        Alcotest.(check (option string)) "unstamped" None (Telemetry.trace_id ());
        Telemetry.set_trace_id "first";
        Telemetry.set_trace_id "req-42";
        Alcotest.(check (option string)) "last write wins" (Some "req-42")
          (Telemetry.trace_id ()))
  in
  Alcotest.(check (option string)) "stamp surfaces in the report" (Some "req-42")
    report.Telemetry.trace_id;
  (* the no-op sink discards the stamp *)
  Telemetry.with_noop (fun () ->
      Telemetry.set_trace_id "dropped";
      Alcotest.(check (option string)) "no-op sink keeps nothing" None
        (Telemetry.trace_id ()))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "observability"
    [ ( "aggregate",
        [ Alcotest.test_case "bucket ladder anchors" `Quick test_bucket_ladder;
          qt prop_bucket_bounds;
          qt prop_hist_conservation;
          qt prop_hist_quantile_bound;
          qt prop_hist_merge ] );
      ( "exposition",
        [ Alcotest.test_case "versioned grammar pins" `Quick test_exposition_grammar;
          Alcotest.test_case "label escaping round-trips" `Quick test_label_escaping;
          Alcotest.test_case "parse inverts render" `Quick test_exposition_roundtrip;
          Alcotest.test_case "version header enforced" `Quick
            test_exposition_version_check ] );
      ( "telemetry",
        [ Alcotest.test_case "histogram key-space LRU" `Quick test_telemetry_histo_lru;
          Alcotest.test_case "cap <= 0 is unbounded" `Quick test_telemetry_histo_unbounded;
          Alcotest.test_case "trace id stamping" `Quick test_trace_id_stamping ] ) ]
