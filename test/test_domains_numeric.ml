(* Tests for the numeric domains: Cooper's algorithm over ℤ, Presburger
   over ℕ, and the dedicated procedures of the paper's Section 2 — the
   N_< test-point elimination (§2.1) and the N' successor elimination
   (§2.2) — each cross-checked against Cooper. *)

open Fq_domain

let parse = Fq_logic.Parser.formula_exn

let check_decide name decide s expected =
  match decide (parse s) with
  | Ok b -> Alcotest.(check bool) (Printf.sprintf "%s: %s" name s) expected b
  | Error e -> Alcotest.failf "%s: %s: %s" name s e

let check_error name decide s =
  match decide (parse s) with
  | Ok b -> Alcotest.failf "%s: %s should error, got %b" name s b
  | Error _ -> ()

(* ------------------------------ Cooper ----------------------------- *)

let test_cooper_sentences () =
  let c = check_decide "cooper" Cooper.decide in
  c "forall x. exists y. y < x" true;
  c "exists x. 0 < x /\\ x < 1" false;
  c "forall x. 2 | x \\/ 2 | x + 1" true;
  c "exists x. x + x = 7" false;
  c "exists x. x + x = 8" true;
  c "forall x y. exists z. x + y = z" true;
  c "exists x. forall y. x <= y" false;
  c "forall x. x < x + 1" true;
  c "forall x y. x < y -> exists z. x < z /\\ z < y + 1" true;
  c "forall x y. x < y -> exists z. x < z /\\ z < y" false (* discreteness *);
  c "exists x. 3 | x /\\ 5 | x /\\ 0 < x /\\ x < 15" false;
  c "exists x. 3 | x /\\ 5 | x /\\ 0 < x /\\ x < 16" true;
  c "forall x. exists y. x = 2 * y \\/ x = 2 * y + 1" true;
  c "forall x. exists y. x = 3 * y \\/ x = 3 * y + 1 \\/ x = 3 * y + 2" true;
  c "forall x. exists y. x = 2 * y" false;
  c "forall x y z. x < y /\\ y < z -> x < z" true;
  c "exists x. x = -5 /\\ x < 0" true;
  c "forall x. 1 | x" true;
  c "exists x. 0 = 0 /\\ ~(x = x)" false

let test_cooper_errors () =
  check_error "cooper" Cooper.decide "exists x y. x * y = 6" (* nonlinear *);
  check_error "cooper" Cooper.decide "exists x. F(x)" (* db predicate *);
  check_error "cooper" Cooper.decide "x < 1" (* free variable *)

(* ---------------------------- Presburger --------------------------- *)

let test_presburger_sentences () =
  let c = check_decide "presburger" Presburger.decide in
  c "exists x. forall y. x <= y" true (* zero *);
  c "forall x. exists y. y < x" false (* no negatives *);
  c "forall x. exists y. x < y" true;
  c "forall x. 0 <= x" true;
  c "exists x. x < 0" false;
  c "forall x. 2 | x \\/ 2 | s(x)" true;
  c "forall x. exists y. x = y + y \\/ x = y + y + 1" true;
  c "exists x. x + x = 7" false;
  c "forall x y. x + y = y + x" true;
  c "forall x. x <= 5 \\/ 5 <= x" true;
  c "exists x. 5 < x /\\ x < 7" true (* x = 6 *);
  c "exists x. 5 < x /\\ x < 6" false;
  c "forall x. exists y. y + y <= x /\\ x <= y + y + 1" true;
  (* the Fact 2.1 element: a least element above any given one *)
  c "forall z. exists x. z < x /\\ forall y. z < y -> x <= y" true

let test_presburger_with_free () =
  let b = Fq_numeric.Bigint.of_int in
  let f = parse "exists y. x = y + y" in
  (match Presburger.decide_with_free ~env:[ ("x", b 4) ] f with
  | Ok v -> Alcotest.(check bool) "4 is even" true v
  | Error e -> Alcotest.fail e);
  match Presburger.decide_with_free ~env:[ ("x", b 7) ] f with
  | Ok v -> Alcotest.(check bool) "7 is odd" false v
  | Error e -> Alcotest.fail e

(* ------------------------------- N_< ------------------------------- *)

let test_nat_order_sentences () =
  let c = check_decide "nat_order" Nat_order.decide in
  c "exists x. forall y. x <= y" true;
  c "forall x. exists y. x < y" true;
  c "forall x. exists y. y < x" false;
  c "exists x. 5 < x /\\ x < 7" true;
  c "exists x. 5 < x /\\ x < 6" false;
  c "forall x y. x < y \\/ x = y \\/ y < x" true;
  c "forall x y z. x < y /\\ y < z -> x < z" true;
  c "exists x y z. x < y /\\ y < z /\\ z < 2" false (* needs 3 values below 2 *);
  c "exists x y z. x < y /\\ y < z /\\ z < 3" true (* 0 < 1 < 2 *);
  c "forall x. 0 <= x" true;
  c "forall x. exists y. x < y /\\ forall z. x < z -> y <= z" true;
  (* disequality pressure on the test-point set *)
  c "exists x. x != 0 /\\ x != 1 /\\ x != 2 /\\ x < 4" true (* x = 3 *);
  c "exists x. x != 0 /\\ x != 1 /\\ x != 2 /\\ x < 3" false;
  c "forall y. exists x. y < x /\\ x < y + 2" true (* x = y+1 *);
  c "forall y. exists x. y < x /\\ x < y + 1" false

let test_nat_order_vs_presburger () =
  (* the dedicated test-point QE agrees with Cooper via relativization *)
  let sentences =
    [ "forall x. exists y. x < y";
      "exists x. forall y. x <= y";
      "forall x y. x < y -> exists z. x < z /\\ z <= y";
      "forall x y. x < y -> exists z. x < z /\\ z < y";
      "exists x y. x < y /\\ y < x";
      "forall x. x = 0 \\/ exists y. y < x";
      "exists x. x != 0 /\\ forall y. y != 0 -> x <= y";
      "forall x. exists y z. x < y /\\ y < z";
      "exists x y. x != y /\\ x < 2 /\\ y < 2";
      "exists x y z. x != y /\\ y != z /\\ x != z /\\ z < 2 /\\ x < 2 /\\ y < 2" ]
  in
  List.iter
    (fun s ->
      let f = parse s in
      match (Nat_order.decide f, Presburger.decide f) with
      | Ok a, Ok b -> Alcotest.(check bool) s b a
      | Error e, _ -> Alcotest.failf "nat_order %s: %s" s e
      | _, Error e -> Alcotest.failf "presburger %s: %s" s e)
    sentences

(* random <-sentences, cross-checked against Presburger *)
let gen_order_sentence : Fq_logic.Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let module F = Fq_logic.Formula in
  let module T = Fq_logic.Term in
  let vars = [ "x"; "y"; "z" ] in
  let term =
    oneof
      [ map (fun v -> T.Var v) (oneofl vars);
        map (fun n -> T.Const (string_of_int n)) (int_bound 3) ]
  in
  let atom =
    oneof
      [ map2 (fun t u -> F.Atom ("<", [ t; u ])) term term;
        map2 (fun t u -> F.Eq (t, u)) term term ]
  in
  let formula =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [ atom;
              map (fun f -> F.Not f) (self (n - 1));
              map2 (fun f g -> F.And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> F.Or (f, g)) (self (n / 2)) (self (n / 2)) ])
      4
  in
  map
    (fun f ->
      (* close with alternating quantifiers *)
      let free = F.free_vars f in
      List.fold_left
        (fun acc (i, v) -> if i mod 2 = 0 then F.Exists (v, acc) else F.Forall (v, acc))
        f
        (List.mapi (fun i v -> (i, v)) free))
    formula

(* QE is worst-case exponential, and the generators occasionally produce a
   sentence that takes minutes to eliminate.  Running each decide under a
   generous budget turns that pathological tail into a discarded test case
   instead of a hung suite. *)
let budgeted_decide decide f =
  let budget = Fq_core.Budget.make ~fuel:200_000 () in
  match Fq_core.Budget.guard budget (fun () -> decide f) with
  | Error _ -> None (* tripped before the engine's own boundary rendered it *)
  | Ok (Error e) when Fq_core.Budget.failure_of_string e <> None -> None
  | Ok r -> Some r

let prop_order_matches_presburger =
  QCheck.Test.make ~name:"random N_< sentences: dedicated QE = Cooper" ~count:200
    (QCheck.make ~print:Fq_logic.Formula.to_string gen_order_sentence)
    (fun f ->
      match (budgeted_decide Nat_order.decide f, budgeted_decide Presburger.decide f) with
      | None, _ | _, None -> true (* budget tripped: skip this case *)
      | Some (Ok a), Some (Ok b) -> a = b
      | Some (Error e), _ | _, Some (Error e) -> QCheck.Test.fail_reportf "error: %s" e)

(* ------------------------------- N' -------------------------------- *)

let test_nat_succ_sentences () =
  let c = check_decide "nat_succ" Nat_succ.decide in
  c "forall x. exists y. y = x'" true;
  c "exists y. forall x. x' != y" true (* 0 is not a successor *);
  c "forall y. exists x. x' = y" false (* 0 again *);
  c "exists x. x'' = x'" false (* successor injective *);
  c "forall x y. x' = y' -> x = y" true;
  c "exists x. x = x'" false;
  c "exists x y. x != y" true;
  c "forall x. x = 0 \\/ exists y. y' = x" true;
  c "exists x. x' = 5 /\\ x = 4" true;
  c "exists x. x' = 0" false;
  c "exists x. x'' = 1" false (* would be -1 *);
  c "exists x. x'' = 2 /\\ x = 0" true;
  c "forall x. x != 3 -> exists y. y != x /\\ y = 3" true

let test_nat_succ_vs_presburger () =
  let sentences =
    [ "forall x. exists y. y = x'";
      "forall y. exists x. x' = y";
      "exists y. forall x. x' != y";
      "forall x y. x' = y' -> x = y";
      "exists x. x''' = 3";
      "exists x. x''' = 2";
      "forall x. exists y. y = x /\\ y' != x" ]
  in
  List.iter
    (fun s ->
      let f = parse s in
      match (Nat_succ.decide f, Presburger.decide f) with
      | Ok a, Ok b -> Alcotest.(check bool) s b a
      | Error e, _ -> Alcotest.failf "nat_succ %s: %s" s e
      | _, Error e -> Alcotest.failf "presburger %s: %s" s e)
    sentences

let gen_succ_sentence : Fq_logic.Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let module F = Fq_logic.Formula in
  let module T = Fq_logic.Term in
  let vars = [ "x"; "y"; "z" ] in
  let term =
    let* base =
      oneof
        [ map (fun v -> T.Var v) (oneofl vars);
          map (fun n -> T.Const (string_of_int n)) (int_bound 2) ]
    in
    let* k = int_bound 3 in
    let rec s n t = if n = 0 then t else s (n - 1) (T.App ("s", [ t ])) in
    return (s k base)
  in
  let atom = map2 (fun t u -> F.Eq (t, u)) term term in
  let formula =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [ atom;
              map (fun f -> F.Not f) (self (n - 1));
              map2 (fun f g -> F.And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> F.Or (f, g)) (self (n / 2)) (self (n / 2)) ])
      4
  in
  map
    (fun f ->
      let free = F.free_vars f in
      List.fold_left
        (fun acc (i, v) -> if i mod 2 = 0 then F.Exists (v, acc) else F.Forall (v, acc))
        f
        (List.mapi (fun i v -> (i, v)) free))
    formula

let prop_succ_matches_presburger =
  QCheck.Test.make ~name:"random N' sentences: paper's QE = Cooper" ~count:200
    (QCheck.make ~print:Fq_logic.Formula.to_string gen_succ_sentence)
    (fun f ->
      match (budgeted_decide Nat_succ.decide f, budgeted_decide Presburger.decide f) with
      | None, _ | _, None -> true (* budget tripped: skip this case *)
      | Some (Ok a), Some (Ok b) -> a = b
      | Some (Error e), _ | _, Some (Error e) -> QCheck.Test.fail_reportf "error: %s" e)

let test_nat_succ_order_not_usable () =
  check_error "nat_succ" Nat_succ.decide "forall x y. x < y"

(* --------------------------- equality domain ----------------------- *)

let test_eq_domain () =
  let c = check_decide "equality" Eq_domain.decide in
  c "exists x y. x != y" true;
  c "forall x y. x = y" false;
  c "forall x. exists y. y != x" true;
  c "exists x. x = \"a\" /\\ x != \"a\"" false;
  c "exists x. x != \"a\" /\\ x != \"b\" /\\ x != \"c\"" true;
  c "forall x. x = \"a\" \\/ x != \"a\"" true;
  c "exists x y z. x != y /\\ y != z /\\ x != z" true;
  c "\"a\" = \"a\"" true;
  c "\"a\" = \"b\"" false;
  check_error "equality" Eq_domain.decide "exists x. x < 1"

(* the N' offset bound is an actual bound (Thm 2.7 machinery) *)
let test_qe_offset_bound () =
  let f = parse "exists x. x'' = y'" in
  let bound = Nat_succ.qe_offset_bound f in
  Alcotest.(check bool) "bound positive" true (bound >= 3);
  match Nat_succ.qe f with
  | Error e -> Alcotest.fail e
  | Ok qf ->
    let rec max_off = function
      | Fq_logic.Term.App ("s", [ t ]) -> 1 + max_off t
      | Fq_logic.Term.App (_, args) -> List.fold_left (fun m t -> max m (max_off t)) 0 args
      | _ -> 0
    in
    let rec formula_off = function
      | Fq_logic.Formula.Atom (_, ts) -> List.fold_left (fun m t -> max m (max_off t)) 0 ts
      | Fq_logic.Formula.Eq (t, u) -> max (max_off t) (max_off u)
      | Fq_logic.Formula.Not g -> formula_off g
      | Fq_logic.Formula.And (g, h) | Fq_logic.Formula.Or (g, h) ->
        max (formula_off g) (formula_off h)
      | _ -> 0
    in
    Alcotest.(check bool) "offsets within bound" true (formula_off qf <= bound)

let () =
  Alcotest.run "fq_domain (numeric)"
    [ ( "cooper",
        [ Alcotest.test_case "sentences" `Quick test_cooper_sentences;
          Alcotest.test_case "errors" `Quick test_cooper_errors ] );
      ( "presburger",
        [ Alcotest.test_case "sentences" `Quick test_presburger_sentences;
          Alcotest.test_case "free variables" `Quick test_presburger_with_free ] );
      ( "nat_order",
        [ Alcotest.test_case "sentences" `Quick test_nat_order_sentences;
          Alcotest.test_case "agrees with presburger" `Quick test_nat_order_vs_presburger;
          QCheck_alcotest.to_alcotest prop_order_matches_presburger ] );
      ( "nat_succ",
        [ Alcotest.test_case "sentences" `Quick test_nat_succ_sentences;
          Alcotest.test_case "agrees with presburger" `Quick test_nat_succ_vs_presburger;
          Alcotest.test_case "order not expressible" `Quick test_nat_succ_order_not_usable;
          Alcotest.test_case "offset bound" `Quick test_qe_offset_bound;
          QCheck_alcotest.to_alcotest prop_succ_matches_presburger ] );
      ("eq_domain", [ Alcotest.test_case "sentences" `Quick test_eq_domain ]) ]
