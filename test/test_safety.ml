(* Tests for Fq_safety: the safe-range syntax, the algebra compiler, the
   finitization operator (Thm 2.2), the extended active domain (Thms
   2.6/2.7), relative safety (Thm 2.5), formula enumeration, and the
   executable reductions of Theorems 3.1 and 3.3. *)

open Fq_db
open Fq_safety
module Safe_range = Fq_eval.Safe_range
module Algebra_translate = Fq_eval.Algebra_translate
module Formula = Fq_logic.Formula

let parse = Fq_logic.Parser.formula_exn
let s = Value.str
let v = Value.int
let rel = Alcotest.testable Relation.pp Relation.equal

let schema_assoc = [ ("F", 2); ("R", 1) ]
let schema = Schema.make schema_assoc

let family =
  Relation.make ~arity:2
    [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
      [ s "enoch"; s "irad" ] ]

let state = State.make ~schema [ ("F", family) ]
let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)
let nat : Fq_domain.Domain.t = (module Fq_domain.Nat_order)
let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)
let succ_domain : Fq_domain.Domain.t = (module Fq_domain.Nat_succ)

(* ----------------------------- safe range -------------------------- *)

let check_sr name f expected =
  Alcotest.(check bool) name expected (Safe_range.is_safe_range ~schema:schema_assoc (parse f))

let test_safe_range_positive () =
  check_sr "atom" "F(x, y)" true;
  check_sr "the intro's M(x)" "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" true;
  check_sr "the intro's G(x,z)" "exists y. F(x, y) /\\ F(y, z)" true;
  check_sr "constant equality" "x = \"adam\"" true;
  check_sr "equality propagation" "F(x, y) /\\ y = z" true;
  check_sr "negation guarded" "F(x, y) /\\ ~F(y, x)" true;
  check_sr "forall rewritten" "R(x) /\\ (forall y. F(x, y) -> R(y))" true;
  check_sr "sentence" "exists x y. F(x, y)" true;
  check_sr "union same frees" "F(x, y) \\/ F(y, x)" true

let test_safe_range_negative () =
  check_sr "negated atom" "~F(x, y)" false;
  check_sr "loose variable" "F(x, x) /\\ y = y" false;
  check_sr "the intro's unsafe union" "(exists y w. y != w /\\ F(x, y) /\\ F(x, w)) \\/ (exists y. F(x, y) /\\ F(y, z))" false;
  check_sr "domain predicate alone" "x < y" false;
  check_sr "unrestricted quantifier" "exists y. F(x, x) \\/ F(y, y)" false;
  check_sr "variable equality alone" "x = y" false

(* --------------------------- algebra compile ----------------------- *)

let algebra f = Algebra_translate.run ~domain:eq_domain ~state (parse f)

let enum f =
  match Fq_eval.Enumerate.run ~fuel:30_000 ~domain:eq_domain ~state (parse f) with
  | Ok (Fq_eval.Enumerate.Finite r) -> r
  | Ok (Fq_eval.Enumerate.Out_of_fuel _) -> Alcotest.failf "%s: out of fuel" f
  | Error e -> Alcotest.failf "%s: %s" f e

let test_algebra_matches_enumeration () =
  (* E2: on safe-range queries the algebra plan computes the same answer
     as the Section 1.1 enumerate-and-decide algorithm *)
  List.iter
    (fun f ->
      match algebra f with
      | Ok r -> Alcotest.check rel f (enum f) r
      | Error e -> Alcotest.failf "%s: %s" f e)
    [ "F(x, y)";
      "exists y z. y != z /\\ F(x, y) /\\ F(x, z)";
      "exists y. F(x, y) /\\ F(y, z)";
      "F(x, y) /\\ ~F(y, x)";
      "x = \"adam\"";
      "exists x y. F(x, y)";
      "F(x, y) \\/ F(y, x)";
      "exists y. F(x, y) /\\ (forall z. F(x, z) -> z = y)" (* exactly one son *) ]

let test_algebra_active_domain_semantics () =
  (* a non-domain-independent query: ~F(x,y) over the active domain is
     finite (adom² minus F), differing from the natural infinite answer *)
  match algebra "~F(x, y)" with
  | Ok r ->
    let adom = List.length (State.active_domain state) in
    Alcotest.(check int) "adom² - |F|" ((adom * adom) - Relation.cardinal family)
      (Relation.cardinal r)
  | Error e -> Alcotest.fail e

let test_algebra_rejects_functions () =
  match Algebra_translate.run ~domain:nat ~state:(State.make ~schema []) (parse "x + 1 < y") with
  | Ok _ -> Alcotest.fail "function term should be rejected"
  | Error _ -> ()

(* --------------------------- finitization -------------------------- *)

let nat_schema_assoc = [ ("R", 1) ]
let nat_schema = Schema.make nat_schema_assoc

let nat_state =
  State.make ~schema:nat_schema [ ("R", Relation.make ~arity:1 [ [ v 2 ]; [ v 5 ] ]) ]

let test_finitize_always_finite () =
  (* E4: the finitization of an unsafe formula is finite; check by asking
     Presburger whether the translated finitization implies a bound *)
  let unsafe = parse "~R(x)" in
  let fin = Finitization.finitize unsafe in
  Alcotest.(check bool) "recognized" true (Finitization.is_finitization fin);
  match
    Finitization.equivalence_in_state ~decide:Fq_domain.Presburger.decide
      ~domain:presburger ~state:nat_state fin
  with
  | Ok b -> Alcotest.(check bool) "finitization is finite in the state" true b
  | Error e -> Alcotest.fail e

let test_finitize_preserves_finite () =
  (* a finite query is equivalent to its finitization (Thm 2.2(2)):
     its answer in this state must coincide *)
  let finite_q = parse "exists y. R(y) /\\ x < y" in
  let fin = Finitization.finitize finite_q in
  let run f =
    match Fq_eval.Enumerate.run ~fuel:5_000 ~domain:presburger ~state:nat_state f with
    | Ok (Fq_eval.Enumerate.Finite r) -> r
    | Ok (Fq_eval.Enumerate.Out_of_fuel _) -> Alcotest.fail "out of fuel"
    | Error e -> Alcotest.fail e
  in
  Alcotest.check rel "same answers" (run finite_q) (run fin)

let test_relative_safety_order () =
  (* E5 / Theorem 2.5 over N_< and Presburger *)
  let finite_cases = [ "R(x)"; "exists y. R(y) /\\ x < y"; "x < 3" ] in
  let infinite_cases = [ "~R(x)"; "exists y. R(y) /\\ y < x"; "3 < x"; "x = x" ] in
  List.iter
    (fun f ->
      match
        Relative_safety.via_finitization ~domain:presburger
          ~decide:Fq_domain.Presburger.decide ~state:nat_state (parse f)
      with
      | Ok b -> Alcotest.(check bool) (f ^ " finite") true b
      | Error e -> Alcotest.failf "%s: %s" f e)
    finite_cases;
  List.iter
    (fun f ->
      match
        Relative_safety.via_finitization ~domain:presburger
          ~decide:Fq_domain.Presburger.decide ~state:nat_state (parse f)
      with
      | Ok b -> Alcotest.(check bool) (f ^ " infinite") false b
      | Error e -> Alcotest.failf "%s: %s" f e)
    infinite_cases

let test_relative_safety_state_dependence () =
  (* the same query can be finite in one state and infinite in another:
     x < y for y in R — infinite iff R nonempty... rather: y < x with R
     empty is finite (vacuously), with R nonempty infinite *)
  let f = parse "exists y. R(y) /\\ y < x" in
  let empty_state = State.make ~schema:nat_schema [] in
  (match
     Relative_safety.via_finitization ~domain:presburger
       ~decide:Fq_domain.Presburger.decide ~state:empty_state f
   with
  | Ok b -> Alcotest.(check bool) "finite in the empty state" true b
  | Error e -> Alcotest.fail e);
  match
    Relative_safety.via_finitization ~domain:presburger
      ~decide:Fq_domain.Presburger.decide ~state:nat_state f
  with
  | Ok b -> Alcotest.(check bool) "infinite once R is inhabited" false b
  | Error e -> Alcotest.fail e

(* ---------------------- extended active domain --------------------- *)

let test_ext_active_finite_in_state () =
  (* E6 / Theorem 2.6 over N' *)
  let check f expected =
    match Ext_active.finite_in_state ~domain:succ_domain ~state:nat_state (parse f) with
    | Ok b -> Alcotest.(check bool) f expected b
    | Error e -> Alcotest.failf "%s: %s" f e
  in
  check "R(x)" true;
  check "~R(x)" false;
  check "exists y. R(y) /\\ x = y'" true (* successors of R elements *);
  check "exists y. R(y) /\\ x' = y" true (* predecessors *);
  check "x != 3" false;
  check "x = 3 \\/ x = 7" true;
  check "exists y. R(y) /\\ x != y" false

let test_ext_active_restrict () =
  (* Theorem 2.7: the restriction operator bounds every free variable *)
  let f = parse "x != 3" in
  let restricted = Ext_active.restrict ~schema:nat_schema_assoc f in
  (match Ext_active.finite_in_state ~domain:succ_domain ~state:nat_state restricted with
  | Ok b -> Alcotest.(check bool) "restricted formula is finite" true b
  | Error e -> Alcotest.fail e);
  (* and restriction of an already-finite query does not change answers *)
  let g = parse "exists y. R(y) /\\ x = y'" in
  let gr = Ext_active.restrict ~schema:nat_schema_assoc g in
  let run f =
    match Fq_eval.Enumerate.run ~fuel:5_000 ~domain:succ_domain ~state:nat_state f with
    | Ok (Fq_eval.Enumerate.Finite r) -> r
    | Ok (Fq_eval.Enumerate.Out_of_fuel _) -> Alcotest.fail "out of fuel"
    | Error e -> Alcotest.fail e
  in
  Alcotest.check rel "same answers after restriction" (run g) (run gr)

(* ----------------------- equality-domain safety -------------------- *)

let test_relative_safety_equality () =
  let check f expected =
    match Relative_safety.via_active_domain ~state (parse f) with
    | Ok b -> Alcotest.(check bool) f expected b
    | Error e -> Alcotest.failf "%s: %s" f e
  in
  check "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" true;
  check "~F(x, y)" false;
  check "(exists y w. y != w /\\ F(x, y) /\\ F(x, w)) \\/ (exists y. F(x, y) /\\ F(y, z))"
    false (* the intro's unsafe union — unsafe because adam has two sons *);
  check "exists y. F(x, y)" true;
  check "x = x" false

let test_unsafe_union_state_dependence () =
  (* footnote 4: M(x) ∨ G(x,z) only gives an infinite answer if someone
     has two or more sons *)
  let f =
    parse
      "(exists y w. y != w /\\ F(x, y) /\\ F(x, w)) \\/ (exists y. F(x, y) /\\ F(y, z))"
  in
  let single_sons =
    State.make ~schema
      [ ("F", Relation.make ~arity:2 [ [ s "adam"; s "cain" ]; [ s "cain"; s "enoch" ] ]) ]
  in
  match Relative_safety.via_active_domain ~state:single_sons f with
  | Ok b -> Alcotest.(check bool) "finite when all fathers have one son" true b
  | Error e -> Alcotest.fail e

let test_decide_for_dispatch () =
  Alcotest.(check bool) "traces refused" true
    (Result.is_error
       (Relative_safety.decide_for ~domain:(module Fq_domain.Traces)
          ~state:(Diagonal.state_for "11") (parse "x = x")))

(* ------------------------- formula enumeration --------------------- *)

let voc =
  { Formula_enum.preds = [ ("F", 2) ]; consts = [ "a" ]; funs = [] }

let test_formula_enum () =
  let first = List.of_seq (Seq.take 200 (Formula_enum.enumerate voc ())) in
  Alcotest.(check int) "no duplicates" (List.length first)
    (List.length (List.sort_uniq compare first));
  let sizes = List.map Formula.size first in
  Alcotest.(check bool) "sizes nondecreasing" true (List.sort compare sizes = sizes);
  Alcotest.(check bool) "True appears" true (List.mem Formula.True first);
  (* a specific small formula appears *)
  let target = parse "F(x0, x0)" in
  Alcotest.(check bool) "F(x0,x0) appears" true (List.exists (Formula.equal target) first)

let test_formula_enum_with_free () =
  let free_x =
    List.of_seq (Seq.take 30 (Formula_enum.enumerate_with_free voc ~free:[ "x0" ] ()))
  in
  Alcotest.(check bool) "every formula has exactly free x0" true
    (List.for_all (fun f -> Formula.free_vars f = [ "x0" ]) free_x)

(* ------------------------------ syntaxes --------------------------- *)

let test_syntax_classes () =
  let sr = Syntax_class.safe_range ~schema:schema_assoc ~vocabulary:voc in
  Alcotest.(check bool) "accepts safe" true (sr.Syntax_class.accepts (parse "F(x, y)"));
  Alcotest.(check bool) "rejects unsafe" false (sr.Syntax_class.accepts (parse "~F(x, y)"));
  let enumerated = List.of_seq (Seq.take 10 (sr.Syntax_class.enumerate ())) in
  Alcotest.(check bool) "all enumerated accepted" true
    (List.for_all sr.Syntax_class.accepts enumerated);
  let fin = Syntax_class.finitizations ~vocabulary:voc in
  let f = Finitization.finitize (parse "~F(x, y)") in
  Alcotest.(check bool) "finitization accepted" true (fin.Syntax_class.accepts f);
  Alcotest.(check bool) "raw formula rejected" false
    (fin.Syntax_class.accepts (parse "~F(x, y)"))

(* -------------------------- Theorem 3.1 ---------------------------- *)

let scan = Fq_tm.Encode.encode Fq_tm.Zoo.scan_right
let halter = Fq_tm.Encode.encode Fq_tm.Zoo.halt
let looper = Fq_tm.Encode.encode Fq_tm.Zoo.loop

let test_equivalent_queries () =
  let q1 = Diagonal.totality_query scan in
  (match Diagonal.equivalent_queries q1 q1 with
  | Ok b -> Alcotest.(check bool) "query equivalent to itself" true b
  | Error e -> Alcotest.fail e);
  match Diagonal.equivalent_queries q1 (Diagonal.totality_query halter) with
  | Ok b -> Alcotest.(check bool) "different machines differ" false b
  | Error e -> Alcotest.fail e

let test_fresh_total_machine () =
  let avoid = [ scan; halter; looper ] in
  let fresh = Diagonal.fresh_total_machine ~avoid in
  let fresh_word = Fq_tm.Encode.encode fresh in
  Alcotest.(check bool) "fresh differs from avoided" true
    (not (List.mem fresh_word avoid));
  (* behavioral difference on the designated inputs *)
  List.iteri
    (fun i m ->
      let w = String.make (i + 1) '1' in
      let steps_fresh = Fq_tm.Run.halts_within ~fuel:100 fresh w in
      let steps_old = Fq_tm.Run.halts_within ~fuel:100 (Fq_tm.Encode.decode m) w in
      Alcotest.(check bool)
        (Printf.sprintf "differs from machine %d on %s" i w)
        true (steps_fresh <> steps_old))
    avoid;
  (* and the fresh machine is total on a sample of inputs *)
  Fq_words.Word.enumerate_over "1-" () |> Seq.take 40
  |> Seq.iter (fun w ->
         Alcotest.(check bool)
           (Printf.sprintf "halts on %S" w)
           true
           (Option.is_some (Fq_tm.Run.halts_within ~fuel:10_000 fresh w)))

let manual_syntax name formulas =
  { Syntax_class.name;
    description = name;
    accepts = (fun f -> List.exists (Formula.equal f) formulas);
    enumerate = (fun () -> List.to_seq formulas) }

let test_defeat_missing () =
  (* a syntax containing only scan_right's (finite) totality query: the
     diagonalization must produce a total machine it misses *)
  let syntax = manual_syntax "just-scan" [ Diagonal.totality_query scan ] in
  match Diagonal.defeat ~syntax ~budget:4 with
  | Ok (Diagonal.Missed_finite_query { machine; _ }) ->
    Alcotest.(check bool) "missed machine is machine-shaped" true
      (Fq_words.Word.is_machine_shaped machine);
    (* the missed machine is total on a sample *)
    Fq_words.Word.enumerate_over "1-" () |> Seq.take 20
    |> Seq.iter (fun w ->
           Alcotest.(check bool)
             (Printf.sprintf "missed machine halts on %S" w)
             true
             (Option.is_some
                (Fq_tm.Run.halts_within ~fuel:10_000 (Fq_tm.Encode.decode machine) w)))
  | Ok (Diagonal.Admits_unsafe _) -> Alcotest.fail "expected a missed query"
  | Error e -> Alcotest.fail e

let test_defeat_unsafe () =
  (* a syntax containing the looper's totality query admits an unsafe
     formula *)
  let syntax =
    manual_syntax "with-looper"
      [ Diagonal.totality_query scan; Diagonal.totality_query looper ]
  in
  match Diagonal.defeat ~syntax ~budget:4 with
  | Ok (Diagonal.Admits_unsafe { witness_machine; witness_input; _ }) ->
    Alcotest.(check string) "the looper is the witness" looper witness_machine;
    (* and it indeed diverges there *)
    Alcotest.(check (option int)) "diverges" None
      (Fq_tm.Run.halts_within ~fuel:2_000 (Fq_tm.Encode.decode witness_machine) witness_input)
  | Ok (Diagonal.Missed_finite_query _) -> Alcotest.fail "expected an unsafe formula"
  | Error e -> Alcotest.fail e

let test_enumerate_total_via () =
  (* running the reduction forward over a syntax covering two machines *)
  let syntax =
    manual_syntax "two"
      [ Diagonal.totality_query scan; Diagonal.totality_query halter ]
  in
  match
    Diagonal.enumerate_total_machines_via ~syntax ~formula_budget:2 ~machine_budget:40
  with
  | Ok machines ->
    Alcotest.(check bool) "halter found (short encoding)" true (List.mem halter machines);
    List.iter
      (fun m ->
        Alcotest.(check bool)
          (Printf.sprintf "%S collected means covered" m)
          true
          (List.mem m [ scan; halter ]))
      machines
  | Error e -> Alcotest.fail e

(* -------------------------- Theorem 3.3 ---------------------------- *)

let test_halting_reduction () =
  (* halting side: finite answer, certified *)
  (match Halting_reduction.check ~fuel:100 ~machine:scan ~input:"11" () with
  | Ok (Halting_reduction.Halts { steps; answer }) ->
    Alcotest.(check int) "steps" 2 steps;
    Alcotest.(check int) "answer = steps+1 traces" 3 (Relation.cardinal answer)
  | Ok (Halting_reduction.Diverges_beyond _) -> Alcotest.fail "scan halts"
  | Error e -> Alcotest.fail e);
  (* diverging side: unboundedly many tuples *)
  (match Halting_reduction.check ~fuel:500 ~machine:looper ~input:"1" () with
  | Ok (Halting_reduction.Diverges_beyond { trace_count }) ->
    Alcotest.(check int) "count reaches the fuel bound" 500 trace_count
  | Ok (Halting_reduction.Halts _) -> Alcotest.fail "looper diverges"
  | Error e -> Alcotest.fail e);
  (* the parity machine: instance-sensitive *)
  (match Halting_reduction.check ~fuel:100 ~machine:(Fq_tm.Encode.encode Fq_tm.Zoo.parity)
           ~input:"11" ()
   with
  | Ok (Halting_reduction.Halts { steps; _ }) -> Alcotest.(check int) "even halts" 2 steps
  | Ok (Halting_reduction.Diverges_beyond _) -> Alcotest.fail "even input halts"
  | Error e -> Alcotest.fail e);
  match Halting_reduction.check ~fuel:100 ~machine:(Fq_tm.Encode.encode Fq_tm.Zoo.parity)
          ~input:"111" ()
  with
  | Ok (Halting_reduction.Diverges_beyond _) -> ()
  | Ok (Halting_reduction.Halts _) -> Alcotest.fail "odd input diverges"
  | Error e -> Alcotest.fail e

let test_bounded_infinite_verdict () =
  (* over a domain with a complete procedure, bounded recognizes the
     infinite case outright *)
  match
    Relative_safety.bounded ~domain:presburger ~state:nat_state (parse "~R(x)")
  with
  | Ok Relative_safety.Infinite -> ()
  | Ok _ -> Alcotest.fail "expected the Infinite verdict"
  | Error e -> Alcotest.fail e

let test_bounded_relative_safety_traces () =
  (* the only tool Theorem 3.3 leaves us over T *)
  let domain : Fq_domain.Domain.t = (module Fq_domain.Traces) in
  let query, st = Halting_reduction.instance ~machine:scan ~input:"1" in
  match Relative_safety.bounded ~fuel:3_000 ~domain ~state:st query with
  | Ok (Relative_safety.Finite r) ->
    Alcotest.(check int) "two traces (scan halts on 1 in 1 step)" 2 (Relation.cardinal r)
  | Ok _ -> Alcotest.fail "expected certified finiteness"
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "fq_safety"
    [ ( "safe_range",
        [ Alcotest.test_case "positive" `Quick test_safe_range_positive;
          Alcotest.test_case "negative" `Quick test_safe_range_negative ] );
      ( "algebra",
        [ Alcotest.test_case "matches enumeration" `Quick test_algebra_matches_enumeration;
          Alcotest.test_case "active-domain semantics" `Quick
            test_algebra_active_domain_semantics;
          Alcotest.test_case "rejects function terms" `Quick test_algebra_rejects_functions
        ] );
      ( "finitization",
        [ Alcotest.test_case "always finite" `Quick test_finitize_always_finite;
          Alcotest.test_case "preserves finite queries" `Quick test_finitize_preserves_finite;
          Alcotest.test_case "relative safety over N_<" `Quick test_relative_safety_order;
          Alcotest.test_case "state dependence" `Quick test_relative_safety_state_dependence
        ] );
      ( "ext_active",
        [ Alcotest.test_case "finite_in_state" `Quick test_ext_active_finite_in_state;
          Alcotest.test_case "restrict" `Quick test_ext_active_restrict ] );
      ( "relative_safety",
        [ Alcotest.test_case "equality domain" `Quick test_relative_safety_equality;
          Alcotest.test_case "unsafe union state dependence" `Quick
            test_unsafe_union_state_dependence;
          Alcotest.test_case "dispatch" `Quick test_decide_for_dispatch ] );
      ( "formula_enum",
        [ Alcotest.test_case "enumeration" `Quick test_formula_enum;
          Alcotest.test_case "with free variables" `Quick test_formula_enum_with_free ] );
      ("syntax_class", [ Alcotest.test_case "classes" `Quick test_syntax_classes ]);
      ( "theorem_3_1",
        [ Alcotest.test_case "equivalence test" `Quick test_equivalent_queries;
          Alcotest.test_case "fresh total machine" `Quick test_fresh_total_machine;
          Alcotest.test_case "defeat: missed finite query" `Quick test_defeat_missing;
          Alcotest.test_case "defeat: admits unsafe" `Quick test_defeat_unsafe;
          Alcotest.test_case "reduction forward" `Quick test_enumerate_total_via ] );
      ( "theorem_3_3",
        [ Alcotest.test_case "halting reduction" `Quick test_halting_reduction;
          Alcotest.test_case "bounded: infinite verdict" `Quick test_bounded_infinite_verdict;
          Alcotest.test_case "bounded relative safety over T" `Quick
            test_bounded_relative_safety_traces ] ) ]
