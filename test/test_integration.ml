(* Cross-layer integration and property tests:

   - the three evaluators (Section 1.1 enumeration, active-domain algebra,
     RANF algebra) agree on randomized safe-range queries and states;
   - Cooper's quantifier elimination preserves semantics under ground
     instantiation of free variables;
   - the Reach-theory elimination agrees with direct evaluation on
     one-free-variable formulas instantiated with sample words;
   - the finitization operator's two Theorem 2.2 properties hold on
     randomized queries. *)

open Fq_db
module Formula = Fq_logic.Formula
module Term = Fq_logic.Term

let parse = Fq_logic.Parser.formula_exn
let s = Value.str
let rel = Alcotest.testable Relation.pp Relation.equal

let schema_assoc = [ ("F", 2); ("S", 1) ]
let schema = Schema.make schema_assoc
let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)

(* ------------------------- RANF unit tests ------------------------- *)

let family =
  Relation.make ~arity:2
    [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
      [ s "enoch"; s "irad" ] ]

let smokers = Relation.make ~arity:1 [ [ s "cain" ]; [ s "irad" ] ]
let state = State.make ~schema [ ("F", family); ("S", smokers) ]

let ranf_run f =
  match Fq_eval.Ranf.run ~domain:eq_domain ~state (parse f) with
  | Ok r -> r
  | Error e -> Alcotest.failf "ranf %s: %s" f e

let adom_run f =
  match Fq_eval.Algebra_translate.run ~domain:eq_domain ~state (parse f) with
  | Ok r -> r
  | Error e -> Alcotest.failf "adom %s: %s" f e

let test_ranf_basic () =
  List.iter
    (fun f -> Alcotest.check rel f (adom_run f) (ranf_run f))
    [ "F(x, y)";
      "exists y z. y != z /\\ F(x, y) /\\ F(x, z)";
      "exists y. F(x, y) /\\ F(y, z)";
      "F(x, y) /\\ ~F(y, x)";
      "F(x, y) /\\ ~S(y)";
      "x = \"adam\"";
      "F(x, y) /\\ y = z" (* equality extends columns *);
      "exists x y. F(x, y)";
      "F(x, y) \\/ F(y, x)";
      (* a guarded inner disjunction with unequal frees: needs push_guards *)
      "F(x, y) /\\ (S(x) \\/ S(y))";
      (* guarded negation of a disjunction *)
      "F(x, y) /\\ ~(S(x) \\/ S(y))";
      (* universal through double negation *)
      "S(x) /\\ (forall y. F(x, y) -> S(y))";
      "exists y. F(x, y) /\\ (forall z. F(x, z) -> z = y)" ]

let test_ranf_rejects_unsafe () =
  List.iter
    (fun f ->
      match Fq_eval.Ranf.compile ~domain:eq_domain ~state (parse f) with
      | Ok _ -> Alcotest.failf "%s should be rejected" f
      | Error _ -> ())
    [ "~F(x, y)"; "x = y"; "F(x, x) \\/ S(y)" ]

let test_ranf_no_adom_literal () =
  (* RANF plans never embed the active domain: every literal is tiny *)
  let check_plan f =
    match Fq_eval.Ranf.compile ~domain:eq_domain ~state (parse f) with
    | Error e -> Alcotest.failf "%s: %s" f e
    | Ok { plan; _ } ->
      let rec max_lit = function
        | Relalg.Lit r -> Relation.cardinal r
        | Relalg.Rel _ -> 0
        | Relalg.Select (_, p) | Relalg.Project (_, p) -> max_lit p
        | Relalg.Product (p, q)
        | Relalg.Join (_, p, q)
        | Relalg.Union (p, q)
        | Relalg.Diff (p, q) ->
          max (max_lit p) (max_lit q)
      in
      Alcotest.(check bool) (f ^ ": no adom literal") true (max_lit plan <= 1)
  in
  List.iter check_plan
    [ "F(x, y) /\\ ~S(y)"; "exists y. F(x, y) /\\ F(y, z)"; "S(x) /\\ (forall y. F(x, y) -> S(y))" ]

(* ---------------- randomized three-evaluator agreement ------------- *)

let var_pool = [ "x"; "y"; "z" ]
let const_pool = [ "a"; "b"; "c"; "d" ]

(* a grammar biased towards (but not guaranteeing) safe-range formulas;
   the property filters with the syntactic check *)
let gen_formula : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl var_pool in
  let const = oneofl const_pool in
  let atom =
    oneof
      [ map2 (fun v w -> Formula.Atom ("F", [ Term.Var v; Term.Var w ])) var var;
        map (fun v -> Formula.Atom ("S", [ Term.Var v ])) var;
        map2 (fun v c -> Formula.Eq (Term.Var v, Term.Const c)) var const ]
  in
  fix
    (fun self n ->
      if n <= 0 then atom
      else
        frequency
          [ (3, atom);
            (3, map2 (fun f g -> Formula.And (f, g)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun f g -> Formula.Or (f, g)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun f g -> Formula.And (f, Formula.Not g)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun v f -> Formula.Exists (v, f)) var (self (n - 1))) ])
    4

let gen_state : State.t QCheck.Gen.t =
  let open QCheck.Gen in
  let value = map s (oneofl const_pool) in
  let* f_tuples = list_size (int_bound 6) (pair value value) in
  let* s_tuples = list_size (int_bound 4) value in
  return
    (State.make ~schema
       [ ("F", Relation.make ~arity:2 (List.map (fun (a, b) -> [ a; b ]) f_tuples));
         ("S", Relation.make ~arity:1 (List.map (fun v -> [ v ]) s_tuples)) ])

let arb_sr_case =
  QCheck.make
    ~print:(fun (f, st) -> Formula.to_string f ^ " | " ^ Format.asprintf "%a" State.pp st)
    QCheck.Gen.(pair gen_formula gen_state)

let prop_three_evaluators_agree =
  QCheck.Test.make ~name:"enumerate = adom-algebra = ranf-algebra on safe-range queries"
    ~count:120 arb_sr_case (fun (f, st) ->
      QCheck.assume (Fq_eval.Safe_range.is_safe_range ~schema:schema_assoc f);
      let adom =
        match Fq_eval.Algebra_translate.run ~domain:eq_domain ~state:st f with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "adom: %s" e
      in
      let ranf =
        match Fq_eval.Ranf.run ~domain:eq_domain ~state:st f with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "ranf: %s" e
      in
      (* the enumeration's completeness certificates are exponential in
         the answer size over the equality domain, so only cross-check it
         on small answers *)
      let enum_ok =
        if Relation.cardinal adom > 8 then true
        else
          match
            Fq_eval.Enumerate.run ~fuel:8_000 ~max_certified:10 ~domain:eq_domain ~state:st f
          with
          | Ok (Fq_eval.Enumerate.Finite r) -> Relation.equal adom r
          | Ok (Fq_eval.Enumerate.Out_of_fuel _) ->
            QCheck.Test.fail_reportf "enumeration out of fuel"
          | Error e -> QCheck.Test.fail_reportf "enumerate: %s" e
      in
      Relation.equal adom ranf && enum_ok)

(* -------------------- Cooper ground instantiation ------------------ *)

let gen_presburger : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y" ] in
  let term =
    oneof
      [ map (fun v -> Term.Var v) var;
        map (fun n -> Term.Const (string_of_int n)) (int_bound 4);
        map2
          (fun v n -> Term.App ("+", [ Term.Var v; Term.Const (string_of_int n) ]))
          var (int_bound 3) ]
  in
  let atom =
    oneof
      [ map2 (fun t u -> Formula.Atom ("<", [ t; u ])) term term;
        map2 (fun t u -> Formula.Eq (t, u)) term term;
        map2 (fun d t -> Formula.Atom ("dvd", [ Term.Const (string_of_int (d + 1)); t ])) (int_bound 3) term ]
  in
  let qf =
    fix
      (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [ atom;
              map (fun f -> Formula.Not f) (self (n - 1));
              map2 (fun f g -> Formula.And (f, g)) (self (n / 2)) (self (n / 2));
              map2 (fun f g -> Formula.Or (f, g)) (self (n / 2)) (self (n / 2)) ])
      4
  in
  (* quantify y, keep x free *)
  map (fun f -> Formula.Exists ("y", f)) qf

let prop_cooper_qe_ground =
  QCheck.Test.make ~name:"Cooper QE agrees with decide on ground instances" ~count:200
    (QCheck.pair (QCheck.make ~print:Formula.to_string gen_presburger) (QCheck.int_range 0 6))
    (fun (f, n) ->
      let inst = Formula.subst [ ("x", Term.Const (string_of_int n)) ] f in
      let direct =
        match Fq_domain.Cooper.decide inst with
        | Ok b -> b
        | Error e -> QCheck.Test.fail_reportf "direct: %s" e
      in
      let via_qe =
        match Fq_domain.Cooper.qe f with
        | Error e -> QCheck.Test.fail_reportf "qe: %s" e
        | Ok qf -> (
          match
            Fq_domain.Cooper.eval_qf ~env:[ ("x", Fq_numeric.Bigint.of_int n) ] qf
          with
          | Ok b -> b
          | Error e -> QCheck.Test.fail_reportf "eval: %s" e)
      in
      direct = via_qe)

(* ------------------- Reach QE ground instantiation ----------------- *)

let scan = Fq_tm.Encode.encode Fq_tm.Zoo.scan_right

let sample_words =
  let traces =
    List.filteri (fun i _ -> i < 3)
      (List.of_seq (Seq.take 3 (Fq_tm.Trace.traces ~machine:scan ~input:"11")))
  in
  [ ""; "1"; "11"; "*"; scan; "1.1" ] @ traces

let reach_formulas : (string * Fq_domain.Reach.t) list =
  let open Fq_domain.Reach in
  [ ("T(x)", Atom (Cls (Traces, Base (Var "x"))));
    ("M(x)", Atom (Cls (Machines, Base (Var "x"))));
    ("m(x) = scan", Atom (Eq (M_of (Var "x"), Base (Const scan))));
    ("w(x) = 11", Atom (Eq (W_of (Var "x"), Base (Const "11"))));
    ("B_1-(x)", Atom (B ("1-", Base (Var "x"))));
    ("D2(scan, x)", Atom (D (2, Base (Const scan), Base (Var "x"))));
    ("E3(m(x), w(x))", Atom (E (3, M_of (Var "x"), W_of (Var "x"))));
    ( "∃y (T(y) ∧ m(y) = x)",
      Exists ("y", And (Atom (Cls (Traces, Base (Var "y"))), Atom (Eq (M_of (Var "y"), Base (Var "x"))))) );
    ( "∀y (m(y) != x ∨ T(y))",
      Forall
        ("y", Or (Not (Atom (Eq (M_of (Var "y"), Base (Var "x")))), Atom (Cls (Traces, Base (Var "y"))))) )
  ]

let test_reach_qe_ground_agreement () =
  (* eliminate quantifiers from f(x); on each sample word the residue must
     agree with direct (simulation-based) evaluation of f *)
  List.iter
    (fun (label, f) ->
      let qf = Fq_domain.Reach_qe.eliminate f in
      List.iter
        (fun w ->
          let direct =
            match Fq_domain.Reach_qe.decide (Fq_domain.Reach.subst_base "x" (Const w) f) with
            | Ok b -> b
            | Error e -> Alcotest.failf "%s / %S direct: %s" label w e
          in
          let via_qe =
            match Fq_domain.Reach.holds ~env:[ ("x", w) ] qf with
            | Ok b -> b
            | Error e -> Alcotest.failf "%s / %S qe-residue: %s" label w e
          in
          Alcotest.(check bool) (Printf.sprintf "%s on %S" label w) direct via_qe)
        sample_words)
    reach_formulas

(* ------------------------ finitization property -------------------- *)

let nat_schema = Schema.make [ ("R", 1) ]
let presburger : Fq_domain.Domain.t = (module Fq_domain.Presburger)

let gen_nat_state : State.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* tuples = list_size (int_bound 4) (int_bound 9) in
  return
    (State.make ~schema:nat_schema
       [ ("R", Relation.make ~arity:1 (List.map (fun n -> [ Value.int n ]) tuples)) ])

let gen_nat_query : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneofl
    [ parse "R(x)"; parse "~R(x)"; parse "exists y. R(y) /\\ x < y";
      parse "exists y. R(y) /\\ y < x"; parse "x < 5"; parse "5 < x";
      parse "exists y. R(y) /\\ x = y"; parse "x = x" ]

let prop_finitization_always_finite =
  QCheck.Test.make ~name:"finitizations are finite in every state (Thm 2.2)" ~count:100
    (QCheck.pair (QCheck.make ~print:Formula.to_string gen_nat_query)
       (QCheck.make ~print:(Format.asprintf "%a" State.pp) gen_nat_state))
    (fun (f, st) ->
      match
        Fq_safety.Relative_safety.via_finitization ~domain:presburger
          ~decide:Fq_domain.Presburger.decide ~state:st (Fq_safety.Finitization.finitize f)
      with
      | Ok b -> b
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let prop_finitization_equivalence =
  QCheck.Test.make
    ~name:"φ finite in state ⟺ φ ≡ φ^F in state (Thms 2.2/2.5)" ~count:100
    (QCheck.pair (QCheck.make ~print:Formula.to_string gen_nat_query)
       (QCheck.make ~print:(Format.asprintf "%a" State.pp) gen_nat_state))
    (fun (f, st) ->
      (* decide finiteness by the Thm 2.5 criterion ... *)
      let by_criterion =
        match
          Fq_safety.Relative_safety.via_finitization ~domain:presburger
            ~decide:Fq_domain.Presburger.decide ~state:st f
        with
        | Ok b -> b
        | Error e -> QCheck.Test.fail_reportf "criterion: %s" e
      in
      (* ... and cross-check with bounded enumeration *)
      match Fq_eval.Enumerate.run ~fuel:400 ~max_certified:25 ~domain:presburger ~state:st f with
      | Ok (Fq_eval.Enumerate.Finite _) -> by_criterion = true
      | Ok (Fq_eval.Enumerate.Out_of_fuel _) ->
        (* could be a large finite answer; only the infinite direction is
           conclusive — accept *)
        true
      | Error e -> QCheck.Test.fail_reportf "enumerate: %s" e)

let () =
  Alcotest.run "integration"
    [ ( "ranf",
        [ Alcotest.test_case "agrees with adom compilation" `Quick test_ranf_basic;
          Alcotest.test_case "rejects unsafe formulas" `Quick test_ranf_rejects_unsafe;
          Alcotest.test_case "plans avoid the active domain" `Quick test_ranf_no_adom_literal
        ] );
      ( "randomized",
        [ QCheck_alcotest.to_alcotest prop_three_evaluators_agree;
          QCheck_alcotest.to_alcotest prop_cooper_qe_ground;
          QCheck_alcotest.to_alcotest prop_finitization_always_finite;
          QCheck_alcotest.to_alcotest prop_finitization_equivalence ] );
      ( "reach",
        [ Alcotest.test_case "QE agrees with simulation on samples" `Quick
            test_reach_qe_ground_agreement ] ) ]
