(* Engine-equivalence properties (PR 6): the columnar batch engine must
   be observationally identical to the row engine — same canonical
   answer on every well-formed plan, and, because both engines charge
   the budget the same amounts in the same operator order, the same
   complete-vs-exhausted verdict under any shared fuel budget.

   The generators mirror test_optimizer.ml: arity-directed random plans
   over the schema A/1 B/2 C/3 with random small states, so
   Join/Union/Diff constraints hold by construction. *)

module Budget = Fq_core.Budget
module Relation = Fq_db.Relation
module Relalg = Fq_db.Relalg
module Optimizer = Fq_db.Optimizer
module Columnar = Fq_db.Columnar
module Schema = Fq_db.Schema
module State = Fq_db.State
module Value = Fq_db.Value

let vi = Value.int
let schema = Schema.make [ ("A", 1); ("B", 2); ("C", 3) ]

(* ------------------------------------------------------------------ *)
(* Generators (the test_optimizer.ml shapes)                           *)
(* ------------------------------------------------------------------ *)

let gen_value = QCheck.Gen.map vi (QCheck.Gen.int_range 0 4)

let gen_rows arity =
  QCheck.Gen.(list_size (int_range 0 7) (list_repeat arity gen_value))

let gen_relation arity = QCheck.Gen.map (Relation.make ~arity) (gen_rows arity)

let gen_state =
  QCheck.Gen.(
    map3
      (fun a b c -> State.make ~schema [ ("A", a); ("B", b); ("C", c) ])
      (gen_relation 1) (gen_relation 2) (gen_relation 3))

let gen_arg arity =
  let open QCheck.Gen in
  if arity = 0 then map (fun v -> Relalg.Const v) gen_value
  else
    frequency
      [ (3, map (fun i -> Relalg.Col i) (int_range 0 (arity - 1)));
        (1, map (fun v -> Relalg.Const v) gen_value) ]

let rec gen_cond depth arity =
  let open QCheck.Gen in
  let eq = map2 (fun a b -> Relalg.Eq (a, b)) (gen_arg arity) (gen_arg arity) in
  if depth = 0 then eq
  else
    frequency
      [ (4, eq);
        (1, map (fun c -> Relalg.Not c) (gen_cond (depth - 1) arity));
        ( 2,
          map2
            (fun c d -> Relalg.And_c (c, d))
            (gen_cond (depth - 1) arity)
            (gen_cond (depth - 1) arity) );
        ( 1,
          map2
            (fun c d -> Relalg.Or_c (c, d))
            (gen_cond (depth - 1) arity)
            (gen_cond (depth - 1) arity) ) ]

let rec gen_plan fuel arity =
  let open QCheck.Gen in
  let base =
    let lit = map (fun r -> Relalg.Lit r) (gen_relation arity) in
    match arity with
    | 1 -> oneof [ return (Relalg.Rel "A"); lit ]
    | 2 -> oneof [ return (Relalg.Rel "B"); lit ]
    | 3 -> oneof [ return (Relalg.Rel "C"); lit ]
    | _ -> lit
  in
  if fuel = 0 then base
  else
    let sub = gen_plan (fuel - 1) in
    let select =
      gen_cond 2 arity >>= fun c -> map (fun p -> Relalg.Select (c, p)) (sub arity)
    in
    let project =
      int_range 0 2 >>= fun extra ->
      let inner = arity + extra in
      if inner = 0 then map (fun p -> Relalg.Project ([], p)) (sub 0)
      else
        list_repeat arity (int_range 0 (inner - 1)) >>= fun cols ->
        map (fun p -> Relalg.Project (cols, p)) (sub inner)
    in
    let product =
      int_range 0 arity >>= fun a1 ->
      map2 (fun p q -> Relalg.Product (p, q)) (sub a1) (sub (arity - a1))
    in
    let join =
      int_range 0 arity >>= fun a1 ->
      let a2 = arity - a1 in
      (if a1 = 0 || a2 = 0 then return []
       else
         list_size (int_range 0 2)
           (pair (int_range 0 (a1 - 1)) (int_range 0 (a2 - 1))))
      >>= fun pairs -> map2 (fun p q -> Relalg.Join (pairs, p, q)) (sub a1) (sub a2)
    in
    let union = map2 (fun p q -> Relalg.Union (p, q)) (sub arity) (sub arity) in
    let diff = map2 (fun p q -> Relalg.Diff (p, q)) (sub arity) (sub arity) in
    frequency
      [ (2, base); (3, select); (2, project); (2, product); (2, join); (2, union);
        (2, diff) ]

let gen_scenario =
  QCheck.Gen.(
    int_range 0 3 >>= fun arity ->
    int_range 0 3 >>= fun fuel -> pair (gen_plan fuel arity) gen_state)

let print_scenario (plan, _state) = Format.asprintf "%a" Relalg.pp plan

(* Domain predicates reach the columnar engine through the same per-row
   callback as the row engine; interpret "<" over ints so random plans
   can exercise that path too. *)
let gen_dp_cond arity =
  if arity = 0 then QCheck.Gen.return None
  else
    QCheck.Gen.(
      map2
        (fun a b -> Some (Relalg.Domain_pred ("<", [ a; b ])))
        (gen_arg arity) (gen_arg arity))

let domain_pred name vals =
  match (name, vals) with
  | "<", [ a; b ] -> Value.compare a b < 0
  | _ -> invalid_arg name

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_engines_agree =
  QCheck.Test.make ~name:"row and columnar engines produce equal answers" ~count:600
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, state) ->
      Relation.equal
        (Relalg.eval ~state ~engine:Relalg.Row_engine plan)
        (Relalg.eval ~state ~engine:Relalg.Columnar_engine plan))

let prop_engines_agree_optimized =
  QCheck.Test.make
    ~name:"engines agree on cost-optimized plans (stats from the state)" ~count:400
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun (plan, state) ->
      let stats = Optimizer.Stats.of_state state in
      let opt = Optimizer.optimize_for ~stats ~schema plan in
      Relation.equal
        (Relalg.eval ~state ~engine:Relalg.Row_engine plan)
        (Relalg.eval ~state ~engine:Relalg.Columnar_engine opt))

let prop_engines_agree_domain_pred =
  QCheck.Test.make ~name:"engines agree on domain-predicate selections" ~count:400
    (QCheck.make
       ~print:(fun ((plan, _), _) -> Format.asprintf "%a" Relalg.pp plan)
       QCheck.Gen.(
         gen_scenario >>= fun ((plan, _) as sc) ->
         let arity =
           match Relalg.arity_check ~schema plan with Ok a -> a | Error _ -> 0
         in
         map (fun c -> (sc, c)) (gen_dp_cond arity)))
    (fun ((plan, state), cond) ->
      let plan =
        match cond with None -> plan | Some c -> Relalg.Select (c, plan)
      in
      Relation.equal
        (Relalg.eval ~state ~engine:Relalg.Row_engine ~domain_pred plan)
        (Relalg.eval ~state ~engine:Relalg.Columnar_engine ~domain_pred plan))

(* Verdict agreement: both engines charge one unit plus the output
   cardinality per operator, in the same bottom-up order, so under any
   shared fuel level they either both finish (with equal answers and
   equal remaining fuel) or both trip the governor. *)
type verdict =
  | Answered of Relation.t
  | Tripped of Budget.failure

let run_with_fuel engine ~state ~fuel plan =
  let budget = Budget.make ~fuel () in
  match Budget.guard budget (fun () -> Relalg.eval ~state ~budget ~engine plan) with
  | Ok r -> Answered r
  | Error f -> Tripped f

let verdicts_equal a b =
  match (a, b) with
  | Answered r, Answered r' -> Relation.equal r r'
  | Tripped _, Tripped _ -> true
  | _ -> false

let print_fuel_scenario ((plan, _state), fuel) =
  Format.asprintf "fuel=%d %a" fuel Relalg.pp plan

let prop_verdicts_agree_under_budget =
  QCheck.Test.make
    ~name:"engines settle the same verdict under a shared fuel budget" ~count:600
    (QCheck.make ~print:print_fuel_scenario
       QCheck.Gen.(pair gen_scenario (int_range 0 60)))
    (fun ((plan, state), fuel) ->
      verdicts_equal
        (run_with_fuel Relalg.Row_engine ~state ~fuel plan)
        (run_with_fuel Relalg.Columnar_engine ~state ~fuel plan))

(* ------------------------------------------------------------------ *)
(* Deterministic columnar kernel checks                                *)
(* ------------------------------------------------------------------ *)

let r2 rows = Relation.make ~arity:2 rows

let test_roundtrip () =
  let dict = Columnar.Dict.create () in
  let r =
    r2 [ [ vi 1; vi 2 ]; [ vi 3; vi 4 ]; [ vi 1; vi 2 ]; [ vi 0; vi 9 ] ]
  in
  let b = Columnar.of_relation dict r in
  Alcotest.(check bool)
    "of_relation/to_relation is the identity on sets" true
    (Relation.equal r (Columnar.to_relation dict b))

let test_projection_dedups () =
  (* projecting away the distinguishing column must collapse duplicates *)
  let dict = Columnar.Dict.create () in
  let r = r2 [ [ vi 1; vi 2 ]; [ vi 1; vi 3 ]; [ vi 2; vi 2 ] ] in
  let b = Columnar.of_relation dict r in
  let p = Columnar.to_relation dict (Columnar.project [| 0 |] b) in
  Alcotest.(check int) "two distinct first components" 2 (Relation.cardinal p)

let test_permutation_projection () =
  (* a column permutation is injective on rows: nothing may collapse *)
  let dict = Columnar.Dict.create () in
  let r = r2 [ [ vi 1; vi 2 ]; [ vi 2; vi 1 ]; [ vi 1; vi 1 ] ] in
  let b = Columnar.of_relation dict r in
  let p = Columnar.to_relation dict (Columnar.project [| 1; 0 |] b) in
  Alcotest.(check int) "swap keeps all rows" 3 (Relation.cardinal p);
  Alcotest.(check bool) "swap swaps" true
    (Relation.equal p (r2 [ [ vi 2; vi 1 ]; [ vi 1; vi 2 ]; [ vi 1; vi 1 ] ]))

let () =
  Alcotest.run "columnar"
    [ ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_engines_agree_optimized;
          QCheck_alcotest.to_alcotest prop_engines_agree_domain_pred;
          QCheck_alcotest.to_alcotest prop_verdicts_agree_under_budget ] );
      ( "kernels",
        [ Alcotest.test_case "relation round-trip" `Quick test_roundtrip;
          Alcotest.test_case "projection deduplicates" `Quick test_projection_dedups;
          Alcotest.test_case "permutation projection keeps rows" `Quick
            test_permutation_projection ] ) ]
