(* Tests for Fq_eval: the state-to-formula translation and the paper's
   Section 1.1 enumerate-and-decide query evaluator, exercised over the
   pure-equality domain (the intro's father/son database) and N_<. *)

open Fq_db
module Formula = Fq_logic.Formula
module Enumerate = Fq_eval.Enumerate
module Translate = Fq_eval.Translate

let parse = Fq_logic.Parser.formula_exn
let s = Value.str
let v = Value.int
let rel = Alcotest.testable Relation.pp Relation.equal

(* the paper's running example: one binary father/son relation *)
let schema = Schema.make [ ("F", 2) ]

let family =
  Relation.make ~arity:2
    [ [ s "adam"; s "cain" ]; [ s "adam"; s "abel" ]; [ s "cain"; s "enoch" ];
      [ s "enoch"; s "irad" ] ]

let state = State.make ~schema [ ("F", family) ]
let eq_domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain)

(* ---------------------------- translation -------------------------- *)

let test_translate () =
  let f = parse "F(x, y)" in
  match Translate.formula ~domain:eq_domain ~state f with
  | Error e -> Alcotest.fail e
  | Ok f' ->
    (* the translated formula is pure: no database predicate left *)
    Alcotest.(check (list (pair string int))) "no predicates" [] (Formula.preds f');
    Alcotest.(check int) "disjunction of four tuples" 4
      (List.length (Formula.disjuncts f'))

let test_translate_constants () =
  let sch = Schema.make ~constants:[ "c" ] [ ("R", 1) ] in
  let st =
    State.make ~schema:sch ~constants:[ ("c", s "w") ]
      [ ("R", Relation.make ~arity:1 [ [ s "a" ] ]) ]
  in
  let f = parse "R(x) /\\ x = @c" in
  (match Translate.formula ~domain:eq_domain ~state:st f with
  | Error e -> Alcotest.fail e
  | Ok f' ->
    Alcotest.(check bool) "scheme constant replaced" false
      (List.exists Fq_logic.Term.is_scheme_const (Formula.consts f')));
  (* uninterpreted scheme constant *)
  let f2 = parse "x = @missing" in
  Alcotest.(check bool) "missing constant is an error" true
    (Result.is_error (Translate.formula ~domain:eq_domain ~state:st f2))

let test_active_domain () =
  let f = parse "F(x, y) \\/ x = \"seth\"" in
  let adom = Translate.active_domain ~domain:eq_domain ~state f in
  Alcotest.(check int) "state values plus query constant" 6 (List.length adom);
  Alcotest.(check bool) "seth included" true (List.exists (Value.equal (s "seth")) adom)

(* --------------------------- tuple streams ------------------------- *)

let test_tuple_enumeration () =
  let enum () = List.to_seq [ v 0; v 1; v 2; v 3; v 4 ] in
  let pairs = List.of_seq (Seq.take 9 (Enumerate.tuples ~arity:2 enum)) in
  Alcotest.(check int) "nine pairs over first three elements" 9 (List.length pairs);
  Alcotest.(check bool) "fair: (2,2) appears among first 9" true
    (List.exists (fun t -> t = [ v 2; v 2 ]) pairs);
  Alcotest.(check int) "no duplicates" 9 (List.length (List.sort_uniq compare pairs));
  let empties = List.of_seq (Enumerate.tuples ~arity:0 enum) in
  Alcotest.(check int) "single empty tuple" 1 (List.length empties)

(* ------------------------- the 1.1 algorithm ----------------------- *)

let run_finite f =
  match Enumerate.run ~fuel:30_000 ~domain:eq_domain ~state (parse f) with
  | Ok (Enumerate.Finite r) -> r
  | Ok (Enumerate.Out_of_fuel _) -> Alcotest.failf "%s: out of fuel" f
  | Error e -> Alcotest.failf "%s: %s" f e

let test_intro_queries () =
  (* M(x): men with at least two sons *)
  let m = run_finite "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  Alcotest.check rel "M(x) = {adam}" (Relation.make ~arity:1 [ [ s "adam" ] ]) m;
  (* G(x,z): grandfathers *)
  let g = run_finite "exists y. F(x, y) /\\ F(y, z)" in
  Alcotest.check rel "G = {(adam,enoch), (cain,irad)}"
    (Relation.make ~arity:2 [ [ s "adam"; s "enoch" ]; [ s "cain"; s "irad" ] ])
    g

let test_sentences () =
  let yes = run_finite "exists x y. F(x, y)" in
  Alcotest.(check int) "true sentence: nonempty nullary" 1 (Relation.cardinal yes);
  let no = run_finite "exists x. F(x, x)" in
  Alcotest.(check int) "false sentence: empty nullary" 0 (Relation.cardinal no)

let test_empty_answer () =
  let r = run_finite "F(x, x)" in
  Alcotest.(check bool) "no self-fathering" true (Relation.is_empty r)

let test_unsafe_runs_out_of_fuel () =
  (* ¬F(x,y) has an infinite answer: the algorithm must not terminate
     with a Finite verdict *)
  match Enumerate.run ~fuel:300 ~domain:eq_domain ~state (parse "~F(x, y)") with
  | Ok (Enumerate.Out_of_fuel partial) ->
    Alcotest.(check bool) "found some tuples" true (Relation.cardinal partial > 0)
  | Ok (Enumerate.Finite _) -> Alcotest.fail "unsafe query reported finite"
  | Error e -> Alcotest.fail e

let test_mixed_unsafe_union () =
  (* the intro's M(x) ∨ G(x,z): infinite because M(x) leaves z loose
     (adam has two sons) *)
  let f = "(exists y w. y != w /\\ F(x, y) /\\ F(x, w)) \\/ (exists y. F(x, y) /\\ F(y, z))" in
  match Enumerate.run ~fuel:300 ~domain:eq_domain ~state (parse f) with
  | Ok (Enumerate.Out_of_fuel _) -> ()
  | Ok (Enumerate.Finite r) ->
    Alcotest.failf "reported finite: %s" (Format.asprintf "%a" Relation.pp r)
  | Error e -> Alcotest.fail e

let test_decide_cache () =
  let module DC = Fq_domain.Decide_cache in
  let f = parse "exists y. F(x, y) /\\ F(y, z)" in
  let uncached =
    match Enumerate.run ~domain:eq_domain ~state f with
    | Ok (Enumerate.Finite r) -> r
    | _ -> Alcotest.fail "uncached run not finite"
  in
  let cache = DC.create () in
  let cached_run () =
    match Enumerate.run ~cache ~domain:eq_domain ~state f with
    | Ok (Enumerate.Finite r) -> r
    | _ -> Alcotest.fail "cached run not finite"
  in
  Alcotest.check rel "cached answer = uncached answer" uncached (cached_run ());
  let cold = DC.stats cache in
  Alcotest.check rel "warm rerun unchanged" uncached (cached_run ());
  let warm = DC.stats cache in
  Alcotest.(check bool) "rerun hits the cache" true (warm.DC.hits > cold.DC.hits);
  Alcotest.(check int) "rerun adds no entries" cold.DC.entries warm.DC.entries

(* the LRU bound: decisions on distinct sentences evict the least
   recently used entries, and a lookup refreshes recency *)
let test_decide_cache_lru () =
  let module DC = Fq_domain.Decide_cache in
  let sentence i = parse (Printf.sprintf "exists x. x = \"v%d\"" i) in
  let cache = DC.create ~capacity:2 () in
  let decide i =
    match DC.decide cache eq_domain (sentence i) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  decide 0;
  decide 1;
  let s = DC.stats cache in
  Alcotest.(check int) "two entries, none evicted" 0 s.DC.evictions;
  decide 2;
  let s = DC.stats cache in
  Alcotest.(check int) "third entry evicts the LRU" 1 s.DC.evictions;
  Alcotest.(check int) "entries stay at capacity" 2 s.DC.entries;
  (* 1 and 2 are resident; touching 1 makes 2 the LRU, so deciding 0
     again must evict 2, not 1 *)
  decide 1;
  let hits_before = (DC.stats cache).DC.hits in
  decide 0;
  decide 1;
  let s = DC.stats cache in
  Alcotest.(check bool) "touched entry survived the eviction" true (s.DC.hits > hits_before);
  Alcotest.(check int) "re-inserting 0 evicted the untouched 2" 2 s.DC.evictions;
  (* unbounded mode never evicts *)
  let unbounded = DC.create ~capacity:0 () in
  for i = 0 to 9 do
    match DC.decide unbounded eq_domain (sentence i) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  let s = DC.stats unbounded in
  Alcotest.(check int) "capacity 0 retains everything" 10 s.DC.entries;
  Alcotest.(check int) "capacity 0 never evicts" 0 s.DC.evictions

let test_certified_complete () =
  let f = parse "exists y z. y != z /\\ F(x, y) /\\ F(x, z)" in
  let answer = Relation.make ~arity:1 [ [ s "adam" ] ] in
  (match Enumerate.certified_complete ~domain:eq_domain ~state f answer with
  | Ok b -> Alcotest.(check bool) "complete answer certified" true b
  | Error e -> Alcotest.fail e);
  match Enumerate.certified_complete ~domain:eq_domain ~state f (Relation.empty ~arity:1) with
  | Ok b -> Alcotest.(check bool) "incomplete answer rejected" false b
  | Error e -> Alcotest.fail e

(* ------------------------------ over N_< --------------------------- *)

let nat : Fq_domain.Domain.t = (module Fq_domain.Nat_order)

let nat_schema = Schema.make [ ("R", 1) ]

let nat_state =
  State.make ~schema:nat_schema [ ("R", Relation.make ~arity:1 [ [ v 2 ]; [ v 5 ] ]) ]

let test_nat_order_queries () =
  (* elements below some R element: finite *)
  let f = parse "exists y. R(y) /\\ x < y" in
  (match Enumerate.run ~fuel:1_000 ~domain:nat ~state:nat_state f with
  | Ok (Enumerate.Finite r) ->
    Alcotest.(check int) "x < 5: five values" 5 (Relation.cardinal r)
  | Ok (Enumerate.Out_of_fuel _) -> Alcotest.fail "out of fuel"
  | Error e -> Alcotest.fail e);
  (* Fact 2.1's query: the least element above every active-domain
     element — finite (a single value) yet not domain-independent *)
  let lub =
    parse "(forall y. R(y) -> y < x) /\\ (forall z. (forall y. R(y) -> y < z) -> x <= z)"
  in
  match Enumerate.run ~fuel:1_000 ~domain:nat ~state:nat_state lub with
  | Ok (Enumerate.Finite r) ->
    Alcotest.check rel "successor of the max" (Relation.make ~arity:1 [ [ v 6 ] ]) r
  | Ok (Enumerate.Out_of_fuel _) -> Alcotest.fail "out of fuel"
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "fq_eval"
    [ ( "translate",
        [ Alcotest.test_case "relations expand" `Quick test_translate;
          Alcotest.test_case "scheme constants" `Quick test_translate_constants;
          Alcotest.test_case "active domain" `Quick test_active_domain ] );
      ("tuples", [ Alcotest.test_case "fair enumeration" `Quick test_tuple_enumeration ]);
      ( "enumerate",
        [ Alcotest.test_case "intro queries" `Quick test_intro_queries;
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "empty answer" `Quick test_empty_answer;
          Alcotest.test_case "unsafe out of fuel" `Quick test_unsafe_runs_out_of_fuel;
          Alcotest.test_case "unsafe union (intro)" `Quick test_mixed_unsafe_union;
          Alcotest.test_case "decide cache" `Quick test_decide_cache;
          Alcotest.test_case "decide cache LRU" `Quick test_decide_cache_lru;
          Alcotest.test_case "certified completeness" `Quick test_certified_complete ] );
      ("nat_order", [ Alcotest.test_case "queries over N_<" `Quick test_nat_order_queries ]) ]
