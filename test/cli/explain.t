The `explain` subcommand shows how a query is answered: safety check,
compiled plan (or why compilation is inapplicable), answering tier, the
recorded span tree with budget attribution, and the telemetry counters.
Fuel ticks are deterministic; wall-clock is scrubbed.

A safe-range query over the equality domain compiles to RANF algebra:

  $ (../../bin/fq.exe explain -d equality -r "F/2=a,b;b,c;c,d" "exists y. F(x,y)" || echo "exit $?") | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g; s/[0-9.]+ ms/MS ms/g'
  query:   exists y. F(x, y)
  domain:  equality
  engine:  columnar
  safety:  safe-range
  plan:    project[0](F)   [ranf-algebra; columns x]
  verdict: complete via ranf-algebra (3 tuples): {("a"), ("b"), ("c")}
  budget:  8 ticks, MS ms
  spans (ticks total/self):
    query.eval_resilient [verdict=complete:ranf-algebra budget_ticks=8]  ticks=8/0  D.Dms
      tier:ranf-algebra [outcome=answered]  ticks=8/0  D.Dms
        ranf.compile  ticks=0/0  D.Dms
        relalg.eval [out_card=3]  ticks=8/8  D.Dms
  budget attribution (self ticks by span):
    relalg.eval                  8
  cost model (estimated vs observed output cardinality):
    8032a54a  est 3.0       actual 3      project[0]
    93b882fc  est 3.0       actual 3      rel F
  counters:
    relalg.nodes                             2
  histograms (count/sum/min/max):
    relalg.node_card                         n=2 sum=6 min=3 max=3
    relalg.node_card.8032a54a                n=1 sum=3 min=3 max=3
    relalg.node_card.93b882fc                n=1 sum=3 min=3 max=3

A query with a successor-function atom defeats both compiled tiers and is
answered by the Section 1.1 enumeration, whose budget goes to the N' QE:

  $ (../../bin/fq.exe explain -d nat_succ -r "R/1=3;5" "exists y. R(y) /\ x = y'" || echo "exit $?") | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g; s/[0-9.]+ ms/MS ms/g'
  query:   exists y. R(y) /\ x = y'
  domain:  nat_succ
  engine:  columnar
  safety:  not safe-range (free variable(s) x are not range-restricted)
  plan:    enumerate-and-decide (Section 1.1)
  verdict: complete via enumerate (2 tuples): {(4), (6)}
  tier ranf-algebra passed: not safe-range: free variable(s) x are not range-restricted
  budget:  86 ticks, MS ms
  spans (ticks total/self):
    query.eval_resilient [verdict=complete:enumerate budget_ticks=86]  ticks=86/0  D.Dms
      tier:enumerate  ticks=86/0  D.Dms
        enumerate.scan  ticks=86/9  D.Dms
          qe.nat_succ x8  ticks=52/52  D.Dms
          enumerate.certify x2  ticks=25/0  D.Dms
            qe.nat_succ x2  ticks=25/25  D.Dms
  budget attribution (self ticks by span):
    qe.nat_succ                  77
    enumerate.scan               9
  decide cache: 2 hits / 12 lookups (17% hit rate)
  counters:
    decide_cache.hits                        2
    decide_cache.misses                      10
    enumerate.candidates                     9
    enumerate.certifications                 2
    qe.nat_succ.steps                        26

The N_< finitization example: not safe-range, but the answer is finite in
this state because R bounds x from above:

  $ (../../bin/fq.exe explain -d nat_order -r "R/1=2;5" "exists y. R(y) /\ x < y" || echo "exit $?") | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g; s/[0-9.]+ ms/MS ms/g'
  query:   exists y. R(y) /\ x < y
  domain:  nat_order
  engine:  columnar
  safety:  not safe-range (free variable(s) x are not range-restricted)
  plan:    enumerate-and-decide (Section 1.1)
  verdict: complete via enumerate (5 tuples): {(0), (1), (2), (3), (4)}
  tier ranf-algebra passed: not safe-range: free variable(s) x are not range-restricted
  budget:  129 ticks, MS ms
  spans (ticks total/self):
    query.eval_resilient [verdict=complete:enumerate budget_ticks=129]  ticks=129/0  D.Dms
      tier:enumerate  ticks=129/0  D.Dms
        enumerate.scan  ticks=129/7  D.Dms
          qe.nat_order x7  ticks=32/32  D.Dms
          enumerate.certify x5  ticks=90/0  D.Dms
            qe.nat_order x5  ticks=90/90  D.Dms
  budget attribution (self ticks by span):
    qe.nat_order                 122
    enumerate.scan               7
  decide cache: 1 hits / 13 lookups (8% hit rate)
  counters:
    decide_cache.hits                        1
    decide_cache.misses                      12
    enumerate.candidates                     7
    enumerate.certifications                 5
    qe.nat_order.steps                       42

An unsafe Presburger query under a tight budget stops partial (exit 3),
and the attribution shows Cooper's procedure spent the fuel:

  $ (../../bin/fq.exe explain -d presburger -r "R/1=1" --fuel 8 "~R(x)" || echo "exit $?") | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g; s/[0-9.]+ ms/MS ms/g'
  query:   ~R(x)
  domain:  presburger
  engine:  columnar
  safety:  not safe-range (free variable(s) x are not range-restricted)
  plan:    enumerate-and-decide (Section 1.1)
  verdict: partial (fuel exhausted after 2 candidates), 1 tuples so far
  tier ranf-algebra passed: not safe-range: free variable(s) x are not range-restricted
  budget:  9 ticks, MS ms
  spans (ticks total/self):
    query.eval_resilient [verdict=partial budget_ticks=9]  ticks=9/0  D.Dms
      tier:enumerate  ticks=9/0  D.Dms
        enumerate.scan  ticks=9/2  D.Dms
          qe.cooper x3  ticks=3/3  D.Dms
          enumerate.certify  ticks=4/0  D.Dms
            qe.cooper  ticks=4/4  D.Dms
  budget attribution (self ticks by span):
    qe.cooper                    7
    enumerate.scan               2
  decide cache: 0 hits / 4 lookups (0% hit rate)
  counters:
    decide_cache.misses                      4
    enumerate.candidates                     2
    enumerate.certifications                 1
    qe.cooper.steps                          6
  exit 3

A sentence over the trace domain is decided by the Reach QE (Theorem A.3):

  $ (../../bin/fq.exe explain -d traces 'exists p. P("*1**1*1", "11", p)' || echo "exit $?") | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g; s/[0-9.]+ ms/MS ms/g'
  query:   exists p. P("*1**1*1", 11, p)
  domain:  traces
  engine:  columnar
  safety:  not safe-range (quantified variable p is not range-restricted in its scope)
  plan:    enumerate-and-decide (Section 1.1)
  verdict: complete via enumerate (1 tuples): {()}
  tier ranf-algebra passed: not safe-range: quantified variable p is not range-restricted in its scope
  budget:  1 ticks, MS ms
  spans (ticks total/self):
    query.eval_resilient [verdict=complete:enumerate budget_ticks=1]  ticks=1/0  D.Dms
      tier:enumerate  ticks=1/0  D.Dms
        enumerate.sentence  ticks=1/0  D.Dms
          qe.reach  ticks=1/1  D.Dms
  budget attribution (self ticks by span):
    qe.reach                     1
  decide cache: 0 hits / 1 lookups (0% hit rate)
  counters:
    decide_cache.misses                      1
    qe.reach.steps                           1

The --trace and --metrics flags attach the same recording to any
subcommand, rendered on stderr so stdout stays script-stable:

  $ (../../bin/fq.exe decide -d presburger --metrics "exists x. x + x = 8") 2>&1
  true
  counters:
    qe.cooper.steps                          6
  $ (../../bin/fq.exe eval -d equality -r "F/2=a,b" "exists y. F(x,y)" --trace) 2>&1 | sed -E 's/[0-9]+\.[0-9]+ms/D.Dms/g'
  finite answer (1 tuples): {("a")}
  spans (ticks total/self):
    query.eval_resilient [verdict=complete:ranf-algebra budget_ticks=4]  ticks=4/0  D.Dms
      tier:ranf-algebra [outcome=answered]  ticks=4/0  D.Dms
        ranf.compile  ticks=0/0  D.Dms
        relalg.eval [out_card=1]  ticks=4/4  D.Dms

The jsonl sink emits one JSON object per span and counter (timings vary;
check the shape only):

  $ ../../bin/fq.exe eval -d equality -r "F/2=a,b" --trace=jsonl "exists y. F(x,y)" 2>&1 >/dev/null | sed -E 's/"(start_ms|dur_ms|self_ms)": [0-9.]+/"\1": T/g'
  {"type": "span", "name": "query.eval_resilient", "depth": 0, "start_ms": T, "dur_ms": T, "self_ms": T, "ticks": 4, "self_ticks": 0, "attrs": {"verdict": "complete:ranf-algebra", "budget_ticks": 4}}
  {"type": "span", "name": "tier:ranf-algebra", "depth": 1, "start_ms": T, "dur_ms": T, "self_ms": T, "ticks": 4, "self_ticks": 0, "attrs": {"outcome": "answered"}}
  {"type": "span", "name": "ranf.compile", "depth": 2, "start_ms": T, "dur_ms": T, "self_ms": T, "ticks": 0, "self_ticks": 0, "attrs": {}}
  {"type": "span", "name": "relalg.eval", "depth": 2, "start_ms": T, "dur_ms": T, "self_ms": T, "ticks": 4, "self_ticks": 4, "attrs": {"out_card": 1}}
  {"type": "counter", "name": "relalg.nodes", "value": 2}
  {"type": "histogram", "name": "relalg.node_card", "count": 2, "sum": 2, "min": 1, "max": 1}
  {"type": "histogram", "name": "relalg.node_card.8032a54a", "count": 1, "sum": 1, "min": 1, "max": 1}
  {"type": "histogram", "name": "relalg.node_card.93b882fc", "count": 1, "sum": 1, "min": 1, "max": 1}

The chrome sink writes a trace_event JSON array loadable in Perfetto:

  $ ../../bin/fq.exe eval -d equality -r "F/2=a,b" --trace=chrome:trace.json "exists y. F(x,y)" >/dev/null
  trace written to trace.json
  $ sed -E 's/"(ts|dur)": [0-9.]+/"\1": T/g' trace.json
  [
  {"name": "query.eval_resilient", "cat": "fq", "ph": "X", "ts": T, "dur": T, "pid": 1, "tid": 1, "args": {"ticks": 4, "self_ticks": 0, "verdict": "complete:ranf-algebra", "budget_ticks": 4}},
  {"name": "tier:ranf-algebra", "cat": "fq", "ph": "X", "ts": T, "dur": T, "pid": 1, "tid": 1, "args": {"ticks": 4, "self_ticks": 0, "outcome": "answered"}},
  {"name": "ranf.compile", "cat": "fq", "ph": "X", "ts": T, "dur": T, "pid": 1, "tid": 1, "args": {"ticks": 0, "self_ticks": 0}},
  {"name": "relalg.eval", "cat": "fq", "ph": "X", "ts": T, "dur": T, "pid": 1, "tid": 1, "args": {"ticks": 4, "self_ticks": 4, "out_card": 1}},
  {"name": "metrics", "cat": "fq", "ph": "i", "ts": T, "pid": 1, "tid": 1, "s": "g", "args": {"relalg.nodes": 2}}
  ]
