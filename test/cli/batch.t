Supervised batch evaluation: many (domain, formula) jobs under one
worker pool, with per-job budgets, crash isolation, and retries.

  $ ../../bin/fq.exe batch -d equality -r "F/2=adam,cain;adam,abel;cain,enoch" \
  >   "exists y. F(x, y)" \
  >   "exists y z. y != z /\ F(x, y) /\ F(x, z)" \
  >   'F("adam", x)'
  [0] complete via ranf-algebra (2 tuples): {("adam"), ("cain")}
  [1] complete via ranf-algebra (1 tuples): {("adam")}
  [2] complete via ranf-algebra (2 tuples): {("abel"), ("cain")}
  batch: 3 jobs, 3 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

The output is ordered and identical whatever --jobs is:

  $ ../../bin/fq.exe batch --jobs 4 -d equality -r "F/2=adam,cain;adam,abel;cain,enoch" \
  >   "exists y. F(x, y)" \
  >   "exists y z. y != z /\ F(x, y) /\ F(x, z)" \
  >   'F("adam", x)'
  [0] complete via ranf-algebra (2 tuples): {("adam"), ("cain")}
  [1] complete via ranf-algebra (1 tuples): {("adam")}
  [2] complete via ranf-algebra (2 tuples): {("abel"), ("cain")}
  batch: 3 jobs, 3 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

Jobs can come from a file, one per line, optionally DOMAIN<TAB>FORMULA;
blank lines and # comments are skipped:

  $ printf '# fleet\nexists y. F(x, y)\nnat_order\texists y. R(y) /\\ x < y\n' > fleet.txt
  $ ../../bin/fq.exe batch -d equality -r "F/2=adam,cain" -r "R/1=2" --file fleet.txt
  [0] complete via ranf-algebra (1 tuples): {("adam")}
  [1] complete via enumerate (2 tuples): {(0), (1)}
  batch: 2 jobs, 2 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

An unsafe query on a small budget ends partial: the whole batch exits 3,
and the retries spent the job's fair fuel shares before giving up.

  $ ../../bin/fq.exe batch -d nat_order -r "R/1=1" --fuel 40 "~R(x)"
  [0] partial after 6 candidates (fuel exhausted), 4 tuples so far (retried 2)
  batch: 1 jobs, 0 complete, 1 partial, 0 failed, 2 retries, 0 breaker trips, 0 evictions
  [3]

A malformed job is an isolated failure, not a batch abort:

  $ ../../bin/fq.exe batch -d equality -r "F/1=a;b" "F(x" "F(x)"
  [0] failed: parse error: expected ')' closing the argument list but found end of input (token 3)
  [1] complete via ranf-algebra (2 tuples): {("a"), ("b")}
  batch: 2 jobs, 1 complete, 0 partial, 1 failed, 0 retries, 0 breaker trips, 0 evictions
  [1]

Deterministic fault drills: --chaos-seed injects faults on a schedule
that is a pure function of (seed, site, hit), so runs replay exactly.
Seed 19 kills the compiled tiers and two scan attempts; the supervisor's
retries ride the resume token down the degradation chain to the same
answer the clean run gives.

  $ ../../bin/fq.exe batch --chaos-seed 19 --chaos-permille 100 --retries 4 --fuel 40000 \
  >   -d equality -r "F/2=adam,cain;adam,abel" "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  [0] complete via enumerate (1 tuples): {("adam")} (retried 3)
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 3 retries, 0 breaker trips, 0 evictions

Seed 7 is a hard injected crash: contained, classified, reported — the
run never sees a raw exception.

  $ ../../bin/fq.exe batch --chaos-seed 7 --chaos-permille 100 --retries 4 --fuel 40000 \
  >   -d equality -r "F/2=adam,cain;adam,abel" "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  [0] crashed: fault at relalg.node: injected crash
  batch: 1 jobs, 0 complete, 0 partial, 1 failed, 0 retries, 0 breaker trips, 0 evictions
  [1]

An unwritable chrome trace sink is a structured usage error (exit 4),
diagnosed before the run instead of crashing after it:

  $ ../../bin/fq.exe eval -d equality -r "F/1=a" --trace=chrome:/nonexistent/t.json "F(x)"
  error: unsupported: trace sink: /nonexistent/t.json: No such file or directory
  [4]

Batch with no jobs at all is a usage error:

  $ ../../bin/fq.exe batch -d equality
  error: batch: no formulas (positional FORMULA... or --file FILE)
  [1]
