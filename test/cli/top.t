The observability plane end to end: a server with head-based trace
sampling (1-in-1 so every request is kept), a slow-query log whose
threshold of 0 ms logs every eval, and a metrics file.

  $ ../../bin/fq.exe serve --socket fq.sock -d equality \
  >   -r "F/2=adam,cain;adam,abel" --trace-sample 1 --slow-ms 0 \
  >   --slow-log slow.jsonl --metrics-file metrics.prom 2> server.log &
  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}

A client-chosen trace id (--trace-prefix stamps job i with PREFIX-i)
rides the request and is echoed verbatim in the matching reply:

  $ ../../bin/fq.exe batch --connect fq.sock -d equality \
  >   --trace-prefix job "exists y. F(x,y)"
  [0] complete via ranf-algebra (1 tuples): {("adam")} [trace job-0]
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

The same id names the request's sampled span tree in the trace ring:

  $ ../../bin/fq.exe ctl fq.sock traces | grep -o '"trace":"job-0"'
  "trace":"job-0"
  $ ../../bin/fq.exe ctl fq.sock traces | grep -o '"sample_every":1'
  "sample_every":1

...and the slow-query log entry for the (0 ms threshold) request:

  $ grep -o '"trace":"job-0"' slow.jsonl
  "trace":"job-0"

The entry replays offline — trace, chosen plan, and the cost model's
estimates against the cardinalities the server actually observed —
without needing the server's state:

  $ ../../bin/fq.exe explain --from-log slow.jsonl \
  >   | sed -E 's/[0-9]+ ticks, [0-9.]+ ms/T ticks, MS ms/'
  slow-query log: slow.jsonl, entry 0 of 1
  trace:   job-0   (request id 0, client c3)
  domain:  equality   (epoch 1)
  formula: exists y. F(x,y)
  verdict: complete via ranf-algebra
  budget:  T ticks, MS ms
  planned: ranf-algebra
  plan:    project[0](F)
  cost model (estimated vs observed output cardinality):
    8032a54a  est 2.0       actual 1
    93b882fc  est 2.0       actual 2
  replay:  fq explain -d equality 'exists y. F(x,y)'

The metrics op serves the versioned Prometheus text exposition; the
grammar is pinned here (HELP/TYPE headers, sorted labeled samples,
log-bucketed histogram with only advancing buckets plus +Inf):

  $ ../../bin/fq.exe ctl fq.sock metrics | head -1
  # fq-metrics-exposition 1
  $ ../../bin/fq.exe ctl fq.sock metrics | grep -A 2 '# HELP fq_eval_outcomes_total'
  # HELP fq_eval_outcomes_total Eval replies by domain, epoch, status and answering tier.
  # TYPE fq_eval_outcomes_total counter
  fq_eval_outcomes_total{domain="equality",epoch="1",status="complete",tier="ranf-algebra"} 1
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_requests_total'
  fq_requests_total{op="eval"} 1
  fq_requests_total{op="fleet-status"} 1
  fq_requests_total{op="metrics"} 4
  fq_requests_total{op="ping"} 1
  fq_requests_total{op="traces"} 2
  $ ../../bin/fq.exe ctl fq.sock metrics \
  >   | grep '^fq_request_fuel_ticks_count{domain="equality",epoch="1"}'
  fq_request_fuel_ticks_count{domain="equality",epoch="1"} 1

fq top --once --json takes one machine-readable sample of the same
numbers (quantiles and rates come from the log-bucketed histograms):

  $ ../../bin/fq.exe top fq.sock --once --json > top.json
  $ grep -o '"outcomes":{[^}]*}' top.json
  "outcomes":{"complete":1}
  $ grep -o '"sample_every":[0-9]*' top.json
  "sample_every":1
  $ grep -o '"trace":"job-0"' top.json
  "trace":"job-0"

Graceful shutdown also dumps the metrics file atomically:

  $ ../../bin/fq.exe ctl fq.sock shutdown
  {"id":"ctl","ok":true,"draining":true}
  $ wait
  $ head -1 metrics.prom
  # fq-metrics-exposition 1
  $ grep -c '^fq_eval_outcomes_total' metrics.prom
  1
