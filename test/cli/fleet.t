fq fleet: a supervised multi-process fleet of fq serve workers.  The
parent keeps the base address as a control socket; worker i listens on
ADDR.i with its own journal, all sharing one parent-owned snapshot:

  $ ../../bin/fq.exe fleet --socket fq.sock --workers 2 --snapshot snap.fq \
  >   -d equality -r "F/2=adam,cain;adam,abel;cain,enoch" 2> fleet.log &
  $ FLEET=$!

fq ctl retries while the fleet boots; ping is the readiness barrier:

  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}

fleet-status reports the live topology (clients discover workers from
this — pids vary, so scrub them):

  $ ../../bin/fq.exe ctl fq.sock fleet-status | sed -E 's/"pid":[0-9]+/"pid":PID/g'
  {"id":"ctl","ok":true,"fleet":true,"workers":[{"worker":"w0","addr":"unix:fq.sock.0","up":true,"pid":PID,"restarts":0},{"worker":"w1","addr":"unix:fq.sock.1","up":true,"pid":PID,"restarts":0}]}

fq batch --connect discovers the workers behind the control address and
spreads its jobs across them — output identical to a single server:

  $ ../../bin/fq.exe batch --connect fq.sock -d equality \
  >   "exists y. F(x,y)" 'F("adam", x)'
  [0] complete via ranf-algebra (2 tuples): {("adam"), ("cain")}
  [1] complete via ranf-algebra (2 tuples): {("abel"), ("cain")}
  batch: 2 jobs, 2 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

kill -9 one worker: the supervisor reaps it and respawns it after the
backoff, and clients keep being served by the survivor meanwhile:

  $ W0=$(../../bin/fq.exe ctl fq.sock fleet-status \
  >   | sed -E 's/.*"worker":"w0","addr":"[^"]*","up":true,"pid":([0-9]+).*/\1/')
  $ kill -9 $W0
  $ sleep 2
  $ ../../bin/fq.exe batch --connect fq.sock -d presburger \
  >   "forall x. exists y. x < y"
  [0] complete via enumerate (1 tuples): {()}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions
  $ ../../bin/fq.exe ctl fq.sock fleet-status | sed -E 's/"pid":[0-9]+/"pid":PID/g'
  {"id":"ctl","ok":true,"fleet":true,"workers":[{"worker":"w0","addr":"unix:fq.sock.0","up":true,"pid":PID,"restarts":1},{"worker":"w1","addr":"unix:fq.sock.1","up":true,"pid":PID,"restarts":0}]}

A rolling reload swaps the fleet onto a new database one worker at a
time — the fleet never serves zero workers.  A broken file rolls nobody:

  $ cat > state2.db <<'EOF'
  > F/2=eve,seth
  > EOF
  $ cat > broken.db <<'EOF'
  > not a database
  > EOF
  $ ../../bin/fq.exe ctl fq.sock reload broken.db
  {"id":"ctl","status":"malformed","reason":"reload: state file broken.db: bad constant spec \"not a database\" (want NAME=VALUE)"}
  $ ../../bin/fq.exe ctl fq.sock reload state2.db
  {"id":"ctl","ok":true,"workers_reloaded":2}
  $ ../../bin/fq.exe batch --connect fq.sock -d equality "exists y. F(x,y)"
  [0] complete via ranf-algebra (1 tuples): {("eve")}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

Fleet-level metrics: per-worker liveness and restart counters, plus the
parent's compaction and snapshot families:

  $ ../../bin/fq.exe ctl fq.sock metrics | head -1
  # fq-metrics-exposition 1
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_fleet_worker_up'
  fq_fleet_worker_up{worker="w0"} 1
  fq_fleet_worker_up{worker="w1"} 1
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_fleet_restarts_total'
  fq_fleet_restarts_total{worker="w0"} 1
  fq_fleet_restarts_total{worker="w1"} 0
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_journal_compactions_total'
  fq_journal_compactions_total 0

SIGTERM drains gracefully: every worker answers what it admitted, every
journal is folded into the shared snapshot, and the exit is clean:

  $ kill -TERM $FLEET
  $ wait $FLEET
  $ grep -c 'SIGTERM received, draining' fleet.log
  1
  $ grep 'killed by' fleet.log
  fq fleet: w0: killed by SIGKILL
  $ grep 'restarting' fleet.log
  fq fleet: w0: restarting in 100ms (restart 1)
  $ grep -c 'reloaded (epoch 2)' fleet.log
  2
  $ tail -1 fleet.log
  fq fleet: shutdown complete — 2 workers, 1 restarts, 1 reloads, 1 journal records folded

The journals were folded and removed; the snapshot carries the verdict
the worker learned, so the next fleet warm-boots with it:

  $ ls snap.fq*
  snap.fq
  $ cat snap.fq
  fq-decide-cache 1
  ok	true	forall v0. exists v1. v0 < v1
