fq serve: a persistent query service over a Unix socket, speaking
newline-delimited JSON.  Boot one over a small family database, with a
decide-cache snapshot for warm restarts:

  $ ../../bin/fq.exe serve --socket fq.sock --snapshot snap.fq \
  >   -d equality -r "F/2=adam,cain;adam,abel;cain,enoch" 2> server.log &

fq ctl retries the connection while the server boots, so the ping
doubles as the readiness barrier:

  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}

Round-trip: fq batch --connect sends its jobs to the live server over
one pipelined connection, output identical to a local pool run:

  $ ../../bin/fq.exe batch --connect fq.sock -d equality \
  >   "exists y. F(x,y)" 'F("adam", x)'
  [0] complete via ranf-algebra (2 tuples): {("adam"), ("cain")}
  [1] complete via ranf-algebra (2 tuples): {("abel"), ("cain")}
  batch: 2 jobs, 2 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

A query that exhausts its budget comes back partial, with resume
evidence, and the client exits 3 (the one Outcome exit-code mapping):

  $ ../../bin/fq.exe batch --connect fq.sock --json -d equality --fuel 5 \
  >   "~F(x, y)" > partial.json
  batch: 1 jobs, 0 complete, 1 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions
  [3]
  $ sed -E 's/"elapsed_ms":[0-9.e+-]*/"elapsed_ms":MS/' partial.json
  {"status":"partial","reason":"budget: fuel exhausted","tuples":{"arity":2,"rows":[]},"resume":{"seen":0,"found":{"arity":2,"rows":[]}},"usage":{"ticks":6,"elapsed_ms":MS},"attempts":[{"tier":"ranf-algebra","reason":"not safe-range: free variable(s) x, y are not range-restricted"}]}

A decidable sentence warms the shared decide cache:

  $ ../../bin/fq.exe batch --connect fq.sock -d presburger \
  >   "forall x. exists y. x < y"
  [0] complete via enumerate (1 tuples): {()}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

The served Outcome JSON is byte-identical to fq eval --json on the same
state (the schema is defined once, in Outcome):

  $ ../../bin/fq.exe eval --json -d equality -r "F/2=adam,cain;adam,abel;cain,enoch" \
  >   "exists y. F(x,y)" \
  >   | sed -E 's/"elapsed_ms":[0-9.e+-]*/"elapsed_ms":MS/' > eval.scrub
  $ ../../bin/fq.exe batch --connect fq.sock --json -d equality "exists y. F(x,y)" 2> /dev/null \
  >   | sed -E 's/"elapsed_ms":[0-9.e+-]*/"elapsed_ms":MS/' > batch.scrub
  $ diff eval.scrub batch.scrub && cat eval.scrub
  {"status":"complete","tier":"ranf-algebra","answer":{"arity":1,"rows":[["adam"],["cain"]]},"usage":{"ticks":7,"elapsed_ms":MS},"attempts":[]}

Live metrics (the versioned Prometheus exposition — deterministically
sorted, so scrapes diff cleanly), explain, and an on-demand snapshot:

  $ ../../bin/fq.exe ctl fq.sock metrics | head -1
  # fq-metrics-exposition 1
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_engine_events_total{name="serve.eval.complete"}'
  fq_engine_events_total{name="serve.eval.complete"} 4
  $ ../../bin/fq.exe ctl fq.sock metrics | grep '^fq_eval_outcomes_total'
  fq_eval_outcomes_total{domain="equality",epoch="1",status="complete",tier="ranf-algebra"} 3
  fq_eval_outcomes_total{domain="equality",epoch="1",status="partial",tier="enumerate"} 1
  fq_eval_outcomes_total{domain="presburger",epoch="1",status="complete",tier="enumerate"} 1
  $ ../../bin/fq.exe ctl fq.sock explain "exists y. F(x,y)"
  {"id":"ctl","ok":true,"domain":"equality","safety":"safe-range","tier":"ranf-algebra","plan":"project[0](F)"}
  $ ../../bin/fq.exe ctl fq.sock snapshot
  {"id":"ctl","ok":true,"entries":1}

Graceful shutdown drains, answers, writes the snapshot, and logs a
summary:

  $ ../../bin/fq.exe ctl fq.sock shutdown
  {"id":"ctl","ok":true,"draining":true}
  $ wait
  $ cat server.log
  fq serve: listening on unix:fq.sock (4 workers, 256 in-flight cap)
  fq serve: snapshot written (1 entries, shutdown) to snap.fq
  fq serve: shutdown complete — 19 requests served (4 complete, 1 partial, 0 unsupported, 0 error), 0 rejected
  $ cat snap.fq
  fq-decide-cache 1
  ok	true	forall v0. exists v1. v0 < v1

A restarted server loads the snapshot and starts warm — previously seen
sentences never re-pay quantifier elimination:

  $ ../../bin/fq.exe serve --socket fq.sock --snapshot snap.fq \
  >   -d equality -r "F/2=adam,cain" 2> server2.log &
  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}
  $ ../../bin/fq.exe ctl fq.sock shutdown
  {"id":"ctl","ok":true,"draining":true}
  $ wait
  $ head -1 server2.log
  fq serve: warm start, 1 cached verdicts loaded
