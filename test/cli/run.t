Decide sentences over the built-in domains (Corollary A.4 and Section 2):

  $ ../../bin/fq.exe decide -d presburger "forall x. exists y. x < y"
  true
  $ ../../bin/fq.exe decide -d presburger "exists x. x + x = 7"
  false
  $ ../../bin/fq.exe decide -d nat_succ "exists y. forall x. x' != y"
  true
  $ ../../bin/fq.exe decide -d equality "exists x y z. x != y /\ y != z /\ x != z"
  true

The safe-range syntax (Section 1.4):

  $ ../../bin/fq.exe safety -s F/2 "exists y. F(x, y)"
  safe-range: the query is finite in every state
  $ ../../bin/fq.exe safety -s F/2 "~F(x, y)"
  not safe-range: free variable(s) x, y are not range-restricted

Evaluation and relative safety in a state (Sections 1.1 and 1.3):

  $ ../../bin/fq.exe eval -d equality -r "F/2=adam,cain;adam,abel" "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  finite answer (1 tuples): {("adam")}
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ x < y"
  finite in this state
  $ ../../bin/fq.exe relsafe -d presburger -r "R/1=2;5" "exists y. R(y) /\ y < x"
  INFINITE in this state

The full report:

  $ ../../bin/fq.exe report -d equality -r "F/2=a,b;b,c" "exists y. F(x, y) /\ F(y, z)"
  query: exists y. F(x, y) /\ F(y, z)
  syntactic: safe-range (finite in every state)
  in this state: finite
  answer (ranf-algebra, 1 tuples): {("a", "c")}
  

Turing machines of the trace domain (Section 3):

  $ ../../bin/fq.exe tm -m scan_right -w 111
  halts after 3 steps; result "111"
  $ ../../bin/fq.exe tm -m loop -w 1 --fuel 100
  still running after 100 steps
  [3]
  $ ../../bin/fq.exe tm -m scan_right -w 11 --explain
  halts after 2 steps; result "11"
  trace of machine "*1**1*1" on input "11" (3 snapshots)
     0: state q1   | tape [1]1
     1: state q1   | tape 1[1]
     2: state q1   | tape 11[-]

The Theorem 3.3 reduction:

  $ ../../bin/fq.exe halting -m parity -w 11
  the machine halts after 2 steps: the query P(M, @c, x) is finite in the state c = "11", with 3 certified answer tuples
  $ ../../bin/fq.exe halting -m loop -w 1 --fuel 50
  no halt within 50 steps: at least 50 answer tuples so far (if the machine diverges, the answer is infinite — and Theorem 3.3 says no procedure can always tell)
  [3]

The resource governor (exit codes: 0 complete, 3 partial/budget-exhausted,
4 unsupported). An unsafe query over an infinite domain can only ever get a
partial answer; the governor reports it and exits 3 instead of hanging:

  $ ../../bin/fq.exe eval -d presburger -r "R/1=1" --fuel 8 "~R(x)"
  fuel exhausted; partial answer (1 tuples): {(0)}
  (the answer may be infinite — relative safety is the hard part)
  [3]
  $ (../../bin/fq.exe eval -d presburger -r "R/1=1" --fuel 8 --verbose "~R(x)" || echo "exit $?") | sed 's/[0-9.]* ms/MS ms/'
  partial (fuel exhausted after 2 candidates): 1 tuples so far
  tier ranf-algebra passed: not safe-range: free variable(s) x are not range-restricted
  spent: 9 ticks, MS ms
  exit 3

A wall-clock deadline trips the same way (the step count depends on machine
speed, so only its shape is checked):

  $ (../../bin/fq.exe tm -m loop -w 1 --fuel 1000000000 --timeout-ms 5 || echo "exit $?") | sed 's/after [0-9]* steps/after N steps/'
  still running after N steps
  exit 3

Inputs outside an engine's supported fragment exit 4 with a structured
message — here Cooper's divisor-elimination would need an expansion range
beyond the native word (three 30-bit prime divisors):

  $ ../../bin/fq.exe decide -d presburger "exists x. 1000000007 | x /\ 998244353 | x /\ 1000000009 | x"
  error: unsupported: Cooper: divisor lcm 998244368971909710889394239 exceeds the native expansion range
  [4]

Budgeted evaluations that complete give exactly the un-budgeted answer:

  $ ../../bin/fq.exe eval -d equality -r "F/2=adam,cain;adam,abel" --fuel 10000 --timeout-ms 10000 "exists y z. y != z /\ F(x, y) /\ F(x, z)"
  finite answer (1 tuples): {("adam")}
