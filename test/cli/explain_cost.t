The cost model in `explain`: per plan node, the optimizer's estimated
output cardinality next to the cardinality the run actually observed
(the relalg.node_card.<fingerprint> histograms). The join-order line
shows the left-deep spine the evaluator executes.

On the grandfather self-join the textbook estimate divides |F ⋈ F| = 16
by the larger distinct count of the key columns (4), overshooting the
true output (2):

  $ ../../bin/fq.exe explain -d equality -r "F/2=adam,cain;adam,abel;cain,enoch;enoch,irad" "exists y. F(x,y) /\ F(y,z)" --stats-out prof.txt | grep -E "join order|cost model|est|profile"
  join order: F, F (left-deep: the prefix probes, each new factor builds)
  cost model (estimated vs observed output cardinality):
    4563cbcb  est 4.0       actual 2      project[0,3]
    76744e9f  est 4.0       actual 2      join[1=0]
    93b882fc  est 4.0       actual 4      rel F
  stats profile written to prof.txt

The profile it wrote is FINGERPRINT COUNT MEAN, one line per node:

  $ cat prof.txt
  # fq stats profile: FINGERPRINT COUNT MEAN (relalg node output cardinality)
  4563cbcb 1 2
  76744e9f 1 2
  93b882fc 2 4

Feeding the profile back closes the loop: profiled nodes now estimate
their observed cardinality, correcting the overshoot:

  $ ../../bin/fq.exe explain -d equality -r "F/2=adam,cain;adam,abel;cain,enoch;enoch,irad" --stats prof.txt "exists y. F(x,y) /\ F(y,z)" | grep -E "  est|cost model"
  cost model (estimated vs observed output cardinality):
    4563cbcb  est 2.0       actual 2      project[0,3]
    76744e9f  est 2.0       actual 2      join[1=0]
    93b882fc  est 4.0       actual 4      rel F

A malformed profile is a diagnosed error, not a crash:

  $ printf 'deadbeef not-a-count\n' > bad.txt
  $ ../../bin/fq.exe eval -d equality -r "F/2=a,b" --stats bad.txt "F(x,y)"
  error: stats file bad.txt, line 1: expected "FINGERPRINT COUNT MEAN"
  [1]

Both engines answer identically; --engine selects which one runs the
compiled plan (the span's out_card and ticks agree across engines):

  $ ../../bin/fq.exe eval -d equality --engine=columnar -r "F/2=a,b;b,c" "exists y. F(x,y)"
  finite answer (2 tuples): {("a"), ("b")}
  $ ../../bin/fq.exe eval -d equality --engine=row -r "F/2=a,b;b,c" "exists y. F(x,y)"
  finite answer (2 tuples): {("a"), ("b")}
  $ ../../bin/fq.exe explain -d equality --engine=row -r "F/2=a,b;b,c" "exists y. F(x,y)" | grep engine
  engine:  row
