Crash-safe serving: hot state reload (fq ctl + SIGHUP) and journal
recovery after an unclean death.

Boot over a --state-file, with a snapshot; the decide-cache journal
rides next to the snapshot automatically:

  $ cat > state.db <<EOF
  > F/2=adam,cain;adam,abel
  > EOF
  $ ../../bin/fq.exe serve --socket fq.sock --snapshot snap.fq \
  >   --state-file state.db -d equality 2> server.log &
  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}

Epoch 1 serves the file as written:

  $ ../../bin/fq.exe batch --connect fq.sock -d equality "exists y. F(x,y)"
  [0] complete via ranf-algebra (1 tuples): {("adam")}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

A pathless reload re-reads --state-file and swaps the served database
behind the epoch pointer — zero downtime, no dropped connections:

  $ cat > state.db <<EOF
  > F/2=adam,cain;cain,enoch
  > EOF
  $ ../../bin/fq.exe ctl fq.sock reload
  {"id":"ctl","ok":true,"epoch":2}
  $ ../../bin/fq.exe batch --connect fq.sock -d equality "exists y. F(x,y)"
  [0] complete via ranf-algebra (2 tuples): {("adam"), ("cain")}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

SIGHUP does the same swap, picked up by the accept loop; health reports
the live epoch (and queue/breaker state) without touching the pool:

  $ cat > state.db <<EOF
  > F/2=eve,seth
  > EOF
  $ kill -HUP $!
  $ for i in $(seq 1 100); do
  >   ../../bin/fq.exe ctl fq.sock health | grep -q '"epoch":3' && break
  >   sleep 0.1
  > done
  $ ../../bin/fq.exe ctl fq.sock health | grep -o '"epoch":3'
  "epoch":3
  $ ../../bin/fq.exe batch --connect fq.sock -d equality "exists y. F(x,y)"
  [0] complete via ranf-algebra (1 tuples): {("eve")}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions

A fresh decidable verdict is journaled the moment it lands — one
CRC-framed record per verdict:

  $ ../../bin/fq.exe batch --connect fq.sock -d presburger "forall x. exists y. x < y"
  [0] complete via enumerate (1 tuples): {()}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions
  $ head -1 snap.fq.journal
  fq-decide-journal 1
  $ cut -f2- < snap.fq.journal | tail -n +2
  ok	true	forall v0. exists v1. v0 < v1

An unclean death (kill -9, no snapshot ever written) loses nothing the
journal holds: reboot replays it and the verdict is already warm:

  $ kill -9 $!
  $ wait
  $ ../../bin/fq.exe serve --socket fq.sock --snapshot snap.fq \
  >   --state-file state.db -d equality 2> server2.log &
  $ ../../bin/fq.exe ctl fq.sock ping
  {"id":"ctl","ok":true}
  $ grep recovered server2.log
  fq serve: journal recovered 1 records (0 skipped, 0 torn bytes) from snap.fq.journal
  $ ../../bin/fq.exe batch --connect fq.sock -d presburger "forall x. exists y. x < y"
  [0] complete via enumerate (1 tuples): {()}
  batch: 1 jobs, 1 complete, 0 partial, 0 failed, 0 retries, 0 breaker trips, 0 evictions
  $ ../../bin/fq.exe ctl fq.sock shutdown
  {"id":"ctl","ok":true,"draining":true}
  $ wait

With --timeout-ms, fq ctl against a dead or wedged address exits 4
instead of hanging:

  $ ../../bin/fq.exe ctl --timeout-ms 200 nobody-home.sock ping
  error: unsupported: timed out connecting to unix:nobody-home.sock
  [4]
