module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Value = Fq_db.Value
module Relation = Fq_db.Relation

type verdict =
  | Finite of Relation.t
  | Infinite
  | Unknown of Relation.t

let ( let* ) = Result.bind

let via_active_domain ~state f =
  let domain : Fq_domain.Domain.t = (module Fq_domain.Eq_domain) in
  let* f' = Fq_eval.Translate.formula ~domain ~state f in
  let xs = Formula.free_vars f' in
  if xs = [] then Ok true
  else begin
    (* In the pure-equality domain a "loose" element can be swapped for any
       other, so the answer is finite iff it stays inside the active
       domain: ∀x̄ (φ' → ⋀ᵢ ⋁_{a ∈ adom} xᵢ = a). *)
    let adom = Fq_eval.Translate.active_domain ~domain ~state f in
    let (module D : Fq_domain.Domain.S) = domain in
    let inside x =
      Formula.disj
        (List.map (fun a -> Formula.Eq (Term.Var x, Term.Const (D.const_name a))) adom)
    in
    let sentence =
      Formula.forall_many xs (Formula.Imp (f', Formula.conj (List.map inside xs)))
    in
    Fq_domain.Eq_domain.decide sentence
  end

let via_finitization ~domain ~decide ~state f =
  Finitization.equivalence_in_state ~decide ~domain ~state f

let via_extended_active ~state f =
  Ext_active.finite_in_state ~domain:(module Fq_domain.Nat_succ) ~state f

let rec bounded ?(fuel = 2_000) ?budget ?max_certified ~domain ~state f =
  (* When a complete relative-safety procedure exists for the domain, use
     it to recognize the infinite case outright; otherwise (in particular
     over T) fall back to pure enumeration. *)
  match decide_for ~domain ~state f with
  | Ok false -> Ok Infinite
  | Ok true | Error _ -> (
    let* outcome = Fq_eval.Enumerate.run ~fuel ?budget ?max_certified ~domain ~state f in
    match outcome with
    | Fq_eval.Enumerate.Finite rel -> Ok (Finite rel)
    | Fq_eval.Enumerate.Out_of_fuel partial -> Ok (Unknown partial))

and decide_for ~domain ~state f =
  let (module D : Fq_domain.Domain.S) = domain in
  match D.name with
  | "equality" -> via_active_domain ~state f
  | "nat_order" -> via_finitization ~domain ~decide:Fq_domain.Nat_order.decide ~state f
  | "presburger" -> via_finitization ~domain ~decide:Fq_domain.Presburger.decide ~state f
  | "nat_succ" -> via_extended_active ~state f
  | "traces" ->
    Error
      "relative safety over the trace domain T is undecidable (Theorem 3.3); use \
       Relative_safety.bounded for a fuel-bounded semi-decision"
  | name -> Error (Printf.sprintf "no relative-safety procedure for domain %s" name)
