module Formula = Fq_logic.Formula
module Term = Fq_logic.Term
module Word = Fq_words.Word
module Builder = Fq_tm.Builder
module Encode = Fq_tm.Encode
module Run = Fq_tm.Run

let schema = Fq_db.Schema.make ~constants:[ "c" ] []

let totality_query m =
  Formula.Atom ("P", [ Term.Const m; Term.Const "@c"; Term.Var "x" ])

let state_for w =
  Fq_db.State.make ~schema ~constants:[ ("c", Fq_db.Value.str w) ] []

let equivalent_queries phi psi =
  let avoid = Formula.Sset.union (Formula.all_vars phi) (Formula.all_vars psi) in
  let z = Formula.fresh_var ~avoid "z" in
  let phi_z = Formula.subst_const "@c" (Term.Var z) phi in
  let psi_z = Formula.subst_const "@c" (Term.Var z) psi in
  let xs =
    List.sort_uniq compare (Formula.free_vars phi_z @ Formula.free_vars psi_z)
    |> List.filter (fun v -> v <> z)
  in
  let sentence = Formula.Forall (z, Formula.forall_many xs (Formula.Iff (phi_z, psi_z))) in
  Fq_domain.Traces.decide sentence

let machine_words () = Seq.filter Word.is_machine_shaped (Word.enumerate ())

let fresh_total_machine ~avoid =
  (* For the i-th machine to avoid, designate the input wᵢ = 1^(i+1) and
     halt after a number of steps different from that machine's (probed
     with a small fuel; a diverging machine differs from any halting
     count). Distinct wᵢ prefixes keep the constraints conflict-free, and
     the k/k+1 choice dodges the probed count. The resulting prefix-trie
     machine is total: it can only move right and halts as soon as its
     finite transition table runs out. *)
  let constraints =
    List.mapi
      (fun i m ->
        let w = String.make (i + 1) '1' in
        let base = i + 2 in
        let steps =
          (* probe under the shared governor: a fuel-only budget of base+2
             steps reproduces the historical halts_within probe exactly *)
          match
            Run.halts_within_b ~budget:(Fq_core.Budget.of_fuel ~share:false (base + 2))
              (Encode.decode m) w
          with
          | Some s -> if s = base then base + 1 else base
          | None -> base
        in
        Builder.Exactly (w, steps + 1))
      avoid
  in
  match Builder.build constraints with
  | Ok m -> m
  | Error e -> invalid_arg ("Diagonal.fresh_total_machine: " ^ e)

type outcome =
  | Missed_finite_query of {
      machine : Word.t;
      query : Formula.t;
      candidates_checked : int;
    }
  | Admits_unsafe of {
      formula : Formula.t;
      witness_machine : Word.t;
      witness_input : Word.t;
    }

let ( let* ) = Result.bind

(* Is the query equivalent to any of the first [budget] formulas of the
   syntax? Formulas whose equivalence test errors (outside T's signature)
   are skipped. *)
let covered_index ~syntax ~budget query =
  let candidates = List.of_seq (Seq.take budget (syntax.Syntax_class.enumerate ())) in
  let rec go i = function
    | [] -> Ok None
    | phi :: rest -> (
      match equivalent_queries query phi with
      | Ok true -> Ok (Some i)
      | Ok false | Error _ -> go (i + 1) rest)
  in
  go 0 candidates

let defeat ~syntax ~budget =
  (* First: scan candidate formulas for an unsafe one — a formula
     equivalent to the totality query of a machine known to diverge
     somewhere. We probe the non-total zoo machines. *)
  let unsafe_probe () =
    let non_total =
      List.filter_map
        (fun e ->
          match e.Fq_tm.Zoo.diverges_on with
          | Some w -> Some (Encode.encode e.Fq_tm.Zoo.machine, w)
          | None -> None)
        Fq_tm.Zoo.all
    in
    let candidates = List.of_seq (Seq.take budget (syntax.Syntax_class.enumerate ())) in
    List.find_map
      (fun phi ->
        List.find_map
          (fun (m, w) ->
            match equivalent_queries phi (totality_query m) with
            | Ok true ->
              Some (Admits_unsafe { formula = phi; witness_machine = m; witness_input = w })
            | Ok false | Error _ -> None)
          non_total)
      candidates
  in
  match unsafe_probe () with
  | Some outcome -> Ok outcome
  | None ->
    (* Second: build a total machine distinct from every machine whose
       query the syntax covers (within budget), then show its finite
       query is not covered. *)
    let covered_machines =
      machine_words () |> Seq.take budget
      |> Seq.filter (fun m ->
             match covered_index ~syntax ~budget (totality_query m) with
             | Ok (Some _) -> true
             | Ok None | Error _ -> false)
      |> List.of_seq
    in
    let fresh = fresh_total_machine ~avoid:covered_machines in
    let fresh_word = Encode.encode fresh in
    let query = totality_query fresh_word in
    let* covered = covered_index ~syntax ~budget query in
    (match covered with
    | None ->
      Ok (Missed_finite_query { machine = fresh_word; query; candidates_checked = budget })
    | Some _ ->
      (* The syntax covered even the fresh machine within this budget;
         with a larger budget the construction repeats — report the
         budget as insufficient rather than fabricate a result. *)
      Error "budget too small: the candidate syntax covered the fresh machine; increase it")

let enumerate_total_machines_via ~syntax ~formula_budget ~machine_budget =
  let machines = List.of_seq (Seq.take machine_budget (machine_words ())) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest -> (
      let* covered = covered_index ~syntax ~budget:formula_budget (totality_query m) in
      match covered with
      | Some _ -> go (m :: acc) rest
      | None -> go acc rest)
  in
  go [] machines
