include Fq_eval.Safe_range
