type t = {
  name : string;
  description : string;
  accepts : Fq_logic.Formula.t -> bool;
  enumerate : unit -> Fq_logic.Formula.t Seq.t;
}

let of_filter ~name ~description ~vocabulary accepts =
  { name;
    description;
    accepts;
    enumerate = (fun () -> Seq.filter accepts (Formula_enum.enumerate vocabulary ())) }

let safe_range ~schema ~vocabulary =
  of_filter ~name:"safe-range"
    ~description:"range-restricted formulas (domain-independent syntax)" ~vocabulary
    (fun f -> Fq_eval.Safe_range.is_safe_range ~schema f)

let finitizations ~vocabulary =
  { name = "finitizations";
    description = "the image of the Theorem 2.2 finitization operator over N_<";
    accepts = Finitization.is_finitization;
    enumerate =
      (fun () -> Seq.map Finitization.finitize (Formula_enum.enumerate vocabulary ())) }

(* f is in the image of [Ext_active.restrict] iff re-restricting its
   left conjunct (the original φ) reproduces it; sentences restrict to
   themselves. *)
let is_restrict_image ~schema f =
  Fq_logic.Formula.equal f (Ext_active.restrict ~schema f)
  ||
  match f with
  | Fq_logic.Formula.And (phi, _) -> Fq_logic.Formula.equal f (Ext_active.restrict ~schema phi)
  | _ -> false

let extended_active ~schema ~vocabulary =
  { name = "extended-active-domain";
    description = "formulas restricted to the extended active domain of N' (Theorem 2.7)";
    accepts = is_restrict_image ~schema;
    enumerate =
      (fun () -> Seq.map (Ext_active.restrict ~schema) (Formula_enum.enumerate vocabulary ())) }
