(** The {e relative safety} problem (Sections 1.3, 2, 3.3): given a query
    and a database state, decide whether the query's answer in that state
    is finite.

    Positive cases, each following the paper's proof:
    - {!via_active_domain} — the pure-equality domain: the answer is
      finite iff it stays within the active domain, testable with one
      fresh element;
    - {!via_finitization} — Theorem 2.5, any decidable extension of
      [N_<]: finite iff equivalent to the finitization;
    - {!via_extended_active} — Theorem 2.6, the successor domain [N'].

    Negative case — Theorem 3.3: over the trace domain [T] the problem is
    undecidable (see {!Halting_reduction}); {!bounded} provides the
    semi-decision that is still available: run the Section 1.1 enumeration
    with fuel and report what was established. *)

type verdict =
  | Finite of Fq_db.Relation.t  (** finite, with the full answer *)
  | Infinite
  | Unknown of Fq_db.Relation.t  (** fuel exhausted; partial answer *)

val via_active_domain :
  state:Fq_db.State.t -> Fq_logic.Formula.t -> (bool, string) result
(** Pure-equality domain. Finite iff no tuple containing a fresh element
    (outside the active domain) satisfies the query — checked by the
    equality domain's decision procedure on a relativized sentence. *)

val via_finitization :
  domain:Fq_domain.Domain.t ->
  decide:(Fq_logic.Formula.t -> (bool, string) result) ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (bool, string) result
(** Theorem 2.5, parameterized by the extension's decision procedure
    (e.g. {!Fq_domain.Presburger.decide} or {!Fq_domain.Nat_order.decide}). *)

val via_extended_active :
  state:Fq_db.State.t -> Fq_logic.Formula.t -> (bool, string) result
(** Theorem 2.6 over {!Fq_domain.Nat_succ}. *)

val bounded :
  ?fuel:int ->
  ?budget:Fq_core.Budget.t ->
  ?max_certified:int ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (verdict, string) result
(** Fuel-bounded semi-decision for arbitrary decidable domains (including
    [T], where no complete procedure can exist): runs the enumeration
    algorithm; [Finite] and its answer are certified by the decision
    procedure, [Unknown] is reported when fuel runs out. [Infinite] is
    reported when the domain decides the unboundedness sentence — only
    available where the bounding is expressible (never for [T]). *)

val decide_for :
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  (bool, string) result
(** Dispatch on the built-in domains by name: equality, [N_<], [N'],
    Presburger. Errors on domains with no known complete procedure
    (in particular [T] — Theorem 3.3). *)
