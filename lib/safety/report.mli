(** One-call analysis of a query against a domain and a state: everything
    the library can say about it, produced by the appropriate tool —

    - the {e syntactic} verdict ({!Safe_range}): finite in {e every} state?
    - the {e relative safety} verdict ({!Relative_safety.decide_for}):
      finite in {e this} state? ([Error] over domains where Theorem 3.3
      applies);
    - the {e answer}, by the fastest applicable evaluator: the RANF
      compiler for safe-range queries, otherwise the Section 1.1
      enumeration with fuel.

    This is the front door used by the CLI and the examples. *)

type evaluation =
  | Exact of { answer : Fq_db.Relation.t; engine : string }
      (** complete answer; [engine] names the evaluator used *)
  | Partial of {
      tuples : Fq_db.Relation.t;
      spent : int;  (** work units consumed when the governor tripped *)
      reason : Fq_core.Budget.failure;
    }  (** the budget ran dry; possibly-infinite answer *)
  | Failed of string

type t = {
  formula : Fq_logic.Formula.t;
  safe_range : Fq_eval.Safe_range.verdict;
  finite_here : (bool, string) result;
  evaluation : evaluation;
}

val analyze :
  ?fuel:int ->
  ?budget:Fq_core.Budget.t ->
  ?max_certified:int ->
  domain:Fq_domain.Domain.t ->
  state:Fq_db.State.t ->
  Fq_logic.Formula.t ->
  t
(** [budget] supersedes [fuel] and governs the enumeration fallback with
    the full {!Fq_core.Budget} (deadline, cancellation, ambient ticking in
    the decision procedures). *)

val pp : Format.formatter -> t -> unit
