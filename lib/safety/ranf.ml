include Fq_eval.Ranf
