(** The executable content of Theorem 3.3: {e relative safety over the
    trace domain [T] is undecidable}, by reduction from the halting
    problem — "[M(x)] is finite in the state [c] iff [M] stops starting
    from the value of [c]".

    The reduction maps an instance [(M, w)] of the halting problem to the
    relative-safety instance [(P(M, @c, x), state with c ↦ w)]:

    - if [M] halts on [w] in [n] steps, the query's answer is the finite
      set of its [n+1] traces;
    - if [M] diverges on [w], every prefix of the infinite computation is
      an answer tuple, so the answer is infinite.

    A decision procedure for relative safety over [T] would therefore
    solve the halting problem. The checkers here verify both directions on
    bounded instances, with the finite direction certified by the
    Section 1.1 enumeration algorithm. *)

val instance :
  machine:Fq_words.Word.t ->
  input:Fq_words.Word.t ->
  Fq_logic.Formula.t * Fq_db.State.t
(** The relative-safety instance for a halting-problem instance. *)

type evidence =
  | Halts of { steps : int; answer : Fq_db.Relation.t }
      (** [M] halts on [w]; the certified finite answer has [steps + 1]
          tuples. *)
  | Diverges_beyond of { trace_count : int }
      (** [M] ran past the fuel; at least [trace_count] answer tuples
          exist (the answer is infinite if [M] truly diverges). *)

val check :
  ?fuel:int ->
  ?budget:Fq_core.Budget.t ->
  machine:Fq_words.Word.t ->
  input:Fq_words.Word.t ->
  unit ->
  (evidence, string) result
(** Runs both sides of the reduction on a concrete instance: simulates the
    machine under the shared governor ([budget] if given, else a fuel-only
    budget of [fuel], default 1000), and in the halting case certifies the
    finite answer via {!Fq_eval.Enumerate.certified_complete} (the answer
    being the trace set computed directly). *)
