module Word = Fq_words.Word
module Trace = Fq_tm.Trace
module Encode = Fq_tm.Encode
module Run = Fq_tm.Run
module Relation = Fq_db.Relation
module Value = Fq_db.Value

let instance ~machine ~input =
  (Diagonal.totality_query machine, Diagonal.state_for input)

type evidence =
  | Halts of { steps : int; answer : Relation.t }
  | Diverges_beyond of { trace_count : int }

let ( let* ) = Result.bind

let check ?(fuel = 1_000) ?budget ~machine ~input () =
  (* One notion of bounded execution: the fuel default is just a fuel-only
     budget; an explicit [budget] adds deadline/cancellation on top. *)
  let budget =
    match budget with Some b -> b | None -> Fq_core.Budget.of_fuel ~share:false fuel
  in
  if not (Word.is_machine_shaped machine) then
    Error (Printf.sprintf "%S is not machine-shaped" machine)
  else if not (Word.is_input input) then
    Error (Printf.sprintf "%S is not an input word" input)
  else
    let query, state = instance ~machine ~input in
    match Run.run_b ~budget (Encode.decode machine) input with
    | Run.Done { steps; _ } ->
      (* finite side: the answer is exactly the trace set; certify it with
         the decision procedure *)
      let traces = List.of_seq (Trace.traces ~machine ~input) in
      let answer = Relation.make ~arity:1 (List.map (fun t -> [ Value.str t ]) traces) in
      let domain : Fq_domain.Domain.t = (module Fq_domain.Traces) in
      let* complete = Fq_eval.Enumerate.certified_complete ~domain ~state query answer in
      if not complete then Error "internal: trace set not certified complete"
      else if Relation.cardinal answer <> steps + 1 then
        Error "internal: trace count differs from steps + 1"
      else Ok (Halts { steps; answer })
    | Run.Stopped { steps; _ } ->
      (* diverging side: exhibit unboundedly many answer tuples — as many
         as the budget let the simulation reach *)
      let count = Trace.count_traces_upto ~bound:(max 1 steps) ~machine ~input in
      Ok (Diverges_beyond { trace_count = count })
