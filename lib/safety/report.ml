module Budget = Fq_core.Budget
module Formula = Fq_logic.Formula
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema
module Safe_range = Fq_eval.Safe_range
module Ranf = Fq_eval.Ranf
module Algebra_translate = Fq_eval.Algebra_translate

type evaluation =
  | Exact of { answer : Relation.t; engine : string }
  | Partial of { tuples : Relation.t; spent : int; reason : Budget.failure }
  | Failed of string

type t = {
  formula : Formula.t;
  safe_range : Safe_range.verdict;
  finite_here : (bool, string) result;
  evaluation : evaluation;
}

let enumerate ~fuel ?budget ?max_certified ~domain ~state f =
  match Fq_eval.Enumerate.run ~fuel ?budget ?max_certified ~domain ~state f with
  | Ok (Fq_eval.Enumerate.Finite answer) -> Exact { answer; engine = "enumerate" }
  | Ok (Fq_eval.Enumerate.Out_of_fuel tuples) ->
    let spent, reason =
      match budget with
      | None -> (fuel, Budget.Fuel_exhausted)
      | Some b -> (Budget.spent b, Option.value (Budget.check b) ~default:Budget.Fuel_exhausted)
    in
    Partial { tuples; spent; reason }
  | Error e -> Failed e

let analyze ?(fuel = 10_000) ?budget ?max_certified ~domain ~state f =
  let schema = Schema.relations (State.schema state) in
  let safe_range = Safe_range.check ~schema f in
  let finite_here = Relative_safety.decide_for ~domain ~state f in
  let evaluation =
    (* prefer the adom-free plans; fall back to active-domain compilation
       (still exact for safe-range queries), then to enumeration *)
    match (safe_range, Ranf.run ~domain ~state f) with
    | Safe_range.Safe_range, Ok answer -> Exact { answer; engine = "ranf-algebra" }
    | Safe_range.Safe_range, Error _ -> (
      match Algebra_translate.run ~domain ~state f with
      | Ok answer -> Exact { answer; engine = "adom-algebra" }
      | Error _ -> enumerate ~fuel ?budget ?max_certified ~domain ~state f)
    | Safe_range.Not_safe_range _, _ -> enumerate ~fuel ?budget ?max_certified ~domain ~state f
  in
  { formula = f; safe_range; finite_here; evaluation }

let pp fmt r =
  Format.fprintf fmt "@[<v>query: %a@," Formula.pp r.formula;
  (match r.safe_range with
  | Safe_range.Safe_range -> Format.fprintf fmt "syntactic: safe-range (finite in every state)@,"
  | Safe_range.Not_safe_range why -> Format.fprintf fmt "syntactic: not safe-range (%s)@," why);
  (match r.finite_here with
  | Ok true -> Format.fprintf fmt "in this state: finite@,"
  | Ok false -> Format.fprintf fmt "in this state: INFINITE@,"
  | Error e -> Format.fprintf fmt "in this state: undecided (%s)@," e);
  (match r.evaluation with
  | Exact { answer; engine } ->
    Format.fprintf fmt "answer (%s, %d tuples): %a@," engine (Relation.cardinal answer)
      Relation.pp answer
  | Partial { tuples; spent; reason = Budget.Fuel_exhausted } ->
    Format.fprintf fmt "partial answer after fuel %d: %d tuples so far@," spent
      (Relation.cardinal tuples)
  | Partial { tuples; reason; _ } ->
    Format.fprintf fmt "partial answer (%a): %d tuples so far@," Budget.pp_failure reason
      (Relation.cardinal tuples)
  | Failed e -> Format.fprintf fmt "evaluation failed: %s@," e);
  Format.fprintf fmt "@]"
