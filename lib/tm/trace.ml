module Word = Fq_words.Word

let check_args ~machine ~input ~k =
  if not (Word.is_machine_shaped machine) then
    invalid_arg (Printf.sprintf "Trace: %S is not machine-shaped" machine);
  if not (Word.is_input input) then
    invalid_arg (Printf.sprintf "Trace: %S is not an input word" input);
  if k < 1 then invalid_arg "Trace: snapshot count must be positive"

let render_fields machine snaps =
  let fields =
    machine :: List.concat_map (fun (st, tp, pos) -> [ st; tp; pos ]) snaps
  in
  (* A trace ends with its last (possibly empty) position field; when that
     field is empty the rendered word ends with the separator. *)
  Word.join_fields fields

(* The first snapshot records the input verbatim (the paper's "1 ⋆ w ⋆"),
   not the trimmed tape window: this keeps traces of a machine on different
   inputs distinct, so the Appendix function w(x) is well defined. The
   initial head position is always 0, and subsequent snapshots use the
   minimal window of {!Run.snapshot}. *)
let snapshot_seq m input =
  Seq.mapi
    (fun i c ->
      (* potentially infinite computation: checkpoint each snapshot so a
         governed consumer of the trace sequence stays bounded *)
      Fq_core.Budget.tick_ambient ();
      let st, tp, pos = Run.snapshot c in
      if i = 0 then (st, input, pos) else (st, tp, pos))
    (Run.configs m input)

let trace_word ~machine ~input ~k =
  check_args ~machine ~input ~k;
  let m = Encode.decode machine in
  let snaps = List.of_seq (Seq.take k (snapshot_seq m input)) in
  if List.length snaps < k then None else Some (render_fields machine snaps)

let traces ~machine ~input =
  check_args ~machine ~input ~k:1;
  let m = Encode.decode machine in
  (* The k-th trace extends the (k-1)-th by one snapshot. *)
  Seq.scan (fun acc snap -> snap :: acc) [] (snapshot_seq m input)
  |> Seq.filter (fun acc -> acc <> [])
  |> Seq.map (fun acc -> render_fields machine (List.rev acc))

let parse p =
  match Word.split_fields p with
  | m :: rest when Word.is_machine_shaped m && rest <> [] && List.length rest mod 3 = 0 ->
    let k = List.length rest / 3 in
    let snaps =
      List.init k (fun i ->
          (List.nth rest (3 * i), List.nth rest ((3 * i) + 1), List.nth rest ((3 * i) + 2)))
    in
    (* The input is the first snapshot's tape field, recorded verbatim. *)
    (match snaps with
    | (_, tape0, _) :: _ when Word.is_input tape0 -> (
      match trace_word ~machine:m ~input:tape0 ~k with
      | Some p' when String.equal p p' -> Some (m, tape0, k)
      | _ -> None)
    | _ -> None)
  | _ -> None

let is_trace_word p = Option.is_some (parse p)

let p_pred m w p =
  Word.is_machine_shaped m && Word.is_input w
  &&
  match parse p with
  | None -> false
  | Some (m', _, k) ->
    String.equal m m'
    && (match trace_word ~machine:m ~input:w ~k with
       | Some p' -> String.equal p p'
       | None -> false)

let count_traces_upto ~bound ~machine ~input =
  let m = Encode.decode machine in
  Run.config_count_upto ~bound m input

let d_pred ~i m w =
  if i < 1 then invalid_arg "Trace.d_pred: i must be positive";
  Word.is_machine_shaped m && Word.is_input w
  && count_traces_upto ~bound:i ~machine:m ~input:w >= i

let e_pred ~i m w =
  if i < 1 then invalid_arg "Trace.e_pred: i must be positive";
  Word.is_machine_shaped m && Word.is_input w
  &&
  match Run.halts_within ~fuel:i (Encode.decode m) w with
  | Some steps -> steps = i - 1
  | None -> false

let w_fn p = match parse p with Some (_, w, _) -> w | None -> ""
let m_fn p = match parse p with Some (m, _, _) -> m | None -> ""
