(** Execution of Turing machines: configurations, stepping, bounded runs. *)

type config = { state : int; tape : Tape.t }

val initial : string -> config
(** Initial configuration on an input word over [{1,-}]: state [1], head on
    the leftmost character. *)

val step : Machine.t -> config -> config option
(** One transition; [None] when the machine halts (no applicable rule). *)

val configs : Machine.t -> string -> config Seq.t
(** The (finite or infinite) sequence of configurations of the computation
    on the given input, starting with {!initial}. *)

type outcome =
  | Halted of { steps : int; result : string }
  | Out_of_fuel

val run : fuel:int -> Machine.t -> string -> outcome
(** Runs for at most [fuel] steps. [Halted] reports the number of
    transitions performed and the paper's result convention (leftmost block
    of ['1']s, or the empty word on an all-blank tape). *)

val halts_within : fuel:int -> Machine.t -> string -> int option
(** [Some steps] if the machine halts within [fuel] steps. *)

type stopped =
  | Done of { steps : int; result : string }
  | Stopped of { steps : int; reason : Fq_core.Budget.failure }

val run_b : budget:Fq_core.Budget.t -> Machine.t -> string -> stopped
(** {!run} under the unified governor: one budget tick per transition, so
    [run_b ~budget:(Budget.of_fuel n)] performs the same transitions as
    [run ~fuel:n], while a deadline/cancellation budget also bounds the
    wall clock. Never raises — exhaustion is returned as [Stopped]. *)

val halts_within_b : budget:Fq_core.Budget.t -> Machine.t -> string -> int option

val config_count_upto : bound:int -> Machine.t -> string -> int
(** [min(bound, number of configurations of the computation)]. The number
    of configurations is [steps + 1] for a halting computation and infinite
    otherwise; it equals the paper's number of distinct traces of the
    machine on the input. *)

val snapshot : config -> string * string * string
(** [(state, tape, pos)] fields of the paper's trace snapshot: unary state,
    tape window, unary head position. *)
