type config = { state : int; tape : Tape.t }

let initial w = { state = 1; tape = Tape.of_input w }

let step m { state; tape } =
  match Machine.delta m state (Tape.read tape) with
  | None -> None
  | Some { Machine.next; write; move } ->
    Some { state = next; tape = Tape.move move (Tape.write write tape) }

let configs m w =
  let rec from c () =
    Seq.Cons
      ( c,
        match step m c with
        | None -> Seq.empty
        | Some c' -> from c' )
  in
  from (initial w)

type outcome =
  | Halted of { steps : int; result : string }
  | Out_of_fuel

let run ~fuel m w =
  let rec go steps c =
    match step m c with
    | None -> Halted { steps; result = Tape.result c.tape }
    | Some c' -> if steps >= fuel then Out_of_fuel else go (steps + 1) c'
  in
  go 0 (initial w)

let halts_within ~fuel m w =
  match run ~fuel m w with Halted { steps; _ } -> Some steps | Out_of_fuel -> None

type stopped =
  | Done of { steps : int; result : string }
  | Stopped of { steps : int; reason : Fq_core.Budget.failure }

(* One budget tick per transition: with [Budget.of_fuel n] this performs
   exactly the [run ~fuel:n] transition count, and a deadline or
   cancellation hook additionally bounds the wall clock of the
   simulation. *)
let run_b ~budget m w =
  let module B = Fq_core.Budget in
  let rec go steps c =
    match step m c with
    | None -> Done { steps; result = Tape.result c.tape }
    | Some c' -> (
      match B.tick budget with
      | () -> go (steps + 1) c'
      | exception B.Exhausted reason -> Stopped { steps; reason })
  in
  go 0 (initial w)

let halts_within_b ~budget m w =
  match run_b ~budget m w with Done { steps; _ } -> Some steps | Stopped _ -> None

let config_count_upto ~bound m w =
  match halts_within ~fuel:bound m w with
  | Some steps -> min bound (steps + 1)
  | None -> bound

let snapshot { state; tape } =
  let segment, pos = Tape.window tape in
  (Fq_words.Word.unary state, segment, Fq_words.Word.unary pos)
