module Json = Fq_core.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel; lock : Mutex.t }

let sockaddr = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let socket_family = function
  | Server.Unix_path _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

let connect ?(retries = 0) ?(delay_ms = 50) addr =
  let rec go attempts_left =
    let fd = Unix.socket (socket_family addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr addr) with
    | () ->
      Ok
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          lock = Mutex.create () }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempts_left > 0 then begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (attempts_left - 1)
      end
      else
        Error
          (Format.asprintf "cannot connect to %a: %s" Server.pp_addr addr
             (Unix.error_message e))
  in
  go (max 0 retries)

let send c req =
  try
    output_string c.oc (Json.to_string (Protocol.request_to_json req));
    output_char c.oc '\n';
    flush c.oc;
    Ok ()
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error ("send failed: " ^ e)

let recv_json c =
  match input_line c.ic with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error ("recv failed: " ^ e)
  | line -> Json.parse line

let recv c = Result.bind (recv_json c) Protocol.classify_reply

let request c req =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Result.bind (send c req) (fun () -> recv c)

let close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try close_in c.ic with Sys_error _ -> ()
