module Json = Fq_core.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel; lock : Mutex.t }

let sockaddr = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let socket_family = function
  | Server.Unix_path _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

(* With a timeout, SO_RCVTIMEO/SO_SNDTIMEO bound every read and write on
   the socket, and the connect-retry loop is additionally bounded by a
   wall-clock deadline — a client against a wedged server gets a
   classified error instead of hanging forever.  The "unsupported:"
   prefix routes the error to exit code 4 through Outcome.exit_of_error,
   distinct from 1 (evaluation error) and 3 (partial). *)
let connect ?(retries = 0) ?(delay_ms = 50) ?timeout_ms addr =
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. (float_of_int t /. 1000.)) timeout_ms
  in
  let expired () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let rec go attempts_left =
    let fd = Unix.socket (socket_family addr) Unix.SOCK_STREAM 0 in
    (match timeout_ms with
    | Some t ->
      let s = float_of_int (max 1 t) /. 1000. in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
       with Unix.Unix_error _ -> ())
    | None -> ());
    match Unix.connect fd (sockaddr addr) with
    | () ->
      Ok
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          lock = Mutex.create () }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempts_left > 0 && not (expired ()) then begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (attempts_left - 1)
      end
      else if expired () then
        Error
          (Format.asprintf "unsupported: timed out connecting to %a" Server.pp_addr addr)
      else
        Error
          (Format.asprintf "cannot connect to %a: %s" Server.pp_addr addr
             (Unix.error_message e))
  in
  go (max 0 retries)

let send c req =
  try
    output_string c.oc (Json.to_string (Protocol.request_to_json req));
    output_char c.oc '\n';
    flush c.oc;
    Ok ()
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error ("send failed: " ^ e)

(* A socket read timeout surfaces as EAGAIN, which the channel layer
   wraps in Sys_error — classify it as a deadline, not a protocol
   failure. *)
let timed_out_msg e =
  let has_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  has_sub "Resource temporarily unavailable" e || has_sub "Operation timed out" e

let recv_json c =
  match input_line c.ic with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e ->
    if timed_out_msg e then Error "unsupported: timed out waiting for server reply"
    else Error ("recv failed: " ^ e)
  | line -> Json.parse line

let recv c = Result.bind (recv_json c) Protocol.classify_reply

let request c req =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Result.bind (send c req) (fun () -> recv c)

let close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try close_in c.ic with Sys_error _ -> ()
