module Json = Fq_core.Json
module Outcome = Fq_eval.Outcome
module Budget = Fq_core.Budget

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel; lock : Mutex.t }

let sockaddr = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let socket_family = function
  | Server.Unix_path _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

(* With a timeout, SO_RCVTIMEO/SO_SNDTIMEO bound every read and write on
   the socket, and the connect-retry loop is additionally bounded by a
   wall-clock deadline — a client against a wedged server gets a
   classified error instead of hanging forever.  The "unsupported:"
   prefix routes the error to exit code 4 through Outcome.exit_of_error,
   distinct from 1 (evaluation error) and 3 (partial). *)
let connect ?(retries = 0) ?(delay_ms = 50) ?timeout_ms addr =
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. (float_of_int t /. 1000.)) timeout_ms
  in
  let expired () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let rec go attempts_left =
    let fd = Unix.socket (socket_family addr) Unix.SOCK_STREAM 0 in
    (match timeout_ms with
    | Some t ->
      let s = float_of_int (max 1 t) /. 1000. in
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
       with Unix.Unix_error _ -> ())
    | None -> ());
    match Unix.connect fd (sockaddr addr) with
    | () ->
      Ok
        { fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          lock = Mutex.create () }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempts_left > 0 && not (expired ()) then begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (attempts_left - 1)
      end
      else if expired () then
        Error
          (Format.asprintf "unsupported: timed out connecting to %a" Server.pp_addr addr)
      else
        Error
          (Format.asprintf "cannot connect to %a: %s" Server.pp_addr addr
             (Unix.error_message e))
  in
  go (max 0 retries)

let send c req =
  try
    output_string c.oc (Json.to_string (Protocol.request_to_json req));
    output_char c.oc '\n';
    flush c.oc;
    Ok ()
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error ("send failed: " ^ e)

let has_sub needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* A socket read timeout surfaces as EAGAIN, which the channel layer
   wraps in Sys_error — classify it as a deadline, not a protocol
   failure. *)
let timed_out_msg e = has_sub "Resource temporarily unavailable" e || has_sub "Operation timed out" e

(* Connection-level faults a multi-endpoint client treats as "this
   worker died, fail the job over", as opposed to protocol errors (the
   peer answered garbage) or evaluation failures (the peer answered).
   The strings are what our own send/recv/connect paths produce when the
   OS reports ECONNRESET / EPIPE / ECONNREFUSED or a half-closed peer. *)
let transient_error e =
  has_sub "connection closed by server" e
  || has_sub "Connection reset by peer" e
  || has_sub "Broken pipe" e
  || has_sub "Connection refused" e
  || has_sub "cannot connect" e
  || has_sub "send failed" e

let recv_json c =
  match input_line c.ic with
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e ->
    if timed_out_msg e then Error "unsupported: timed out waiting for server reply"
    else Error ("recv failed: " ^ e)
  | line -> Json.parse line

let recv c = Result.bind (recv_json c) Protocol.classify_reply

let request c req =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Result.bind (send c req) (fun () -> recv c)

let close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try close_in c.ic with Sys_error _ -> ()

(* --------------------------- discovery ------------------------------ *)

(* One discovery protocol against both topologies: a lone fq serve
   answers fleet-status with itself as the only worker, the fq fleet
   parent answers with its live worker set.  A peer that predates the op
   (or rejects it) degrades to the address we were given. *)
let discover ?(retries = 100) ?(delay_ms = 50) ?timeout_ms addr =
  Result.bind (connect ~retries ~delay_ms ?timeout_ms addr) @@ fun c ->
  let reply = request c (Protocol.Fleet_status { id = "discover" }) in
  close c;
  match reply with
  | Ok (_, Protocol.R_ok j) -> (
    match Protocol.fleet_status_of_json j with
    | Ok (fleet, workers) -> (
      (* a fleet reports worker sockets as it bound them, which for a
         unix base like [fq.sock] is relative to the *server's* cwd:
         anchor relative worker paths next to the address we dialed *)
      let anchor =
        match addr with
        | Server.Unix_path base when Filename.is_relative base -> None
        | Server.Unix_path base -> Some (Filename.dirname base)
        | Server.Tcp _ -> None
      in
      let resolve = function
        | Server.Unix_path p when Filename.is_relative p -> (
          match anchor with
          | Some dir -> Server.Unix_path (Filename.concat dir p)
          | None -> Server.Unix_path p)
        | a -> a
      in
      let live =
        List.filter_map
          (fun w ->
            if w.Protocol.up then
              Option.map resolve
                (Result.to_option (Server.addr_of_string w.Protocol.worker_addr))
            else None)
          workers
      in
      match live with [] -> Ok (fleet, [ addr ]) | eps -> Ok (fleet, eps))
    | Error _ -> Ok (false, [ addr ]))
  | Ok _ -> Ok (false, [ addr ])
  | Error e -> if transient_error e then Ok (false, [ addr ]) else Error e

(* ------------------------ multi-endpoint jobs ----------------------- *)

type eval_job = {
  domain : string option;
  formula : string;
  fuel : int option;
  timeout_ms : int option;
  trace : string option;
}

type job_result = {
  reply : Protocol.reply;
  raw : Json.t option;  (** the reply line, for fields beyond the outcome *)
  worker : string option;  (** ["worker"] stamp, when the peer is a fleet *)
  failovers : int;  (** connection-level retries (other endpoints) *)
  rejected_retries : int;  (** admission roundtrips waited out *)
}

(* Per-job mutable progress, guarded by the pool lock.  [p_resume] is
   the newest resume evidence the server handed us (a structured reject
   carries one); a failover re-sends the job with it, so an interrupted
   scan continues instead of restarting. *)
type progress = {
  mutable p_reply : (Protocol.reply * Json.t) option;
  mutable p_resume : Outcome.resume option;
  mutable p_failovers : int;
  mutable p_rejects : int;
}

let failed_outcome reason =
  { Outcome.verdict = Outcome.Failed { reason };
    usage = { Budget.ticks = 0; elapsed_ms = 0. };
    attempts = [] }

(* How many jobs one endpoint thread claims per cycle: small enough
   that a late-crashing worker strands few jobs, large enough to keep
   each connection's pipeline full. *)
let pool_chunk = 16

(* Spread [jobs] across the fleet behind [addr]: discover the live
   workers, pipeline a chunk of jobs onto one connection per worker
   (one thread each), and treat any connection-level fault as "this
   worker died": every job still unanswered on that connection goes
   back to the shared queue, carrying its resume token, and another
   endpoint picks it up.  Between rounds the topology is re-discovered,
   so jobs stranded by a crash land on the worker the supervisor
   respawned.  A job that survives [max_failovers] connection deaths is
   answered locally with a classified transient failure — callers never
   see a bare connection error. *)
let run_jobs ?(max_failovers = 4) ?(rounds = 4) ?timeout_ms ~addr jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let res =
    Array.init n (fun _ ->
        { p_reply = None; p_resume = None; p_failovers = 0; p_rejects = 0 })
  in
  let lock = Mutex.create () in
  let pending = Queue.create () in
  Array.iteri (fun i _ -> Queue.push i pending) jobs;
  let remaining = ref n in
  let ever_connected = ref false in
  let grab () =
    Mutex.protect lock (fun () ->
        let rec go acc k =
          if k = 0 || Queue.is_empty pending then List.rev acc
          else go (Queue.pop pending :: acc) (k - 1)
        in
        go [] pool_chunk)
  in
  (* a failed-over job either re-queues or, past the cap, terminalizes
     with a structured failure *)
  let give_back reason idxs =
    Mutex.protect lock (fun () ->
        List.iter
          (fun i ->
            let p = res.(i) in
            if p.p_reply = None then begin
              p.p_failovers <- p.p_failovers + 1;
              if p.p_failovers <= max_failovers then Queue.push i pending
              else begin
                p.p_reply <-
                  Some
                    ( Protocol.R_outcome
                        (failed_outcome
                           (Printf.sprintf
                              "transient: %s (failed over %d times, giving up)" reason
                              (p.p_failovers - 1))),
                      Json.Null );
                decr remaining
              end
            end)
          idxs)
  in
  let record idx reply raw =
    Mutex.protect lock (fun () ->
        let p = res.(idx) in
        if p.p_reply = None then begin
          p.p_reply <- Some (reply, raw);
          decr remaining;
          true
        end
        else false (* a duplicate from before a failover: first reply wins *))
  in
  let send_job c idx =
    let j = jobs.(idx) in
    let resume = Mutex.protect lock (fun () -> res.(idx).p_resume) in
    send c
      (Protocol.Eval
         { id = string_of_int idx;
           domain = j.domain;
           formula = j.formula;
           fuel = j.fuel;
           timeout_ms = j.timeout_ms;
           resume;
           trace = j.trace })
  in
  (* Drive one endpoint until the shared queue is dry or its connection
     dies.  [first] gets the patient boot-retry window; reconnects after
     a death are brief — the round structure and the other endpoints own
     slow recovery. *)
  let endpoint_thread ~first addr =
    let rec cycle conn =
      match grab () with
      | [] -> Option.iter close conn
      | idxs -> (
        let conn =
          match conn with
          | Some c -> Ok c
          | None ->
            let retries = if first then 100 else 10 in
            connect ~retries ~delay_ms:50 ?timeout_ms addr
        in
        match conn with
        | Error e ->
          give_back (if transient_error e then "worker connection refused" else e) idxs;
          () (* endpoint unreachable: leave its jobs to the others *)
        | Ok c ->
          Mutex.protect lock (fun () -> ever_connected := true);
          let outstanding = Hashtbl.create 16 in
          let rec send_all = function
            | [] -> Ok ()
            | i :: rest -> (
              match send_job c i with
              | Ok () ->
                Hashtbl.replace outstanding i ();
                send_all rest
              | Error e ->
                give_back e (i :: rest);
                Error e)
          in
          let rec drain () =
            if Hashtbl.length outstanding = 0 then Ok ()
            else
              Result.bind (recv_json c) @@ fun raw ->
              Result.bind (Protocol.classify_reply raw) @@ fun (id, reply) ->
              match int_of_string_opt id with
              | Some idx when Hashtbl.mem outstanding idx -> (
                match reply with
                | Protocol.R_rejected { retry_after_ms; resume; _ } ->
                  Mutex.protect lock (fun () ->
                      let p = res.(idx) in
                      p.p_rejects <- p.p_rejects + 1;
                      match resume with Some _ -> p.p_resume <- resume | None -> ());
                  Unix.sleepf (float_of_int (max 1 retry_after_ms) /. 1000.);
                  Result.bind (send_job c idx) (fun () -> drain ())
                | Protocol.R_outcome _ | Protocol.R_malformed _ ->
                  Hashtbl.remove outstanding idx;
                  let _first : bool = record idx reply raw in
                  drain ()
                | Protocol.R_ok _ -> drain ())
              | _ -> drain ()
          in
          let healthy =
            match Result.bind (send_all idxs) (fun () -> drain ()) with
            | Ok () -> Some c
            | Error e ->
              give_back
                (if transient_error e then "worker connection lost" else e)
                (Hashtbl.fold (fun i () acc -> i :: acc) outstanding []);
              close c;
              None
          in
          (* after a death, cycle with no connection: a brief reconnect
             covers a worker the supervisor already respawned *)
          cycle healthy)
    in
    cycle None
  in
  let round ~first eps =
    let threads =
      List.map (fun a -> Thread.create (fun () -> endpoint_thread ~first a) ()) eps
    in
    List.iter Thread.join threads
  in
  Result.bind (discover ?timeout_ms addr) @@ fun (_fleet, endpoints) ->
  let rec go k eps =
    round ~first:(k = 0) eps;
    if Mutex.protect lock (fun () -> !remaining) > 0 && k + 1 < rounds then
      let eps =
        match discover ~retries:20 ?timeout_ms addr with
        | Ok (_, eps) -> eps
        | Error _ -> eps
      in
      go (k + 1) eps
    else ()
  in
  go 0 endpoints;
  if not !ever_connected then
    Error (Format.asprintf "cannot connect to %a: no worker reachable" Server.pp_addr addr)
  else begin
    (* rounds exhausted with jobs still queued: terminalize them *)
    Mutex.protect lock (fun () ->
        Array.iter
          (fun p ->
            if p.p_reply = None then begin
              p.p_reply <-
                Some
                  ( Protocol.R_outcome
                      (failed_outcome "transient: no live worker answered before give-up"),
                    Json.Null );
              decr remaining
            end)
          res);
    Ok
      (Array.map
         (fun p ->
           let reply, raw =
             match p.p_reply with
             | Some (reply, raw) -> (reply, raw)
             | None -> (Protocol.R_outcome (failed_outcome "no reply"), Json.Null)
           in
           { reply;
             raw = (match raw with Json.Null -> None | j -> Some j);
             worker = Option.bind (Json.member "worker" raw) Json.to_str_opt;
             failovers = p.p_failovers;
             rejected_retries = p.p_rejects })
         res)
  end
