(** Crash-safe append-only journal for the decide cache.

    A snapshot written only on graceful shutdown forfeits every verdict
    a crashed server had learned.  The journal closes that gap: each
    cacheable verdict is appended as one CRC-framed record the moment it
    lands, so after a [kill -9] the cache state is the last snapshot
    {e plus} the journal's surviving records — recovery replays both.

    {b File format} (text, versioned):
    {v
    fq-decide-journal 1
    CRC8HEX<TAB>PAYLOAD
    ...
    v}
    One record per line.  [CRC8HEX] is the IEEE CRC-32 of the payload
    bytes in lowercase hex; the payload is an opaque single-line string
    (the decide-cache entry rendering — tabs allowed, newlines excluded
    by construction).  The framing makes every corruption mode
    detectable and non-fatal:
    - a {e torn tail} (the crash interrupted a write, so the file does
      not end in a newline) is truncated back to the last complete
      record;
    - a {e corrupt record} anywhere (bit rot, a torn write that happens
      to contain a newline) fails its CRC and is skipped, without
      sacrificing the valid records after it;
    - an {e empty or missing} file recovers to zero records.
    Only a wrong magic/version header is an error — that file is not a
    journal, and silently resetting it would destroy user data.

    {b Fault sites} (chaos drills, see {!Fq_core.Fault}):
    ["journal.append"] fires before each record write (models short
    writes and ENOSPC — a faulted append leaves the file unchanged, so
    recovery still sees a valid prefix); ["journal.rotate"] fires before
    the atomic temp+rename of {!reset} (models a torn rename — the old
    journal survives intact). *)

type t
(** An open journal, positioned for appending.  Not thread-safe by
    itself: callers serialize access (the server holds one journal
    mutex). *)

type recovery = {
  applied : int;  (** records that passed their CRC and were replayed *)
  skipped : int;  (** corrupt records dropped *)
  truncated_bytes : int;  (** torn-tail bytes cut from the file *)
}

val recover : ?truncate:bool -> string -> f:(string -> unit) -> (recovery, string) result
(** [recover path ~f] replays every valid record's payload through [f]
    in append order, truncates a torn tail in place, and reports what it
    found.  A missing or empty file recovers to zero records; [Error]
    only on a wrong header (not a journal) or an unreadable file.
    [~truncate:false] makes the pass read-only (a torn tail is reported
    but left in place) — the fleet parent's mode for folding a {e live}
    worker's journal, where the worker still owns the append position
    and truncating under it would destroy a record mid-write. *)

val open_append : string -> (t, string) result
(** Open [path] for appending, creating it (with the version header) if
    missing or empty.  Call {!recover} first on an existing file so the
    append position sits after a complete record. *)

val append : t -> string -> (unit, string) result
(** Frame one payload (which must not contain a newline) with its CRC
    and append it, flushing to the OS so the record survives a process
    crash.  [Error] on I/O failure (e.g. ENOSPC) — the journal stays
    usable; the record is simply not durable. *)

val reset : t -> (unit, string) result
(** Atomically replace the journal with a fresh header-only file (temp
    file + rename) and reopen for appending — the compaction step, after
    the cache has been snapshotted.  On [Error] the old journal is left
    in place (records are then replayed twice at the next boot, which is
    idempotent). *)

val sync : t -> unit
(** [fsync] the journal file descriptor. *)

val close : t -> unit

val path : t -> string

val appended : t -> int
(** Records appended through this handle since {!open_append} (resets do
    not clear it). *)

val crc32 : string -> int32
(** The IEEE CRC-32 used for framing (exposed for tests). *)
