(** The [fq serve] wire protocol: newline-delimited JSON.

    A client writes one JSON object per line; the server answers each
    with one JSON object per line, correlated by the client-chosen
    ["id"].  Responses to pipelined requests may interleave in completion
    order — the id is the only correlation.

    {b Requests}
    {v
    {"op":"eval","id":ID,"formula":F,
     "domain":D?,"fuel":N?,"timeout_ms":N?,"resume":RESUME?,"trace":T?}
    {"op":"explain","id":ID,"formula":F,"domain":D?,"trace":T?}
    {"op":"metrics","id":ID}     {"op":"ping","id":ID}
    {"op":"snapshot","id":ID}    {"op":"shutdown","id":ID}
    {"op":"reload","id":ID,"path":PATH?}    {"op":"health","id":ID}
    {"op":"traces","id":ID,"limit":N?}
    v}

    {b Trace context.}  A request may carry a client-chosen ["trace"] id;
    the server propagates it (or mints one) through admission, the worker
    Domain's telemetry collector, the sampled-trace ring and the
    slow-query log, and echoes it verbatim as a ["trace"] field in the
    matching eval reply.

    {b Responses.}  An [eval] answer is the stable {!Fq_eval.Outcome}
    JSON object with an ["id"] field prepended — byte-identical to
    [fq eval --json] / [fq batch --json] output once the id is dropped.
    Admission-controlled requests that the server will not take are
    answered immediately with
    {v
    {"id":ID,"status":"rejected","reason":R,"retry_after_ms":N,
     "resume":RESUME}
    v}
    — a structured reject carrying the request's resume evidence (the
    token it sent, or a fresh zero-progress token), so over-admission
    never queues unboundedly and never loses client progress.  Malformed
    input is answered with [{"id":ID,"status":"malformed","reason":R}]. *)

module Json = Fq_core.Json
module Outcome = Fq_eval.Outcome

val domains : (string * Fq_domain.Domain.t) list
(** The built-in domain registry, by CLI/protocol name. *)

val find_domain : string -> Fq_domain.Domain.t option

type request =
  | Eval of {
      id : string;
      domain : string option;  (** [None]: the server's default domain *)
      formula : string;
      fuel : int option;  (** capped by the server's per-request ceiling *)
      timeout_ms : int option;
      resume : Outcome.resume option;  (** continue an interrupted scan *)
      trace : string option;  (** client trace id; server mints if absent *)
    }
  | Explain of { id : string; domain : string option; formula : string; trace : string option }
  | Metrics of { id : string }
  | Ping of { id : string }
  | Snapshot of { id : string }
  | Shutdown of { id : string }
  | Reload of { id : string; path : string option }
      (** Hot-swap the served database from a {e server-side} state file
          (one {!Fq_db.Codec} spec per line); [None] re-reads the file
          the server was configured with (the SIGHUP semantics).
          Answered with [{"ok":true,"epoch":N}] once the new epoch is
          live; in-flight requests finish on the epoch they were admitted
          under. *)
  | Health of { id : string }
      (** Liveness triage: answered inline (never queued) with epoch,
          queue depth, inflight, brownout flag, estimated queue wait,
          per-domain breaker states, and the journal record count. *)
  | Traces of { id : string; limit : int option }
      (** The newest completed sampled traces (up to [limit], default
          all retained), answered inline from the server's bounded
          ring: [{"ok":true,"traces":[...]}], newest first. *)
  | Fleet_status of { id : string }
      (** Topology discovery: answered inline with
          [{"ok":true,"fleet":B,"workers":[{"worker":W,"addr":A,"up":B,
          "pid":N?,"restarts":N}]}].  A single [fq serve] process answers
          with [fleet:false] and itself as the only worker, so clients
          speak one discovery protocol against both shapes; the [fq
          fleet] parent answers with [fleet:true] and the live worker
          set, which multi-endpoint clients use to spread and fail over
          pipelined jobs. *)

val request_id : request -> string

val parse_request : string -> (request, string) result
(** Parse one request line. *)

val request_to_json : request -> Json.t
(** The client-side encoder; [parse_request] inverts it. *)

(** {1 Response builders} *)

val outcome_response : id:string -> ?trace:string -> Outcome.t -> Json.t
(** With [?trace] the reply carries a ["trace"] field right after the
    id; {!Outcome.of_json} ignores it, so traced replies still classify
    byte-identically to local [fq eval --json] output. *)

val reject_response :
  id:string -> reason:string -> retry_after_ms:int -> resume:Outcome.resume -> Json.t

val malformed_response : id:string -> string -> Json.t

val ok_response : id:string -> (string * Json.t) list -> Json.t
(** [{"id":ID,"ok":true, ...fields}] — ping/snapshot/shutdown acks. *)

(** {1 Fleet topology} *)

type worker_info = {
  worker : string;  (** stable worker name, e.g. ["w0"] *)
  worker_addr : string;  (** printable address ("unix:PATH" / "tcp:PORT") *)
  up : bool;  (** currently accepting connections (not crashed/parked) *)
  pid : int option;  (** present when the responder supervises processes *)
  restarts : int;  (** crash-restart count since fleet boot *)
}

val fleet_status_response : id:string -> fleet:bool -> worker_info list -> Json.t

val fleet_status_of_json : Json.t -> (bool * worker_info list, string) result
(** Client-side decoder for a [fleet-status] reply: [(is_fleet, workers)]. *)

(** {1 Response classification (client side)} *)

type reply =
  | R_outcome of Outcome.t
  | R_rejected of { reason : string; retry_after_ms : int; resume : Outcome.resume option }
  | R_malformed of string
  | R_ok of Json.t  (** ping/metrics/snapshot/shutdown payload *)

val classify_reply : Json.t -> (string * reply, string) result
(** Split a response line into its id and payload. *)
