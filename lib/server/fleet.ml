(* The fq fleet supervisor: process-level crash isolation for serving.

   One parent process forks [workers] independent fq serve processes,
   each bound to its own derived address (ADDR.0, ADDR.1, ... for unix
   sockets; consecutive ports above the base for tcp) with its own
   append-only journal.  The parent owns the shared snapshot: workers
   open it read-only at boot (warm start) and never write it, so two
   processes never race on the same temp+rename; the parent folds each
   worker's journal into its own decide cache — read-only while the
   worker lives, destructively once it is dead — and publishes the
   snapshot, which is what a respawned worker warm-boots from.

   Supervision is the process-level incarnation of Fq_core.Supervisor's
   policy: liveness by waitpid(WNOHANG) every tick plus periodic health
   probes over the wire, crash restart with exponential backoff, and a
   flap-detection circuit breaker — a worker that crashes [restart_limit]
   times inside [flap_window_ms] is parked, and discovery stops steering
   traffic at it.  SIGHUP / a reload request roll the fleet one worker
   at a time (the state file is parsed once, up front, so a broken file
   rolls nobody); SIGTERM / a shutdown request drain every worker
   gracefully, fold every journal, and write the snapshot before exit.

   The parent is deliberately single-threaded (select + synchronous
   control connections): fork from a process with live threads inherits
   their held locks, so the control loop never spawns one. *)

module Json = Fq_core.Json
module Aggregate = Fq_core.Aggregate
module Decide_cache = Fq_domain.Decide_cache
module Optimizer = Fq_db.Optimizer

type config = {
  workers : int;
  restart_limit : int;
  flap_window_ms : int;
  base_backoff_ms : int;
  backoff_factor : float;
  max_backoff_ms : int;
  probe_interval_ms : int;
  probe_timeout_ms : int;
  probe_failures : int;
  drain_grace_ms : int;
  serve : Server.config;
}

let default_config ~state addr =
  { workers = 2;
    restart_limit = 5;
    flap_window_ms = 30_000;
    base_backoff_ms = 100;
    backoff_factor = 2.0;
    max_backoff_ms = 5_000;
    probe_interval_ms = 1_000;
    probe_timeout_ms = 1_000;
    probe_failures = 3;
    drain_grace_ms = 10_000;
    serve = Server.default_config ~state addr }

let worker_addr base i =
  match base with
  | Server.Unix_path p -> Server.Unix_path (Printf.sprintf "%s.%d" p i)
  | Server.Tcp port -> Server.Tcp (port + 1 + i)

(* ----------------------------- runtime ------------------------------ *)

(* Backoff doubles as "waiting out a spawn failure": a worker in
   W_backoff has no process and a respawn timestamp; W_parked is the
   tripped flap breaker — no process, no timestamp, human required. *)
type wstatus = W_up | W_backoff | W_parked

type wrk = {
  w_idx : int;
  w_name : string;
  w_addr : Server.addr;
  w_journal : string option;
  mutable w_pid : int option;
  mutable w_status : wstatus;
  mutable w_restarts : int;
  mutable w_crashes : float list;  (* recent crash timestamps (ms), newest first *)
  mutable w_next_spawn : float;  (* ms timestamp a W_backoff respawn fires at *)
  mutable w_backoff_ms : float;
  mutable w_probe_fails : int;  (* consecutive failed health probes *)
}

type t = {
  cfg : config;
  cache : Decide_cache.t;  (* the parent's fold target; source of the snapshot *)
  ws : wrk array;
  mutable state : Fq_db.State.t;  (* template a respawned worker boots from *)
  mutable state_path : string option;
  mutable stopping : bool;
  mutable listen_fd : Unix.file_descr option;  (* children must close it *)
  mutable reloads : int;
  mutable compactions : int;
  mutable folded : int;  (* journal records folded into the parent cache *)
  mutable last_save : float;
  mutable last_probe : float;
  term : bool Atomic.t;
  hup : bool Atomic.t;
  log : string -> unit;
}

let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------- snapshot + journals ---------------------- *)

(* Replay one worker journal into the parent cache.  [destructive] only
   when the worker is dead: the live fold must not truncate a torn tail
   (the worker owns the append position and may be mid-record), so it
   reads the file as-is — replay is idempotent, the next fold or the
   crash-time destructive fold picks up whatever this one missed. *)
let fold_journal t jpath ~destructive =
  let applied = ref 0 in
  let replay payload =
    match Decide_cache.entry_of_line payload with
    | Ok (key, value) ->
      Decide_cache.restore t.cache key value;
      incr applied
    | Error _ -> ()
  in
  (match Journal.recover ~truncate:destructive jpath ~f:replay with
  | Ok _ -> if destructive then ( try Sys.remove jpath with Sys_error _ -> ())
  | Error e -> t.log (Printf.sprintf "fq fleet: journal fold failed (%s): %s" jpath e));
  t.folded <- t.folded + !applied;
  !applied

let fold_worker_journal t w ~destructive =
  match w.w_journal with None -> 0 | Some j -> fold_journal t j ~destructive

let save_snapshot t ~why =
  match t.cfg.serve.snapshot with
  | None -> ()
  | Some path -> (
    match Decide_cache.save t.cache path with
    | Ok n ->
      t.last_save <- Unix.gettimeofday ();
      t.log (Printf.sprintf "fq fleet: snapshot written (%d entries, %s) to %s" n why path)
    | Error e -> t.log (Printf.sprintf "fq fleet: snapshot failed: %s" e))

(* The parent-side compaction pass: fold every live worker's journal
   (read-only) and republish the snapshot they warm-boot from. *)
let compact t ~why =
  let folded =
    Array.fold_left (fun acc w -> acc + fold_worker_journal t w ~destructive:false) 0 t.ws
  in
  save_snapshot t ~why;
  t.compactions <- t.compactions + 1;
  folded

(* ------------------------------ spawning ---------------------------- *)

let worker_config t w =
  { t.cfg.serve with
    Server.addr = w.w_addr;
    worker_id = Some w.w_name;
    snapshot_read_only = true;
    journal = w.w_journal;
    state = t.state;
    stats = Optimizer.Stats.of_state t.state;
    state_file = t.state_path }

let spawn_worker t w =
  match Fq_core.Fault.hit "fleet.spawn" with
  | exception e ->
    Error (Printf.sprintf "fleet: injected spawn fault: %s" (Printexc.to_string e))
  | () -> (
    let cfg = worker_config t w in
    (* the child inherits the parent's stdio buffers: flush so a worker
       never re-emits the parent's pending output *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "fleet: fork: %s" (Unix.error_message e))
    | 0 ->
      (* the worker: drop the parent's listener, serve, and _exit so the
         child never runs the parent's at_exit machinery *)
      (match t.listen_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      let code =
        match Server.run cfg with
        | Ok code -> code
        | Error e ->
          t.log (Printf.sprintf "fq fleet: %s: boot failed: %s" w.w_name e);
          1
      in
      Unix._exit code
    | pid ->
      w.w_pid <- Some pid;
      w.w_status <- W_up;
      w.w_probe_fails <- 0;
      Ok pid)

let schedule_respawn t w now =
  w.w_status <- W_backoff;
  w.w_next_spawn <- now +. w.w_backoff_ms;
  t.log
    (Printf.sprintf "fq fleet: %s: restarting in %.0fms (restart %d)" w.w_name
       w.w_backoff_ms w.w_restarts);
  w.w_backoff_ms <-
    Float.min (w.w_backoff_ms *. t.cfg.backoff_factor) (float_of_int t.cfg.max_backoff_ms)

(* A dead worker: fold what its journal salvaged into the snapshot (so
   the respawn warm-boots with the crashed process's verdicts), then
   either park it (flap breaker) or schedule the backoff respawn. *)
let handle_death t w now ~how =
  w.w_pid <- None;
  t.log (Printf.sprintf "fq fleet: %s: %s" w.w_name how);
  let folded = fold_worker_journal t w ~destructive:true in
  if folded > 0 then save_snapshot t ~why:(w.w_name ^ " journal fold");
  if t.stopping then ()
  else begin
    w.w_restarts <- w.w_restarts + 1;
    let window = float_of_int t.cfg.flap_window_ms in
    w.w_crashes <- now :: List.filter (fun ts -> now -. ts <= window) w.w_crashes;
    if List.length w.w_crashes >= t.cfg.restart_limit then begin
      w.w_status <- W_parked;
      t.log
        (Printf.sprintf
           "fq fleet: %s: parked — %d crashes in %.0fs, traffic redistributed" w.w_name
           (List.length w.w_crashes)
           (window /. 1000.))
    end
    else schedule_respawn t w now
  end

(* OCaml signal numbers are its own negative encoding: name the common
   ones so logs read "killed by SIGKILL", not "signal -7" *)
let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" n

let describe_status = function
  | Unix.WEXITED 0 -> "exited cleanly"
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> "killed by " ^ signal_name n
  | Unix.WSTOPPED n -> "stopped by " ^ signal_name n

let reap t now =
  Array.iter
    (fun w ->
      match w.w_pid with
      | None -> ()
      | Some pid -> (
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _, status -> handle_death t w now ~how:(describe_status status)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          handle_death t w now ~how:"already reaped"))
    t.ws

let respawn_due t now =
  Array.iter
    (fun w ->
      if w.w_status = W_backoff && w.w_pid = None && now >= w.w_next_spawn then
        match spawn_worker t w with
        | Ok pid -> t.log (Printf.sprintf "fq fleet: %s: respawned (pid %d)" w.w_name pid)
        | Error e ->
          (* a failed fork rides the same backoff schedule as a crash *)
          t.log (Printf.sprintf "fq fleet: %s: %s" w.w_name e);
          schedule_respawn t w now)
    t.ws

(* ------------------------------- probes ----------------------------- *)

(* Wire-level liveness, beyond "the pid exists": a worker that accepts
   no connection (wedged accept loop, dead event loop) for
   [probe_failures] consecutive probes is killed, which routes it onto
   the ordinary crash-restart path.  A healthy probe also reports the
   worker's journal lag, which is what triggers a parent compaction. *)
let probe_worker t w =
  match Fq_core.Fault.hit "fleet.probe" with
  | exception _ -> Error "injected probe fault"
  | () -> (
    match
      Client.connect ~retries:0 ~timeout_ms:(max 1 t.cfg.probe_timeout_ms) w.w_addr
    with
    | Error e -> Error e
    | Ok c ->
      let r = Client.request c (Protocol.Health { id = "fleet-probe" }) in
      Client.close c;
      (match r with
      | Ok (_, Protocol.R_ok j) ->
        Ok
          (match Option.bind (Json.member "journal_records" j) Json.to_int_opt with
          | Some n -> n
          | None -> 0)
      | Ok _ -> Error "probe: unexpected reply"
      | Error e -> Error e))

let probes t now =
  if now -. t.last_probe >= float_of_int t.cfg.probe_interval_ms then begin
    t.last_probe <- now;
    let lag = ref 0 in
    Array.iter
      (fun w ->
        if w.w_status = W_up && w.w_pid <> None then
          match probe_worker t w with
          | Ok journal_records ->
            w.w_probe_fails <- 0;
            lag := !lag + journal_records;
            (* a stretch of health resets the crash history: only
               crashes in quick succession should trip the flap breaker *)
            (match w.w_crashes with
            | ts :: _ when now -. ts > float_of_int t.cfg.flap_window_ms ->
              w.w_crashes <- [];
              w.w_backoff_ms <- float_of_int t.cfg.base_backoff_ms
            | _ -> ())
          | Error e ->
            w.w_probe_fails <- w.w_probe_fails + 1;
            if w.w_probe_fails >= t.cfg.probe_failures then begin
              t.log
                (Printf.sprintf "fq fleet: %s: %d probes failed (%s), killing" w.w_name
                   w.w_probe_fails e);
              w.w_probe_fails <- 0;
              match w.w_pid with
              | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
              | None -> ()
            end)
      t.ws;
    if
      t.cfg.serve.Server.snapshot <> None
      && !lag >= t.cfg.serve.Server.journal_compact_every
    then begin
      let folded = compact t ~why:"compaction" in
      t.log
        (Printf.sprintf "fq fleet: compacted %d journal records into the snapshot" folded)
    end
  end

(* ------------------------------- reload ----------------------------- *)

(* Rolling: the file is parsed once before any worker moves (a broken
   file rolls nobody), then each live worker swaps epochs in turn —
   in-process epoch swaps never stop accepting, so the fleet serves at
   full strength throughout, and sequencing means a poison state that
   kills workers on arrival is caught after the first one. *)
let rolling_reload t ~path =
  let source =
    match path with
    | Some p -> Ok p
    | None -> (
      match t.state_path with
      | Some p -> Ok p
      | None -> Error "no state file configured (start with --state-file or name one)")
  in
  Result.bind source @@ fun p ->
  match Fq_db.Codec.load_state p with
  | Error e -> Error e
  | Ok state ->
    t.state <- state;
    t.state_path <- Some p;
    t.reloads <- t.reloads + 1;
    let rolled = ref 0 in
    Array.iter
      (fun w ->
        if w.w_status = W_up && w.w_pid <> None then
          match Client.connect ~retries:5 ~timeout_ms:(max 1 t.cfg.probe_timeout_ms) w.w_addr with
          | Error e -> t.log (Printf.sprintf "fq fleet: %s: reload skipped: %s" w.w_name e)
          | Ok c ->
            (match Client.request c (Protocol.Reload { id = "fleet-reload"; path = Some p }) with
            | Ok (_, Protocol.R_ok j) ->
              incr rolled;
              t.log
                (Printf.sprintf "fq fleet: %s: reloaded (epoch %d)" w.w_name
                   (Option.value ~default:0
                      (Option.bind (Json.member "epoch" j) Json.to_int_opt)))
            | Ok _ | Error _ ->
              t.log (Printf.sprintf "fq fleet: %s: reload not acknowledged" w.w_name));
            Client.close c)
      t.ws;
    Ok !rolled

(* ------------------------------ control ----------------------------- *)

let worker_infos t =
  Array.to_list
    (Array.map
       (fun w ->
         { Protocol.worker = w.w_name;
           worker_addr = Server.addr_to_string w.w_addr;
           up = (w.w_status = W_up && w.w_pid <> None);
           pid = w.w_pid;
           restarts = w.w_restarts })
       t.ws)

let exposition t =
  let per_worker f = Array.to_list (Array.map (fun w -> ([ ("worker", w.w_name) ], f w)) t.ws) in
  Aggregate.exposition
    [ Aggregate.gauge_family ~name:"fq_fleet_worker_up"
        ~help:"Per-worker liveness (1 up, 0 crashed/backing off/parked)."
        (per_worker (fun w -> if w.w_status = W_up && w.w_pid <> None then 1. else 0.));
      Aggregate.counter_family ~name:"fq_fleet_restarts_total"
        ~help:"Per-worker crash restarts since fleet boot."
        (per_worker (fun w -> w.w_restarts));
      Aggregate.gauge_family ~name:"fq_fleet_workers"
        ~help:"Configured fleet size." [ ([], float_of_int t.cfg.workers) ];
      Aggregate.counter_family ~name:"fq_fleet_reloads_total"
        ~help:"Rolling reloads completed." [ ([], t.reloads) ];
      Aggregate.counter_family ~name:"fq_journal_compactions_total"
        ~help:"Parent-side journal-into-snapshot compactions." [ ([], t.compactions) ];
      Aggregate.counter_family ~name:"fq_fleet_journal_records_folded_total"
        ~help:"Worker journal records folded into the parent cache." [ ([], t.folded) ];
      Aggregate.gauge_family ~name:"fq_snapshot_last_save_timestamp_seconds"
        ~help:"Unix time of the last successful snapshot save (0 until the first)."
        [ ([], t.last_save) ] ]

let up_count t =
  Array.fold_left
    (fun acc w -> if w.w_status = W_up && w.w_pid <> None then acc + 1 else acc)
    0 t.ws

(* One synchronous control connection: the parent answers its own ops
   (topology, health, metrics, reload, shutdown, snapshot) and refuses
   evaluation — workers serve queries, the parent serves the fleet.  A
   read timeout bounds how long a silent peer can hold the loop. *)
let handle_conn t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send json =
    try
      output_string oc (Json.to_string json);
      output_char oc '\n';
      flush oc
    with Sys_error _ | Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
      (match Protocol.parse_request (String.trim line) with
      | Error e -> send (Protocol.malformed_response ~id:"" e)
      | Ok (Protocol.Ping { id }) -> send (Protocol.ok_response ~id [])
      | Ok (Protocol.Fleet_status { id }) ->
        send (Protocol.fleet_status_response ~id ~fleet:true (worker_infos t))
      | Ok (Protocol.Health { id }) ->
        send
          (Protocol.ok_response ~id
             [ ("fleet", Json.Bool true);
               ("workers", Json.Int t.cfg.workers);
               ("up", Json.Int (up_count t));
               ("reloads", Json.Int t.reloads);
               ("draining", Json.Bool t.stopping) ])
      | Ok (Protocol.Metrics { id }) ->
        send
          (Protocol.ok_response ~id
             [ ("version", Json.Int Aggregate.exposition_version);
               ("exposition", Json.Str (exposition t)) ])
      | Ok (Protocol.Reload { id; path }) -> (
        match rolling_reload t ~path with
        | Ok rolled ->
          send (Protocol.ok_response ~id [ ("workers_reloaded", Json.Int rolled) ])
        | Error e -> send (Protocol.malformed_response ~id ("reload: " ^ e)))
      | Ok (Protocol.Snapshot { id }) ->
        let _folded : int = compact t ~why:"snapshot request" in
        send
          (Protocol.ok_response ~id
             [ ("entries", Json.Int (Decide_cache.stats t.cache).Decide_cache.entries) ])
      | Ok (Protocol.Shutdown { id }) ->
        send (Protocol.ok_response ~id [ ("draining", Json.Bool true) ]);
        t.stopping <- true
      | Ok (Protocol.Eval _ | Protocol.Explain _ | Protocol.Traces _) ->
        send
          (Protocol.malformed_response ~id:""
             "fleet: evaluation is served by workers — connect via fq batch --connect, \
              which discovers them from fleet-status"));
      loop ()
  in
  loop ();
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try close_in ic with Sys_error _ -> ()

(* ----------------------------- shutdown ----------------------------- *)

(* Graceful drain: ask every live worker to shut down (the worker path
   answers its admitted requests before exiting), wait out the grace
   period, escalate SIGTERM then SIGKILL, fold every journal —
   destructively now, every owner is dead — and publish the snapshot. *)
let graceful_shutdown t =
  Array.iter
    (fun w ->
      if w.w_pid <> None then
        match Client.connect ~retries:0 ~timeout_ms:(max 1 t.cfg.probe_timeout_ms) w.w_addr with
        | Error _ -> (
          match w.w_pid with
          | Some pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          | None -> ())
        | Ok c ->
          (match Client.request c (Protocol.Shutdown { id = "fleet-shutdown" }) with
          | Ok _ -> ()
          | Error _ -> (
            match w.w_pid with
            | Some pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
            | None -> ()));
          Client.close c)
    t.ws;
  let deadline = now_ms () +. float_of_int t.cfg.drain_grace_ms in
  let rec wait escalated =
    reap t (now_ms ());
    if Array.for_all (fun w -> w.w_pid = None) t.ws then ()
    else if now_ms () > deadline then begin
      Array.iter
        (fun w ->
          match w.w_pid with
          | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          | None -> ())
        t.ws;
      if not escalated then wait true
      else
        Array.iter
          (fun w ->
            match w.w_pid with
            | Some pid ->
              (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
              w.w_pid <- None
            | None -> ())
          t.ws
    end
    else begin
      Unix.sleepf 0.05;
      wait escalated
    end
  in
  wait false;
  (* reap already folded each journal as its worker died; this pass only
     catches a journal whose worker we never managed to reap *)
  let _late : int =
    Array.fold_left (fun acc w -> acc + fold_worker_journal t w ~destructive:true) 0 t.ws
  in
  save_snapshot t ~why:"shutdown";
  let restarts = Array.fold_left (fun acc w -> acc + w.w_restarts) 0 t.ws in
  t.log
    (Printf.sprintf
       "fq fleet: shutdown complete — %d workers, %d restarts, %d reloads, %d journal \
        records folded"
       t.cfg.workers restarts t.reloads t.folded)

(* -------------------------------- boot ------------------------------ *)

let bind_control = function
  | Server.Unix_path path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | Server.Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind port %d: %s" port (Unix.error_message e)))

let run cfg =
  if cfg.workers < 1 then Error "fleet: need at least one worker"
  else begin
    let serve = cfg.serve in
    let journal_base =
      match serve.Server.journal with
      | Some j -> Some j
      | None -> Option.map (fun s -> s ^ ".journal") serve.Server.snapshot
    in
    let ws =
      Array.init cfg.workers (fun i ->
          let name = "w" ^ string_of_int i in
          { w_idx = i;
            w_name = name;
            w_addr = worker_addr serve.Server.addr i;
            w_journal = Option.map (fun j -> j ^ "." ^ name) journal_base;
            w_pid = None;
            w_status = W_backoff;
            w_restarts = 0;
            w_crashes = [];
            w_next_spawn = 0.;
            w_backoff_ms = float_of_int cfg.base_backoff_ms;
            w_probe_fails = 0 })
    in
    let t =
      { cfg;
        cache = Decide_cache.create ();
        ws;
        state = serve.Server.state;
        state_path = serve.Server.state_file;
        stopping = false;
        listen_fd = None;
        reloads = 0;
        compactions = 0;
        folded = 0;
        last_save = 0.;
        last_probe = 0.;
        term = Atomic.make false;
        hup = Atomic.make false;
        log = serve.Server.log }
    in
    (match Sys.os_type with
    | "Unix" ->
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
    | _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set t.term true))
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set t.hup true))
     with Invalid_argument _ -> ());
    (* warm boot: the snapshot, plus any journals a previous fleet left
       behind when it died uncleanly — fold them before the workers load
       the snapshot, so nothing a dead fleet decided is lost *)
    let snapshot_boot =
      match serve.Server.snapshot with
      | Some path when Sys.file_exists path -> (
        match Decide_cache.load t.cache path with
        | Ok n -> Ok n
        | Error e -> Error e)
      | _ -> Ok 0
    in
    Result.bind snapshot_boot @@ fun loaded ->
    let leftover =
      Array.fold_left (fun acc w -> acc + fold_worker_journal t w ~destructive:true) 0 t.ws
    in
    if leftover > 0 then begin
      t.log
        (Printf.sprintf "fq fleet: recovered %d journal records from a previous fleet"
           leftover);
      save_snapshot t ~why:"crash recovery"
    end;
    if loaded > 0 then
      t.log (Printf.sprintf "fq fleet: warm start, %d cached verdicts loaded" loaded);
    (* workers fork before the control socket binds, so the first N
       children have no parent fd to leak; respawns close it *)
    let spawn_errors =
      Array.fold_left
        (fun acc w ->
          match spawn_worker t w with
          | Ok _ -> acc
          | Error e ->
            schedule_respawn t w (now_ms ());
            e :: acc)
        [] t.ws
    in
    List.iter (fun e -> t.log (Printf.sprintf "fq fleet: %s" e)) spawn_errors;
    Result.bind (bind_control serve.Server.addr) @@ fun listen_fd ->
    t.listen_fd <- Some listen_fd;
    t.log
      (Format.asprintf "fq fleet: supervising %d workers on %a (%s)" cfg.workers
         Server.pp_addr serve.Server.addr
         (String.concat ", "
            (Array.to_list (Array.map (fun w -> Server.addr_to_string w.w_addr) t.ws))));
    while not t.stopping do
      if Atomic.exchange t.term false then begin
        t.log "fq fleet: SIGTERM received, draining";
        t.stopping <- true
      end;
      if Atomic.exchange t.hup false then
        (match rolling_reload t ~path:None with
        | Ok _ -> ()
        | Error e -> t.log (Printf.sprintf "fq fleet: SIGHUP reload failed: %s" e));
      if not t.stopping then begin
        let now = now_ms () in
        reap t now;
        respawn_due t now;
        probes t now;
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept listen_fd with
          | fd, _ -> handle_conn t fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end
    done;
    graceful_shutdown t;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (match serve.Server.addr with
    | Server.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Server.Tcp _ -> ());
    Ok 0
  end
