(* Append-only CRC-framed journal for the decide cache.  See journal.mli
   for the format and the recovery semantics; the invariant everything
   below maintains is that the file is always a valid header followed by
   zero or more complete records plus at most one torn tail, so recovery
   can never be worse than "lose the record being written". *)

let magic = "fq-decide-journal"
let version = 1
let header = Printf.sprintf "%s %d" magic version

(* IEEE CRC-32 (polynomial 0xEDB88320, the zlib/PNG one), table-driven.
   Pure OCaml so the journal adds no dependencies. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let frame payload = Printf.sprintf "%08lx\t%s\n" (crc32 payload) payload

(* A complete record line, without its trailing newline.  Returns the
   payload if the frame checks out. *)
let unframe line =
  match String.index_opt line '\t' with
  | Some 8 ->
      let crc_hex = String.sub line 0 8 in
      let payload = String.sub line 9 (String.length line - 9) in
      let ok =
        match Int32.of_string_opt ("0x" ^ crc_hex) with
        | Some crc -> Int32.equal crc (crc32 payload)
        | None -> false
      in
      if ok then Some payload else None
  | _ -> None

type t = {
  j_path : string;
  mutable j_fd : Unix.file_descr;
  mutable j_appended : int;
  mutable j_closed : bool;
}

type recovery = { applied : int; skipped : int; truncated_bytes : int }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover ?(truncate = true) path ~f =
  if not (Sys.file_exists path) then Ok { applied = 0; skipped = 0; truncated_bytes = 0 }
  else
    match read_file path with
    | exception Sys_error e -> Error (Printf.sprintf "journal: cannot read %s: %s" path e)
    | contents when String.length contents = 0 ->
        Ok { applied = 0; skipped = 0; truncated_bytes = 0 }
    | contents -> (
        (* Keep only the terminated prefix; whatever follows the last
           newline is a torn tail from an interrupted append. *)
        let valid_len =
          match String.rindex_opt contents '\n' with Some i -> i + 1 | None -> 0
        in
        let torn = String.length contents - valid_len in
        let lines =
          if valid_len = 0 then []
          else String.split_on_char '\n' (String.sub contents 0 (valid_len - 1))
        in
        match lines with
        | [] ->
            (* Nothing but a torn tail: the header itself never made it
               to disk whole.  Treat as empty — open_append rewrites it. *)
            if torn > 0 && truncate then
              (try Unix.truncate path 0 with Unix.Unix_error _ -> ());
            Ok { applied = 0; skipped = 0; truncated_bytes = torn }
        | hd :: records ->
            if not (String.equal hd header) then
              Error
                (Printf.sprintf "journal: %s: bad header %S (want %S)" path hd header)
            else begin
              if torn > 0 && truncate then
                (try Unix.truncate path valid_len with Unix.Unix_error _ -> ());
              let applied = ref 0 and skipped = ref 0 in
              List.iter
                (fun line ->
                  match unframe line with
                  | Some payload ->
                      f payload;
                      incr applied
                  | None -> incr skipped)
                records;
              Ok { applied = !applied; skipped = !skipped; truncated_bytes = torn }
            end)

let open_append path =
  try
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    if size = 0 then begin
      let line = header ^ "\n" in
      let n = Unix.write_substring fd line 0 (String.length line) in
      if n <> String.length line then begin
        Unix.close fd;
        failwith "short write on journal header"
      end
    end;
    Ok { j_path = path; j_fd = fd; j_appended = 0; j_closed = false }
  with
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "journal: cannot open %s: %s" path (Unix.error_message e))
  | Failure e -> Error (Printf.sprintf "journal: %s: %s" path e)

(* Append one framed record.  O_APPEND makes the write atomic with
   respect to position; a short write (ENOSPC mid-record) leaves a torn
   tail that the next recovery truncates — never a corrupt prefix. *)
let append t payload =
  if t.j_closed then Error "journal: closed"
  else
    match Fq_core.Fault.hit "journal.append" with
    | exception e -> Error (Printf.sprintf "journal: injected fault: %s" (Printexc.to_string e))
    | () -> (
        let line = frame payload in
        match Unix.write_substring t.j_fd line 0 (String.length line) with
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "journal: append: %s" (Unix.error_message e))
        | n when n <> String.length line ->
            Error (Printf.sprintf "journal: short write (%d/%d bytes)" n (String.length line))
        | _ ->
            t.j_appended <- t.j_appended + 1;
            Ok ())

let sync t = if not t.j_closed then try Unix.fsync t.j_fd with Unix.Unix_error _ -> ()

let close t =
  if not t.j_closed then begin
    t.j_closed <- true;
    try Unix.close t.j_fd with Unix.Unix_error _ -> ()
  end

let path t = t.j_path
let appended t = t.j_appended

(* Compaction: the cache was just snapshotted, so the journal's records
   are redundant — swap in a fresh header-only file.  Write-to-temp +
   rename keeps a valid journal at [path] at every instant; the fd must
   be reopened because the rename detaches the old inode. *)
let reset t =
  if t.j_closed then Error "journal: closed"
  else
    match Fq_core.Fault.hit "journal.rotate" with
    | exception e -> Error (Printf.sprintf "journal: injected fault: %s" (Printexc.to_string e))
    | () -> (
        let tmp = t.j_path ^ ".tmp" in
        try
          let oc = open_out_bin tmp in
          output_string oc (header ^ "\n");
          close_out oc;
          Sys.rename tmp t.j_path;
          (try Unix.close t.j_fd with Unix.Unix_error _ -> ());
          let fd = Unix.openfile t.j_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
          t.j_fd <- fd;
          Ok ()
        with
        | Sys_error e | Failure e ->
            (try Sys.remove tmp with Sys_error _ -> ());
            Error (Printf.sprintf "journal: reset: %s" e)
        | Unix.Unix_error (e, _, _) ->
            (try Sys.remove tmp with Sys_error _ -> ());
            Error (Printf.sprintf "journal: reset: %s" (Unix.error_message e)))
