(** The [fq serve] daemon: a persistent, crash-tolerant query service.

    Accepts connections on a Unix or TCP socket and speaks the
    newline-delimited JSON {!Protocol}.  Evaluation requests are
    dispatched onto a pool of OCaml 5 domains (the {!Fq_core.Supervisor}
    substrate) through a {e bounded} admission queue:

    - {b admission control} — at most [max_inflight] admitted-but-
      unfinished requests server-wide and [client_share] per connection;
      a request over either cap is answered immediately with a structured
      reject carrying its resume evidence and a [retry_after_ms] hint,
      never queued unboundedly;
    - {b deadline-aware shedding} — a request whose estimated queue wait
      (depth x EMA latency / workers) already exceeds its own deadline is
      rejected at admission with an honest retry hint, instead of being
      admitted only to blow its budget waiting;
    - {b brownout} — under sustained queue pressure ([brownout_queue]
      admitted jobs waiting) new admissions run with their fuel divided
      by [brownout_fuel_divisor]: degraded answers beat a collapse;
    - {b per-request budgets} — each eval runs under its own
      [Budget.make] governor, fuel capped by [max_fuel], so one hostile
      query cannot starve the pool;
    - {b a worker watchdog} — a domain still evaluating past its
      request's deadline is first cancelled cooperatively (the budget's
      cancel hook), and past [watchdog_grace_ms] more the victim request
      is answered with a classified error and the wedged domain's seat is
      handed to a freshly spawned replacement, so pool capacity cannot
      leak;
    - {b circuit breakers} — a per-domain {!Fq_core.Supervisor.Breaker}
      around the decision procedure, exactly as in [fq batch], rebuilt
      per epoch;
    - {b durability} — one shared {!Fq_domain.Decide_cache} serves every
      request; with [snapshot] set it is loaded at boot and written back
      on graceful shutdown and [SIGUSR1], and every {e fresh} verdict is
      also appended to a CRC-framed {!Journal} (at [journal], default
      [snapshot ^ ".journal"]) the moment it lands — after a crash,
      recovery replays the snapshot plus the journal's surviving records,
      truncating torn tails and skipping corrupt records instead of
      failing boot.  The accept loop compacts the journal into the
      snapshot every [journal_compact_every] appends;
    - {b hot reload} — a [reload] request or SIGHUP re-reads a state file
      ({!Fq_db.Codec.load_state}) and swaps the served database behind an
      epoch pointer: requests admitted before the swap finish on the old
      epoch, new admissions see the new one, optimizer statistics and
      breakers are rebuilt per epoch, and no connection drops;
    - {b bounded input} — a request line longer than [max_line_bytes] is
      drained and answered with a structured [malformed] reply; a hostile
      client cannot balloon a reader thread;
    - {b observability} — every request runs under a
      {!Fq_core.Telemetry} recording stamped with its trace id (client-
      supplied or server-minted) and merged into a server-wide registry
      of always-on label-dimensioned counters and log-bucketed
      {!Fq_core.Aggregate} histograms, served as a versioned Prometheus
      text exposition by [metrics] requests and dumped atomically to
      [metrics_file]; 1-in-[trace_sample] completed evals keep their
      span tree in a bounded ring served by [traces]; requests over
      [slow_ms] (or browned-out / watchdog-cancelled) append their
      trace, plan and estimates-vs-observed to the [slow_log] JSONL; a
      [health] op answers queue depth / breaker states / epoch inline,
      even when the pool is saturated. *)

type addr = Unix_path of string | Tcp of int  (** TCP binds 127.0.0.1 *)

val pp_addr : Format.formatter -> addr -> unit

val addr_to_string : addr -> string
(** ["unix:PATH"] / ["tcp:127.0.0.1:PORT"] — the form [fleet-status]
    replies carry; {!addr_of_string} inverts it. *)

val addr_of_string : string -> (addr, string) result
(** Accepts [unix:PATH], [tcp:PORT], [tcp:HOST:PORT] (host ignored; the
    server binds loopback), a bare PORT, or a bare PATH. *)

type config = {
  addr : addr;
  jobs : int;  (** worker domains evaluating admitted requests *)
  max_inflight : int;  (** server-wide admission cap (bounded queue) *)
  client_share : int;  (** per-connection in-flight cap (fair share) *)
  default_fuel : int;  (** fuel when the request names none *)
  max_fuel : int;  (** per-request fuel ceiling *)
  default_timeout_ms : int option;
  snapshot : string option;  (** decide-cache snapshot path *)
  snapshot_read_only : bool;
      (** load the snapshot at boot but never write it — the fleet-worker
          mode, where the parent owns the snapshot file and folds each
          worker's journal into it; also disables journal compaction
          (the parent's job) *)
  journal : string option;
      (** decide-cache journal path; [None] = [snapshot ^ ".journal"]
          when a snapshot is configured, else journaling is off *)
  state_file : string option;  (** the file SIGHUP / pathless reload re-reads *)
  worker_id : string option;
      (** fleet worker name stamped as a ["worker"] field into every
          reply (and the [fleet-status] answer); [None] for a lone
          server *)
  max_line_bytes : int;  (** NDJSON reader line-length bound *)
  journal_compact_every : int;  (** appends between journal compactions *)
  brownout_queue : int;  (** queue depth that triggers brownout fuel *)
  brownout_fuel_divisor : int;  (** fuel shrink factor under brownout *)
  watchdog_grace_ms : int;
      (** extra time past a request's deadline before the watchdog
          force-answers it and recycles the worker domain *)
  trace_sample : int;
      (** head-based trace sampling: record 1 in [trace_sample] eval
          requests into the trace ring ([0] = off) *)
  trace_ring : int;  (** completed sampled traces retained for [traces] *)
  slow_ms : float option;
      (** latency threshold for the slow-query log; brownout and
          watchdog-cancelled requests are logged regardless *)
  slow_log : string option;  (** slow-query JSONL path; [None] = off *)
  metrics_file : string option;
      (** periodic atomic dump of the Prometheus exposition *)
  extra_domains : (string * Fq_domain.Domain.t) list;
      (** served in addition to {!Protocol.domains} (tests register
          pathological domains here) *)
  default_domain : string;  (** for requests that name no domain *)
  state : Fq_db.State.t;  (** the database served at epoch 1 *)
  stats : Fq_db.Optimizer.Stats.t;  (** shared cost-model statistics *)
  log : string -> unit;  (** server log lines (stderr in the CLI) *)
}

val default_config : state:Fq_db.State.t -> addr -> config
(** [jobs = 4], [max_inflight = 256], [client_share = 64],
    [default_fuel = 10_000], [max_fuel = 1_000_000], no timeout, no
    snapshot/journal/state file, [max_line_bytes = 1 MiB],
    [journal_compact_every = 512], [brownout_queue = 32],
    [brownout_fuel_divisor = 4], [watchdog_grace_ms = 1000], tracing off
    ([trace_sample = 0], [trace_ring = 64]), no slow-query log, no
    metrics file, no extra domains, default domain ["presburger"],
    [Stats.of_state state], writable snapshot, no worker id, logging to
    [stderr]. *)

val run : config -> (int, string) result
(** Boot and serve until a [shutdown] request or SIGTERM (both take the
    same graceful drain: stop admitting, answer every admitted request,
    snapshot, exit): binds the socket, loads
    the snapshot if one exists, recovers and opens the journal, prints a
    ["listening on ..."] log line, and blocks.  Graceful shutdown drains
    admitted requests, answers them, writes the snapshot (resetting the
    journal it subsumes), and returns [Ok 0].  [Error] covers boot
    failures (unbindable socket, corrupt snapshot, a journal that is not
    a journal — torn and corrupt {e records} are recovered, not fatal). *)
