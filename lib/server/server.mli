(** The [fq serve] daemon: a persistent query service.

    Accepts connections on a Unix or TCP socket and speaks the
    newline-delimited JSON {!Protocol}.  Evaluation requests are
    dispatched onto a pool of OCaml 5 domains (the {!Fq_core.Supervisor}
    substrate) through a {e bounded} admission queue:

    - {b admission control} — at most [max_inflight] admitted-but-
      unfinished requests server-wide and [client_share] per connection;
      a request over either cap is answered immediately with a structured
      reject carrying its resume evidence and a [retry_after_ms] hint,
      never queued unboundedly;
    - {b per-request budgets} — each eval runs under its own
      [Budget.make] governor, fuel capped by [max_fuel], so one hostile
      query cannot starve the pool;
    - {b circuit breakers} — a per-domain {!Fq_core.Supervisor.Breaker}
      around the decision procedure, exactly as in [fq batch];
    - {b warm start} — one shared {!Fq_domain.Decide_cache} serves every
      request; with [snapshot] set it is loaded at boot and written back
      on graceful shutdown and on [SIGUSR1] (and on a [snapshot]
      request), so a restarted server does not re-pay QE;
    - {b shared statistics} — one mutex-safe {!Fq_db.Optimizer.Stats}
      instance feeds the cost-based optimizer across all requests;
    - {b observability} — every request runs under a
      {!Fq_core.Telemetry} recording whose counters and histograms are
      merged into a server-wide registry served by [metrics] requests,
      alongside request/latency/rejection counters and the cache stats. *)

type addr = Unix_path of string | Tcp of int  (** TCP binds 127.0.0.1 *)

val pp_addr : Format.formatter -> addr -> unit

type config = {
  addr : addr;
  jobs : int;  (** worker domains evaluating admitted requests *)
  max_inflight : int;  (** server-wide admission cap (bounded queue) *)
  client_share : int;  (** per-connection in-flight cap (fair share) *)
  default_fuel : int;  (** fuel when the request names none *)
  max_fuel : int;  (** per-request fuel ceiling *)
  default_timeout_ms : int option;
  snapshot : string option;  (** decide-cache snapshot path *)
  default_domain : string;  (** for requests that name no domain *)
  state : Fq_db.State.t;  (** the database served by this process *)
  stats : Fq_db.Optimizer.Stats.t;  (** shared cost-model statistics *)
  log : string -> unit;  (** server log lines (stderr in the CLI) *)
}

val default_config : state:Fq_db.State.t -> addr -> config
(** [jobs = 4], [max_inflight = 256], [client_share = 64],
    [default_fuel = 10_000], [max_fuel = 1_000_000], no timeout, no
    snapshot, default domain ["presburger"], [Stats.of_state state],
    logging to [stderr]. *)

val run : config -> (int, string) result
(** Boot and serve until a [shutdown] request: binds the socket, loads
    the snapshot if one exists, prints a ["listening on ..."] log line,
    and blocks.  Graceful shutdown drains admitted requests, answers
    them, writes the snapshot, and returns [Ok 0].  [Error] covers boot
    failures (unbindable socket, corrupt snapshot). *)
