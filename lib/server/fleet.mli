(** Multi-process serving: a supervisor parent over N [fq serve] workers.

    One crash domain per worker.  The parent forks [workers] independent
    {!Server.run} processes, each with its own listener (for a unix
    socket [ADDR], workers bind [ADDR.0], [ADDR.1], ...; for tcp port
    [P] they bind [P+1], [P+2], ...) and its own append-only journal.
    The parent keeps the base address as a control socket and owns the
    shared snapshot — workers load it warm and never write it
    ({!Server.config.snapshot_read_only}), the parent periodically folds
    worker journals into its own cache and republishes.

    Supervision policy (the process-level mirror of
    {!Fq_core.Supervisor}):
    - {b liveness}: [waitpid WNOHANG] each tick, plus a [health] probe
      over the wire every [probe_interval_ms] — [probe_failures]
      consecutive misses get the worker killed and restarted;
    - {b restart}: exponential backoff from [base_backoff_ms] by
      [backoff_factor] up to [max_backoff_ms], reset after a healthy
      stretch;
    - {b flap breaker}: [restart_limit] crashes inside [flap_window_ms]
      park the worker — no further respawns, discovery stops listing it
      — until an operator restarts the fleet;
    - {b rolling reload} (SIGHUP or a [reload] control request): the
      state file is validated once up front, then live workers reload
      one at a time, so the fleet never serves zero workers and a
      poison state stops after the first;
    - {b graceful drain} (SIGTERM or [shutdown]): every worker drains
      its admitted requests, every journal is folded into the snapshot,
      then the parent exits 0.

    The control socket answers [ping], [health], [metrics] (fleet-level
    exposition: [fq_fleet_worker_up{worker}], [fq_fleet_restarts_total
    {worker}], [fq_journal_compactions_total],
    [fq_snapshot_last_save_timestamp_seconds], ...), [fleet-status]
    (the live topology clients discover workers from — see
    {!Client.discover}), [reload], [snapshot], and [shutdown].
    Evaluation requests are refused with a pointer at the workers:
    queries go to workers, fleet management goes to the parent.

    {b Fault sites} (see {!Fq_core.Fault}): ["fleet.spawn"] fires
    before each fork (a faulted spawn rides the same backoff schedule
    as a crash); ["fleet.probe"] fires before each wire probe (models a
    probe path outage — enough consecutive hits restart a healthy
    worker, which the fleet must absorb). *)

type config = {
  workers : int;  (** fleet size; at least 1 *)
  restart_limit : int;  (** crashes within [flap_window_ms] that park a worker *)
  flap_window_ms : int;
  base_backoff_ms : int;  (** first respawn delay after a crash *)
  backoff_factor : float;
  max_backoff_ms : int;
  probe_interval_ms : int;  (** wire health-probe period *)
  probe_timeout_ms : int;  (** per-probe connect/read budget *)
  probe_failures : int;  (** consecutive misses before the worker is killed *)
  drain_grace_ms : int;  (** graceful-shutdown budget before SIGTERM/SIGKILL escalation *)
  serve : Server.config;
      (** template for workers: [addr] is the base address, [journal]
          (or [snapshot ^ ".journal"]) the per-worker journal base path;
          the fleet derives per-worker values and forces
          [snapshot_read_only] *)
}

val default_config : state:Fq_db.State.t -> Server.addr -> config
(** Two workers; park after 5 crashes in 30s; backoff 100ms doubling to
    5s; probe every 1s with a 1s budget, kill after 3 misses; 10s drain
    grace.  [serve] is {!Server.default_config}. *)

val worker_addr : Server.addr -> int -> Server.addr
(** The address worker [i] listens on: [ADDR.i] for unix sockets,
    [port + 1 + i] for tcp. *)

val run : config -> (int, string) result
(** Boot the fleet and supervise until [shutdown]/SIGTERM: load the
    snapshot, fold any journals a previous fleet left behind, fork the
    workers, bind the control socket, then loop (reap / respawn / probe
    / serve control connections).  Returns the process exit code —
    [Ok 0] after a graceful drain — or [Error] if the snapshot, control
    socket, or configuration is unusable. *)
