(* The fq serve daemon.

   Thread/domain layout: the main thread owns the listening socket and
   accepts connections; each connection gets a reader thread (cheap,
   blocking I/O) that parses request lines, answers control ops inline,
   and admits eval/explain work into a bounded queue; a fixed pool of
   OCaml 5 worker domains drains the queue, evaluates under per-request
   budgets, and writes each response back under the connection's write
   lock (pipelined responses interleave in completion order, correlated
   by id).  Admission over the global or per-connection cap is answered
   immediately with a structured reject carrying resume evidence — the
   queue is the only buffer and it is bounded by [max_inflight]. *)

module Budget = Fq_core.Budget
module Telemetry = Fq_core.Telemetry
module Supervisor = Fq_core.Supervisor
module Json = Fq_core.Json
module Formula = Fq_logic.Formula
module Parser = Fq_logic.Parser
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema
module Relalg = Fq_db.Relalg
module Optimizer = Fq_db.Optimizer
module Decide_cache = Fq_domain.Decide_cache
module Query = Fq_eval.Query
module Outcome = Fq_eval.Outcome

type addr = Unix_path of string | Tcp of int

let pp_addr fmt = function
  | Unix_path p -> Format.fprintf fmt "unix:%s" p
  | Tcp port -> Format.fprintf fmt "tcp:127.0.0.1:%d" port

type config = {
  addr : addr;
  jobs : int;
  max_inflight : int;
  client_share : int;
  default_fuel : int;
  max_fuel : int;
  default_timeout_ms : int option;
  snapshot : string option;
  default_domain : string;
  state : State.t;
  stats : Optimizer.Stats.t;
  log : string -> unit;
}

let default_config ~state addr =
  { addr;
    jobs = 4;
    max_inflight = 256;
    client_share = 64;
    default_fuel = 10_000;
    max_fuel = 1_000_000;
    default_timeout_ms = None;
    snapshot = None;
    default_domain = "presburger";
    state;
    stats = Optimizer.Stats.of_state state;
    log = (fun line -> Printf.eprintf "%s\n%!" line) }

(* -------------------------- metrics registry ------------------------ *)

(* Server-wide aggregate of the per-request telemetry reports plus the
   service counters.  The per-request Telemetry.record collectors are
   domain-local; this registry is the cross-domain rendezvous behind the
   protocol's metrics op. *)

type hist = { mutable h_count : int; mutable h_sum : float; mutable h_min : float; mutable h_max : float }

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, int ref) Hashtbl.t;
  r_hists : (string, hist) Hashtbl.t;
}

let registry_create () =
  { r_lock = Mutex.create (); r_counters = Hashtbl.create 32; r_hists = Hashtbl.create 16 }

let reg_locked reg f =
  Mutex.lock reg.r_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.r_lock) f

let reg_count_unlocked reg name n =
  match Hashtbl.find_opt reg.r_counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add reg.r_counters name (ref n)

let reg_observe_unlocked reg name v =
  match Hashtbl.find_opt reg.r_hists name with
  | Some h ->
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  | None -> Hashtbl.add reg.r_hists name { h_count = 1; h_sum = v; h_min = v; h_max = v }

let reg_count reg ?(n = 1) name = reg_locked reg (fun () -> reg_count_unlocked reg name n)
let reg_observe reg name v = reg_locked reg (fun () -> reg_observe_unlocked reg name v)

let reg_get reg name =
  reg_locked reg (fun () ->
      match Hashtbl.find_opt reg.r_counters name with Some r -> !r | None -> 0)

let merge_report reg (t : Telemetry.report) =
  reg_locked reg (fun () ->
      List.iter (fun (name, n) -> reg_count_unlocked reg name n) t.Telemetry.counters;
      List.iter
        (fun (name, (h : Telemetry.histogram)) ->
          match Hashtbl.find_opt reg.r_hists name with
          | Some agg ->
            agg.h_count <- agg.h_count + h.Telemetry.count;
            agg.h_sum <- agg.h_sum +. h.Telemetry.sum;
            if h.Telemetry.min < agg.h_min then agg.h_min <- h.Telemetry.min;
            if h.Telemetry.max > agg.h_max then agg.h_max <- h.Telemetry.max
          | None ->
            Hashtbl.add reg.r_hists name
              { h_count = h.Telemetry.count;
                h_sum = h.Telemetry.sum;
                h_min = h.Telemetry.min;
                h_max = h.Telemetry.max })
        t.Telemetry.histograms)

let registry_json reg =
  reg_locked reg (fun () ->
      let counters =
        Hashtbl.fold (fun name r acc -> (name, Json.Int !r) :: acc) reg.r_counters []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let hists =
        Hashtbl.fold
          (fun name h acc ->
            ( name,
              Json.Obj
                [ ("count", Json.Int h.h_count);
                  ("sum", Json.Float h.h_sum);
                  ("min", Json.Float h.h_min);
                  ("max", Json.Float h.h_max);
                  ("mean",
                   Json.Float (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count))
                ] )
            :: acc)
          reg.r_hists []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      (counters, hists))

(* ------------------------------ plumbing ---------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_olock : Mutex.t;
  mutable c_inflight : int;  (* guarded by the server lock *)
  mutable c_closed : bool;  (* guarded by c_olock *)
}

type job = { j_req : Protocol.request; j_conn : conn }

type t = {
  cfg : config;
  cache : Decide_cache.t;
  breakers : (string, Supervisor.Breaker.t) Hashtbl.t;
  queue : job Queue.t;
  lock : Mutex.t;  (* guards queue, inflight, conn inflights, stopping *)
  nonempty : Condition.t;
  mutable inflight : int;
  mutable stopping : bool;
  reg : registry;
  usr1 : bool Atomic.t;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let send srv conn json =
  Mutex.lock conn.c_olock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.c_olock) @@ fun () ->
  if not conn.c_closed then
    try
      output_string conn.c_oc (Json.to_string json);
      output_char conn.c_oc '\n';
      flush conn.c_oc
    with Sys_error _ | Unix.Unix_error _ ->
      (* the peer went away mid-write; the reader thread will see EOF *)
      conn.c_closed <- true;
      reg_count srv.reg "serve.send_failures"

(* ----------------------------- evaluation --------------------------- *)

(* Mirrors the fq batch worker: breaker outside the cache, budget trips
   never counted against the breaker, crash isolation via the supervisor
   (one attempt — retrying is the client's decision, it owns the resume
   token). *)
let eval_outcome srv ~domain_name ~domain ~fuel ~timeout_ms ~resume text =
  match Parser.formula text with
  | Error e ->
    { Outcome.verdict = Outcome.Failed { reason = "parse error: " ^ e };
      usage = { Budget.ticks = 0; elapsed_ms = 0. };
      attempts = [] }
  | Ok f ->
    let breaker =
      match Hashtbl.find_opt srv.breakers domain_name with
      | Some b -> b
      | None -> assert false (* populated for every registry domain at boot *)
    in
    let cached = Decide_cache.domain srv.cache domain in
    let (module C : Fq_domain.Domain.S) = cached in
    let guarded =
      Fq_domain.Domain.with_decide cached (fun g ->
          if not (Supervisor.Breaker.allow breaker) then
            Error
              (Printf.sprintf "unsupported: circuit open: %s decision procedure cooling down"
                 domain_name)
          else
            match C.decide g with
            | Ok _ as r ->
              Supervisor.Breaker.success breaker;
              r
            | Error e as r ->
              (match Budget.failure_of_string e with
              | Some (Budget.Unsupported _) | None -> Supervisor.Breaker.failure breaker
              | Some _ -> ());
              r
            | exception e ->
              Supervisor.Breaker.failure breaker;
              raise e)
    in
    let fuel = min (max 1 (Option.value fuel ~default:srv.cfg.default_fuel)) srv.cfg.max_fuel in
    let timeout_ms =
      match timeout_ms with Some _ as t -> t | None -> srv.cfg.default_timeout_ms
    in
    let attempt _ =
      let budget = Budget.make ~fuel ?timeout_ms () in
      Query.eval_resilient ~budget ?resume ~stats:srv.cfg.stats ~domain:guarded
        ~state:srv.cfg.state f
    in
    let run =
      Supervisor.supervise
        ~policy:{ Supervisor.default_policy with max_attempts = 1 }
        ~name:("serve:" ^ domain_name) attempt
    in
    (match run.Supervisor.outcome with
    | Supervisor.Value rep -> rep
    | Supervisor.Crashed { reason; _ } ->
      { Outcome.verdict = Outcome.Failed { reason = "crashed: " ^ reason };
        usage = { Budget.ticks = 0; elapsed_ms = 0. };
        attempts = [] })

let resolve_domain srv = function
  | None -> Ok (srv.cfg.default_domain, List.assoc srv.cfg.default_domain Protocol.domains)
  | Some name -> (
    match Protocol.find_domain name with
    | Some d -> Ok (name, d)
    | None ->
      Error
        (Printf.sprintf "unknown domain %S (try: %s)" name
           (String.concat ", " (List.map fst Protocol.domains))))

let handle_eval srv ~id ~domain ~formula ~fuel ~timeout_ms ~resume =
  match resolve_domain srv domain with
  | Error e -> Protocol.malformed_response ~id e
  | Ok (domain_name, dom) ->
    let started = now_ms () in
    let rep, treport =
      Telemetry.record (fun () ->
          eval_outcome srv ~domain_name ~domain:dom ~fuel ~timeout_ms ~resume formula)
    in
    merge_report srv.reg treport;
    reg_count srv.reg "serve.requests";
    reg_count srv.reg ("serve.eval." ^ Outcome.status rep);
    reg_observe srv.reg "serve.latency_ms" (now_ms () -. started);
    reg_observe srv.reg "serve.ticks" (float_of_int rep.Outcome.usage.Budget.ticks);
    Protocol.outcome_response ~id rep

(* A dry compile, as in fq explain: which tier will answer, and with
   what plan — without spending the budget. *)
let handle_explain srv ~id ~domain ~formula =
  match resolve_domain srv domain with
  | Error e -> Protocol.malformed_response ~id e
  | Ok (domain_name, dom) -> (
    match Parser.formula formula with
    | Error e -> Protocol.malformed_response ~id ("parse error: " ^ e)
    | Ok f ->
      reg_count srv.reg "serve.requests";
      reg_count srv.reg "serve.explain";
      let schema = Schema.relations (State.schema srv.cfg.state) in
      let safety, safe =
        match Fq_eval.Safe_range.check ~schema f with
        | Fq_eval.Safe_range.Safe_range -> ("safe-range", true)
        | Fq_eval.Safe_range.Not_safe_range why -> ("not safe-range: " ^ why, false)
      in
      let plan_string p = Format.asprintf "%a" Relalg.pp p in
      let tier, plan =
        if not safe then ("enumerate", None)
        else
          match
            Fq_eval.Ranf.compile ~stats:srv.cfg.stats ~domain:dom ~state:srv.cfg.state f
          with
          | Ok { Fq_eval.Algebra_translate.plan; _ } -> ("ranf-algebra", Some (plan_string plan))
          | Error _ -> (
            match
              Fq_eval.Algebra_translate.compile ~stats:srv.cfg.stats ~domain:dom
                ~state:srv.cfg.state f
            with
            | Ok { Fq_eval.Algebra_translate.plan; _ } ->
              ("adom-algebra", Some (plan_string plan))
            | Error _ -> ("enumerate", None))
      in
      Protocol.ok_response ~id
        ([ ("domain", Json.Str domain_name); ("safety", Json.Str safety);
           ("tier", Json.Str tier) ]
        @ match plan with None -> [] | Some p -> [ ("plan", Json.Str p) ]))

let metrics_response srv ~id =
  let counters, hists = registry_json srv.reg in
  let cache = Decide_cache.stats srv.cache in
  let inflight = Mutex.protect srv.lock (fun () -> srv.inflight) in
  Protocol.ok_response ~id
    [ ("counters", Json.Obj counters);
      ("histograms", Json.Obj hists);
      ( "decide_cache",
        Json.Obj
          [ ("hits", Json.Int cache.Decide_cache.hits);
            ("misses", Json.Int cache.Decide_cache.misses);
            ("entries", Json.Int cache.Decide_cache.entries);
            ("evictions", Json.Int cache.Decide_cache.evictions) ] );
      ("inflight", Json.Int inflight) ]

(* ------------------------------ snapshots --------------------------- *)

let save_snapshot srv =
  match srv.cfg.snapshot with
  | None -> Ok 0
  | Some path -> Decide_cache.save srv.cache path

let save_snapshot_logged srv ~why =
  match save_snapshot srv with
  | Ok 0 when srv.cfg.snapshot = None -> ()
  | Ok n ->
    srv.cfg.log
      (Printf.sprintf "fq serve: snapshot written (%d entries, %s) to %s" n why
         (Option.get srv.cfg.snapshot))
  | Error e -> srv.cfg.log (Printf.sprintf "fq serve: snapshot failed: %s" e)

(* ------------------------------ admission --------------------------- *)

(* The resume evidence a rejected request walks away with: whatever it
   sent, or a fresh zero-progress token at the query's arity. *)
let reject_resume ~resume ~formula =
  match resume with
  | Some r -> Ok r
  | None ->
    Result.map
      (fun f ->
        { Outcome.seen = 0;
          found = Relation.empty ~arity:(List.length (Formula.free_vars f)) })
      (Result.map_error (fun e -> "parse error: " ^ e) (Parser.formula formula))

let admit srv conn req =
  let verdict =
    Mutex.protect srv.lock (fun () ->
        if srv.stopping then `Reject "shutting down"
        else if srv.inflight >= srv.cfg.max_inflight then
          `Reject
            (Printf.sprintf "server over capacity (%d requests in flight)" srv.inflight)
        else if conn.c_inflight >= srv.cfg.client_share then
          `Reject
            (Printf.sprintf "client over fair share (%d requests in flight)" conn.c_inflight)
        else begin
          srv.inflight <- srv.inflight + 1;
          conn.c_inflight <- conn.c_inflight + 1;
          Queue.push { j_req = req; j_conn = conn } srv.queue;
          Condition.signal srv.nonempty;
          `Admitted
        end)
  in
  match verdict with
  | `Admitted -> ()
  | `Reject reason ->
    reg_count srv.reg "serve.rejected";
    let id = Protocol.request_id req in
    let resume, formula =
      match req with
      | Protocol.Eval { resume; formula; _ } -> (resume, formula)
      | Protocol.Explain { formula; _ } -> (None, formula)
      | _ -> (None, "")
    in
    (match reject_resume ~resume ~formula with
    | Ok resume -> send srv conn (Protocol.reject_response ~id ~reason ~retry_after_ms:25 ~resume)
    | Error e -> send srv conn (Protocol.malformed_response ~id e))

(* ------------------------------- workers ---------------------------- *)

let handle srv = function
  | Protocol.Eval { id; domain; formula; fuel; timeout_ms; resume } ->
    handle_eval srv ~id ~domain ~formula ~fuel ~timeout_ms ~resume
  | Protocol.Explain { id; domain; formula } -> handle_explain srv ~id ~domain ~formula
  | Protocol.Metrics _ | Protocol.Ping _ | Protocol.Snapshot _ | Protocol.Shutdown _ ->
    assert false (* control ops are answered inline by the reader thread *)

let rec worker srv =
  Mutex.lock srv.lock;
  while Queue.is_empty srv.queue && not srv.stopping do
    Condition.wait srv.nonempty srv.lock
  done;
  if Queue.is_empty srv.queue then Mutex.unlock srv.lock (* stopping, drained: exit *)
  else begin
    let job = Queue.pop srv.queue in
    Mutex.unlock srv.lock;
    let response = handle srv job.j_req in
    send srv job.j_conn response;
    Mutex.protect srv.lock (fun () ->
        srv.inflight <- srv.inflight - 1;
        job.j_conn.c_inflight <- job.j_conn.c_inflight - 1);
    worker srv
  end

(* ------------------------------ connections ------------------------- *)

let initiate_shutdown srv =
  Mutex.protect srv.lock (fun () ->
      srv.stopping <- true;
      Condition.broadcast srv.nonempty)

let conn_loop srv conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  reg_count srv.reg "serve.connections";
  let rec go () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      let line = String.trim line in
      if line = "" then go ()
      else begin
        (match Protocol.parse_request line with
        | Error e ->
          reg_count srv.reg "serve.malformed";
          send srv conn (Protocol.malformed_response ~id:"" e)
        | Ok (Protocol.Ping { id }) -> send srv conn (Protocol.ok_response ~id [])
        | Ok (Protocol.Metrics { id }) ->
          reg_count srv.reg "serve.requests";
          send srv conn (metrics_response srv ~id)
        | Ok (Protocol.Snapshot { id }) -> (
          reg_count srv.reg "serve.requests";
          match save_snapshot srv with
          | Ok n -> send srv conn (Protocol.ok_response ~id [ ("entries", Json.Int n) ])
          | Error e -> send srv conn (Protocol.malformed_response ~id e))
        | Ok (Protocol.Shutdown { id }) ->
          reg_count srv.reg "serve.requests";
          send srv conn (Protocol.ok_response ~id [ ("draining", Json.Bool true) ]);
          initiate_shutdown srv
        | Ok (Protocol.Eval _ as req) | Ok (Protocol.Explain _ as req) -> admit srv conn req);
        go ()
      end
  in
  go ();
  Mutex.protect conn.c_olock (fun () -> conn.c_closed <- true)

(* -------------------------------- boot ------------------------------ *)

let bind_socket = function
  | Unix_path path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind port %d: %s" port (Unix.error_message e)))

let run_bound cfg =
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  | _ -> ());
  let srv =
    { cfg;
      cache = Decide_cache.create ();
      breakers = Hashtbl.create 8;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      inflight = 0;
      stopping = false;
      reg = registry_create ();
      usr1 = Atomic.make false }
  in
  List.iter
    (fun (name, _) -> Hashtbl.replace srv.breakers name (Supervisor.Breaker.create ()))
    Protocol.domains;
  (try
     Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Atomic.set srv.usr1 true))
   with Invalid_argument _ -> ());
  let snapshot_boot =
    match cfg.snapshot with
    | Some path when Sys.file_exists path -> (
      match Decide_cache.load srv.cache path with
      | Ok n -> Ok (Some n)
      | Error e -> Error e)
    | _ -> Ok None
  in
  Result.bind snapshot_boot @@ fun loaded ->
  Result.bind (bind_socket cfg.addr) @@ fun listen_fd ->
  (match loaded with
  | Some n -> cfg.log (Printf.sprintf "fq serve: warm start, %d cached verdicts loaded" n)
  | None -> ());
  cfg.log
    (Format.asprintf "fq serve: listening on %a (%d workers, %d in-flight cap)" pp_addr
       cfg.addr cfg.jobs cfg.max_inflight);
  let workers = Array.init (max 1 cfg.jobs) (fun _ -> Stdlib.Domain.spawn (fun () -> worker srv)) in
  let conns = ref [] in
  let stopping () = Mutex.protect srv.lock (fun () -> srv.stopping) in
  while not (stopping ()) do
    if Atomic.exchange srv.usr1 false then save_snapshot_logged srv ~why:"SIGUSR1";
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listen_fd with
      | fd, _ ->
        let conn =
          { c_fd = fd;
            c_oc = Unix.out_channel_of_descr fd;
            c_olock = Mutex.create ();
            c_inflight = 0;
            c_closed = false }
        in
        let thread = Thread.create (fun () -> conn_loop srv conn) () in
        conns := (conn, thread) :: !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* graceful shutdown: stop accepting, drain admitted work, snapshot,
     then unblock the reader threads and close every connection *)
  Array.iter Stdlib.Domain.join workers;
  save_snapshot_logged srv ~why:"shutdown";
  List.iter
    (fun (conn, thread) ->
      (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Thread.join thread;
      (try Unix.close conn.c_fd with Unix.Unix_error _ -> ()))
    !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let served = reg_get srv.reg "serve.requests" in
  let rejected = reg_get srv.reg "serve.rejected" in
  cfg.log
    (Printf.sprintf
       "fq serve: shutdown complete — %d requests served (%d complete, %d partial, %d \
        unsupported, %d error), %d rejected"
       served
       (reg_get srv.reg "serve.eval.complete")
       (reg_get srv.reg "serve.eval.partial")
       (reg_get srv.reg "serve.eval.unsupported")
       (reg_get srv.reg "serve.eval.error")
       rejected);
  Ok 0

let run cfg =
  match Protocol.find_domain cfg.default_domain with
  | None -> Error (Printf.sprintf "unknown default domain %S" cfg.default_domain)
  | Some _ -> run_bound cfg
