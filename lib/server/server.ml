(* The fq serve daemon.

   Thread/domain layout: the main thread owns the listening socket and
   accepts connections; each connection gets a reader thread (cheap,
   blocking I/O) that parses request lines, answers control ops inline,
   and admits eval/explain work into a bounded queue; a fixed pool of
   OCaml 5 worker domains drains the queue, evaluates under per-request
   budgets, and writes each response back under the connection's write
   lock (pipelined responses interleave in completion order, correlated
   by id).  Admission over the global or per-connection cap is answered
   immediately with a structured reject carrying resume evidence — the
   queue is the only buffer and it is bounded by [max_inflight].

   Crash safety and hot reload (PR 8): every fresh decide-cache verdict
   is appended to a CRC-framed journal before the response leaves the
   building, so a kill -9 loses at most the record being written; the
   accept loop periodically compacts the journal into the snapshot.  The
   served database lives behind an epoch pointer — [reload]/SIGHUP build
   a new epoch (state + optimizer stats + fresh breakers) and swap it in
   one pointer write; a job is pinned to the epoch current at admission,
   so in-flight work finishes on the old state while new admissions see
   the new one, and no connection drops.  Overload is met at admission
   (deadline-aware shedding against an EMA queue-wait estimate, brownout
   fuel reduction under sustained queue pressure) and behind it (a
   watchdog that cancels and, past a grace period, recycles a worker
   domain wedged beyond its request deadline). *)

module Budget = Fq_core.Budget
module Telemetry = Fq_core.Telemetry
module Supervisor = Fq_core.Supervisor
module Json = Fq_core.Json
module Formula = Fq_logic.Formula
module Parser = Fq_logic.Parser
module Relation = Fq_db.Relation
module State = Fq_db.State
module Schema = Fq_db.Schema
module Relalg = Fq_db.Relalg
module Optimizer = Fq_db.Optimizer
module Decide_cache = Fq_domain.Decide_cache
module Query = Fq_eval.Query
module Outcome = Fq_eval.Outcome

type addr = Unix_path of string | Tcp of int

let pp_addr fmt = function
  | Unix_path p -> Format.fprintf fmt "unix:%s" p
  | Tcp port -> Format.fprintf fmt "tcp:127.0.0.1:%d" port

let addr_to_string = Format.asprintf "%a" pp_addr

(* unix:PATH, tcp:PORT (optionally tcp:127.0.0.1:PORT, the pp form), a
   bare PORT, or a bare PATH — one parser shared by the CLI and the
   fleet-status discovery path, so printed addresses round-trip. *)
let addr_of_string s =
  let prefixed p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_path (after "unix:"))
  else if prefixed "tcp:" then
    let rest = after "tcp:" in
    let port_str =
      match String.rindex_opt rest ':' with
      | Some i -> String.sub rest (i + 1) (String.length rest - i - 1)
      | None -> rest
    in
    match int_of_string_opt port_str with
    | Some port -> Ok (Tcp port)
    | None -> Error (Printf.sprintf "bad port in %S" s)
  else
    match int_of_string_opt s with
    | Some port -> Ok (Tcp port)
    | None -> Ok (Unix_path s)

type config = {
  addr : addr;
  jobs : int;
  max_inflight : int;
  client_share : int;
  default_fuel : int;
  max_fuel : int;
  default_timeout_ms : int option;
  snapshot : string option;
  snapshot_read_only : bool;
  journal : string option;
  state_file : string option;
  worker_id : string option;
  max_line_bytes : int;
  journal_compact_every : int;
  brownout_queue : int;
  brownout_fuel_divisor : int;
  watchdog_grace_ms : int;
  trace_sample : int;
  trace_ring : int;
  slow_ms : float option;
  slow_log : string option;
  metrics_file : string option;
  extra_domains : (string * Fq_domain.Domain.t) list;
  default_domain : string;
  state : State.t;
  stats : Optimizer.Stats.t;
  log : string -> unit;
}

let default_config ~state addr =
  { addr;
    jobs = 4;
    max_inflight = 256;
    client_share = 64;
    default_fuel = 10_000;
    max_fuel = 1_000_000;
    default_timeout_ms = None;
    snapshot = None;
    snapshot_read_only = false;
    journal = None;
    state_file = None;
    worker_id = None;
    max_line_bytes = 1 lsl 20;
    journal_compact_every = 512;
    brownout_queue = 32;
    brownout_fuel_divisor = 4;
    watchdog_grace_ms = 1000;
    trace_sample = 0;
    trace_ring = 64;
    slow_ms = None;
    slow_log = None;
    metrics_file = None;
    extra_domains = [];
    default_domain = "presburger";
    state;
    stats = Optimizer.Stats.of_state state;
    log = (fun line -> Printf.eprintf "%s\n%!" line) }

(* The journal rides with the snapshot unless given its own path: both
   files describe the same cache, and compaction folds one into the
   other. *)
let journal_path cfg =
  match cfg.journal with
  | Some p -> Some p
  | None -> Option.map (fun s -> s ^ ".journal") cfg.snapshot

(* -------------------------- metrics registry ------------------------ *)

(* Server-wide, always-on aggregation.  Two planes share one lock:

   - the {e engine} plane: dotted-name counters and count/sum/min/max
     summaries merged from each request's Telemetry report — the names
     the engines emit ([decide_cache.hits], [relalg.node_card.<fp>], ...);
   - the {e service} plane: label-dimensioned monotonic counters and
     fixed log-bucketed {!Aggregate} histograms keyed by
     (family, sorted labels) — per-client / per-domain / per-epoch /
     per-tier request metrics, rendered to the versioned Prometheus text
     exposition.

   The per-request Telemetry.record collectors are domain-local; this
   registry is the cross-domain rendezvous behind the metrics op.  Every
   key space is bounded: engine names past [reg_key_cap] are dropped and
   tallied, labeled families past the cap fold into an
   [{overflow="true"}] sample, so adversarial label streams degrade to a
   coarser aggregate instead of growing the scrape without limit. *)

module Aggregate = Fq_core.Aggregate

type hist = { mutable h_count : int; mutable h_sum : float; mutable h_min : float; mutable h_max : float }

type lkey = string * (string * string) list (* family, labels sorted by name *)

type registry = {
  r_lock : Mutex.t;
  r_counters : (string, int ref) Hashtbl.t;
  r_hists : (string, hist) Hashtbl.t;
  r_lab_counters : (lkey, int ref) Hashtbl.t;
  r_lab_hists : (lkey, Aggregate.hist) Hashtbl.t;
  r_clients : (int, string) Hashtbl.t; (* connection id -> client label *)
}

let reg_key_cap = 4096
let client_label_cap = 64

let registry_create () =
  { r_lock = Mutex.create ();
    r_counters = Hashtbl.create 32;
    r_hists = Hashtbl.create 16;
    r_lab_counters = Hashtbl.create 32;
    r_lab_hists = Hashtbl.create 16;
    r_clients = Hashtbl.create 16 }

let reg_locked reg f =
  Mutex.lock reg.r_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.r_lock) f

let reg_count_unlocked reg name n =
  match Hashtbl.find_opt reg.r_counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add reg.r_counters name (ref n)

let reg_observe_unlocked reg name v =
  match Hashtbl.find_opt reg.r_hists name with
  | Some h ->
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  | None ->
    if Hashtbl.length reg.r_hists >= reg_key_cap then
      reg_count_unlocked reg "serve.registry_dropped_keys" 1
    else Hashtbl.add reg.r_hists name { h_count = 1; h_sum = v; h_min = v; h_max = v }

let reg_count reg ?(n = 1) name = reg_locked reg (fun () -> reg_count_unlocked reg name n)
let reg_observe reg name v = reg_locked reg (fun () -> reg_observe_unlocked reg name v)

(* labeled service metrics; labels are canonicalized (sorted) so the key
   is independent of call-site argument order *)

let lkey name labels : lkey = (name, List.sort (fun (a, _) (b, _) -> compare a b) labels)

let bounded_lkey tbl_len mem key =
  if mem key then key
  else if tbl_len () >= reg_key_cap then (fst key, [ ("overflow", "true") ])
  else key

let reg_lcount reg ?(n = 1) name labels =
  reg_locked reg (fun () ->
      let key =
        bounded_lkey
          (fun () -> Hashtbl.length reg.r_lab_counters)
          (Hashtbl.mem reg.r_lab_counters) (lkey name labels)
      in
      match Hashtbl.find_opt reg.r_lab_counters key with
      | Some r -> r := !r + n
      | None -> Hashtbl.add reg.r_lab_counters key (ref n))

let reg_lobserve reg name labels v =
  reg_locked reg (fun () ->
      let key =
        bounded_lkey
          (fun () -> Hashtbl.length reg.r_lab_hists)
          (Hashtbl.mem reg.r_lab_hists) (lkey name labels)
      in
      match Hashtbl.find_opt reg.r_lab_hists key with
      | Some h -> Aggregate.observe h v
      | None ->
        let h = Aggregate.create () in
        Aggregate.observe h v;
        Hashtbl.add reg.r_lab_hists key h)

(* The per-client label dimension is the only one a peer controls (by
   opening connections), so it gets its own cardinality cap: the first
   [client_label_cap] connections keep distinct labels, the rest share
   ["other"]. *)
let client_label reg conn_id =
  reg_locked reg (fun () ->
      match Hashtbl.find_opt reg.r_clients conn_id with
      | Some l -> l
      | None ->
        let l =
          if Hashtbl.length reg.r_clients >= client_label_cap then "other"
          else "c" ^ string_of_int conn_id
        in
        Hashtbl.add reg.r_clients conn_id l;
        l)

let reg_get reg name =
  reg_locked reg (fun () ->
      match Hashtbl.find_opt reg.r_counters name with Some r -> !r | None -> 0)

let merge_report reg (t : Telemetry.report) =
  reg_locked reg (fun () ->
      List.iter (fun (name, n) -> reg_count_unlocked reg name n) t.Telemetry.counters;
      List.iter
        (fun (name, (h : Telemetry.histogram)) ->
          match Hashtbl.find_opt reg.r_hists name with
          | Some agg ->
            agg.h_count <- agg.h_count + h.Telemetry.count;
            agg.h_sum <- agg.h_sum +. h.Telemetry.sum;
            if h.Telemetry.min < agg.h_min then agg.h_min <- h.Telemetry.min;
            if h.Telemetry.max > agg.h_max then agg.h_max <- h.Telemetry.max
          | None ->
            if Hashtbl.length reg.r_hists >= reg_key_cap then
              reg_count_unlocked reg "serve.registry_dropped_keys" 1
            else
              Hashtbl.add reg.r_hists name
                { h_count = h.Telemetry.count;
                  h_sum = h.Telemetry.sum;
                  h_min = h.Telemetry.min;
                  h_max = h.Telemetry.max })
        t.Telemetry.histograms;
      if t.Telemetry.evicted_histograms > 0 then
        reg_count_unlocked reg "telemetry.evicted_histograms" t.Telemetry.evicted_histograms)

(* The registry's slice of the exposition: engine counters and summaries
   under generic name-labeled families (dotted engine names are not
   valid Prometheus metric names, and the set is open — a label keeps
   one stable family per kind), plus every labeled service family.
   Sample ordering inside a family and family ordering are both handled
   by [Aggregate.exposition]; this only gathers. *)
let family_help = function
  | "fq_requests_total" -> "Requests by protocol op."
  | "fq_eval_outcomes_total" ->
    "Eval replies by domain, epoch, status and answering tier."
  | "fq_client_requests_total" -> "Eval requests by client connection."
  | "fq_request_latency_ms" -> "Eval wall-clock latency, by domain and epoch."
  | "fq_request_fuel_ticks" -> "Eval fuel spent, by domain and epoch."
  | _ -> "Service metric."

let registry_families reg =
  reg_locked reg (fun () ->
      let engine_counters =
        Hashtbl.fold (fun name r acc -> ([ ("name", name) ], !r) :: acc) reg.r_counters []
      in
      let engine_obs_count, engine_obs_sum =
        Hashtbl.fold
          (fun name h (cs, ss) ->
            (([ ("name", name) ], h.h_count) :: cs, ([ ("name", name) ], h.h_sum) :: ss))
          reg.r_hists ([], [])
      in
      let by_family fold project tbl =
        let fams = Hashtbl.create 8 in
        fold
          (fun (name, labels) v () ->
            let prev = Option.value (Hashtbl.find_opt fams name) ~default:[] in
            Hashtbl.replace fams name ((labels, project v) :: prev))
          tbl ();
        fams
      in
      let counter_fams =
        by_family (fun f t init -> Hashtbl.fold f t init) (fun r -> !r) reg.r_lab_counters
      in
      let hist_fams =
        (* copy under the lock: the exposition renders after release *)
        by_family
          (fun f t init -> Hashtbl.fold f t init)
          (fun (h : Aggregate.hist) ->
            { h with Aggregate.buckets = Array.copy h.Aggregate.buckets })
          reg.r_lab_hists
      in
      Aggregate.counter_family ~name:"fq_engine_events_total"
        ~help:"Engine telemetry counters, by dotted engine name." engine_counters
      :: Aggregate.counter_family ~name:"fq_engine_observations_total"
           ~help:"Engine telemetry histogram observation counts, by dotted engine name."
           engine_obs_count
      :: Aggregate.gauge_family ~name:"fq_engine_observations_sum"
           ~help:"Engine telemetry histogram observation sums, by dotted engine name."
           engine_obs_sum
      :: (Hashtbl.fold
            (fun name samples acc ->
              Aggregate.counter_family ~name ~help:(family_help name) samples :: acc)
            counter_fams []
         @ Hashtbl.fold
             (fun name samples acc ->
               Aggregate.histogram_family ~name ~help:(family_help name) samples :: acc)
             hist_fams []))

(* ------------------------------ plumbing ---------------------------- *)

type conn = {
  c_id : int;  (* accept-order sequence; the per-client metrics label *)
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_olock : Mutex.t;
  mutable c_inflight : int;  (* guarded by the server lock *)
  mutable c_closed : bool;  (* guarded by c_olock *)
}

(* The database and everything derived from it, swapped as one unit by a
   reload.  Jobs capture the epoch current at admission, so the reader
   thread's line order decides which database answers which request —
   requests admitted before the swap finish on the old epoch even if a
   worker picks them up after it. *)
type epoch = {
  ep_id : int;
  ep_state : State.t;
  ep_stats : Optimizer.Stats.t;
  ep_breakers : (string, Supervisor.Breaker.t) Hashtbl.t;
}

type job = {
  j_req : Protocol.request;
  j_conn : conn;
  j_epoch : epoch;
  j_brownout : bool;  (* admitted under queue pressure: shrink its fuel *)
  j_cancel : bool Atomic.t;  (* set by the watchdog past the deadline *)
  mutable j_done : bool;  (* guarded by the server lock; see complete_job *)
}

(* One worker domain's seat.  The generation number lets the watchdog
   disown a wedged domain: it bumps [s_gen], hands the seat to a freshly
   spawned domain, and the zombie — if it ever returns — sees the
   mismatch and exits without touching the seat. *)
type slot = {
  s_idx : int;
  mutable s_dom : unit Stdlib.Domain.t option;  (* guarded by the server lock *)
  mutable s_gen : int;  (* guarded by the server lock *)
  mutable s_job : job option;  (* guarded by the server lock *)
  mutable s_deadline : float;  (* ms timestamp; 0. = no deadline *)
}

type t = {
  cfg : config;
  cache : Decide_cache.t;
  queue : job Queue.t;
  lock : Mutex.t;  (* guards queue, inflight, conn inflights, stopping,
                      current epoch, state_path, ema_ms, slot fields *)
  nonempty : Condition.t;
  mutable inflight : int;
  mutable stopping : bool;
  mutable current : epoch;
  mutable state_path : string option;  (* source for pathless reload/SIGHUP *)
  mutable ema_ms : float;  (* EMA of request latency; 0. until first sample *)
  slots : slot array;
  jlock : Mutex.t;  (* guards journal handle + append/reset sequencing *)
  mutable journal : Journal.t option;  (* guarded by jlock *)
  japps : int Atomic.t;  (* appends since the last compaction *)
  needs_compact : bool Atomic.t;
  reg : registry;
  req_seq : int Atomic.t;  (* eval arrivals; drives trace minting + sampling *)
  tlock : Mutex.t;  (* guards trace_ring *)
  mutable trace_ring : Json.t list;  (* completed sampled traces, newest first *)
  slog_lock : Mutex.t;  (* serializes slow-query log appends *)
  mutable last_metrics_dump : float;  (* accept-loop thread only *)
  last_save : float Atomic.t;  (* unix time of the last successful snapshot save *)
  usr1 : bool Atomic.t;
  hup : bool Atomic.t;
  term : bool Atomic.t;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let all_domains cfg = Protocol.domains @ cfg.extra_domains

let make_epoch cfg ~id state =
  let breakers = Hashtbl.create 8 in
  List.iter
    (fun (name, _) -> Hashtbl.replace breakers name (Supervisor.Breaker.create ()))
    (all_domains cfg);
  { ep_id = id; ep_state = state; ep_stats = Optimizer.Stats.of_state state;
    ep_breakers = breakers }

(* Under a fleet, every reply names the worker that produced it (right
   after the id), so a client spreading jobs across endpoints can
   attribute answers — and failures — to a process.  Outcome.of_json
   ignores the field, so eval replies still classify byte-identically. *)
let stamp_worker cfg json =
  match cfg.worker_id with
  | None -> json
  | Some w -> (
    match json with
    | Json.Obj (("id", idv) :: rest) ->
      Json.Obj (("id", idv) :: ("worker", Json.Str w) :: rest)
    | Json.Obj fields -> Json.Obj (("worker", Json.Str w) :: fields)
    | j -> j)

let send srv conn json =
  let json = stamp_worker srv.cfg json in
  Mutex.lock conn.c_olock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.c_olock) @@ fun () ->
  if not conn.c_closed then
    try
      output_string conn.c_oc (Json.to_string json);
      output_char conn.c_oc '\n';
      flush conn.c_oc
    with Sys_error _ | Unix.Unix_error _ ->
      (* the peer went away mid-write; the reader thread will see EOF *)
      conn.c_closed <- true;
      reg_count srv.reg "serve.send_failures"

(* ------------------------------ journal ----------------------------- *)

(* Called from the decide-cache insert hook, i.e. on a worker domain
   with the cache lock already released.  Errors are counted and the
   record dropped — persistence degrades, serving does not. *)
let journal_record srv key value =
  Mutex.lock srv.jlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.jlock) @@ fun () ->
  match srv.journal with
  | None -> ()
  | Some j -> (
    match Journal.append j (Decide_cache.entry_to_line key value) with
    | Ok () ->
      let n = Atomic.fetch_and_add srv.japps 1 + 1 in
      if
        n >= srv.cfg.journal_compact_every
        && srv.cfg.snapshot <> None
        && not srv.cfg.snapshot_read_only
      then Atomic.set srv.needs_compact true
    | Error _ -> reg_count srv.reg "serve.journal_errors")

let reset_journal srv =
  Mutex.lock srv.jlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.jlock) @@ fun () ->
  match srv.journal with
  | None -> ()
  | Some j -> (
    match Journal.reset j with
    | Ok () -> Atomic.set srv.japps 0
    | Error e ->
      reg_count srv.reg "serve.journal_errors";
      srv.cfg.log (Printf.sprintf "fq serve: journal reset failed: %s" e))

(* ----------------------------- evaluation --------------------------- *)

(* Mirrors the fq batch worker: breaker outside the cache, budget trips
   never counted against the breaker, crash isolation via the supervisor
   (one attempt — retrying is the client's decision, it owns the resume
   token). *)
let eval_outcome srv ep ~domain_name ~domain ~fuel ~timeout_ms ~resume ~cancel ~brownout
    text =
  match Parser.formula text with
  | Error e ->
    { Outcome.verdict = Outcome.Failed { reason = "parse error: " ^ e };
      usage = { Budget.ticks = 0; elapsed_ms = 0. };
      attempts = [] }
  | Ok f ->
    let breaker =
      match Hashtbl.find_opt ep.ep_breakers domain_name with
      | Some b -> b
      | None -> assert false (* populated for every registry domain per epoch *)
    in
    let cached = Decide_cache.domain srv.cache domain in
    let (module C : Fq_domain.Domain.S) = cached in
    let guarded =
      Fq_domain.Domain.with_decide cached (fun g ->
          if not (Supervisor.Breaker.allow breaker) then
            Error
              (Printf.sprintf "unsupported: circuit open: %s decision procedure cooling down"
                 domain_name)
          else
            match C.decide g with
            | Ok _ as r ->
              Supervisor.Breaker.success breaker;
              r
            | Error e as r ->
              (match Budget.failure_of_string e with
              | Some (Budget.Unsupported _) | None -> Supervisor.Breaker.failure breaker
              | Some _ -> ());
              r
            | exception e ->
              Supervisor.Breaker.failure breaker;
              raise e)
    in
    let fuel = min (max 1 (Option.value fuel ~default:srv.cfg.default_fuel)) srv.cfg.max_fuel in
    let fuel =
      if brownout then max 1 (fuel / max 1 srv.cfg.brownout_fuel_divisor) else fuel
    in
    let timeout_ms =
      match timeout_ms with Some _ as t -> t | None -> srv.cfg.default_timeout_ms
    in
    let attempt _ =
      let budget = Budget.make ~fuel ?timeout_ms ~cancel:(fun () -> Atomic.get cancel) () in
      Query.eval_resilient ~budget ?resume ~stats:ep.ep_stats ~domain:guarded
        ~state:ep.ep_state f
    in
    let run =
      Supervisor.supervise
        ~policy:{ Supervisor.default_policy with max_attempts = 1 }
        ~name:("serve:" ^ domain_name) attempt
    in
    (match run.Supervisor.outcome with
    | Supervisor.Value rep -> rep
    | Supervisor.Crashed { reason; _ } ->
      { Outcome.verdict = Outcome.Failed { reason = "crashed: " ^ reason };
        usage = { Budget.ticks = 0; elapsed_ms = 0. };
        attempts = [] })

let resolve_domain srv = function
  | None ->
    Ok (srv.cfg.default_domain, List.assoc srv.cfg.default_domain (all_domains srv.cfg))
  | Some name -> (
    match List.assoc_opt name (all_domains srv.cfg) with
    | Some d -> Ok (name, d)
    | None ->
      Error
        (Printf.sprintf "unknown domain %S (try: %s)" name
           (String.concat ", " (List.map fst Protocol.domains))))

(* ----------------------- trace ring + slow log ---------------------- *)

let outcome_tier rep =
  match rep.Outcome.verdict with
  | Outcome.Complete { tier; _ } -> tier
  | Outcome.Partial _ -> "enumerate" (* partial answers come from the scan tier *)
  | Outcome.Failed _ -> "none"

let rollup_json rus =
  let rec go ru =
    Json.Obj
      ([ ("name", Json.Str ru.Telemetry.r_name);
         ("count", Json.Int ru.Telemetry.r_count);
         ("ticks", Json.Int ru.Telemetry.r_ticks);
         ("self_ticks", Json.Int ru.Telemetry.r_self_ticks);
         ("dur_ms", Json.Float ru.Telemetry.r_dur_ms) ]
      @
      match ru.Telemetry.r_children with
      | [] -> []
      | kids -> [ ("children", Json.List (List.map go kids)) ])
  in
  Json.List (List.map go rus)

let push_trace srv entry =
  Mutex.lock srv.tlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.tlock) @@ fun () ->
  let rec take n = function
    | [] -> []
    | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
  in
  srv.trace_ring <- entry :: take (max 0 (srv.cfg.trace_ring - 1)) srv.trace_ring

(* A dry compile, shared by the explain op and the slow-query log: which
   tier will answer, and with what plan — without spending any budget. *)
let dry_plan ep ~domain f =
  let schema = Schema.relations (State.schema ep.ep_state) in
  let safety, safe =
    match Fq_eval.Safe_range.check ~schema f with
    | Fq_eval.Safe_range.Safe_range -> ("safe-range", true)
    | Fq_eval.Safe_range.Not_safe_range why -> ("not safe-range: " ^ why, false)
  in
  let tier, plan =
    if not safe then ("enumerate", None)
    else
      match Fq_eval.Ranf.compile ~stats:ep.ep_stats ~domain ~state:ep.ep_state f with
      | Ok { Fq_eval.Algebra_translate.plan; _ } -> ("ranf-algebra", Some plan)
      | Error _ -> (
        match
          Fq_eval.Algebra_translate.compile ~stats:ep.ep_stats ~domain ~state:ep.ep_state f
        with
        | Ok { Fq_eval.Algebra_translate.plan; _ } -> ("adom-algebra", Some plan)
        | Error _ -> ("enumerate", None))
  in
  (safety, tier, plan)

(* Estimated-vs-observed output cardinality per plan node: the
   optimizer's estimate against what the telemetry recording actually
   measured ([relalg.node_card.<fp>]) — the slow-query log's "why was
   the plan wrong" evidence, replayable offline by fq explain. *)
let plan_nodes_json ep plan (treport : Telemetry.report) =
  let arity_of = Schema.arity (State.schema ep.ep_state) in
  let nodes = ref [] in
  let seen = Hashtbl.create 16 in
  let rec walk node =
    let fp = Relalg.fingerprint node in
    if not (Hashtbl.mem seen fp) then begin
      Hashtbl.add seen fp ();
      let est =
        match Optimizer.estimate ep.ep_stats ~arity_of node with
        | e -> [ ("est", Json.Float e) ]
        | exception _ -> []
      in
      let observed =
        match List.assoc_opt (Relalg.node_metric fp) treport.Telemetry.histograms with
        | Some h when h.Telemetry.count > 0 ->
          [ ("observed_mean", Json.Float (h.Telemetry.sum /. float_of_int h.Telemetry.count));
            ("observed_count", Json.Int h.Telemetry.count) ]
        | _ -> []
      in
      nodes := Json.Obj ((("fp", Json.Str fp) :: est) @ observed) :: !nodes
    end;
    match node with
    | Relalg.Rel _ | Relalg.Lit _ -> ()
    | Relalg.Select (_, p) | Relalg.Project (_, p) -> walk p
    | Relalg.Product (p, q) | Relalg.Join (_, p, q) | Relalg.Union (p, q)
    | Relalg.Diff (p, q) ->
      walk p;
      walk q
  in
  walk plan;
  Json.List (List.rev !nodes)

(* One structured JSONL line per slow (or browned-out / cancelled)
   request, appended under [slog_lock]; an I/O failure degrades to a
   counter, never to a failed request. *)
let slow_log_entry srv job ~trace ~id ~domain_name ~dom ~formula ~elapsed ~cancelled rep
    (treport : Telemetry.report) =
  match srv.cfg.slow_log with
  | None -> ()
  | Some path ->
    reg_count srv.reg "serve.slow_queries";
    let plan_fields =
      match Parser.formula formula with
      | Error _ -> []
      | Ok f ->
        let _, tier, plan = dry_plan job.j_epoch ~domain:dom f in
        ("planned_tier", Json.Str tier)
        ::
        (match plan with
        | None -> []
        | Some p ->
          [ ("plan", Json.Str (Format.asprintf "%a" Relalg.pp p));
            ("nodes", plan_nodes_json job.j_epoch p treport) ])
    in
    let entry =
      Json.Obj
        ([ ("ts_ms", Json.Float (now_ms ()));
           ("trace", Json.Str trace);
           ("id", Json.Str id);
           ("client", Json.Str (client_label srv.reg job.j_conn.c_id));
           ("domain", Json.Str domain_name);
           ("epoch", Json.Int job.j_epoch.ep_id);
           ("formula", Json.Str formula);
           ("status", Json.Str (Outcome.status rep));
           ("tier", Json.Str (outcome_tier rep));
           ("latency_ms", Json.Float elapsed);
           ("ticks", Json.Int rep.Outcome.usage.Budget.ticks);
           ("brownout", Json.Bool job.j_brownout);
           ("cancelled", Json.Bool cancelled) ]
        @ plan_fields)
    in
    Mutex.lock srv.slog_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock srv.slog_lock) @@ fun () ->
    (try
       let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
       Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
       output_string oc (Json.to_string entry);
       output_char oc '\n'
     with Sys_error _ -> reg_count srv.reg "serve.slow_log_errors")

let handle_eval srv job ~id ~domain ~formula ~fuel ~timeout_ms ~resume ~trace =
  match resolve_domain srv domain with
  | Error e -> Protocol.malformed_response ~id e
  | Ok (domain_name, dom) ->
    (* trace context: client id verbatim, or a server-minted one; the
       same arrival counter drives head-based 1-in-N sampling *)
    let seq = Atomic.fetch_and_add srv.req_seq 1 in
    let trace =
      match trace with Some t -> t | None -> "srv-" ^ string_of_int (seq + 1)
    in
    let sampled = srv.cfg.trace_sample > 0 && seq mod srv.cfg.trace_sample = 0 in
    let started = now_ms () in
    let rep, treport =
      Telemetry.record (fun () ->
          Telemetry.set_trace_id trace;
          eval_outcome srv job.j_epoch ~domain_name ~domain:dom ~fuel ~timeout_ms ~resume
            ~cancel:job.j_cancel ~brownout:job.j_brownout formula)
    in
    let elapsed = now_ms () -. started in
    let status = Outcome.status rep in
    let tier = outcome_tier rep in
    let epoch = string_of_int job.j_epoch.ep_id in
    let client = client_label srv.reg job.j_conn.c_id in
    let ticks = rep.Outcome.usage.Budget.ticks in
    merge_report srv.reg treport;
    reg_count srv.reg "serve.requests";
    reg_count srv.reg ("serve.eval." ^ status);
    reg_observe srv.reg "serve.latency_ms" elapsed;
    reg_observe srv.reg "serve.ticks" (float_of_int ticks);
    (* always-on labeled aggregation (log-bucketed; ~an array increment) *)
    reg_lcount srv.reg "fq_requests_total" [ ("op", "eval") ];
    reg_lcount srv.reg "fq_eval_outcomes_total"
      [ ("domain", domain_name); ("epoch", epoch); ("status", status); ("tier", tier) ];
    reg_lcount srv.reg "fq_client_requests_total" [ ("client", client) ];
    reg_lobserve srv.reg "fq_request_latency_ms"
      [ ("domain", domain_name); ("epoch", epoch) ]
      elapsed;
    reg_lobserve srv.reg "fq_request_fuel_ticks"
      [ ("domain", domain_name); ("epoch", epoch) ]
      (float_of_int ticks);
    let cancelled = Atomic.get job.j_cancel in
    if sampled then begin
      reg_count srv.reg "serve.traces_sampled";
      push_trace srv
        (Json.Obj
           [ ("trace", Json.Str trace);
             ("id", Json.Str id);
             ("client", Json.Str client);
             ("domain", Json.Str domain_name);
             ("epoch", Json.Int job.j_epoch.ep_id);
             ("tier", Json.Str tier);
             ("status", Json.Str status);
             ("brownout", Json.Bool job.j_brownout);
             ("cancelled", Json.Bool cancelled);
             ("dur_ms", Json.Float elapsed);
             ("ticks", Json.Int ticks);
             ("spans", rollup_json (Telemetry.rollup treport.Telemetry.roots)) ])
    end;
    let slow =
      match srv.cfg.slow_ms with Some t -> elapsed >= t | None -> false
    in
    if slow || job.j_brownout || cancelled then
      slow_log_entry srv job ~trace ~id ~domain_name ~dom ~formula ~elapsed ~cancelled rep
        treport;
    Protocol.outcome_response ~id ~trace rep

let handle_explain srv job ~id ~domain ~formula ~trace =
  let ep = job.j_epoch in
  match resolve_domain srv domain with
  | Error e -> Protocol.malformed_response ~id e
  | Ok (domain_name, dom) -> (
    match Parser.formula formula with
    | Error e -> Protocol.malformed_response ~id ("parse error: " ^ e)
    | Ok f ->
      reg_count srv.reg "serve.requests";
      reg_count srv.reg "serve.explain";
      reg_lcount srv.reg "fq_requests_total" [ ("op", "explain") ];
      let safety, tier, plan = dry_plan ep ~domain:dom f in
      Protocol.ok_response ~id
        ((match trace with None -> [] | Some t -> [ ("trace", Json.Str t) ])
        @ [ ("domain", Json.Str domain_name); ("safety", Json.Str safety);
            ("tier", Json.Str tier) ]
        @
        match plan with
        | None -> []
        | Some p -> [ ("plan", Json.Str (Format.asprintf "%a" Relalg.pp p)) ]))

(* The full versioned exposition: registry families plus point-in-time
   gauges (inflight, queue depth, breaker states, journal lag, cache). *)
let exposition_text srv =
  let cache = Decide_cache.stats srv.cache in
  let inflight, depth, epoch, breakers =
    Mutex.protect srv.lock (fun () ->
        ( srv.inflight,
          Queue.length srv.queue,
          srv.current.ep_id,
          Hashtbl.fold
            (fun name b acc -> (name, Supervisor.Breaker.state b) :: acc)
            srv.current.ep_breakers [] ))
  in
  let breaker_gauge = function
    | Supervisor.Breaker.Closed -> 0.
    | Supervisor.Breaker.Half_open -> 1.
    | Supervisor.Breaker.Open -> 2.
  in
  let retained = Mutex.protect srv.tlock (fun () -> List.length srv.trace_ring) in
  let gauges =
    [ Aggregate.gauge_family ~name:"fq_inflight"
        ~help:"Admitted-but-unfinished requests." [ ([], float_of_int inflight) ];
      Aggregate.gauge_family ~name:"fq_queue_depth"
        ~help:"Jobs admitted and waiting for a worker." [ ([], float_of_int depth) ];
      Aggregate.gauge_family ~name:"fq_epoch" ~help:"Live state epoch."
        [ ([], float_of_int epoch) ];
      Aggregate.gauge_family ~name:"fq_breaker_state"
        ~help:"Per-domain circuit breaker (0 closed, 1 half-open, 2 open)."
        (List.map (fun (name, st) -> ([ ("domain", name) ], breaker_gauge st)) breakers);
      Aggregate.gauge_family ~name:"fq_journal_lag_records"
        ~help:"Journal appends since the last compaction."
        [ ([], float_of_int (Atomic.get srv.japps)) ];
      Aggregate.counter_family ~name:"fq_journal_compactions_total"
        ~help:"Journal-into-snapshot compactions."
        [ ([], reg_get srv.reg "serve.compactions") ];
      Aggregate.gauge_family ~name:"fq_snapshot_last_save_timestamp_seconds"
        ~help:"Unix time of the last successful snapshot save (0 until the first)."
        [ ([], Atomic.get srv.last_save) ];
      Aggregate.gauge_family ~name:"fq_traces_retained"
        ~help:"Completed sampled traces held in the ring."
        [ ([], float_of_int retained) ];
      Aggregate.counter_family ~name:"fq_decide_cache_hits_total"
        ~help:"Decide-cache hits." [ ([], cache.Decide_cache.hits) ];
      Aggregate.counter_family ~name:"fq_decide_cache_misses_total"
        ~help:"Decide-cache misses." [ ([], cache.Decide_cache.misses) ];
      Aggregate.counter_family ~name:"fq_decide_cache_evictions_total"
        ~help:"Decide-cache LRU evictions." [ ([], cache.Decide_cache.evictions) ];
      Aggregate.gauge_family ~name:"fq_decide_cache_entries"
        ~help:"Decide-cache resident entries."
        [ ([], float_of_int cache.Decide_cache.entries) ] ]
  in
  Aggregate.exposition (registry_families srv.reg @ gauges)

let metrics_response srv ~id =
  let cache = Decide_cache.stats srv.cache in
  let inflight, epoch = Mutex.protect srv.lock (fun () -> (srv.inflight, srv.current.ep_id)) in
  Protocol.ok_response ~id
    [ ("version", Json.Int Aggregate.exposition_version);
      ( "decide_cache",
        Json.Obj
          [ ("hits", Json.Int cache.Decide_cache.hits);
            ("misses", Json.Int cache.Decide_cache.misses);
            ("entries", Json.Int cache.Decide_cache.entries);
            ("evictions", Json.Int cache.Decide_cache.evictions) ] );
      ("inflight", Json.Int inflight);
      ("epoch", Json.Int epoch);
      ("exposition", Json.Str (exposition_text srv)) ]

let traces_response srv ~id ~limit =
  let traces =
    Mutex.protect srv.tlock (fun () ->
        match limit with
        | None -> srv.trace_ring
        | Some n ->
          let rec take n = function
            | [] -> []
            | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl
          in
          take (max 0 n) srv.trace_ring)
  in
  Protocol.ok_response ~id
    [ ("sample_every", Json.Int srv.cfg.trace_sample); ("traces", Json.List traces) ]

(* --metrics-file: the same exposition, dumped atomically (tmp + rename)
   from the accept loop so a file scrape never sees a torn write. *)
let dump_metrics_file srv =
  match srv.cfg.metrics_file with
  | None -> ()
  | Some path ->
    (try
       let tmp = path ^ ".tmp" in
       let oc = open_out tmp in
       Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
           output_string oc (exposition_text srv));
       Sys.rename tmp path
     with Sys_error _ -> reg_count srv.reg "serve.metrics_file_errors")

(* The one-line triage view: is the server keeping up, which breakers
   are open, which epoch is live, is persistence healthy. *)
let health_response srv ~id =
  let depth, inflight, epoch, ema, breakers =
    Mutex.protect srv.lock (fun () ->
        ( Queue.length srv.queue,
          srv.inflight,
          srv.current.ep_id,
          srv.ema_ms,
          Hashtbl.fold
            (fun name b acc -> (name, Supervisor.Breaker.state b) :: acc)
            srv.current.ep_breakers [] ))
  in
  let est_wait = float_of_int depth *. ema /. float_of_int (max 1 srv.cfg.jobs) in
  let state_str = function
    | Supervisor.Breaker.Closed -> "closed"
    | Supervisor.Breaker.Open -> "open"
    | Supervisor.Breaker.Half_open -> "half_open"
  in
  let breakers =
    List.sort (fun (a, _) (b, _) -> String.compare a b) breakers
    |> List.map (fun (name, st) -> (name, Json.Str (state_str st)))
  in
  let journal_records = Atomic.get srv.japps in
  Protocol.ok_response ~id
    [ ("epoch", Json.Int epoch);
      ("queue_depth", Json.Int depth);
      ("inflight", Json.Int inflight);
      ("brownout", Json.Bool (depth >= srv.cfg.brownout_queue));
      ("est_wait_ms", Json.Int (int_of_float est_wait));
      ("breakers", Json.Obj breakers);
      ("journal_records", Json.Int journal_records) ]

(* ------------------------------ snapshots --------------------------- *)

(* A fleet worker opens the shared snapshot read-only: it loads verdicts
   at boot but never writes the file — the parent owns the snapshot and
   folds per-worker journals into it, so two processes never race on the
   same temp+rename. *)
let snapshot_writable cfg = cfg.snapshot <> None && not cfg.snapshot_read_only

let save_snapshot srv =
  if not (snapshot_writable srv.cfg) then Ok 0
  else
    match Decide_cache.save srv.cache (Option.get srv.cfg.snapshot) with
    | Ok n ->
      Atomic.set srv.last_save (Unix.gettimeofday ());
      Ok n
    | Error _ as e -> e

(* A successful snapshot subsumes the journal: reset it so recovery
   never replays records the snapshot already holds (replaying them
   would be idempotent, just wasted boot time). *)
let save_snapshot_logged srv ~why =
  match save_snapshot srv with
  | Ok 0 when not (snapshot_writable srv.cfg) -> ()
  | Ok n ->
    reset_journal srv;
    srv.cfg.log
      (Printf.sprintf "fq serve: snapshot written (%d entries, %s) to %s" n why
         (Option.get srv.cfg.snapshot))
  | Error e -> srv.cfg.log (Printf.sprintf "fq serve: snapshot failed: %s" e)

let compact srv =
  match save_snapshot srv with
  | Ok _ when snapshot_writable srv.cfg ->
    reset_journal srv;
    reg_count srv.reg "serve.compactions"
  | Ok _ -> ()
  | Error e ->
    reg_count srv.reg "serve.journal_errors";
    srv.cfg.log (Printf.sprintf "fq serve: compaction failed: %s" e)

(* ------------------------------ reload ------------------------------ *)

let swap_epoch srv state ~source =
  let ep =
    Mutex.protect srv.lock (fun () ->
        let ep = make_epoch srv.cfg ~id:(srv.current.ep_id + 1) state in
        srv.current <- ep;
        srv.state_path <- (match source with Some _ -> source | None -> srv.state_path);
        ep)
  in
  reg_count srv.reg "serve.reloads";
  let schema = State.schema ep.ep_state in
  srv.cfg.log
    (Printf.sprintf "fq serve: epoch %d: state reloaded%s (%d relations, %d constants)"
       ep.ep_id
       (match source with Some p -> " from " ^ p | None -> "")
       (List.length (Schema.relations schema))
       (List.length (State.constants ep.ep_state)));
  ep.ep_id

(* [path = None] means "re-read the configured state file" — the SIGHUP
   semantics.  The file is parsed before any pointer moves, so a broken
   file leaves the old epoch serving. *)
let do_reload srv ~path =
  let source =
    match path with
    | Some p -> Ok p
    | None -> (
      match Mutex.protect srv.lock (fun () -> srv.state_path) with
      | Some p -> Ok p
      | None -> Error "no state file configured (start with --state-file or name one)")
  in
  Result.bind source @@ fun p ->
  match Fq_db.Codec.load_state p with
  | Error e ->
    reg_count srv.reg "serve.reload_failures";
    Error e
  | Ok state -> Ok (swap_epoch srv state ~source:(Some p))

(* ------------------------------ admission --------------------------- *)

(* The resume evidence a rejected request walks away with: whatever it
   sent, or a fresh zero-progress token at the query's arity. *)
let reject_resume ~resume ~formula =
  match resume with
  | Some r -> Ok r
  | None ->
    Result.map
      (fun f ->
        { Outcome.seen = 0;
          found = Relation.empty ~arity:(List.length (Formula.free_vars f)) })
      (Result.map_error (fun e -> "parse error: " ^ e) (Parser.formula formula))

(* Deadline-aware shedding: when the queue is long enough that this
   request would blow its own deadline just waiting, reject now with an
   honest retry hint instead of admitting work we already know we will
   abandon.  The estimate is queue depth x EMA latency / workers — crude
   but self-correcting, and 0 until the first completion. *)
let estimated_wait_ms srv =
  (* srv.lock held *)
  float_of_int (Queue.length srv.queue) *. srv.ema_ms /. float_of_int (max 1 srv.cfg.jobs)

let admit srv conn req =
  let deadline_ms =
    match req with
    | Protocol.Eval { timeout_ms; _ } -> (
      match timeout_ms with Some _ as t -> t | None -> srv.cfg.default_timeout_ms)
    | _ -> None
  in
  let verdict =
    Mutex.protect srv.lock (fun () ->
        if srv.stopping then `Reject ("shutting down", 25)
        else if srv.inflight >= srv.cfg.max_inflight then
          `Reject
            (Printf.sprintf "server over capacity (%d requests in flight)" srv.inflight, 25)
        else if conn.c_inflight >= srv.cfg.client_share then
          `Reject
            ( Printf.sprintf "client over fair share (%d requests in flight)" conn.c_inflight,
              25 )
        else
          let est_wait = estimated_wait_ms srv in
          match deadline_ms with
          | Some d when est_wait > float_of_int d ->
            `Shed
              ( Printf.sprintf
                  "estimated queue wait %.0fms exceeds request deadline %dms" est_wait d,
                int_of_float est_wait )
          | _ ->
            let job =
              { j_req = req;
                j_conn = conn;
                j_epoch = srv.current;
                j_brownout = Queue.length srv.queue >= srv.cfg.brownout_queue;
                j_cancel = Atomic.make false;
                j_done = false }
            in
            srv.inflight <- srv.inflight + 1;
            conn.c_inflight <- conn.c_inflight + 1;
            Queue.push job srv.queue;
            Condition.signal srv.nonempty;
            if job.j_brownout then `Admitted_brownout else `Admitted)
  in
  let reject reason retry_after_ms =
    let id = Protocol.request_id req in
    let resume, formula =
      match req with
      | Protocol.Eval { resume; formula; _ } -> (resume, formula)
      | Protocol.Explain { formula; _ } -> (None, formula)
      | _ -> (None, "")
    in
    match reject_resume ~resume ~formula with
    | Ok resume -> send srv conn (Protocol.reject_response ~id ~reason ~retry_after_ms ~resume)
    | Error e -> send srv conn (Protocol.malformed_response ~id e)
  in
  match verdict with
  | `Admitted -> ()
  | `Admitted_brownout -> reg_count srv.reg "serve.brownout"
  | `Reject (reason, retry) ->
    reg_count srv.reg "serve.rejected";
    reject reason retry
  | `Shed (reason, retry) ->
    reg_count srv.reg "serve.rejected";
    reg_count srv.reg "serve.shed_deadline";
    reject reason (max 1 retry)

(* ------------------------------- workers ---------------------------- *)

let handle srv job =
  match job.j_req with
  | Protocol.Eval { id; domain; formula; fuel; timeout_ms; resume; trace } ->
    handle_eval srv job ~id ~domain ~formula ~fuel ~timeout_ms ~resume ~trace
  | Protocol.Explain { id; domain; formula; trace } ->
    handle_explain srv job ~id ~domain ~formula ~trace
  | Protocol.Metrics _ | Protocol.Ping _ | Protocol.Snapshot _ | Protocol.Shutdown _
  | Protocol.Reload _ | Protocol.Health _ | Protocol.Traces _ | Protocol.Fleet_status _ ->
    assert false (* control ops are answered inline by the reader thread *)

(* Exactly-once completion: the worker that evaluated the job and the
   watchdog that gave up on it race here; the first caller owns the
   decrement and the response, the loser is a no-op. *)
let complete_job srv job response =
  let first =
    Mutex.protect srv.lock (fun () ->
        if job.j_done then false
        else begin
          job.j_done <- true;
          srv.inflight <- srv.inflight - 1;
          job.j_conn.c_inflight <- job.j_conn.c_inflight - 1;
          true
        end)
  in
  if first then send srv job.j_conn response;
  first

let job_deadline job =
  match job.j_req with
  | Protocol.Eval { timeout_ms = Some t; _ } -> Some t
  | _ -> None

let rec worker srv slot gen =
  Mutex.lock srv.lock;
  while Queue.is_empty srv.queue && not srv.stopping do
    Condition.wait srv.nonempty srv.lock
  done;
  if Queue.is_empty srv.queue then Mutex.unlock srv.lock (* stopping, drained: exit *)
  else begin
    let job = Queue.pop srv.queue in
    let started = now_ms () in
    let deadline =
      match job_deadline job with
      | Some t -> started +. float_of_int t
      | None -> (
        match srv.cfg.default_timeout_ms with
        | Some t -> started +. float_of_int t
        | None -> 0.)
    in
    if slot.s_gen = gen then begin
      slot.s_job <- Some job;
      slot.s_deadline <- (match job.j_req with Protocol.Eval _ -> deadline | _ -> 0.)
    end;
    Mutex.unlock srv.lock;
    let response = handle srv job in
    let elapsed = now_ms () -. started in
    let _first : bool = complete_job srv job response in
    let keep_seat =
      Mutex.protect srv.lock (fun () ->
          srv.ema_ms <-
            (if srv.ema_ms = 0. then elapsed else (0.8 *. srv.ema_ms) +. (0.2 *. elapsed));
          if slot.s_gen = gen then begin
            slot.s_job <- None;
            slot.s_deadline <- 0.;
            true
          end
          else false (* the watchdog disowned us; a replacement holds the seat *))
    in
    if keep_seat then worker srv slot gen
  end

(* ------------------------------ watchdog ---------------------------- *)

(* Two-stage escalation, driven from the accept loop's 0.2s tick.  Past
   the request deadline: set the job's cancel flag — the budget polls it
   every 256 ticks, so a cooperating evaluation unwinds into an ordinary
   Partial/Failed within microseconds.  Past deadline + grace: the
   domain is wedged somewhere that never ticks (a pathological decide, a
   stuck syscall) — answer the victim with a classified error ourselves,
   disown the seat, and spawn a fresh domain so pool capacity does not
   leak.  The zombie domain is never joined; if it ever wakes it finds
   its job completed and its seat re-generationed, and exits. *)
let scan_watchdog srv =
  let nw = now_ms () in
  let victims =
    Mutex.protect srv.lock (fun () ->
        Array.fold_left
          (fun acc slot ->
            match slot.s_job with
            | Some job when slot.s_deadline > 0. ->
              if nw > slot.s_deadline && not (Atomic.get job.j_cancel) then begin
                Atomic.set job.j_cancel true;
                reg_count_unlocked srv.reg "serve.watchdog_cancels" 1
              end;
              if nw > slot.s_deadline +. float_of_int srv.cfg.watchdog_grace_ms then begin
                slot.s_gen <- slot.s_gen + 1;
                slot.s_job <- None;
                slot.s_deadline <- 0.;
                (slot, slot.s_gen, job) :: acc
              end
              else acc
            | _ -> acc)
          [] srv.slots)
  in
  List.iter
    (fun (slot, gen, job) ->
      reg_count srv.reg "serve.watchdog_recycles";
      let id = Protocol.request_id job.j_req in
      let reason =
        "crashed: watchdog: evaluation still running past its deadline; worker recycled"
      in
      let trace =
        match job.j_req with Protocol.Eval { trace; _ } -> trace | _ -> None
      in
      let response =
        Protocol.outcome_response ~id ?trace
          { Outcome.verdict = Outcome.Failed { reason };
            usage = { Budget.ticks = 0; elapsed_ms = 0. };
            attempts = [] }
      in
      let _first : bool = complete_job srv job response in
      srv.cfg.log
        (Printf.sprintf "fq serve: watchdog recycled worker %d (request %S overran)"
           slot.s_idx id);
      let dom = Stdlib.Domain.spawn (fun () -> worker srv slot gen) in
      Mutex.protect srv.lock (fun () -> slot.s_dom <- Some dom))
    victims

(* ------------------------------ connections ------------------------- *)

let initiate_shutdown srv =
  Mutex.protect srv.lock (fun () ->
      srv.stopping <- true;
      Condition.broadcast srv.nonempty)

(* Bounded line reader: like input_line, but a line longer than
   [max_bytes] is drained (not buffered) to its newline and reported as
   oversized — one hostile client cannot balloon a reader thread. *)
let read_line_bounded ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec go overflow =
    match input_char ic with
    | exception End_of_file ->
      if overflow then `Too_long
      else if Buffer.length buf = 0 then `Eof
      else `Line (Buffer.contents buf)
    | '\n' -> if overflow then `Too_long else `Line (Buffer.contents buf)
    | c ->
      if overflow || Buffer.length buf >= max_bytes then go true
      else begin
        Buffer.add_char buf c;
        go false
      end
  in
  go false

let conn_loop srv conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  reg_count srv.reg "serve.connections";
  let rec go () =
    match read_line_bounded ic ~max_bytes:srv.cfg.max_line_bytes with
    | exception Sys_error _ -> ()
    | `Eof -> ()
    | `Too_long ->
      reg_count srv.reg "serve.malformed";
      send srv conn
        (Protocol.malformed_response ~id:""
           (Printf.sprintf "protocol: line exceeds %d bytes" srv.cfg.max_line_bytes));
      go ()
    | `Line line ->
      let line = String.trim line in
      if line = "" then go ()
      else begin
        (match Protocol.parse_request line with
        | Error e ->
          reg_count srv.reg "serve.malformed";
          send srv conn (Protocol.malformed_response ~id:"" e)
        | Ok (Protocol.Ping { id }) ->
          reg_lcount srv.reg "fq_requests_total" [ ("op", "ping") ];
          send srv conn (Protocol.ok_response ~id [])
        | Ok (Protocol.Metrics { id }) ->
          reg_count srv.reg "serve.requests";
          reg_lcount srv.reg "fq_requests_total" [ ("op", "metrics") ];
          send srv conn (metrics_response srv ~id)
        | Ok (Protocol.Traces { id; limit }) ->
          reg_count srv.reg "serve.requests";
          reg_lcount srv.reg "fq_requests_total" [ ("op", "traces") ];
          send srv conn (traces_response srv ~id ~limit)
        | Ok (Protocol.Health { id }) ->
          reg_count srv.reg "serve.requests";
          reg_lcount srv.reg "fq_requests_total" [ ("op", "health") ];
          send srv conn (health_response srv ~id)
        | Ok (Protocol.Fleet_status { id }) ->
          (* a lone server is a one-worker, non-fleet topology: clients
             run the same discovery against both shapes *)
          reg_count srv.reg "serve.requests";
          reg_lcount srv.reg "fq_requests_total" [ ("op", "fleet-status") ];
          send srv conn
            (Protocol.fleet_status_response ~id ~fleet:false
               [ { Protocol.worker = Option.value srv.cfg.worker_id ~default:"w0";
                   worker_addr = addr_to_string srv.cfg.addr;
                   up = true;
                   pid = Some (Unix.getpid ());
                   restarts = 0 } ])
        | Ok (Protocol.Snapshot { id }) -> (
          reg_count srv.reg "serve.requests";
          match save_snapshot srv with
          | Ok n ->
            if snapshot_writable srv.cfg then reset_journal srv;
            send srv conn (Protocol.ok_response ~id [ ("entries", Json.Int n) ])
          | Error e -> send srv conn (Protocol.malformed_response ~id e))
        | Ok (Protocol.Reload { id; path }) -> (
          reg_count srv.reg "serve.requests";
          match do_reload srv ~path with
          | Ok epoch -> send srv conn (Protocol.ok_response ~id [ ("epoch", Json.Int epoch) ])
          | Error e -> send srv conn (Protocol.malformed_response ~id ("reload: " ^ e)))
        | Ok (Protocol.Shutdown { id }) ->
          reg_count srv.reg "serve.requests";
          send srv conn (Protocol.ok_response ~id [ ("draining", Json.Bool true) ]);
          initiate_shutdown srv
        | Ok (Protocol.Eval _ as req) | Ok (Protocol.Explain _ as req) -> admit srv conn req);
        go ()
      end
  in
  go ();
  Mutex.protect conn.c_olock (fun () -> conn.c_closed <- true)

(* -------------------------------- boot ------------------------------ *)

let bind_socket = function
  | Unix_path path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64;
       Ok fd
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Error (Printf.sprintf "cannot bind port %d: %s" port (Unix.error_message e)))

let run_bound cfg =
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  | _ -> ());
  let srv =
    { cfg;
      cache = Decide_cache.create ();
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      inflight = 0;
      stopping = false;
      current = make_epoch cfg ~id:1 cfg.state;
      state_path = cfg.state_file;
      ema_ms = 0.;
      slots =
        Array.init (max 1 cfg.jobs) (fun i ->
            { s_idx = i; s_dom = None; s_gen = 0; s_job = None; s_deadline = 0. });
      jlock = Mutex.create ();
      journal = None;
      japps = Atomic.make 0;
      needs_compact = Atomic.make false;
      reg = registry_create ();
      req_seq = Atomic.make 0;
      tlock = Mutex.create ();
      trace_ring = [];
      slog_lock = Mutex.create ();
      last_metrics_dump = 0.;
      last_save = Atomic.make 0.;
      usr1 = Atomic.make false;
      hup = Atomic.make false;
      term = Atomic.make false }
  in
  (try
     Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Atomic.set srv.usr1 true))
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set srv.hup true))
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set srv.term true))
   with Invalid_argument _ -> ());
  let snapshot_boot =
    match cfg.snapshot with
    | Some path when Sys.file_exists path -> (
      match Decide_cache.load srv.cache path with
      | Ok n -> Ok (Some n)
      | Error e -> Error e)
    | _ -> Ok None
  in
  Result.bind snapshot_boot @@ fun loaded ->
  (* Journal recovery runs after the snapshot load so recovered records
     (which postdate the snapshot) win the MRU refresh; then the journal
     is opened for appending and the decide cache starts feeding it. *)
  let journal_boot =
    match journal_path cfg with
    | None -> Ok None
    | Some jpath ->
      let unparsable = ref 0 in
      let replay payload =
        match Decide_cache.entry_of_line payload with
        | Ok (key, value) -> Decide_cache.restore srv.cache key value
        | Error _ -> incr unparsable
      in
      Result.bind (Journal.recover jpath ~f:replay) @@ fun r ->
      Result.map (fun j -> Some (j, r, !unparsable)) (Journal.open_append jpath)
  in
  Result.bind journal_boot @@ fun jopened ->
  Result.bind (bind_socket cfg.addr) @@ fun listen_fd ->
  (match loaded with
  | Some n -> cfg.log (Printf.sprintf "fq serve: warm start, %d cached verdicts loaded" n)
  | None -> ());
  (match jopened with
  | Some (j, { Journal.applied; skipped; truncated_bytes }, unparsable) ->
    srv.journal <- Some j;
    Decide_cache.set_on_insert srv.cache (Some (fun key value -> journal_record srv key value));
    if applied + skipped + truncated_bytes + unparsable > 0 then
      cfg.log
        (Printf.sprintf
           "fq serve: journal recovered %d records (%d skipped, %d torn bytes) from %s"
           applied (skipped + unparsable) truncated_bytes (Journal.path j))
  | None -> ());
  cfg.log
    (Format.asprintf "fq serve: listening on %a (%d workers, %d in-flight cap)" pp_addr
       cfg.addr cfg.jobs cfg.max_inflight);
  Array.iter
    (fun slot -> slot.s_dom <- Some (Stdlib.Domain.spawn (fun () -> worker srv slot slot.s_gen)))
    srv.slots;
  let conns = ref [] in
  let next_conn = ref 0 in
  let stopping () = Mutex.protect srv.lock (fun () -> srv.stopping) in
  while not (stopping ()) do
    (* SIGTERM is the graceful drain: stop admitting, answer everything
       already accepted, fold the journal into the snapshot, exit 0 —
       the same path a ctl shutdown takes.  kill -9 is the crash path
       the journal covers. *)
    if Atomic.exchange srv.term false then begin
      cfg.log "fq serve: SIGTERM received, draining";
      initiate_shutdown srv
    end;
    if Atomic.exchange srv.usr1 false then save_snapshot_logged srv ~why:"SIGUSR1";
    if Atomic.exchange srv.hup false then
      (match do_reload srv ~path:None with
      | Ok _ -> ()
      | Error e -> cfg.log (Printf.sprintf "fq serve: SIGHUP reload failed: %s" e));
    if Atomic.exchange srv.needs_compact false then compact srv;
    scan_watchdog srv;
    (* periodic atomic metrics dump: at most one write per 2s tick window *)
    (if cfg.metrics_file <> None then
       let nw = now_ms () in
       if nw -. srv.last_metrics_dump >= 2000. then begin
         srv.last_metrics_dump <- nw;
         dump_metrics_file srv
       end);
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept listen_fd with
      | fd, _ ->
        incr next_conn;
        let conn =
          { c_id = !next_conn;
            c_fd = fd;
            c_oc = Unix.out_channel_of_descr fd;
            c_olock = Mutex.create ();
            c_inflight = 0;
            c_closed = false }
        in
        let thread = Thread.create (fun () -> conn_loop srv conn) () in
        conns := (conn, thread) :: !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* graceful shutdown: stop accepting, drain admitted work (keeping the
     watchdog alive so a wedged worker cannot hang the drain), join the
     pool, snapshot, then unblock the reader threads and close every
     connection *)
  let rec drain () =
    scan_watchdog srv;
    let idle =
      Mutex.protect srv.lock (fun () ->
          Queue.is_empty srv.queue
          && Array.for_all (fun s -> match s.s_job with None -> true | Some _ -> false) srv.slots)
    in
    if not idle then begin
      Thread.delay 0.05;
      drain ()
    end
  in
  drain ();
  Array.iter
    (fun slot ->
      match Mutex.protect srv.lock (fun () -> slot.s_dom) with
      | Some d -> Stdlib.Domain.join d
      | None -> ())
    srv.slots;
  save_snapshot_logged srv ~why:"shutdown";
  dump_metrics_file srv;
  (Mutex.lock srv.jlock;
   Fun.protect ~finally:(fun () -> Mutex.unlock srv.jlock) @@ fun () ->
   match srv.journal with
   | Some j ->
     Journal.sync j;
     Journal.close j;
     srv.journal <- None
   | None -> ());
  Decide_cache.set_on_insert srv.cache None;
  List.iter
    (fun (conn, thread) ->
      (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Thread.join thread;
      (try Unix.close conn.c_fd with Unix.Unix_error _ -> ()))
    !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.addr with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let served = reg_get srv.reg "serve.requests" in
  let rejected = reg_get srv.reg "serve.rejected" in
  cfg.log
    (Printf.sprintf
       "fq serve: shutdown complete — %d requests served (%d complete, %d partial, %d \
        unsupported, %d error), %d rejected"
       served
       (reg_get srv.reg "serve.eval.complete")
       (reg_get srv.reg "serve.eval.partial")
       (reg_get srv.reg "serve.eval.unsupported")
       (reg_get srv.reg "serve.eval.error")
       rejected);
  Ok 0

let run cfg =
  match List.assoc_opt cfg.default_domain (all_domains cfg) with
  | None -> Error (Printf.sprintf "unknown default domain %S" cfg.default_domain)
  | Some _ -> run_bound cfg
