(** A blocking NDJSON client for {!Server}.

    One connection, safe to share across threads: {!request} holds the
    connection lock around its send/recv pair, while the split
    {!send}/{!recv} calls let a single owner pipeline many requests and
    collect the interleaved responses (correlate by id). *)

type t

val connect :
  ?retries:int -> ?delay_ms:int -> ?timeout_ms:int -> Server.addr -> (t, string) result
(** Connect, retrying a refused or not-yet-bound socket [retries] more
    times with [delay_ms] (default 50) between attempts — for clients
    racing a server that is still booting.  With [timeout_ms], the retry
    loop is bounded by that wall-clock deadline and every subsequent
    socket read/write carries it as an OS-level timeout
    (SO_RCVTIMEO/SO_SNDTIMEO), so a wedged server yields an
    ["unsupported: timed out ..."] error (exit code 4 through
    {!Fq_eval.Outcome.exit_of_error}) instead of a hang. *)

val send : t -> Protocol.request -> (unit, string) result

val recv : t -> (string * Protocol.reply, string) result
(** Next response line, as [(id, reply)].  [Error] on EOF or on a line
    that is not a protocol response. *)

val recv_json : t -> (Protocol.Json.t, string) result
(** Next response line as raw JSON, unclassified. *)

val request : t -> Protocol.request -> (string * Protocol.reply, string) result
(** [send] then [recv], atomically w.r.t. other {!request} callers. *)

val close : t -> unit
