(** A blocking NDJSON client for {!Server}.

    One connection, safe to share across threads: {!request} holds the
    connection lock around its send/recv pair, while the split
    {!send}/{!recv} calls let a single owner pipeline many requests and
    collect the interleaved responses (correlate by id). *)

type t

val connect :
  ?retries:int -> ?delay_ms:int -> ?timeout_ms:int -> Server.addr -> (t, string) result
(** Connect, retrying a refused or not-yet-bound socket [retries] more
    times with [delay_ms] (default 50) between attempts — for clients
    racing a server that is still booting.  With [timeout_ms], the retry
    loop is bounded by that wall-clock deadline and every subsequent
    socket read/write carries it as an OS-level timeout
    (SO_RCVTIMEO/SO_SNDTIMEO), so a wedged server yields an
    ["unsupported: timed out ..."] error (exit code 4 through
    {!Fq_eval.Outcome.exit_of_error}) instead of a hang. *)

val send : t -> Protocol.request -> (unit, string) result

val recv : t -> (string * Protocol.reply, string) result
(** Next response line, as [(id, reply)].  [Error] on EOF or on a line
    that is not a protocol response. *)

val recv_json : t -> (Protocol.Json.t, string) result
(** Next response line as raw JSON, unclassified. *)

val request : t -> Protocol.request -> (string * Protocol.reply, string) result
(** [send] then [recv], atomically w.r.t. other {!request} callers. *)

val close : t -> unit

(** {1 Multi-endpoint mode}

    Against an [fq fleet], a client is only as available as its ability
    to walk away from a dead worker.  {!discover} asks any address for
    the topology; {!run_jobs} spreads pipelined eval jobs across the
    live workers and fails jobs over — carrying their resume tokens —
    when a connection dies, so [kill -9] of a worker mid-batch costs
    retries, not answers. *)

val transient_error : string -> bool
(** Is this error a connection-level fault (ECONNRESET / EPIPE /
    connect-refused / peer EOF) that failing over to another worker can
    cure — as opposed to a protocol or evaluation error the server
    actually answered with? *)

val discover :
  ?retries:int ->
  ?delay_ms:int ->
  ?timeout_ms:int ->
  Server.addr ->
  (bool * Server.addr list, string) result
(** [discover addr] sends [fleet-status] and returns
    [(is_fleet, live worker addresses)].  A lone [fq serve] answers
    [(false, [itself])]; a peer that predates the op degrades to
    [(false, [addr])].  Connect parameters as in {!connect}. *)

type eval_job = {
  domain : string option;
  formula : string;
  fuel : int option;
  timeout_ms : int option;
  trace : string option;
}

type job_result = {
  reply : Protocol.reply;
      (** the final reply; a job that exhausted its failovers gets a
          classified [Failed] outcome with a ["transient: ..."] reason,
          never a bare connection error *)
  raw : Protocol.Json.t option;  (** the reply line, for extra fields (trace, worker) *)
  worker : string option;  (** answering worker's id, when the peer stamps one *)
  failovers : int;  (** times the job moved to another connection *)
  rejected_retries : int;  (** admission rejects waited out and resent *)
}

val run_jobs :
  ?max_failovers:int ->
  ?rounds:int ->
  ?timeout_ms:int ->
  addr:Server.addr ->
  eval_job list ->
  (job_result array, string) result
(** Discover the topology behind [addr], then pipeline the jobs across
    one connection per live worker (one thread each, chunked off a
    shared queue).  Structured rejects are waited out and resent with
    the server's resume token on the same connection; a dead connection
    re-queues its unanswered jobs (resume tokens carried) for other
    endpoints, with the topology re-discovered between rounds so
    supervisor-respawned workers rejoin.  Results come back indexed by
    job order.  [Error] only when no worker was ever reachable. *)
