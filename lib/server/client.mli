(** A blocking NDJSON client for {!Server}.

    One connection, safe to share across threads: {!request} holds the
    connection lock around its send/recv pair, while the split
    {!send}/{!recv} calls let a single owner pipeline many requests and
    collect the interleaved responses (correlate by id). *)

type t

val connect : ?retries:int -> ?delay_ms:int -> Server.addr -> (t, string) result
(** Connect, retrying a refused or not-yet-bound socket [retries] more
    times with [delay_ms] (default 50) between attempts — for clients
    racing a server that is still booting. *)

val send : t -> Protocol.request -> (unit, string) result

val recv : t -> (string * Protocol.reply, string) result
(** Next response line, as [(id, reply)].  [Error] on EOF or on a line
    that is not a protocol response. *)

val recv_json : t -> (Protocol.Json.t, string) result
(** Next response line as raw JSON, unclassified. *)

val request : t -> Protocol.request -> (string * Protocol.reply, string) result
(** [send] then [recv], atomically w.r.t. other {!request} callers. *)

val close : t -> unit
