(* Wire protocol: NDJSON requests/responses over a Unix or TCP socket. *)

module Json = Fq_core.Json
module Outcome = Fq_eval.Outcome

let domains : (string * Fq_domain.Domain.t) list =
  [ ("equality", (module Fq_domain.Eq_domain));
    ("nat_order", (module Fq_domain.Nat_order));
    ("nat_succ", (module Fq_domain.Nat_succ));
    ("presburger", (module Fq_domain.Presburger));
    ("arithmetic", (module Fq_domain.Arithmetic));
    ("traces", (module Fq_domain.Traces)) ]

let find_domain name = List.assoc_opt name domains

type request =
  | Eval of {
      id : string;
      domain : string option;
      formula : string;
      fuel : int option;
      timeout_ms : int option;
      resume : Outcome.resume option;
      trace : string option;
    }
  | Explain of { id : string; domain : string option; formula : string; trace : string option }
  | Metrics of { id : string }
  | Ping of { id : string }
  | Snapshot of { id : string }
  | Shutdown of { id : string }
  | Reload of { id : string; path : string option }
  | Health of { id : string }
  | Traces of { id : string; limit : int option }
  | Fleet_status of { id : string }

let request_id = function
  | Eval { id; _ } | Explain { id; _ } | Metrics { id } | Ping { id } | Snapshot { id }
  | Shutdown { id } | Reload { id; _ } | Health { id } | Traces { id; _ }
  | Fleet_status { id } ->
    id

(* ----------------------------- requests ----------------------------- *)

let parse_request line =
  Result.bind (Json.parse line) @@ fun j ->
  let str name = Option.bind (Json.member name j) Json.to_str_opt in
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let id =
    (* a numeric id is accepted and canonicalized to its decimal string *)
    match Json.member "id" j with
    | Some (Json.Str s) -> s
    | Some (Json.Int n) -> string_of_int n
    | _ -> ""
  in
  let with_formula k =
    match str "formula" with
    | Some formula -> k formula
    | None -> Error "protocol: missing formula"
  in
  match str "op" with
  | Some "eval" ->
    with_formula @@ fun formula ->
    Result.map
      (fun resume ->
        Eval
          { id;
            domain = str "domain";
            formula;
            fuel = int "fuel";
            timeout_ms = int "timeout_ms";
            resume;
            trace = str "trace" })
      (match Json.member "resume" j with
      | None | Some Json.Null -> Ok None
      | Some r -> Result.map Option.some (Outcome.resume_of_json r))
  | Some "explain" ->
    with_formula @@ fun formula ->
    Ok (Explain { id; domain = str "domain"; formula; trace = str "trace" })
  | Some "metrics" -> Ok (Metrics { id })
  | Some "ping" -> Ok (Ping { id })
  | Some "snapshot" -> Ok (Snapshot { id })
  | Some "shutdown" -> Ok (Shutdown { id })
  | Some "reload" -> Ok (Reload { id; path = str "path" })
  | Some "health" -> Ok (Health { id })
  | Some "traces" -> Ok (Traces { id; limit = int "limit" })
  | Some "fleet-status" -> Ok (Fleet_status { id })
  | Some op -> Error (Printf.sprintf "protocol: unknown op %S" op)
  | None -> Error "protocol: missing op"

let request_to_json req =
  let base op id rest = Json.Obj (("op", Json.Str op) :: ("id", Json.Str id) :: rest) in
  let opt name v f rest = match v with None -> rest | Some v -> (name, f v) :: rest in
  match req with
  | Eval { id; domain; formula; fuel; timeout_ms; resume; trace } ->
    base "eval" id
      (("formula", Json.Str formula)
      :: opt "domain" domain
           (fun d -> Json.Str d)
           (opt "fuel" fuel
              (fun n -> Json.Int n)
              (opt "timeout_ms" timeout_ms
                 (fun n -> Json.Int n)
                 (opt "resume" resume Outcome.resume_to_json
                    (opt "trace" trace (fun t -> Json.Str t) [])))))
  | Explain { id; domain; formula; trace } ->
    base "explain" id
      (("formula", Json.Str formula)
      :: opt "domain" domain
           (fun d -> Json.Str d)
           (opt "trace" trace (fun t -> Json.Str t) []))
  | Metrics { id } -> base "metrics" id []
  | Ping { id } -> base "ping" id []
  | Snapshot { id } -> base "snapshot" id []
  | Shutdown { id } -> base "shutdown" id []
  | Reload { id; path } -> base "reload" id (opt "path" path (fun p -> Json.Str p) [])
  | Health { id } -> base "health" id []
  | Traces { id; limit } -> base "traces" id (opt "limit" limit (fun n -> Json.Int n) [])
  | Fleet_status { id } -> base "fleet-status" id []

(* ----------------------------- responses ---------------------------- *)

let with_id id fields = Json.Obj (("id", Json.Str id) :: fields)

(* [trace] prepends a "trace" field right after the id; Outcome.of_json
   reads only the fields it knows, so traced replies still classify (and
   print) byte-identically to local [fq eval --json] output. *)
let outcome_response ~id ?trace outcome =
  let tr fields =
    match trace with None -> fields | Some t -> ("trace", Json.Str t) :: fields
  in
  match Outcome.to_json outcome with
  | Json.Obj fields -> with_id id (tr fields)
  | j -> with_id id (tr [ ("outcome", j) ]) (* unreachable: to_json builds an object *)

let reject_response ~id ~reason ~retry_after_ms ~resume =
  with_id id
    [ ("status", Json.Str "rejected");
      ("reason", Json.Str reason);
      ("retry_after_ms", Json.Int retry_after_ms);
      ("resume", Outcome.resume_to_json resume) ]

let malformed_response ~id reason =
  with_id id [ ("status", Json.Str "malformed"); ("reason", Json.Str reason) ]

let ok_response ~id fields = with_id id (("ok", Json.Bool true) :: fields)

(* -------------------------- fleet status ---------------------------- *)

type worker_info = {
  worker : string;
  worker_addr : string;
  up : bool;
  pid : int option;
  restarts : int;
}

let fleet_status_response ~id ~fleet workers =
  let member w =
    Json.Obj
      (("worker", Json.Str w.worker)
      :: ("addr", Json.Str w.worker_addr)
      :: ("up", Json.Bool w.up)
      :: (match w.pid with None -> [] | Some p -> [ ("pid", Json.Int p) ])
      @ [ ("restarts", Json.Int w.restarts) ])
  in
  ok_response ~id
    [ ("fleet", Json.Bool fleet); ("workers", Json.List (List.map member workers)) ]

let fleet_status_of_json j =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
    let fleet =
      match Json.member "fleet" j with Some (Json.Bool b) -> b | _ -> false
    in
    match Json.member "workers" j with
    | Some (Json.List ws) ->
      let parse_worker w =
        let str name = Option.bind (Json.member name w) Json.to_str_opt in
        let int name = Option.bind (Json.member name w) Json.to_int_opt in
        match (str "worker", str "addr") with
        | Some worker, Some worker_addr ->
          Some
            { worker;
              worker_addr;
              up = (match Json.member "up" w with Some (Json.Bool b) -> b | _ -> false);
              pid = int "pid";
              restarts = (match int "restarts" with Some n -> n | None -> 0) }
        | _ -> None
      in
      let workers = List.filter_map parse_worker ws in
      if List.length workers = List.length ws then Ok (fleet, workers)
      else Error "protocol: malformed fleet-status worker entry"
    | _ -> Error "protocol: fleet-status reply missing workers"
  )
  | _ -> Error "protocol: fleet-status reply not ok"

type reply =
  | R_outcome of Outcome.t
  | R_rejected of { reason : string; retry_after_ms : int; resume : Outcome.resume option }
  | R_malformed of string
  | R_ok of Json.t

let classify_reply j =
  let id =
    match Option.bind (Json.member "id" j) Json.to_str_opt with Some s -> s | None -> ""
  in
  let reason () =
    match Option.bind (Json.member "reason" j) Json.to_str_opt with
    | Some r -> r
    | None -> "unknown"
  in
  match Option.bind (Json.member "status" j) Json.to_str_opt with
  | Some "rejected" ->
    let retry_after_ms =
      match Option.bind (Json.member "retry_after_ms" j) Json.to_int_opt with
      | Some n -> n
      | None -> 0
    in
    let resume =
      match Json.member "resume" j with
      | None -> None
      | Some r -> Result.to_option (Outcome.resume_of_json r)
    in
    Ok (id, R_rejected { reason = reason (); retry_after_ms; resume })
  | Some "malformed" -> Ok (id, R_malformed (reason ()))
  | Some _ -> Result.map (fun o -> (id, R_outcome o)) (Outcome.of_json j)
  | None -> (
    match Json.member "ok" j with
    | Some _ -> Ok (id, R_ok j)
    | None -> Error ("protocol: unclassifiable reply " ^ Json.to_string j))
