(** Plan optimizer for {!Relalg}: selection pushdown, hash-join
    introduction, projection pushdown, and trivial-node pruning.

    The optimizer is {e semantics-preserving}: for every well-formed plan
    [p] and state, [eval (optimize p) = eval p] (property-tested with
    QCheck). On an ill-formed plan — or one mentioning a relation whose
    arity [arity_of] does not know — the plan is returned unchanged
    rather than rejected, so optimization is always safe to apply.

    The central rewrite is join introduction:
    [Select (Eq (Col i, Col j), Product (p, q))] becomes
    [Join ([(i, j - arity p)], p, q)], executed as a hash join instead of
    a materialized cartesian product — the difference between O(|p|·|q|)
    and O(|p| + |q| + output). *)

(** Cardinality statistics feeding the cost-based passes: base-relation
    cardinalities and per-column distinct counts (usually read off a
    {!State}), plus an optional {e profile} of observed per-node output
    cardinalities keyed by plan {!Relalg.fingerprint} — the histograms a
    telemetry recording collects as [relalg.node_card.<fp>].  A profiled
    cardinality always overrides the estimation formula for that exact
    subplan, closing the loop from executed plans back into the
    optimizer. *)
module Stats : sig
  type t

  val none : t
  (** No information: every estimate falls back to defaults. *)

  val of_state : State.t -> t
  (** Exact base cardinalities and (lazily counted, memoized) per-column
      distinct values of the state's relations; empty profile.  The memo
      tables are mutex-guarded, so one instance is safe to share across
      the worker domains of a batch run or the requests of a serve
      session. *)

  val with_profile : (string * float) list -> t -> t
  (** Add [(fingerprint, observed cardinality)] entries (later entries
      win) to a copy of [t]. *)

  val of_profile : (string * float) list -> t
  (** {!none} + {!with_profile}: profile-only statistics. *)
end

val estimate : Stats.t -> arity_of:(string -> int option) -> Relalg.t -> float
(** Estimated output cardinality of a plan: profiled value when the
    plan's fingerprint is in the stats profile, otherwise textbook
    formulas — equijoins divide by the larger distinct count of the key
    columns, point selections by the column's distinct count, generic
    equalities keep 10%, domain predicates 50%.
    @raise Unknown_arity on a [Rel] leaf [arity_of] cannot resolve. *)

val optimize : ?stats:Stats.t -> arity_of:(string -> int option) -> Relalg.t -> Relalg.t
(** [arity_of] resolves the arity of [Rel] leaves (typically
    {!Schema.arity} partially applied).

    With [?stats], two cost-based passes run after the rewrite pipeline:

    - {e join ordering}: each maximal [Join]/[Product] spine is
      flattened and rebuilt greedily left-deep by ascending estimated
      intermediate cardinality — the accumulated prefix stays the probe
      side, each added factor a (preferably small) hash build side — with
      a final permutation projection restoring the original column
      order.  The new order is kept only when it beats the original
      spine's estimated intermediate volume by ≥ 5%, so noisy statistics
      do not churn working plans;
    - {e predicate placement}: a domain-predicate filter that the
      pipeline pushed below a join is hoisted back above it when the
      stats say the join output is under half the filtered input — the
      per-row domain callback then runs on the smaller side of the
      materialize-vs-pushdown trade.

    Without [?stats] the result is exactly the rewrite pipeline's. *)

val optimize_for : ?stats:Stats.t -> schema:Schema.t -> Relalg.t -> Relalg.t

val arity : arity_of:(string -> int option) -> Relalg.t -> int
(** Static arity of a plan, assuming well-formedness.
    @raise Unknown_arity on a [Rel] leaf [arity_of] cannot resolve. *)

exception Unknown_arity of string
