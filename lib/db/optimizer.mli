(** Plan optimizer for {!Relalg}: selection pushdown, hash-join
    introduction, projection pushdown, and trivial-node pruning.

    The optimizer is {e semantics-preserving}: for every well-formed plan
    [p] and state, [eval (optimize p) = eval p] (property-tested with
    QCheck). On an ill-formed plan — or one mentioning a relation whose
    arity [arity_of] does not know — the plan is returned unchanged
    rather than rejected, so optimization is always safe to apply.

    The central rewrite is join introduction:
    [Select (Eq (Col i, Col j), Product (p, q))] becomes
    [Join ([(i, j - arity p)], p, q)], executed as a hash join instead of
    a materialized cartesian product — the difference between O(|p|·|q|)
    and O(|p| + |q| + output). *)

val optimize : arity_of:(string -> int option) -> Relalg.t -> Relalg.t
(** [arity_of] resolves the arity of [Rel] leaves (typically
    {!Schema.arity} partially applied). *)

val optimize_for : schema:Schema.t -> Relalg.t -> Relalg.t

val arity : arity_of:(string -> int option) -> Relalg.t -> int
(** Static arity of a plan, assuming well-formedness.
    @raise Unknown_arity on a [Rel] leaf [arity_of] cannot resolve. *)

exception Unknown_arity of string
