(* Columnar batch execution kernel.

   A batch is the column-major, dictionary-encoded image of a relation:
   one [int array] per attribute holding small-int codes, plus an
   optional selection vector so filters and anti-joins never copy column
   data.  All values flowing through one plan evaluation share a single
   dictionary, so value equality is code equality and every operator's
   inner loop works on unboxed ints — no [Row.t] allocation, no
   [Value.compare], no string hashing per probe.

   Invariant: a batch's logical rows are always duplicate-free, exactly
   like {!Relation}.  Every operator that could introduce duplicates
   (projection, union) re-deduplicates before returning, so per-operator
   output cardinalities — and hence budget charges and telemetry
   histograms — coincide with the row-at-a-time engine's. *)

module Dict = struct
  (* A dictionary is a (short) chain of layers: a shared frozen parent —
     typically the state's storage dictionary, whose codes are
     Value.compare ranks — plus a mutable overlay holding the few values
     a particular plan introduces (literal relations).  The overlay keeps
     the shared layer immutable after publication, so one storage
     dictionary serves concurrent evaluations. *)
  type t = {
    parent : t option;
    offset : int;  (* absolute codes below [offset] live in the parent *)
    mutable values : Value.t array;  (* local: absolute code [offset + i] *)
    mutable hashes : int array;  (* cached [Value.hash] per local code *)
    mutable n : int;  (* local count *)
    index : (Value.t, int) Hashtbl.t;  (* local value -> absolute code *)
    mutable ordered : bool;
        (* codes are Value.compare ranks overall: code-lexicographic row
           order is the canonical Relation order, so the final sort can
           be int-only *)
  }

  let dummy = Value.int 0

  let create ?(size = 64) () =
    { parent = None;
      offset = 0;
      values = Array.make (max 16 size) dummy;
      hashes = Array.make (max 16 size) 0;
      n = 0;
      index = Hashtbl.create (max 16 size);
      ordered = false }

  (* [vs] must be sorted ascending by [Value.compare] and duplicate-free *)
  let of_sorted_values vs =
    let n = List.length vs in
    let d =
      { parent = None;
        offset = 0;
        values = Array.make (max 16 n) dummy;
        hashes = Array.make (max 16 n) 0;
        n;
        index = Hashtbl.create (2 * max 16 n);
        ordered = true }
    in
    List.iteri
      (fun i v ->
        d.values.(i) <- v;
        d.hashes.(i) <- Value.hash v;
        Hashtbl.add d.index v i)
      vs;
    d

  let size d = d.offset + d.n

  let rec ordered d =
    (match d.parent with None -> true | Some p -> ordered p) && d.ordered

  let overlay parent =
    { parent = Some parent;
      offset = size parent;
      values = Array.make 16 dummy;
      hashes = Array.make 16 0;
      n = 0;
      index = Hashtbl.create 16;
      (* the overlay starts empty; its first insertion breaks rank order
         unless it happens to extend it (checked in [encode]) *)
      ordered = true }

  let rec decode d code =
    if code >= d.offset then d.values.(code - d.offset)
    else
      match d.parent with
      | Some p -> decode p code
      | None -> invalid_arg "Columnar.Dict.decode: code out of range"

  (* cached [Value.hash (decode d code)], so batch-to-row conversion
     never rehashes a boxed value *)
  let rec hash_code d code =
    if code >= d.offset then d.hashes.(code - d.offset)
    else
      match d.parent with
      | Some p -> hash_code p code
      | None -> invalid_arg "Columnar.Dict.hash_code: code out of range"

  let rec find d v =
    match Hashtbl.find_opt d.index v with
    | Some code -> Some code
    | None -> ( match d.parent with Some p -> find p v | None -> None)

  let last_value d = if size d = 0 then None else Some (decode d (size d - 1))

  let encode d v =
    match find d v with
    | Some code -> code
    | None ->
      if d.n = Array.length d.values then begin
        let cap = max 16 (2 * d.n) in
        let bigger = Array.make cap dummy in
        Array.blit d.values 0 bigger 0 d.n;
        d.values <- bigger;
        let bigger_h = Array.make cap 0 in
        Array.blit d.hashes 0 bigger_h 0 d.n;
        d.hashes <- bigger_h
      end;
      (* an unforeseen value breaks the rank ordering unless it extends it *)
      (if d.ordered then
         match last_value d with
         | Some last when Value.compare last v >= 0 -> d.ordered <- false
         | _ -> ());
      let code = d.offset + d.n in
      d.values.(d.n) <- v;
      d.hashes.(d.n) <- Value.hash v;
      Hashtbl.add d.index v code;
      d.n <- d.n + 1;
      code
end

type t = {
  arity : int;
  nrows : int;  (* logical row count *)
  cols : int array array;  (* [arity] physical columns, equal lengths *)
  sel : int array option;  (* logical row [i] lives at physical [sel.(i)] *)
  sorted : bool;
      (* logical rows are in strictly increasing code-lexicographic
         order.  Operators that preserve physical row order (filter,
         dedup, probe-in-order joins of sorted inputs) propagate it, so
         {!to_relation} can usually skip its sort: with a rank-ordered
         dictionary, code-lex order {e is} the canonical row order. *)
}

let arity b = b.arity
let nrows b = b.nrows

let empty arity =
  { arity; nrows = 0; cols = Array.init arity (fun _ -> [||]); sel = None; sorted = true }

(* resolve the selection vector: afterwards logical = physical *)
let dense b =
  match b.sel with
  | None -> b
  | Some s ->
    let n = b.nrows in
    let cols =
      Array.map
        (fun col ->
          let out = Array.make n 0 in
          for i = 0 to n - 1 do
            Array.unsafe_set out i (Array.unsafe_get col (Array.unsafe_get s i))
          done;
          out)
        b.cols
    in
    { arity = b.arity; nrows = n; cols; sel = None; sorted = b.sorted }

(* FNV-style mix over one dense row's codes *)
let row_hash cols arity i =
  let h = ref 0x811c9dc5 in
  for c = 0 to arity - 1 do
    h := (!h * 0x01000193) lxor Array.unsafe_get (Array.unsafe_get cols c) i
  done;
  !h land max_int

let rows_equal cols arity i j =
  let rec go c =
    c >= arity
    || Array.unsafe_get (Array.unsafe_get cols c) i = Array.unsafe_get (Array.unsafe_get cols c) j
       && go (c + 1)
  in
  go 0

(* in-place monomorphic quicksort on int arrays: median-of-three pivot,
   insertion sort on small ranges, no closure calls in the inner loop *)
let sort_ints (a : int array) =
  let swap i j =
    let t = Array.unsafe_get a i in
    Array.unsafe_set a i (Array.unsafe_get a j);
    Array.unsafe_set a j t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let v = Array.unsafe_get a i in
      let j = ref (i - 1) in
      while !j >= lo && Array.unsafe_get a !j > v do
        Array.unsafe_set a (!j + 1) (Array.unsafe_get a !j);
        decr j
      done;
      Array.unsafe_set a (!j + 1) v
    done
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median of three into [mid] *)
      if Array.unsafe_get a mid < Array.unsafe_get a lo then swap mid lo;
      if Array.unsafe_get a hi < Array.unsafe_get a mid then begin
        swap hi mid;
        if Array.unsafe_get a mid < Array.unsafe_get a lo then swap mid lo
      end;
      let pivot = Array.unsafe_get a mid in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while Array.unsafe_get a !i < pivot do
          incr i
        done;
        while Array.unsafe_get a !j > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  let n = Array.length a in
  if n > 1 then qsort 0 (n - 1)

(* smallest power of two holding [n] entries at < 50% load *)
let table_size n =
  let s = ref 16 in
  while !s < 2 * n do
    s := !s * 2
  done;
  !s

(* [fits_word d a]: d^a <= 2^61, i.e. a row of [a] codes below [d] packs
   into one non-negative int; checked by repeated division, no overflow *)
let fits_word d a =
  a > 0
  &&
  let rec go cap k = k = 0 || (cap >= d && go (cap / d) (k - 1)) in
  go (1 lsl 61) a

(* Fibonacci-style mix before masking: packed keys are highly regular,
   the multiply spreads them across the table *)
let mix_hash key =
  let h = key * 0x2545F4914F6CDD1D in
  h lxor (h lsr 31)

(* Keep the first occurrence of each distinct row, preserving order.
   When the rows pack into single words the table stores bare keys — one
   int load per probe, no row comparisons; otherwise open-addressing
   over row indices with exact verification.  No boxed buckets on
   either path. *)
let dedup b =
  let b = dense b in
  let n = b.nrows in
  if n <= 1 then b
  else begin
    let a = b.arity in
    let maxc = ref 0 in
    for c = 0 to a - 1 do
      let col = b.cols.(c) in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get col i in
        if v > !maxc then maxc := v
      done
    done;
    let d = !maxc + 1 in
    let mask = table_size n - 1 in
    let keep = Array.make n 0 in
    let k = ref 0 in
    if fits_word d a then begin
      let slots = Array.make (mask + 1) (-1) in
      let insert i key =
        let s = ref (mix_hash key land mask) in
        let continue = ref true in
        while !continue do
          let q = Array.unsafe_get slots !s in
          if q = -1 then begin
            Array.unsafe_set slots !s key;
            keep.(!k) <- i;
            incr k;
            continue := false
          end
          else if q = key then continue := false
          else s := (!s + 1) land mask
        done
      in
      (* the dominant shapes: hoist the columns out of the pack loop *)
      if a = 1 then begin
        let c0 = b.cols.(0) in
        for i = 0 to n - 1 do
          insert i (Array.unsafe_get c0 i)
        done
      end
      else if a = 2 then begin
        let c0 = b.cols.(0) and c1 = b.cols.(1) in
        for i = 0 to n - 1 do
          insert i ((Array.unsafe_get c0 i * d) + Array.unsafe_get c1 i)
        done
      end
      else
        for i = 0 to n - 1 do
          let key = ref 0 in
          for c = 0 to a - 1 do
            key := (!key * d) + Array.unsafe_get (Array.unsafe_get b.cols c) i
          done;
          insert i !key
        done
    end
    else begin
      let slots = Array.make (mask + 1) (-1) in
      for i = 0 to n - 1 do
        let s = ref (row_hash b.cols a i land mask) in
        let continue = ref true in
        while !continue do
          let j = Array.unsafe_get slots !s in
          if j = -1 then begin
            Array.unsafe_set slots !s i;
            keep.(!k) <- i;
            incr k;
            continue := false
          end
          else if rows_equal b.cols a i j then continue := false
          else s := (!s + 1) land mask
        done
      done
    end;
    if !k = n then b else { b with nrows = !k; sel = Some (Array.sub keep 0 !k) }
  end

(* Dedup for rows already in non-decreasing lex order: duplicates are
   adjacent, so a single sequential compare-with-predecessor pass
   suffices — no table. *)
let dedup_adjacent b =
  let b = dense b in
  let n = b.nrows in
  if n <= 1 then b
  else begin
    let a = b.arity in
    let keep = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if i = 0 || not (rows_equal b.cols a i (i - 1)) then begin
        keep.(!k) <- i;
        incr k
      end
    done;
    if !k = n then b else { b with nrows = !k; sel = Some (Array.sub keep 0 !k) }
  end

(* Dedup for rows grouped by a non-decreasing first column: each group
   deduplicates through a small generation-stamped table keyed on the
   remaining columns.  The table is sized by the largest group — cache
   resident — where the global table's size tracks the whole (possibly
   enormous) input.  First occurrences are kept in order, so the group
   structure survives in the output. *)
let dedup_grouped b =
  let b = dense b in
  let n = b.nrows in
  let a = b.arity in
  if n <= 1 || a < 2 then dedup b
  else begin
    let maxc = ref 0 in
    for c = 1 to a - 1 do
      let col = b.cols.(c) in
      for i = 0 to n - 1 do
        let v = Array.unsafe_get col i in
        if v > !maxc then maxc := v
      done
    done;
    let d = !maxc + 1 in
    if not (fits_word d (a - 1)) then dedup b
    else begin
      let c0 = b.cols.(0) in
      let maxg = ref 1 and run = ref 1 in
      for i = 1 to n - 1 do
        if Array.unsafe_get c0 i = Array.unsafe_get c0 (i - 1) then begin
          incr run;
          if !run > !maxg then maxg := !run
        end
        else run := 1
      done;
      let mask = table_size !maxg - 1 in
      let slots = Array.make (mask + 1) 0 in
      let stamps = Array.make (mask + 1) 0 in
      let keep = Array.make n 0 in
      let k = ref 0 in
      let gen = ref 0 in
      let insert i key =
        let s = ref (mix_hash key land mask) in
        let continue = ref true in
        while !continue do
          if Array.unsafe_get stamps !s <> !gen then begin
            Array.unsafe_set stamps !s !gen;
            Array.unsafe_set slots !s key;
            keep.(!k) <- i;
            incr k;
            continue := false
          end
          else if Array.unsafe_get slots !s = key then continue := false
          else s := (!s + 1) land mask
        done
      in
      let prev = ref min_int in
      if a = 2 then begin
        let c1 = b.cols.(1) in
        for i = 0 to n - 1 do
          let g = Array.unsafe_get c0 i in
          if g <> !prev then begin
            prev := g;
            incr gen
          end;
          insert i (Array.unsafe_get c1 i)
        done
      end
      else
        for i = 0 to n - 1 do
          let g = Array.unsafe_get c0 i in
          if g <> !prev then begin
            prev := g;
            incr gen
          end;
          let key = ref 0 in
          for c = 1 to a - 1 do
            key := (!key * d) + Array.unsafe_get (Array.unsafe_get b.cols c) i
          done;
          insert i !key
        done;
      if !k = n then b else { b with nrows = !k; sel = Some (Array.sub keep 0 !k) }
    end
  end

let of_relation dict rel =
  let rows = Relation.rows rel in
  let arity = Relation.arity rel in
  let n = Array.length rows in
  let cols =
    Array.init arity (fun c ->
        let out = Array.make n 0 in
        for i = 0 to n - 1 do
          out.(i) <- Dict.encode dict (Row.get rows.(i) c)
        done;
        out)
  in
  (* relation rows are canonically sorted; ranks preserve that order *)
  { arity; nrows = n; cols; sel = None; sorted = Dict.ordered dict }

let to_relation dict b =
  let b = dense b in
  let n = b.nrows in
  (* cells and the row hash both come out of the dictionary's per-code
     caches; no boxed value is hashed here *)
  let decode_row i =
    let a = b.arity in
    if a = 0 then Row.of_array [||]
    else begin
      let cells = Array.make a (Dict.decode dict b.cols.(0).(i)) in
      let h = ref Row.seed_hash in
      for c = 0 to a - 1 do
        let code = b.cols.(c).(i) in
        cells.(c) <- Dict.decode dict code;
        h := Row.combine_hash !h (Dict.hash_code dict code)
      done;
      Row.of_array_hashed cells (!h land max_int)
    end
  in
  if Dict.ordered dict then begin
    (* codes are Value ranks: code-lexicographic order is the canonical
       row order, and batches are duplicate-free, so nothing boxed is
       ever compared.  Operators propagate sortedness, so most batches
       need no sort at all; the rest sort unboxed ints — packed into a
       single key per row when the codes fit one word. *)
    if b.sorted then Relation.of_sorted_rows ~arity:b.arity (Array.init n decode_row)
    else begin
      let cols = b.cols and a = b.arity in
      let d = max 1 (Dict.size dict) in
      if fits_word d a then begin
        (* pack each row into one word, sort the words monomorphically,
           unpack by divmod: no permutation array, no compare closure *)
        let keys = Array.make n 0 in
        for i = 0 to n - 1 do
          let key = ref 0 in
          for c = 0 to a - 1 do
            key := (!key * d) + Array.unsafe_get (Array.unsafe_get cols c) i
          done;
          Array.unsafe_set keys i !key
        done;
        sort_ints keys;
        let hs = Array.make a 0 in
        let rows =
          Array.map
            (fun key ->
              let cells = Array.make a (Dict.decode dict (key mod d)) in
              let k = ref key in
              for c = a - 1 downto 0 do
                let code = !k mod d in
                cells.(c) <- Dict.decode dict code;
                hs.(c) <- Dict.hash_code dict code;
                k := !k / d
              done;
              (* the row hash folds left-to-right, the unpack runs
                 right-to-left: stage per-cell hashes, then fold *)
              let h = ref Row.seed_hash in
              for c = 0 to a - 1 do
                h := Row.combine_hash !h (Array.unsafe_get hs c)
              done;
              Row.of_array_hashed cells (!h land max_int))
            keys
        in
        Relation.of_sorted_rows ~arity:a rows
      end
      else begin
        let order = Array.init n (fun i -> i) in
        let cmp i j =
          let rec go c =
            if c >= a then 0
            else
              let x = Array.unsafe_get (Array.unsafe_get cols c) i in
              let y = Array.unsafe_get (Array.unsafe_get cols c) j in
              if x < y then -1 else if x > y then 1 else go (c + 1)
          in
          go 0
        in
        Array.sort cmp order;
        Relation.of_sorted_rows ~arity:b.arity (Array.map decode_row order)
      end
    end
  end
  else Relation.of_rows ~arity:b.arity (Array.init n decode_row)

(* [filter pred b] keeps the logical rows satisfying [pred]; only the
   selection vector is rebuilt, columns are shared *)
let filter pred b =
  let n = b.nrows in
  let keep = Array.make (max 1 n) 0 in
  let k = ref 0 in
  (match b.sel with
  | None ->
    for i = 0 to n - 1 do
      if pred i then begin
        keep.(!k) <- i;
        incr k
      end
    done
  | Some s ->
    for i = 0 to n - 1 do
      if pred i then begin
        keep.(!k) <- s.(i);
        incr k
      end
    done);
  if !k = n then b else { b with nrows = !k; sel = Some (Array.sub keep 0 !k) }

let check_col op b c =
  if c < 0 || c >= b.arity then
    invalid_arg (Printf.sprintf "Columnar.%s: column %d of arity %d" op c b.arity)

let project cols b =
  Array.iter (check_col "project" b) cols;
  let b = dense b in
  let n = b.nrows in
  let out = Array.map (fun c -> Array.copy b.cols.(c)) cols in
  (* a prefix projection of sorted rows stays sorted (dedup removes the
     equal neighbours); any other column selection scrambles lex order *)
  let prefix = Array.for_all2 ( = ) cols (Array.init (Array.length cols) (fun i -> i)) in
  let res =
    { arity = Array.length cols; nrows = n; cols = out; sel = None;
      sorted = b.sorted && prefix }
  in
  let is_permutation =
    Array.length cols = b.arity
    &&
    let seen = Array.make b.arity false in
    Array.for_all
      (fun c ->
        if seen.(c) then false
        else begin
          seen.(c) <- true;
          true
        end)
      cols
  in
  if is_permutation then res (* injective on rows: no duplicates to remove *)
  else if b.sorted && prefix then dedup_adjacent res
  else if b.sorted && Array.length cols > 0 && cols.(0) = 0 then
    (* lex-sorted input whose first column survives in front: rows stay
       grouped by that column, so the per-group dedup applies *)
    dedup_grouped res
  else dedup res

let product a b =
  let a = dense a and b = dense b in
  let arity = a.arity + b.arity in
  let n = a.nrows and m = b.nrows in
  if n = 0 || m = 0 then empty arity
  else begin
    let cols =
      Array.init arity (fun c ->
          let out = Array.make (n * m) 0 in
          if c < a.arity then begin
            let src = a.cols.(c) in
            for i = 0 to n - 1 do
              let v = Array.unsafe_get src i and base = i * m in
              for j = 0 to m - 1 do
                Array.unsafe_set out (base + j) v
              done
            done
          end
          else begin
            let src = b.cols.(c - a.arity) in
            for i = 0 to n - 1 do
              let base = i * m in
              for j = 0 to m - 1 do
                Array.unsafe_set out (base + j) (Array.unsafe_get src j)
              done
            done
          end;
          out)
    in
    (* left-major: sorted left groups, each repeating sorted right rows *)
    { arity; nrows = n * m; cols; sel = None; sorted = a.sorted && b.sorted }
  end

(* gather the pair lists (li, ri) into materialized output columns *)
let materialize_pairs ~sorted a b li ri k =
  let arity = a.arity + b.arity in
  let cols =
    Array.init arity (fun c ->
        let out = Array.make k 0 in
        if c < a.arity then begin
          let src = a.cols.(c) in
          for x = 0 to k - 1 do
            Array.unsafe_set out x (Array.unsafe_get src (Array.unsafe_get li x))
          done
        end
        else begin
          let src = b.cols.(c - a.arity) in
          for x = 0 to k - 1 do
            Array.unsafe_set out x (Array.unsafe_get src (Array.unsafe_get ri x))
          done
        end;
        out)
  in
  { arity; nrows = k; cols; sel = None; sorted }

(* growable pair accumulator shared by the join paths *)
type pair_acc = {
  mutable li : int array;
  mutable ri : int array;
  mutable len : int;
}

let acc_make cap = { li = Array.make cap 0; ri = Array.make cap 0; len = 0 }

let acc_push acc i j =
  if acc.len = Array.length acc.li then begin
    let cap = 2 * acc.len in
    let li' = Array.make cap 0 and ri' = Array.make cap 0 in
    Array.blit acc.li 0 li' 0 acc.len;
    Array.blit acc.ri 0 ri' 0 acc.len;
    acc.li <- li';
    acc.ri <- ri'
  end;
  Array.unsafe_set acc.li acc.len i;
  Array.unsafe_set acc.ri acc.len j;
  acc.len <- acc.len + 1

(* Hash equijoin over code columns: build on the right side, probe with
   the left.  Two all-int paths, neither of which ever consults a boxed
   value or a generic hash table:
   - single key column: codes are small dictionary ints, so the build
     side is chained directly off the code — probe hits need no
     verification at all (code equality {e is} value equality);
   - compound keys: open-addressing on an FNV mix of the codes, with
     exact code-for-code verification on collisions. *)
let equijoin pairs a b =
  List.iter
    (fun (i, j) ->
      check_col "equijoin" a i;
      check_col "equijoin" b j)
    pairs;
  if pairs = [] then product a b
  else begin
    let a = dense a and b = dense b in
    if a.nrows = 0 || b.nrows = 0 then empty (a.arity + b.arity)
    else begin
      let li, ri, npairs =
        match pairs with
        | [ (ic, jc) ] ->
          let lcol = a.cols.(ic) and rcol = b.cols.(jc) in
          let maxc = ref 0 in
          for j = 0 to b.nrows - 1 do
            let c = Array.unsafe_get rcol j in
            if c > !maxc then maxc := c
          done;
          let m = !maxc in
          let head = Array.make (m + 1) (-1) in
          let next = Array.make b.nrows (-1) in
          let cnt = Array.make (m + 1) 0 in
          (* built back-to-front so each chain is in build-row order *)
          for j = b.nrows - 1 downto 0 do
            let c = Array.unsafe_get rcol j in
            Array.unsafe_set next j (Array.unsafe_get head c);
            Array.unsafe_set head c j;
            Array.unsafe_set cnt c (Array.unsafe_get cnt c + 1)
          done;
          (* exact output size from the per-code chain lengths —
             sequential count reads, so the fill pass below writes into
             exactly-sized arrays with no growth checks *)
          let total = ref 0 in
          for i = 0 to a.nrows - 1 do
            let c = Array.unsafe_get lcol i in
            if c <= m then total := !total + Array.unsafe_get cnt c
          done;
          let li = Array.make (max 1 !total) 0 and ri = Array.make (max 1 !total) 0 in
          let k = ref 0 in
          for i = 0 to a.nrows - 1 do
            let c = Array.unsafe_get lcol i in
            if c <= m then begin
              let j = ref (Array.unsafe_get head c) in
              while !j >= 0 do
                Array.unsafe_set li !k i;
                Array.unsafe_set ri !k !j;
                incr k;
                j := Array.unsafe_get next !j
              done
            end
          done;
          (li, ri, !total)
        | _ ->
          let acc = acc_make (max 16 a.nrows) in
        let lcols = Array.of_list (List.map (fun (i, _) -> a.cols.(i)) pairs) in
        let rcols = Array.of_list (List.map (fun (_, j) -> b.cols.(j)) pairs) in
        let nk = Array.length lcols in
        let key_hash cols i =
          let h = ref 0x811c9dc5 in
          for c = 0 to nk - 1 do
            h := (!h * 0x01000193) lxor Array.unsafe_get (Array.unsafe_get cols c) i
          done;
          !h land max_int
        in
        let right_equal j1 j2 =
          let rec go c =
            c >= nk
            || Array.unsafe_get (Array.unsafe_get rcols c) j1
               = Array.unsafe_get (Array.unsafe_get rcols c) j2
               && go (c + 1)
          in
          go 0
        in
        let cross_equal i j =
          let rec go c =
            c >= nk
            || Array.unsafe_get (Array.unsafe_get lcols c) i
               = Array.unsafe_get (Array.unsafe_get rcols c) j
               && go (c + 1)
          in
          go 0
        in
        (* slots hold the head build row of a key group; [next] chains the
           group's remaining rows in build-row order *)
        let mask = table_size b.nrows - 1 in
        let slots = Array.make (mask + 1) (-1) in
        let next = Array.make b.nrows (-1) in
        for j = b.nrows - 1 downto 0 do
          let s = ref (key_hash rcols j land mask) in
          let continue = ref true in
          while !continue do
            let g = Array.unsafe_get slots !s in
            if g = -1 then begin
              Array.unsafe_set slots !s j;
              continue := false
            end
            else if right_equal g j then begin
              Array.unsafe_set next j g;
              Array.unsafe_set slots !s j;
              continue := false
            end
            else s := (!s + 1) land mask
          done
        done;
        for i = 0 to a.nrows - 1 do
          let s = ref (key_hash lcols i land mask) in
          let continue = ref true in
          while !continue do
            let g = Array.unsafe_get slots !s in
            if g = -1 then continue := false
            else if cross_equal i g then begin
              let j = ref g in
              while !j >= 0 do
                acc_push acc i !j;
                j := Array.unsafe_get next !j
              done;
              continue := false
            end
            else s := (!s + 1) land mask
          done
        done;
          (acc.li, acc.ri, acc.len)
      in
      (* probes run in row order and chains are in build-row order, so
         sorted inputs give sorted output (grouped by left row, right
         rows ascending within a group) *)
      materialize_pairs ~sorted:(a.sorted && b.sorted) a b li ri npairs
    end
  end

let same_arity op a b =
  if a.arity <> b.arity then
    invalid_arg (Printf.sprintf "Columnar.%s: arities %d and %d differ" op a.arity b.arity)

let union a b =
  same_arity "union" a b;
  let a = dense a and b = dense b in
  let n = a.nrows and m = b.nrows in
  let cols =
    Array.init a.arity (fun c ->
        let out = Array.make (n + m) 0 in
        Array.blit a.cols.(c) 0 out 0 n;
        Array.blit b.cols.(c) 0 out n m;
        out)
  in
  (* concatenation interleaves the two orders *)
  dedup
    { arity = a.arity; nrows = n + m; cols; sel = None;
      sorted = (n = 0 && b.sorted) || (m = 0 && a.sorted) }

(* membership structure over [b]'s rows, for diff: open-addressing set
   of row indices (rows of a batch are duplicate-free, so one slot per
   distinct row suffices) *)
let diff a b =
  same_arity "diff" a b;
  let da = dense a and db = dense b in
  if db.nrows = 0 then da
  else begin
    let mask = table_size db.nrows - 1 in
    let slots = Array.make (mask + 1) (-1) in
    for j = 0 to db.nrows - 1 do
      let s = ref (row_hash db.cols db.arity j land mask) in
      while Array.unsafe_get slots !s <> -1 do
        s := (!s + 1) land mask
      done;
      Array.unsafe_set slots !s j
    done;
    let cross_equal i j =
      let rec go c =
        c >= da.arity || da.cols.(c).(i) = db.cols.(c).(j) && go (c + 1)
      in
      go 0
    in
    let absent i =
      let s = ref (row_hash da.cols da.arity i land mask) in
      let res = ref true and continue = ref true in
      while !continue do
        let j = Array.unsafe_get slots !s in
        if j = -1 then continue := false
        else if cross_equal i j then begin
          res := false;
          continue := false
        end
        else s := (!s + 1) land mask
      done;
      !res
    in
    filter absent da
  end
