let value_of_string s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    Value.big (Fq_numeric.Bigint.of_string s)
  else Value.str s

let ( let* ) = Result.bind

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_relation spec =
  match split_once ~on:'=' spec with
  | None -> Error (Printf.sprintf "bad relation spec %S (want NAME/ARITY=...)" spec)
  | Some (head, body) -> (
    match split_once ~on:'/' head with
    | None -> Error (Printf.sprintf "bad relation head %S (want NAME/ARITY)" head)
    | Some (name, arity_s) -> (
      match int_of_string_opt arity_s with
      | None -> Error (Printf.sprintf "bad arity %S" arity_s)
      | Some arity -> (
        let rows =
          if body = "" then []
          else
            String.split_on_char ';' body
            |> List.map (fun row -> List.map value_of_string (String.split_on_char ',' row))
        in
        match Relation.make ~arity rows with
        | rel -> Ok (name, arity, rel)
        | exception Invalid_argument msg -> Error msg)))

let parse_constant spec =
  match split_once ~on:'=' spec with
  | None -> Error (Printf.sprintf "bad constant spec %S (want NAME=VALUE)" spec)
  | Some (name, v) -> Ok (name, value_of_string v)

let parse_state ~relations ~constants =
  let rec collect f acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest ->
      let* parsed = f spec in
      collect f (parsed :: acc) rest
  in
  let* rels = collect parse_relation [] relations in
  let* consts = collect parse_constant [] constants in
  match
    let schema =
      Schema.make ~constants:(List.map fst consts) (List.map (fun (n, a, _) -> (n, a)) rels)
    in
    State.make ~schema ~constants:consts (List.map (fun (n, _, r) -> (n, r)) rels)
  with
  | state -> Ok state
  | exception Invalid_argument msg -> Error msg

(* A state file is the same specs, one per line: a '/' before the first
   '=' marks a relation line, anything else is a constant.  '#' comments
   and blank lines are skipped, so served databases can be annotated. *)
let load_state path =
  match open_in path with
  | exception Sys_error msg -> Error (Printf.sprintf "state file: %s" msg)
  | ic ->
    let finally () = close_in_noerr ic in
    Fun.protect ~finally @@ fun () ->
    let rec read rels consts lineno =
      match input_line ic with
      | exception End_of_file ->
        parse_state ~relations:(List.rev rels) ~constants:(List.rev consts)
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then read rels consts (lineno + 1)
        else
          let is_relation =
            match (String.index_opt line '/', String.index_opt line '=') with
            | Some slash, Some eq -> slash < eq
            | Some _, None -> true
            | None, _ -> false
          in
          if is_relation then read (line :: rels) consts (lineno + 1)
          else read rels (line :: consts) (lineno + 1)
    in
    Result.map_error (fun e -> Printf.sprintf "state file %s: %s" path e) (read [] [] 1)

let value_to_string = function
  | Value.Int n -> Fq_numeric.Bigint.to_string n
  | Value.Str s -> s

let relation_to_string name rel =
  let rows =
    Relation.tuples rel
    |> List.map (fun tup -> String.concat "," (List.map value_to_string tup))
  in
  Printf.sprintf "%s/%d=%s" name (Relation.arity rel) (String.concat ";" rows)

let state_to_strings state =
  let schema = State.schema state in
  let rels =
    List.map
      (fun (name, _) -> relation_to_string name (State.relation state name))
      (Schema.relations schema)
  in
  let consts =
    List.map (fun (c, v) -> Printf.sprintf "%s=%s" c (value_to_string v)) (State.constants state)
  in
  (rels, consts)
