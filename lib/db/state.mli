(** Database states: an instance of a scheme — one finite relation per
    relation name, one value per scheme constant (Section 1 of the paper). *)

type t

val make :
  schema:Schema.t ->
  ?constants:(string * Value.t) list ->
  (string * Relation.t) list ->
  t
(** Unlisted relations are empty. Constant names may carry the [@] prefix
    or not.
    @raise Invalid_argument when a relation name or arity disagrees with
    the scheme, a listed constant is not in the scheme, or a scheme
    constant is left uninterpreted. *)

val schema : t -> Schema.t
val relation : t -> string -> Relation.t
(** Total on scheme relations (empty when unlisted).
    @raise Not_found on a name outside the scheme. *)

val constant : t -> string -> Value.t
(** Accepts the [@]-prefixed or bare name. @raise Not_found when absent. *)

val constants : t -> (string * Value.t) list

val active_domain : t -> Value.t list
(** All values in any relation or interpreted constant, sorted and
    deduplicated — "the set of all … elements contained in the database
    relations" (Section 1). A querying formula's own constants are added
    separately by callers that need the full active domain of a query. *)

val with_relation : t -> string -> Relation.t -> t
(** Functional update. @raise Invalid_argument as in {!make}. *)

val memo : t -> exn option
(** Engine-private memo slot (see {!set_memo}); [None] on a fresh or
    functionally-updated state. *)

val set_memo : t -> exn -> unit
(** Stores an engine's derived image of this state (an [exn] as an
    extensible carrier, so this module needs no knowledge of engine
    types). The value must be derivable from the state alone: racing
    writers are resolved by last-write-wins. *)

val pp : Format.formatter -> t -> unit
