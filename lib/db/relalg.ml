type arg =
  | Col of int
  | Const of Value.t

type cond =
  | Eq of arg * arg
  | Domain_pred of string * arg list
  | Not of cond
  | And_c of cond * cond
  | Or_c of cond * cond

type t =
  | Rel of string
  | Lit of Relation.t
  | Select of cond * t
  | Project of int list * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Union of t * t
  | Diff of t * t

let rec cond_max_col = function
  | Eq (a, b) -> max (arg_max_col a) (arg_max_col b)
  | Domain_pred (_, args) -> List.fold_left (fun m a -> max m (arg_max_col a)) (-1) args
  | Not c -> cond_max_col c
  | And_c (a, b) | Or_c (a, b) -> max (cond_max_col a) (cond_max_col b)

and arg_max_col = function Col i -> i | Const _ -> -1

let arity_check ~schema plan =
  let ( let* ) = Result.bind in
  let rec go = function
    | Rel name -> (
      match Schema.arity schema name with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "unknown relation %s" name))
    | Lit r -> Ok (Relation.arity r)
    | Select (cond, p) ->
      let* a = go p in
      if cond_max_col cond >= a then
        Error (Printf.sprintf "selection touches column %d of arity %d" (cond_max_col cond) a)
      else Ok a
    | Project (cols, p) ->
      let* a = go p in
      if List.exists (fun c -> c < 0 || c >= a) cols then
        Error (Printf.sprintf "projection out of range for arity %d" a)
      else Ok (List.length cols)
    | Product (p, q) ->
      let* a = go p in
      let* b = go q in
      Ok (a + b)
    | Join (pairs, p, q) ->
      let* a = go p in
      let* b = go q in
      if List.exists (fun (i, j) -> i < 0 || i >= a || j < 0 || j >= b) pairs then
        Error (Printf.sprintf "join columns out of range for arities %d and %d" a b)
      else Ok (a + b)
    | Union (p, q) | Diff (p, q) ->
      let* a = go p in
      let* b = go q in
      if a <> b then Error (Printf.sprintf "arity mismatch %d vs %d" a b) else Ok a
  in
  go plan

let no_domain_pred name _ =
  invalid_arg (Printf.sprintf "Relalg.eval: no evaluator for domain predicate %s" name)

let eval_arg tup = function
  | Col i -> List.nth tup i
  | Const v -> v

let rec eval_cond domain_pred tup = function
  | Eq (a, b) -> Value.equal (eval_arg tup a) (eval_arg tup b)
  | Domain_pred (p, args) -> domain_pred p (List.map (eval_arg tup) args)
  | Not c -> not (eval_cond domain_pred tup c)
  | And_c (a, b) -> eval_cond domain_pred tup a && eval_cond domain_pred tup b
  | Or_c (a, b) -> eval_cond domain_pred tup a || eval_cond domain_pred tup b

(* ------------------------------------------------------------------ *)
(* Plan fingerprints                                                    *)
(* ------------------------------------------------------------------ *)

let pp_arg_fp buf = function
  | Col i -> Buffer.add_string buf (Printf.sprintf "#%d" i)
  | Const v -> Buffer.add_string buf (Value.to_string v)

let rec pp_cond_fp buf = function
  | Eq (a, b) ->
    pp_arg_fp buf a;
    Buffer.add_char buf '=';
    pp_arg_fp buf b
  | Domain_pred (p, args) ->
    Buffer.add_string buf p;
    Buffer.add_char buf '(';
    List.iter
      (fun a ->
        pp_arg_fp buf a;
        Buffer.add_char buf ',')
      args;
    Buffer.add_char buf ')'
  | Not c ->
    Buffer.add_char buf '~';
    pp_cond_fp buf c
  | And_c (a, b) ->
    Buffer.add_char buf '(';
    pp_cond_fp buf a;
    Buffer.add_char buf '&';
    pp_cond_fp buf b;
    Buffer.add_char buf ')'
  | Or_c (a, b) ->
    Buffer.add_char buf '(';
    pp_cond_fp buf a;
    Buffer.add_char buf '|';
    pp_cond_fp buf b;
    Buffer.add_char buf ')'

let cond_fp c =
  let buf = Buffer.create 32 in
  pp_cond_fp buf c;
  Buffer.contents buf

let lit_fp r =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Printf.sprintf "%d:%d" (Relation.arity r) (Relation.cardinal r));
  Array.iter (fun row -> Buffer.add_string buf (string_of_int (Row.hash row))) (Relation.rows r);
  Buffer.contents buf

(* Structural digest, computed bottom-up so a whole plan is linear in its
   size.  [annotate] returns one (node, fingerprint) pair per node so an
   evaluator can attribute telemetry to post-optimization plan nodes. *)
let annotate plan =
  let acc = ref [] in
  let rec go p =
    let d =
      match p with
      | Rel name -> Digest.string ("R:" ^ name)
      | Lit r -> Digest.string ("L:" ^ lit_fp r)
      | Select (c, q) -> Digest.string ("S:" ^ cond_fp c ^ go q)
      | Project (cols, q) ->
        Digest.string ("P:" ^ String.concat "," (List.map string_of_int cols) ^ ":" ^ go q)
      | Product (q, r) ->
        let dq = go q in
        let dr = go r in
        Digest.string ("X:" ^ dq ^ dr)
      | Join (pairs, q, r) ->
        let dq = go q in
        let dr = go r in
        Digest.string
          ("J:"
          ^ String.concat "," (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs)
          ^ ":" ^ dq ^ dr)
      | Union (q, r) ->
        let dq = go q in
        let dr = go r in
        Digest.string ("U:" ^ dq ^ dr)
      | Diff (q, r) ->
        let dq = go q in
        let dr = go r in
        Digest.string ("D:" ^ dq ^ dr)
    in
    acc := (p, String.sub (Digest.to_hex d) 0 8) :: !acc;
    d
  in
  ignore (go plan);
  !acc

let fingerprint plan =
  match annotate plan with
  | (_, fp) :: _ -> fp
  | [] -> assert false

let card_metric = "relalg.node_card"
let node_metric fp = card_metric ^ "." ^ fp

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

type engine = Row_engine | Columnar_engine

let default_engine = ref Columnar_engine

module B = Fq_core.Budget
module T = Fq_core.Telemetry

(* Every operator charges one unit plus the cardinality it materialized,
   against the explicit budget if given, else the ambient one — so a
   governed front-end bounds even plans evaluated deep inside a compiled
   tier.  [Budget.Exhausted] propagates; front-ends [guard].  Telemetry
   sees each materialization too: the per-node output-cardinality
   histograms (aggregate, and keyed by the post-optimization node
   fingerprint while a recording is active) are what the cost model's
   stats profile is built from.  Both engines settle each operator with
   the same fault site, charge and observations, so fault schedules,
   budget verdicts and recorded statistics agree across engines. *)
let make_settle ~budget ~fps node card =
  Fq_core.Fault.hit "relalg.node";
  T.count "relalg.nodes";
  T.observe card_metric (float_of_int card);
  (match fps with
  | [] -> ()
  | _ -> (
    match List.assq_opt node fps with
    | Some fp -> T.observe (node_metric fp) (float_of_int card)
    | None -> ()));
  let n = 1 + card in
  match budget with
  | Some b ->
    B.charge b n;
    B.ensure_size b card
  | None -> B.charge_ambient n

let eval_rows ~state ~settle ~domain_pred plan =
  let rec go node =
    let rel =
      match node with
      | Rel name -> (
        try State.relation state name
        with Not_found -> invalid_arg (Printf.sprintf "Relalg.eval: unknown relation %s" name))
      | Lit r -> r
      | Select (cond, p) -> Relation.filter (fun tup -> eval_cond domain_pred tup cond) (go p)
      | Project (cols, p) -> Relation.map_project cols (go p)
      | Product (p, q) -> Relation.product (go p) (go q)
      | Join (pairs, p, q) -> Relation.equijoin pairs (go p) (go q)
      | Union (p, q) -> Relation.union (go p) (go q)
      | Diff (p, q) -> Relation.diff (go p) (go q)
    in
    settle node (Relation.cardinal rel);
    rel
  in
  go plan

(* The state's columnar image — its dictionary (rank-ordered over the
   active domain) and every base relation encoded through it — is built
   once and memoized on the state via its engine-private slot.  The exn
   is the extensible carrier {!State} asks for; the payload is frozen
   after publication (evaluations only read it through overlays). *)
exception Columnar_image of Columnar.Dict.t * (string, Columnar.t) Hashtbl.t

let columnar_image state =
  match State.memo state with
  | Some (Columnar_image (dict, batches)) -> (dict, batches)
  | Some _ | None ->
    let dict = Columnar.Dict.of_sorted_values (State.active_domain state) in
    let batches = Hashtbl.create 8 in
    List.iter
      (fun (name, _) ->
        Hashtbl.add batches name (Columnar.of_relation dict (State.relation state name)))
      (Schema.relations (State.schema state));
    (* fully built before the single-word publish: a concurrent reader
       sees either nothing or a complete image *)
    State.set_memo state (Columnar_image (dict, batches));
    (dict, batches)

let eval_columnar ~state ~settle ~domain_pred plan =
  let module C = Columnar in
  let base_dict, batches = columnar_image state in
  (* Plan literals get encoded into a per-evaluation overlay, keeping
     the shared image frozen.  Condition constants are never inserted:
     a [find] miss means the value occurs nowhere in the data, so the
     equality is uniformly false.  Literal-free plans (the common case)
     use the shared dictionary directly — no layer indirection on the
     decode path. *)
  let rec has_lit = function
    | Rel _ -> false
    | Lit _ -> true
    | Select (_, p) | Project (_, p) -> has_lit p
    | Product (p, q) | Join (_, p, q) | Union (p, q) | Diff (p, q) -> has_lit p || has_lit q
  in
  let dict = if has_lit plan then C.Dict.overlay base_dict else base_dict in
  let batch_of name =
    match Hashtbl.find_opt batches name with
    | Some b -> b
    | None ->
      (* every scheme relation is in the image, so this name is outside
         the scheme — same error as the row engine *)
      invalid_arg (Printf.sprintf "Relalg.eval: unknown relation %s" name)
  in
  (* compile a condition to a predicate over the batch's logical rows *)
  let compile_cond cond (b : C.t) =
    let log = match b.C.sel with None -> fun i -> i | Some s -> fun i -> s.(i) in
    let col i =
      if i < 0 || i >= b.C.arity then
        invalid_arg (Printf.sprintf "Relalg.eval: condition column %d of arity %d" i b.C.arity)
      else b.C.cols.(i)
    in
    let rec comp = function
      | Eq (Col i, Col j) ->
        let ci = col i and cj = col j in
        fun r ->
          let p = log r in
          ci.(p) = cj.(p)
      | Eq (Col i, Const v) | Eq (Const v, Col i) -> (
        let ci = col i in
        match C.Dict.find dict v with
        | Some code -> fun r -> ci.(log r) = code
        | None -> fun _ -> false)
      | Eq (Const u, Const v) ->
        let x = Value.equal u v in
        fun _ -> x
      | Domain_pred (p, args) ->
        let evs =
          List.map
            (function
              | Col i ->
                let ci = col i in
                fun r -> C.Dict.decode dict ci.(log r)
              | Const v -> fun _ -> v)
            args
        in
        fun r -> domain_pred p (List.map (fun f -> f r) evs)
      | Not c ->
        let f = comp c in
        fun r -> not (f r)
      | And_c (a, b) ->
        let fa = comp a and fb = comp b in
        fun r -> fa r && fb r
      | Or_c (a, b) ->
        let fa = comp a and fb = comp b in
        fun r -> fa r || fb r
    in
    comp cond
  in
  (* children are evaluated right-to-left, matching the row engine's
     argument order, so the per-site fault hit sequence is identical *)
  let rec go node =
    let out =
      match node with
      | Rel name -> batch_of name
      | Lit r -> C.of_relation dict r
      | Select (cond, p) ->
        let b = go p in
        C.filter (compile_cond cond b) b
      | Project (cols, p) -> C.project (Array.of_list cols) (go p)
      | Product (p, q) ->
        let bq = go q in
        let bp = go p in
        C.product bp bq
      | Join (pairs, p, q) ->
        let bq = go q in
        let bp = go p in
        C.equijoin pairs bp bq
      | Union (p, q) ->
        let bq = go q in
        let bp = go p in
        C.union bp bq
      | Diff (p, q) ->
        let bq = go q in
        let bp = go p in
        C.diff bp bq
    in
    settle node (C.nrows out);
    out
  in
  C.to_relation dict (go plan)

let eval ~state ?budget ?engine ?(domain_pred = no_domain_pred) plan =
  let engine = match engine with Some e -> e | None -> !default_engine in
  T.with_span "relalg.eval" (fun () ->
      (* per-node attribution only while a collector is installed: the
         disabled path stays a single ref read per settle *)
      let fps = if T.enabled () then annotate plan else [] in
      let settle = make_settle ~budget ~fps in
      let rel =
        match engine with
        | Row_engine -> eval_rows ~state ~settle ~domain_pred plan
        | Columnar_engine -> eval_columnar ~state ~settle ~domain_pred plan
      in
      T.set_attr "out_card" (T.Int (Relation.cardinal rel));
      rel)

let rec size = function
  | Rel _ | Lit _ -> 1
  | Select (_, p) | Project (_, p) -> 1 + size p
  | Product (p, q) | Join (_, p, q) | Union (p, q) | Diff (p, q) -> 1 + size p + size q

let pp_arg fmt = function
  | Col i -> Format.fprintf fmt "#%d" i
  | Const v -> Value.pp fmt v

let rec pp_cond fmt = function
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_arg a pp_arg b
  | Domain_pred (p, args) ->
    Format.fprintf fmt "%s(%a)" p
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_arg)
      args
  | Not c -> Format.fprintf fmt "~(%a)" pp_cond c
  | And_c (a, b) -> Format.fprintf fmt "(%a & %a)" pp_cond a pp_cond b
  | Or_c (a, b) -> Format.fprintf fmt "(%a | %a)" pp_cond a pp_cond b

let rec pp fmt = function
  | Rel name -> Format.pp_print_string fmt name
  | Lit r ->
    if Relation.cardinal r <= 4 then Relation.pp fmt r
    else Format.fprintf fmt "<lit:%d tuples>" (Relation.cardinal r)
  | Select (c, p) -> Format.fprintf fmt "select[%a](%a)" pp_cond c pp p
  | Project (cols, p) ->
    Format.fprintf fmt "project[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int)
      cols pp p
  | Product (p, q) -> Format.fprintf fmt "(%a x %a)" pp p pp q
  | Join (pairs, p, q) ->
    Format.fprintf fmt "(%a |x|[%a] %a)" pp p
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
         (fun fmt (i, j) -> Format.fprintf fmt "%d=%d" i j))
      pairs pp q
  | Union (p, q) -> Format.fprintf fmt "(%a U %a)" pp p pp q
  | Diff (p, q) -> Format.fprintf fmt "(%a - %a)" pp p pp q
